(* The paper's §2.2 / §7.2 micro-benchmark: two concurrent curl clients
   send a PUT of a PHP page and a GET of the same URL.

   Un-replicated, the GET's outcome (200 vs 404) depends on request
   timing and the OS schedule: across runs the counts differ per machine
   (the paper saw 404 on 6, 8 and 11 of 100 runs on its three machines).

   Under CRANE every run still picks one of the two outcomes — whichever
   order PAXOS decided — but all three replicas report the *same* outcome
   in every run.

   Run with: dune exec examples/put_get_race.exe *)

module Time = Crane_sim.Time
module Engine = Crane_sim.Engine
module Instance = Crane_core.Instance
module Cluster = Crane_core.Cluster
module Standalone = Crane_core.Standalone
module Output_log = Crane_core.Output_log
module Target = Crane_workload.Target
module Clients = Crane_workload.Clients

let apache =
  Crane_apps.Apache.server
    ~cfg:
      {
        Crane_apps.Apache.default_config with
        nworkers = 4;
        php_segments = 4;
        segment_cost = Time.us 1750;
      }
    ()

let race_unreplicated seed =
  let sa = Standalone.boot ~seed ~mode:Standalone.Native ~server:apache () in
  let eng = Standalone.engine sa in
  let target = Target.standalone sa ~port:80 in
  let status = ref None in
  Engine.spawn eng ~name:"curl-put" (fun () ->
      ignore (Clients.curl_put target ~from:"curl1" ~path:"/a.php" ~body:"<?php a ?>"));
  Engine.spawn eng ~name:"curl-get" (fun () ->
      match Clients.curl_get target ~from:"curl2" ~path:"/a.php" with
      | Some resp -> status := Crane_apps.Httpkit.status_of_response resp
      | None -> ());
  Engine.run ~until:(Time.sec 2) eng;
  Standalone.check_failures sa;
  !status

let fast_paxos =
  {
    Crane_paxos.Paxos.heartbeat_period = Time.ms 100;
    election_timeout = Time.ms 300;
    election_jitter = Time.ms 50;
    round_retry = Time.ms 100;
    compaction_threshold = Crane_paxos.Paxos.default_config.compaction_threshold;
    catchup_chunk = Crane_paxos.Paxos.default_config.catchup_chunk;
    suspect_timeout = Crane_paxos.Paxos.default_config.suspect_timeout;
    lease_duration = Time.ms 150;
  }

let race_crane seed =
  let cfg = { Instance.default_config with paxos = fast_paxos; cores = 8 } in
  let cluster = Cluster.create ~seed ~cfg ~server:apache () in
  Cluster.start ~checkpoints:false cluster;
  let eng = Cluster.engine cluster in
  let target = Target.cluster cluster ~port:80 in
  let status = ref None in
  Engine.spawn eng ~name:"curl-put" (fun () ->
      Engine.sleep eng (Time.ms 10);
      ignore (Clients.curl_put target ~from:"curl1" ~path:"/a.php" ~body:"<?php a ?>"));
  Engine.spawn eng ~name:"curl-get" (fun () ->
      Engine.sleep eng (Time.ms 10);
      match Clients.curl_get target ~from:"curl2" ~path:"/a.php" with
      | Some resp -> status := Crane_apps.Httpkit.status_of_response resp
      | None -> ());
  Cluster.run ~until:(Time.sec 2) cluster;
  Cluster.check_failures cluster;
  let consistent =
    match Cluster.outputs cluster with
    | (_, o1) :: rest -> List.for_all (fun (_, o) -> Output_log.equal o1 o) rest
    | [] -> false
  in
  (!status, consistent)

let () =
  let runs = 100 in
  Printf.printf "PUT/GET race, %d runs each.\n\n" runs;
  let count_404 outcomes =
    List.length (List.filter (fun s -> s = Some 404) outcomes)
  in
  (* Three "machines" = three seed families, like the paper's three
     replicas running the un-replicated server independently. *)
  List.iteri
    (fun machine base ->
      let outcomes = List.init runs (fun i -> race_unreplicated (base + (i * 13))) in
      Printf.printf "un-replicated machine %d: GET returned 404 in %d/%d runs\n"
        (machine + 1) (count_404 outcomes) runs)
    [ 11; 1700; 92_000 ];
  print_newline ();
  let crane = List.init runs (fun i -> race_crane (i * 29)) in
  let inconsistent = List.filter (fun (_, c) -> not c) crane in
  Printf.printf "CRANE: GET returned 404 in %d/%d runs\n"
    (count_404 (List.map fst crane))
    runs;
  Printf.printf "CRANE: replicas disagreed in %d/%d runs (must be 0)\n"
    (List.length inconsistent) runs;
  if inconsistent <> [] then exit 1
