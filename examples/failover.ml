(* Replica failure and recovery (paper §7.6): kill the primary while a
   Mongoose server is under load, watch the backups elect a new leader
   (the paper measured 1.97 ms for the three-step election), keep
   serving, then restart the old primary from a backup's checkpoint and
   watch it re-join as a backup on the next heartbeat (paper: 0.36 s).

   The example doubles as a check: it exits nonzero unless the restarted
   replica re-joins, every replica converges to the same state, the
   restarted node's output log is a clean suffix of a survivor's (zero
   divergence), and the client-visible error count stays bounded.

   Run with: dune exec examples/failover.exe *)

module Time = Crane_sim.Time
module Engine = Crane_sim.Engine
module Paxos = Crane_paxos.Paxos
module Instance = Crane_core.Instance
module Cluster = Crane_core.Cluster
module Output_log = Crane_core.Output_log
module Target = Crane_workload.Target
module Clients = Crane_workload.Clients
module Loadgen = Crane_workload.Loadgen

let mongoose =
  Crane_apps.Mongoose.server
    ~cfg:
      {
        Crane_apps.Mongoose.default_config with
        nworkers = 4;
        php_segments = 4;
        segment_cost = Time.us 2000;
        hints = true;
      }
    ()

let failures = ref []
let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt

let () =
  let cfg =
    { Instance.default_config with cores = 8; checkpoint_period = Time.sec 2 }
  in
  let cluster = Cluster.create ~cfg ~server:mongoose () in
  Cluster.start ~checkpoints:true cluster;
  let eng = Cluster.engine cluster in
  let target = Target.cluster cluster ~port:80 in
  (* Retries make this measure the cluster's availability, not client
     fragility: a request cut off by the failover retries against the new
     primary with deterministic backoff. *)
  let handle =
    Loadgen.run ~name:"ab" ~think:(Time.ms 60) ~retries:6
      ~retry_backoff:(Time.ms 100) ~clients:4 ~requests:600
      ~request:Clients.apachebench target
  in
  (* Let a checkpoint happen, then kill the primary. *)
  Engine.at eng (Time.sec 5) (fun () ->
      Printf.printf "[%6.3fs] killing primary replica1\n"
        (Time.to_float_sec (Engine.now eng));
      Cluster.kill cluster "replica1");
  (* Restart it seven (virtual) seconds later from the latest checkpoint. *)
  Engine.at eng (Time.sec 12) (fun () ->
      Printf.printf "[%6.3fs] restarting replica1 from checkpoint\n"
        (Time.to_float_sec (Engine.now eng));
      ignore (Cluster.restart cluster "replica1"));
  Loadgen.drive ~timeout:(Time.sec 120) target handle;
  Printf.printf "[%6.3fs] workload complete\n" (Time.to_float_sec (Engine.now eng));
  (* Allow the restarted node to fully re-join. *)
  Cluster.run ~until:(Engine.now eng + Time.sec 10) cluster;
  Cluster.check_failures cluster;
  let r = handle.Loadgen.collect () in
  Printf.printf "\nserved %d requests, %d errors, %d retries across the failover\n"
    (List.length r.Loadgen.latencies) r.Loadgen.errors r.Loadgen.retries;
  (match Cluster.primary_node cluster with
  | Some n -> Printf.printf "new primary: %s\n" n
  | None -> fail "no primary after recovery");
  List.iter
    (fun (node, inst) ->
      let p = inst.Instance.paxos in
      Printf.printf "  %s: view=%d committed=%d%s%s\n" node (Paxos.view p)
        (Paxos.committed p)
        (if Paxos.is_primary p then " [primary]" else " [backup]")
        (match (Paxos.stats p).Paxos.last_election_duration with
        | Some d -> Printf.sprintf "  (won election in %s)" (Time.to_string d)
        | None -> ""))
    (Cluster.instances cluster);
  (* The old primary must be back as a live cluster member. *)
  let live = List.map fst (Cluster.instances cluster) in
  if not (List.mem "replica1" live) then
    fail "replica1 did not re-join (live: %s)" (String.concat "," live);
  if List.length live <> 3 then fail "expected 3 live replicas, got %d" (List.length live);
  (* With retries in play a handful of hard errors would mean requests
     failed even after the failover window — bound them at zero. *)
  if r.Loadgen.errors > 0 then fail "%d requests failed after retries" r.Loadgen.errors;
  (* All replicas converged to the same state... *)
  (match
     List.map
       (fun (_, i) -> i.Instance.handle.Crane_core.Api.state_of ())
       (Cluster.instances cluster)
   with
  | s1 :: rest when List.for_all (fun s -> s = s1) rest ->
    Printf.printf "all replicas converged to state %S\n" s1
  | states -> fail "replica states diverged: %s" (String.concat " | " states));
  (* ...and the restarted replica's output log — everything its server
     sent since it came back — is a suffix of a continuously-live
     replica's log: zero divergence (paper §7.2). *)
  (match
     (Cluster.instance cluster "replica1", Cluster.instance cluster "replica2")
   with
  | Some r1, Some r2 ->
    let o1 = Instance.output r1 and o2 = Instance.output r2 in
    if Output_log.is_suffix ~of_:o2 o1 then
      Printf.printf "output logs: replica1's %d entries match replica2's tail (0 divergent)\n"
        (Output_log.length o1)
    else
      fail "restarted replica's output log diverges from replica2's"
  | _ -> fail "replica1/replica2 missing for the output-log comparison");
  match !failures with
  | [] -> print_endline "failover example: all checks passed"
  | msgs ->
    List.iter (fun m -> Printf.printf "ERROR: %s\n" m) (List.rev msgs);
    exit 1
