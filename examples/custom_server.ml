(* Transparency: replicate *your* server unmodified.

   This bank server was written with zero knowledge of CRANE — it is an
   ordinary multithreaded socket program with in-memory account state.
   The example runs it twice:

   1. un-replicated, with two racing transfer streams, under several
      seeds: final balances depend on the schedule (lost updates under a
      deliberate check-then-act race between account lock acquisitions);
   2. inside a CRANE cluster: the same binary, same racing clients, but
      every replica ends with identical balances, and the state survives
      a primary failure.

   Run with: dune exec examples/custom_server.exe *)

module Time = Crane_sim.Time
module Engine = Crane_sim.Engine
module Sock = Crane_socket.Sock
module Api = Crane_core.Api
module Instance = Crane_core.Instance
module Cluster = Crane_core.Cluster
module Standalone = Crane_core.Standalone

(* Protocol: "TRANSFER src dst amount\n" | "BALANCE acct\n". *)
let bank : Api.server =
  {
    Api.name = "bank";
    install = (fun _ -> ());
    boot =
      (fun api ->
        let module R = (val api : Api.API) in
        let accounts = Hashtbl.create 8 in
        List.iter (fun a -> Hashtbl.replace accounts a 1000) [ "alice"; "bob"; "carol" ];
        let mu = R.mutex () in
        let transfer src dst amount =
          (* Check... *)
          R.lock mu;
          let ok =
            match Hashtbl.find_opt accounts src with
            | Some b -> b >= amount
            | None -> false
          in
          R.unlock mu;
          (* ...then act: a textbook TOCTOU race between these two
             critical sections under a preemptive scheduler. *)
          if ok then begin
            R.work (Time.us 200) (* fee computation *);
            R.lock mu;
            Hashtbl.replace accounts src (Hashtbl.find accounts src - amount);
            Hashtbl.replace accounts dst
              (Option.value (Hashtbl.find_opt accounts dst) ~default:0 + amount);
            R.unlock mu;
            "OK\n"
          end
          else "INSUFFICIENT\n"
        in
        let serve conn =
          let buf = Buffer.create 64 in
          let rec loop () =
            match Crane_apps.Str_util.find_sub (Buffer.contents buf) "\n" with
            | Some i ->
              let line = String.sub (Buffer.contents buf) 0 i in
              let rest =
                String.sub (Buffer.contents buf) (i + 1) (Buffer.length buf - i - 1)
              in
              Buffer.clear buf;
              Buffer.add_string buf rest;
              (match String.split_on_char ' ' (String.trim line) with
              | [ "TRANSFER"; src; dst; amt ] ->
                R.send conn (transfer src dst (int_of_string amt))
              | [ "BALANCE"; acct ] ->
                R.send conn
                  (Printf.sprintf "%d\n"
                     (Option.value (Hashtbl.find_opt accounts acct) ~default:0))
              | _ -> R.send conn "ERR\n");
              loop ()
            | None ->
              let chunk = R.recv conn ~max:1024 in
              if chunk = "" then R.close conn
              else begin
                Buffer.add_string buf chunk;
                loop ()
              end
          in
          loop ()
        in
        R.spawn ~name:"bank-listener" (fun () ->
            let l = R.listen ~port:9000 in
            while true do
              R.poll l;
              let conn = R.accept l in
              R.spawn ~name:"bank-teller" (fun () -> serve conn)
            done);
        let state_of () =
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) accounts []
          |> List.sort compare
          |> List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v)
          |> String.concat ","
        in
        {
          Api.server_name = "bank";
          state_of;
          load_state =
            (fun s ->
              Hashtbl.reset accounts;
              List.iter
                (fun kv ->
                  match String.split_on_char '=' kv with
                  | [ k; v ] -> Hashtbl.replace accounts k (int_of_string v)
                  | _ -> ())
                (String.split_on_char ',' s));
          mem_bytes = (fun () -> 500_000);
          stop = ignore;
          read = (fun _ -> None);
          footprint = (fun _ -> None);
        });
  }

let drive_clients ?(seed = 0) eng world ~nodes () =
  let rng = Crane_sim.Rng.create (seed + 77) in
  (* Two clients race alice's balance down; overdrafts are possible only
     if the schedule interleaves the check and the act. *)
  let run_client i =
    let delay = Time.us (Crane_sim.Rng.int rng 2000) in
    Engine.spawn eng ~name:(Printf.sprintf "teller%d" i) (fun () ->
        Engine.sleep eng (Time.ms 1 + delay);
        let rec connect tries =
          let node = List.nth nodes (tries mod List.length nodes) in
          match Sock.connect world ~from:(Printf.sprintf "atm%d" i) ~node ~port:9000 with
          | conn -> conn
          | exception Sock.Connection_refused _ ->
            Engine.sleep eng (Time.ms 100);
            connect (tries + 1)
        in
        let conn = connect 0 in
        for _ = 1 to 6 do
          Engine.sleep eng (Time.us (Crane_sim.Rng.int rng 500));
          Sock.send conn "TRANSFER alice bob 300\n";
          ignore (Sock.recv ~timeout:(Time.sec 5) conn ~max:64)
        done;
        Sock.close conn)
  in
  run_client 1;
  run_client 2

let balances_of_state s = s

let () =
  print_endline "-- un-replicated bank, different machines/schedules --";
  let finals =
    List.map
      (fun seed ->
        let sa = Standalone.boot ~seed ~mode:Standalone.Native ~server:bank () in
        let eng = Standalone.engine sa in
        drive_clients ~seed eng (Standalone.world sa) ~nodes:[ "server" ] ();
        Engine.run ~until:(Time.sec 5) eng;
        Standalone.check_failures sa;
        let state = (Standalone.output sa, sa) in
        ignore state;
        let s = sa.Standalone.handle.Api.state_of () in
        Printf.printf "  seed %3d -> %s\n" seed (balances_of_state s);
        s)
      [ 3; 57; 1999; 4242 ]
  in
  (if List.length (List.sort_uniq compare finals) > 1 then
     print_endline "  (schedules diverged: same program, different final states)");
  print_endline "\n-- the same bank under CRANE --";
  let cluster =
    Cluster.create ~cfg:{ Instance.default_config with service_port = 9000 } ~server:bank ()
  in
  Cluster.start cluster;
  let eng = Cluster.engine cluster in
  drive_clients eng (Cluster.world cluster) ~nodes:[ "replica1" ] ();
  Cluster.run ~until:(Time.sec 5) cluster;
  Cluster.check_failures cluster;
  List.iter
    (fun (node, inst) ->
      Printf.printf "  %s -> %s\n" node
        (balances_of_state (inst.Instance.handle.Api.state_of ())))
    (Cluster.instances cluster);
  match List.map (fun (_, i) -> i.Instance.handle.Api.state_of ()) (Cluster.instances cluster) with
  | s :: rest when List.for_all (( = ) s) rest ->
    print_endline "  replicas agree bit-for-bit."
  | _ ->
    print_endline "  ERROR: replicas diverged";
    exit 1
