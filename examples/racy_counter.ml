(* The seeded-race demo, runnable on its own: a counter program whose
   phase-2 increments are deliberately unsynchronized.

   Crane-San must flag the race under the native Pthreads runtime and
   certify the very same program race-free (by turn serialization) and
   schedule-deterministic under PARROT's DMT.  Exits nonzero if either
   half fails, so this doubles as a smoke test:

     dune exec examples/racy_counter.exe              # seed 42
     dune exec examples/racy_counter.exe -- 7         # pick a seed *)

module Driver = Crane_analysis.Driver
module Hb = Crane_analysis.Hb

let () =
  let seed =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 42
  in
  let outcomes = Driver.analyze ~seed ~targets:[ "racy-counter" ] () in
  print_string (Driver.render ~seed outcomes);
  let native = List.find (fun o -> o.Driver.o_mode = "native") outcomes in
  let parrot = List.find (fun o -> o.Driver.o_mode = "parrot") outcomes in
  let nraces o = List.length o.Driver.o_report.Hb.races in
  Printf.printf "\nnative: %d race(s) on the unsynchronized counter\n" (nraces native);
  Printf.printf "parrot: %d race(s), schedule %s\n" (nraces parrot)
    (if parrot.Driver.o_certified then "certified deterministic" else "DIVERGED");
  if Driver.problems outcomes <> [] then exit 1
