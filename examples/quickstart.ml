(* Quickstart: replicate a server with CRANE in a few lines.

   The server below is an ordinary multithreaded program written against
   the runtime API — it knows nothing about replication.  Handing it to
   [Cluster.create] runs it inside three CRANE instances: every client
   socket call goes through PAXOS, thread scheduling is made deterministic
   by the DMT scheduler, and request-timing nondeterminism is closed by
   time bubbling.

   Run with: dune exec examples/quickstart.exe *)

module Time = Crane_sim.Time
module Engine = Crane_sim.Engine
module Api = Crane_core.Api
module Cluster = Crane_core.Cluster
module Output_log = Crane_core.Output_log
module Sock = Crane_socket.Sock

(* An ordinary server: a listener thread and per-connection handlers
   sharing a counter behind a mutex. *)
let greeter : Api.server =
  {
    Api.name = "greeter";
    install = (fun _fs -> ());
    boot =
      (fun api ->
        let module R = (val api : Api.API) in
        let hits = ref 0 in
        let mu = R.mutex () in
        R.spawn ~name:"listener" (fun () ->
            let l = R.listen ~port:7000 in
            while true do
              R.poll l;
              let conn = R.accept l in
              R.spawn ~name:"handler" (fun () ->
                  let name = R.recv conn ~max:256 in
                  if name <> "" then begin
                    R.lock mu;
                    incr hits;
                    let n = !hits in
                    R.unlock mu;
                    R.send conn (Printf.sprintf "hello %s, you are visitor #%d" name n)
                  end;
                  R.close conn)
            done);
        {
          Api.server_name = "greeter";
          state_of = (fun () -> string_of_int !hits);
          load_state = (fun s -> hits := int_of_string s);
          mem_bytes = (fun () -> 1_000_000);
          stop = ignore;
          read = (fun _ -> None);
          footprint = (fun _ -> None);
        });
  }

let () =
  let cfg = { Crane_core.Instance.default_config with service_port = 7000 } in
  let cluster = Cluster.create ~cfg ~server:greeter () in
  Cluster.start cluster;
  let eng = Cluster.engine cluster in
  (* Five clients greet the primary. *)
  let replies = ref [] in
  for i = 1 to 5 do
    Engine.spawn eng ~name:(Printf.sprintf "client%d" i) (fun () ->
        Engine.sleep eng (Time.ms (5 * i));
        let conn =
          Sock.connect (Cluster.world cluster) ~from:(Printf.sprintf "laptop%d" i)
            ~node:"replica1" ~port:7000
        in
        Sock.send conn (Printf.sprintf "client-%d" i);
        let reply = Sock.recv conn ~max:256 in
        replies := reply :: !replies;
        Sock.close conn)
  done;
  Cluster.run ~until:(Time.sec 2) cluster;
  Cluster.check_failures cluster;
  print_endline "Client replies (from the primary):";
  List.iter (fun r -> Printf.printf "  %s\n" r) (List.rev !replies);
  print_endline "\nPer-replica output logs (must be identical):";
  List.iter
    (fun (node, log) ->
      Printf.printf "  %s: %d sends, digest %s\n" node (Output_log.length log)
        (Digest.to_hex (Digest.string (Output_log.render log))))
    (Cluster.outputs cluster);
  match Cluster.outputs cluster with
  | (_, first) :: rest ->
    if List.for_all (fun (_, o) -> Output_log.equal first o) rest then
      print_endline "\nAll three replicas executed identically. That's CRANE."
    else begin
      print_endline "\nERROR: replicas diverged!";
      exit 1
    end
  | [] -> ()
