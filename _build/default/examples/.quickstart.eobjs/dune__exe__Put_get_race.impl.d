examples/put_get_race.ml: Crane_apps Crane_core Crane_paxos Crane_sim Crane_workload List Printf
