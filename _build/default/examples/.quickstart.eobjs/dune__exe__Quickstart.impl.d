examples/quickstart.ml: Crane_core Crane_sim Crane_socket Digest List Printf
