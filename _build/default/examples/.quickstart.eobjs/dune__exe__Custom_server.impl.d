examples/custom_server.ml: Buffer Crane_apps Crane_core Crane_sim Crane_socket Hashtbl List Option Printf String
