examples/custom_server.mli:
