examples/failover.ml: Crane_apps Crane_core Crane_paxos Crane_sim Crane_workload List Printf String
