examples/quickstart.mli:
