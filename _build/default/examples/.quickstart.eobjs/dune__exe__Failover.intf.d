examples/failover.mli:
