examples/put_get_race.mli:
