(* Replica failure and recovery (paper §7.6): kill the primary while a
   Mongoose server is under load, watch the backups elect a new leader
   (the paper measured 1.97 ms for the three-step election), keep
   serving, then restart the old primary from a backup's checkpoint and
   watch it re-join as a backup on the next heartbeat (paper: 0.36 s).

   Run with: dune exec examples/failover.exe *)

module Time = Crane_sim.Time
module Engine = Crane_sim.Engine
module Paxos = Crane_paxos.Paxos
module Instance = Crane_core.Instance
module Cluster = Crane_core.Cluster
module Target = Crane_workload.Target
module Clients = Crane_workload.Clients
module Loadgen = Crane_workload.Loadgen

let mongoose =
  Crane_apps.Mongoose.server
    ~cfg:
      {
        Crane_apps.Mongoose.default_config with
        nworkers = 4;
        php_segments = 4;
        segment_cost = Time.us 2000;
        hints = true;
      }
    ()

let () =
  let cfg =
    { Instance.default_config with cores = 8; checkpoint_period = Time.sec 2 }
  in
  let cluster = Cluster.create ~cfg ~server:mongoose () in
  Cluster.start ~checkpoints:true cluster;
  let eng = Cluster.engine cluster in
  let target = Target.cluster cluster ~port:80 in
  let handle =
    Loadgen.run ~name:"ab" ~think:(Time.ms 60) ~clients:4 ~requests:600
      ~request:Clients.apachebench target
  in
  (* Let a checkpoint happen, then kill the primary. *)
  Engine.at eng (Time.sec 5) (fun () ->
      Printf.printf "[%6.3fs] killing primary replica1\n"
        (Time.to_float_sec (Engine.now eng));
      Cluster.kill cluster "replica1");
  (* Restart it two (virtual) seconds later from the latest checkpoint. *)
  Engine.at eng (Time.sec 12) (fun () ->
      Printf.printf "[%6.3fs] restarting replica1 from checkpoint\n"
        (Time.to_float_sec (Engine.now eng));
      ignore (Cluster.restart cluster "replica1"));
  Loadgen.drive ~timeout:(Time.sec 120) target handle;
  Printf.printf "[%6.3fs] workload complete\n" (Time.to_float_sec (Engine.now eng));
  (* Allow the restarted node to fully re-join. *)
  Cluster.run ~until:(Engine.now eng + Time.sec 10) cluster;
  Cluster.check_failures cluster;
  let r = handle.Loadgen.collect () in
  Printf.printf "\nserved %d requests, %d errors, across the failover\n"
    (List.length r.Loadgen.latencies) r.Loadgen.errors;
  (match Cluster.primary_node cluster with
  | Some n -> Printf.printf "new primary: %s\n" n
  | None -> print_endline "no primary!");
  List.iter
    (fun (node, inst) ->
      let p = inst.Instance.paxos in
      Printf.printf "  %s: view=%d committed=%d%s%s\n" node (Paxos.view p)
        (Paxos.committed p)
        (if Paxos.is_primary p then " [primary]" else " [backup]")
        (match Paxos.last_election_duration p with
        | Some d -> Printf.sprintf "  (won election in %s)" (Time.to_string d)
        | None -> ""))
    (Cluster.instances cluster);
  (* The restarted replica must have converged to the same state. *)
  match
    List.map (fun (_, i) -> i.Instance.handle.Crane_core.Api.state_of ()) (Cluster.instances cluster)
  with
  | s1 :: rest when List.for_all (fun s -> s = s1) rest ->
    Printf.printf "all replicas converged to state %S\n" s1
  | states ->
    Printf.printf "ERROR: replica states diverged: %s\n" (String.concat " | " states);
    exit 1
