test/test_crane.ml: Alcotest Crane_core Crane_fs Crane_paxos Crane_sim Crane_socket List Printf String
