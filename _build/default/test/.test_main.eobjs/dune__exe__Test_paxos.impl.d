test/test_paxos.ml: Alcotest Crane_net Crane_paxos Crane_sim Crane_storage Fun Hashtbl List Option Printf QCheck QCheck_alcotest
