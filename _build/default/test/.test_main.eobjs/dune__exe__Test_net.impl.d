test/test_net.ml: Alcotest Buffer Crane_net Crane_sim Crane_socket List Printexc Printf QCheck QCheck_alcotest String
