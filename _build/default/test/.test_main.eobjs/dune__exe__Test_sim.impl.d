test/test_sim.ml: Alcotest Buffer Crane_sim List Printexc Printf QCheck QCheck_alcotest
