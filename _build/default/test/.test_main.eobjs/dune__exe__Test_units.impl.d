test/test_units.ml: Alcotest Crane_apps Crane_core Crane_report Crane_sim Gen List QCheck QCheck_alcotest String
