test/test_main.ml: Alcotest Test_apps Test_crane Test_fs Test_net Test_paxos Test_sim Test_threads Test_units
