test/test_fs.ml: Alcotest Crane_checkpoint Crane_fs Crane_sim Crane_storage List Printexc Printf QCheck QCheck_alcotest String
