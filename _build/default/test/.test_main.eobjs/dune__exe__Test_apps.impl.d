test/test_apps.ml: Alcotest Crane_apps Crane_core Crane_fs Crane_paxos Crane_report Crane_sim Crane_workload List Printf
