test/test_threads.ml: Alcotest Buffer Crane_dmt Crane_pthread Crane_sim List Printexc Printf QCheck QCheck_alcotest Queue
