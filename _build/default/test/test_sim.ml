(* Tests for the discrete-event kernel: ordering, determinism, threads,
   wakers, groups/kill semantics, core pool. *)

module Time = Crane_sim.Time
module Rng = Crane_sim.Rng
module Pheap = Crane_sim.Pheap
module Engine = Crane_sim.Engine
module Cores = Crane_sim.Cores

let check_no_failures eng =
  match Engine.failures eng with
  | [] -> ()
  | (name, e) :: _ ->
    Alcotest.failf "thread %s failed: %s" name (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* Pheap *)

let test_pheap_order () =
  let h = Pheap.create () in
  Pheap.push h ~time:5 ~seq:0 "a";
  Pheap.push h ~time:1 ~seq:1 "b";
  Pheap.push h ~time:5 ~seq:2 "c";
  Pheap.push h ~time:0 ~seq:3 "d";
  let order = ref [] in
  let rec drain () =
    match Pheap.pop h with
    | None -> ()
    | Some (_, _, v) ->
      order := v :: !order;
      drain ()
  in
  drain ();
  Alcotest.(check (list string)) "time then seq" [ "d"; "b"; "a"; "c" ]
    (List.rev !order)

let prop_pheap_sorted =
  QCheck.Test.make ~name:"pheap pops sorted by (time, seq)" ~count:200
    QCheck.(list (pair small_nat small_nat))
    (fun entries ->
      let h = Pheap.create () in
      List.iteri (fun i (t, _) -> Pheap.push h ~time:t ~seq:i ~-i |> ignore) entries;
      let rec drain acc =
        match Pheap.pop h with
        | None -> List.rev acc
        | Some (t, s, _) -> drain ((t, s) :: acc)
      in
      let popped = drain [] in
      let sorted = List.sort compare popped in
      popped = sorted)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xa = Rng.next a and xb = Rng.next b in
  Alcotest.(check bool) "streams differ" true (xa <> xb)

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"rng int stays in bounds" ~count:500
    QCheck.(pair small_nat (int_range 1 1000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let x = Rng.int r bound in
      0 <= x && x < bound)

let prop_rng_shuffle_permutes =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair small_nat (small_list int))
    (fun (seed, l) ->
      let r = Rng.create seed in
      List.sort compare (Rng.shuffle r l) = List.sort compare l)

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_timers_fire_in_order () =
  let eng = Engine.create () in
  let log = ref [] in
  Engine.at eng (Time.ms 3) (fun () -> log := 3 :: !log);
  Engine.at eng (Time.ms 1) (fun () -> log := 1 :: !log);
  Engine.at eng (Time.ms 2) (fun () -> log := 2 :: !log);
  Engine.run eng;
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check int) "clock at last event" (Time.ms 3) (Engine.now eng)

let test_same_instant_fifo () =
  let eng = Engine.create () in
  let log = ref [] in
  for i = 1 to 10 do
    Engine.at eng (Time.ms 1) (fun () -> log := i :: !log)
  done;
  Engine.run eng;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
    (List.rev !log)

let test_thread_sleep () =
  let eng = Engine.create () in
  let t_end = ref Time.zero in
  Engine.spawn eng ~name:"sleeper" (fun () ->
      Engine.sleep eng (Time.ms 5);
      Engine.sleep eng (Time.ms 7);
      t_end := Engine.now eng);
  Engine.run eng;
  check_no_failures eng;
  Alcotest.(check int) "slept 12ms" (Time.ms 12) !t_end

let test_suspend_wake () =
  let eng = Engine.create () in
  let slot = ref None in
  let result = ref 0 in
  Engine.spawn eng ~name:"blocker" (fun () ->
      let v = Engine.suspend eng (fun wake -> slot := Some wake) in
      result := v);
  Engine.spawn eng ~name:"waker" (fun () ->
      Engine.sleep eng (Time.ms 1);
      match !slot with
      | Some wake -> Alcotest.(check bool) "wake wins" true (wake 42)
      | None -> Alcotest.fail "blocker did not park");
  Engine.run eng;
  check_no_failures eng;
  Alcotest.(check int) "woken with value" 42 !result

let test_waker_idempotent () =
  let eng = Engine.create () in
  let slot = ref None in
  let hits = ref 0 in
  Engine.spawn eng ~name:"blocker" (fun () ->
      let _ = Engine.suspend eng (fun wake -> slot := Some wake) in
      incr hits);
  Engine.spawn eng ~name:"waker" (fun () ->
      Engine.sleep eng (Time.ms 1);
      match !slot with
      | Some wake ->
        Alcotest.(check bool) "first" true (wake 1);
        Alcotest.(check bool) "second loses" false (wake 2)
      | None -> Alcotest.fail "no waker");
  Engine.run eng;
  check_no_failures eng;
  Alcotest.(check int) "resumed once" 1 !hits

let test_kill_group () =
  let eng = Engine.create () in
  let g = Engine.new_group eng in
  let progressed = ref 0 in
  let hook_ran = ref false in
  Engine.on_kill eng g (fun () -> hook_ran := true);
  Engine.spawn eng ~group:g ~name:"victim" (fun () ->
      incr progressed;
      Engine.sleep eng (Time.ms 10);
      incr progressed);
  Engine.at eng (Time.ms 5) (fun () -> Engine.kill_group eng g);
  Engine.at eng ~group:g (Time.ms 7) (fun () -> progressed := 100);
  Engine.run eng;
  check_no_failures eng;
  Alcotest.(check int) "stopped mid-sleep, group callback dropped" 1 !progressed;
  Alcotest.(check bool) "kill hook ran" true !hook_ran;
  Alcotest.(check bool) "group dead" false (Engine.group_alive eng g)

let test_timer_cancel () =
  let eng = Engine.create () in
  let fired = ref false in
  let cancel = Engine.timer eng (Time.ms 2) (fun () -> fired := true) in
  Engine.at eng (Time.ms 1) (fun () -> cancel ());
  Engine.run eng;
  Alcotest.(check bool) "cancelled timer silent" false !fired

let test_run_until () =
  let eng = Engine.create () in
  let fired = ref false in
  Engine.at eng (Time.ms 10) (fun () -> fired := true);
  Engine.run ~until:(Time.ms 5) eng;
  Alcotest.(check bool) "future event pending" false !fired;
  Alcotest.(check int) "clock stopped at until" (Time.ms 5) (Engine.now eng);
  Engine.run eng;
  Alcotest.(check bool) "resumes" true !fired

let test_spawn_inherits_group () =
  let eng = Engine.create () in
  let g = Engine.new_group eng in
  let child_ran = ref false in
  Engine.spawn eng ~group:g ~name:"parent" (fun () ->
      Engine.spawn eng ~name:"child" (fun () ->
          Engine.sleep eng (Time.ms 10);
          child_ran := true));
  Engine.at eng (Time.ms 1) (fun () -> Engine.kill_group eng g);
  Engine.run eng;
  check_no_failures eng;
  Alcotest.(check bool) "child died with parent group" false !child_ran

let test_failure_recorded () =
  let eng = Engine.create () in
  Engine.spawn eng ~name:"bad" (fun () -> failwith "boom");
  Engine.run eng;
  match Engine.failures eng with
  | [ ("bad", Failure _) ] -> ()
  | _ -> Alcotest.fail "expected one recorded failure"

let test_limit () =
  let eng = Engine.create () in
  Engine.spawn eng ~name:"loop" (fun () ->
      let rec go () =
        Engine.yield eng;
        go ()
      in
      go ());
  Alcotest.check_raises "limit guard" Engine.Limit_exceeded (fun () ->
      Engine.run ~limit:1000 eng)

(* Determinism: the same seeded program produces the identical trace. *)
let run_noise_trace seed =
  let eng = Engine.create () in
  let rng = Rng.create seed in
  let trace = Buffer.create 256 in
  for i = 1 to 20 do
    let d = Time.us (Rng.int rng 500) in
    Engine.at eng d (fun () ->
        Buffer.add_string trace (Printf.sprintf "%d@%d;" i (Engine.now eng)))
  done;
  Engine.spawn eng ~name:"t" (fun () ->
      for _ = 1 to 5 do
        Engine.sleep eng (Time.us (Rng.int rng 300));
        Buffer.add_string trace (Printf.sprintf "t@%d;" (Engine.now eng))
      done);
  Engine.run eng;
  Buffer.contents trace

let test_deterministic_replay () =
  Alcotest.(check string) "identical traces" (run_noise_trace 99) (run_noise_trace 99)

let prop_engine_deterministic =
  QCheck.Test.make ~name:"engine replay is deterministic" ~count:50
    QCheck.small_nat
    (fun seed -> run_noise_trace seed = run_noise_trace seed)

(* ------------------------------------------------------------------ *)
(* Cores *)

let test_cores_parallel () =
  let eng = Engine.create () in
  let pool = Cores.create eng 4 in
  let done_at = ref [] in
  for i = 1 to 4 do
    Engine.spawn eng ~name:(Printf.sprintf "w%d" i) (fun () ->
        Cores.work pool (Time.ms 10);
        done_at := Engine.now eng :: !done_at)
  done;
  Engine.run eng;
  check_no_failures eng;
  List.iter
    (fun t -> Alcotest.(check int) "all finish in parallel" (Time.ms 10) t)
    !done_at

let test_cores_queueing () =
  let eng = Engine.create () in
  let pool = Cores.create eng 2 in
  let finished = ref [] in
  for i = 1 to 4 do
    Engine.spawn eng ~name:(Printf.sprintf "w%d" i) (fun () ->
        Cores.work pool (Time.ms 10);
        finished := (i, Engine.now eng) :: !finished)
  done;
  Engine.run eng;
  check_no_failures eng;
  let times = List.rev_map snd !finished in
  Alcotest.(check (list int))
    "two waves on two cores"
    [ Time.ms 10; Time.ms 10; Time.ms 20; Time.ms 20 ]
    (List.sort compare times)

let test_cores_zero_work () =
  let eng = Engine.create () in
  let pool = Cores.create eng 1 in
  Engine.spawn eng ~name:"w" (fun () -> Cores.work pool 0);
  Engine.run eng;
  check_no_failures eng;
  Alcotest.(check int) "no time passes" 0 (Engine.now eng)

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  [
    ( "sim.pheap",
      [
        Alcotest.test_case "ordering" `Quick test_pheap_order;
        qcheck prop_pheap_sorted;
      ] );
    ( "sim.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "split independent" `Quick test_rng_split_independent;
        qcheck prop_rng_int_bounds;
        qcheck prop_rng_shuffle_permutes;
      ] );
    ( "sim.engine",
      [
        Alcotest.test_case "timer order" `Quick test_timers_fire_in_order;
        Alcotest.test_case "same-instant fifo" `Quick test_same_instant_fifo;
        Alcotest.test_case "thread sleep" `Quick test_thread_sleep;
        Alcotest.test_case "suspend/wake" `Quick test_suspend_wake;
        Alcotest.test_case "waker idempotent" `Quick test_waker_idempotent;
        Alcotest.test_case "kill group" `Quick test_kill_group;
        Alcotest.test_case "timer cancel" `Quick test_timer_cancel;
        Alcotest.test_case "run until" `Quick test_run_until;
        Alcotest.test_case "spawn inherits group" `Quick test_spawn_inherits_group;
        Alcotest.test_case "failure recorded" `Quick test_failure_recorded;
        Alcotest.test_case "event limit" `Quick test_limit;
        Alcotest.test_case "deterministic replay" `Quick test_deterministic_replay;
        qcheck prop_engine_deterministic;
      ] );
    ( "sim.cores",
      [
        Alcotest.test_case "parallel" `Quick test_cores_parallel;
        Alcotest.test_case "queueing" `Quick test_cores_queueing;
        Alcotest.test_case "zero work" `Quick test_cores_zero_work;
      ] );
  ]
