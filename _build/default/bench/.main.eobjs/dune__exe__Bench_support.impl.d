bench/bench_support.ml: Crane_apps Crane_checkpoint Crane_core Crane_paxos Crane_report Crane_sim Crane_workload List Printf
