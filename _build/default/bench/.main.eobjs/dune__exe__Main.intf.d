bench/main.mli:
