(** Tiny string helpers shared by the protocol codecs. *)

(* Index of the first occurrence of [needle] in [hay], if any.
   Allocation-free: scanning megabytes of simulated file content is on
   the hot path of the ClamAV model. *)
let find_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  if nn = 0 then Some 0
  else if nn > nh then None
  else begin
    let first = String.unsafe_get needle 0 in
    let rec matches_at i j =
      j >= nn || (String.unsafe_get hay (i + j) = String.unsafe_get needle j && matches_at i (j + 1))
    in
    let rec go i =
      if i + nn > nh then None
      else if String.unsafe_get hay i = first && matches_at i 1 then Some i
      else go (i + 1)
    in
    go 0
  end

let lines s = String.split_on_char '\n' s |> List.map String.trim
