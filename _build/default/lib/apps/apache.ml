(** Apache httpd model (paper §7): worker-pool HTTP server whose PHP
    interpreter takes ~70 ms per page.  At peak on the paper's machines
    the ApacheBench workload keeps 8-12 workers busy. *)

module Time = Crane_sim.Time

let default_config =
  {
    Http_server.port = 80;
    nworkers = 8;
    php_segments = 6;
    segment_cost = Time.us 11_667 (* 6 x 11.67 ms = 70 ms per page *);
    hints = false;
    hint_timeout_ticks = 30_000;
    mem_bytes = 4_000_000;
    docroot = "www";
  }

let server ?(cfg = default_config) () = Http_server.make ~name:"apache" ~cfg
