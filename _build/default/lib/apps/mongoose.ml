(** Mongoose model (paper §7): a lighter embedded HTTP server with the
    same listener/worker-pool shape as Apache but a smaller pool and a
    leaner interpreter. *)

module Time = Crane_sim.Time

let default_config =
  {
    Http_server.port = 80;
    nworkers = 6;
    php_segments = 4;
    segment_cost = Time.us 17_500 (* 4 x 17.5 ms = 70 ms per page *);
    hints = false;
    hint_timeout_ticks = 30_000;
    mem_bytes = 1_500_000;
    docroot = "htdocs";
  }

let server ?(cfg = default_config) () = Http_server.make ~name:"mongoose" ~cfg
