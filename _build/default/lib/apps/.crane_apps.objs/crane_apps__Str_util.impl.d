lib/apps/str_util.ml: List String
