lib/apps/clamav.ml: App_base Buffer Crane_core Crane_fs Crane_sim Filename Hashtbl List Printf Str_util String
