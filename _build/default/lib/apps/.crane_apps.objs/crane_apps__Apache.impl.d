lib/apps/apache.ml: Crane_sim Http_server
