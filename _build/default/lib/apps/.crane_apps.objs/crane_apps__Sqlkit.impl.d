lib/apps/sqlkit.ml: Hashtbl List Option Printf String
