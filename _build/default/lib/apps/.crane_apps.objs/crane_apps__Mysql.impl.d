lib/apps/mysql.ml: App_base Buffer Crane_core Crane_fs Crane_sim Hashtbl Printf Sqlkit Str_util String
