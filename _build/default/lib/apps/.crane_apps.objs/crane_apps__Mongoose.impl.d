lib/apps/mongoose.ml: Crane_sim Http_server
