lib/apps/mediatomb.ml: App_base Crane_core Crane_fs Crane_sim Digest Filename Httpkit Printf String
