lib/apps/http_server.ml: App_base Crane_core Crane_fs Crane_sim Filename Httpkit List Printf String
