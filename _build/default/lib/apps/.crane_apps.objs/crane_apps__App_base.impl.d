lib/apps/app_base.ml: Crane_core Crane_sim Hashtbl Httpkit Queue
