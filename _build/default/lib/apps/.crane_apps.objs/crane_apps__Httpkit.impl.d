lib/apps/httpkit.ml: Buffer List Printf Stdlib Str_util String
