(** Minimal HTTP/1.0-style codec shared by the web servers (Apache,
    Mongoose, MediaTomb's web interface).

    Requests: ["<METHOD> <path> HTTP/1.0\r\nHeader: v\r\n\r\n<body>"] with
    an optional [Content-Length].  A request may arrive fragmented across
    several [recv] calls; {!read_request} reassembles it. *)

type request = {
  meth : string;
  path : string;
  headers : (string * string) list;
  body : string;
}

let content_length headers =
  match List.assoc_opt "content-length" headers with
  | Some v -> ( match int_of_string_opt (String.trim v) with Some n -> n | None -> 0)
  | None -> 0

let parse_headers lines =
  List.filter_map
    (fun line ->
      match String.index_opt line ':' with
      | Some i ->
        Some
          ( String.lowercase_ascii (String.sub line 0 i),
            String.trim (String.sub line (i + 1) (String.length line - i - 1)) )
      | None -> None)
    lines

let parse_request raw =
  match Stdlib.String.index_opt raw ' ' with
  | None -> None
  | Some _ -> (
    match String.split_on_char '\n' raw with
    | [] -> None
    | request_line :: rest -> (
      let rest = List.map (fun l -> String.trim l) rest in
      let header_lines =
        let rec take acc = function
          | "" :: _ | [] -> List.rev acc
          | l :: ls -> take (l :: acc) ls
        in
        take [] rest
      in
      let headers = parse_headers header_lines in
      let body =
        match Str_util.find_sub raw "\r\n\r\n" with
        | Some i -> String.sub raw (i + 4) (String.length raw - i - 4)
        | None -> ""
      in
      match String.split_on_char ' ' (String.trim request_line) with
      | meth :: path :: _ -> Some { meth; path; headers; body }
      | _ -> None))

(* A complete request has its header terminator and full body. *)
let is_complete raw =
  match Str_util.find_sub raw "\r\n\r\n" with
  | None -> false
  | Some i -> (
    match parse_request raw with
    | None -> false
    | Some req ->
      String.length raw - (i + 4) >= content_length req.headers
      || content_length req.headers = 0)

(* Read a full request from a connection using a recv function; returns
   None on EOF before a complete request. *)
let read_request recv =
  let buf = Buffer.create 256 in
  let rec go () =
    if is_complete (Buffer.contents buf) then parse_request (Buffer.contents buf)
    else
      let chunk = recv () in
      if chunk = "" then None
      else begin
        Buffer.add_string buf chunk;
        go ()
      end
  in
  go ()

let request ?(headers = []) ?(body = "") meth path =
  let headers =
    if body = "" then headers
    else ("Content-Length", string_of_int (String.length body)) :: headers
  in
  let hdrs =
    String.concat "" (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers)
  in
  Printf.sprintf "%s %s HTTP/1.0\r\n%s\r\n%s" meth path hdrs body

let response ~now ~status ?(headers = []) body =
  let reason =
    match status with
    | 200 -> "OK"
    | 201 -> "Created"
    | 404 -> "Not Found"
    | 500 -> "Internal Server Error"
    | _ -> "Unknown"
  in
  let hdrs =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers)
  in
  Printf.sprintf "HTTP/1.0 %d %s\r\nDate: %s\r\nContent-Length: %d\r\n%s\r\n%s" status
    reason now (String.length body) hdrs body

let status_of_response resp =
  match String.split_on_char ' ' resp with
  | _ :: code :: _ -> int_of_string_opt code
  | _ -> None
