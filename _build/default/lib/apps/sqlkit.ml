(** A tiny in-memory table engine for the MySQL model: integer-keyed
    tables with point SELECT/UPDATE, serializable to a state blob for the
    CRIU-substitution checkpoint. *)

type table = { name : string; rows : (int, int) Hashtbl.t }

type db = { tables : (string, table) Hashtbl.t }

let create_db () = { tables = Hashtbl.create 16 }

let create_table db name rows =
  let t = { name; rows = Hashtbl.create (max 16 rows) } in
  for id = 1 to rows do
    Hashtbl.replace t.rows id (id * 37)
  done;
  Hashtbl.replace db.tables name t;
  t

let table db name = Hashtbl.find_opt db.tables name
let select t ~id = Hashtbl.find_opt t.rows id
let update t ~id ~value = Hashtbl.replace t.rows id value
let row_count t = Hashtbl.length t.rows

(* Deterministic serialization: sorted tables, sorted rows. *)
let serialize db =
  let tables =
    Hashtbl.fold (fun _ t acc -> t :: acc) db.tables []
    |> List.sort (fun a b -> compare a.name b.name)
  in
  let render t =
    let rows =
      Hashtbl.fold (fun id v acc -> (id, v) :: acc) t.rows [] |> List.sort compare
    in
    Printf.sprintf "%s:%s" t.name
      (String.concat "," (List.map (fun (id, v) -> Printf.sprintf "%d=%d" id v) rows))
  in
  String.concat ";" (List.map render tables)

let deserialize s =
  let db = create_db () in
  if s <> "" then
    List.iter
      (fun chunk ->
        match String.index_opt chunk ':' with
        | None -> ()
        | Some i ->
          let name = String.sub chunk 0 i in
          let rows_s = String.sub chunk (i + 1) (String.length chunk - i - 1) in
          let t = { name; rows = Hashtbl.create 64 } in
          if rows_s <> "" then
            List.iter
              (fun kv ->
                match String.split_on_char '=' kv with
                | [ id; v ] -> Hashtbl.replace t.rows (int_of_string id) (int_of_string v)
                | _ -> ())
              (String.split_on_char ',' rows_s);
          Hashtbl.replace db.tables name t)
      (String.split_on_char ';' s);
  db

(* Very small SQL surface: SELECT c FROM t WHERE id=N / UPDATE t SET c=V
   WHERE id=N. *)
type stmt =
  | Select of { tbl : string; id : int }
  | Update of { tbl : string; id : int; value : int }

let parse_stmt line =
  let words =
    String.split_on_char ' ' (String.trim line) |> List.filter (fun w -> w <> "")
  in
  match words with
  | [ "SELECT"; _; "FROM"; tbl; "WHERE"; cond ] -> (
    match String.split_on_char '=' cond with
    | [ "id"; n ] -> Option.map (fun id -> Select { tbl; id }) (int_of_string_opt n)
    | _ -> None)
  | [ "UPDATE"; tbl; "SET"; assign; "WHERE"; cond ] -> (
    match (String.split_on_char '=' assign, String.split_on_char '=' cond) with
    | [ "c"; v ], [ "id"; n ] -> (
      match (int_of_string_opt v, int_of_string_opt n) with
      | Some value, Some id -> Some (Update { tbl; id; value })
      | _, _ -> None)
    | _, _ -> None)
  | _ -> None
