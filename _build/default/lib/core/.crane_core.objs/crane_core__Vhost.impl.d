lib/core/vhost.ml: Crane_dmt Crane_sim Crane_socket Event Hashtbl Output_log Paxos_seq Printf Queue
