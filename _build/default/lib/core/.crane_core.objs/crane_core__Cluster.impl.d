lib/core/cluster.ml: Api Crane_checkpoint Crane_fs Crane_net Crane_paxos Crane_sim Crane_socket Crane_storage Hashtbl Instance List Option Printexc Printf
