lib/core/standalone.ml: Api Crane_dmt Crane_fs Crane_net Crane_sim Crane_socket Printexc Printf Runtime
