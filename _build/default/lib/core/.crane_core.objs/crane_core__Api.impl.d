lib/core/api.ml: Crane_fs Crane_sim
