lib/core/paxos_seq.ml: Crane_sim Event Queue
