lib/core/event.ml: Format Marshal String
