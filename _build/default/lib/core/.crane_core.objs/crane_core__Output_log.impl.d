lib/core/output_log.ml: List Printf String
