lib/core/instance.ml: Api Crane_checkpoint Crane_dmt Crane_fs Crane_net Crane_paxos Crane_pthread Crane_sim Crane_socket Crane_storage Event List Paxos_seq Proxy Runtime Vhost
