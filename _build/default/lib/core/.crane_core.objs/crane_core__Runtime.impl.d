lib/core/runtime.ml: Api Crane_dmt Crane_pthread Crane_sim Crane_socket Output_log Vhost
