lib/core/proxy.ml: Crane_paxos Crane_sim Crane_socket Event Hashtbl Printf Vhost
