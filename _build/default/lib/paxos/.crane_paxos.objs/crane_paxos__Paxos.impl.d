lib/paxos/paxos.ml: Crane_net Crane_sim Crane_storage Hashtbl List Marshal Option
