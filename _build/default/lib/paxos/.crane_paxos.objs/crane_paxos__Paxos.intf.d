lib/paxos/paxos.mli: Crane_net Crane_sim Crane_storage
