lib/dmt/dmt.mli: Crane_sim
