lib/dmt/dmt.ml: Crane_sim Hashtbl List Queue
