(** Textual diff/patch between filesystem snapshots.

    Models the paper's incremental filesystem checkpoint: "uses
    [diff --text] to generate a patch of the current working directory and
    the server's installation directory against an LXC snapshot prepared
    before any server starts".  Changed files are diffed line-wise
    (common prefix/suffix elision), so a small append to a big log file
    yields a small patch — the property that makes Table 2's incremental
    checkpoints cheap. *)

type patch

val diff : base:Memfs.snapshot -> target:Memfs.snapshot -> patch
val apply : base:Memfs.snapshot -> patch -> Memfs.snapshot
(** [apply ~base (diff ~base ~target) = target]. *)

val is_empty : patch -> bool

val patch_bytes : patch -> int
(** Serialized size of the patch: drives the checkpoint cost model. *)

val files_touched : patch -> int

val scanned_bytes : base:Memfs.snapshot -> target:Memfs.snapshot -> int
(** Bytes diff had to read to produce the patch (both trees). *)
