module M = Map.Make (String)

type snapshot = string M.t

type t = { mutable files : snapshot }

let create () = { files = M.empty }

let write t ~path content = t.files <- M.add path content t.files

let append t ~path content =
  let current = match M.find_opt path t.files with Some c -> c | None -> "" in
  t.files <- M.add path (current ^ content) t.files

let read t ~path = M.find_opt path t.files

let read_exn t ~path =
  match read t ~path with
  | Some c -> c
  | None -> raise Not_found

let exists t ~path = M.mem path t.files
let delete t ~path = t.files <- M.remove path t.files

let list t ~prefix =
  M.fold
    (fun path _ acc -> if String.starts_with ~prefix path then path :: acc else acc)
    t.files []
  |> List.sort compare

let file_count t = M.cardinal t.files
let total_bytes t = M.fold (fun _ c acc -> acc + String.length c) t.files 0

let snapshot t = t.files
let restore t snap = t.files <- snap
let of_snapshot snap = { files = snap }
let snapshot_bytes snap = M.fold (fun _ c acc -> acc + String.length c) snap 0
let snapshot_equal = M.equal String.equal
let iter_snapshot snap f = M.iter f snap
