(** LXC-like container (paper §5.2).

    Wraps a server's filesystem in an isolated namespace with a base
    snapshot taken "before any server starts", against which incremental
    checkpoints are diffed.  Stop/start charge the paper's observed 2-5 s
    of daemon bootstrap.  "Unconfined mode" must be enabled for CRIU to
    touch system files (ns_last_pid) — modelled as a flag the checkpointer
    checks. *)

type t

val create :
  Crane_sim.Engine.t ->
  name:string ->
  ?unconfined:bool ->
  ?stop_cost:Crane_sim.Time.t ->
  ?start_cost:Crane_sim.Time.t ->
  Memfs.t ->
  t
(** Takes the base snapshot at creation.  Default stop cost 1.2 s, start
    cost 2.2 s (a common stop+restart lands in the paper's 2-5 s). *)

val name : t -> string
val fs : t -> Memfs.t
val base_snapshot : t -> Memfs.snapshot
val unconfined : t -> bool
val running : t -> bool

val start : t -> unit
(** Blocking (call from a simulated thread).  Idempotent. *)

val stop : t -> unit
(** Blocking.  Idempotent. *)

exception Confined
(** Raised by CRIU-style operations when the container is not in
    unconfined mode. *)

val require_unconfined : t -> unit
