type hunk =
  | Add_file of string
  | Delete_file
  | Edit of { keep_prefix : int; keep_suffix : int; replacement : string list }
      (* Line-wise: keep the first [keep_prefix] and last [keep_suffix]
         lines of the base file, splice [replacement] in between. *)

type patch = (string * hunk) list (* path -> hunk, sorted by path *)

let split_lines s = String.split_on_char '\n' s
let join_lines l = String.concat "\n" l

let edit_of_strings old_c new_c =
  let old_l = Array.of_list (split_lines old_c) in
  let new_l = Array.of_list (split_lines new_c) in
  let n_old = Array.length old_l and n_new = Array.length new_l in
  let max_prefix = min n_old n_new in
  let rec prefix i = if i < max_prefix && old_l.(i) = new_l.(i) then prefix (i + 1) else i in
  let p = prefix 0 in
  let max_suffix = min n_old n_new - p in
  let rec suffix i =
    if i < max_suffix && old_l.(n_old - 1 - i) = new_l.(n_new - 1 - i) then suffix (i + 1)
    else i
  in
  let s = suffix 0 in
  let replacement = Array.to_list (Array.sub new_l p (n_new - p - s)) in
  Edit { keep_prefix = p; keep_suffix = s; replacement }

let diff ~base ~target =
  let acc = ref [] in
  Memfs.iter_snapshot target (fun path new_c ->
      match
        let b = Memfs.of_snapshot base in
        Memfs.read b ~path
      with
      | None -> acc := (path, Add_file new_c) :: !acc
      | Some old_c -> if old_c <> new_c then acc := (path, edit_of_strings old_c new_c) :: !acc);
  let tgt = Memfs.of_snapshot target in
  Memfs.iter_snapshot base (fun path _ ->
      if not (Memfs.exists tgt ~path) then acc := (path, Delete_file) :: !acc);
  List.sort (fun (a, _) (b, _) -> compare a b) !acc

let apply ~base patch =
  let fs = Memfs.of_snapshot base in
  List.iter
    (fun (path, hunk) ->
      match hunk with
      | Add_file c -> Memfs.write fs ~path c
      | Delete_file -> Memfs.delete fs ~path
      | Edit { keep_prefix; keep_suffix; replacement } ->
        let old_l = split_lines (Memfs.read_exn fs ~path) in
        let n = List.length old_l in
        let pre = List.filteri (fun i _ -> i < keep_prefix) old_l in
        let post = List.filteri (fun i _ -> i >= n - keep_suffix) old_l in
        Memfs.write fs ~path (join_lines (pre @ replacement @ post)))
    patch;
  Memfs.snapshot fs

let is_empty p = p = []

let hunk_bytes = function
  | Add_file c -> String.length c + 16
  | Delete_file -> 16
  | Edit { replacement; _ } ->
    List.fold_left (fun acc l -> acc + String.length l + 1) 24 replacement

let patch_bytes p =
  List.fold_left (fun acc (path, h) -> acc + String.length path + hunk_bytes h) 0 p

let files_touched p = List.length p

let scanned_bytes ~base ~target =
  Memfs.snapshot_bytes base + Memfs.snapshot_bytes target
