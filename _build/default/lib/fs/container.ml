module Time = Crane_sim.Time
module Engine = Crane_sim.Engine

exception Confined

type t = {
  eng : Engine.t;
  cname : string;
  cfs : Memfs.t;
  base : Memfs.snapshot;
  uncnf : bool;
  stop_cost : Time.t;
  start_cost : Time.t;
  mutable up : bool;
}

let create eng ~name ?(unconfined = true) ?(stop_cost = Time.ms 1200)
    ?(start_cost = Time.ms 2200) fs =
  {
    eng;
    cname = name;
    cfs = fs;
    base = Memfs.snapshot fs;
    uncnf = unconfined;
    stop_cost;
    start_cost;
    up = true;
  }

let name t = t.cname
let fs t = t.cfs
let base_snapshot t = t.base
let unconfined t = t.uncnf
let running t = t.up

let start t =
  if not t.up then begin
    Engine.sleep t.eng t.start_cost;
    t.up <- true
  end

let stop t =
  if t.up then begin
    Engine.sleep t.eng t.stop_cost;
    t.up <- false
  end

let require_unconfined t = if not t.uncnf then raise Confined
