(** In-memory filesystem — the state CRANE checkpoints with LXC (§5.2).

    Paths are flat strings ("www/a.php", "db/t1.ibd").  Snapshots are O(1)
    persistent copies; the textual diff between two snapshots is the
    incremental filesystem checkpoint of the paper ("diff --text" against
    an LXC snapshot prepared before any server starts). *)

type t

type snapshot

val create : unit -> t

val write : t -> path:string -> string -> unit
val append : t -> path:string -> string -> unit
val read : t -> path:string -> string option
val read_exn : t -> path:string -> string
val exists : t -> path:string -> bool
val delete : t -> path:string -> unit

val list : t -> prefix:string -> string list
(** Paths under a prefix, sorted. *)

val file_count : t -> int
val total_bytes : t -> int

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
val of_snapshot : snapshot -> t
val snapshot_bytes : snapshot -> int
val snapshot_equal : snapshot -> snapshot -> bool
val iter_snapshot : snapshot -> (string -> string -> unit) -> unit
