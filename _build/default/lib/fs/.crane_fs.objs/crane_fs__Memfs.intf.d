lib/fs/memfs.mli:
