lib/fs/container.mli: Crane_sim Memfs
