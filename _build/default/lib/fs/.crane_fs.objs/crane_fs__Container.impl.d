lib/fs/container.ml: Crane_sim Memfs
