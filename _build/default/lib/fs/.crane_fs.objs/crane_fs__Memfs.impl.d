lib/fs/memfs.ml: List Map String
