lib/fs/fsdiff.ml: Array List Memfs String
