lib/fs/fsdiff.mli: Memfs
