(** One-request client implementations for each benchmark of §7:
    ApacheBench (HTTP), clamdscan (clamd line protocol), SysBench (SQL
    point queries), the MediaTomb transcode request, and curl (the §2.2
    PUT/GET micro-benchmark).  Each returns the response payload on
    success. *)

module Time = Crane_sim.Time
module Engine = Crane_sim.Engine
module Sock = Crane_socket.Sock

let recv_timeout = Time.sec 120

(* Read until [stop] says the accumulated response is complete (or EOF). *)
let read_until conn ~stop =
  let buf = Buffer.create 256 in
  let rec go () =
    if stop (Buffer.contents buf) then Some (Buffer.contents buf)
    else
      let chunk = Sock.recv ~timeout:recv_timeout conn ~max:8192 in
      if chunk = "" then
        if Buffer.length buf > 0 then Some (Buffer.contents buf) else None
      else begin
        Buffer.add_string buf chunk;
        go ()
      end
  in
  go ()

let http_complete resp =
  match Crane_apps.Str_util.find_sub resp "\r\n\r\n" with
  | None -> false
  | Some i -> (
    (* Headers in; is the advertised body in too? *)
    let headers = String.sub resp 0 i in
    let body_len = String.length resp - (i + 4) in
    let advertised =
      List.fold_left
        (fun acc line ->
          match String.lowercase_ascii line with
          | l when String.length l > 15 && String.sub l 0 15 = "content-length:" ->
            int_of_string_opt (String.trim (String.sub l 15 (String.length l - 15)))
          | _ -> acc)
        None
        (String.split_on_char '\n' headers)
    in
    match advertised with Some n -> body_len >= n | None -> false)

(* ApacheBench: one HTTP request per connection. *)
let http_request target ~from ~meth ~path ?(body = "") () =
  match Target.connect target ~from with
  | None -> None
  | Some conn ->
    Sock.send conn (Crane_apps.Httpkit.request ~body meth path);
    let resp = read_until conn ~stop:http_complete in
    Sock.close conn;
    resp

let apachebench target ~from = http_request target ~from ~meth:"GET" ~path:"/test.php" ()

let mediabench target ~from =
  http_request target ~from ~meth:"GET" ~path:"/transcode/video15.avi" ()

(* clamdscan: one session scans several directories (the ~18 socket calls
   per request of Table 1). *)
let clamdscan ?(dirs = 8) target ~from =
  match Target.connect target ~from with
  | None -> None
  | Some conn ->
    let out = Buffer.create 256 in
    let ok = ref true in
    for d = 0 to dirs - 1 do
      if !ok then begin
        Sock.send conn (Printf.sprintf "SCAN src/dir%d\n" d);
        match
          read_until conn ~stop:(fun r -> Crane_apps.Str_util.find_sub r "OK" <> None)
        with
        | Some resp -> Buffer.add_string out resp
        | None -> ok := false
      end
    done;
    Sock.send conn "END\n";
    Sock.close conn;
    if !ok then Some (Buffer.contents out) else None

(* SysBench: handshake + one point query per connection. *)
let sysbench ~rng ~ntables ~rows target ~from =
  let module Rng = Crane_sim.Rng in
  let table = 1 + Rng.int rng ntables in
  let id = 1 + Rng.int rng rows in
  match Target.connect target ~from with
  | None -> None
  | Some conn ->
    let result =
      match
        read_until conn ~stop:(fun r -> Crane_apps.Str_util.find_sub r "ready" <> None)
      with
      | None -> None
      | Some _banner -> (
        Sock.send conn (Printf.sprintf "SELECT c FROM sbtest%d WHERE id=%d\n" table id);
        read_until conn ~stop:(fun r -> Crane_apps.Str_util.find_sub r "\n" <> None))
    in
    Sock.close conn;
    result

(* curl: single calls for the §2.2 PUT/GET race micro-benchmark. *)
let curl_put target ~from ~path ~body = http_request target ~from ~meth:"PUT" ~path ~body ()
let curl_get target ~from ~path = http_request target ~from ~meth:"GET" ~path ()
