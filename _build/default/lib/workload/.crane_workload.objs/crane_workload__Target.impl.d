lib/workload/target.ml: Crane_core Crane_sim Crane_socket List
