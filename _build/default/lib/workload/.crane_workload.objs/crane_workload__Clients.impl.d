lib/workload/clients.ml: Buffer Crane_apps Crane_sim Crane_socket List Printf String Target
