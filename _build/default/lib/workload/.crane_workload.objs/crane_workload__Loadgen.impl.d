lib/workload/loadgen.ml: Crane_sim List Printf Target
