lib/checkpoint/criu.ml: Crane_fs Crane_sim
