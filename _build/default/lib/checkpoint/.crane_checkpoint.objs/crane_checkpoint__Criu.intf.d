lib/checkpoint/criu.mli: Crane_fs Crane_sim
