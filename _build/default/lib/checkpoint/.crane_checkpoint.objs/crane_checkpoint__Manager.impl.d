lib/checkpoint/manager.ml: Crane_fs Crane_sim Criu
