lib/checkpoint/manager.mli: Crane_fs Crane_sim Criu
