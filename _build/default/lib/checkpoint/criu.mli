(** CRIU stand-in: process checkpoint/restore (paper §5.2).

    Real CRIU dumps CPU registers and memory pages of a process.  A
    simulator has no process image, so the honest equivalent is a state
    blob provided by the replica runtime (DESIGN.md documents this
    substitution); the {e cost} is charged against the declared resident
    memory of the process, calibrated so the paper's Table 2 magnitudes
    come out (hundreds of ms for a ClamAV-sized image).

    Dump and restore require the container to run unconfined, as in the
    paper (CRIU must modify ns_last_pid). *)

type image = { payload : string;  (** serialized process state *) mem_bytes : int }

val dump :
  Crane_sim.Engine.t -> Crane_fs.Container.t -> state:string -> mem_bytes:int -> image
(** Blocking.  @raise Crane_fs.Container.Confined *)

val restore : Crane_sim.Engine.t -> Crane_fs.Container.t -> image -> string
(** Blocking; returns the state blob to rebuild the process from.
    @raise Crane_fs.Container.Confined *)

val dump_cost : mem_bytes:int -> Crane_sim.Time.t
val restore_cost : mem_bytes:int -> Crane_sim.Time.t
