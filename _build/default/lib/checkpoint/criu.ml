module Time = Crane_sim.Time
module Engine = Crane_sim.Engine
module Container = Crane_fs.Container

type image = { payload : string; mem_bytes : int }

(* Calibrated against Table 2: ClamAV (~50 MB resident) dumps in ~415 ms
   and restores in ~353 ms; Mongoose (~1.5 MB) in ~15 ms. *)
let base_cost = Time.ms 3
let dump_ns_per_byte = 8
let restore_ns_per_byte = 7

let dump_cost ~mem_bytes = base_cost + (mem_bytes * dump_ns_per_byte)
let restore_cost ~mem_bytes = base_cost + (mem_bytes * restore_ns_per_byte)

let dump eng container ~state ~mem_bytes =
  Container.require_unconfined container;
  Engine.sleep eng (dump_cost ~mem_bytes);
  { payload = state; mem_bytes }

let restore eng container image =
  Container.require_unconfined container;
  Engine.sleep eng (restore_cost ~mem_bytes:image.mem_bytes);
  image.payload
