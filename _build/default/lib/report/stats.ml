(** Sample statistics for benchmark results (virtual-time latencies). *)

let sorted samples = List.sort compare samples

let median samples =
  match sorted samples with
  | [] -> 0
  | s ->
    let n = List.length s in
    List.nth s (n / 2)

let percentile p samples =
  match sorted samples with
  | [] -> 0
  | s ->
    let n = List.length s in
    let idx = int_of_float (Float.of_int (n - 1) *. p) in
    List.nth s idx

let mean samples =
  match samples with
  | [] -> 0.0
  | s -> float_of_int (List.fold_left ( + ) 0 s) /. float_of_int (List.length s)

let min_max samples =
  match sorted samples with
  | [] -> (0, 0)
  | s -> (List.hd s, List.nth s (List.length s - 1))

(** Normalized performance as the paper plots it: baseline median
    response time / system median response time, in percent (100 = equal,
    <100 = overhead, >100 = speedup). *)
let normalized_pct ~baseline ~system =
  if system = 0 then 0.0 else 100.0 *. float_of_int baseline /. float_of_int system

(** Overhead percentage: (system - baseline) / baseline * 100. *)
let overhead_pct ~baseline ~system =
  if baseline = 0 then 0.0
  else 100.0 *. float_of_int (system - baseline) /. float_of_int baseline
