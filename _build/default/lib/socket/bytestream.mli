(** FIFO byte buffer with partial reads — the receive side of a
    simulated TCP connection. *)

type t

val create : unit -> t
val is_empty : t -> bool
val length : t -> int

val push : t -> string -> unit
(** Append a chunk (empty chunks are ignored). *)

val take : t -> max:int -> string
(** Remove and return up to [max] bytes ("" when empty). *)

val take_all : t -> string
