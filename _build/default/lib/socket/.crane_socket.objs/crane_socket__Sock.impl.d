lib/socket/sock.ml: Bytestream Crane_net Crane_sim Hashtbl List Printf Queue String
