lib/socket/bytestream.mli:
