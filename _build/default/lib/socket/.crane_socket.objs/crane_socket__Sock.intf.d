lib/socket/sock.mli: Crane_net Crane_sim
