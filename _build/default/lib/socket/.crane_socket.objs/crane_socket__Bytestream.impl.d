lib/socket/bytestream.ml: Buffer Queue String
