type t = { chunks : string Queue.t; mutable offset : int; mutable length : int }

let create () = { chunks = Queue.create (); offset = 0; length = 0 }
let is_empty t = t.length = 0
let length t = t.length

let push t s =
  if String.length s > 0 then begin
    Queue.add s t.chunks;
    t.length <- t.length + String.length s
  end

let take t ~max =
  if max <= 0 || t.length = 0 then ""
  else begin
    let buf = Buffer.create (min max t.length) in
    let remaining = ref max in
    let continue_ = ref true in
    while !continue_ && !remaining > 0 && not (Queue.is_empty t.chunks) do
      let head = Queue.peek t.chunks in
      let avail = String.length head - t.offset in
      if avail <= !remaining then begin
        Buffer.add_substring buf head t.offset avail;
        remaining := !remaining - avail;
        t.offset <- 0;
        ignore (Queue.pop t.chunks)
      end
      else begin
        Buffer.add_substring buf head t.offset !remaining;
        t.offset <- t.offset + !remaining;
        remaining := 0;
        continue_ := false
      end
    done;
    let s = Buffer.contents buf in
    t.length <- t.length - String.length s;
    s
  end

let take_all t = take t ~max:t.length
