lib/net/fabric.ml: Crane_sim Format Hashtbl List
