lib/net/fabric.mli: Crane_sim Format
