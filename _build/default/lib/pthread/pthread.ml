module Time = Crane_sim.Time
module Engine = Crane_sim.Engine
module Rng = Crane_sim.Rng

type cost = { uncontended : Time.t; context_switch : Time.t; wake_jitter : Time.t }

let default_cost =
  { uncontended = Time.ns 60; context_switch = Time.ns 1500; wake_jitter = Time.us 150 }

type t = {
  eng : Engine.t;
  rng : Rng.t;
  cost : cost;
  mutable sync_ops : int;
  mutable context_switches : int;
}

let create ?(cost = default_cost) eng rng =
  { eng; rng; cost; sync_ops = 0; context_switches = 0 }

let engine t = t.eng
let sync_ops t = t.sync_ops
let context_switches t = t.context_switches

(* A wait set with randomized wake order: the OS scheduler model. *)
module Waitset = struct
  type w = { rt : t; mutable waiters : (unit -> bool) list }

  let create rt = { rt; waiters = [] }

  let park w =
    w.rt.context_switches <- w.rt.context_switches + 1;
    Engine.suspend w.rt.eng (fun wake -> w.waiters <- w.waiters @ [ wake ]);
    (* Charge the wake-up half of the context switch, plus OS scheduling
       latency (wake-to-run delay on a loaded machine). *)
    let jitter =
      if w.rt.cost.wake_jitter > 0 then Rng.int w.rt.rng w.rt.cost.wake_jitter else 0
    in
    Engine.sleep w.rt.eng (w.rt.cost.context_switch + jitter)

  (* Wake one waiter chosen at random; returns false when none was woken. *)
  let rec wake_one w =
    match w.waiters with
    | [] -> false
    | waiters ->
      let i = Rng.int w.rt.rng (List.length waiters) in
      let chosen = List.nth waiters i in
      w.waiters <- List.filteri (fun j _ -> j <> i) waiters;
      if chosen () then true else wake_one w

  let wake_all w =
    let all = w.waiters in
    w.waiters <- [];
    List.iter (fun wake -> ignore (wake ())) (Rng.shuffle w.rt.rng all)
end

let charge_fast rt =
  rt.sync_ops <- rt.sync_ops + 1;
  if rt.cost.uncontended > 0 then Engine.sleep rt.eng rt.cost.uncontended

module Mutex = struct
  type m = { rt : t; mutable locked : bool; ws : Waitset.w }

  let create rt = { rt; locked = false; ws = Waitset.create rt }

  let rec lock m =
    charge_fast m.rt;
    if m.locked then begin
      Waitset.park m.ws;
      lock m
    end
    else m.locked <- true

  let try_lock m =
    charge_fast m.rt;
    if m.locked then false
    else begin
      m.locked <- true;
      true
    end

  let unlock m =
    if not m.locked then invalid_arg "Pthread.Mutex.unlock: not locked";
    charge_fast m.rt;
    m.locked <- false;
    ignore (Waitset.wake_one m.ws)
end

module Cond = struct
  type c = { rt : t; ws : Waitset.w }

  let create rt = { rt; ws = Waitset.create rt }

  let wait c mu =
    charge_fast c.rt;
    Mutex.unlock mu;
    Waitset.park c.ws;
    Mutex.lock mu

  let signal c =
    charge_fast c.rt;
    ignore (Waitset.wake_one c.ws)

  let broadcast c =
    charge_fast c.rt;
    Waitset.wake_all c.ws
end

module Rwlock = struct
  type rw = { rt : t; mutable readers : int; mutable writer : bool; ws : Waitset.w }

  let create rt = { rt; readers = 0; writer = false; ws = Waitset.create rt }

  let rec rdlock l =
    charge_fast l.rt;
    if l.writer then begin
      Waitset.park l.ws;
      rdlock l
    end
    else l.readers <- l.readers + 1

  let rec wrlock l =
    charge_fast l.rt;
    if l.writer || l.readers > 0 then begin
      Waitset.park l.ws;
      wrlock l
    end
    else l.writer <- true

  let unlock l =
    charge_fast l.rt;
    if l.writer then l.writer <- false
    else if l.readers > 0 then l.readers <- l.readers - 1
    else invalid_arg "Pthread.Rwlock.unlock: not held";
    Waitset.wake_all l.ws
end

module Sem = struct
  type s = { rt : t; mutable count : int; ws : Waitset.w }

  let create rt count = { rt; count; ws = Waitset.create rt }

  let post s =
    charge_fast s.rt;
    s.count <- s.count + 1;
    ignore (Waitset.wake_one s.ws)

  let rec wait s =
    charge_fast s.rt;
    if s.count > 0 then s.count <- s.count - 1
    else begin
      Waitset.park s.ws;
      wait s
    end
end

module Barrier = struct
  type b = { rt : t; n : int; mutable arrived : int; ws : Waitset.w }

  let create rt n = { rt; n; arrived = 0; ws = Waitset.create rt }

  let wait b =
    charge_fast b.rt;
    b.arrived <- b.arrived + 1;
    if b.arrived >= b.n then begin
      b.arrived <- 0;
      Waitset.wake_all b.ws
    end
    else Waitset.park b.ws
end
