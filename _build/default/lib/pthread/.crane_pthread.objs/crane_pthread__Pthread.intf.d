lib/pthread/pthread.mli: Crane_sim
