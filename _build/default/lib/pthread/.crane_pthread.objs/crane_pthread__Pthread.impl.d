lib/pthread/pthread.ml: Crane_sim List
