module Time = Crane_sim.Time
module Engine = Crane_sim.Engine

type t = {
  eng : Engine.t;
  wname : string;
  write_latency : Time.t;
  mutable stable : string list; (* newest first *)
  mutable writes : int;
  (* Writes become stable in submission order even when issued
     concurrently: model a single flash channel. *)
  mutable last_stable_at : Time.t;
}

let create ?(write_latency = Time.us 15) eng ~name =
  { eng; wname = name; write_latency; stable = []; writes = 0; last_stable_at = Time.zero }

let name t = t.wname

let stable_time t =
  let now = Engine.now t.eng in
  let at = max (now + t.write_latency) (t.last_stable_at + t.write_latency) in
  t.last_stable_at <- at;
  at

let append_async t record k =
  t.writes <- t.writes + 1;
  Engine.at t.eng (stable_time t) (fun () ->
      t.stable <- record :: t.stable;
      k ())

let append t record =
  Engine.suspend t.eng (fun wake ->
      append_async t record (fun () -> ignore (wake ())))

let records t = List.rev t.stable
let length t = List.length t.stable
let writes t = t.writes

let reset t =
  t.stable <- [];
  t.writes <- 0
