lib/storage/wal.ml: Crane_sim List
