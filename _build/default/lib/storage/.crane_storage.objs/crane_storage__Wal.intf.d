lib/storage/wal.mli: Crane_sim
