(** Write-ahead log on simulated SSD — the Berkeley-DB stand-in of §5.1.

    The paper persists every consensus decision (call type, arguments,
    global index) to a Berkeley DB on SSD.  Here a record is an opaque
    string; a synchronous append charges the SSD fsync latency, an
    asynchronous append invokes a continuation when the write is stable.
    Contents survive "process crashes" (the record list lives outside any
    engine group), which is what replica recovery replays. *)

type t

val create : ?write_latency:Crane_sim.Time.t -> Crane_sim.Engine.t -> name:string -> t
(** Default write latency 15 us (datacenter NVMe fsync). *)

val name : t -> string

val append : t -> string -> unit
(** Blocking durable append; call from a simulated thread. *)

val append_async : t -> string -> (unit -> unit) -> unit
(** Durable append from callback context; the continuation runs once the
    record is stable. *)

val records : t -> string list
(** All stable records, oldest first. *)

val length : t -> int
val writes : t -> int
(** Number of durable writes performed (cost accounting). *)

val reset : t -> unit
(** Wipe the log (modelling disk replacement in tests). *)
