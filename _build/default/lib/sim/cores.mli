(** Per-replica CPU model.

    A replica machine has a fixed number of cores.  A thread performing a
    compute burst occupies one core for the burst's duration; bursts beyond
    the core count queue FIFO.  This is what makes "compute runs in
    parallel, synchronization is serialized" measurable: DMT serializes
    sync operations but compute segments between them still overlap
    (PARROT's moderate-overhead claim), while a serialized schedule keeps
    cores idle. *)

type t

val create : Engine.t -> int -> t
(** [create eng n] is a pool of [n] cores ([n >= 1]). *)

val capacity : t -> int

val work : t -> Time.t -> unit
(** Occupy one core for a duration.  Blocks the calling thread until a
    core is free, then for the duration itself.  Zero-duration work
    returns immediately without taking a core. *)

val busy : t -> int
(** Number of cores currently occupied. *)
