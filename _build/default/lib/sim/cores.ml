type t = {
  eng : Engine.t;
  n : int;
  mutable in_use : int;
  waiters : (unit -> bool) Queue.t;
}

let create eng n =
  if n < 1 then invalid_arg "Cores.create: need at least one core";
  { eng; n; in_use = 0; waiters = Queue.create () }

let capacity t = t.n
let busy t = t.in_use

let acquire t =
  if t.in_use < t.n then t.in_use <- t.in_use + 1
  else Engine.suspend t.eng (fun wake -> Queue.add wake t.waiters)

let release t =
  (* Hand the core to the next live waiter, if any. *)
  let rec hand_over () =
    match Queue.take_opt t.waiters with
    | None -> t.in_use <- t.in_use - 1
    | Some wake -> if not (wake ()) then hand_over ()
  in
  hand_over ()

let work t d =
  if d > 0 then begin
    acquire t;
    Engine.sleep t.eng d;
    release t
  end
