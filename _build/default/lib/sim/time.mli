(** Virtual time for the discrete-event simulator.

    All durations and instants in the simulation are expressed in
    nanoseconds of virtual time.  No wall-clock time is ever consulted, so
    a run is reproducible bit-for-bit from its seed. *)

type t = int
(** An instant or a duration, in nanoseconds.  63-bit ints give ~292 years
    of simulated time, far beyond any experiment here. *)

val zero : t

val ns : int -> t
(** [ns n] is [n] nanoseconds. *)

val us : int -> t
(** [us n] is [n] microseconds. *)

val ms : int -> t
(** [ms n] is [n] milliseconds. *)

val sec : int -> t
(** [sec n] is [n] seconds. *)

val of_float_sec : float -> t
(** [of_float_sec s] converts [s] seconds to virtual time, rounding to the
    nearest nanosecond. *)

val to_float_sec : t -> float
val to_float_ms : t -> float
val to_float_us : t -> float

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit (ns/us/ms/s). *)

val to_string : t -> string
