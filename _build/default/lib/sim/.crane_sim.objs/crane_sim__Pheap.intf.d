lib/sim/pheap.mli: Time
