lib/sim/cores.mli: Engine Time
