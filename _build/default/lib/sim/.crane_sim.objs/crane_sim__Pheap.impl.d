lib/sim/pheap.ml: Array Obj Time
