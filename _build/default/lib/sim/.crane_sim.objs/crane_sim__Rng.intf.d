lib/sim/rng.mli:
