lib/sim/engine.ml: Effect Hashtbl List Pheap Time
