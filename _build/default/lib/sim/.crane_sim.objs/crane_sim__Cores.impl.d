lib/sim/cores.ml: Engine Queue
