(** Mutable binary min-heap keyed by [(time, sequence-number)].

    The event queue of the simulator.  The sequence number breaks ties
    between events scheduled for the same virtual instant, making the run
    order fully deterministic. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> time:Time.t -> seq:int -> 'a -> unit

val pop : 'a t -> (Time.t * int * 'a) option
(** Removes and returns the minimum element, ordered by time then seq. *)

val peek_time : 'a t -> Time.t option
(** The timestamp of the minimum element, without removing it. *)
