type 'a entry = { time : Time.t; seq : int; value : 'a }

type 'a t = { mutable data : 'a entry array; mutable size : int }

let dummy = { time = 0; seq = 0; value = Obj.magic 0 }

let create () = { data = Array.make 16 dummy; size = 0 }

let is_empty t = t.size = 0
let length t = t.size

let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let data = Array.make (2 * Array.length t.data) dummy in
  Array.blit t.data 0 data 0 t.size;
  t.data <- data

let push t ~time ~seq value =
  if t.size = Array.length t.data then grow t;
  let e = { time; seq; value } in
  (* Sift up. *)
  let rec up i =
    if i = 0 then t.data.(0) <- e
    else
      let parent = (i - 1) / 2 in
      if lt e t.data.(parent) then begin
        t.data.(i) <- t.data.(parent);
        up parent
      end
      else t.data.(i) <- e
  in
  up t.size;
  t.size <- t.size + 1

let pop t =
  if t.size = 0 then None
  else begin
    let min = t.data.(0) in
    t.size <- t.size - 1;
    let e = t.data.(t.size) in
    t.data.(t.size) <- dummy;
    if t.size > 0 then begin
      (* Sift down. *)
      let rec down i =
        let l = (2 * i) + 1 and r = (2 * i) + 2 in
        let smallest = if l < t.size && lt t.data.(l) e then l else i in
        let smallest =
          if r < t.size && lt t.data.(r) (if smallest = i then e else t.data.(smallest))
          then r
          else smallest
        in
        if smallest = i then t.data.(i) <- e
        else begin
          t.data.(i) <- t.data.(smallest);
          down smallest
        end
      in
      down 0
    end;
    Some (min.time, min.seq, min.value)
  end

let peek_time t = if t.size = 0 then None else Some t.data.(0).time
