(** Deterministic, splittable pseudo-random number generator (splitmix64).

    The simulator never uses [Stdlib.Random]: every source of modelled
    nondeterminism (network jitter, native-runtime wake order, workload
    think times) draws from an explicitly seeded [Rng.t], so an entire
    distributed execution replays from a single seed. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances.  Used to give
    each replica / client / subsystem its own stream so that adding draws
    in one component does not perturb another. *)

val next : t -> int64
(** Raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p]. *)

val pick : t -> 'a list -> 'a
(** Uniform choice from a non-empty list.  @raise Invalid_argument on []. *)

val shuffle : t -> 'a list -> 'a list
(** Fisher-Yates shuffle. *)

val exponential : t -> float -> float
(** [exponential t mean] samples an exponential distribution, used for
    Poisson request inter-arrival times in the workload generators. *)
