(** Plain-text table rendering for the benchmark harness output. *)

let render ~title ~header rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init ncols width in
  let pad c s = s ^ String.make (max 0 (c - String.length s)) ' ' in
  let render_row row =
    "| "
    ^ String.concat " | "
        (List.mapi (fun i w -> pad w (Option.value (List.nth_opt row i) ~default:"")) widths)
    ^ " |"
  in
  let sep =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"
  in
  let body = List.map render_row rows in
  String.concat "\n"
    ([ ""; "== " ^ title ^ " =="; sep; render_row header; sep ] @ body @ [ sep ])

let print ~title ~header rows = print_endline (render ~title ~header rows)

(** Rows for a capped histogram.  Bucket values at or above [cap] were
    folded into one top bucket by the producer, so labelling that bucket
    with the bare number would misstate the distribution — render it as
    ["<cap>+"] instead. *)
let histogram_rows ~cap hist =
  List.map
    (fun (size, count) ->
      let label =
        if size >= cap then string_of_int cap ^ "+" else string_of_int size
      in
      [ label; string_of_int count ])
    hist
