(** Sample statistics for benchmark results (virtual-time latencies).

    Each entry point sorts its input once into an array and indexes into
    it (the previous list-based version re-sorted and walked [List.nth]
    per call: O(n^2) on large samples). *)

let sorted_array samples =
  let a = Array.of_list samples in
  Array.sort compare a;
  a

let index_of_pct n p = int_of_float (Float.of_int (n - 1) *. p)

let median samples =
  match sorted_array samples with
  | [||] -> 0
  | a -> a.(Array.length a / 2)

let percentile p samples =
  match sorted_array samples with
  | [||] -> 0
  | a -> a.(index_of_pct (Array.length a) p)

(** All requested percentiles from a single sort: [percentiles ps s]
    returns one value per element of [ps] (all 0 on an empty sample). *)
let percentiles ps samples =
  match sorted_array samples with
  | [||] -> List.map (fun _ -> 0) ps
  | a ->
    let n = Array.length a in
    List.map (fun p -> a.(index_of_pct n p)) ps

let mean samples =
  match samples with
  | [] -> 0.0
  | s -> float_of_int (List.fold_left ( + ) 0 s) /. float_of_int (List.length s)

let min_max samples =
  match sorted_array samples with
  | [||] -> (0, 0)
  | a -> (a.(0), a.(Array.length a - 1))

(** Normalized performance as the paper plots it: baseline median
    response time / system median response time, in percent (100 = equal,
    <100 = overhead, >100 = speedup). *)
let normalized_pct ~baseline ~system =
  if system = 0 then 0.0 else 100.0 *. float_of_int baseline /. float_of_int system

(** Overhead percentage: (system - baseline) / baseline * 100. *)
let overhead_pct ~baseline ~system =
  if baseline = 0 then 0.0
  else 100.0 *. float_of_int (system - baseline) /. float_of_int baseline
