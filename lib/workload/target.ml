(** Where a benchmark client sends its requests: a standalone server or
    the current primary of a CRANE cluster (with failover retry). *)

module Time = Crane_sim.Time
module Engine = Crane_sim.Engine
module Sock = Crane_socket.Sock
module Cluster = Crane_core.Cluster
module Standalone = Crane_core.Standalone

type t = {
  eng : Engine.t;
  world : Sock.world;
  port : int;
  pick_node : unit -> string;
  fallbacks : unit -> string list;
      (** re-evaluated per attempt: live reconfiguration can change the
          member set while a client is mid-retry *)
}

let standalone sa ~port =
  {
    eng = Standalone.engine sa;
    world = Standalone.world sa;
    port;
    pick_node = (fun () -> "server");
    fallbacks = (fun () -> [ "server" ]);
  }

let cluster c ~port =
  {
    eng = Cluster.engine c;
    world = Cluster.world c;
    port;
    pick_node =
      (fun () ->
        match Cluster.primary_node c with
        | Some n -> n
        | None -> ( match Cluster.members c with n :: _ -> n | [] -> "replica1"));
    fallbacks = (fun () -> Cluster.members c);
  }

(** Read-port target preferring backup replicas: bounded-stale read
    traffic lands on the idle replicas and falls back to whatever is
    live (including the primary) when none are up. *)
let cluster_backups c ~port =
  {
    eng = Cluster.engine c;
    world = Cluster.world c;
    port;
    pick_node =
      (fun () ->
        match Cluster.backup_nodes c with
        | n :: _ -> n
        | [] -> (
          match Cluster.primary_node c with
          | Some n -> n
          | None -> ( match Cluster.members c with n :: _ -> n | [] -> "replica1")));
    fallbacks =
      (fun () ->
        match Cluster.backup_nodes c with [] -> Cluster.members c | bs -> bs);
  }

(** Connect to the service, retrying across nodes on refusal (a client
    finding the new primary after a failover — or, after a membership
    change, a freshly joined replacement).  None after [attempts]. *)
let connect ?(attempts = 30) t ~from =
  let rec go n =
    if n >= attempts then None
    else
      let node =
        if n = 0 then t.pick_node ()
        else
          match t.fallbacks () with
          | [] -> t.pick_node ()
          | fb -> List.nth fb (n mod List.length fb)
      in
      match Sock.connect t.world ~from ~node ~port:t.port with
      | conn -> Some conn
      | exception Sock.Connection_refused _ ->
        Engine.sleep t.eng (Time.ms 50);
        go (n + 1)
  in
  go 0
