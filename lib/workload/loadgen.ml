(** Closed-loop load generator, ApacheBench-style: [clients] concurrent
    client threads issue [requests] total requests against a target,
    recording per-request response time in virtual time.

    A request that fails transiently (connection refused everywhere, or
    EOF mid-request when the primary dies under it) is retried up to
    [retries] times with a bounded, deterministic backoff before it
    counts as a hard error — so chaos runs measure the system's
    availability, not the clients' fragility.  Retries are counted
    separately from errors.

    The backoff is linear with seeded per-(client, attempt) jitter: with
    a fixed step every concurrent client would retry in lockstep and
    re-stampede a recovering primary at the exact same instants.  The
    jitter is a pure hash of (seed, client name, attempt) — no RNG state
    — so fixed-seed runs stay byte-identical. *)

module Time = Crane_sim.Time
module Engine = Crane_sim.Engine

type result = {
  latencies : Time.t list;  (** successful requests, completion order *)
  completions : Time.t list;
      (** absolute completion instants of successful requests, completion
          order (gap analysis: client-visible unavailability windows) *)
  errors : int;  (** requests that failed even after retries *)
  retries : int;  (** transient failures that were retried *)
  wall : Time.t;  (** total virtual duration of the run *)
}

type handle = { collect : unit -> result; finished : unit -> bool }

let backoff_jitter ~seed ~from ~tries step =
  if step <= 0 then 0
  else Hashtbl.hash (seed, from, tries) mod (max 1 (step / 2))

let run ?(name = "load") ?(think = Time.zero) ?(retries = 0)
    ?(retry_backoff = Time.ms 50) ?(seed = 0) ~clients ~requests ~request
    target =
  let remaining = ref requests in
  let latencies = ref [] in
  let completions = ref [] in
  let errors = ref 0 in
  let retried = ref 0 in
  let active = ref clients in
  let finished = ref None in
  let eng = target.Target.eng in
  let t0 = Engine.now eng in
  for c = 1 to clients do
    Engine.spawn eng ~name:(Printf.sprintf "%s-client%d" name c) (fun () ->
        let from = Printf.sprintf "%s-c%d" name c in
        let rec attempt ~start tries =
          match request target ~from with
          | Some (_ : string) ->
            let now = Engine.now eng in
            latencies := (now - start) :: !latencies;
            completions := now :: !completions
          | None ->
            if tries < retries then begin
              incr retried;
              let jitter = backoff_jitter ~seed ~from ~tries retry_backoff in
              Engine.sleep eng ((retry_backoff * (tries + 1)) + jitter);
              attempt ~start (tries + 1)
            end
            else incr errors
        in
        let rec loop () =
          if !remaining > 0 then begin
            decr remaining;
            attempt ~start:(Engine.now eng) 0;
            if think > 0 then Engine.sleep eng think;
            loop ()
          end
        in
        loop ();
        decr active;
        if !active = 0 then finished := Some (Engine.now eng - t0))
  done;
  {
    collect =
      (fun () ->
        {
          latencies = List.rev !latencies;
          completions = List.rev !completions;
          errors = !errors;
          retries = !retried;
          wall = (match !finished with Some w -> w | None -> Engine.now eng - t0);
        });
    finished = (fun () -> !finished <> None);
  }

(* Step the engine until the workload completes (or the timeout passes):
   avoids simulating hours of idle cluster after the last response. *)
let drive ?(timeout = Time.sec 600) target handle =
  let eng = target.Target.eng in
  let deadline = Engine.now eng + timeout in
  let rec go () =
    if (not (handle.finished ())) && Engine.now eng < deadline then begin
      Engine.run ~until:(min deadline (Engine.now eng + Time.ms 500)) eng;
      go ()
    end
  in
  go ()
