(** Closed-loop load generator, ApacheBench-style: [clients] concurrent
    client threads issue [requests] total requests against a target,
    recording per-request response time in virtual time.

    A request that fails transiently (connection refused everywhere, or
    EOF mid-request when the primary dies under it) is retried up to
    [retries] times with a bounded, deterministic backoff before it
    counts as a hard error — so chaos runs measure the system's
    availability, not the clients' fragility.  Retries are counted
    separately from errors.

    The backoff is linear with seeded per-(client, attempt) jitter: with
    a fixed step every concurrent client would retry in lockstep and
    re-stampede a recovering primary at the exact same instants.  The
    jitter is a pure hash of (seed, client name, attempt) — no RNG state
    — so fixed-seed runs stay byte-identical. *)

module Time = Crane_sim.Time
module Engine = Crane_sim.Engine

type result = {
  latencies : Time.t list;  (** successful requests, completion order *)
  completions : Time.t list;
      (** absolute completion instants of successful requests, completion
          order (gap analysis: client-visible unavailability windows) *)
  errors : int;  (** requests that failed even after retries *)
  retries : int;  (** transient failures that were retried *)
  wall : Time.t;  (** total virtual duration of the run *)
  read_latencies : Time.t list;
      (** the [latencies] subset issued as fast-path reads (empty without
          a read mix), completion order *)
  write_latencies : Time.t list;
      (** the [latencies] subset issued as writes, completion order *)
}

type handle = { collect : unit -> result; finished : unit -> bool }

let backoff_jitter ~seed ~from ~tries step =
  if step <= 0 then 0
  else Hashtbl.hash (seed, from, tries) mod (max 1 (step / 2))

(* Read/write mix decision for one request: a pure hash of
   (seed, client name, request number), like the retry jitter — no RNG
   state, so fixed-seed runs stay byte-identical and the mix is stable
   under retries (a retried read stays a read). *)
let is_read ~seed ~from ~reqno read_pct =
  Hashtbl.hash (seed, from, reqno, "mix") mod 100 < read_pct

let run ?(name = "load") ?(think = Time.zero) ?(retries = 0)
    ?(retry_backoff = Time.ms 50) ?(seed = 0) ?(read_pct = 95) ?read_request
    ~clients ~requests ~request target =
  let remaining = ref requests in
  let latencies = ref [] in
  let completions = ref [] in
  let read_lat = ref [] in
  let write_lat = ref [] in
  let errors = ref 0 in
  let retried = ref 0 in
  let active = ref clients in
  let finished = ref None in
  let eng = target.Target.eng in
  let t0 = Engine.now eng in
  for c = 1 to clients do
    Engine.spawn eng ~name:(Printf.sprintf "%s-client%d" name c) (fun () ->
        let from = Printf.sprintf "%s-c%d" name c in
        let rec attempt ~start ~issue tries =
          match issue target ~from with
          | Some (_ : string) ->
            let now = Engine.now eng in
            latencies := (now - start) :: !latencies;
            completions := now :: !completions;
            Some (now - start)
          | None ->
            if tries < retries then begin
              incr retried;
              let jitter = backoff_jitter ~seed ~from ~tries retry_backoff in
              Engine.sleep eng ((retry_backoff * (tries + 1)) + jitter);
              attempt ~start ~issue (tries + 1)
            end
            else begin
              incr errors;
              None
            end
        in
        let rec loop () =
          if !remaining > 0 then begin
            let reqno = !remaining in
            decr remaining;
            (* The mix knob only engages when a read issuer is supplied:
               write-only callers keep the exact pre-split behaviour. *)
            let issue, mode_lat =
              match read_request with
              | Some rd when is_read ~seed ~from ~reqno read_pct ->
                (rd, read_lat)
              | Some _ | None -> (request, write_lat)
            in
            (match attempt ~start:(Engine.now eng) ~issue 0 with
            | Some lat -> mode_lat := lat :: !mode_lat
            | None -> ());
            if think > 0 then Engine.sleep eng think;
            loop ()
          end
        in
        loop ();
        decr active;
        if !active = 0 then finished := Some (Engine.now eng - t0))
  done;
  {
    collect =
      (fun () ->
        {
          latencies = List.rev !latencies;
          completions = List.rev !completions;
          errors = !errors;
          retries = !retried;
          wall = (match !finished with Some w -> w | None -> Engine.now eng - t0);
          read_latencies = List.rev !read_lat;
          write_latencies = List.rev !write_lat;
        });
    finished = (fun () -> !finished <> None);
  }

(* Step the engine until the workload completes (or the timeout passes):
   avoids simulating hours of idle cluster after the last response. *)
let drive ?(timeout = Time.sec 600) target handle =
  let eng = target.Target.eng in
  let deadline = Engine.now eng + timeout in
  let rec go () =
    if (not (handle.finished ())) && Engine.now eng < deadline then begin
      Engine.run ~until:(min deadline (Engine.now eng + Time.ms 500)) eng;
      go ()
    end
  in
  go ()
