(** Deterministic chaos harness: a Jepsen-style nemesis that runs inside
    the virtual-time simulator.

    A scenario is a fault schedule — timed steps or a seeded probabilistic
    stream — injected into a live CRANE cluster while a ledger workload
    runs against it.  Because every source of nondeterminism (fabric
    jitter, election jitter, nemesis choices, client think times) draws
    from the same seeded RNG tree and fires off engine timers, a run is a
    pure function of its seed: two runs with the same seed and scenario
    produce byte-identical reports.

    While the schedule plays out, an invariant sampler checks safety
    continuously (single primary per view, committed-prefix agreement);
    after the schedule the driver heals the network (it does {e not}
    restart crashed replicas — the cluster must cope with what survived),
    probes for liveness, and renders a verdict per invariant. *)

module Time = Crane_sim.Time
module Engine = Crane_sim.Engine
module Rng = Crane_sim.Rng
module Fabric = Crane_net.Fabric
module Paxos = Crane_paxos.Paxos
module Cluster = Crane_core.Cluster
module Instance = Crane_core.Instance
module Api = Crane_core.Api
module Output_log = Crane_core.Output_log
module Sock = Crane_socket.Sock
module Proxy = Crane_core.Proxy
module Target = Crane_workload.Target
module Loadgen = Crane_workload.Loadgen
module Trace = Crane_trace.Trace
module Metrics = Crane_trace.Metrics
module Table = Crane_report.Table

(* ------------------------------------------------------------------ *)
(* Scenario DSL                                                        *)

type fault =
  | Crash_primary of { torn_wal : bool }
      (** SIGKILL the current primary; with [torn_wal] the crash lands
          mid-WAL-append, leaving a torn tail for recovery to discard. *)
  | Crash_backup of { torn_wal : bool }  (** kill a random live backup *)
  | Crash_random  (** kill a random live replica (quorum-guarded) *)
  | Crash_node of string
      (** kill a specific replica by name — deterministic scenarios use it
          to pick a node that is {e not} the checkpoint backup, so its
          recovery must come through consensus state transfer rather than
          the out-of-band checkpoint shipment *)
  | Restart_one  (** restart the oldest crashed replica from a checkpoint *)
  | Partition_primary  (** symmetric: isolate the primary from everyone *)
  | Partition_oneway_primary
      (** asymmetric: block traffic {e towards} the primary only; backups
          still hear its heartbeats, so only primary abdication (on lost
          quorum contact) restores progress *)
  | Partition_random  (** symmetric: isolate a random live replica *)
  | Partition_node of string  (** symmetric: isolate a specific replica *)
  | Heal  (** remove all partitions *)
  | Loss_window of { loss : float; duration : Time.t }
  | Latency_spike of { base : Time.t; jitter : Time.t; duration : Time.t }
  | Replace of { dead : string; fresh : string }
      (** live reconfiguration: swap [dead] out of the membership for a
          freshly booted [fresh], routed through consensus *)
  | Replace_crashed of { fresh : string }
      (** like [Replace], but the victim is whichever replica crashed
          first — scenarios that kill the (unknown-by-name) primary use it
          to reconfigure the corpse out afterwards *)
  | Autoheal
      (** arm the cluster's failure detector: suspected-dead members are
          replaced automatically from here on *)

let fault_name = function
  | Crash_primary { torn_wal } -> if torn_wal then "crash_primary_torn" else "crash_primary"
  | Crash_backup { torn_wal } -> if torn_wal then "crash_backup_torn" else "crash_backup"
  | Crash_random -> "crash_random"
  | Crash_node n -> "crash_node " ^ n
  | Restart_one -> "restart"
  | Partition_primary -> "partition_primary"
  | Partition_oneway_primary -> "partition_oneway_primary"
  | Partition_random -> "partition_random"
  | Partition_node n -> "partition_node " ^ n
  | Heal -> "heal"
  | Loss_window _ -> "loss_window"
  | Latency_spike _ -> "latency_spike"
  | Replace { dead; fresh } -> Printf.sprintf "replace %s -> %s" dead fresh
  | Replace_crashed { fresh } -> Printf.sprintf "replace_crashed -> %s" fresh
  | Autoheal -> "autoheal"

type step = { at : Time.t; fault : fault }

type schedule =
  | Timed of step list
  | Probabilistic of { faults : int; start : Time.t; stop : Time.t }
      (** [faults] nemesis actions at seeded-random times in [start,stop],
          drawn from a weighted fault pool *)

type scenario = {
  name : string;
  about : string;
  schedule : schedule;
  duration : Time.t;  (** schedule horizon: faults all fire before this *)
  settle : Time.t;  (** quiet period after healing, before final checks *)
  clients : int;
  requests : int;
  think : Time.t;
  read_clients : int;
      (** fast-path read-burst threads hammering every replica's read
          port throughout the run (0 = no read traffic); their
          observations feed the bounded-stale-reads invariant *)
  expect_snapshot : bool;
      (** the scenario is built so that a replica falls behind the
          compaction watermark: the run must recover it through the
          snapshot catch-up path (at least one snapshot install) *)
  lease_fence : bool;
      (** arm the lease-fence prober: from the moment the schedule
          partitions the primary, a dedicated thread hammers the
          ex-primary's read port starting [lease_duration] after the cut
          and until heal.  Any fast read still served in [`Lease] mode in
          that window violates the [lease-fencing] invariant — the
          isolated primary lost its heartbeat-ack quorum, so its lease
          must lapse on its own, well before the [suspect_timeout]
          failure detector would notice the partition *)
}

(* ------------------------------------------------------------------ *)
(* Report                                                              *)

type election = {
  e_at : Time.t;
  winner : string;
  e_view : int;
  e_duration : Time.t option;  (** None for the boot-time primary *)
}

type report = {
  r_scenario : string;
  r_seed : int;
  injected : (Time.t * string) list;
  elections : election list;
  r_abdications : int;
  r_catchup_installed : int;  (** log entries refilled via catch-up *)
  r_torn_discarded : int;
  r_compactions : int;  (** log-compaction rounds across all replicas *)
  r_snapshots_installed : int;  (** replicas fast-forwarded via snapshot *)
  r_reconfigs : int;  (** membership changes activated (max over replicas) *)
  r_epoch : int;  (** configuration epoch in force at the end of the run *)
  r_fenced_drops : int;  (** messages dropped from fenced-out old members *)
  r_lease_reads : int;  (** fast-path reads served under leader leases *)
  r_backup_reads : int;  (** bounded-stale reads served by backup proxies *)
  r_lease_rejects : int;  (** fast-path reads refused (no lease / fenced) *)
  r_read_obs : int;  (** read-burst observations audited by the checker *)
  r_seq_peak : int;
      (** deepest PAXOS-sequence backlog seen on any live replica *)
  r_seq_peak_view : int;
      (** view that peak is attributed to — [Paxos_seq.max_depth] resets
          on view change, so a report never carries a stale peak from a
          previous primary's burst regime *)
  r_checkpoints_skipped : int;  (** rounds abandoned: connections never drained *)
  r_acked : int;
  r_ok : int;
  r_errors : int;
  r_retries : int;
  r_latency : Metrics.summary option;
      (** recorder-sourced commit latency (propose to first admission,
          the [req.lifecycle] span) under the fault schedule *)
  probe_ok : int;
  probe_errors : int;
  final_primary : string option;
  invariants : (string * string option) list;  (** name, None = pass *)
}

let passed r = List.for_all (fun (_, verdict) -> verdict = None) r.invariants

let render_report r =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "=== chaos scenario %-28s seed=%d ===" r.r_scenario r.r_seed;
  Buffer.add_string b
    (Table.render ~title:"faults injected" ~header:[ "virtual time"; "fault" ]
       (List.map (fun (t, f) -> [ Time.to_string t; f ]) r.injected));
  Buffer.add_string b "\n";
  Buffer.add_string b
    (Table.render ~title:"elections" ~header:[ "virtual time"; "winner"; "view"; "duration" ]
       (List.map
          (fun e ->
            [ Time.to_string e.e_at; e.winner; string_of_int e.e_view;
              (match e.e_duration with
              | Some d -> Time.to_string d
              | None -> "boot") ])
          r.elections));
  Buffer.add_string b "\n";
  let lat pick =
    match r.r_latency with
    | Some s -> Time.to_string (pick s)
    | None -> "-"
  in
  Buffer.add_string b
    (Table.render ~title:"workload"
       ~header:
         [ "ok"; "retries"; "errors"; "acked"; "probe ok"; "probe errors";
           "commit p50"; "commit p90"; "commit p99" ]
       [ [ string_of_int r.r_ok; string_of_int r.r_retries; string_of_int r.r_errors;
           string_of_int r.r_acked; string_of_int r.probe_ok;
           string_of_int r.probe_errors;
           lat (fun s -> s.Metrics.p50); lat (fun s -> s.Metrics.p90);
           lat (fun s -> s.Metrics.p99) ] ]);
  Buffer.add_string b "\n";
  line "abdications:        %d" r.r_abdications;
  line "catch-up installed: %d entries" r.r_catchup_installed;
  line "torn WAL discarded: %d records" r.r_torn_discarded;
  line "compactions:        %d rounds" r.r_compactions;
  line "snapshot installs:  %d" r.r_snapshots_installed;
  line "reconfigurations:   %d (final epoch %d, %d fenced drops)" r.r_reconfigs
    r.r_epoch r.r_fenced_drops;
  line "read fast path:     %d lease / %d backup / %d rejected (%d observations \
        audited)"
    r.r_lease_reads r.r_backup_reads r.r_lease_rejects r.r_read_obs;
  line "seq depth peak:     %d entries (view %d)" r.r_seq_peak r.r_seq_peak_view;
  line "checkpoints skipped:%d" r.r_checkpoints_skipped;
  line "final primary:      %s" (Option.value r.final_primary ~default:"(none)");
  Buffer.add_string b
    (Table.render ~title:"invariants" ~header:[ "invariant"; "verdict" ]
       (List.map
          (fun (name, verdict) ->
            [ name;
              (match verdict with None -> "ok" | Some detail -> "VIOLATED: " ^ detail) ])
          r.invariants));
  Buffer.add_string b "\n";
  line "verdict: %s" (if passed r then "PASS" else "FAIL");
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Driver state                                                        *)

type driver = {
  cluster : Cluster.t;
  eng : Engine.t;
  nemesis : Rng.t;
  boot_members : string list;
      (** the configuration the cluster booted with — replicas outside it
          joined live, and only ever saw the log from their join point *)
  mutable crashed : string list;  (** oldest first *)
  ever_crashed : (string, unit) Hashtbl.t;
  mutable injected : (Time.t * string) list;  (** newest first *)
  mutable violations : (string * string) list;  (** newest first *)
  mutable elections : election list;  (** newest first *)
  seen_views : (string * int, unit) Hashtbl.t;
  reference_log : (int, string) Hashtbl.t;  (** index -> first-seen value *)
  watermarks : (string, int) Hashtbl.t;
  mutable sampler_on : bool;
  mutable primary_cut : (Time.t * string) option;
      (** first [Partition_primary]: when the cut landed and who was
          primary — the lease-fence prober's target *)
  mutable fence_healed : bool;
      (** a heal reconnected the ex-primary: it may legitimately win the
          lease back, so the fence prober stands down *)
}

let majority members = (List.length members / 2) + 1

let live_nodes d = List.map fst (Cluster.instances d.cluster)

let note d fault detail =
  let now = Engine.now d.eng in
  let what = if detail = "" then fault else fault ^ " " ^ detail in
  d.injected <- (now, what) :: d.injected;
  let tr = Engine.trace d.eng in
  if Trace.enabled tr then
    Trace.instant tr ~ts:now ~tid:(Engine.self_tid d.eng) ~cat:"chaos" ~name:fault
      (if detail = "" then [] else [ ("target", Trace.Str detail) ])

let violate d inv detail =
  (* keep the first few occurrences; thousands of samples would repeat *)
  if List.length (List.filter (fun (i, _) -> i = inv) d.violations) < 3 then
    d.violations <- (inv, detail) :: d.violations

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)

let kill_node d ~torn node =
  Cluster.kill ~wal_torn:torn d.cluster node;
  d.crashed <- d.crashed @ [ node ];
  Hashtbl.replace d.ever_crashed node ();
  note d (if torn then "crash_torn" else "crash") node

(* Quorum guard against the configuration currently in force, not the
   boot-time member list: after a reconfiguration the old list would both
   under-count (freshly joined replicas are real voters) and over-count
   (a fenced instance still winding down is not).  Only live replicas
   that are members of the current epoch contribute to the quorum. *)
let quorum_safe_to_kill d =
  let members = Cluster.members d.cluster in
  let live_voters = List.filter (fun n -> List.mem n members) (live_nodes d) in
  List.length live_voters - 1 >= majority members

let apply_fault d fault =
  let fab = Cluster.fabric d.cluster in
  match fault with
  | Crash_primary { torn_wal } -> (
    match Cluster.primary_node d.cluster with
    | Some p when quorum_safe_to_kill d -> kill_node d ~torn:torn_wal p
    | Some _ | None -> note d "skip" (fault_name fault))
  | Crash_backup { torn_wal } -> (
    let p = Cluster.primary_node d.cluster in
    let backups = List.filter (fun n -> Some n <> p) (live_nodes d) in
    match backups with
    | [] -> note d "skip" (fault_name fault)
    | _ when not (quorum_safe_to_kill d) -> note d "skip" (fault_name fault)
    | _ -> kill_node d ~torn:torn_wal (Rng.pick d.nemesis backups))
  | Crash_random -> (
    match live_nodes d with
    | [] -> note d "skip" (fault_name fault)
    | _ when not (quorum_safe_to_kill d) -> note d "skip" (fault_name fault)
    | live -> kill_node d ~torn:false (Rng.pick d.nemesis live))
  | Crash_node node ->
    if List.mem node (live_nodes d) && quorum_safe_to_kill d then
      kill_node d ~torn:false node
    else note d "skip" (fault_name fault)
  | Restart_one -> (
    match d.crashed with
    | [] -> note d "skip" "restart"
    | node :: rest ->
      d.crashed <- rest;
      ignore (Cluster.restart d.cluster node);
      note d "restart" node)
  | Partition_primary -> (
    match Cluster.primary_node d.cluster with
    | None -> note d "skip" (fault_name fault)
    | Some p ->
      let rest = List.filter (fun n -> n <> p) (Cluster.members d.cluster) in
      Fabric.partition fab [ p ] rest;
      if d.primary_cut = None then d.primary_cut <- Some (Engine.now d.eng, p);
      note d "partition" p)
  | Partition_oneway_primary -> (
    match Cluster.primary_node d.cluster with
    | None -> note d "skip" (fault_name fault)
    | Some p ->
      let rest = List.filter (fun n -> n <> p) (Cluster.members d.cluster) in
      Fabric.partition_oneway fab ~from:rest ~to_:[ p ];
      note d "partition_oneway" ("to " ^ p))
  | Partition_random -> (
    match live_nodes d with
    | [] -> note d "skip" (fault_name fault)
    | live ->
      let n = Rng.pick d.nemesis live in
      let rest = List.filter (fun m -> m <> n) (Cluster.members d.cluster) in
      Fabric.partition fab [ n ] rest;
      note d "partition" n)
  | Partition_node n ->
    let rest = List.filter (fun m -> m <> n) (Cluster.members d.cluster) in
    Fabric.partition fab [ n ] rest;
    note d "partition" n
  | Replace { dead; fresh } ->
    Cluster.replace_replica d.cluster ~dead ~fresh;
    note d "replace" (dead ^ " -> " ^ fresh)
  | Replace_crashed { fresh } -> (
    match d.crashed with
    | [] -> note d "skip" "replace_crashed"
    | dead :: rest ->
      d.crashed <- rest;
      Cluster.replace_replica d.cluster ~dead ~fresh;
      note d "replace" (dead ^ " -> " ^ fresh))
  | Autoheal ->
    Cluster.enable_autoheal d.cluster;
    note d "autoheal" "armed"
  | Heal ->
    Fabric.heal fab;
    if d.primary_cut <> None then d.fence_healed <- true;
    note d "heal" ""
  | Loss_window { loss; duration } ->
    Fabric.set_loss fab loss;
    note d "loss_begin" (Printf.sprintf "%.0f%% for %s" (loss *. 100.) (Time.to_string duration));
    Engine.at d.eng (Engine.now d.eng + duration) (fun () ->
        Fabric.set_loss fab 0.0;
        note d "loss_end" "")
  | Latency_spike { base; jitter; duration } ->
    Fabric.set_latency fab ~base ~jitter;
    note d "latency_begin"
      (Printf.sprintf "%s +/- %s for %s" (Time.to_string base) (Time.to_string jitter)
         (Time.to_string duration));
    Engine.at d.eng (Engine.now d.eng + duration) (fun () ->
        Fabric.set_latency fab ~base:(Time.us 40) ~jitter:(Time.us 20);
        note d "latency_end" "")

(* Materialize a probabilistic schedule into timed steps up front, so the
   whole run (including the report's fault list) replays from the seed. *)
let fault_pool =
  [
    Crash_primary { torn_wal = false };
    Crash_primary { torn_wal = true };
    Crash_backup { torn_wal = false };
    Restart_one;
    Restart_one;
    Partition_primary;
    Partition_random;
    Heal;
    Heal;
    Loss_window { loss = 0.15; duration = Time.ms 400 };
    Latency_spike { base = Time.us 400; jitter = Time.us 200; duration = Time.ms 400 };
  ]

let materialize d = function
  | Timed steps -> steps
  | Probabilistic { faults; start; stop } ->
    let span = stop - start in
    let times =
      List.init faults (fun _ -> start + Rng.int d.nemesis (max 1 span))
      |> List.sort compare
    in
    List.map (fun at -> { at; fault = Rng.pick d.nemesis fault_pool }) times

(* ------------------------------------------------------------------ *)
(* Invariant sampler: runs every 50 ms of virtual time during the run.  *)

let sample d =
  let live = Cluster.instances d.cluster in
  (* single primary per view: two leaders may transiently coexist across
     views (the deposed one has not heard the news), never within one *)
  let primaries =
    List.filter_map
      (fun (node, inst) ->
        if Instance.is_primary inst then Some (node, Paxos.view inst.Instance.paxos)
        else None)
      live
  in
  List.iter
    (fun (node, view) ->
      List.iter
        (fun (node', view') ->
          if node < node' && view = view' then
            violate d "single-primary-per-view"
              (Printf.sprintf "%s and %s both primary in view %d at %s" node node' view
                 (Time.to_string (Engine.now d.eng))))
        primaries)
    primaries;
  (* committed-prefix agreement against the first-seen reference value *)
  List.iter
    (fun (node, inst) ->
      let px = inst.Instance.paxos in
      let hi = Paxos.committed px in
      (* start above both the last-sampled index and the replica's
         compaction base: entries at or below the base have been freed,
         and the range lookup would return nothing for them *)
      let lo =
        max
          ((try Hashtbl.find d.watermarks node with Not_found -> 0) + 1)
          (Paxos.base px + 1)
      in
      if hi >= lo then begin
        List.iteri
          (fun i value ->
            let idx = lo + i in
            match Hashtbl.find_opt d.reference_log idx with
            | None -> Hashtbl.replace d.reference_log idx value
            | Some expect ->
              if expect <> value then
                violate d "committed-prefix-agreement"
                  (Printf.sprintf "%s disagrees at index %d" node idx))
          (Paxos.get_committed_range px ~lo ~hi);
        Hashtbl.replace d.watermarks node hi
      end;
      (* election log: first time we observe a node leading a view *)
      if Instance.is_primary inst && not (Hashtbl.mem d.seen_views (node, Paxos.view px))
      then begin
        Hashtbl.replace d.seen_views (node, Paxos.view px) ();
        d.elections <-
          {
            e_at = Engine.now d.eng;
            winner = node;
            e_view = Paxos.view px;
            e_duration = (Paxos.stats px).Paxos.last_election_duration;
          }
          :: d.elections
      end)
    live

let rec sampler_loop d =
  Engine.after d.eng (Time.ms 50) (fun () ->
      if d.sampler_on then begin
        sample d;
        sampler_loop d
      end)

(* ------------------------------------------------------------------ *)
(* Read-burst observers: fast-path reads against every replica's read
   port while the nemesis plays, each observation stamped with the
   acked-write set snapshotted before the read was issued.  The
   bounded-stale-reads invariant audits them at the end. *)

type read_obs = {
  o_node : string;  (** replica whose read port served the answer *)
  o_mode : [ `Lease | `Backup of int ];
  o_epoch : int;
  o_wm : int;  (** watermark the reply claimed *)
  o_ids : string list;  (** ledger content the reply carried *)
  o_acked_before : string list;
      (** writes acked before the read was issued (lease reads only:
          the linearizability obligation) *)
}

(* One fast read against a specific node (no failover: the observer
   wants to know exactly who answered).  None = transport failure. *)
let fast_read_node d ~read_port ~node ~from =
  match Sock.connect (Cluster.world d.cluster) ~from ~node ~port:read_port with
  | exception Sock.Connection_refused _ -> None
  | conn ->
    let reply =
      try
        Sock.send conn (Proxy.encode_read_request "GET\n");
        let rec go buf =
          match Proxy.parse_read_reply buf with
          | Some (r, _) -> Some r
          | None ->
            let chunk = Sock.recv ~timeout:(Time.ms 500) conn ~max:65536 in
            if chunk = "" then None else go (buf ^ chunk)
        in
        go ""
      with Sock.Connection_closed -> None
    in
    (try Sock.close conn with Sock.Connection_closed -> ());
    reply

(* ------------------------------------------------------------------ *)
(* End-of-run checks                                                   *)

(* The stale-read invariant over the burst observations, in issue order:
   - every read (lease or backup) is a prefix of the final converged
     ledger — nobody ever served fabricated or reordered content;
   - a lease read contains every write acked before it was issued —
     leases really are linearizable, across view change and fencing;
   - per node, watermarks never regress, and a later read with an equal
     or higher watermark extends (never rewrites) an earlier one — no
     read is older than its returned watermark. *)
let check_reads ~final_ids reads =
  let rec is_prefix xs ys =
    match (xs, ys) with
    | [], _ -> true
    | x :: xs', y :: ys' -> x = y && is_prefix xs' ys'
    | _ :: _, [] -> false
  in
  let last : (string, int * string list) Hashtbl.t = Hashtbl.create 8 in
  let v = ref None in
  List.iteri
    (fun i o ->
      if !v = None then
        if not (is_prefix o.o_ids final_ids) then
          v :=
            Some
              (Printf.sprintf "read %d on %s is not a prefix of the final ledger"
                 i o.o_node)
        else if
          o.o_mode = `Lease
          && List.exists (fun id -> not (List.mem id o.o_ids)) o.o_acked_before
        then
          v :=
            Some
              (Printf.sprintf
                 "lease read %d on %s is missing a write acked before it was \
                  issued"
                 i o.o_node)
        else
          match Hashtbl.find_opt last o.o_node with
          | Some (wm, _) when o.o_wm < wm ->
            v :=
              Some
                (Printf.sprintf "watermark regressed on %s: %d after %d"
                   o.o_node o.o_wm wm)
          | Some (_, ids) when not (is_prefix ids o.o_ids) ->
            v :=
              Some
                (Printf.sprintf
                   "read %d on %s rewrote history below its watermark" i o.o_node)
          | Some _ | None -> Hashtbl.replace last o.o_node (o.o_wm, o.o_ids))
    reads;
  !v

let final_checks d ~(ledger : Ledger.client) ~probe_errors ~reads =
  let live = Cluster.instances d.cluster in
  let check name f = (name, f ()) in
  let sampled name =
    match List.rev (List.filter (fun (i, _) -> i = name) d.violations) with
    | [] -> None
    | (_, detail) :: _ -> Some detail
  in
  [
    check "single-primary-per-view" (fun () -> sampled "single-primary-per-view");
    check "committed-prefix-agreement" (fun () ->
        (* full recheck of every still-resident entry: catches divergence
           the incremental watermark pass would miss after a restart.
           Compacted prefixes (at or below the base) are gone from the log
           by design, so the recheck starts just above the base. *)
        let v = ref (sampled "committed-prefix-agreement") in
        List.iter
          (fun (node, inst) ->
            if !v = None then
              let px = inst.Instance.paxos in
              let hi = Paxos.committed px in
              let lo = Paxos.base px + 1 in
              if hi >= lo then
                List.iteri
                  (fun i value ->
                    let idx = lo + i in
                    match Hashtbl.find_opt d.reference_log idx with
                    | Some expect when expect <> value && !v = None ->
                      v := Some (Printf.sprintf "%s diverged at index %d" node idx)
                    | _ -> ())
                  (Paxos.get_committed_range px ~lo ~hi))
          live;
        !v);
    check "output-log-divergence" (fun () ->
        let v = ref None in
        let rec pairs = function
          | [] -> ()
          | (na, ia) :: rest ->
            List.iter
              (fun (nb, ib) ->
                if !v = None then
                  let oa = Instance.output ia and ob = Instance.output ib in
                  let fresh n =
                    (not (Hashtbl.mem d.ever_crashed n))
                    && List.mem n d.boot_members
                  in
                  let ok =
                    if fresh na && fresh nb then
                      Output_log.first_divergence oa ob = None
                    else
                      (* a restarted replica — or one that joined live via
                         reconfiguration — only re-emits outputs from its
                         checkpoint / join point onward: one log must be a
                         suffix of the other *)
                      Output_log.is_suffix ~of_:oa ob || Output_log.is_suffix ~of_:ob oa
                  in
                  if not ok then
                    v :=
                      Some
                        (Printf.sprintf "%s vs %s%s" na nb
                           (match Output_log.first_divergence oa ob with
                           | Some i -> Printf.sprintf " at output %d" i
                           | None -> "")))
              rest;
            pairs rest
        in
        pairs live;
        !v);
    check "state-convergence" (fun () ->
        match List.map (fun (n, i) -> (n, i.Instance.handle.Api.state_of ())) live with
        | [] -> Some "no live replicas"
        | (n0, s0) :: rest -> (
          match List.find_opt (fun (_, s) -> s <> s0) rest with
          | Some (n, _) -> Some (Printf.sprintf "%s and %s disagree" n0 n)
          | None -> None));
    check "acked-durability" (fun () ->
        (* every client-acked write must be in every live replica's state *)
        let v = ref None in
        List.iter
          (fun (node, inst) ->
            if !v = None then begin
              let present = Hashtbl.create 1024 in
              List.iter
                (fun id -> Hashtbl.replace present id ())
                (Ledger.ids_of_state (inst.Instance.handle.Api.state_of ()));
              match
                List.find_opt
                  (fun id -> not (Hashtbl.mem present id))
                  (Ledger.acked_ids ledger)
              with
              | Some id -> v := Some (Printf.sprintf "acked %s missing on %s" id node)
              | None -> ()
            end)
          live;
        !v);
    check "epoch-agreement" (fun () ->
        (* every live replica must be in the same configuration epoch with
           the same membership, and must itself be a member of it — a
           fenced replica that kept serving, or a joiner stuck on a stale
           config, shows up here *)
        let infos =
          List.map
            (fun (n, i) ->
              ( n,
                Paxos.epoch i.Instance.paxos,
                List.sort compare (Paxos.members i.Instance.paxos) ))
            live
        in
        match infos with
        | [] -> Some "no live replicas"
        | (n0, e0, m0) :: rest -> (
          match List.find_opt (fun (_, e, m) -> e <> e0 || m <> m0) rest with
          | Some (n, e, _) ->
            Some
              (Printf.sprintf "%s at epoch %d disagrees with %s at epoch %d" n e
                 n0 e0)
          | None -> (
            match List.find_opt (fun (n, _, _) -> not (List.mem n m0)) infos with
            | Some (n, _, _) ->
              Some (Printf.sprintf "%s is live but not a member of epoch %d" n e0)
            | None -> None)));
    check "quorum-liveness" (fun () ->
        if Cluster.primary_node d.cluster = None then Some "no primary after heal"
        else if probe_errors > 0 then
          Some (Printf.sprintf "%d probe requests failed after heal" probe_errors)
        else None);
    check "no-thread-failures" (fun () ->
        match Engine.failures d.eng with
        | [] -> None
        | (name, e) :: _ ->
          Some (Printf.sprintf "thread %s died: %s" name (Printexc.to_string e)));
  ]
  @
  match reads with
  | [] -> []
  | _ :: _ ->
    [ check "bounded-stale-reads" (fun () ->
          match live with
          | [] -> Some "no live replicas"
          | (_, i0) :: _ ->
            check_reads
              ~final_ids:
                (Ledger.ids_of_state (i0.Instance.handle.Api.state_of ()))
              reads) ]

(* ------------------------------------------------------------------ *)
(* Running a scenario                                                  *)

(* Short failure-detection timers, as in the paper's LAN deployment —
   and a checkpoint every 2 s of virtual time so restarts exercise the
   checkpoint + replay path, not just full replay. *)
let chaos_config =
  {
    Instance.default_config with
    paxos =
      {
        Paxos.heartbeat_period = Time.ms 100;
        election_timeout = Time.ms 300;
        election_jitter = Time.ms 50;
        round_retry = Time.ms 100;
        (* Aggressive compaction: a tiny threshold and small catch-up
           pages so every chaos run exercises the snapshot catch-up and
           pagination paths, not just the steady state. *)
        compaction_threshold = 32;
        catchup_chunk = 64;
        (* Fast suspicion so autoheal scenarios detect a dead member well
           inside the schedule horizon. *)
        suspect_timeout = Time.ms 450;
        (* Shorter than the 300 ms election timeout, as lease safety
           requires. *)
        lease_duration = Time.ms 150;
      };
    checkpoint_period = Time.sec 2;
    (* Small enough that chaos runs actually trim the output log, forcing
       the digest-aligned comparison paths through their paces. *)
    output_keep = 256;
  }

let run ?(cfg = chaos_config) ?trace ~seed scenario =
  (* When the caller doesn't bring a recorder, attach a streaming one
     (no retention) so the report can still source commit latency from
     the [req.lifecycle] spans. *)
  let trace =
    match trace with Some t -> t | None -> Trace.create ~retain:false ()
  in
  let metrics = Metrics.create () in
  Metrics.attach metrics trace;
  let cluster = Cluster.create ~seed ~cfg ~trace ~server:Ledger.server () in
  let eng = Cluster.engine cluster in
  let d =
    {
      cluster;
      eng;
      nemesis = Rng.create ((seed * 1_000_003) + 0x5eed);
      boot_members = Cluster.members cluster;
      crashed = [];
      ever_crashed = Hashtbl.create 8;
      injected = [];
      violations = [];
      elections = [];
      seen_views = Hashtbl.create 32;
      reference_log = Hashtbl.create 4096;
      watermarks = Hashtbl.create 8;
      sampler_on = true;
      primary_cut = None;
      fence_healed = false;
    }
  in
  Cluster.start cluster;
  sampler_loop d;
  (* give the cluster 200 ms to come up before the clock-zero faults *)
  Cluster.run ~until:(Time.ms 200) cluster;
  let t0 = Engine.now eng in
  List.iter
    (fun { at; fault } -> Engine.at eng (t0 + at) (fun () -> apply_fault d fault))
    (materialize d scenario.schedule);
  (* the workload runs across the whole fault window *)
  let target = Target.cluster cluster ~port:80 in
  let ledger = Ledger.client () in
  (* Read burst: observer threads cycling over the member list, reading
     through each replica's fast path.  They snapshot the acked-write set
     before every read — the obligation a lease read must meet. *)
  let read_obs = ref [] (* newest first *) in
  let readers_on = ref true in
  if scenario.read_clients > 0 then
    for rc = 1 to scenario.read_clients do
      Engine.spawn eng ~name:(Printf.sprintf "chaos-reader%d" rc) (fun () ->
          let from = Printf.sprintf "chaos-r%d" rc in
          let rec loop n =
            if !readers_on then begin
              (match Cluster.members cluster with
              | [] -> ()
              | nodes ->
                let node = List.nth nodes (n mod List.length nodes) in
                let acked_before = Ledger.acked_ids ledger in
                (match
                   fast_read_node d ~read_port:cfg.Instance.read_port ~node ~from
                 with
                | Some (Proxy.Served r) ->
                  read_obs :=
                    {
                      o_node = node;
                      o_mode = r.Proxy.mode;
                      o_epoch = r.Proxy.epoch;
                      o_wm = r.Proxy.watermark;
                      o_ids = Ledger.ids_of_reply r.Proxy.value;
                      o_acked_before =
                        (match r.Proxy.mode with
                        | `Lease -> acked_before
                        | `Backup _ -> []);
                    }
                    :: !read_obs
                | Some (Proxy.Rejected | Proxy.Write_required) | None -> ()));
              Engine.sleep eng (Time.ms 15);
              loop (n + 1)
            end
          in
          loop rc)
    done;
  (* Lease-fence prober: once the schedule isolates the primary, wait out
     the lease, then hammer the ex-primary's read port until heal.  The
     partition severs only replica-to-replica links, so the prober still
     reaches the corpse — exactly the dangerous window: a primary that
     can no longer renew against a heartbeat-ack quorum must let its
     lease lapse on its own (within [lease_duration], long before the
     [suspect_timeout] detector would flag the partition), after which
     every fast read it answers must come back [Rejected] or
     bounded-stale, never [`Lease].  [grace] covers an ack already in
     flight when the cut landed: a lease granted an instant before the
     partition stays valid until grant + lease_duration. *)
  let fence_attempts = ref 0 in
  let fence_first = ref None in
  if scenario.lease_fence then
    Engine.spawn eng ~name:"lease-fence-probe" (fun () ->
        let lease = cfg.Instance.paxos.Paxos.lease_duration in
        let grace = Time.ms 10 in
        let rec loop () =
          if not d.fence_healed then begin
            (match d.primary_cut with
            | Some (cut, p) when Engine.now eng >= cut + lease + grace -> (
              incr fence_attempts;
              if !fence_first = None then fence_first := Some (Engine.now eng);
              match
                fast_read_node d ~read_port:cfg.Instance.read_port ~node:p
                  ~from:"chaos-fence"
              with
              | Some (Proxy.Served r) when r.Proxy.mode = `Lease ->
                violate d "lease-fencing"
                  (Printf.sprintf
                     "ex-primary %s served a lease read %s after the cut \
                      (lease is %s)"
                     p
                     (Time.to_string (Engine.now eng - cut))
                     (Time.to_string lease))
              | Some (Proxy.Served _ | Proxy.Rejected | Proxy.Write_required)
              | None ->
                ())
            | Some _ | None -> ());
            Engine.sleep eng (Time.ms 10);
            loop ()
          end
        in
        loop ());
  let handle =
    Loadgen.run ~name:"chaos" ~seed ~think:scenario.think ~retries:6
      ~retry_backoff:(Time.ms 100) ~clients:scenario.clients ~requests:scenario.requests
      ~request:(Ledger.request ledger) target
  in
  Loadgen.drive ~timeout:(Time.sec 120) target handle;
  let load = handle.Loadgen.collect () in
  (* play out any schedule tail the workload outlived, then stop injecting *)
  Cluster.run ~until:(t0 + scenario.duration) cluster;
  (* heal the network (crashed replicas stay down: liveness must hold with
     whatever quorum survived) and let the survivors settle *)
  if Fabric.partitions (Cluster.fabric cluster) > 0 then begin
    Fabric.heal (Cluster.fabric cluster);
    note d "heal" "(end of schedule)"
  end;
  d.fence_healed <- true;
  Fabric.set_loss (Cluster.fabric cluster) 0.0;
  Fabric.set_latency (Cluster.fabric cluster) ~base:(Time.us 40) ~jitter:(Time.us 20);
  Cluster.run ~until:(Engine.now eng + scenario.settle) cluster;
  (* the read burst kept observing through heal + settle; stop it before
     the liveness probe so the audit set is fixed *)
  readers_on := false;
  (* liveness probe: with the network healed and a quorum up, every
     request must succeed *)
  let probe =
    Loadgen.run ~name:"probe" ~seed ~retries:8 ~retry_backoff:(Time.ms 100) ~clients:2
      ~requests:20 ~request:(Ledger.request ledger) target
  in
  Loadgen.drive ~timeout:(Time.sec 60) target probe;
  let probe_r = probe.Loadgen.collect () in
  (* A restarted replica replays its backlog through the DMT at simulated
     speed, so its server state trails the paxos applied index by virtual
     seconds.  Poll at fixed virtual-time steps (bounded, deterministic)
     until every live ledger agrees and holds every acked write; if they
     still disagree at the deadline, the convergence invariants fail. *)
  let converged () =
    match Cluster.instances cluster with
    | [] -> false
    | (_, i0) :: rest ->
      let s0 = i0.Instance.handle.Api.state_of () in
      List.for_all (fun (_, i) -> i.Instance.handle.Api.state_of () = s0) rest
      &&
      let present = Hashtbl.create 1024 in
      List.iter (fun id -> Hashtbl.replace present id ()) (Ledger.ids_of_state s0);
      List.for_all (fun id -> Hashtbl.mem present id) (Ledger.acked_ids ledger)
  in
  let deadline = Engine.now eng + Time.sec 30 in
  Cluster.run ~until:(Engine.now eng + Time.ms 200) cluster;
  while (not (converged ())) && Engine.now eng < deadline do
    Cluster.run ~until:(Engine.now eng + Time.ms 100) cluster
  done;
  sample d;
  d.sampler_on <- false;
  let sum f =
    List.fold_left (fun acc (_, inst) -> acc + f inst.Instance.paxos) 0
      (Cluster.instances cluster)
  in
  let snapshots_installed = sum (fun p -> (Paxos.stats p).Paxos.snapshots_installed) in
  let invariants =
    final_checks d ~ledger ~probe_errors:probe_r.Loadgen.errors
      ~reads:(List.rev !read_obs)
    @
    (if scenario.expect_snapshot then
       [ ( "snapshot-recovery",
           if snapshots_installed >= 1 then None
           else
             Some
               "no snapshot was installed: the lagging replica recovered without \
                the state-transfer path this scenario exists to exercise" ) ]
     else [])
    @
    if scenario.lease_fence then
      [ ( "lease-fencing",
          match
            List.rev (List.filter (fun (i, _) -> i = "lease-fencing") d.violations)
          with
          | (_, detail) :: _ -> Some detail
          | [] -> (
            if !fence_attempts = 0 then
              Some
                "vacuous: the fence prober never reached the partitioned \
                 ex-primary"
            else
              (* the satellite claim: the lease lapses on its own, before
                 the failure detector would even suspect the partition —
                 so the clean probe window must open pre-suspect-timeout *)
              match (!fence_first, d.primary_cut) with
              | Some first, Some (cut, _)
                when first >= cut + cfg.Instance.paxos.Paxos.suspect_timeout ->
                Some
                  "probe window opened after suspect_timeout: the run cannot \
                   show the lease lapsed before failure detection"
              | _ -> None) ) ]
    else []
  in
  {
    r_scenario = scenario.name;
    r_seed = seed;
    injected = List.rev d.injected;
    elections = List.rev d.elections;
    r_abdications = sum (fun p -> (Paxos.stats p).Paxos.abdications);
    r_catchup_installed = sum (fun p -> (Paxos.stats p).Paxos.catchup_installed);
    r_torn_discarded = sum (fun p -> (Paxos.stats p).Paxos.wal_torn_discarded);
    r_compactions = sum (fun p -> (Paxos.stats p).Paxos.compactions);
    r_snapshots_installed = snapshots_installed;
    r_reconfigs =
      List.fold_left
        (fun acc (_, inst) -> max acc (Paxos.stats inst.Instance.paxos).Paxos.reconfigs)
        0 (Cluster.instances cluster);
    r_epoch = Cluster.current_epoch cluster;
    r_fenced_drops = sum (fun p -> (Paxos.stats p).Paxos.fenced_drops);
    r_lease_reads =
      List.fold_left
        (fun acc (_, inst) ->
          acc + (Crane_core.Proxy.stats inst.Instance.proxy).Proxy.lease_reads)
        0 (Cluster.instances cluster);
    r_backup_reads =
      List.fold_left
        (fun acc (_, inst) ->
          acc + (Crane_core.Proxy.stats inst.Instance.proxy).Proxy.backup_reads)
        0 (Cluster.instances cluster);
    r_lease_rejects =
      List.fold_left
        (fun acc (_, inst) ->
          acc + (Crane_core.Proxy.stats inst.Instance.proxy).Proxy.lease_rejects)
        0 (Cluster.instances cluster);
    r_read_obs = List.length !read_obs;
    r_seq_peak =
      List.fold_left
        (fun acc (_, inst) ->
          max acc (Crane_core.Paxos_seq.max_depth (Crane_core.Vhost.seq inst.Instance.vhost)))
        0 (Cluster.instances cluster);
    r_seq_peak_view =
      (* the view attribution of whichever replica holds the peak *)
      List.fold_left
        (fun ((best, _) as acc) (_, inst) ->
          let seq = Crane_core.Vhost.seq inst.Instance.vhost in
          let d = Crane_core.Paxos_seq.max_depth seq in
          if d > best then (d, Crane_core.Paxos_seq.max_depth_view seq) else acc)
        (0, 0) (Cluster.instances cluster)
      |> snd;
    r_checkpoints_skipped =
      List.fold_left
        (fun acc (_, inst) ->
          acc + Crane_checkpoint.Manager.checkpoints_skipped inst.Instance.manager)
        0 (Cluster.instances cluster);
    r_acked = Ledger.acked_count ledger;
    r_ok = List.length load.Loadgen.latencies;
    r_errors = load.Loadgen.errors;
    r_retries = load.Loadgen.retries;
    r_latency = Metrics.summary metrics "req.lifecycle";
    probe_ok = List.length probe_r.Loadgen.latencies;
    probe_errors = probe_r.Loadgen.errors;
    final_primary = Cluster.primary_node cluster;
    invariants;
  }

(* ------------------------------------------------------------------ *)
(* Built-in scenario suite                                             *)

let base =
  {
    name = "";
    about = "";
    schedule = Timed [];
    duration = Time.sec 4;
    settle = Time.sec 1;
    clients = 4;
    requests = 160;
    think = Time.ms 40;
    read_clients = 0;
    expect_snapshot = false;
    lease_fence = false;
  }

let scenarios =
  [
    { base with
      name = "primary-crash";
      about = "kill the primary under load, restart it from a checkpoint";
      schedule =
        Timed
          [ { at = Time.sec 1; fault = Crash_primary { torn_wal = false } };
            { at = Time.ms 2500; fault = Restart_one } ] };
    { base with
      name = "backup-crash";
      about = "kill a backup under load, restart it from a checkpoint";
      schedule =
        Timed
          [ { at = Time.sec 1; fault = Crash_backup { torn_wal = false } };
            { at = Time.ms 2500; fault = Restart_one } ] };
    { base with
      name = "torn-wal";
      about = "crash the primary mid-WAL-append; recovery must discard the torn tail";
      schedule =
        Timed
          [ { at = Time.sec 1; fault = Crash_primary { torn_wal = true } };
            { at = Time.ms 2500; fault = Restart_one } ] };
    { base with
      name = "partition-primary";
      about = "isolate the primary (both directions), heal after the new election";
      schedule =
        Timed
          [ { at = Time.sec 1; fault = Partition_primary };
            { at = Time.ms 2500; fault = Heal } ] };
    { base with
      name = "asym-partition";
      about = "block traffic towards the primary only: backups still hear heartbeats, \
               so progress depends on primary abdication";
      schedule =
        Timed
          [ { at = Time.sec 1; fault = Partition_oneway_primary };
            { at = Time.ms 2500; fault = Heal } ] };
    { base with
      name = "loss-latency";
      about = "packet-loss window, then a latency spike";
      duration = Time.sec 5;
      schedule =
        Timed
          [ { at = Time.sec 1;
              fault = Loss_window { loss = 0.2; duration = Time.sec 1 } };
            { at = Time.ms 2500;
              fault =
                Latency_spike
                  { base = Time.us 500; jitter = Time.us 250; duration = Time.sec 1 } } ] };
    { base with
      name = "composed";
      about = "partition the primary during a checkpoint, heal, crash the new \
               primary, restart it";
      duration = Time.sec 6;
      requests = 200;
      schedule =
        Timed
          [ { at = Time.ms 2100; fault = Partition_primary };
            { at = Time.ms 3300; fault = Heal };
            { at = Time.sec 4; fault = Crash_primary { torn_wal = false } };
            { at = Time.sec 5; fault = Restart_one } ] };
    { base with
      name = "compaction-catchup";
      about = "crash a non-checkpoint backup early, run thousands of events past \
               the compaction watermark, then restart it: the freed log prefix \
               forces recovery through snapshot transfer + chunked catch-up";
      duration = Time.sec 8;
      settle = Time.sec 2;
      clients = 8;
      requests = 2400;
      think = Time.ms 3;
      expect_snapshot = true;
      schedule =
        Timed
          [ (* replica2 is the checkpoint backup; killing replica3 leaves
               checkpointing alive while the victim's log falls far behind *)
            { at = Time.ms 400; fault = Crash_node "replica3" };
            { at = Time.sec 7; fault = Restart_one } ] };
    { base with
      name = "random";
      about = "seeded probabilistic nemesis: faults drawn from the full pool";
      duration = Time.sec 6;
      requests = 200;
      schedule = Probabilistic { faults = 6; start = Time.ms 500; stop = Time.sec 5 } };
    { base with
      name = "reconfig-partition";
      about = "isolate a replica, then reconfigure it out of the membership while \
               it is unreachable: the joint quorum spans old and new configs, and \
               on heal the stale replica must fence itself instead of voting";
      duration = Time.sec 5;
      schedule =
        Timed
          [ { at = Time.sec 1; fault = Partition_node "replica3" };
            { at = Time.ms 1400;
              fault = Replace { dead = "replica3"; fresh = "replica4" } };
            { at = Time.ms 3200; fault = Heal } ] };
    { base with
      name = "replace-catchup";
      about = "crash a backup early, run thousands of events past the compaction \
               watermark, then replace it with a fresh replica: the joiner's empty \
               log is behind the freed prefix, so bootstrap must come through \
               snapshot transfer + chunked catch-up";
      duration = Time.sec 8;
      settle = Time.sec 2;
      clients = 8;
      requests = 2400;
      think = Time.ms 3;
      expect_snapshot = true;
      schedule =
        Timed
          [ { at = Time.ms 400; fault = Crash_node "replica3" };
            (* past the first completed checkpoint + compaction round, so
               the joiner's bootstrap cannot be served from the log *)
            { at = Time.sec 7;
              fault = Replace { dead = "replica3"; fresh = "replica4" } } ] };
    { base with
      name = "lease-partition";
      about = "isolate the lease-holding primary with read traffic flowing: its \
               lease must lapse within lease_duration of the cut — before the \
               suspect timeout would even notice — and no fast read on the \
               ex-primary may be served in lease mode until heal";
      duration = Time.sec 4;
      read_clients = 2;
      lease_fence = true;
      schedule =
        Timed
          [ { at = Time.sec 1; fault = Partition_primary };
            { at = Time.sec 3; fault = Heal } ] };
    { base with
      name = "stale-read-viewchange";
      about = "kill the lease-holding primary mid-read-burst, then reconfigure \
               the corpse out (a fencing window): no read may be staler than \
               its returned watermark, and lease reads stay linearizable";
      duration = Time.sec 5;
      settle = Time.sec 2;
      requests = 200;
      read_clients = 3;
      schedule =
        Timed
          [ { at = Time.sec 1; fault = Crash_primary { torn_wal = false } };
            { at = Time.ms 2500; fault = Replace_crashed { fresh = "replica4" } } ] };
    { base with
      name = "kill-autoheal-kill";
      about = "arm the failure detector, then kill two replicas in sequence: each \
               loss must be detected and replaced automatically, ending at epoch 2 \
               with a healthy quorum of survivors and spawned replacements";
      duration = Time.sec 6;
      settle = Time.sec 2;
      requests = 200;
      schedule =
        Timed
          [ { at = Time.ms 100; fault = Autoheal };
            { at = Time.ms 800; fault = Crash_node "replica3" };
            { at = Time.ms 3200; fault = Crash_node "replica2" } ] };
  ]

let find_scenario name = List.find_opt (fun s -> s.name = name) scenarios
