(** The chaos workload: an append-only ledger server plus a client that
    remembers which writes were acknowledged.

    Each request appends one globally unique id; the server acknowledges
    with [OK <id>] only after the write is admitted from the PAXOS
    sequence, so an acknowledgement implies the id was decided by a
    quorum.  At the end of a run the checker demands that every
    acknowledged id is present in every live replica's state — the
    "no client-acked request lost" invariant.  Retried attempts use fresh
    ids, which keeps the check sound under at-least-once delivery: an
    unacked id may or may not land in the ledger, an acked one must. *)

module Time = Crane_sim.Time
module Sock = Crane_socket.Sock
module Api = Crane_core.Api
module Target = Crane_workload.Target

let server : Api.server =
  {
    Api.name = "ledger";
    install = (fun fs -> Crane_fs.Memfs.write fs ~path:"install/ledger.conf" "port=80");
    boot =
      (fun api ->
        let module R = (val api : Api.API) in
        let ids = ref [] in
        (* newest first *)
        let count = ref 0 in
        let stopped = ref false in
        (* Reader-writer lock, not a mutex: GETs only read the list, and
           a mutex would serialize (and order) concurrent GET commands
           that the delivery layer is entitled to run in parallel. *)
        let mu = R.rwlock ~name:"ledger.ids" () in
        R.spawn ~name:"ledger-listener" (fun () ->
            let l = R.listen ~port:80 in
            while not !stopped do
              R.poll l;
              let c = R.accept l in
              R.spawn ~name:"ledger-worker" (fun () ->
                  let rec serve buf =
                    match String.index_opt buf '\n' with
                    | Some i ->
                      let line = String.trim (String.sub buf 0 i) in
                      let rest = String.sub buf (i + 1) (String.length buf - i - 1) in
                      (match String.split_on_char ' ' line with
                      | [ "PUT"; id ] ->
                        R.wrlock mu;
                        ids := id :: !ids;
                        incr count;
                        R.rwunlock mu;
                        R.send c (Printf.sprintf "OK %s\n" id)
                      | [ "GET" ] ->
                        (* Consensus-path read: the all-consensus baseline
                           and the fast path's REJECT/fallback route. *)
                        R.rdlock mu;
                        let snapshot = String.concat "," (List.rev !ids) in
                        R.rwunlock mu;
                        R.send c (Printf.sprintf "IDS %s\n" snapshot)
                      | _ -> R.send c "ERR\n");
                      serve rest
                    | None ->
                      let chunk = R.recv c ~max:4096 in
                      if chunk = "" then R.close c else serve (buf ^ chunk)
                  in
                  serve "")
            done);
        {
          Api.server_name = "ledger";
          state_of = (fun () -> String.concat "," (List.rev !ids));
          load_state =
            (fun s ->
              let l = if s = "" then [] else String.split_on_char ',' s in
              ids := List.rev l;
              count := List.length l);
          mem_bytes = (fun () -> 1_000_000 + (16 * !count));
          stop = (fun () -> stopped := true);
          read =
            (fun line ->
              if String.trim line = "GET" then
                Some (Printf.sprintf "IDS %s\n" (String.concat "," (List.rev !ids)))
              else None);
          footprint =
            (fun line ->
              (* The whole ledger is one resource: PUTs all conflict (the
                 honest footprint of an append-only list), GETs only read
                 it and may run alongside each other. *)
              match String.split_on_char ' ' (String.trim line) with
              | [ "PUT"; _ ] ->
                Some { Api.fp_reads = []; fp_writes = [ "ledger" ] }
              | [ "GET" ] -> Some { Api.fp_reads = [ "ledger" ]; fp_writes = [] }
              | _ -> None);
        });
  }

type client = {
  mutable attempts : int;  (** also the id source: every attempt is unique *)
  acked : (string, unit) Hashtbl.t;
}

let client () = { attempts = 0; acked = Hashtbl.create 512 }

let acked_ids t =
  List.sort compare (Hashtbl.fold (fun id () acc -> id :: acc) t.acked [])

let acked_count t = Hashtbl.length t.acked

(* One request: PUT a fresh id, succeed only on a matching OK.  A short
   recv timeout (vs. the benchmarks' 120 s) makes a stalled primary a
   transient failure the loadgen can retry, not a wedged client. *)
let request t target ~from =
  ignore from;
  t.attempts <- t.attempts + 1;
  let id = Printf.sprintf "w%d" t.attempts in
  match Target.connect target ~from with
  | None -> None
  | Some conn ->
    let resp =
      try
        Sock.send conn (Printf.sprintf "PUT %s\n" id);
        let rec read buf =
          if String.contains buf '\n' then Some buf
          else
            let chunk = Sock.recv ~timeout:(Time.sec 5) conn ~max:4096 in
            if chunk = "" then if buf = "" then None else Some buf
            else read (buf ^ chunk)
        in
        read ""
      with Sock.Connection_closed -> None
    in
    (try Sock.close conn with Sock.Connection_closed -> ());
    (match resp with
    | Some r when String.length r >= String.length ("OK " ^ id)
                  && String.sub r 0 (String.length ("OK " ^ id)) = "OK " ^ id ->
      Hashtbl.replace t.acked id ();
      resp
    | Some _ | None -> None)

(* Parse a replica's ledger state back into an id set. *)
let ids_of_state s =
  if s = "" then [] else String.split_on_char ',' s

(* ------------------------------------------------------------------ *)
(* Read clients. *)

module Proxy = Crane_core.Proxy

(* Consensus-path GET: the all-consensus read baseline, and the fallback
   when the fast path answers REJECT.  Returns the [IDS ...] line. *)
let consensus_get target ~from =
  match Target.connect target ~from with
  | None -> None
  | Some conn ->
    let resp =
      try
        Sock.send conn "GET\n";
        let rec read buf =
          if String.contains buf '\n' then Some buf
          else
            let chunk = Sock.recv ~timeout:(Time.sec 5) conn ~max:65536 in
            if chunk = "" then if buf = "" then None else Some buf
            else read (buf ^ chunk)
        in
        read ""
      with Sock.Connection_closed -> None
    in
    (try Sock.close conn with Sock.Connection_closed -> ());
    (match resp with
    | Some r when String.length r >= 4 && String.sub r 0 4 = "IDS " -> resp
    | Some _ | None -> None)

(* One fast-path read against [rtarget] (a read-port target): GET through
   the proxy's read envelope.  None = transport failure. *)
let fast_get rtarget ~from =
  match Target.connect rtarget ~from with
  | None -> None
  | Some conn ->
    let reply =
      try
        Sock.send conn (Proxy.encode_read_request "GET\n");
        let rec go buf =
          match Proxy.parse_read_reply buf with
          | Some (r, _) -> Some r
          | None ->
            let chunk = Sock.recv ~timeout:(Time.sec 5) conn ~max:65536 in
            if chunk = "" then None else go (buf ^ chunk)
        in
        go ""
      with Sock.Connection_closed -> None
    in
    (try Sock.close conn with Sock.Connection_closed -> ());
    reply

(* Fast path with consensus fallback: the client-visible read operation.
   [Served] answers return their value; a rejected or transport-failed
   fast read retries on the consensus funnel. *)
let read_request ~rtarget ~target ~from =
  match fast_get rtarget ~from with
  | Some (Proxy.Served r) -> Some r.Proxy.value
  | Some Proxy.Rejected | Some Proxy.Write_required | None ->
    consensus_get target ~from

(* Parse the ids out of an [IDS ...] reply line. *)
let ids_of_reply r =
  match String.index_opt r '\n' with
  | Some i when String.length r >= 4 && String.sub r 0 4 = "IDS " ->
    ids_of_state (String.trim (String.sub r 4 (i - 4)))
  | Some _ | None -> []
