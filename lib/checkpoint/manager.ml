module Time = Crane_sim.Time
module Engine = Crane_sim.Engine
module Memfs = Crane_fs.Memfs
module Fsdiff = Crane_fs.Fsdiff
module Container = Crane_fs.Container

type timings = { c_process : Time.t; c_fs : Time.t }
type restore_timings = { r_process : Time.t; r_fs : Time.t }

type checkpoint = {
  global_index : int;
  image : Criu.image;
  fs_patch : Fsdiff.patch;
  fs_base : Memfs.snapshot;
  taken_at : Time.t;
  timings : timings;
}

type t = {
  eng : Engine.t;
  container : Container.t;
  state_of : unit -> string;
  mem_bytes : unit -> int;
  alive_conns : unit -> int;
  global_index : unit -> int;
  max_backoffs : int;
  mutable last : checkpoint option;
  mutable taken : int;
  mutable backoffs : int;
  mutable skipped : int;
}

let create ?(max_backoffs = 20) eng ~container ~state_of ~mem_bytes ~alive_conns ~global_index =
  { eng; container; state_of; mem_bytes; alive_conns; global_index;
    max_backoffs; last = None; taken = 0; backoffs = 0; skipped = 0 }

(* diff reads both trees (~125 ns/byte: read, hash, spool) and writes the
   patch; patching replays only modified lines.  Calibrated against
   Table 2: MySQL's ~200 MB SysBench data dominates its near-minute
   filesystem checkpoint, while small trees are dwarfed by the container
   bounce. *)
let fs_scan_cost ~bytes = Time.ms 25 + (bytes * 125)
let fs_patch_cost ~bytes = Time.ms 180 + (bytes * 300)

(* Bounded: streaming clients can keep a connection alive indefinitely,
   so an unbounded retry loop would wedge the checkpointer forever.
   After [max_backoffs] attempts the round is skipped; the periodic loop
   tries again a full period later. *)
let rec wait_for_quiescence t attempts =
  if t.alive_conns () = 0 then true
  else if attempts >= t.max_backoffs then false
  else begin
    (* "CRANE simply checks whether the server has alive connections.  If
       so, CRANE backs off for a few seconds and then retries." *)
    t.backoffs <- t.backoffs + 1;
    Engine.sleep t.eng (Time.ms 500);
    wait_for_quiescence t (attempts + 1)
  end

let take_checkpoint t =
  let global_index = t.global_index () in
  (* Step 1: CRIU dump of the process inside the container. *)
  let t0 = Engine.now t.eng in
  let image = Criu.dump t.eng t.container ~state:(t.state_of ()) ~mem_bytes:(t.mem_bytes ()) in
  let c_process = Engine.now t.eng - t0 in
  (* Step 2: stop the container and diff against the base snapshot. *)
  let t1 = Engine.now t.eng in
  Container.stop t.container;
  let base = Container.base_snapshot t.container in
  let target = Memfs.snapshot (Container.fs t.container) in
  Engine.sleep t.eng (fs_scan_cost ~bytes:(Fsdiff.scanned_bytes ~base ~target));
  let fs_patch = Fsdiff.diff ~base ~target in
  (* Step 3: restart the container (the process restore after a periodic
     checkpoint is immediate since the state never left memory; its cost
     is what [restore] charges). *)
  Container.start t.container;
  let c_fs = Engine.now t.eng - t1 in
  let ckpt =
    { global_index; image; fs_patch; fs_base = base;
      taken_at = Engine.now t.eng; timings = { c_process; c_fs } }
  in
  t.last <- Some ckpt;
  t.taken <- t.taken + 1;
  ckpt

let checkpoint_now t =
  if wait_for_quiescence t 0 then Some (take_checkpoint t)
  else begin
    t.skipped <- t.skipped + 1;
    None
  end

let latest t = t.last

let restore t ckpt =
  (* Filesystem first: patch the base snapshot and install it. *)
  let t0 = Engine.now t.eng in
  Engine.sleep t.eng (fs_patch_cost ~bytes:(Fsdiff.patch_bytes ckpt.fs_patch));
  let snap = Fsdiff.apply ~base:ckpt.fs_base ckpt.fs_patch in
  Memfs.restore (Container.fs t.container) snap;
  let r_fs = Engine.now t.eng - t0 in
  Container.start t.container;
  let t1 = Engine.now t.eng in
  let state = Criu.restore t.eng t.container ckpt.image in
  let r_process = Engine.now t.eng - t1 in
  (state, { r_process; r_fs })

let start_periodic t ?(period = Time.sec 60) ?(on_checkpoint = fun _ -> ()) ~group () =
  let rec loop () =
    Engine.after t.eng ~group period (fun () ->
        Engine.spawn t.eng ~group ~name:"checkpointer" (fun () ->
            (match checkpoint_now t with
            | Some ckpt -> on_checkpoint ckpt
            | None -> ());
            loop ()))
  in
  loop ()

let checkpoints_taken t = t.taken
let backoffs t = t.backoffs
let checkpoints_skipped t = t.skipped
