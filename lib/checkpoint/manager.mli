(** The checkpoint component (paper §2.1, §5.2).

    Runs on one backup replica.  A checkpoint operation:

    + CRIU-dumps the server process (its state blob + memory-size cost);
    + stops the LXC container and generates an incremental textual diff of
      the server's working/installation directories against the base
      snapshot;
    + restarts the container and CRIU-restores the process.

    Each checkpoint is associated with the PAXOS global index current at
    dump time, so recovery restores the snapshot and replays decided
    socket calls from that index.  Because checkpointing a live TCP stack
    is notoriously hard, the manager backs off while the server has alive
    connections and retries a few seconds later (the paper's trick). *)

type timings = {
  c_process : Crane_sim.Time.t;  (** CRIU dump ("C p" in Table 2) *)
  c_fs : Crane_sim.Time.t;  (** stop + diff + restart ("C fs") *)
}

type restore_timings = {
  r_process : Crane_sim.Time.t;  (** CRIU restore ("R p") *)
  r_fs : Crane_sim.Time.t;  (** patch application ("R fs") *)
}

type checkpoint = {
  global_index : int;
  image : Criu.image;
  fs_patch : Crane_fs.Fsdiff.patch;
  fs_base : Crane_fs.Memfs.snapshot;
  taken_at : Crane_sim.Time.t;
  timings : timings;
}

type t

val create :
  ?max_backoffs:int ->
  Crane_sim.Engine.t ->
  container:Crane_fs.Container.t ->
  state_of:(unit -> string) ->
  mem_bytes:(unit -> int) ->
  alive_conns:(unit -> int) ->
  global_index:(unit -> int) ->
  t
(** [max_backoffs] (default 20, i.e. 10 s of 500 ms retries) bounds the
    alive-connection back-off: streaming clients that never drain would
    otherwise wedge the checkpointer forever. *)

val checkpoint_now : t -> checkpoint option
(** Blocking (simulated thread); performs the three steps above,
    including the alive-connection back-off.  [None] when connections
    never drained within [max_backoffs] retries — the round is skipped
    and counted in {!checkpoints_skipped}. *)

val latest : t -> checkpoint option

val restore : t -> checkpoint -> string * restore_timings
(** Blocking.  Applies the filesystem patch to the base snapshot, writes
    it into the container's filesystem, restarts the container, restores
    the process image, and returns the state blob. *)

val start_periodic :
  t ->
  ?period:Crane_sim.Time.t ->
  ?on_checkpoint:(checkpoint -> unit) ->
  group:Crane_sim.Engine.group ->
  unit ->
  unit
(** Checkpoint every [period] (default one minute, as in the paper) until
    the group dies.  [on_checkpoint] fires after each successful round
    (the instance uses it to hand the snapshot to consensus for
    compaction); skipped rounds fire nothing. *)

val checkpoints_taken : t -> int
val backoffs : t -> int

val checkpoints_skipped : t -> int
(** Checkpoint rounds abandoned because connections never drained. *)

(** Cost model for the filesystem checkpoint, exposed for tests. *)

val fs_scan_cost : bytes:int -> Crane_sim.Time.t
val fs_patch_cost : bytes:int -> Crane_sim.Time.t
