module Time = Crane_sim.Time
module Engine = Crane_sim.Engine
module Rng = Crane_sim.Rng
module Sched = Crane_sim.Sched
module Trace = Crane_trace.Trace

type node = string
type endpoint = { node : node; port : int }

let endpoint_pp fmt e = Format.fprintf fmt "%s:%d" e.node e.port

type message = ..

(* A send parked in the controlled fabric, waiting for the scheduler to
   deliver it.  Ids are assigned in send order, so the FIFO head of a
   link is its pending message with the smallest id. *)
type ctl_msg = {
  cm_id : int;
  cm_src : endpoint;
  cm_dst : endpoint;
  cm_msg : message;
  cm_ready : Time.t;
}

type t = {
  eng : Engine.t;
  rng : Rng.t;
  (* Jitter/loss draws come from a per-link stream derived from
     [link_seed], not from the shared [rng]: with one shared stream, a
     change in the {e number} of messages on one link (e.g. batching
     collapsing N Accepts into one) would shift every later draw and
     perturb latencies on unrelated links, breaking fixed-seed
     comparisons across configurations.  The per-link seed depends only
     on (seed, src, dst), never on creation order. *)
  link_seed : int;
  link_rngs : (node * node, Rng.t) Hashtbl.t;
  mutable base : Time.t;
  mutable jitter : Time.t;
  mutable byte_cost : Time.t;
  mutable loss : float;
  up : (node, bool) Hashtbl.t;
  handlers : (node * int, src:endpoint -> message -> unit) Hashtbl.t;
  (* FIFO guarantee: never schedule a delivery on a link earlier than the
     previous one. *)
  last_delivery : (node * node, Time.t) Hashtbl.t;
  (* A partition blocks [src] -> [dst]; symmetric ones block the reverse
     direction too. *)
  mutable partitions : (node list * node list * bool) list;
  mutable delivered : int;
  mutable dropped : int;
  (* Controlled-mode state (Crane-MC); only touched when the engine
     carries a scheduler. *)
  mutable ctl_next_id : int;
  ctl_pending : (int, ctl_msg) Hashtbl.t;
}

let create eng rng =
  {
    eng;
    link_seed = Int64.to_int (Rng.next rng);
    rng;
    link_rngs = Hashtbl.create 64;
    base = Time.us 40;
    jitter = Time.us 20;
    byte_cost = 8 (* ns/byte: 1 Gbps wire *);
    loss = 0.0;
    up = Hashtbl.create 16;
    handlers = Hashtbl.create 64;
    last_delivery = Hashtbl.create 64;
    partitions = [];
    delivered = 0;
    dropped = 0;
    ctl_next_id = 0;
    ctl_pending = Hashtbl.create 64;
  }

let engine t = t.eng

let set_latency t ~base ~jitter =
  t.base <- base;
  t.jitter <- jitter

let set_loss t loss = t.loss <- loss
let set_byte_cost t c = t.byte_cost <- c
let node_up t n = Hashtbl.replace t.up n true
let node_down t n = Hashtbl.replace t.up n false
let is_up t n = match Hashtbl.find_opt t.up n with Some b -> b | None -> false

let partition t a b = t.partitions <- (a, b, true) :: t.partitions
let partition_oneway t ~from ~to_ = t.partitions <- (from, to_, false) :: t.partitions
let heal t = t.partitions <- []
let partitions t = List.length t.partitions

let partitioned t a b =
  let blocks (l, r, sym) =
    (List.mem a l && List.mem b r) || (sym && List.mem a r && List.mem b l)
  in
  List.exists blocks t.partitions

let bind t ep handler =
  node_up t ep.node;
  Hashtbl.replace t.handlers (ep.node, ep.port) handler

let unbind t ep = Hashtbl.remove t.handlers (ep.node, ep.port)

let link_rng t link =
  match Hashtbl.find_opt t.link_rngs link with
  | Some r -> r
  | None ->
    let src, dst = link in
    let r = Rng.create (Hashtbl.hash (t.link_seed, src, dst)) in
    Hashtbl.replace t.link_rngs link r;
    r

let sample_delay t rng =
  let j = if t.jitter > 0 then Rng.int rng t.jitter else 0 in
  t.base + j

(* Message loss is a latency event, not just a counter: a dropped Accept
   or ack stalls its index until the round retry, so chaos-run critical
   paths want drops on the replica's timeline. *)
let note_drop t ~src ~dst ~reason =
  t.dropped <- t.dropped + 1;
  let tr = Engine.trace t.eng in
  if Trace.enabled tr then
    Trace.instant tr ~ts:(Engine.now t.eng) ~tid:(Engine.self_tid t.eng)
      ~node:dst.node ~cat:"net" ~name:"drop"
      [ ("src", Trace.Str src.node); ("reason", Trace.Str reason) ]

(* Application-level rejection of an already-delivered message — e.g.
   paxos fencing a stale config epoch.  Counts and traces like a fabric
   drop so chaos reports and timelines show why the message died. *)
let reject t ~src ~dst ~reason = note_drop t ~src ~dst ~reason

(* ------------------------------------------------------------------ *)
(* Controlled mode (Crane-MC).

   With a scheduler installed on the engine, sends do not sample the
   per-link RNG streams at all: every message parks in [ctl_pending]
   behind a fixed base latency, and at each delivery instant the
   scheduler picks which eligible message fires next, then whether it is
   delivered or dropped.  Per-link FIFO is preserved structurally — only
   the oldest pending message of each link is ever eligible — so the
   enumerator explores exactly the cross-link delivery orders a real
   asynchronous network admits.  Everything downstream of the choices is
   deterministic, which is what makes a recorded choice sequence a
   replayable counterexample. *)

(* Stable identity of a pending message, parseable by the enumerator:
   "<id>|<src>><dst>:<port>". *)
let ctl_key m =
  Printf.sprintf "%d|%s>%s:%d" m.cm_id m.cm_src.node m.cm_dst.node
    m.cm_dst.port

(* Eligible set: per-link FIFO heads whose ready time has arrived.  A
   delay-bucketed head parks its whole link behind it (FIFO), which is
   how the enumerator slides a message past a timer deadline. *)
let ctl_eligible t =
  let now = Engine.now t.eng in
  let heads = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ m ->
      let link = (m.cm_src.node, m.cm_dst.node) in
      match Hashtbl.find_opt heads link with
      | Some m' when m'.cm_id < m.cm_id -> ()
      | _ -> Hashtbl.replace heads link m)
    t.ctl_pending;
  let elig =
    Hashtbl.fold
      (fun _ m acc -> if m.cm_ready <= now then m :: acc else acc)
      heads []
  in
  List.sort (fun a b -> compare a.cm_id b.cm_id) elig

let ctl_pump t sched =
  let rec loop () =
    match ctl_eligible t with
    | [] -> ()
    | elig ->
      sched.Sched.pre_deliver ();
      let arr = Array.of_list elig in
      let keys = Array.map ctl_key arr in
      let m = arr.(Sched.choose sched ~label:"net.deliver" ~keys) in
      Hashtbl.remove t.ctl_pending m.cm_id;
      let src = m.cm_src and dst = m.cm_dst in
      if
        (not (is_up t src.node && is_up t dst.node))
        || partitioned t src.node dst.node
      then note_drop t ~src ~dst ~reason:"partitioned"
      else begin
        let key = ctl_key m in
        let fate =
          Sched.choose sched ~label:"net.fate"
            ~keys:[| "deliver:" ^ key; "drop:" ^ key |]
        in
        if fate = 1 then note_drop t ~src ~dst ~reason:"mc_drop"
        else
          match Hashtbl.find_opt t.handlers (dst.node, dst.port) with
          | Some handler ->
            t.delivered <- t.delivered + 1;
            sched.Sched.on_deliver ~id:m.cm_id ~src:src.node ~dst:dst.node;
            handler ~src m.cm_msg
          | None -> note_drop t ~src ~dst ~reason:"unbound"
      end;
      (* Handlers only ever park new messages at [now + base > now], so
         the eligible set shrinks monotonically and the loop terminates.
         Draining every same-instant delivery here matches the normal
         mode, where simultaneous arrivals run back to back before any
         continuation they wake. *)
      loop ()
  in
  loop ()

let ctl_send ~bytes t sched ~src ~dst msg =
  if not (is_up t src.node) then note_drop t ~src ~dst ~reason:"src_down"
  else begin
    let id = t.ctl_next_id in
    t.ctl_next_id <- id + 1;
    sched.Sched.on_send ~id ~src:src.node ~dst:dst.node;
    let mult =
      let delays = sched.Sched.delays in
      if Array.length delays <= 1 then delays.(0)
      else
        let keys =
          Array.map
            (fun d ->
              Printf.sprintf "%d|%s>%s:%d|%dx" id src.node dst.node dst.port d)
            delays
        in
        delays.(Sched.choose sched ~label:"net.delay" ~keys)
    in
    let ready =
      Engine.now t.eng + (mult * sched.Sched.base) + (bytes * t.byte_cost)
    in
    Hashtbl.replace t.ctl_pending id
      { cm_id = id; cm_src = src; cm_dst = dst; cm_msg = msg; cm_ready = ready };
    Engine.at t.eng ready (fun () -> ctl_pump t sched)
  end

let send ?(bytes = 0) t ~src ~dst msg =
  if not (Hashtbl.mem t.up src.node) then node_up t src.node;
  match Engine.sched t.eng with
  | Some sched -> ctl_send ~bytes t sched ~src ~dst msg
  | None ->
  let link = (src.node, dst.node) in
  let rng = link_rng t link in
  if not (is_up t src.node) || Rng.chance rng t.loss then
    note_drop t ~src ~dst
      ~reason:(if is_up t src.node then "loss" else "src_down")
  else begin
    let arrival =
      let earliest =
        Engine.now t.eng + sample_delay t rng + (bytes * t.byte_cost)
      in
      match Hashtbl.find_opt t.last_delivery link with
      | Some prev when prev > earliest -> prev
      | _ -> earliest
    in
    Hashtbl.replace t.last_delivery link arrival;
    Engine.at t.eng arrival (fun () ->
        if is_up t src.node && is_up t dst.node
           && not (partitioned t src.node dst.node)
        then
          match Hashtbl.find_opt t.handlers (dst.node, dst.port) with
          | Some handler ->
            t.delivered <- t.delivered + 1;
            handler ~src msg
          | None -> note_drop t ~src ~dst ~reason:"unbound"
        else note_drop t ~src ~dst ~reason:"partitioned")
  end

let delivered t = t.delivered
let dropped t = t.dropped
