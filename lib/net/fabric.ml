module Time = Crane_sim.Time
module Engine = Crane_sim.Engine
module Rng = Crane_sim.Rng
module Trace = Crane_trace.Trace

type node = string
type endpoint = { node : node; port : int }

let endpoint_pp fmt e = Format.fprintf fmt "%s:%d" e.node e.port

type message = ..

type t = {
  eng : Engine.t;
  rng : Rng.t;
  (* Jitter/loss draws come from a per-link stream derived from
     [link_seed], not from the shared [rng]: with one shared stream, a
     change in the {e number} of messages on one link (e.g. batching
     collapsing N Accepts into one) would shift every later draw and
     perturb latencies on unrelated links, breaking fixed-seed
     comparisons across configurations.  The per-link seed depends only
     on (seed, src, dst), never on creation order. *)
  link_seed : int;
  link_rngs : (node * node, Rng.t) Hashtbl.t;
  mutable base : Time.t;
  mutable jitter : Time.t;
  mutable byte_cost : Time.t;
  mutable loss : float;
  up : (node, bool) Hashtbl.t;
  handlers : (node * int, src:endpoint -> message -> unit) Hashtbl.t;
  (* FIFO guarantee: never schedule a delivery on a link earlier than the
     previous one. *)
  last_delivery : (node * node, Time.t) Hashtbl.t;
  (* A partition blocks [src] -> [dst]; symmetric ones block the reverse
     direction too. *)
  mutable partitions : (node list * node list * bool) list;
  mutable delivered : int;
  mutable dropped : int;
}

let create eng rng =
  {
    eng;
    link_seed = Int64.to_int (Rng.next rng);
    rng;
    link_rngs = Hashtbl.create 64;
    base = Time.us 40;
    jitter = Time.us 20;
    byte_cost = 8 (* ns/byte: 1 Gbps wire *);
    loss = 0.0;
    up = Hashtbl.create 16;
    handlers = Hashtbl.create 64;
    last_delivery = Hashtbl.create 64;
    partitions = [];
    delivered = 0;
    dropped = 0;
  }

let engine t = t.eng

let set_latency t ~base ~jitter =
  t.base <- base;
  t.jitter <- jitter

let set_loss t loss = t.loss <- loss
let set_byte_cost t c = t.byte_cost <- c
let node_up t n = Hashtbl.replace t.up n true
let node_down t n = Hashtbl.replace t.up n false
let is_up t n = match Hashtbl.find_opt t.up n with Some b -> b | None -> false

let partition t a b = t.partitions <- (a, b, true) :: t.partitions
let partition_oneway t ~from ~to_ = t.partitions <- (from, to_, false) :: t.partitions
let heal t = t.partitions <- []
let partitions t = List.length t.partitions

let partitioned t a b =
  let blocks (l, r, sym) =
    (List.mem a l && List.mem b r) || (sym && List.mem a r && List.mem b l)
  in
  List.exists blocks t.partitions

let bind t ep handler =
  node_up t ep.node;
  Hashtbl.replace t.handlers (ep.node, ep.port) handler

let unbind t ep = Hashtbl.remove t.handlers (ep.node, ep.port)

let link_rng t link =
  match Hashtbl.find_opt t.link_rngs link with
  | Some r -> r
  | None ->
    let src, dst = link in
    let r = Rng.create (Hashtbl.hash (t.link_seed, src, dst)) in
    Hashtbl.replace t.link_rngs link r;
    r

let sample_delay t rng =
  let j = if t.jitter > 0 then Rng.int rng t.jitter else 0 in
  t.base + j

(* Message loss is a latency event, not just a counter: a dropped Accept
   or ack stalls its index until the round retry, so chaos-run critical
   paths want drops on the replica's timeline. *)
let note_drop t ~src ~dst ~reason =
  t.dropped <- t.dropped + 1;
  let tr = Engine.trace t.eng in
  if Trace.enabled tr then
    Trace.instant tr ~ts:(Engine.now t.eng) ~tid:(Engine.self_tid t.eng)
      ~node:dst.node ~cat:"net" ~name:"drop"
      [ ("src", Trace.Str src.node); ("reason", Trace.Str reason) ]

(* Application-level rejection of an already-delivered message — e.g.
   paxos fencing a stale config epoch.  Counts and traces like a fabric
   drop so chaos reports and timelines show why the message died. *)
let reject t ~src ~dst ~reason = note_drop t ~src ~dst ~reason

let send ?(bytes = 0) t ~src ~dst msg =
  if not (Hashtbl.mem t.up src.node) then node_up t src.node;
  let link = (src.node, dst.node) in
  let rng = link_rng t link in
  if not (is_up t src.node) || Rng.chance rng t.loss then
    note_drop t ~src ~dst
      ~reason:(if is_up t src.node then "loss" else "src_down")
  else begin
    let arrival =
      let earliest =
        Engine.now t.eng + sample_delay t rng + (bytes * t.byte_cost)
      in
      match Hashtbl.find_opt t.last_delivery link with
      | Some prev when prev > earliest -> prev
      | _ -> earliest
    in
    Hashtbl.replace t.last_delivery link arrival;
    Engine.at t.eng arrival (fun () ->
        if is_up t src.node && is_up t dst.node
           && not (partitioned t src.node dst.node)
        then
          match Hashtbl.find_opt t.handlers (dst.node, dst.port) with
          | Some handler ->
            t.delivered <- t.delivered + 1;
            handler ~src msg
          | None -> note_drop t ~src ~dst ~reason:"unbound"
        else note_drop t ~src ~dst ~reason:"partitioned")
  end

let delivered t = t.delivered
let dropped t = t.dropped
