(** Simulated LAN fabric.

    A datagram layer between named nodes: per-link latency with seeded
    jitter, optional loss, partitions, and node up/down — the substrate for
    both the PAXOS protocol traffic and the TCP-like socket layer.

    Delivery per (src, dst) pair is FIFO (later sends never overtake
    earlier ones on the same link, as on a TCP-backed LAN), while jitter
    still makes {e cross-link} arrival order nondeterministic — the paper's
    source S1/S3 of replica divergence. *)

type node = string

type endpoint = { node : node; port : int }

val endpoint_pp : Format.formatter -> endpoint -> unit

type message = ..
(** Extensible payload type: each protocol layer adds its constructors. *)

type t

val create : Crane_sim.Engine.t -> Crane_sim.Rng.t -> t
(** Default link model: 40 us base latency, 20 us jitter, no loss —
    a 1 Gbps LAN as in the paper's testbed. *)

val engine : t -> Crane_sim.Engine.t

val set_latency : t -> base:Crane_sim.Time.t -> jitter:Crane_sim.Time.t -> unit
val set_loss : t -> float -> unit

val set_byte_cost : t -> Crane_sim.Time.t -> unit
(** Per-byte serialization + wire cost charged to bulk transfers that pass
    [?bytes] to {!send}.  Default 8 ns/byte (1 Gbps). *)

val node_up : t -> node -> unit
(** Bring a node (back) online.  Nodes referenced by {!bind} or {!send}
    are brought up implicitly. *)

val node_down : t -> node -> unit
(** Take a node offline: its in-flight and future messages are dropped,
    in both directions. *)

val is_up : t -> node -> bool

val partition : t -> node list -> node list -> unit
(** Block traffic between the two sides (both directions).  Cumulative
    with previous partitions. *)

val partition_oneway : t -> from:node list -> to_:node list -> unit
(** Block traffic from [from] to [to_] only: the asymmetric failure mode
    (e.g. a primary whose outbound NIC queue wedges while inbound traffic
    still arrives).  Cumulative with previous partitions. *)

val heal : t -> unit
(** Remove all partitions. *)

val partitions : t -> int
(** Number of active partition rules. *)

val bind : t -> endpoint -> (src:endpoint -> message -> unit) -> unit
(** Install the handler for a (node, port).  Replaces any previous one. *)

val unbind : t -> endpoint -> unit

val send : ?bytes:int -> t -> src:endpoint -> dst:endpoint -> message -> unit
(** Fire-and-forget datagram.  Silently dropped if either node is down at
    delivery time, the pair is partitioned, the loss model fires, or no
    handler is bound.  [bytes] adds the bulk-transfer cost
    [bytes * byte_cost] to the link delay (used for snapshot streaming;
    ordinary protocol messages leave it 0 so fixed-seed timings are
    unchanged). *)

val reject : t -> src:endpoint -> dst:endpoint -> reason:string -> unit
(** Record an application-level rejection of an already-delivered message
    (e.g. consensus fencing a stale config epoch): counts and traces like
    a fabric drop, with [reason] on the receiver's timeline. *)

val delivered : t -> int
(** Total messages delivered so far (for tests and consensus-cost stats). *)

val dropped : t -> int
