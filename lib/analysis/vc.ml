(** Vector clocks for the happens-before engine (FastTrack-style).

    A clock maps engine thread ids to logical times.  Missing entries
    read as 0, so the empty map is the bottom element and [join] is a
    pointwise max. *)

module M = Map.Make (Int)

type t = int M.t

let empty : t = M.empty

let get (vc : t) tid = match M.find_opt tid vc with Some c -> c | None -> 0

let tick (vc : t) tid = M.add tid (get vc tid + 1) vc

let join (a : t) (b : t) : t = M.union (fun _ x y -> Some (max x y)) a b

(* Is the epoch (tid, clock) covered by [vc] — i.e. does everything up to
   [clock] on [tid] happen before the point whose clock is [vc]? *)
let covers (vc : t) ~tid ~clock = clock <= get vc tid

let to_string (vc : t) =
  "{"
  ^ String.concat ","
      (List.map (fun (t, c) -> Printf.sprintf "%d:%d" t c) (M.bindings vc))
  ^ "}"
