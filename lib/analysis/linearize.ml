(** Wing–Gong linearizability checking of recorded client histories
    against a sequential ledger spec.

    The history is the client-side view of a run: every operation carries
    its invocation and response times and the result the client observed.
    The checker searches for a single total order of the operations that
    (a) respects real time — an operation that completed before another
    was invoked must precede it — and (b) replays correctly against the
    sequential spec of the append-only ledger: an [Append] adds one id,
    a [Get] returns exactly the ids appended so far, in order.

    Two refinements beyond the textbook algorithm:

    {ul
    {- {e Pending operations.}  An append whose response never arrived
       (client timed out, primary crashed) may have taken effect at any
       point after its invocation — or never.  The search is free to
       place it or drop it; only completed operations are obligations.}
    {- {e Bounded-stale reads.}  A [Backup]-mode fast-path read is
       entitled to serve a stale committed prefix, bounded by the
       staleness the serving replica itself declared.  Such reads are
       excluded from the strict search and audited against the candidate
       write order instead: the returned ids must be a prefix of that
       order, must not contain writes from the read's future, and may
       miss at most [bound] writes that were acknowledged before the
       read began.  A read stale beyond its declared bound is a
       violation — the fast path lied about its own staleness.}}

    The search is exponential in the worst case but memoized on
    (linearized-set, ledger-state); Crane-MC histories are a handful of
    operations, for which it is instantaneous. *)

type op = Append of string | Get

type res = Ack | Ids of string list

type mode =
  | Strict  (** writes, consensus reads, lease-mode fast reads *)
  | Stale of int
      (** backup-mode fast read with its declared staleness bound, in
          consensus log entries behind the commit frontier *)

type event = {
  who : string;  (** client name, for diagnostics *)
  op : op;
  mode : mode;
  inv : int;  (** invocation time *)
  resp : int option;  (** response time; [None] = never returned *)
  res : res option;  (** observed result; [None] = never returned *)
}

type verdict =
  | Linear of string list
      (** a witness linearization: the append order that explains every
          observation *)
  | Violation of string

let pp_ids ids = "[" ^ String.concat "," ids ^ "]"

exception Found of string list

let check events =
  (* Stale reads are audited against the candidate write order; everything
     else goes through the strict search.  Reads that never returned
     impose no obligation in either camp. *)
  let stale, strict =
    List.partition
      (fun e -> match e.mode with Stale _ -> true | Strict -> false)
      events
  in
  List.iter
    (fun e ->
      match e.op with
      | Get -> ()
      | Append _ -> invalid_arg "Linearize.check: stale-mode append")
    stale;
  let stale = List.filter (fun e -> e.resp <> None && e.res <> None) stale in
  let strict =
    List.filter
      (fun e -> not (e.op = Get && (e.resp = None || e.res = None)))
      strict
  in
  let evs = Array.of_list strict in
  let n = Array.length evs in
  if n > 60 then invalid_arg "Linearize.check: history too large";
  let completed_mask = ref 0 in
  Array.iteri
    (fun i e -> if e.resp <> None then completed_mask := !completed_mask lor (1 lsl i))
    evs;
  let completed_mask = !completed_mask in
  (* Append metadata for the stale-read audit: id -> (inv, resp). *)
  let appends = Hashtbl.create 16 in
  Array.iter
    (fun e ->
      match e.op with
      | Append id ->
        if Hashtbl.mem appends id then
          invalid_arg ("Linearize.check: duplicate append id " ^ id);
        Hashtbl.replace appends id (e.inv, e.resp)
      | Get -> ())
    evs;
  let stale_note = ref None in
  let audit_stale order =
    let sees r =
      match r.res with Some (Ids l) -> l | Some Ack | None -> []
    in
    let fail m = if !stale_note = None then stale_note := Some m in
    List.for_all
      (fun r ->
        let bound = match r.mode with Stale s -> s | Strict -> assert false in
        let rresp = match r.resp with Some x -> x | None -> assert false in
        let want = sees r in
        let k = List.length want in
        let prefix = List.filteri (fun i _ -> i < k) order in
        if want <> prefix then begin
          fail
            (Printf.sprintf
               "stale read by %s returned %s, which is not a prefix of the \
                write order %s"
               r.who (pp_ids want) (pp_ids order));
          false
        end
        else begin
          let from_future =
            List.filter
              (fun id ->
                match Hashtbl.find_opt appends id with
                | Some (winv, _) -> winv > rresp
                | None -> false)
              want
          in
          if from_future <> [] then begin
            fail
              (Printf.sprintf
                 "stale read by %s returned %s invoked only after the read \
                  completed"
                 r.who (pp_ids from_future));
            false
          end
          else begin
            let missing =
              List.filter
                (fun id ->
                  (not (List.mem id want))
                  &&
                  match Hashtbl.find_opt appends id with
                  | Some (_, Some wresp) -> wresp < r.inv
                  | _ -> false)
                order
            in
            if List.length missing > bound then begin
              fail
                (Printf.sprintf
                   "stale read by %s declared staleness <= %d but is missing \
                    %d writes acked before it began: %s"
                   r.who bound (List.length missing) (pp_ids missing));
              false
            end
            else true
          end
        end)
      stale
  in
  (* Memoized DFS over the linearization tree.  [state] is the ledger in
     reverse append order; a (mask, state) pair that failed once fails
     always, so it is explored at most once. *)
  let dead = Hashtbl.create 1024 in
  let best = ref [] in
  let rec dfs mask state =
    if List.length state > List.length !best then best := state;
    if mask land completed_mask = completed_mask && audit_stale (List.rev state)
    then raise (Found (List.rev state));
    let key = (mask, state) in
    if not (Hashtbl.mem dead key) then begin
      for i = 0 to n - 1 do
        if mask land (1 lsl i) = 0 then begin
          let e = evs.(i) in
          (* Real-time order: [e] cannot linearize while another
             not-yet-linearized operation finished before [e] began. *)
          let blocked = ref false in
          for j = 0 to n - 1 do
            if j <> i && mask land (1 lsl j) = 0 then
              match evs.(j).resp with
              | Some r when r < e.inv -> blocked := true
              | _ -> ()
          done;
          if not !blocked then
            match e.op with
            | Append id -> dfs (mask lor (1 lsl i)) (id :: state)
            | Get ->
              let want =
                match e.res with Some (Ids l) -> l | _ -> assert false
              in
              if want = List.rev state then dfs (mask lor (1 lsl i)) state
        end
      done;
      Hashtbl.add dead key ()
    end
  in
  try
    dfs 0 [];
    match !stale_note with
    | Some m -> Violation m
    | None ->
      Violation
        (Printf.sprintf
           "no linearization exists for %d operations (longest consistent \
            write prefix: %s)"
           n
           (pp_ids (List.rev !best)))
  with Found order -> Linear order
