(** The happens-before monitor: a streaming consumer of the flight
    recorder that runs three analyses over one execution.

    {b Race detection} (FastTrack-style): every thread carries a vector
    clock; synchronization objects carry the clock of their last
    release-side operation.  Monitored memory cells keep the epoch of the
    last write and the last read per thread; an access that is not
    covered by the accessor's clock is a data race, reported with both
    access contexts (thread, locks held, recent synchronization path).

    {b Lock-order lint}: acquiring [l2] while holding [l1] records the
    edge [l1 -> l2]; cycles in the resulting graph (Tarjan SCCs) are
    potential deadlocks even when the runs that witnessed the edges never
    overlapped.  Waiting on a condition variable while holding a second
    lock besides the one being released is flagged separately.

    {b Digests}: a {e full} digest chains every event including
    timestamps (two same-seed replays must match byte for byte), and a
    {e schedule} digest chains only the synchronization/memory order
    without timestamps — the object the determinism certifier compares
    across seeds.

    Edge vocabulary per primitive: mutex release -> next acquire; rwlock
    release -> next acquire (reader edges overapproximated); sem post ->
    wait; every barrier arrive -> every leave of the round; cond signal
    -> woken (overapproximated: any earlier signal orders any later
    wake-up); thread spawn -> child start; thread exit -> join; DMT turn
    release -> next turn acquire (object 0, exempt from the lint). *)

module Trace = Crane_trace.Trace

type access = {
  a_thread : string;
  a_ts : int;  (** virtual ns *)
  a_op : string;  (** "read" | "write" *)
  a_locks : string list;  (** labels of locks held at the access *)
  a_path : string list;  (** recent sync operations, newest first *)
}

type race = {
  r_site : string;
  r_loc : int;
  r_kind : string;  (** "write-write" | "read-write" | "write-read" *)
  r_first : access;
  r_second : access;
}

type inversion = {
  i_locks : string list;  (** labels of the locks on the cycle, sorted *)
  i_edges : (string * string * string) list;
      (** (held, acquired, witness thread), in discovery order *)
}

type cond_hold = { c_cond : string; c_extra : string; c_thread : string }

type thread_state = {
  mutable vc : Vc.t;
  mutable held : (int * string * string) list;  (** obj, label, mode *)
  mutable path : string list;
  mutable tname : string;
}

type cell_state = {
  site : string;
  mutable wr : (int * int * access) option;  (** writer tid, clock, context *)
  mutable rds : (int * (int * access)) list;  (** reader tid -> clock, context *)
}

type t = {
  threads : (int, thread_state) Hashtbl.t;
  objs : (int, Vc.t ref) Hashtbl.t;
  obj_labels : (int, string) Hashtbl.t;
  exits : (int, Vc.t) Hashtbl.t;
  cells : (int, cell_state) Hashtbl.t;
  edge_seen : (int * int, unit) Hashtbl.t;
  mutable edges : ((int * int) * (string * string * string)) list;  (** newest first *)
  mutable races : race list;  (** newest first *)
  race_seen : (string, unit) Hashtbl.t;
  mutable cond_holds : cond_hold list;  (** newest first *)
  cond_seen : (string, unit) Hashtbl.t;
  mutable full_digest : string;
  mutable sched_digest : string;
  mutable sync_events : int;
  mutable mem_events : int;
}

type report = {
  races : race list;  (** discovery order *)
  inversions : inversion list;
  cond_holds : cond_hold list;
  schedule_digest : string;
  full_digest : string;
  sync_events : int;
  mem_events : int;
}

let create () =
  {
    threads = Hashtbl.create 64;
    objs = Hashtbl.create 64;
    obj_labels = Hashtbl.create 64;
    exits = Hashtbl.create 64;
    cells = Hashtbl.create 64;
    edge_seen = Hashtbl.create 64;
    edges = [];
    races = [];
    race_seen = Hashtbl.create 16;
    cond_holds = [];
    cond_seen = Hashtbl.create 16;
    full_digest = Digest.to_hex (Digest.string "crane-san");
    sched_digest = Digest.to_hex (Digest.string "crane-san");
    sync_events = 0;
    mem_events = 0;
  }

let thread t tid =
  match Hashtbl.find_opt t.threads tid with
  | Some st -> st
  | None ->
    let st =
      {
        vc = Vc.tick Vc.empty tid;
        held = [];
        path = [];
        tname = (if tid < 0 then "boot" else Printf.sprintf "tid%d" tid);
      }
    in
    Hashtbl.add t.threads tid st;
    st

let obj_vc t o =
  match Hashtbl.find_opt t.objs o with
  | Some r -> r
  | None ->
    let r = ref Vc.empty in
    Hashtbl.add t.objs o r;
    r

let cell t loc site =
  match Hashtbl.find_opt t.cells loc with
  | Some c -> c
  | None ->
    let c = { site; wr = None; rds = [] } in
    Hashtbl.add t.cells loc c;
    c

let path_limit = 4

let push_path st entry =
  st.path <-
    entry :: (if List.length st.path >= path_limit then List.filteri (fun i _ -> i < path_limit - 1) st.path else st.path)

let chain digest line = Digest.to_hex (Digest.string (digest ^ "\n" ^ line))

let report_race t c ~loc ~kind first second =
  let key =
    Printf.sprintf "%d|%s|%s|%s" loc kind
      (min first.a_thread second.a_thread)
      (max first.a_thread second.a_thread)
  in
  if not (Hashtbl.mem t.race_seen key) then begin
    Hashtbl.add t.race_seen key ();
    t.races <-
      { r_site = c.site; r_loc = loc; r_kind = kind; r_first = first; r_second = second }
      :: t.races
  end

let ph_string = function
  | Trace.Instant -> "i"
  | Trace.Begin -> "B"
  | Trace.End -> "E"
  | Trace.Async_begin id -> Printf.sprintf "b%d" id
  | Trace.Async_end id -> Printf.sprintf "e%d" id
  | Trace.Counter v -> Printf.sprintf "C%d" v

let args_string args =
  String.concat ","
    (List.map
       (fun (k, v) ->
         match v with
         | Trace.Int i -> Printf.sprintf "%s=%d" k i
         | Trace.Str s -> Printf.sprintf "%s=%s" k s)
       args)

let on_event (t : t) (ev : Trace.ev) =
  t.full_digest <-
    chain t.full_digest
      (Printf.sprintf "%d|%d|%s|%s|%s|%s" ev.ts ev.tid ev.cat ev.name (ph_string ev.ph)
         (args_string ev.args));
  match (ev.cat, ev.name) with
  | "sim", "thread_spawn" ->
    let child = ev.tid in
    let parent = Option.value (Trace.find_int ev "parent") ~default:(-1) in
    let name = Option.value (Trace.find_str ev "thread") ~default:"" in
    let cst = thread t child in
    if name <> "" then cst.tname <- name;
    t.sched_digest <- chain t.sched_digest (Printf.sprintf "spawn|%s" cst.tname);
    if parent <> child then begin
      let pst = thread t parent in
      cst.vc <- Vc.tick (Vc.join cst.vc pst.vc) child;
      pst.vc <- Vc.tick pst.vc parent
    end
  | "sync", name -> (
    t.sync_events <- t.sync_events + 1;
    let st = thread t ev.tid in
    let obj = Option.value (Trace.find_int ev "obj") ~default:(-1) in
    let kind = Option.value (Trace.find_str ev "kind") ~default:"" in
    let label = Option.value (Trace.find_str ev "label") ~default:"" in
    if label <> "" && not (Hashtbl.mem t.obj_labels obj) then
      Hashtbl.add t.obj_labels obj label;
    t.sched_digest <-
      chain t.sched_digest (Printf.sprintf "%s|%s|%d|%s" name st.tname obj label);
    match name with
    | "acquire" | "acquire_rd" ->
      st.vc <- Vc.join st.vc !(obj_vc t obj);
      if kind <> "turn" then begin
        List.iter
          (fun (o1, l1, _) ->
            if o1 <> obj && not (Hashtbl.mem t.edge_seen (o1, obj)) then begin
              Hashtbl.add t.edge_seen (o1, obj) ();
              t.edges <- ((o1, obj), (l1, label, st.tname)) :: t.edges
            end)
          st.held;
        st.held <- (obj, label, (if name = "acquire_rd" then "rd" else "wr")) :: st.held;
        push_path st (Printf.sprintf "%s(%s)@%d" name label ev.ts)
      end
    | "release" ->
      let r = obj_vc t obj in
      r := Vc.join !r st.vc;
      st.vc <- Vc.tick st.vc ev.tid;
      if kind <> "turn" then begin
        (* drop the innermost held entry for this object *)
        let rec drop = function
          | [] -> []
          | (o, _, _) :: rest when o = obj -> rest
          | h :: rest -> h :: drop rest
        in
        st.held <- drop st.held;
        push_path st (Printf.sprintf "release(%s)@%d" label ev.ts)
      end
    | "cond_wait" ->
      let mu = Trace.find_int ev "mutex" in
      List.iter
        (fun (o, l, _) ->
          if Some o <> mu then begin
            let key = Printf.sprintf "%d|%d|%s" obj o st.tname in
            if not (Hashtbl.mem t.cond_seen key) then begin
              Hashtbl.add t.cond_seen key ();
              t.cond_holds <- { c_cond = label; c_extra = l; c_thread = st.tname } :: t.cond_holds
            end
          end)
        st.held;
      push_path st (Printf.sprintf "cond_wait(%s)@%d" label ev.ts)
    | "cond_signal" | "sem_post" | "barrier_arrive" ->
      let r = obj_vc t obj in
      r := Vc.join !r st.vc;
      st.vc <- Vc.tick st.vc ev.tid;
      push_path st (Printf.sprintf "%s(%s)@%d" name label ev.ts)
    | "cond_woken" | "sem_wait" | "barrier_leave" ->
      st.vc <- Vc.join st.vc !(obj_vc t obj);
      push_path st (Printf.sprintf "%s(%s)@%d" name label ev.ts)
    | "thread_exit" ->
      Hashtbl.replace t.exits ev.tid st.vc;
      st.vc <- Vc.tick st.vc ev.tid
    | "thread_join" -> (
      match Trace.find_int ev "joined" with
      | Some j -> (
        match Hashtbl.find_opt t.exits j with
        | Some v -> st.vc <- Vc.join st.vc v
        | None -> ())
      | None -> ())
    | _ -> ())
  | "mem", (("read" | "write") as op) ->
    t.mem_events <- t.mem_events + 1;
    let st = thread t ev.tid in
    let loc = Option.value (Trace.find_int ev "loc") ~default:(-1) in
    let site = Option.value (Trace.find_str ev "site") ~default:"" in
    t.sched_digest <-
      chain t.sched_digest (Printf.sprintf "%s|%s|%d|%s" op st.tname loc site);
    let c = cell t loc site in
    let info =
      {
        a_thread = st.tname;
        a_ts = ev.ts;
        a_op = op;
        a_locks = List.rev_map (fun (_, l, _) -> l) st.held;
        a_path = st.path;
      }
    in
    let clock = Vc.get st.vc ev.tid in
    (match c.wr with
    | Some (wt, wc, winfo) when wt <> ev.tid && not (Vc.covers st.vc ~tid:wt ~clock:wc) ->
      report_race t c ~loc
        ~kind:(if op = "write" then "write-write" else "write-read")
        winfo info
    | _ -> ());
    if op = "write" then begin
      List.iter
        (fun (rt, (rc, rinfo)) ->
          if rt <> ev.tid && not (Vc.covers st.vc ~tid:rt ~clock:rc) then
            report_race t c ~loc ~kind:"read-write" rinfo info)
        c.rds;
      c.wr <- Some (ev.tid, clock, info);
      c.rds <- []
    end
    else c.rds <- (ev.tid, (clock, info)) :: List.remove_assoc ev.tid c.rds
  | _ -> ()

let attach t tr = Trace.add_sink tr (on_event t)

(* ------------------------------------------------------------------ *)
(* Lock-order cycles: Tarjan SCCs over the acquisition-order graph, in
   deterministic (sorted node) order.  Any SCC with more than one node
   contains a cycle — a potential deadlock, even if the witnessing
   executions never overlapped in time. *)

let inversions_of (t : t) =
  let edges = List.rev t.edges in
  let nodes = Hashtbl.create 16 in
  List.iter
    (fun ((a, b), _) ->
      Hashtbl.replace nodes a ();
      Hashtbl.replace nodes b ())
    edges;
  let node_list = List.sort compare (Hashtbl.fold (fun n () acc -> n :: acc) nodes []) in
  let succs n =
    List.filter_map (fun ((a, b), _) -> if a = n then Some b else None) edges
  in
  let index = Hashtbl.create 16
  and lowlink = Hashtbl.create 16
  and on_stack = Hashtbl.create 16 in
  let stack = ref [] and counter = ref 0 and sccs = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (succs v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      let scc = pop [] in
      if List.length scc > 1 then sccs := scc :: !sccs
    end
  in
  List.iter (fun n -> if not (Hashtbl.mem index n) then strongconnect n) node_list;
  List.rev_map
    (fun scc ->
      let in_scc n = List.mem n scc in
      let label n =
        match Hashtbl.find_opt t.obj_labels n with
        | Some l -> l
        | None -> Printf.sprintf "obj%d" n
      in
      {
        i_locks = List.sort compare (List.map label scc);
        i_edges =
          List.filter_map
            (fun ((a, b), (la, lb, th)) ->
              if in_scc a && in_scc b then Some (la, lb, th) else None)
            edges;
      })
    !sccs

let report (t : t) =
  {
    races = List.rev t.races;
    inversions = inversions_of t;
    cond_holds = List.rev t.cond_holds;
    schedule_digest = t.sched_digest;
    full_digest = t.full_digest;
    sync_events = t.sync_events;
    mem_events = t.mem_events;
  }
