(** The analyze driver: run every bundled server (plus the seeded-race
    target) under the native and PARROT runtimes with the happens-before
    monitor attached, certify determinism by replay, and render one
    deterministic report.

    Per (target, runtime) the driver performs three monitored runs:
    - seed [s] twice: the {e full} digests (every event, timestamps
      included) must match byte for byte — the simulator's replay
      guarantee; a mismatch is always a harness bug;
    - seed [s + 17]: the {e schedule} digests (synchronization/memory
      order only, no timestamps) are compared across the two seeds.  A
      match certifies the runtime schedule-independent of the seed —
      true for DMT on compute-only programs, false under native Pthreads
      whose RNG-drawn wake order lets detected races explain the
      divergence.  Socket-driven targets under PARROT alone may also
      diverge: network arrival order re-enters through the blocking-call
      path, which is the paper's argument for CRANE's PAXOS admission.

    Client workloads use fixed per-client RNG seeds, so the logical
    inputs are identical across analyzer seeds; only schedule and
    network timing vary. *)

module Time = Crane_sim.Time
module Engine = Crane_sim.Engine
module Rng = Crane_sim.Rng
module Trace = Crane_trace.Trace
module Api = Crane_core.Api
module Standalone = Crane_core.Standalone
module Target = Crane_workload.Target
module Clients = Crane_workload.Clients
module Table = Crane_report.Table

type mode = Native | Parrot

let mode_name = function Native -> "native" | Parrot -> "parrot"

type spec = {
  s_name : string;
  s_server : unit -> Api.server;
  s_port : int option;  (** None: no socket workload (racy-counter) *)
  s_drive : Engine.t -> Target.t -> unit;
  s_horizon : Time.t;
  s_expect_clean : bool;
}

(* Scaled-down app configs: enough traffic to exercise every lock and
   cell, small enough that the 2 runtimes x 3 replays stay fast. *)

let http_client ~stagger eng target n =
  for i = 1 to n do
    Engine.spawn eng ~name:(Printf.sprintf "ab%d" i) (fun () ->
        Engine.sleep eng (stagger * i);
        ignore (Clients.apachebench target ~from:(Printf.sprintf "ab%d" i)))
  done

let apache_spec =
  {
    s_name = "apache";
    s_server =
      (fun () ->
        Crane_apps.Apache.server
          ~cfg:
            {
              Crane_apps.Apache.default_config with
              nworkers = 2;
              php_segments = 2;
              segment_cost = Time.us 500;
            }
          ());
    s_port = Some 80;
    s_drive = (fun eng target -> http_client ~stagger:(Time.us 40) eng target 3);
    s_horizon = Time.ms 300;
    s_expect_clean = true;
  }

let mongoose_spec =
  {
    s_name = "mongoose";
    s_server =
      (fun () ->
        Crane_apps.Mongoose.server
          ~cfg:
            {
              Crane_apps.Mongoose.default_config with
              nworkers = 2;
              php_segments = 2;
              segment_cost = Time.us 400;
            }
          ());
    s_port = Some 80;
    s_drive = (fun eng target -> http_client ~stagger:(Time.us 55) eng target 3);
    s_horizon = Time.ms 300;
    s_expect_clean = true;
  }

let clamav_spec =
  {
    s_name = "clamav";
    s_server =
      (fun () ->
        Crane_apps.Clamav.server
          ~cfg:
            {
              Crane_apps.Clamav.default_config with
              nworkers = 2;
              subdirs = 2;
              files_per_subdir = 2;
              file_bytes = 1_200;
              mem_bytes = 100_000;
              infected = [ (1, 1) ];
            }
          ());
    s_port = Some 3310;
    s_drive =
      (fun eng target ->
        for i = 1 to 2 do
          Engine.spawn eng ~name:(Printf.sprintf "clamscan%d" i) (fun () ->
              Engine.sleep eng (Time.us (60 * i));
              ignore (Clients.clamdscan ~dirs:2 target ~from:(Printf.sprintf "clamscan%d" i)))
        done);
    s_horizon = Time.ms 300;
    s_expect_clean = true;
  }

let mysql_spec =
  {
    s_name = "mysql";
    s_server =
      (fun () ->
        Crane_apps.Mysql.server
          ~cfg:
            {
              Crane_apps.Mysql.default_config with
              nworkers = 2;
              ntables = 2;
              rows_per_table = 100;
              db_file_bytes = 10_000;
              mem_bytes = 100_000;
            }
          ());
    s_port = Some 3306;
    s_drive =
      (fun eng target ->
        for i = 1 to 3 do
          Engine.spawn eng ~name:(Printf.sprintf "sysbench%d" i) (fun () ->
              Engine.sleep eng (Time.us (45 * i));
              let rng = Rng.create (1000 + (13 * i)) in
              ignore
                (Clients.sysbench ~rng ~ntables:2 ~rows:100 target
                   ~from:(Printf.sprintf "sysbench%d" i)))
        done);
    s_horizon = Time.ms 300;
    s_expect_clean = true;
  }

let mediatomb_spec =
  {
    s_name = "mediatomb";
    s_server =
      (fun () ->
        Crane_apps.Mediatomb.server
          ~cfg:
            {
              Crane_apps.Mediatomb.default_config with
              nworkers = 2;
              frames = 16;
              frame_cost = Time.us 100;
              encoder_threads = 2;
            }
          ());
    s_port = Some 49152;
    s_drive =
      (fun eng target ->
        Engine.spawn eng ~name:"media1" (fun () ->
            Engine.sleep eng (Time.us 80);
            ignore (Clients.mediabench target ~from:"media1")));
    s_horizon = Time.ms 300;
    s_expect_clean = true;
  }

let racy_spec =
  {
    s_name = "racy-counter";
    s_server = Targets.racy_counter;
    s_port = None;
    s_drive = (fun _ _ -> ());
    s_horizon = Time.ms 100;
    s_expect_clean = false;
  }

let specs =
  [ apache_spec; mongoose_spec; clamav_spec; mysql_spec; mediatomb_spec; racy_spec ]

let target_names = List.map (fun s -> s.s_name) specs

(* ------------------------------------------------------------------ *)

let run_one ~seed ~mode spec =
  let tr = Trace.create ~retain:false () in
  let mon = Hb.create () in
  Hb.attach mon tr;
  let standalone_mode =
    match mode with Native -> Standalone.Native | Parrot -> Standalone.Parrot
  in
  let sa =
    Standalone.boot ~seed ~mode:standalone_mode ~server:(spec.s_server ()) ~trace:tr ()
  in
  let eng = Standalone.engine sa in
  (match spec.s_port with
  | Some port -> spec.s_drive eng (Target.standalone sa ~port)
  | None -> ());
  Engine.run ~until:spec.s_horizon eng;
  (* Stop monitoring before harvesting: post-run state reads would look
     like unsynchronized accesses from outside the thread graph. *)
  Trace.set_enabled tr false;
  Standalone.check_failures sa;
  Hb.report mon

type outcome = {
  o_target : string;
  o_mode : string;
  o_report : Hb.report;
  o_replay_ok : bool;  (** same-seed full-digest match *)
  o_certified : bool;  (** cross-seed schedule-digest match *)
  o_expect_clean : bool;
}

let analyze_one ~seed spec mode =
  let r1 = run_one ~seed ~mode spec in
  let r2 = run_one ~seed ~mode spec in
  let r3 = run_one ~seed:(seed + 17) ~mode spec in
  {
    o_target = spec.s_name;
    o_mode = mode_name mode;
    o_report = r1;
    o_replay_ok = String.equal r1.Hb.full_digest r2.Hb.full_digest;
    o_certified = String.equal r1.Hb.schedule_digest r3.Hb.schedule_digest;
    o_expect_clean = spec.s_expect_clean;
  }

let analyze ~seed ?(targets = target_names) () =
  let selected =
    List.filter_map
      (fun name ->
        match List.find_opt (fun s -> s.s_name = name) specs with
        | Some s -> Some s
        | None -> invalid_arg (Printf.sprintf "analyze: unknown target %s" name))
      targets
  in
  List.concat_map
    (fun spec -> [ analyze_one ~seed spec Native; analyze_one ~seed spec Parrot ])
    selected

(* ------------------------------------------------------------------ *)
(* Expectations: what counts as a NEW finding (nonzero exit).

   - a same-seed replay mismatch anywhere is a harness bug;
   - targets expected clean must have zero races, inversions and
     cond-while-holding findings under both runtimes;
   - the seeded-race target must race under native, and must be both
     race-free and schedule-certified under DMT.

   Native divergence across seeds is reported, not failed: that is the
   baseline nondeterminism the paper replicates, and the detected races
   (or RNG wake order alone) explain it. *)

let problems outcomes =
  List.concat_map
    (fun o ->
      let r = o.o_report in
      let where = Printf.sprintf "%s/%s" o.o_target o.o_mode in
      let p = ref [] in
      let add msg = p := msg :: !p in
      if not o.o_replay_ok then
        add (Printf.sprintf "%s: same-seed replay digests differ (harness bug)" where);
      if o.o_expect_clean then begin
        if r.Hb.races <> [] then
          add (Printf.sprintf "%s: %d data race(s) found" where (List.length r.Hb.races));
        if r.Hb.inversions <> [] then
          add
            (Printf.sprintf "%s: %d lock-order inversion(s) found" where
               (List.length r.Hb.inversions));
        if r.Hb.cond_holds <> [] then
          add
            (Printf.sprintf "%s: %d cond-wait-while-holding-lock pattern(s)" where
               (List.length r.Hb.cond_holds))
      end
      else begin
        (* the seeded-race target *)
        (match o.o_mode with
        | "native" ->
          if r.Hb.races = [] then
            add (Printf.sprintf "%s: seeded race was NOT detected" where)
        | _ ->
          if r.Hb.races <> [] then
            add
              (Printf.sprintf "%s: %d race(s) under DMT (turn serialization broken)"
                 where (List.length r.Hb.races));
          if not o.o_certified then
            add (Printf.sprintf "%s: DMT schedule not certified deterministic" where));
        ()
      end;
      List.rev !p)
    outcomes

(* ------------------------------------------------------------------ *)
(* Rendering.  Everything below is derived from deterministic runs and
   rendered with stable iteration orders: identical seeds produce
   byte-identical report text. *)

let fmt_access (a : Hb.access) =
  Printf.sprintf "%s %s @%dns, locks [%s], after: %s" a.Hb.a_thread a.Hb.a_op a.Hb.a_ts
    (String.concat ", " a.Hb.a_locks)
    (match a.Hb.a_path with [] -> "-" | p -> String.concat " <- " p)

let render ~seed outcomes =
  let b = Buffer.create 4096 in
  let rows =
    List.map
      (fun o ->
        let r = o.o_report in
        [
          o.o_target;
          o.o_mode;
          string_of_int (List.length r.Hb.races);
          string_of_int (List.length r.Hb.inversions);
          string_of_int (List.length r.Hb.cond_holds);
          (if o.o_replay_ok then "identical" else "MISMATCH");
          (if o.o_certified then "certified" else "diverged");
        ])
      outcomes
  in
  Buffer.add_string b
    (Table.render
       ~title:(Printf.sprintf "crane-san analyze (seed %d)" seed)
       ~header:
         [ "target"; "runtime"; "races"; "inversions"; "cond-holds"; "replay"; "schedule" ]
       rows);
  List.iter
    (fun o ->
      let r = o.o_report in
      if r.Hb.races <> [] || r.Hb.inversions <> [] || r.Hb.cond_holds <> [] then begin
        Buffer.add_string b
          (Printf.sprintf "\n%s under %s:\n" o.o_target o.o_mode);
        List.iter
          (fun (race : Hb.race) ->
            Buffer.add_string b
              (Printf.sprintf "  race [%s] on %s (loc %d)\n    1) %s\n    2) %s\n"
                 race.Hb.r_kind race.Hb.r_site race.Hb.r_loc
                 (fmt_access race.Hb.r_first)
                 (fmt_access race.Hb.r_second)))
          r.Hb.races;
        List.iter
          (fun (inv : Hb.inversion) ->
            Buffer.add_string b
              (Printf.sprintf "  lock-order cycle {%s}\n"
                 (String.concat ", " inv.Hb.i_locks));
            List.iter
              (fun (l1, l2, th) ->
                Buffer.add_string b
                  (Printf.sprintf "    %s -> %s (thread %s)\n" l1 l2 th))
              inv.Hb.i_edges)
          r.Hb.inversions;
        List.iter
          (fun (c : Hb.cond_hold) ->
            Buffer.add_string b
              (Printf.sprintf "  cond_wait(%s) while holding %s (thread %s)\n"
                 c.Hb.c_cond c.Hb.c_extra c.Hb.c_thread))
          r.Hb.cond_holds
      end)
    outcomes;
  (match problems outcomes with
  | [] -> Buffer.add_string b "\nno new findings.\n"
  | ps ->
    Buffer.add_string b "\nNEW FINDINGS:\n";
    List.iter (fun p -> Buffer.add_string b (Printf.sprintf "  %s\n" p)) ps);
  Buffer.contents b
