(** The seeded-race target: a tiny server program with one properly
    locked counter and one intentionally unsynchronized counter.

    Each thread runs two phases.  Phase 1 increments [racy.safe_count]
    under a shared mutex — contended, so the native runtime draws wake
    order and jitter from its RNG and the schedule varies across seeds.
    Phase 2 increments [racy.count] with {e no} synchronization at all:
    after a thread's final mutex release nothing orders its phase-2
    accesses with any other thread's, so the happens-before engine must
    flag the race under native for every seed.  Under DMT the cell
    wrappers serialize each access through the scheduler turn, which both
    removes the race (by serialization) and makes the whole schedule
    seed-independent — the determinism certifier's positive case. *)

module Time = Crane_sim.Time
module Api = Crane_core.Api

let threads = 3
let iters = 5

let racy_counter () : Api.server =
  let boot api =
    let module R = (val api : Api.API) in
    let mu = R.mutex ~name:"racy.mu" () in
    let safe = R.cell ~name:"racy.safe_count" 0 in
    let racy = R.cell ~name:"racy.count" 0 in
    for k = 1 to threads do
      R.spawn ~name:(Printf.sprintf "racy%d" k) (fun () ->
          for _ = 1 to iters do
            R.lock mu;
            R.cell_set safe (R.cell_get safe + 1);
            R.unlock mu;
            R.sleep (Time.us 50)
          done;
          for _ = 1 to iters do
            R.cell_set racy (R.cell_get racy + 1);
            R.sleep (Time.us 20)
          done)
    done;
    {
      Api.server_name = "racy-counter";
      state_of = (fun () -> Printf.sprintf "%d/%d" (R.cell_get safe) (R.cell_get racy));
      load_state = (fun _ -> ());
      mem_bytes = (fun () -> 4096);
      stop = (fun () -> ());
      read = (fun _ -> None);
      footprint = (fun _ -> None);
    }
  in
  { Api.name = "racy-counter"; install = (fun _ -> ()); boot }
