(** Crane-San's conflict-serializability certifier for dependency-aware
    parallel delivery.

    The pool-mode gate admits footprint-disjoint committed commands
    concurrently, so the execution is no longer literally serial in log
    order — the property the rest of Crane-San leans on.  This module
    replays a flight-recorder trace and proves the parallel schedule
    {e equivalent} to serial index order: for every shared location, the
    trace order of conflicting accesses (at least one write) must agree
    with consensus-index order.  If it does, the parallel execution's
    effect on every location equals the serial one's, and replicas
    running different pool widths converge to the same state.

    Evidence comes from three event families the runtimes already emit:

    - [exec] begin/end instants bracket each worker's execute window and
      carry the consensus index being executed (the vhost's pool-mode
      recv/close wrappers);
    - [mem] read/write instants are monitored-cell accesses (location =
      cell id);
    - [sync] acquire / acquire_rd instants of kind [mutex] / [rwlock]
      are lock-footprint accesses: taking a mutex is a write on the lock
      (its order is the order of the critical sections), a read-lock is
      a read.  Turn pseudo-locks, condvars, semaphores and barriers are
      scheduler fabric, not state, and are excluded.

    Events outside any execute window (gate, proxy, listener threads,
    checkpoint harvests) are not part of a command and are skipped.
    Locations touched by a single thread across the whole trace are
    thread-confined (per-worker arenas, sharded counters): they cannot
    order two concurrent commands and are exempt.

    The check is deliberately stricter than cycle detection: it demands
    per-location trace order {e equal} to index order, which is exactly
    what the admission rule promises (a command never overtakes a
    conflicting lower-index one), so any violation is an admission bug. *)

module Trace = Crane_trace.Trace

type violation = {
  v_node : string;
  v_loc : string;  (** "cell:<site>" or "lock:<label>" *)
  v_kind : string;  (** "write-write" | "read-write" | "write-read" *)
  v_early_index : int;  (** the later-in-trace, lower-in-log command *)
  v_late_index : int;  (** the earlier-in-trace, higher-in-log command *)
  v_ts : int;  (** virtual ns of the offending access *)
}

type report = {
  windows : int;  (** execute windows seen *)
  commands : int;  (** distinct consensus indices windowed *)
  in_window_events : int;  (** accesses attributed to some command *)
  locations : int;  (** shared locations checked *)
  confined : int;  (** thread-confined locations, exempt *)
  violations : violation list;  (** discovery order *)
}

let certified r = r.violations = []

(* One access extracted from the stream: the (node, location) it touches,
   whether it writes, and the command (index) it belongs to. *)
type access = {
  node : string;
  loc : string;
  write : bool;
  index : int;
  tid : int;
  ts : int;
}

let classify (ev : Trace.ev) ~node =
  match (ev.Trace.cat, ev.Trace.name) with
  | "mem", (("read" | "write") as op) ->
    let loc = Option.value (Trace.find_int ev "loc") ~default:(-1) in
    let site = Option.value (Trace.find_str ev "site") ~default:"" in
    Some (Printf.sprintf "cell:%d:%s" loc site, op = "write", node)
  | "sync", (("acquire" | "acquire_rd") as op) -> (
    match Option.value (Trace.find_str ev "kind") ~default:"" with
    | "mutex" | "rwlock" ->
      let obj = Option.value (Trace.find_int ev "obj") ~default:(-1) in
      let label = Option.value (Trace.find_str ev "label") ~default:"" in
      Some (Printf.sprintf "lock:%d:%s" obj label, op = "acquire", node)
    | _ -> None (* turn pseudo-locks and scheduler fabric *))
  | _ -> None

let check_events (evs : Trace.ev list) ~resolve_node =
  (* Pass 1: collect in-window accesses, in trace order. *)
  let open_window : (string * int, int) Hashtbl.t = Hashtbl.create 64 in
  let windows = ref 0 in
  let indices : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let accesses = ref [] in
  List.iter
    (fun (ev : Trace.ev) ->
      let node = resolve_node ev in
      match (ev.Trace.cat, ev.Trace.name) with
      | "exec", "begin" ->
        let index = Option.value (Trace.find_int ev "index") ~default:0 in
        incr windows;
        Hashtbl.replace indices index ();
        Hashtbl.replace open_window (node, ev.Trace.tid) index
      | "exec", "end" -> Hashtbl.remove open_window (node, ev.Trace.tid)
      | _ -> (
        match Hashtbl.find_opt open_window (node, ev.Trace.tid) with
        | None -> ()
        | Some index -> (
          match classify ev ~node with
          | Some (loc, write, node) ->
            accesses :=
              { node; loc; write; index; tid = ev.Trace.tid; ts = ev.Trace.ts }
              :: !accesses
          | None -> ())))
    evs;
  let accesses = List.rev !accesses in
  (* Pass 2: thread confinement per (node, location). *)
  let touched_by : (string * string, int) Hashtbl.t = Hashtbl.create 256 in
  let shared : (string * string, unit) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun a ->
      let k = (a.node, a.loc) in
      match Hashtbl.find_opt touched_by k with
      | None -> Hashtbl.replace touched_by k a.tid
      | Some tid when tid = a.tid -> ()
      | Some _ -> Hashtbl.replace shared k ())
    accesses;
  (* Pass 3: per shared location, trace order must follow index order. *)
  let hiw : (string * string, int * int) Hashtbl.t = Hashtbl.create 256 in
  (* location -> (max index that wrote, max index that read) so far *)
  let violations = ref [] in
  List.iter
    (fun a ->
      let k = (a.node, a.loc) in
      if Hashtbl.mem shared k then begin
        let wmax, rmax =
          Option.value (Hashtbl.find_opt hiw k) ~default:(0, 0)
        in
        let bad kind early =
          violations :=
            {
              v_node = a.node;
              v_loc = a.loc;
              v_kind = kind;
              v_early_index = a.index;
              v_late_index = early;
              v_ts = a.ts;
            }
            :: !violations
        in
        if a.write then begin
          if a.index < wmax then bad "write-write" wmax
          else if a.index < rmax then bad "read-write" rmax;
          Hashtbl.replace hiw k (max wmax a.index, rmax)
        end
        else begin
          if a.index < wmax then bad "write-read" wmax;
          Hashtbl.replace hiw k (wmax, max rmax a.index)
        end
      end)
    accesses;
  {
    windows = !windows;
    commands = Hashtbl.length indices;
    in_window_events = List.length accesses;
    locations = Hashtbl.length touched_by;
    confined = Hashtbl.length touched_by - Hashtbl.length shared;
    violations = List.rev !violations;
  }

let check tr = check_events (Trace.events tr) ~resolve_node:(Trace.resolve_node tr)

let render r =
  let b = Buffer.create 512 in
  Printf.bprintf b
    "certifier: %d execute windows over %d commands, %d in-window accesses\n"
    r.windows r.commands r.in_window_events;
  Printf.bprintf b
    "locations: %d checked (%d thread-confined, exempt)\n" r.locations
    r.confined;
  (match r.violations with
  (* An empty-window run proves nothing: without a single execute window
     no access was ever checked, so "no violations" must not read as a
     positive certification. *)
  | [] when r.windows = 0 ->
    Buffer.add_string b "vacuously certified (no execute windows).\n"
  | [] -> Buffer.add_string b "conflict-serializable in log-index order.\n"
  | vs ->
    Printf.bprintf b "%d ORDER VIOLATION(S):\n" (List.length vs);
    List.iter
      (fun v ->
        Printf.bprintf b
          "  %s %s on %s: command %d executed after command %d (@%dns)\n"
          v.v_node v.v_kind v.v_loc v.v_early_index v.v_late_index v.v_ts)
      vs);
  Buffer.contents b
