(** Crane-MC: stateless model checking of the replicated cluster.

    The chaos harness samples schedules from a seeded RNG; Crane-MC
    {e enumerates} them.  A schedule is the sequence of answers to the
    choice points the controlled fabric exposes ({!Crane_sim.Sched}):
    which eligible message is delivered next, whether it is dropped,
    which replica crashes, which delay bucket a send lands in.  Because
    everything downstream of those answers is deterministic, the checker
    can explore the choice tree depth-first by re-executing the whole
    simulation per schedule — and any violation is reproducible from its
    recorded choice sequence alone, which is exactly what the
    counterexample trace file contains.

    Exploration is bounded (branch depth, crash budget, drop budget,
    virtual-time horizon) and pruned with dynamic partial-order
    reduction in the Flanagan–Godefroid style: two deliveries commute
    unless they target the same replica, and a pair of same-replica
    deliveries only forces a backtrack point when the second was not
    caused by the first — causality tracked with the vector clocks of
    Crane-San's happens-before engine ({!Vc}).  Control choices (crash,
    drop, delay) are never pruned.

    Each terminal state is checked against the chaos invariant suite
    (single-primary-per-view, committed-prefix agreement, epoch
    agreement, acked durability, state convergence) plus the Wing–Gong
    linearizability checker ({!Linearize}) over the recorded client
    history, including lease- and bounded-stale backup reads. *)

module Time = Crane_sim.Time
module Engine = Crane_sim.Engine
module Sched = Crane_sim.Sched
module Cluster = Crane_core.Cluster
module Instance = Crane_core.Instance
module Proxy = Crane_core.Proxy
module Api = Crane_core.Api
module Paxos = Crane_paxos.Paxos
module Ledger = Crane_chaos.Ledger
module Sock = Crane_socket.Sock
module Target = Crane_workload.Target

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)

type mutation = No_mutation | Hole_backfill | Dup_accept

let mutation_name = function
  | No_mutation -> "none"
  | Hole_backfill -> "hole-backfill"
  | Dup_accept -> "dup-accept"

let mutation_of_name = function
  | "none" -> No_mutation
  | "hole-backfill" -> Hole_backfill
  | "dup-accept" -> Dup_accept
  | s -> invalid_arg ("unknown mutation " ^ s)

type config = {
  replicas : int;
  clients : int;
  writes : int;  (** writes per client *)
  reads : int;  (** fast-path reads per client *)
  seed : int;
  warmup : Time.t;
      (** choices before this instant take the default path: boot-time
          heartbeat permutations are not worth the branch budget *)
  horizon : Time.t;  (** virtual-time bound per execution *)
  settle : Time.t;  (** quiet time required after the load completes *)
  max_branch : int;  (** branchable choice points per execution *)
  crash_budget : int;
  crash_window : int;
      (** only the first N in-window delivery instants host a crash
          choice *)
  restart_after : Time.t option;
  drop_budget : int;
  drop_paxos_only : bool;
      (** branch drop choices only for paxos-port messages *)
  deliver_branch : bool;
      (** branch on delivery order.  Off = fault-targeted mode: messages
          deliver in canonical FIFO order and the only choice points are
          fault injections (drops, crashes, delays), so a drop/crash
          budget of k explores all placements of k faults in ~N^k runs
          instead of multiplying them into the delivery interleavings *)
  delays : int array;  (** base-latency multipliers; [|1|] = off *)
  read_fastpath : bool;
  pool_workers : int;
  dpor : bool;  (** false = naive full enumeration *)
  max_runs : int;
  check_completion : bool;
      (** require every client operation to complete — sound as long as
          a quorum of replicas stays live (crashes are quorum-safe and
          the horizon covers an election) *)
  mutation : mutation;
}

let default =
  {
    replicas = 3;
    clients = 2;
    writes = 2;
    reads = 1;
    seed = 1;
    warmup = Time.ms 250;
    horizon = Time.sec 4;
    settle = Time.ms 600;
    (* the 3-replica/2-client default explores to this bound in 3328
       schedules (~70 s); max_branch 10 completes too but costs 13984 *)
    max_branch = 8;
    crash_budget = 0;
    crash_window = 12;
    restart_after = Some (Time.ms 700);
    drop_budget = 0;
    drop_paxos_only = true;
    deliver_branch = true;
    delays = [| 1 |];
    read_fastpath = true;
    pool_workers = 1;
    dpor = true;
    max_runs = 4000;
    check_completion = true;
    mutation = No_mutation;
  }

(* Failure-detection timers sized like the chaos harness's LAN config.
   Election jitter stays real (per-node deterministic: each instance's
   RNG is split from the cluster seed at boot, and monitor draws are
   self-paced, so replays are still exact): with near-zero jitter both
   backups of a killed primary tick in perfect lockstep — each bumps
   max_view_seen locally before the other's View_change arrives, neither
   ever grants a vote, and the duel livelocks past any horizon. *)
let mc_paxos_config =
  {
    Paxos.default_config with
    Paxos.heartbeat_period = Time.ms 50;
    election_timeout = Time.ms 150;
    election_jitter = Time.ms 40;
    round_retry = Time.ms 80;
    suspect_timeout = Time.ms 450;
    lease_duration = Time.ms 100;
  }

let instance_config cfg =
  {
    Instance.default_config with
    Instance.paxos = mc_paxos_config;
    (* Keep full CRANE semantics (DMT + time bubbling) but throttle the
       idle machinery: at the default 100us bubble timeout an idle
       cluster floods consensus with clock-sync entries — thousands of
       extra deliveries per run for the enumerator to wade through — and
       its perpetual commit traffic masks exactly the quiescent-tail
       bugs the mutation self-check reintroduces: a replica wedged on a
       log hole heals at the next commit movement, and with bubbling on
       commits never stop moving.  Plan II (§7.2) keeps DMT + PAXOS
       semantics with bubbling off.  Without the bubbling gate to park
       it, the DMT idle thread spins at turn_cost; raise it so an idle
       replica costs ~20k events per virtual second instead of ~6.7M. *)
    mode = Instance.No_bubbling;
    turn_cost = Time.us 50;
    usleep = Time.us 100;
    idle_period = Time.us 100;
    read_fastpath = cfg.read_fastpath;
    pool_workers = cfg.pool_workers;
    (* one Accept per entry: the minimal message alphabet to enumerate *)
    batch_max = 1;
    (* no checkpoints inside the horizon: restarts replay the log *)
    checkpoint_period = Time.sec 60;
  }

(* ------------------------------------------------------------------ *)
(* One execution                                                       *)

type point = { pt_label : string; pt_keys : string array; pt_taken : int }

type trans = {
  tr_id : int;  (** fabric message id *)
  tr_tid : int;  (** interned destination node *)
  tr_clk : int;  (** destination's own clock after this delivery *)
  tr_mvc : Vc.t;  (** send-time vector clock of the delivered message *)
  tr_point : int;  (** index of the deliver choice point; -1 if width 1 *)
}

type exec = {
  x_points : point array;
  x_trans : trans array;
  x_verdict : (string * string) option;  (** invariant, detail *)
}

let key_id k =
  match String.index_opt k '|' with
  | Some i -> int_of_string (String.sub k 0 i)
  | None -> -1

let key_port k =
  match String.rindex_opt k ':' with
  | Some i ->
    (try int_of_string (String.sub k (i + 1) (String.length k - i - 1))
     with _ -> -1)
  | None -> -1

(* Execute one schedule: follow [forced] at the first branchable choice
   points, take the default (index 0) afterwards, and record the whole
   branchable choice sequence plus every delivery transition. *)
let run_one cfg ~forced =
  let members = List.init cfg.replicas (fun i -> Printf.sprintf "node%d" (i + 1)) in
  let cluster =
    Cluster.create ~seed:cfg.seed ~members ~cfg:(instance_config cfg)
      ~server:Ledger.server ()
  in
  let eng = Cluster.engine cluster in
  let world = Cluster.world cluster in
  (* --- verdict --- *)
  let verdict = ref None in
  let violate inv detail = if !verdict = None then verdict := Some (inv, detail) in
  (* --- recorded schedule --- *)
  let points = ref [] and npoints = ref 0 in
  let record label keys taken =
    points := { pt_label = label; pt_keys = keys; pt_taken = taken } :: !points;
    incr npoints;
    !npoints - 1
  in
  (* --- workload progress (drives the branching window) --- *)
  let ops_total = cfg.clients * (cfg.writes + cfg.reads) in
  let ops_done = ref 0 in
  let clients_done = ref 0 in
  let load_done_at = ref None in
  let in_window () =
    Engine.now eng >= cfg.warmup && !clients_done < cfg.clients
  in
  (* --- budgets --- *)
  let drops_used = ref 0 and crashes_used = ref 0 and instants = ref 0 in
  let branchable label keys =
    in_window ()
    && !npoints < cfg.max_branch
    &&
    match label with
    | "net.deliver" -> cfg.deliver_branch
    | "mc.crash" | "net.delay" -> true
    | "net.fate" ->
      !drops_used < cfg.drop_budget
      && ((not cfg.drop_paxos_only) || key_port keys.(0) = Paxos.paxos_port)
    | _ -> false
  in
  (* Only branchable choices are recorded and consume forced-prefix
     slots.  Branchability is a deterministic function of the execution
     so far, so a replayed prefix makes exactly the recording decisions
     its parent run made — the consistency check in [explore] verifies
     this alignment on every run. *)
  let pending_point = ref None in
  let choose ~label ~keys =
    if not (branchable label keys) then 0
    else begin
      let k = !npoints in
      let taken =
        if k < Array.length forced then begin
          if forced.(k) >= Array.length keys then
            failwith
              (Printf.sprintf
                 "crane-mc: schedule divergence at choice %d (%s): forced %d, \
                  width %d"
                 k label forced.(k) (Array.length keys));
          forced.(k)
        end
        else 0
      in
      let idx = record label keys taken in
      if label = "net.deliver" then
        pending_point := Some (idx, key_id keys.(taken));
      if label = "net.fate" && taken = 1 then incr drops_used;
      taken
    end
  in
  (* --- happens-before over deliveries (DPOR's commutativity oracle) --- *)
  let tids = Hashtbl.create 8 in
  let tid_of n =
    match Hashtbl.find_opt tids n with
    | Some i -> i
    | None ->
      let i = Hashtbl.length tids in
      Hashtbl.add tids n i;
      i
  in
  let vcs = Hashtbl.create 8 in
  let vc_of n = Option.value (Hashtbl.find_opt vcs n) ~default:Vc.empty in
  let msg_vcs = Hashtbl.create 1024 in
  let trans = ref [] and ntrans = ref 0 in
  let on_send ~id ~src ~dst:_ = Hashtbl.replace msg_vcs id (vc_of src) in
  let on_deliver ~id ~src:_ ~dst =
    let tid = tid_of dst in
    let mvc = Option.value (Hashtbl.find_opt msg_vcs id) ~default:Vc.empty in
    let vc = Vc.tick (Vc.join (vc_of dst) mvc) tid in
    Hashtbl.replace vcs dst vc;
    let pt =
      match !pending_point with
      | Some (pi, pid) when pid = id ->
        pending_point := None;
        pi
      | _ -> -1
    in
    trans :=
      { tr_id = id; tr_tid = tid; tr_clk = Vc.get vc tid; tr_mvc = mvc;
        tr_point = pt }
      :: !trans;
    incr ntrans
  in
  (* --- continuously sampled invariants --- *)
  let reference_log = Hashtbl.create 256 in
  let watermarks = Hashtbl.create 8 in
  let sample () =
    let live = Cluster.instances cluster in
    let primaries =
      List.filter_map
        (fun (n, i) ->
          if Instance.is_primary i then Some (n, Paxos.view i.Instance.paxos)
          else None)
        live
    in
    List.iter
      (fun (n1, v1) ->
        List.iter
          (fun (n2, v2) ->
            if n1 < n2 && v1 = v2 then
              violate "single-primary-per-view"
                (Printf.sprintf "%s and %s both lead view %d" n1 n2 v1))
          primaries)
      primaries;
    List.iter
      (fun (node, inst) ->
        let px = inst.Instance.paxos in
        let hi = Paxos.committed px in
        let lo =
          max
            (Paxos.base px + 1)
            (1 + Option.value (Hashtbl.find_opt watermarks node) ~default:0)
        in
        if hi >= lo then begin
          List.iteri
            (fun i value ->
              let idx = lo + i in
              match Hashtbl.find_opt reference_log idx with
              | None -> Hashtbl.replace reference_log idx value
              | Some expect ->
                if expect <> value then
                  violate "committed-prefix-agreement"
                    (Printf.sprintf "%s disagrees at index %d" node idx))
            (Paxos.get_committed_range px ~lo ~hi);
          Hashtbl.replace watermarks node hi
        end)
      live
  in
  (* --- crash injection --- *)
  let majority = (cfg.replicas / 2) + 1 in
  let pre_deliver () =
    sample ();
    if
      in_window ()
      && !crashes_used < cfg.crash_budget
      && !instants < cfg.crash_window
    then begin
      incr instants;
      let live = List.sort compare (List.map fst (Cluster.instances cluster)) in
      if List.length live - 1 >= majority then begin
        let keys = Array.of_list ("none" :: live) in
        let i = choose ~label:"mc.crash" ~keys in
        if i > 0 then begin
          let victim = List.nth live (i - 1) in
          incr crashes_used;
          Cluster.kill cluster victim;
          match cfg.restart_after with
          | Some d ->
            Engine.after eng d (fun () ->
                ignore (Cluster.restart cluster victim))
          | None -> ()
        end
      end
    end
  in
  (* --- install the scheduler --- *)
  let sched = Sched.create ~base:(Time.us 200) ~delays:cfg.delays () in
  sched.Sched.pick <- (fun ~label ~keys -> choose ~label ~keys);
  sched.Sched.on_send <- on_send;
  sched.Sched.on_deliver <- on_deliver;
  sched.Sched.pre_deliver <- pre_deliver;
  Engine.set_sched eng sched;
  (* --- client workload, with full history recording --- *)
  let history = ref [] in
  let acked = ref [] in
  let note ev = history := ev :: !history in
  let recv_line conn ~max =
    let rec go buf =
      if String.contains buf '\n' then Some buf
      else
        let chunk = Sock.recv ~timeout:(Time.ms 600) conn ~max in
        if chunk = "" then if buf = "" then None else Some buf
        else go (buf ^ chunk)
    in
    try go "" with Sock.Connection_closed -> None
  in
  let target = Target.cluster cluster ~port:80 in
  let do_write ~who ~from c k =
    let ok = ref false in
    let attempt = ref 0 in
    while (not !ok) && !attempt < 3 do
      incr attempt;
      let id = Printf.sprintf "c%dw%da%d" c k !attempt in
      (match Target.connect target ~from with
      | None -> Engine.sleep eng (Time.ms 40)
      | Some conn ->
        let inv = Engine.now eng in
        let resp =
          try
            Sock.send conn (Printf.sprintf "PUT %s\n" id);
            recv_line conn ~max:4096
          with Sock.Connection_closed -> None
        in
        (try Sock.close conn with Sock.Connection_closed -> ());
        let want = "OK " ^ id in
        (match resp with
        | Some r
          when String.length r >= String.length want
               && String.sub r 0 (String.length want) = want ->
          ok := true;
          acked := id :: !acked;
          note
            {
              Linearize.who;
              op = Linearize.Append id;
              mode = Linearize.Strict;
              inv;
              resp = Some (Engine.now eng);
              res = Some Linearize.Ack;
            }
        | Some _ | None ->
          (* the PUT may or may not have been decided: a forever-pending
             append the linearizer is free to place or drop *)
          note
            {
              Linearize.who;
              op = Linearize.Append id;
              mode = Linearize.Strict;
              inv;
              resp = None;
              res = None;
            }))
    done;
    if !ok then incr ops_done
  in
  let fast_read ~from node =
    match
      Sock.connect world ~from ~node
        ~port:Instance.default_config.Instance.read_port
    with
    | exception Sock.Connection_refused _ -> None
    | conn ->
      let reply =
        try
          Sock.send conn (Proxy.encode_read_request "GET\n");
          let rec go buf =
            match Proxy.parse_read_reply buf with
            | Some (r, _) -> Some r
            | None ->
              let chunk = Sock.recv ~timeout:(Time.ms 600) conn ~max:65536 in
              if chunk = "" then None else go (buf ^ chunk)
          in
          go ""
        with Sock.Connection_closed -> None
      in
      (try Sock.close conn with Sock.Connection_closed -> ());
      reply
  in
  let do_read ~who ~from c k =
    let nodes = Cluster.members cluster in
    let node = List.nth nodes ((c + k) mod List.length nodes) in
    let inv = Engine.now eng in
    let fast =
      if cfg.read_fastpath then fast_read ~from node else None
    in
    match fast with
    | Some (Proxy.Served r) ->
      incr ops_done;
      note
        {
          Linearize.who;
          op = Linearize.Get;
          mode =
            (match r.Proxy.mode with
            | `Lease -> Linearize.Strict
            | `Backup s -> Linearize.Stale s);
          inv;
          resp = Some (Engine.now eng);
          res = Some (Linearize.Ids (Ledger.ids_of_reply r.Proxy.value));
        }
    | Some (Proxy.Rejected | Proxy.Write_required) | None ->
      (* consensus-funnel fallback: a strict read *)
      let ok = ref false in
      let attempt = ref 0 in
      while (not !ok) && !attempt < 3 do
        incr attempt;
        let inv = Engine.now eng in
        match Ledger.consensus_get target ~from with
        | Some reply ->
          ok := true;
          incr ops_done;
          note
            {
              Linearize.who;
              op = Linearize.Get;
              mode = Linearize.Strict;
              inv;
              resp = Some (Engine.now eng);
              res = Some (Linearize.Ids (Ledger.ids_of_reply reply));
            }
        | None -> Engine.sleep eng (Time.ms 40)
      done
  in
  for c = 1 to cfg.clients do
    Engine.at eng cfg.warmup (fun () ->
        Engine.spawn eng ~name:(Printf.sprintf "mc-client%d" c) (fun () ->
            let who = Printf.sprintf "c%d" c in
            let from = Printf.sprintf "mc-%s" who in
            for k = 1 to cfg.writes + cfg.reads do
              if k <= cfg.writes then do_write ~who ~from c k
              else do_read ~who ~from c k
            done;
            incr clients_done;
            if !clients_done = cfg.clients then
              load_done_at := Some (Engine.now eng)))
  done;
  (* --- run to a terminal state --- *)
  Cluster.start cluster;
  let converged () =
    match Cluster.instances cluster with
    | [] -> false
    | (_, i0) :: _ as live ->
      List.for_all
        (fun (_, i) ->
          let px = i.Instance.paxos in
          Paxos.applied px = Paxos.committed px
          && Paxos.committed px = Paxos.committed i0.Instance.paxos
          && i.Instance.handle.Api.state_of ()
             = i0.Instance.handle.Api.state_of ())
        live
  in
  let engine_limit = ref false in
  (let continue_ = ref true in
   while !continue_ do
     let now = Engine.now eng in
     if now >= cfg.horizon then continue_ := false
     else begin
       let stop_at = min cfg.horizon (now + Time.ms 50) in
       (* an empty no-op event guarantees the clock reaches [stop_at]
          even if the real queue holds nothing before it *)
       Engine.at eng stop_at ignore;
       (try Engine.run ~until:stop_at ~limit:2_000_000 eng
        with Engine.Limit_exceeded ->
          engine_limit := true;
          continue_ := false);
       match !load_done_at with
       | Some t when converged () && Engine.now eng >= t + cfg.settle ->
         continue_ := false
       | _ -> ()
     end
   done);
  (* --- terminal checks --- *)
  sample ();
  if !engine_limit then
    violate "engine-limit" "execution exceeded the per-run event budget";
  (match Engine.failures eng with
  | [] -> ()
  | (name, e) :: _ ->
    violate "thread-failure"
      (Printf.sprintf "%s: %s" name (Printexc.to_string e)));
  if cfg.check_completion && !ops_done < ops_total then
    violate "completion"
      (Printf.sprintf "%d of %d client operations incomplete at the horizon"
         (ops_total - !ops_done) ops_total);
  if not (converged ()) then begin
    let detail =
      match
        List.find_opt
          (fun (_, i) ->
            Paxos.applied i.Instance.paxos < Paxos.committed i.Instance.paxos)
          (Cluster.instances cluster)
      with
      | Some (n, i) ->
        Printf.sprintf "%s wedged at applied=%d < committed=%d" n
          (Paxos.applied i.Instance.paxos)
          (Paxos.committed i.Instance.paxos)
      | None -> "live replicas disagree at the horizon"
    in
    violate "state-convergence" detail
  end;
  (let live = Cluster.instances cluster in
   List.iter
     (fun (node, inst) ->
       let present = Ledger.ids_of_state (inst.Instance.handle.Api.state_of ()) in
       List.iter
         (fun id ->
           if not (List.mem id present) then
             violate "acked-durability"
               (Printf.sprintf "acked %s missing on %s" id node))
         (List.sort compare !acked))
     live;
   match
     List.map
       (fun (n, i) ->
         ( n,
           Paxos.epoch i.Instance.paxos,
           List.sort compare (Paxos.members i.Instance.paxos) ))
       live
   with
   | [] -> violate "epoch-agreement" "no live replicas"
   | (n0, e0, m0) :: rest ->
     List.iter
       (fun (n, e, m) ->
         if e <> e0 || m <> m0 then
           violate "epoch-agreement"
             (Printf.sprintf "%s and %s disagree on the configuration" n0 n))
       rest);
  (match Linearize.check (List.rev !history) with
  | Linearize.Linear _ -> ()
  | Linearize.Violation m -> violate "linearizability" m);
  Engine.clear_sched eng;
  if Sys.getenv_opt "CRANE_MC_DEBUG" <> None then
    Printf.eprintf
      "mc-debug: end=%s ops=%d/%d load_done=%s converged=%b points=%d trans=%d\n%!"
      (Time.to_string (Engine.now eng))
      !ops_done ops_total
      (match !load_done_at with
      | Some t -> Time.to_string t
      | None -> "never")
      (converged ()) !npoints !ntrans;
  if Sys.getenv_opt "CRANE_MC_DEBUG" <> None then
    List.iter
      (fun (n, i) ->
        let px = i.Instance.paxos in
        Printf.eprintf
          "  node %s view=%d primary=%s committed=%d applied=%d\n%!" n
          (Paxos.view px)
          (match Paxos.primary px with Some p -> p | None -> "-")
          (Paxos.committed px) (Paxos.applied px))
      (Cluster.instances cluster);
  if Sys.getenv_opt "CRANE_MC_DEBUG" = Some "2" then
    List.iter
      (fun p ->
        Printf.eprintf "  point %-12s %d/%d %s\n%!" p.pt_label p.pt_taken
          (Array.length p.pt_keys)
          (String.concat " " (Array.to_list p.pt_keys)))
      (List.rev !points);
  {
    x_points = Array.of_list (List.rev !points);
    x_trans = Array.of_list (List.rev !trans);
    x_verdict = !verdict;
  }

(* ------------------------------------------------------------------ *)
(* Exploration                                                         *)

type choice = {
  c_label : string;
  c_width : int;
  c_taken : int;
  c_key : string;  (** the alternative actually taken, for readability *)
}

type violation = {
  v_invariant : string;
  v_detail : string;
  v_run : int;
  v_choices : choice list;
}

type outcome = {
  o_runs : int;
  o_transitions : int;
  o_complete : bool;  (** tree fully explored within the bounds *)
  o_violation : violation option;
}

type nd = {
  nd_label : string;
  nd_keys : string array;
  mutable nd_taken : int;
  mutable nd_done : int list;
  mutable nd_todo : int list;
}

let choices_of_points pts =
  List.map
    (fun p ->
      {
        c_label = p.pt_label;
        c_width = Array.length p.pt_keys;
        c_taken = p.pt_taken;
        c_key = p.pt_keys.(p.pt_taken);
      })
    (Array.to_list pts)

(* Flanagan–Godefroid backtrack computation over one finished execution.
   For every delivery t_j, find the latest earlier delivery t_i to the
   same replica that did not cause t_j (vector clocks decide); flipping
   their order is the canonical non-commuting alternative, so t_j's
   message becomes a backtrack alternative at t_i's choice point — or
   every alternative there if t_j's message was not yet eligible. *)
let dpor_update exec stack =
  let frames = Array.of_list stack in
  let tr = exec.x_trans in
  let n = Array.length tr in
  let add_backtrack pi target_id =
    if pi >= 0 && pi < Array.length frames then begin
      let f = frames.(pi) in
      let w = Array.length f.nd_keys in
      let want i =
        i <> f.nd_taken
        && (not (List.mem i f.nd_done))
        && not (List.mem i f.nd_todo)
      in
      let matching = ref [] in
      for i = w - 1 downto 0 do
        if key_id f.nd_keys.(i) = target_id then matching := i :: !matching
      done;
      match !matching with
      | [ i ] -> if want i then f.nd_todo <- i :: f.nd_todo
      | _ ->
        (* not eligible at that point: conservatively try everything *)
        for i = 0 to w - 1 do
          if want i then f.nd_todo <- i :: f.nd_todo
        done
    end
  in
  for j = 1 to n - 1 do
    let tj = tr.(j) in
    let rec scan i =
      if i >= 0 then begin
        let ti = tr.(i) in
        if
          ti.tr_tid = tj.tr_tid
          && not (Vc.covers tj.tr_mvc ~tid:ti.tr_tid ~clock:ti.tr_clk)
        then add_backtrack ti.tr_point tj.tr_id
        else scan (i - 1)
      end
    in
    scan (j - 1)
  done

let explore cfg =
  let stack = ref ([] : nd list) in
  let runs = ref 0 and transitions = ref 0 in
  let result = ref None in
  let complete = ref true in
  let continue_ = ref true in
  while !continue_ do
    let forced = Array.of_list (List.map (fun n -> n.nd_taken) !stack) in
    let exec = run_one cfg ~forced in
    incr runs;
    transitions := !transitions + Array.length exec.x_trans;
    if Array.length exec.x_points < Array.length forced then
      failwith "crane-mc: schedule divergence (shorter replay)";
    List.iteri
      (fun k nd ->
        let p = exec.x_points.(k) in
        if p.pt_label <> nd.nd_label || p.pt_taken <> forced.(k) then
          failwith
            (Printf.sprintf
               "crane-mc: schedule divergence at choice %d (%s/%d vs %s/%d)" k
               p.pt_label p.pt_taken nd.nd_label forced.(k)))
      !stack;
    (* A violation found while a mutation is active only counts if the
       exact same schedule is clean with the fault flags off: crash/drop
       noise can break completion on its own (e.g. kill the primary with
       no restart), and such a counterexample would "reproduce" on fixed
       code too, proving nothing about the mutant.  Non-discriminating
       violations are skipped and the search continues. *)
    let discriminating () =
      cfg.mutation = No_mutation
      ||
      let all_forced = Array.map (fun p -> p.pt_taken) exec.x_points in
      let faults = Paxos.debug_faults in
      let saved_h = faults.Paxos.hole_backfill_skip
      and saved_d = faults.Paxos.dup_accept_drop in
      faults.Paxos.hole_backfill_skip <- false;
      faults.Paxos.dup_accept_drop <- false;
      let fixed =
        Fun.protect
          ~finally:(fun () ->
            faults.Paxos.hole_backfill_skip <- saved_h;
            faults.Paxos.dup_accept_drop <- saved_d)
          (fun () -> run_one cfg ~forced:all_forced)
      in
      fixed.x_verdict = None
    in
    (match exec.x_verdict with
    | Some (inv, detail) when discriminating () ->
      result :=
        Some
          {
            v_invariant = inv;
            v_detail = detail;
            v_run = !runs;
            v_choices = choices_of_points exec.x_points;
          };
      continue_ := false
    | Some _ | None ->
      (* extend the stack with the fresh choice points of this run *)
      let base = List.length !stack in
      let fresh = ref [] in
      for k = Array.length exec.x_points - 1 downto base do
        let p = exec.x_points.(k) in
        let w = Array.length p.pt_keys in
        let todo =
          if cfg.dpor && p.pt_label = "net.deliver" then []
          else List.filter (fun i -> i <> p.pt_taken) (List.init w Fun.id)
        in
        fresh :=
          {
            nd_label = p.pt_label;
            nd_keys = p.pt_keys;
            nd_taken = p.pt_taken;
            nd_done = [];
            nd_todo = todo;
          }
          :: !fresh
      done;
      stack := !stack @ !fresh;
      if cfg.dpor then dpor_update exec !stack;
      (* depth-first backtrack: flip the deepest pending alternative *)
      let rec backtrack rev =
        match rev with
        | [] ->
          stack := [];
          continue_ := false
        | nd :: above -> (
          nd.nd_done <- nd.nd_taken :: nd.nd_done;
          let todo =
            List.sort_uniq compare
              (List.filter (fun i -> not (List.mem i nd.nd_done)) nd.nd_todo)
          in
          match todo with
          | [] -> backtrack above
          | t :: rest ->
            nd.nd_taken <- t;
            nd.nd_todo <- rest;
            stack := List.rev (nd :: above))
      in
      backtrack (List.rev !stack);
      if !continue_ && !runs >= cfg.max_runs then begin
        complete := false;
        continue_ := false
      end)
  done;
  {
    o_runs = !runs;
    o_transitions = !transitions;
    o_complete = !complete;
    o_violation = !result;
  }

(* ------------------------------------------------------------------ *)
(* Mutation presets and toggles                                        *)

let with_mutation m f =
  let faults = Paxos.debug_faults in
  (match m with
  | No_mutation -> ()
  | Hole_backfill -> faults.Paxos.hole_backfill_skip <- true
  | Dup_accept -> faults.Paxos.dup_accept_drop <- true);
  Fun.protect
    ~finally:(fun () ->
      faults.Paxos.hole_backfill_skip <- false;
      faults.Paxos.dup_accept_drop <- false)
    f

(* Bounds under which each reintroduced bug is reachable: both need one
   message drop (the duplicate-Accept path only fires on a retransmission
   after a lost first ack; the hole-backfill path needs a lost Accept to
   open the hole); dup-accept additionally needs a crashed backup so the
   survivor's ack is the quorum-critical one. *)
let mutation_preset m =
  match m with
  | No_mutation -> default
  | Hole_backfill ->
    {
      default with
      mutation = m;
      clients = 1;
      writes = 2;
      reads = 0;
      drop_budget = 1;
      crash_budget = 0;
      deliver_branch = false;
      horizon = Time.sec 3;
      max_branch = 32;
      max_runs = 2000;
    }
  | Dup_accept ->
    {
      default with
      mutation = m;
      clients = 1;
      writes = 1;
      reads = 0;
      drop_budget = 1;
      crash_budget = 1;
      crash_window = 10;
      restart_after = None;
      deliver_branch = false;
      horizon = Time.sec 3;
      max_branch = 32;
      max_runs = 4000;
    }

let explore_mutated cfg = with_mutation cfg.mutation (fun () -> explore cfg)

(* ------------------------------------------------------------------ *)
(* Counterexample traces                                               *)

let write_trace cfg v path =
  let oc = open_out path in
  Printf.fprintf oc "crane-mc-trace v1\n";
  Printf.fprintf oc "invariant=%s\n" v.v_invariant;
  Printf.fprintf oc "detail=%s\n" v.v_detail;
  Printf.fprintf oc "seed=%d\n" cfg.seed;
  Printf.fprintf oc "replicas=%d\n" cfg.replicas;
  Printf.fprintf oc "clients=%d\n" cfg.clients;
  Printf.fprintf oc "writes=%d\n" cfg.writes;
  Printf.fprintf oc "reads=%d\n" cfg.reads;
  Printf.fprintf oc "warmup_us=%d\n" (cfg.warmup / Time.us 1);
  Printf.fprintf oc "horizon_us=%d\n" (cfg.horizon / Time.us 1);
  Printf.fprintf oc "settle_us=%d\n" (cfg.settle / Time.us 1);
  Printf.fprintf oc "max_branch=%d\n" cfg.max_branch;
  Printf.fprintf oc "crash_budget=%d\n" cfg.crash_budget;
  Printf.fprintf oc "crash_window=%d\n" cfg.crash_window;
  Printf.fprintf oc "restart_after_us=%d\n"
    (match cfg.restart_after with None -> -1 | Some d -> d / Time.us 1);
  Printf.fprintf oc "drop_budget=%d\n" cfg.drop_budget;
  Printf.fprintf oc "drop_paxos_only=%b\n" cfg.drop_paxos_only;
  Printf.fprintf oc "deliver_branch=%b\n" cfg.deliver_branch;
  Printf.fprintf oc "delays=%s\n"
    (String.concat "," (List.map string_of_int (Array.to_list cfg.delays)));
  Printf.fprintf oc "read_fastpath=%b\n" cfg.read_fastpath;
  Printf.fprintf oc "pool_workers=%d\n" cfg.pool_workers;
  Printf.fprintf oc "mutation=%s\n" (mutation_name cfg.mutation);
  List.iter
    (fun c ->
      Printf.fprintf oc "choice %d/%d %s %s\n" c.c_taken c.c_width c.c_label
        c.c_key)
    v.v_choices;
  close_out oc

let read_trace path =
  let ic = open_in path in
  let cfg = ref { default with check_completion = true } in
  let forced = ref [] in
  let expect = ref "" in
  (try
     let header = input_line ic in
     if header <> "crane-mc-trace v1" then
       failwith (path ^ ": not a crane-mc trace");
     while true do
       let line = input_line ic in
       match String.index_opt line '=' with
       | Some i when not (String.length line > 6 && String.sub line 0 7 = "choice ")
         ->
         let k = String.sub line 0 i in
         let v = String.sub line (i + 1) (String.length line - i - 1) in
         let n () = int_of_string v in
         (match k with
         | "invariant" -> expect := v
         | "detail" -> ()
         | "seed" -> cfg := { !cfg with seed = n () }
         | "replicas" -> cfg := { !cfg with replicas = n () }
         | "clients" -> cfg := { !cfg with clients = n () }
         | "writes" -> cfg := { !cfg with writes = n () }
         | "reads" -> cfg := { !cfg with reads = n () }
         | "warmup_us" -> cfg := { !cfg with warmup = Time.us (n ()) }
         | "horizon_us" -> cfg := { !cfg with horizon = Time.us (n ()) }
         | "settle_us" -> cfg := { !cfg with settle = Time.us (n ()) }
         | "max_branch" -> cfg := { !cfg with max_branch = n () }
         | "crash_budget" -> cfg := { !cfg with crash_budget = n () }
         | "crash_window" -> cfg := { !cfg with crash_window = n () }
         | "restart_after_us" ->
           cfg :=
             {
               !cfg with
               restart_after = (if n () < 0 then None else Some (Time.us (n ())));
             }
         | "drop_budget" -> cfg := { !cfg with drop_budget = n () }
         | "drop_paxos_only" ->
           cfg := { !cfg with drop_paxos_only = bool_of_string v }
         | "deliver_branch" ->
           cfg := { !cfg with deliver_branch = bool_of_string v }
         | "delays" ->
           cfg :=
             {
               !cfg with
               delays =
                 Array.of_list
                   (List.map int_of_string (String.split_on_char ',' v));
             }
         | "read_fastpath" ->
           cfg := { !cfg with read_fastpath = bool_of_string v }
         | "pool_workers" -> cfg := { !cfg with pool_workers = n () }
         | "mutation" -> cfg := { !cfg with mutation = mutation_of_name v }
         | _ -> ())
       | _ ->
         (match String.split_on_char ' ' line with
         | "choice" :: spec :: _ -> (
           match String.split_on_char '/' spec with
           | [ taken; _width ] -> forced := int_of_string taken :: !forced
           | _ -> ())
         | _ -> ())
     done
   with End_of_file -> ());
  close_in ic;
  (!cfg, Array.of_list (List.rev !forced), !expect)

(* Re-execute a recorded counterexample: one run, forced along the trace. *)
let replay path =
  let cfg, forced, expect = read_trace path in
  let exec = with_mutation cfg.mutation (fun () -> run_one cfg ~forced) in
  (cfg, expect, exec.x_verdict)

(* Replay with the recorded mutation overridden — e.g. with
   [No_mutation] to confirm a counterexample is discriminating (the same
   schedule is clean on fixed code). *)
let replay_with ~mutation path =
  let cfg, forced, expect = read_trace path in
  let cfg = { cfg with mutation } in
  let exec = with_mutation mutation (fun () -> run_one cfg ~forced) in
  (cfg, expect, exec.x_verdict)
