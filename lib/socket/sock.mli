(** TCP-like byte-stream sockets over the simulated fabric.

    Connection-oriented, in-order, reliable streams between nodes, with
    blocking [accept]/[connect]/[recv] integrated with the green-thread
    engine.  This is the transport used by benchmark clients, by CRANE's
    proxy toward clients, and directly by server programs when they run
    un-replicated (the paper's baseline). *)

type world
type listener
type conn

exception Connection_refused of Crane_net.Fabric.node * int
(** connect() to a node/port with no listener (or a crashed node). *)

exception Connection_closed
(** send() on a connection this side already closed. *)

val world : Crane_net.Fabric.t -> world
(** The (single) socket transport for a fabric. *)

val listen : world -> node:Crane_net.Fabric.node -> port:int -> listener
(** Bind and listen.  @raise Invalid_argument if the port is taken. *)

val close_listener : listener -> unit

val pending : listener -> int
(** Number of connections waiting in the backlog. *)

val wait_acceptable : ?timeout:Crane_sim.Time.t -> listener -> bool
(** Block until the backlog is non-empty (poll() on a listening socket).
    [false] on timeout or closed listener. *)

val accept : listener -> conn
(** Block until a connection arrives. *)

val connect : world -> from:Crane_net.Fabric.node -> node:Crane_net.Fabric.node -> port:int -> conn
(** Three-way-handshake connect.  @raise Connection_refused *)

val send : conn -> string -> unit
(** Queue bytes for the peer.  Writing to a connection whose peer is gone
    is silently dropped (the TCP write-after-FIN model, minus SIGPIPE).
    @raise Connection_closed if this side closed the connection. *)

val recv : ?timeout:Crane_sim.Time.t -> conn -> max:int -> string
(** Block until data is available and return up to [max] bytes.  Returns
    [""] on EOF (peer closed or crashed) and on timeout. *)

val recv_ready : conn -> bool
(** Data available or EOF pending: recv would not block. *)

val close : conn -> unit
(** Idempotent full close; the peer sees EOF after draining. *)

val id : conn -> int
(** Globally unique connection id (stable across both endpoints). *)

val local_node : conn -> Crane_net.Fabric.node
val peer_node : conn -> Crane_net.Fabric.node
val is_open : conn -> bool

val node_crashed : world -> Crane_net.Fabric.node -> unit
(** Model a machine crash: peers of every connection touching the node
    observe EOF; its listeners evaporate; in-flight connects are refused.
    Wire this to [Engine.on_kill] of the replica's group. *)

val node_booted : world -> Crane_net.Fabric.node -> unit
(** A node (re)joined the world — a reboot, or a live reconfiguration
    booting a fresh replacement: bind its transport and discard any
    connection state a previous incarnation of the same name left
    behind. *)
