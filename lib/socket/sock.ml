module Time = Crane_sim.Time
module Fabric = Crane_net.Fabric
module Engine = Crane_sim.Engine
module Trace = Crane_trace.Trace

exception Connection_refused of Fabric.node * int
exception Connection_closed

let transport_port = 0

type conn = {
  cid : int;
  w : world;
  local : Fabric.node;
  remote : Fabric.node;
  rx : Bytestream.t;
  mutable eof : bool; (* peer closed or crashed *)
  mutable closed : bool; (* this side closed *)
  rx_waiters : (unit -> bool) Queue.t;
}

and listener = {
  lw : world;
  lnode : Fabric.node;
  lport : int;
  backlog : conn Queue.t;
  accept_waiters : (unit -> bool) Queue.t;
  mutable lclosed : bool;
}

and world = {
  fabric : Fabric.t;
  eng : Engine.t;
  mutable next_cid : int;
  conns : (Fabric.node * int, conn) Hashtbl.t;
  listeners : (Fabric.node * int, listener) Hashtbl.t;
  pending_connects : (int, bool -> bool) Hashtbl.t;
  bound : (Fabric.node, unit) Hashtbl.t;
}

type Fabric.message +=
  | Syn of { cid : int; dst_port : int }
  | Syn_ack of { cid : int }
  | Rst of { cid : int }
  | Data of { cid : int; payload : string }
  | Fin of { cid : int }

(* Wake the first still-live waiter in a queue. *)
let rec wake_one q =
  match Queue.take_opt q with
  | None -> ()
  | Some wake -> if not (wake ()) then wake_one q

let wake_all q =
  while not (Queue.is_empty q) do
    ignore ((Queue.pop q) ())
  done

let mark_eof c =
  if not c.eof then begin
    c.eof <- true;
    wake_all c.rx_waiters
  end

let ep node = { Fabric.node; port = transport_port }

(* Transport-delivery instants: connection ids are allocated once per
   connection and shared by both endpoints, so an rx event on the serving
   replica anchors the client-queueing stage of a request span, and one on
   the client's node anchors the reply stage. *)
let rx_event w ~node ~name ~cid ~bytes =
  let tr = Engine.trace w.eng in
  if Trace.enabled tr then
    Trace.instant tr ~ts:(Engine.now w.eng) ~tid:(Engine.self_tid w.eng)
      ~node ~cat:"net" ~name
      (("conn", Trace.Int cid)
      :: (if bytes > 0 then [ ("bytes", Trace.Int bytes) ] else []))

let handle w ~node ~src msg =
  let find cid = Hashtbl.find_opt w.conns (node, cid) in
  match msg with
  | Syn { cid; dst_port } -> (
    match Hashtbl.find_opt w.listeners (node, dst_port) with
    | Some l when not l.lclosed ->
      let c =
        {
          cid;
          w;
          local = node;
          remote = src.Fabric.node;
          rx = Bytestream.create ();
          eof = false;
          closed = false;
          rx_waiters = Queue.create ();
        }
      in
      Hashtbl.replace w.conns (node, cid) c;
      rx_event w ~node ~name:"rx_syn" ~cid ~bytes:0;
      Queue.add c l.backlog;
      wake_one l.accept_waiters;
      Fabric.send w.fabric ~src:(ep node) ~dst:src (Syn_ack { cid })
    | Some _ | None ->
      Fabric.send w.fabric ~src:(ep node) ~dst:src (Rst { cid }))
  | Syn_ack { cid } -> (
    match Hashtbl.find_opt w.pending_connects cid with
    | Some wake ->
      Hashtbl.remove w.pending_connects cid;
      ignore (wake true)
    | None -> ())
  | Rst { cid } -> (
    match Hashtbl.find_opt w.pending_connects cid with
    | Some wake ->
      Hashtbl.remove w.pending_connects cid;
      ignore (wake false)
    | None -> ( match find cid with Some c -> mark_eof c | None -> ()))
  | Data { cid; payload } -> (
    match find cid with
    | Some c when not c.closed ->
      rx_event w ~node ~name:"rx_data" ~cid ~bytes:(String.length payload);
      Bytestream.push c.rx payload;
      wake_one c.rx_waiters
    | Some _ | None -> ())
  | Fin { cid } -> (
    match find cid with
    | Some c ->
      rx_event w ~node ~name:"rx_fin" ~cid ~bytes:0;
      mark_eof c
    | None -> ())
  | _ -> ()

let ensure_bound w node =
  if not (Hashtbl.mem w.bound node) then begin
    Hashtbl.add w.bound node ();
    Fabric.bind w.fabric (ep node) (fun ~src msg -> handle w ~node ~src msg)
  end

let world fabric =
  {
    fabric;
    eng = Fabric.engine fabric;
    next_cid = 1;
    conns = Hashtbl.create 256;
    listeners = Hashtbl.create 16;
    pending_connects = Hashtbl.create 16;
    bound = Hashtbl.create 16;
  }

let listen w ~node ~port =
  ensure_bound w node;
  if Hashtbl.mem w.listeners (node, port) then
    invalid_arg (Printf.sprintf "Sock.listen: %s:%d already bound" node port);
  let l =
    {
      lw = w;
      lnode = node;
      lport = port;
      backlog = Queue.create ();
      accept_waiters = Queue.create ();
      lclosed = false;
    }
  in
  Hashtbl.replace w.listeners (node, port) l;
  l

let close_listener l =
  if not l.lclosed then begin
    l.lclosed <- true;
    Hashtbl.remove l.lw.listeners (l.lnode, l.lport);
    wake_all l.accept_waiters
  end

let pending l = Queue.length l.backlog

let wait_acceptable ?timeout l =
  if not (Queue.is_empty l.backlog) then true
  else if l.lclosed then false
  else begin
    Engine.suspend l.lw.eng (fun wake ->
        Queue.add (fun () -> wake ()) l.accept_waiters;
        match timeout with
        | None -> ()
        | Some d -> Engine.after l.lw.eng d (fun () -> ignore (wake ())));
    not (Queue.is_empty l.backlog)
  end

let rec accept l =
  match Queue.take_opt l.backlog with
  | Some c -> c
  | None ->
    if l.lclosed then raise Connection_closed;
    Engine.suspend l.lw.eng (fun wake ->
        Queue.add (fun () -> wake ()) l.accept_waiters);
    accept l

let connect w ~from ~node ~port =
  ensure_bound w from;
  let cid = w.next_cid in
  w.next_cid <- cid + 1;
  let c =
    {
      cid;
      w;
      local = from;
      remote = node;
      rx = Bytestream.create ();
      eof = false;
      closed = false;
      rx_waiters = Queue.create ();
    }
  in
  Hashtbl.replace w.conns (from, cid) c;
  Fabric.send w.fabric ~src:(ep from) ~dst:(ep node) (Syn { cid; dst_port = port });
  let ok =
    Engine.suspend w.eng (fun wake ->
        Hashtbl.replace w.pending_connects cid (fun ok -> wake ok);
        (* Connect timeout: a dead or partitioned server refuses after 1s. *)
        Engine.after w.eng (Time.sec 1) (fun () ->
            if Hashtbl.mem w.pending_connects cid then begin
              Hashtbl.remove w.pending_connects cid;
              ignore (wake false)
            end))
  in
  if not ok then begin
    Hashtbl.remove w.conns (from, cid);
    raise (Connection_refused (node, port))
  end;
  c

let send (c : conn) payload =
  if c.closed then raise Connection_closed;
  if (not c.eof) && String.length payload > 0 then
    Fabric.send c.w.fabric ~src:(ep c.local) ~dst:(ep c.remote)
      (Data { cid = c.cid; payload })

let recv ?timeout (c : conn) ~max =
  let rec loop deadline_armed =
    if not (Bytestream.is_empty c.rx) then Bytestream.take c.rx ~max
    else if c.eof || c.closed then ""
    else if deadline_armed then ""
    else begin
      let timed_out = ref false in
      Engine.suspend c.w.eng (fun wake ->
          Queue.add (fun () -> wake ()) c.rx_waiters;
          match timeout with
          | None -> ()
          | Some d ->
            Engine.after c.w.eng d (fun () ->
                if wake () then timed_out := true));
      loop !timed_out
    end
  in
  loop false

let recv_ready (c : conn) = (not (Bytestream.is_empty c.rx)) || c.eof

let close (c : conn) =
  if not c.closed then begin
    c.closed <- true;
    if not c.eof then
      Fabric.send c.w.fabric ~src:(ep c.local) ~dst:(ep c.remote)
        (Fin { cid = c.cid });
    wake_all c.rx_waiters
  end

let id (c : conn) = c.cid
let local_node (c : conn) = c.local
let peer_node (c : conn) = c.remote
let is_open (c : conn) = not (c.closed || c.eof)

(* A node (re)joining the world — a reboot or a reconfiguration booting a
   fresh replacement: make sure its transport is bound and clear any
   connection state a previous incarnation of the same name left behind,
   so the new instance starts from a clean table instead of inheriting
   half-open streams. *)
let node_booted w node =
  let stale =
    Hashtbl.fold
      (fun (n, cid) c acc -> if n = node then ((n, cid), c) :: acc else acc)
      w.conns []
  in
  List.iter
    (fun (key, c) ->
      mark_eof c;
      Hashtbl.remove w.conns key)
    stale;
  ensure_bound w node

let node_crashed w node =
  (* Listeners on the node evaporate. *)
  let doomed =
    Hashtbl.fold
      (fun (n, p) l acc -> if n = node then (n, p, l) :: acc else acc)
      w.listeners []
  in
  List.iter (fun (_, _, l) -> close_listener l) doomed;
  (* Peers of connections touching the node observe EOF. *)
  Hashtbl.iter
    (fun (n, _) c -> if n <> node && c.remote = node then mark_eof c)
    w.conns;
  ()
