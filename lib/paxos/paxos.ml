module Time = Crane_sim.Time
module Engine = Crane_sim.Engine
module Rng = Crane_sim.Rng
module Fabric = Crane_net.Fabric
module Wal = Crane_storage.Wal
module Trace = Crane_trace.Trace

type config = {
  heartbeat_period : Time.t;
  election_timeout : Time.t;
  election_jitter : Time.t;
  round_retry : Time.t;
  compaction_threshold : int;
  catchup_chunk : int;
  suspect_timeout : Time.t;
      (** failure detector: a member silent this long is suspected dead
          (primary-side input to automated replacement) *)
  lease_duration : Time.t;
      (** leader lease: how long a quorum of heartbeat acks entitles the
          primary to serve reads locally, anchored at heartbeat send time.
          Must be shorter than [election_timeout] (clamped at creation if
          not) so a lease can never outlive the silence a new election
          requires *)
}

(* Mutation-testing switches (Crane-MC self-check): each flag
   reintroduces a previously-fixed protocol bug so the model checker can
   prove it would have caught the regression.  Global and mutable on
   purpose — they are debug-only, default off, and flipped only around a
   bounded exploration run; production paths never read them as [true]. *)
type debug_faults = {
  mutable hole_backfill_skip : bool;
      (** regress the [set_committed] fix: only run the apply loop when
          the commit index moved, so a log hole filled {e below} the
          commit index leaves the replica wedged with
          [applied < committed] *)
  mutable dup_accept_drop : bool;
      (** regress the duplicate-Accept fix: silently drop a retransmitted
          Accept instead of re-acking it, so a lost [Accept_ok] stalls
          the index forever when no other acceptor can form the quorum *)
}

let debug_faults = { hole_backfill_skip = false; dup_accept_drop = false }

let default_config =
  {
    heartbeat_period = Time.sec 1;
    election_timeout = Time.sec 3;
    election_jitter = Time.ms 300;
    round_retry = Time.ms 500;
    compaction_threshold = 1024;
    catchup_chunk = 256;
    suspect_timeout = Time.sec 5;
    lease_duration = Time.ms 1500;
  }

let paxos_port = 1

(* Log entries carried by view-change traffic: (index, view, value). *)
type wire_entry = int * int * string

type Fabric.message +=
  | Accept of { aview : int; index : int; value : string; committed : int }
  | Accept_ok of { aview : int; index : int }
  | Accept_batch of { aview : int; lo : int; values : string list; committed : int }
      (** one round for a whole batch: values occupy indices [lo..lo+N-1] *)
  | Accept_batch_ok of { aview : int; lo : int; hi : int }
  | Commit of { cview : int; committed : int }
  | Heartbeat of { hview : int; hseq : int; committed : int }
  | Heartbeat_ok of { hview : int; hseq : int; h_applied : int }
  | View_change of { nview : int; cand_committed : int }
  | View_change_ok of
      { nview : int; tail : wire_entry list; committed : int; vbase : int }
  | Candidate of { nview : int }
  | Candidate_ok of { nview : int }
  | New_view of { nview : int; entries : wire_entry list; committed : int }
  | Catchup_req of { from_index : int }
  | Catchup_resp of { rview : int; primary : Fabric.node; entries : (int * string) list; committed : int }
  | Snapshot_push of { s_index : int; blob : string }
      (** checkpoint node disseminates the latest application snapshot *)
  | Snapshot_resp of
      { s_index : int;
        blob : string;
        s_committed : int;
        s_epoch : int;
        s_members : Fabric.node list
      }
      (** two-tier catch-up: the requested prefix is compacted away.  The
          serving replica's configuration rides along so a fresh joiner
          bootstrapping from a snapshot learns the membership its state
          was produced under. *)
  | Compact of { cwatermark : int }
      (** primary-coordinated watermark: drop log/ack entries <= it *)
  | Epoched of { e : int; inner : Fabric.message }
      (** every paxos message is stamped with the sender's config epoch:
          receivers fence traffic from departed members *)
  | Fenced of { f_epoch : int }
      (** authoritative rejection: the sender is not a member of config
          epoch [f_epoch] — stop voting and serving *)

type wal_record =
  | Wal_accept of int * int * string
  | Wal_commit of int
  | Wal_trunc of
      { watermark : int;
        s_index : int;
        blob : string;
        t_epoch : int;
        t_members : Fabric.node list
      }
      (** truncation header: entries <= [watermark] live in the snapshot
          [blob] taken at [s_index]; everything older in the WAL is
          logically void even if a crash left it on disk.  The config in
          force at truncation time is recorded so recovery of a compacted
          WAL still knows its membership. *)

type handlers = {
  on_commit : index:int -> string -> unit;
  on_demote : unit -> unit;
  on_config : epoch:int -> Fabric.node list -> unit;
      (** a new configuration just activated on this replica *)
  on_fence : epoch:int -> unit;
      (** this replica was removed by config [epoch]: it may neither vote
          nor serve again *)
}

let null_handlers =
  {
    on_commit = (fun ~index:_ _ -> ());
    on_demote = (fun () -> ());
    on_config = (fun ~epoch:_ _ -> ());
    on_fence = (fun ~epoch:_ -> ());
  }

type compaction_hooks = {
  install_snapshot : index:int -> string -> unit;
  on_compact : watermark:int -> unit;
}

let null_hooks =
  { install_snapshot = (fun ~index:_ _ -> ()); on_compact = (fun ~watermark:_ -> ()) }

type election = {
  eview : int;
  mutable oks : Fabric.node list; (* view-change responders, self included *)
  mutable tails : (Fabric.node * wire_entry list * int) list;
  mutable cand_oks : Fabric.node list;
  mutable phase : [ `Collect | `Candidate ];
  started_at : Time.t;
}

type t = {
  cfg : config;
  fabric : Fabric.t;
  eng : Engine.t;
  rng : Rng.t;
  wal : Wal.t;
  (* Membership is a replicated value: [members] is the configuration of
     [epoch], changed only by activating a committed Reconfig entry.
     Between a Reconfig entry entering the log and its activation,
     [pending_members] holds the proposed configuration and every quorum
     check requires a majority of BOTH (joint consensus). *)
  mutable members : Fabric.node list;
  mutable epoch : int;
  mutable pending_members : Fabric.node list option;
  mutable fenced : bool;
  self : Fabric.node;
  group : Engine.group;
  mutable view : int;
  mutable primary : Fabric.node option;
  mutable max_view_seen : int;
  (* Replicated log. *)
  log : (int, int * string) Hashtbl.t; (* index -> (view, value) *)
  mutable last_index : int;
  mutable committed : int;
  mutable applied : int;
  acks : (int, Fabric.node list) Hashtbl.t;
  mutable handlers : handlers;
  mutable hooks : compaction_hooks;
  (* Compaction: everything at or below [base] has been dropped from the
     log/acks tables and truncated out of the WAL; [snapshot] is the most
     recent application checkpoint seen (index, opaque blob), which is
     what catch-up serves for requests below [base]. *)
  mutable base : int;
  mutable snapshot : (int * string) option;
  (* Primary-side watermark input: last applied index each peer reported
     in a Heartbeat_ok, with the instant it was heard. *)
  peer_applied : (Fabric.node, int * Time.t) Hashtbl.t;
  (* Failure detector input: last instant each member was heard from at
     all (any message).  [suspects] compares this against
     suspect_timeout. *)
  peer_heard : (Fabric.node, Time.t) Hashtbl.t;
  (* Leader lease (primary side): each heartbeat round is numbered; when
     a quorum acks the current round, the lease extends to that round's
     send instant plus [lease_duration].  Anchoring at send time is
     conservative — every acking backup promised (by refusing election
     votes, see [last_hb_acked]) not to elect past a later instant. *)
  mutable hb_seq : int;
  mutable hb_sent : Time.t;
  mutable hb_acks : Fabric.node list;
  mutable lease_until : Time.t;
  (* Lease promise (backup side): the instant this node last sent a
     Heartbeat_ok.  Until [lease_duration] past it, the node refuses
     election votes — the voter-side half of lease disjointness: any new
     view needs a quorum, every quorum intersects the acking quorum, and
     the intersecting voter waits out the lease it helped grant. *)
  mutable last_hb_acked : Time.t;
  (* Failure detection / election. *)
  mutable last_heartbeat : Time.t;
  (* Last instant any peer was heard from: a primary that loses quorum
     contact for election_timeout abdicates (one-way-partition liveness). *)
  mutable last_peer_contact : Time.t;
  mutable election : election option;
  (* Consecutive View_change deferrals since the last heartbeat from a
     live primary.  Deferring (refreshing our election timer) to another
     node's in-flight election avoids duels, but must be bounded: a
     proposer on the far side of a one-way partition never hears its
     acks and retries forever with higher views, and unbounded deference
     would suppress everyone else's timer and leave the cluster
     leaderless. *)
  mutable vc_defers : int;
  mutable started : bool;
  (* Stats. *)
  mutable decisions : int;
  mutable view_changes : int;
  mutable last_election_duration : Time.t option;
  mutable abdications : int;
  mutable catchup_served : int;
  mutable catchup_installed : int;
  mutable wal_torn_discarded : int;
  mutable compactions : int;
  mutable snapshots_served : int;
  mutable snapshots_installed : int;
  mutable peak_log : int;
  mutable reconfigs : int;
  mutable fenced_drops : int;
  mutable leases_held : int;
  (* Batching accounting (proposer side): proposed batches waiting for
     their whole index range to commit, oldest first, plus the committed
     histogram. *)
  open_batches : (int * int) Queue.t; (* (hi, size) *)
  mutable batches_committed : int;
  batch_sizes : (int, int) Hashtbl.t; (* size -> committed batches *)
  mutable max_batch : int; (* largest committed batch, unclamped *)
}

type stats = {
  decisions : int;
  view_changes : int;
  abdications : int;
  catchup_served : int;
  catchup_installed : int;
  wal_torn_discarded : int;
  pending : int;
  last_election_duration : Time.t option;
  batches_committed : int;
  events_per_batch : (int * int) list;
  max_batch : int;
  compactions : int;
  snapshots_served : int;
  snapshots_installed : int;
  log_base : int;
  log_resident : int;
  peak_log_resident : int;
  acks_resident : int;
  epoch : int;
  reconfigs : int;
  fenced_drops : int;
  leases_held : int;
}

let node t = t.self
let view t = t.view
let primary t = t.primary
let is_primary t = (not t.fenced) && t.primary = Some t.self
let committed t = t.committed
let applied t = t.applied
let base t = t.base
let snapshot t = t.snapshot
let members (t : t) = t.members
let epoch (t : t) = t.epoch
let fenced (t : t) = t.fenced
let reconfig_pending (t : t) = t.pending_members <> None
let set_handlers t handlers = t.handlers <- handlers
let set_compaction_hooks t hooks = t.hooks <- hooks

let stats (t : t) : stats =
  {
    decisions = t.decisions;
    view_changes = t.view_changes;
    abdications = t.abdications;
    catchup_served = t.catchup_served;
    catchup_installed = t.catchup_installed;
    wal_torn_discarded = t.wal_torn_discarded;
    pending = t.last_index - t.committed;
    last_election_duration = t.last_election_duration;
    batches_committed = t.batches_committed;
    events_per_batch =
      Hashtbl.fold (fun size n acc -> (size, n) :: acc) t.batch_sizes []
      |> List.sort compare;
    max_batch = t.max_batch;
    compactions = t.compactions;
    snapshots_served = t.snapshots_served;
    snapshots_installed = t.snapshots_installed;
    log_base = t.base;
    log_resident = Hashtbl.length t.log;
    peak_log_resident = t.peak_log;
    acks_resident = Hashtbl.length t.acks;
    epoch = t.epoch;
    reconfigs = t.reconfigs;
    fenced_drops = t.fenced_drops;
    leases_held = t.leases_held;
  }

(* The lease is a pure clock comparison: valid only on an unfenced
   primary outside a joint-quorum window (a pending reconfiguration
   makes "who must promise" ambiguous, so reads fall back to consensus
   until it activates). *)
let lease_valid (t : t) =
  is_primary t && t.pending_members = None && Engine.now t.eng < t.lease_until

let lease_until (t : t) = t.lease_until

let revoke_lease (t : t) =
  t.lease_until <- Time.zero;
  t.hb_acks <- []

let fire_demote t =
  (* A demoted proposer's in-flight batches are void: they may be
     superseded wholesale by the new primary's log merge, so counting
     them as committed later (when the index range happens to fill with
     someone else's values) would corrupt the histogram.  Its lease is
     void too: whatever deposed it holds (or will hold) the quorum. *)
  revoke_lease t;
  Queue.clear t.open_batches;
  t.handlers.on_demote ()

let ep node = { Fabric.node; port = paxos_port }
let trace t = Engine.trace t.eng

(* ------------------------------------------------------------------ *)
(* Membership as a replicated value.  A Reconfig is an ordinary log
   entry whose payload is a tagged (epoch, members) pair; it flows
   through the same Accept/ack/commit machinery as client commands and
   activates when applied.  The tag keeps config entries distinguishable
   from opaque application values (which are Marshal blobs and never
   start with it). *)

let config_tag = "CRANE-CFG:"

let encode_config ~epoch ~members =
  config_tag ^ Marshal.to_string ((epoch, members) : int * Fabric.node list) []

let decode_config v =
  let tl = String.length config_tag in
  if String.length v > tl && String.sub v 0 tl = config_tag then
    try Some (Marshal.from_string v tl : int * Fabric.node list) with _ -> None
  else None

let is_config_value v = decode_config v <> None

(* Joint consensus: between a Reconfig entering the log and its
   activation, progress (commits AND elections) needs a majority of the
   old configuration and a majority of the proposed one.  Either
   majority alone could otherwise commit conflicting histories during
   the handover window. *)
let quorum_reached (t : t) voters =
  let maj cfg = (List.length cfg / 2) + 1 in
  let tally cfg = List.length (List.filter (fun n -> List.mem n cfg) voters) in
  tally t.members >= maj t.members
  && match t.pending_members with
     | Some next -> tally next >= maj next
     | None -> true

(* Union of current and pending members (dedup preserves order): the
   broadcast domain during a joint window. *)
let recipients (t : t) =
  let all =
    match t.pending_members with
    | None -> t.members
    | Some next ->
      List.fold_left
        (fun acc n -> if List.mem n acc then acc else acc @ [ n ])
        t.members next
  in
  List.filter (fun n -> n <> t.self) all

let is_member (t : t) n =
  List.mem n t.members
  || match t.pending_members with Some m -> List.mem n m | None -> false

(* Every outbound message carries the sender's epoch so stale members
   can be fenced at the receiver. *)
let cast (t : t) msg =
  let wrapped = Epoched { e = t.epoch; inner = msg } in
  List.iter
    (fun n -> Fabric.send t.fabric ~src:(ep t.self) ~dst:(ep n) wrapped)
    (recipients t)

let tell (t : t) n msg =
  Fabric.send t.fabric ~src:(ep t.self) ~dst:(ep n)
    (Epoched { e = t.epoch; inner = msg })

(* Primary-side lease grant: a quorum of acks for the current heartbeat
   round extends the lease to that round's send instant plus
   lease_duration.  [leases_held] counts invalid-to-valid transitions
   (acquisitions), not per-round renewals. *)
let maybe_grant_lease (t : t) =
  if quorum_reached t t.hb_acks then begin
    let until = t.hb_sent + t.cfg.lease_duration in
    if until > t.lease_until then begin
      if Engine.now t.eng >= t.lease_until then begin
        t.leases_held <- t.leases_held + 1;
        let tr = trace t in
        if Trace.enabled tr then
          Trace.instant tr ~ts:(Engine.now t.eng) ~tid:(Engine.self_tid t.eng)
            ~node:t.self ~cat:"paxos" ~name:"lease_grant"
            [ ("view", Trace.Int t.view); ("until", Trace.Int until) ]
      end;
      t.lease_until <- until
    end
  end

let member_event (t : t) ~name args =
  let tr = trace t in
  if Trace.enabled tr then
    Trace.member tr ~ts:(Engine.now t.eng) ~tid:(Engine.self_tid t.eng)
      ~node:t.self ~name args

(* A fenced replica is out of the configuration for good: shed clients,
   forget any primaryship or election, and go silent.  The inbound path
   drops everything once [fenced] is set. *)
let fence_self (t : t) ~epoch =
  if not t.fenced then begin
    t.fenced <- true;
    t.primary <- None;
    t.election <- None;
    member_event t ~name:"fence"
      [ ("node", Trace.Str t.self); ("epoch", Trace.Int epoch) ];
    fire_demote t;
    t.handlers.on_fence ~epoch
  end

(* Track the latest uncommitted Reconfig in the suffix: it defines the
   joint quorum until it commits (or is superseded by a log merge). *)
let refresh_pending_config (t : t) =
  let rec scan idx best =
    if idx > t.last_index then best
    else
      let best =
        match Hashtbl.find_opt t.log idx with
        | Some (_, v) -> (
          match decode_config v with
          | Some (e, m) when e > t.epoch -> Some m
          | _ -> best)
        | None -> best
      in
      scan (idx + 1) best
  in
  t.pending_members <- scan (t.committed + 1) None

(* Activation: a committed Reconfig takes effect the moment it is
   applied.  From here on quorums, broadcasts and the failure detector
   use the new membership, and this replica stamps the new epoch on
   every message — which is what fences the departed. *)
let activate_config (t : t) ~epoch ~members =
  if epoch > t.epoch then begin
    let old = t.members in
    t.epoch <- epoch;
    t.members <- members;
    t.reconfigs <- t.reconfigs + 1;
    (* A lease granted under the old membership's quorums says nothing
       about the new configuration: drop it and re-earn one from the new
       members' acks. *)
    revoke_lease t;
    List.iter
      (fun n ->
        if not (List.mem n old) then begin
          Hashtbl.replace t.peer_heard n (Engine.now t.eng);
          member_event t ~name:"join"
            [ ("node", Trace.Str n); ("epoch", Trace.Int epoch) ]
        end)
      members;
    List.iter
      (fun n ->
        if not (List.mem n members) then begin
          Hashtbl.remove t.peer_heard n;
          Hashtbl.remove t.peer_applied n;
          member_event t ~name:"leave"
            [ ("node", Trace.Str n); ("epoch", Trace.Int epoch) ]
        end)
      old;
    refresh_pending_config t;
    t.handlers.on_config ~epoch members;
    (* Self-removal: fence immediately only when this is the newest
       configuration we could possibly know of — nothing pending in the
       suffix and nothing committed-but-unapplied.  A replica replaying
       history (a joiner catching up through the config that predates its
       own admission) must keep going: a later entry re-admits it.  If a
       re-admission never comes, the members' inbound gate tells it
       authoritatively via [Fenced]. *)
    if
      (not (List.mem t.self members))
      && t.pending_members = None
      && t.applied >= t.committed
    then fence_self t ~epoch
  end
  else refresh_pending_config t

(* Failure detector output (meaningful on the primary, which hears every
   live member's heartbeat acks): members silent past suspect_timeout. *)
let suspects (t : t) =
  if not (is_primary t) then []
  else
    let now = Engine.now t.eng in
    List.filter
      (fun n ->
        n <> t.self
        && match Hashtbl.find_opt t.peer_heard n with
           | Some heard -> now - heard > t.cfg.suspect_timeout
           | None -> true)
      t.members

let persist t record k = Wal.append_async t.wal (Marshal.to_string (record : wal_record) []) k

(* Deliver committed values to the application, in order. *)
let rec apply (t : t) =
  if t.applied < t.committed then begin
    match Hashtbl.find_opt t.log (t.applied + 1) with
    | None -> () (* gap: wait for catch-up *)
    | Some (_, value) ->
      t.applied <- t.applied + 1;
      t.decisions <- t.decisions + 1;
      let tr = trace t in
      if Trace.enabled tr then begin
        let ts = Engine.now t.eng and tid = Engine.self_tid t.eng in
        Trace.instant tr ~ts ~tid ~node:t.self ~cat:"paxos" ~name:"commit"
          [ ("index", Trace.Int t.applied) ];
        (* Close the proposer-side decide span (open only where this
           replica proposed the entry). *)
        Trace.async_end tr ~ts ~tid ~id:t.applied ~node:t.self ~cat:"paxos"
          ~name:"decide" []
      end;
      (* Config entries are consumed by consensus itself: they activate
         the new membership instead of reaching the application. *)
      (match decode_config value with
      | Some (epoch, members) -> activate_config t ~epoch ~members
      | None -> t.handlers.on_commit ~index:t.applied value);
      apply t
  end

(* Retire proposed batches whose whole index range has now committed.
   The histogram key is clamped to a fixed bucket range so the table
   cannot grow without bound under exotic batch sizes. *)
let histogram_cap = 64

let note_committed_batches t =
  let rec go () =
    match Queue.peek_opt t.open_batches with
    | Some (hi, size) when hi <= t.committed ->
      ignore (Queue.pop t.open_batches);
      t.batches_committed <- t.batches_committed + 1;
      if size > t.max_batch then t.max_batch <- size;
      let size = min size histogram_cap in
      Hashtbl.replace t.batch_sizes size
        (1 + Option.value (Hashtbl.find_opt t.batch_sizes size) ~default:0);
      go ()
    | Some _ | None -> ()
  in
  go ()

let set_committed t idx =
  let moved = idx > t.committed in
  if moved then begin
    (* Commit advancement retires the ack sets: once an index is
       committed, quorum bookkeeping for it is dead weight. *)
    for i = t.committed + 1 to idx do
      Hashtbl.remove t.acks i
    done;
    t.committed <- idx;
    note_committed_batches t;
    persist t (Wal_commit idx) (fun () -> ())
  end;
  (* Always try to apply, even when the commit index did not move: the
     caller may have just filled a log hole {e below} it (catch-up after a
     lossy window), and the application was stalled on that hole.
     [hole_backfill_skip] regresses exactly this line to the historical
     bug (apply only on commit movement) for the Crane-MC self-check. *)
  if moved || not debug_faults.hole_backfill_skip then apply t

let store_entry t ~index ~eview ~value =
  (* Indices at or below the compaction base are covered by the snapshot:
     the log never holds them again (a stale retransmission must not
     resurrect a dropped prefix). *)
  if index > t.base then begin
    let touches_config =
      is_config_value value
      || match Hashtbl.find_opt t.log index with
         | Some (_, old) -> is_config_value old
         | None -> false
    in
    (match Hashtbl.find_opt t.log index with
    | Some (v, _) when v > eview -> ()
    | Some _ | None -> Hashtbl.replace t.log index (eview, value));
    let n = Hashtbl.length t.log in
    if n > t.peak_log then t.peak_log <- n;
    if index > t.last_index then t.last_index <- index;
    (* A Reconfig landing in (or leaving) the uncommitted suffix changes
       the joint-quorum requirement immediately, on backups too. *)
    if touches_config then refresh_pending_config t
  end

(* ------------------------------------------------------------------ *)
(* Normal case: primary order (one round trip + durable write). *)

let record_ack t ~index ~from =
  (* Straggler acks for already-committed indices would silently regrow
     the table set_committed just pruned. *)
  if index > t.committed then begin
    let cur = match Hashtbl.find_opt t.acks index with Some l -> l | None -> [] in
    if not (List.mem from cur) then Hashtbl.replace t.acks index (from :: cur)
  end

let advance_commits t =
  let progressed = ref false in
  let continue_ = ref true in
  while !continue_ do
    let next = t.committed + 1 in
    match Hashtbl.find_opt t.acks next with
    | Some l when quorum_reached t l ->
      (let tr = trace t in
       if Trace.enabled tr then
         Trace.instant tr ~ts:(Engine.now t.eng) ~tid:(Engine.self_tid t.eng)
           ~node:t.self ~cat:"paxos" ~name:"quorum_ack"
           [ ("index", Trace.Int next); ("acks", Trace.Int (List.length l)) ]);
      set_committed t next;
      progressed := true
    | Some _ | None -> continue_ := false
  done;
  if !progressed then cast t (Commit { cview = t.view; committed = t.committed })

(* ------------------------------------------------------------------ *)
(* Checkpoint-coordinated log compaction (§5.2: recovery is a checkpoint
   plus the post-checkpoint suffix, so everything below the watermark can
   be dropped from every long-lived structure). *)

let wal_drop_record wm data =
  match (Marshal.from_string data 0 : wal_record) with
  | Wal_accept (_, idx, _) -> idx <= wm
  | Wal_commit idx -> idx <= wm
  | Wal_trunc _ -> true (* superseded by the newer header *)
  | exception _ -> true

(* Drop log/ack entries <= wm and truncate the WAL to a (watermark,
   snapshot) header plus suffix.  Only safe — and only attempted — when a
   snapshot covering wm is held: the snapshot is what catch-up serves in
   place of the dropped prefix. *)
let compact_to (t : t) wm =
  let wm = min wm t.applied in
  if wm > t.base then
    match t.snapshot with
    | Some (s_index, blob) when s_index >= wm ->
      for idx = t.base + 1 to wm do
        Hashtbl.remove t.log idx;
        Hashtbl.remove t.acks idx
      done;
      t.base <- wm;
      t.compactions <- t.compactions + 1;
      (let tr = trace t in
       if Trace.enabled tr then
         Trace.instant tr ~ts:(Engine.now t.eng) ~tid:(Engine.self_tid t.eng)
           ~node:t.self ~cat:"paxos" ~name:"compact"
           [ ("watermark", Trace.Int wm); ("snapshot", Trace.Int s_index) ]);
      let header =
        Marshal.to_string
          (Wal_trunc
             { watermark = wm; s_index; blob; t_epoch = t.epoch; t_members = t.members }
            : wal_record)
          []
      in
      Wal.truncate_to t.wal ~header ~drop:(wal_drop_record wm) (fun () -> ());
      t.hooks.on_compact ~watermark:wm
    | Some _ | None -> ()

(* Primary-side watermark: min applied index across live replicas (peers
   silent for an election timeout are presumed dead — they recover via
   the snapshot path), capped by the snapshot index since the snapshot is
   the only substitute for dropped entries. *)
let maybe_compact (t : t) =
  if t.cfg.compaction_threshold > 0 && is_primary t then
    match t.snapshot with
    | None -> ()
    | Some (s_index, _) ->
      let now = Engine.now t.eng in
      let wm =
        List.fold_left
          (fun acc n ->
            if n = t.self then acc
            else
              match Hashtbl.find_opt t.peer_applied n with
              | Some (a, heard) when now - heard <= t.cfg.election_timeout ->
                min acc a
              | Some _ | None -> acc)
          (min t.applied s_index) t.members
      in
      if wm - t.base >= t.cfg.compaction_threshold then begin
        cast t (Compact { cwatermark = wm });
        compact_to t wm
      end

(* Adopt a fresh application snapshot (from the checkpoint component) and
   disseminate it: every replica holding the blob can serve snapshot
   catch-up and survive the primary compacting past its own WAL. *)
let offer_snapshot (t : t) ~index ~blob =
  match t.snapshot with
  | Some (i, _) when i >= index -> ()
  | Some _ | None ->
    t.snapshot <- Some (index, blob);
    (let tr = trace t in
     if Trace.enabled tr then
       Trace.instant tr ~ts:(Engine.now t.eng) ~tid:(Engine.self_tid t.eng)
         ~node:t.self ~cat:"paxos" ~name:"snapshot_offer"
         [ ("index", Trace.Int index); ("bytes", Trace.Int (String.length blob)) ]);
    List.iter
      (fun n ->
        Fabric.send t.fabric ~bytes:(String.length blob) ~src:(ep t.self)
          ~dst:(ep n)
          (Epoched { e = t.epoch; inner = Snapshot_push { s_index = index; blob } }))
      (recipients t);
    maybe_compact t

(* Proposer-side durability marker: the (group) fsync covering [lo..hi]
   just hit the device.  Critical-path analysis splits the commit latency
   of each index into its fsync component vs. the consensus round that
   overlaps it. *)
let fsync_done t ~lo ~hi =
  let tr = trace t in
  if Trace.enabled tr then begin
    let ts = Engine.now t.eng and tid = Engine.self_tid t.eng in
    for index = lo to hi do
      Trace.instant tr ~ts ~tid ~node:t.self ~cat:"req" ~name:"fsync_done"
        [ ("index", Trace.Int index) ]
    done
  end

let submit_ix t value =
  if not (is_primary t) then None
  else begin
    let index = t.last_index + 1 in
    store_entry t ~index ~eview:t.view ~value;
    let aview = t.view in
    let tr = trace t in
    if Trace.enabled tr then begin
      let ts = Engine.now t.eng and tid = Engine.self_tid t.eng in
      Trace.instant tr ~ts ~tid ~node:t.self ~cat:"paxos" ~name:"propose"
        [ ("index", Trace.Int index); ("view", Trace.Int aview) ];
      Trace.async_begin tr ~ts ~tid ~id:index ~node:t.self ~cat:"paxos"
        ~name:"decide" [ ("index", Trace.Int index) ]
    end;
    cast t (Accept { aview; index; value; committed = t.committed });
    Queue.add (index, 1) t.open_batches;
    persist t (Wal_accept (aview, index, value)) (fun () ->
        fsync_done t ~lo:index ~hi:index;
        if t.view = aview && is_primary t then begin
          record_ack t ~index ~from:t.self;
          advance_commits t
        end);
    Some index
  end

let submit t value = submit_ix t value <> None

(* One consensus round for a whole batch: indices are assigned per value
   (so decisions, checkpoints and catch-up are oblivious to batching) but
   the broadcast, the acks and the WAL fsync are paid once. *)
let submit_batch_ix t values =
  match values with
  | [] -> None
  | [ v ] -> Option.map (fun i -> (i, i)) (submit_ix t v)
  | _ ->
    if not (is_primary t) then None
    else begin
      let aview = t.view in
      let lo = t.last_index + 1 in
      List.iteri (fun i value -> store_entry t ~index:(lo + i) ~eview:aview ~value) values;
      let hi = t.last_index in
      let tr = trace t in
      if Trace.enabled tr then begin
        let ts = Engine.now t.eng and tid = Engine.self_tid t.eng in
        Trace.instant tr ~ts ~tid ~node:t.self ~cat:"paxos" ~name:"propose_batch"
          [ ("lo", Trace.Int lo); ("size", Trace.Int (hi - lo + 1));
            ("view", Trace.Int aview) ];
        for index = lo to hi do
          Trace.instant tr ~ts ~tid ~node:t.self ~cat:"paxos" ~name:"propose"
            [ ("index", Trace.Int index); ("view", Trace.Int aview) ];
          Trace.async_begin tr ~ts ~tid ~id:index ~node:t.self ~cat:"paxos"
            ~name:"decide" [ ("index", Trace.Int index) ]
        done
      end;
      cast t (Accept_batch { aview; lo; values; committed = t.committed });
      Queue.add (hi, hi - lo + 1) t.open_batches;
      let records =
        List.mapi
          (fun i value ->
            Marshal.to_string (Wal_accept (aview, lo + i, value) : wal_record) [])
          values
      in
      Wal.append_batch_async t.wal records (fun () ->
          fsync_done t ~lo ~hi;
          if t.view = aview && is_primary t then begin
            for index = lo to hi do
              record_ack t ~index ~from:t.self
            done;
            advance_commits t
          end);
      Some (lo, hi)
    end

let submit_batch t values = submit_batch_ix t values <> None

(* Propose a membership change.  One reconfiguration in flight at a
   time: the next one must wait for activation, otherwise two pending
   configs would make the joint-quorum rule ambiguous. *)
let submit_reconfig (t : t) members' =
  if (not (is_primary t)) || t.pending_members <> None then None
  else if List.sort compare members' = List.sort compare t.members then None
  else begin
    let epoch = t.epoch + 1 in
    member_event t ~name:"reconfig_propose"
      [ ("epoch", Trace.Int epoch);
        ("members", Trace.Str (String.concat "," members')) ];
    (* Set the joint quorum before casting so the very Accept carrying
       the config entry already needs both majorities to commit. *)
    t.pending_members <- Some members';
    match submit_ix t (encode_config ~epoch ~members:members') with
    | Some i -> Some i
    | None ->
      t.pending_members <- None;
      None
  end

(* ------------------------------------------------------------------ *)
(* Leader election: the three steps of §5.1. *)

let log_tail t ~from_index =
  let rec collect idx acc =
    if idx > t.last_index then List.rev acc
    else
      match Hashtbl.find_opt t.log idx with
      | Some (v, value) -> collect (idx + 1) ((idx, v, value) :: acc)
      | None -> collect (idx + 1) acc
  in
  collect (max 1 from_index) []

let merge_tails t tails =
  (* Highest-view entry wins per index; highest committed wins overall. *)
  let best : (int, int * string) Hashtbl.t = Hashtbl.create 64 in
  let committed = ref t.committed in
  let absorb (tail, c) =
    if c > !committed then committed := c;
    List.iter
      (fun (idx, v, value) ->
        match Hashtbl.find_opt best idx with
        | Some (v', _) when v' >= v -> ()
        | Some _ | None -> Hashtbl.replace best idx (v, value))
      tail
  in
  absorb (log_tail t ~from_index:(t.committed + 1), t.committed);
  List.iter (fun (_, tail, c) -> absorb (tail, c)) tails;
  let entries =
    Hashtbl.fold (fun idx (v, value) acc -> (idx, v, value) :: acc) best []
  in
  (List.sort (fun (a, _, _) (b, _, _) -> compare a b) entries, !committed)

let install_entries t entries =
  List.iter (fun (idx, v, value) -> store_entry t ~index:idx ~eview:v ~value) entries

let become_backup t ~nview ~primary =
  let was_primary = is_primary t in
  t.view <- nview;
  if nview > t.max_view_seen then t.max_view_seen <- nview;
  t.primary <- primary;
  t.election <- None;
  t.last_heartbeat <- Engine.now t.eng;
  t.vc_defers <- 0;
  if was_primary && not (is_primary t) then fire_demote t

(* A primary that cannot hear any peer (no acks, no heartbeat acks) for
   election_timeout has lost its quorum — or sits on the sending side of
   an asymmetric partition, where backups still hear its heartbeats and
   never elect.  Stepping down breaks the stalemate: heartbeats stop, the
   backups time out and elect among themselves. *)
let abdicate (t : t) =
  t.primary <- None;
  t.abdications <- t.abdications + 1;
  (let tr = trace t in
   if Trace.enabled tr then
     Trace.instant tr ~ts:(Engine.now t.eng) ~tid:(Engine.self_tid t.eng)
       ~node:t.self ~cat:"paxos" ~name:"abdicate" [ ("view", Trace.Int t.view) ]);
  fire_demote t

let rec heartbeat_loop t =
  Engine.after t.eng ~group:t.group t.cfg.heartbeat_period (fun () ->
      if is_primary t then
        if
          List.length t.members > 1
          && Engine.now t.eng - t.last_peer_contact >= t.cfg.election_timeout
        then abdicate t
        else begin
          let tr = trace t in
          if Trace.enabled tr then
            Trace.instant tr ~ts:(Engine.now t.eng) ~tid:(Engine.self_tid t.eng)
              ~node:t.self ~cat:"paxos" ~name:"heartbeat"
              [ ("view", Trace.Int t.view); ("committed", Trace.Int t.committed) ];
          t.hb_seq <- t.hb_seq + 1;
          t.hb_sent <- Engine.now t.eng;
          t.hb_acks <- [ t.self ];
          (* A single-member configuration is its own quorum. *)
          maybe_grant_lease t;
          cast t (Heartbeat { hview = t.view; hseq = t.hb_seq; committed = t.committed });
          (* Retransmit the pending window.  An Accept lost in the fabric
             is never re-sent on its own, so the commit index would freeze
             at the hole while new proposals pile up behind it; re-casting
             a bounded window from committed+1 repairs the hole, and
             advance_commits then cascades through the already-acked
             tail.  Backups re-ack duplicates without re-persisting. *)
          let hi = min t.last_index (t.committed + 64) in
          for index = t.committed + 1 to hi do
            match Hashtbl.find_opt t.log index with
            | Some (_, value) ->
              cast t (Accept { aview = t.view; index; value; committed = t.committed })
            | None -> ()
          done;
          heartbeat_loop t
        end)

let become_primary (t : t) election =
  let entries, committed = merge_tails t election.tails in
  install_entries t entries;
  t.view <- election.eview;
  t.primary <- Some t.self;
  t.election <- None;
  t.view_changes <- t.view_changes + 1;
  t.last_election_duration <- Some (Engine.now t.eng - election.started_at);
  (let tr = trace t in
   if Trace.enabled tr then
     Trace.instant tr ~ts:(Engine.now t.eng) ~tid:(Engine.self_tid t.eng)
       ~node:t.self ~cat:"paxos" ~name:"view_change"
       [ ("view", Trace.Int t.view);
         ("election_ns", Trace.Int (Engine.now t.eng - election.started_at)) ]);
  (* Step 3: announce. *)
  cast t (New_view { nview = t.view; entries; committed });
  if committed > t.committed then begin
    t.committed <- committed;
    apply t
  end;
  (* Re-propose the uncommitted suffix under the new view. *)
  let rec repropose idx =
    if idx <= t.last_index then begin
      (match Hashtbl.find_opt t.log idx with
      | Some (_, value) ->
        Hashtbl.replace t.log idx (t.view, value);
        Hashtbl.replace t.acks idx [ t.self ];
        cast t (Accept { aview = t.view; index = idx; value; committed = t.committed })
      | None -> ());
      repropose (idx + 1)
    end
  in
  repropose (t.committed + 1);
  heartbeat_loop t

let rec start_election t =
  if (not (is_primary t)) && not t.fenced then begin
    let nview = t.max_view_seen + 1 in
    t.max_view_seen <- nview;
    let election =
      {
        eview = nview;
        oks = [ t.self ];
        tails = [];
        cand_oks = [ t.self ];
        phase = `Collect;
        started_at = Engine.now t.eng;
      }
    in
    t.election <- Some election;
    (let tr = trace t in
     if Trace.enabled tr then
       Trace.instant tr ~ts:(Engine.now t.eng) ~tid:(Engine.self_tid t.eng)
         ~node:t.self ~cat:"paxos" ~name:"election_start"
         [ ("view", Trace.Int nview) ]);
    cast t (View_change { nview; cand_committed = t.committed });
    (* Single-node "cluster": immediately win. *)
    check_election_progress t election;
    (* Stalled round: retry with a higher view. *)
    Engine.after t.eng ~group:t.group t.cfg.round_retry (fun () ->
        match t.election with
        | Some e when e.eview = nview -> start_election t
        | Some _ | None -> ())
  end

and check_election_progress t e =
  if e.phase = `Collect && quorum_reached t e.oks then begin
    e.phase <- `Candidate;
    (* Step 2: propose ourselves as primary candidate. *)
    cast t (Candidate { nview = e.eview });
    check_election_progress t e
  end
  else if e.phase = `Candidate && quorum_reached t e.cand_oks then
    become_primary t e

(* Election timer: backups that miss heartbeats for election_timeout
   (paper: 3 s) start an election, with per-node jitter to avoid duels. *)
let rec election_monitor t =
  let jitter = Rng.int t.rng (max 1 t.cfg.election_jitter) in
  let period = Time.ms 200 + jitter in
  Engine.after t.eng ~group:t.group period (fun () ->
      (if (not (is_primary t)) && t.election = None && not t.fenced then
         let silence = Engine.now t.eng - t.last_heartbeat in
         if silence >= t.cfg.election_timeout then start_election t);
      election_monitor t)

(* ------------------------------------------------------------------ *)
(* Message handling. *)

(* One bounded page of committed entries.  The requester re-requests from
   its new applied index after installing a page, so a lagging replica
   streams the tail chunk by chunk instead of triggering one unbounded
   message burst on the fabric. *)
let serve_entries (t : t) ~dst ~from_index =
  let chunk = max 1 t.cfg.catchup_chunk in
  let rec collect idx acc n =
    if idx > t.committed || n >= chunk then List.rev acc
    else
      match Hashtbl.find_opt t.log idx with
      | Some (_, value) -> collect (idx + 1) ((idx, value) :: acc) (n + 1)
      | None -> collect (idx + 1) acc n
  in
  let entries = collect (max (t.base + 1) from_index) [] 0 in
  t.catchup_served <- t.catchup_served + List.length entries;
  tell t dst
    (Catchup_resp { rview = t.view; primary = Option.value t.primary ~default:t.self; entries; committed = t.committed })

(* Two-tier catch-up: below the compaction base the log is gone, so the
   reply is the latest snapshot (streamed with its transfer cost), and
   the requester comes back for the suffix with an ordinary chunked
   request. *)
let send_catchup (t : t) ~dst ~from_index =
  match t.snapshot with
  | Some (s_index, blob) when from_index <= t.base && s_index >= from_index ->
    t.snapshots_served <- t.snapshots_served + 1;
    (let tr = trace t in
     if Trace.enabled tr then
       Trace.instant tr ~ts:(Engine.now t.eng) ~tid:(Engine.self_tid t.eng)
         ~node:t.self ~cat:"paxos" ~name:"snapshot_serve"
         [ ("index", Trace.Int s_index); ("to", Trace.Str dst) ]);
    Fabric.send t.fabric ~bytes:(String.length blob) ~src:(ep t.self)
      ~dst:(ep dst)
      (Epoched
         { e = t.epoch;
           inner =
             Snapshot_resp
               { s_index;
                 blob;
                 s_committed = t.committed;
                 s_epoch = t.epoch;
                 s_members = t.members
               }
         })
  | Some _ | None -> serve_entries t ~dst ~from_index

let handle (t : t) ~src msg =
  let from = src.Fabric.node in
  t.last_peer_contact <- Engine.now t.eng;
  Hashtbl.replace t.peer_heard from (Engine.now t.eng);
  match msg with
  | Accept { aview; index; value; committed } ->
    if aview = t.view && Some from = t.primary then begin
      let dup =
        match Hashtbl.find_opt t.log index with Some (v, _) -> v = aview | None -> false
      in
      store_entry t ~index ~eview:aview ~value;
      t.last_heartbeat <- Engine.now t.eng;
      (* A retransmitted Accept is already durable here: re-ack straight
         away (the first ack may have been the lost half) without writing
         a duplicate WAL record.  [dup_accept_drop] regresses this to the
         historical bug — swallow the duplicate without re-acking — for
         the Crane-MC self-check. *)
      if dup then begin
        if not debug_faults.dup_accept_drop then
          tell t from (Accept_ok { aview; index })
      end
      else
        persist t (Wal_accept (aview, index, value)) (fun () ->
            if t.view = aview then tell t from (Accept_ok { aview; index }));
      set_committed t (min committed index)
    end
    else if aview > t.view then
      (* Missed a view change: learn the new configuration. *)
      tell t from (Catchup_req { from_index = t.committed + 1 })
  | Accept_ok { aview; index } ->
    if aview = t.view && is_primary t then begin
      record_ack t ~index ~from;
      advance_commits t
    end
  | Accept_batch { aview; lo; values; committed } ->
    if aview = t.view && Some from = t.primary then begin
      let hi = lo + List.length values - 1 in
      (* A retransmitted batch is already durable here: re-ack straight
         away without writing duplicate WAL records. *)
      let dup =
        List.for_all
          (fun i ->
            match Hashtbl.find_opt t.log i with
            | Some (v, _) -> v = aview
            | None -> false)
          (List.init (hi - lo + 1) (fun i -> lo + i))
      in
      List.iteri (fun i value -> store_entry t ~index:(lo + i) ~eview:aview ~value) values;
      t.last_heartbeat <- Engine.now t.eng;
      if dup then tell t from (Accept_batch_ok { aview; lo; hi })
      else begin
        let records =
          List.mapi
            (fun i value ->
              Marshal.to_string (Wal_accept (aview, lo + i, value) : wal_record) [])
            values
        in
        (* Group commit: the whole batch becomes durable with one fsync. *)
        Wal.append_batch_async t.wal records (fun () ->
            if t.view = aview then tell t from (Accept_batch_ok { aview; lo; hi }))
      end;
      set_committed t (min committed hi)
    end
    else if aview > t.view then
      tell t from (Catchup_req { from_index = t.committed + 1 })
  | Accept_batch_ok { aview; lo; hi } ->
    if aview = t.view && is_primary t then begin
      for index = lo to hi do
        record_ack t ~index ~from
      done;
      advance_commits t
    end
  | Commit { cview; committed } ->
    if cview = t.view then begin
      t.last_heartbeat <- Engine.now t.eng;
      if committed > t.last_index then
        tell t from (Catchup_req { from_index = t.applied + 1 })
      else set_committed t committed
    end
  | Heartbeat { hview; hseq; committed } ->
    if hview > t.view then begin
      become_backup t ~nview:hview ~primary:(Some from);
      tell t from (Catchup_req { from_index = t.applied + 1 })
    end
    else if hview = t.view then begin
      t.last_heartbeat <- Engine.now t.eng;
      t.vc_defers <- 0;
      (* Ack so the primary knows it still has quorum contact; the
         applied index feeds its compaction watermark.  The ack is also a
         lease promise: record its instant, and refuse election votes
         until lease_duration past it (see View_change/Candidate). *)
      t.last_hb_acked <- Engine.now t.eng;
      tell t from (Heartbeat_ok { hview; hseq; h_applied = t.applied });
      if Some from <> t.primary then t.primary <- Some from;
      (if committed > t.committed then
         if committed > t.last_index then
           tell t from (Catchup_req { from_index = t.applied + 1 })
         else set_committed t committed);
      (* Heal application gaps: committed can overtake a hole (e.g. a
         rejoined replica that missed a range while current Accepts keep
         raising its last_index).  Heartbeats re-request the missing
         range until the log is contiguous again. *)
      if t.applied < t.committed && not (Hashtbl.mem t.log (t.applied + 1)) then
        tell t from (Catchup_req { from_index = t.applied + 1 })
    end
  | Heartbeat_ok { hview; hseq; h_applied } ->
    (* Peer contact already noted above; a current-view ack also reports
       how far the peer has applied, driving the compaction watermark. *)
    if hview = t.view && is_primary t then begin
      Hashtbl.replace t.peer_applied from (h_applied, Engine.now t.eng);
      (* Acks for an older round prove liveness but must not extend the
         lease from the newer round's anchor. *)
      if hseq = t.hb_seq && not (List.mem from t.hb_acks) then begin
        t.hb_acks <- from :: t.hb_acks;
        maybe_grant_lease t
      end;
      maybe_compact t
    end
  | View_change { nview; cand_committed } ->
    (* Lease disjointness, voter side: a node that acked a heartbeat
       within lease_duration helped grant a read lease anchored no later
       than that ack.  Voting for a new view inside the window could
       elect a writer while the old primary still serves lease reads, so
       the vote is withheld (the proposer's round_retry re-asks; an
       election only ever starts after election_timeout > lease_duration
       of silence, so a genuinely dead primary costs nothing here). *)
    if
      nview > t.max_view_seen
      && Engine.now t.eng - t.last_hb_acked >= t.cfg.lease_duration
    then begin
      t.max_view_seen <- nview;
      (* Back off our own competing election and defer to the caller —
         but only a few times in a row: past the bound the proposer is
         presumed unreachable (it would have won by now) and our own
         election timer keeps running. *)
      (match t.election with
      | Some e when e.eview < nview -> t.election <- None
      | Some _ | None -> ());
      if t.vc_defers < 3 then begin
        t.vc_defers <- t.vc_defers + 1;
        t.last_heartbeat <- Engine.now t.eng
      end;
      tell t from
        (View_change_ok
           { nview;
             tail = log_tail t ~from_index:(cand_committed + 1);
             committed = t.committed;
             vbase = t.base })
    end
  | View_change_ok { nview; tail; committed; vbase } -> (
    match t.election with
    | Some e when e.eview = nview && e.phase = `Collect ->
      if vbase > t.applied then begin
        (* The responder compacted past our applied prefix: its tail
           cannot contain the entries we are missing below its base, so
           winning this election would leave an unfillable hole.  Abort
           and snapshot-catch-up first; the election monitor retries. *)
        t.election <- None;
        tell t from (Catchup_req { from_index = t.applied + 1 })
      end
      else if not (List.mem from e.oks) then begin
        e.oks <- from :: e.oks;
        e.tails <- (from, tail, committed) :: e.tails;
        check_election_progress t e
      end
    | Some _ | None -> ())
  | Candidate { nview } ->
    (* Same lease guard as View_change: a candidacy vote inside the
       promise window could seat a new primary under a live lease. *)
    if
      nview >= t.max_view_seen
      && Engine.now t.eng - t.last_hb_acked >= t.cfg.lease_duration
    then begin
      t.max_view_seen <- nview;
      t.last_heartbeat <- Engine.now t.eng;
      tell t from (Candidate_ok { nview })
    end
  | Candidate_ok { nview } -> (
    match t.election with
    | Some e when e.eview = nview && e.phase = `Candidate ->
      if not (List.mem from e.cand_oks) then begin
        e.cand_oks <- from :: e.cand_oks;
        check_election_progress t e
      end
    | Some _ | None -> ())
  | New_view { nview; entries; committed } ->
    if nview >= t.view then begin
      install_entries t entries;
      become_backup t ~nview ~primary:(Some from);
      set_committed t committed
    end
  | Catchup_req { from_index } -> send_catchup t ~dst:from ~from_index
  | Catchup_resp { rview; primary; entries; committed } ->
    if rview >= t.view then begin
      if rview > t.view then become_backup t ~nview:rview ~primary:(Some primary);
      let applied_before = t.applied in
      List.iter
        (fun (idx, value) ->
          if not (Hashtbl.mem t.log idx) then
            t.catchup_installed <- t.catchup_installed + 1;
          store_entry t ~index:idx ~eview:rview ~value)
        entries;
      set_committed t committed;
      (* Continuation: the server pages its committed tail, so as long as
         this page made progress and more remains, pull the next chunk.
         No progress (an empty or useless page) ends the loop — the
         heartbeat gap-healer retries later rather than spinning. *)
      if entries <> [] && t.applied > applied_before && t.applied < committed
      then tell t from (Catchup_req { from_index = t.applied + 1 })
    end
  | Snapshot_push { s_index; blob } ->
    (match t.snapshot with
    | Some (i, _) when i >= s_index -> ()
    | Some _ | None -> t.snapshot <- Some (s_index, blob));
    (* A primary learning of a fresh checkpoint may now be able to
       advance the watermark. *)
    maybe_compact t
  | Snapshot_resp { s_index; blob; s_committed; s_epoch; s_members } ->
    if s_index > t.applied then begin
      (match t.snapshot with
      | Some (i, _) when i >= s_index -> ()
      | Some _ | None -> t.snapshot <- Some (s_index, blob));
      (* A joiner bootstrapping from a snapshot may never replay the
         Reconfig entries folded into the image: adopt the serving
         replica's configuration directly. *)
      if s_epoch > t.epoch then activate_config t ~epoch:s_epoch ~members:s_members;
      t.snapshots_installed <- t.snapshots_installed + 1;
      (let tr = trace t in
       if Trace.enabled tr then
         Trace.instant tr ~ts:(Engine.now t.eng) ~tid:(Engine.self_tid t.eng)
           ~node:t.self ~cat:"paxos" ~name:"snapshot_install"
           [ ("index", Trace.Int s_index);
             ("behind", Trace.Int (s_index - t.applied)) ]);
      t.hooks.install_snapshot ~index:s_index blob;
      (* Fast-forward: everything at or below the snapshot index is
         covered by the image, so jump applied/committed over it, drop
         the covered log prefix and persist the jump as a truncation
         header (a crash right after this recovers past the snapshot
         too, instead of replaying a history it no longer holds). *)
      if s_index > t.last_index then t.last_index <- s_index;
      if s_index > t.committed then t.committed <- s_index;
      t.applied <- s_index;
      compact_to t s_index;
      apply t;
      if s_committed > t.applied then
        tell t from (Catchup_req { from_index = t.applied + 1 })
    end
  | Compact { cwatermark } ->
    (* Primary-coordinated: only drop what the local snapshot can cover
       (compact_to re-checks); a replica without the snapshot keeps its
       log and compacts on a later round. *)
    if Some from = t.primary then compact_to t cwatermark
  | _ -> ()

(* Inbound epoch gate.  A fenced replica processes nothing.  A message
   stamped with our epoch or older by a non-member is the signature of a
   replica that was reconfigured out: drop it (with a reason on the
   receiver's timeline) and tell the sender authoritatively, so it
   fences itself instead of mounting doomed elections forever.  Strictly
   newer epochs are always let through — the sender knows a configuration
   we have yet to learn, and the log (or a snapshot) will teach us. *)
let receive (t : t) ~src msg =
  match msg with
  | _ when t.fenced -> ()
  | Epoched { e; inner } ->
    let from = src.Fabric.node in
    if e <= t.epoch && not (is_member t from) then begin
      t.fenced_drops <- t.fenced_drops + 1;
      Fabric.reject t.fabric ~src ~dst:(ep t.self) ~reason:"fenced_epoch";
      Fabric.send t.fabric ~src:(ep t.self) ~dst:src (Fenced { f_epoch = t.epoch })
    end
    else handle t ~src inner
  | Fenced { f_epoch } ->
    (* A strictly newer epoch is authoritative.  At our own epoch the
       sender and we share one configuration, so verify against it: only
       fence if that configuration really excludes us (guards a fresh
       joiner against a stale replica's mistaken verdict). *)
    if f_epoch > t.epoch || (f_epoch = t.epoch && not (is_member t t.self)) then
      fence_self t ~epoch:(max f_epoch t.epoch)
  | msg ->
    (* Unstamped traffic (older peers, tests poking the port): treat as
       current-epoch. *)
    handle t ~src msg

(* ------------------------------------------------------------------ *)

let recover_from_wal (t : t) =
  let absorb (e : Wal.entry) =
    (* A crash mid-append leaves a torn partial tail: discard it (and any
       record whose bytes no longer decode) — the stable prefix is the
       truth, catch-up refills the rest from live replicas. *)
    if e.Wal.torn then t.wal_torn_discarded <- t.wal_torn_discarded + 1
    else
      match (Marshal.from_string e.Wal.data 0 : wal_record) with
      | Wal_accept (v, idx, value) -> store_entry t ~index:idx ~eview:v ~value
      | Wal_commit idx -> if idx > t.committed then t.committed <- idx
      | Wal_trunc { watermark; s_index; blob; t_epoch; t_members } ->
        (* A crash between the header write and the physical prefix drop
           leaves both on disk: records already absorbed below the
           watermark are void (the snapshot covers them), so processing
           headers in log order makes recovery idempotent. *)
        for idx = t.base + 1 to watermark do
          Hashtbl.remove t.log idx
        done;
        if watermark > t.base then t.base <- watermark;
        if watermark > t.committed then t.committed <- watermark;
        if watermark > t.last_index then t.last_index <- watermark;
        if t_epoch > t.epoch then begin
          t.epoch <- t_epoch;
          t.members <- t_members
        end;
        (match t.snapshot with
        | Some (i, _) when i >= s_index -> ()
        | Some _ | None -> t.snapshot <- Some (s_index, blob))
      | exception _ -> t.wal_torn_discarded <- t.wal_torn_discarded + 1
  in
  List.iter absorb (Wal.entries t.wal);
  (* Accept records are written asynchronously, so the log can have holes
     below the recorded committed index (the marker write raced the
     crash).  Clamp committed to the contiguous prefix: catch-up re-learns
     the rest from live replicas, and checkpoint replay never sees a
     gap. *)
  let rec contiguous idx =
    if Hashtbl.mem t.log (idx + 1) then contiguous (idx + 1) else idx
  in
  t.committed <- min t.committed (contiguous t.base);
  (* The server restarts from a checkpoint and replays explicitly
     (get_committed_range), so recovered history is not re-applied —
     except for Reconfig entries, whose effect (the membership) lives in
     consensus state, not application state: re-activate the newest
     committed one, and re-learn any still-pending one. *)
  let rec rescan idx =
    if idx <= t.committed then begin
      (match Hashtbl.find_opt t.log idx with
      | Some (_, v) -> (
        match decode_config v with
        | Some (e, m) when e > t.epoch ->
          t.epoch <- e;
          t.members <- m
        | _ -> ())
      | None -> ());
      rescan (idx + 1)
    end
  in
  rescan (t.base + 1);
  refresh_pending_config t;
  t.applied <- t.committed

let create ?(config = default_config) ~fabric ~rng ~wal ~members ~node ~group () =
  (* Lease safety needs lease_duration < election_timeout: a voter's
     promise window must expire before any election it withheld a vote
     from can be forced through.  Clamp rather than trust the caller. *)
  let config =
    if config.lease_duration >= config.election_timeout then
      { config with lease_duration = config.election_timeout / 2 }
    else config
  in
  let t =
    {
      cfg = config;
      fabric;
      eng = Fabric.engine fabric;
      rng;
      wal;
      members;
      epoch = 0;
      pending_members = None;
      fenced = false;
      self = node;
      group;
      view = 0;
      primary = None;
      max_view_seen = 0;
      log = Hashtbl.create 1024;
      last_index = 0;
      committed = 0;
      applied = 0;
      acks = Hashtbl.create 1024;
      handlers = null_handlers;
      hooks = null_hooks;
      base = 0;
      snapshot = None;
      peer_applied = Hashtbl.create 8;
      peer_heard = Hashtbl.create 8;
      hb_seq = 0;
      hb_sent = Time.zero;
      hb_acks = [];
      lease_until = Time.zero;
      last_hb_acked = Time.zero;
      last_heartbeat = Time.zero;
      last_peer_contact = Time.zero;
      election = None;
      vc_defers = 0;
      started = false;
      decisions = 0;
      view_changes = 0;
      last_election_duration = None;
      abdications = 0;
      catchup_served = 0;
      catchup_installed = 0;
      wal_torn_discarded = 0;
      compactions = 0;
      snapshots_served = 0;
      snapshots_installed = 0;
      peak_log = 0;
      reconfigs = 0;
      fenced_drops = 0;
      leases_held = 0;
      open_batches = Queue.create ();
      batches_committed = 0;
      batch_sizes = Hashtbl.create 16;
      max_batch = 0;
    }
  in
  recover_from_wal t;
  Fabric.bind fabric (ep node) (fun ~src msg ->
      if Engine.group_alive t.eng group then receive t ~src msg);
  Engine.on_kill t.eng group (fun () -> Fabric.unbind fabric (ep node));
  t

let start t ?(as_primary = false) () =
  if not t.started then begin
    t.started <- true;
    t.last_heartbeat <- Engine.now t.eng;
    t.last_peer_contact <- Engine.now t.eng;
    (* Failure-detector grace: every member gets credit for "heard now"
       at start so a cold cluster doesn't suspect everyone at once. *)
    List.iter (fun n -> Hashtbl.replace t.peer_heard n (Engine.now t.eng)) t.members;
    let initial_primary =
      match t.members with first :: _ -> first | [] -> t.self
    in
    if as_primary || (t.view = 0 && initial_primary = t.self && t.committed = 0) then begin
      (* Fresh deployment: the first member bootstraps as primary. *)
      t.primary <- Some t.self;
      heartbeat_loop t
    end
    else if t.primary = None && t.view = 0 && initial_primary <> t.self then
      t.primary <- Some initial_primary
    (* else: a recovered node rejoins as a backup and waits for the
       current primary's heartbeat (or an election timeout). *);
    election_monitor t
  end

let get_committed_range t ~lo ~hi =
  let rec collect idx acc =
    if idx > hi || idx > t.committed then List.rev acc
    else
      match Hashtbl.find_opt t.log idx with
      | Some (_, value) -> collect (idx + 1) (value :: acc)
      | None -> List.rev acc
  in
  collect (max 1 lo) []
