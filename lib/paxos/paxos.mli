(** The PAXOS consensus component (paper §2.1, §5.1).

    A re-implementation of the well-known, concise viewstamped approach
    the paper builds on ("Paxos made practical", Mazieres): in the normal
    case only the primary invokes consensus, so a decision costs one round
    trip to a quorum plus a durable log write; in exceptional cases a
    three-step leader election resolves conflicts:

    + backups propose a new view (a standard two-phase consensus),
    + the proposer that wins the view proposes itself as primary
      candidate (another two-phase consensus, carrying the merged log),
    + the new leader announces itself as the new primary.

    Values are opaque strings (CRANE serializes socket-call records into
    them); each decided value carries a global, monotonically increasing
    index that checkpoints reference.  [on_commit] fires on {e every}
    replica, in index order, exactly once per index per incarnation.

    Failure detection follows the paper: the primary heartbeats every
    second; backups that miss heartbeats for three seconds elect a new
    leader (with per-node jitter to avoid duels). *)

type t

val paxos_port : int
(** Fabric port the consensus component binds on every member. *)

type debug_faults = {
  mutable hole_backfill_skip : bool;
      (** reintroduce the hole-backfill bug: applying is skipped when a
          catch-up fill does not advance the committed index, wedging the
          replica at [applied < committed] *)
  mutable dup_accept_drop : bool;
      (** reintroduce the duplicate-Accept bug: a retransmitted Accept for
          an already-logged entry is not re-acked, so a lost first ack
          stalls the round forever *)
}

val debug_faults : debug_faults
(** Global fault-injection switches for Crane-MC's mutation self-check —
    two historical paxos bugs kept reintroducible behind debug flags, as
    fixed targets the model checker must prove it can find.  Both default
    to [false]; only [crane_cli mc --mutate] sets them. *)

type config = {
  heartbeat_period : Crane_sim.Time.t;  (** default 1 s *)
  election_timeout : Crane_sim.Time.t;  (** default 3 s *)
  election_jitter : Crane_sim.Time.t;  (** extra per-node random delay, default 300 ms *)
  round_retry : Crane_sim.Time.t;  (** view-change retry backoff, default 500 ms *)
  compaction_threshold : int;
      (** entries above the compaction base before the primary coordinates
          a compaction round; [<= 0] disables compaction entirely.
          Default 1024 *)
  catchup_chunk : int;
      (** max committed entries per catch-up response page, default 256 *)
  suspect_timeout : Crane_sim.Time.t;
      (** failure detector: a member silent for this long is reported by
          {!suspects} (primary-side input to automated replacement).
          Default 5 s *)
  lease_duration : Crane_sim.Time.t;
      (** leader lease: how long a quorum of heartbeat acks entitles the
          primary to serve linearizable reads locally, anchored at the
          heartbeat's send instant.  Must be (and is clamped at creation
          to stay) shorter than [election_timeout], so the promise a
          backup makes by acking — withholding election votes for this
          long — always expires before an election it stalled can
          succeed.  Default 1.5 s *)
}

val default_config : config

val create :
  ?config:config ->
  fabric:Crane_net.Fabric.t ->
  rng:Crane_sim.Rng.t ->
  wal:Crane_storage.Wal.t ->
  members:Crane_net.Fabric.node list ->
  node:Crane_net.Fabric.node ->
  group:Crane_sim.Engine.group ->
  unit ->
  t
(** A consensus component for [node].  If [wal] holds records from a
    previous incarnation, the log and committed index are recovered from
    it.  All timers and message handling die with [group]. *)

val start : t -> ?as_primary:bool -> unit -> unit
(** Arm timers and (on the initial primary — by convention the first
    member — or when [as_primary] is set) start heartbeating. *)

val node : t -> Crane_net.Fabric.node
val view : t -> int
val is_primary : t -> bool

val primary : t -> Crane_net.Fabric.node option
(** This node's current belief about who leads. *)

val submit : t -> string -> bool
(** Propose a value.  Returns [false] (and does nothing) unless this node
    currently believes itself primary.  Decisions are reported through
    [handlers.on_commit]. *)

val submit_ix : t -> string -> int option
(** Like {!submit}, but returns the global index assigned to the value —
    the trace id request spans are keyed by. *)

val submit_batch : t -> string list -> bool
(** Propose several values as one consensus round (paper-faithful
    batching: CRANE already amortizes ordering per {e burst}, this
    amortizes the transport too).  Each value still gets its own global
    index — the decision sequence is exactly what [N] {!submit} calls in
    list order would have produced — but the whole batch costs one Accept
    broadcast, one ack per replica, and one group-commit WAL fsync
    ({!Crane_storage.Wal.append_batch_async}) instead of [N] of each.
    Returns [false] (and proposes nothing) unless this node currently
    believes itself primary, or if the list is empty. *)

val submit_batch_ix : t -> string list -> (int * int) option
(** Like {!submit_batch}, but returns the inclusive [(lo, hi)] index
    range assigned to the batch (values take consecutive indices in list
    order). *)

(** {2 Handlers}

    Both application callbacks are registered atomically, so a component
    can never run with a half-registered callback set (the old
    [on_commit]/[on_demote] post-hoc setters were order-sensitive). *)

type handlers = {
  on_commit : index:int -> string -> unit;
      (** Fires on {e every} replica, in index order, exactly once per
          index per incarnation — batched proposals are unpacked and
          delivered per entry. *)
  on_demote : unit -> unit;
      (** Fires whenever this node stops believing itself primary —
          deposed by a higher view, or abdicating after losing quorum
          contact.  The proxy uses it to shed clients so they retry
          against the new primary. *)
  on_config : epoch:int -> Crane_net.Fabric.node list -> unit;
      (** A new configuration activated on this replica: [epoch] and the
          full member list now in force.  Fires on every replica that
          applies (or snapshot-adopts) the Reconfig. *)
  on_fence : epoch:int -> unit;
      (** This replica was removed by configuration [epoch] (learned
          either by applying the Reconfig or from an authoritative
          rejection by a member): it has shed any primaryship and will
          neither vote nor serve again.  The hosting layer should retire
          the instance. *)
}

val set_handlers : t -> handlers -> unit
(** Install all callbacks (one registration per component). *)

(** {2 Live membership reconfiguration}

    Membership is a replicated value: a Reconfig is an ordinary log entry
    (a tagged [(epoch, members)] payload) that flows through the same
    Accept/ack/commit machinery as client commands.  From the moment the
    entry enters a replica's log until it activates, every quorum check
    (commits {e and} elections) requires a majority of both the old and
    the new configuration — joint consensus, so no two configurations can
    decide independently during the handover.  Activation happens when
    the entry is applied; from then on each replica stamps the new epoch
    on every message, and members drop (with an authoritative [Fenced]
    reply) stale-epoch traffic from nodes outside the configuration, so
    departed replicas can neither vote nor serve. *)

val submit_reconfig : t -> Crane_net.Fabric.node list -> int option
(** Propose replacing the membership with the given list (epoch + 1).
    Returns the log index of the Reconfig entry, or [None] if this node
    is not primary, another reconfiguration is still pending, or the list
    equals the current membership. *)

val members : t -> Crane_net.Fabric.node list
(** The membership of the current configuration epoch. *)

val epoch : t -> int
(** Current configuration epoch (0 = the boot-time configuration). *)

val fenced : t -> bool
(** True once this replica learned it was reconfigured out. *)

val reconfig_pending : t -> bool
(** True while a Reconfig entry sits in the log uncommitted (the joint
    quorum window). *)

val suspects : t -> Crane_net.Fabric.node list
(** Failure detector output: members not heard from for
    [suspect_timeout].  Meaningful on the primary (which hears every live
    member's heartbeat acks); always [] on backups and fenced nodes. *)

val is_config_value : string -> bool
(** True for Reconfig payloads.  Replay paths that feed
    {!get_committed_range} into the application must skip these — live
    delivery already does (a Reconfig activates instead of reaching
    [on_commit]). *)

(** {2 Leader leases (read fast path)}

    Every heartbeat round is numbered; when a quorum of the current
    configuration acks the round, the primary holds a read lease from
    the round's send instant for [config.lease_duration].  Acking is a
    promise: the backup refuses View_change/Candidate votes until the
    window passes, so no new primary can be seated (every election
    quorum intersects the acking quorum) while a lease is live.  The
    lease is revoked on demotion, fencing, abdication and configuration
    activation, and is never valid during a joint-quorum window. *)

val lease_valid : t -> bool
(** True iff this node may serve a linearizable read locally right now:
    unfenced primary, no reconfiguration pending, lease clock unexpired. *)

val lease_until : t -> Crane_sim.Time.t
(** Expiry instant of the current lease ([Time.zero] when none was ever
    granted or it was revoked). *)

val committed : t -> int
(** Highest committed index (0 = nothing yet). *)

val applied : t -> int

val get_committed_range : t -> lo:int -> hi:int -> string list
(** Committed values with indices in [lo..hi] (for checkpoint replay).
    Indices at or below {!base} are compacted away and yield []. *)

(** {2 Checkpoint-coordinated log compaction (§5.2)}

    The checkpoint component hands each application snapshot to consensus
    via {!offer_snapshot}; the receiving replica disseminates the blob to
    its peers.  The primary tracks how far every live replica has applied
    (piggybacked on heartbeat acks) and, once
    [min applied - base >= compaction_threshold], broadcasts a watermark:
    each replica drops log/ack entries at or below it and truncates its
    WAL to a crash-safe [(watermark, snapshot)] header plus suffix
    ({!Crane_storage.Wal.truncate_to}).  Catch-up below the base serves
    the snapshot instead of log entries — recovery of a long-lagging
    replica costs O(delta since checkpoint), not O(history). *)

val base : t -> int
(** Compaction base: highest index dropped from the log (0 = nothing
    compacted).  Always [<= applied]. *)

val snapshot : t -> (int * string) option
(** Latest application snapshot held: [(index, opaque blob)]. *)

val offer_snapshot : t -> index:int -> blob:string -> unit
(** Adopt a fresh application snapshot covering all entries [<= index]
    and push it to peers (bulk transfer cost charged through the fabric).
    Older offers than the held snapshot are ignored. *)

type compaction_hooks = {
  install_snapshot : index:int -> string -> unit;
      (** a snapshot arrived via catch-up and this replica is about to
          fast-forward past [index]: restore application state from the
          blob (no-op if an out-of-band restore already covered it) *)
  on_compact : watermark:int -> unit;
      (** the local log just compacted to [watermark]: the application
          may free its own bounded-history structures (output log) *)
}

val set_compaction_hooks : t -> compaction_hooks -> unit
(** Default hooks do nothing — plain consensus users (tests, benches)
    need not care. *)

(** {2 Statistics}

    One typed record behind a single accessor, replacing the former nine
    flat per-metric getters. *)

type stats = {
  decisions : int;  (** consensus decisions applied on this node *)
  view_changes : int;  (** elections this node won *)
  abdications : int;
      (** times this node stepped down as primary after hearing no peer
          for election_timeout — the asymmetric-partition escape hatch:
          backups on the far side of a one-way link still receive
          heartbeats and would otherwise never elect *)
  catchup_served : int;  (** committed entries shipped in catch-up responses *)
  catchup_installed : int;
      (** log entries first learned through catch-up responses (the
          recovery "range replayed" of §5.2) *)
  wal_torn_discarded : int;
      (** torn or undecodable WAL tail records discarded during recovery *)
  pending : int;
      (** proposed-but-uncommitted entries ([last_index - committed]): the
          depth of the consensus pipeline.  The proxy uses it as a
          backpressure signal for time bubbles — when commits stall, an
          unthrottled bubble request loop would append thousands of junk
          entries that the whole cluster must later replay *)
  last_election_duration : Crane_sim.Time.t option;
      (** wall-clock (virtual) time of the most recent successful election
          this node won, from first view-change message to new-view
          announcement — the paper's 1.97 ms figure *)
  batches_committed : int;
      (** proposed batches whose whole index range has committed *)
  events_per_batch : (int * int) list;
      (** histogram of committed batch sizes: [(size, batches)] pairs in
          ascending size order ({!submit} counts as size 1; sizes are
          clamped to {!histogram_cap} so the table is bounded — render
          the top bucket as "64+", it is a sum over all larger sizes) *)
  max_batch : int;
      (** largest committed batch actually observed, unclamped — the
          truth the capped histogram's top bucket hides *)
  compactions : int;  (** compaction rounds applied on this node *)
  snapshots_served : int;  (** catch-up requests answered with a snapshot *)
  snapshots_installed : int;
      (** snapshots this node installed via catch-up (fast-forwarding
          past its missing prefix) *)
  log_base : int;  (** current compaction base *)
  log_resident : int;  (** entries currently resident in the log table *)
  peak_log_resident : int;
      (** high-water mark of resident log entries — the boundedness
          metric BENCH_recovery.json plots against history length *)
  acks_resident : int;  (** entries currently resident in the ack table *)
  epoch : int;  (** configuration epoch in force on this node *)
  reconfigs : int;  (** configuration activations on this node *)
  fenced_drops : int;
      (** stale-epoch messages from non-members this node rejected *)
  leases_held : int;
      (** lease acquisitions (invalid-to-valid transitions) on this node
          — heartbeat-round renewals of a live lease do not count *)
}

val stats : t -> stats

val histogram_cap : int
(** bucket cap of {!stats.events_per_batch}: sizes at or above it fold
    into one top bucket (render it as ["<cap>+"]) *)
