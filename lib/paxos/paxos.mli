(** The PAXOS consensus component (paper §2.1, §5.1).

    A re-implementation of the well-known, concise viewstamped approach
    the paper builds on ("Paxos made practical", Mazieres): in the normal
    case only the primary invokes consensus, so a decision costs one round
    trip to a quorum plus a durable log write; in exceptional cases a
    three-step leader election resolves conflicts:

    + backups propose a new view (a standard two-phase consensus),
    + the proposer that wins the view proposes itself as primary
      candidate (another two-phase consensus, carrying the merged log),
    + the new leader announces itself as the new primary.

    Values are opaque strings (CRANE serializes socket-call records into
    them); each decided value carries a global, monotonically increasing
    index that checkpoints reference.  [on_commit] fires on {e every}
    replica, in index order, exactly once per index per incarnation.

    Failure detection follows the paper: the primary heartbeats every
    second; backups that miss heartbeats for three seconds elect a new
    leader (with per-node jitter to avoid duels). *)

type t

type config = {
  heartbeat_period : Crane_sim.Time.t;  (** default 1 s *)
  election_timeout : Crane_sim.Time.t;  (** default 3 s *)
  election_jitter : Crane_sim.Time.t;  (** extra per-node random delay, default 300 ms *)
  round_retry : Crane_sim.Time.t;  (** view-change retry backoff, default 500 ms *)
}

val default_config : config

val create :
  ?config:config ->
  fabric:Crane_net.Fabric.t ->
  rng:Crane_sim.Rng.t ->
  wal:Crane_storage.Wal.t ->
  members:Crane_net.Fabric.node list ->
  node:Crane_net.Fabric.node ->
  group:Crane_sim.Engine.group ->
  unit ->
  t
(** A consensus component for [node].  If [wal] holds records from a
    previous incarnation, the log and committed index are recovered from
    it.  All timers and message handling die with [group]. *)

val start : t -> ?as_primary:bool -> unit -> unit
(** Arm timers and (on the initial primary — by convention the first
    member — or when [as_primary] is set) start heartbeating. *)

val node : t -> Crane_net.Fabric.node
val view : t -> int
val is_primary : t -> bool

val primary : t -> Crane_net.Fabric.node option
(** This node's current belief about who leads. *)

val submit : t -> string -> bool
(** Propose a value.  Returns [false] (and does nothing) unless this node
    currently believes itself primary.  Decisions are reported through
    {!on_commit}. *)

val on_commit : t -> (index:int -> string -> unit) -> unit
(** Register the application callback (one per component). *)

val on_demote : t -> (unit -> unit) -> unit
(** Register a callback fired whenever this node stops believing itself
    primary — deposed by a higher view, or abdicating after losing quorum
    contact.  The proxy uses it to shed clients so they retry against the
    new primary (one per component). *)

val committed : t -> int
(** Highest committed index (0 = nothing yet). *)

val applied : t -> int

val get_committed_range : t -> lo:int -> hi:int -> string list
(** Committed values with indices in [lo..hi] (for checkpoint replay). *)

val decisions : t -> int
(** Number of consensus decisions reached on this node. *)

val view_changes : t -> int

val pending : t -> int
(** Proposed-but-uncommitted entries ([last_index - committed]): the depth
    of the consensus pipeline.  The proxy uses it as a backpressure signal
    for time bubbles — when commits stall (lossy network, lost quorum) an
    unthrottled bubble request loop would append thousands of junk entries
    that the whole cluster must later replay. *)

val last_election_duration : t -> Crane_sim.Time.t option
(** Wall-clock (virtual) time of the most recent successful election this
    node won, from first view-change message to new-view announcement —
    the paper's 1.97 ms figure. *)

val abdications : t -> int
(** Times this node stepped down as primary after hearing no peer for
    election_timeout — the asymmetric-partition escape hatch: backups on
    the far side of a one-way link still receive heartbeats and would
    otherwise never elect. *)

val catchup_served : t -> int
(** Committed entries this node shipped in catch-up responses. *)

val catchup_installed : t -> int
(** Log entries this node first learned through catch-up responses
    (the recovery "range replayed" of §5.2). *)

val wal_torn_discarded : t -> int
(** Torn or undecodable WAL tail records discarded during recovery. *)
