module Time = Crane_sim.Time
module Engine = Crane_sim.Engine
module Trace = Crane_trace.Trace

type dthread = {
  dtid : int;
  dname : string;
  mutable parked : (unit -> bool) option;
      (* Waker armed while the thread waits to become the run-queue head. *)
  mutable lane : int; (* which run queue the thread currently lives in *)
}

(* One run queue.  The classic PARROT scheduler is the 1-lane case; the
   dependency-aware delivery layer creates one extra lane per pool worker
   and re-lanes a thread at signal time, so commands with disjoint
   conflict footprints round-robin independently instead of stalling
   behind each other's compute segments.  Lanes are purely a performance
   placement: admission (in the vhost) never lets two conflicting
   commands execute concurrently, whatever their lanes. *)
type lane = {
  mutable lq : dthread list; (* head = turn holder of this lane *)
  mutable lsig : int; (* insertion point for signalled threads *)
}

type t = {
  eng : Engine.t;
  turn_cost : Time.t;
  idle_period : Time.t;
  lanes : lane array; (* lane 0 hosts the idle thread and fresh spawns *)
  waitq : (int, dthread Queue.t) Hashtbl.t;
  threads : (int, dthread) Hashtbl.t; (* engine tid -> dthread *)
  mutable clock : int;
  mutable next_obj : int;
  mutable gate : (unit -> unit) option;
  mutable tick_hooks : (int * (unit -> unit)) list;
  mutable switches : int;
  mutable stopped : bool;
  mutable label : string; (* replica name for trace attribution *)
}

let engine t = t.eng
let clock t = t.clock
let context_switches t = t.switches
let set_gate t gate = t.gate <- Some gate
let set_label t node = t.label <- node
let lane_count t = Array.length t.lanes
let lane_of t th = t.lanes.(th.lane)

let run_queue_length t =
  Array.fold_left (fun acc l -> acc + List.length l.lq) 0 t.lanes

let run_queue_names t =
  List.concat_map
    (fun l -> List.map (fun th -> th.dname) l.lq)
    (Array.to_list t.lanes)
let new_obj t =
  let o = t.next_obj in
  t.next_obj <- o + 1;
  o

let me t =
  match Hashtbl.find_opt t.threads (Engine.self_tid t.eng) with
  | Some th -> th
  | None -> failwith "Dmt: calling thread is not registered with this scheduler"

let is_thread t = Hashtbl.mem t.threads (Engine.self_tid t.eng)
let current_lane t = if is_thread t then (me t).lane else 0

(* Sanitizer hook: stream a "sync" event through the engine's recorder. *)
let ev t name args =
  let tr = Engine.trace t.eng in
  if Trace.enabled tr then
    Trace.instant tr ~ts:(Engine.now t.eng) ~tid:(Engine.self_tid t.eng)
      ~node:t.label ~cat:"sync" ~name args

let obj_args ~id ~kind ~label =
  [ ("obj", Trace.Int id); ("kind", Trace.Str kind); ("label", Trace.Str label) ]

let is_head t th = match (lane_of t th).lq with h :: _ -> h == th | [] -> false

(* Wake a lane's head if it is parked waiting for the turn. *)
let wake_head t lane =
  match t.lanes.(lane).lq with
  | [] -> ()
  | h :: _ -> (
    match h.parked with
    | Some wake ->
      h.parked <- None;
      ignore (wake ())
    | None -> ())

(* Parking is where PARROT's serialization cost lives: the span from
   park to resumption is the round-robin turn wait the paper's overhead
   analysis attributes to DMT. *)
let park t th =
  t.switches <- t.switches + 1;
  let tr = Engine.trace t.eng in
  let traced = Trace.enabled tr in
  if traced then
    Trace.span_begin tr ~ts:(Engine.now t.eng) ~tid:th.dtid ~node:t.label
      ~cat:"dmt" ~name:"turn_wait"
      [ ("runq", Trace.Int (List.length (lane_of t th).lq)) ];
  Engine.suspend t.eng (fun wake -> th.parked <- Some wake);
  if traced then
    Trace.span_end tr ~ts:(Engine.now t.eng) ~tid:th.dtid ~node:t.label
      ~cat:"dmt" ~name:"turn_wait" [];
  assert (is_head t th)

let get_turn t =
  let th = me t in
  if not (is_head t th) then park t th

(* Advance the logical clock by one and fire due deterministic timeouts
   (soft barriers). *)
let tick t =
  t.clock <- t.clock + 1;
  match t.tick_hooks with
  | [] -> ()
  | hooks ->
    let due, later = List.partition (fun (d, _) -> d <= t.clock) hooks in
    t.tick_hooks <- later;
    List.iter (fun (_, f) -> f ()) due

let at_tick t deadline f = t.tick_hooks <- t.tick_hooks @ [ (deadline, f) ]

(* Bulk clock advance: used when the idle thread is alone in the run
   queue and drains a whole time bubble at once — equivalent to that many
   idle rotations, since no other thread could interleave. *)
let advance_clock t n =
  for _ = 1 to n do
    tick t
  done

let rotate t lane =
  let l = t.lanes.(lane) in
  match l.lq with
  | [] -> ()
  | h :: rest -> l.lq <- rest @ [ h ]

let put_turn t =
  let th = me t in
  assert (is_head t th);
  if t.turn_cost > 0 then Engine.sleep t.eng t.turn_cost;
  rotate t th.lane;
  (lane_of t th).lsig <- 1;
  tick t;
  wake_head t th.lane

(* Remove the head (the caller) from the run queue and hand the turn over
   without rotating the caller to the tail. *)
let leave_runq t th =
  assert (is_head t th);
  let l = lane_of t th in
  l.lq <- List.tl l.lq;
  l.lsig <- 1;
  tick t;
  wake_head t th.lane

let waitq_of t obj =
  match Hashtbl.find_opt t.waitq obj with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.add t.waitq obj q;
    q

let wait t ~obj =
  let th = me t in
  Queue.add th (waitq_of t obj);
  leave_runq t th;
  park t th

(* Insert a signalled thread just behind a lane's head (and behind
   previously signalled ones), so it takes the turn right after the
   signaller. *)
let insert_at t lane pos th =
  let l = t.lanes.(lane) in
  let rec go i = function
    | rest when i = pos -> th :: rest
    | x :: rest -> x :: go (i + 1) rest
    | [] -> [ th ]
  in
  l.lq <- go 0 l.lq

(* [?lane] re-lanes the woken waiter: the dependency-aware gate signals a
   worker into the lane of its command's conflict footprint.  Without it,
   the waiter joins the signaller's lane (the 1-lane behaviour).  A
   cross-lane insert can land at the head of an idle lane, where nobody
   would ever rotate to it — wake it directly. *)
let signal ?lane t ~obj =
  match Hashtbl.find_opt t.waitq obj with
  | None -> ()
  | Some q -> (
    match Queue.take_opt q with
    | None -> ()
    | Some th ->
      let target =
        match lane with
        | Some l -> l mod Array.length t.lanes
        | None -> if is_thread t then (me t).lane else 0
      in
      th.lane <- target;
      let l = t.lanes.(target) in
      insert_at t target l.lsig th;
      l.lsig <- l.lsig + 1;
      if is_head t th then (
        match th.parked with
        | Some wake ->
          th.parked <- None;
          ignore (wake ())
        | None -> ()))

(* Migrate the calling thread (which must hold its lane's turn) to
   [lane].  [signal ?lane] re-lanes a parked waiter, but a worker whose
   command bytes were pushed before it ever blocked never parks — it
   would run the whole command on whatever lane it happened to occupy.
   The delivery layer calls this at the execute-window boundary to put
   the worker on its command's assigned lane.  All inputs are
   deterministic state under the turn, so placement is replayable. *)
let relane t ~lane =
  let th = me t in
  let target = lane mod Array.length t.lanes in
  if target <> th.lane then begin
    assert (is_head t th);
    let l = t.lanes.(target) in
    leave_runq t th;
    th.lane <- target;
    insert_at t target l.lsig th;
    l.lsig <- l.lsig + 1;
    if not (is_head t th) then park t th
  end

let signal_all ?lane t ~obj =
  match Hashtbl.find_opt t.waitq obj with
  | None -> ()
  | Some q ->
    while not (Queue.is_empty q) do
      signal ?lane t ~obj
    done

let waiters t ~obj =
  match Hashtbl.find_opt t.waitq obj with
  | None -> 0
  | Some q -> Queue.length q

let block_external t f =
  let th = me t in
  get_turn t;
  leave_runq t th;
  let result = f () in
  (* Rejoin in completion order: this is where network-arrival
     nondeterminism re-enters a plain PARROT execution. *)
  let l = lane_of t th in
  l.lq <- l.lq @ [ th ];
  if is_head t th then () (* we are running already; just continue *);
  result

(* Thread creation is itself a synchronization operation: the child's
   run-queue insertion point must be decided under the turn (when spawning
   from a DMT thread), or replicas could insert it at divergent positions
   and their schedules would split.  From outside the scheduler (server
   bootstrap) insertions follow deterministic program order directly. *)
let spawn t ~name body =
  let tid =
    Engine.spawn_with_tid t.eng ~name (fun () ->
        let cleanup () =
          let th = me t in
          get_turn t;
          ev t "thread_exit" [];
          leave_runq t th;
          Hashtbl.remove t.threads th.dtid
        in
        match body () with () -> cleanup () | exception e -> cleanup (); raise e)
  in
  let parent_lane =
    match Hashtbl.find_opt t.threads (Engine.self_tid t.eng) with
    | Some p -> p.lane
    | None -> 0
  in
  let th = { dtid = tid; dname = name; parked = None; lane = parent_lane } in
  Hashtbl.replace t.threads tid th;
  if Hashtbl.mem t.threads (Engine.self_tid t.eng) then begin
    (* Spawned from a registered DMT thread: schedule the insertion. *)
    get_turn t;
    let l = lane_of t th in
    l.lq <- l.lq @ [ th ];
    put_turn t
  end
  else begin
    let l = lane_of t th in
    l.lq <- l.lq @ [ th ]
  end

let run_gate t = match t.gate with Some g -> g () | None -> ()

(* The idle thread (§3.1): keeps the run queue non-empty and the logical
   clock ticking when all server threads block, and runs CRANE's gate so
   admissions progress while the server computes.  Paced so that an idle
   server does not flood the event queue. *)
let idle_loop t =
  let th = me t in
  let rec loop () =
    if not t.stopped then begin
      get_turn t;
      if t.stopped then leave_runq t th
      else begin
        run_gate t;
        let alone = run_queue_length t = 1 in
        put_turn t;
        if alone && t.gate = None then Engine.sleep t.eng t.idle_period;
        loop ()
      end
    end
  in
  loop ()

let stop t = t.stopped <- true

let create ?(turn_cost = Time.ns 150) ?(idle_period = Time.us 10) ?(lanes = 1)
    eng =
  let t =
    {
      eng;
      turn_cost;
      idle_period;
      lanes = Array.init (max 1 lanes) (fun _ -> { lq = []; lsig = 1 });
      waitq = Hashtbl.create 64;
      threads = Hashtbl.create 64;
      clock = 0;
      next_obj = 1;
      gate = None;
      tick_hooks = [];
      switches = 0;
      stopped = false;
      label = "";
    }
  in
  spawn t ~name:"dmt-idle" (fun () -> idle_loop t);
  t

(* ------------------------------------------------------------------ *)
(* Pthreads wrappers (paper Figure 9). *)

module Mutex = struct
  type m = { t : t; mobj : int; mlabel : string; mutable locked : bool }

  let create ?name t =
    let mobj = new_obj t in
    let mlabel = match name with Some n -> n | None -> Printf.sprintf "mutex#%d" mobj in
    { t; mobj; mlabel; locked = false }

  let obj m = m.mobj
  let args m = obj_args ~id:m.mobj ~kind:"mutex" ~label:m.mlabel

  let lock m =
    get_turn m.t;
    run_gate m.t;
    while m.locked do
      wait m.t ~obj:m.mobj
    done;
    m.locked <- true;
    ev m.t "acquire" (args m);
    put_turn m.t

  let unlock m =
    get_turn m.t;
    if not m.locked then invalid_arg "Dmt.Mutex.unlock: not locked";
    m.locked <- false;
    ev m.t "release" (args m);
    signal m.t ~obj:m.mobj;
    put_turn m.t

  (* Relock without gate or put_turn: the tail of cond_wait. *)
  let relock_holding_turn m =
    while m.locked do
      wait m.t ~obj:m.mobj
    done;
    m.locked <- true;
    ev m.t "acquire" (args m)
end

module Cond = struct
  type c = { t : t; cobj : int; clabel : string }

  let create ?name t =
    let cobj = new_obj t in
    let clabel = match name with Some n -> n | None -> Printf.sprintf "cond#%d" cobj in
    { t; cobj; clabel }

  let args c = obj_args ~id:c.cobj ~kind:"cond" ~label:c.clabel

  let wait c (mu : Mutex.m) =
    get_turn c.t;
    if not mu.Mutex.locked then invalid_arg "Dmt.Cond.wait: mutex not held";
    ev c.t "cond_wait"
      (args c
      @ [ ("mutex", Trace.Int mu.Mutex.mobj); ("mutex_label", Trace.Str mu.Mutex.mlabel) ]);
    mu.Mutex.locked <- false;
    ev c.t "release" (Mutex.args mu);
    signal c.t ~obj:(Mutex.obj mu);
    wait c.t ~obj:c.cobj;
    ev c.t "cond_woken" (args c);
    Mutex.relock_holding_turn mu;
    put_turn c.t

  let signal c =
    get_turn c.t;
    ev c.t "cond_signal" (args c);
    signal c.t ~obj:c.cobj;
    put_turn c.t

  let broadcast c =
    get_turn c.t;
    ev c.t "cond_signal" (args c);
    signal_all c.t ~obj:c.cobj;
    put_turn c.t
end

module Rwlock = struct
  type rw = {
    t : t;
    robj : int;
    rlabel : string;
    mutable readers : int;
    mutable writer : bool;
  }

  let create ?name t =
    let robj = new_obj t in
    let rlabel = match name with Some n -> n | None -> Printf.sprintf "rwlock#%d" robj in
    { t; robj; rlabel; readers = 0; writer = false }

  let args l = obj_args ~id:l.robj ~kind:"rwlock" ~label:l.rlabel

  let rdlock l =
    get_turn l.t;
    run_gate l.t;
    while l.writer do
      wait l.t ~obj:l.robj
    done;
    l.readers <- l.readers + 1;
    ev l.t "acquire_rd" (args l);
    put_turn l.t

  let wrlock l =
    get_turn l.t;
    run_gate l.t;
    while l.writer || l.readers > 0 do
      wait l.t ~obj:l.robj
    done;
    l.writer <- true;
    ev l.t "acquire" (args l);
    put_turn l.t

  let unlock l =
    get_turn l.t;
    if l.writer then l.writer <- false
    else if l.readers > 0 then l.readers <- l.readers - 1
    else invalid_arg "Dmt.Rwlock.unlock: not held";
    ev l.t "release" (args l);
    signal_all l.t ~obj:l.robj;
    put_turn l.t
end

module Sem = struct
  type s = { t : t; sobj : int; slabel : string; mutable count : int }

  let create ?name t count =
    let sobj = new_obj t in
    let slabel = match name with Some n -> n | None -> Printf.sprintf "sem#%d" sobj in
    { t; sobj; slabel; count }

  let args s = obj_args ~id:s.sobj ~kind:"sem" ~label:s.slabel

  let post s =
    get_turn s.t;
    s.count <- s.count + 1;
    ev s.t "sem_post" (args s);
    signal s.t ~obj:s.sobj;
    put_turn s.t

  let wait s =
    get_turn s.t;
    run_gate s.t;
    while s.count = 0 do
      wait s.t ~obj:s.sobj
    done;
    s.count <- s.count - 1;
    ev s.t "sem_wait" (args s);
    put_turn s.t
end

module Barrier = struct
  type b = { t : t; bobj : int; blabel : string; n : int; mutable arrived : int }

  let create ?name t n =
    let bobj = new_obj t in
    let blabel = match name with Some nm -> nm | None -> Printf.sprintf "barrier#%d" bobj in
    { t; bobj; blabel; n; arrived = 0 }

  let args b = obj_args ~id:b.bobj ~kind:"barrier" ~label:b.blabel

  (* Same event discipline as the Pthread barrier: all "barrier_arrive"
     of a round precede every "barrier_leave", giving the sanitizer its
     all-to-all edges. *)
  let wait b =
    get_turn b.t;
    ev b.t "barrier_arrive" (args b);
    b.arrived <- b.arrived + 1;
    if b.arrived >= b.n then begin
      b.arrived <- 0;
      signal_all b.t ~obj:b.bobj;
      ev b.t "barrier_leave" (args b)
    end
    else begin
      wait b.t ~obj:b.bobj;
      ev b.t "barrier_leave" (args b)
    end;
    put_turn b.t
end

(* ------------------------------------------------------------------ *)
(* Soft barriers (performance hints, §7.4). *)

module Soft_barrier = struct
  type sb = {
    t : t;
    n : int;
    timeout_ticks : int;
    mutable gathering : dthread list;
    mutable armed : bool;
  }

  let create t ~n ~timeout_ticks = { t; n; timeout_ticks; gathering = []; armed = false }

  (* Re-queue a gathered batch: each thread rejoins the tail of its own
     lane, and any lane whose head the insertion became (it was idle) is
     woken — in the 1-lane case that is exactly the old
     [runq <- runq @ batch; wake_head]. *)
  let requeue t batch =
    List.iter
      (fun th ->
        let l = lane_of t th in
        let was_empty = l.lq = [] in
        l.lq <- l.lq @ [ th ];
        if was_empty then wake_head t th.lane)
      batch

  let release sb =
    (match sb.gathering with
    | [] -> ()
    | batch ->
      sb.gathering <- [];
      requeue sb.t batch;
      wake_head sb.t 0);
    sb.armed <- false

  let wait sb =
    let t = sb.t in
    let th = me t in
    get_turn t;
    sb.gathering <- sb.gathering @ [ th ];
    (if List.length sb.gathering >= sb.n then begin
       (* Full house: put everybody (including us) back at the tail. *)
       let batch = sb.gathering in
       sb.gathering <- [];
       sb.armed <- false;
       leave_runq t th;
       requeue t batch;
       wake_head t th.lane;
       park t th
     end
     else begin
       if not sb.armed then begin
         sb.armed <- true;
         at_tick t (t.clock + sb.timeout_ticks) (fun () -> release sb)
       end;
       leave_runq t th;
       park t th
     end);
    (* Hand the turn over immediately, like every synchronization wrapper:
       otherwise the first released thread starts computing with the turn
       in hand and staggers the whole lined-up batch behind its first
       segment. *)
    put_turn t
end
