(** PARROT: the deterministic multithreading scheduler (paper §3.1).

    One scheduler instance per server process.  Registered threads pass a
    global turn around in round-robin order: only the thread at the head
    of the run queue may perform a synchronization operation and mutate
    the queues.  Each turn handoff ticks the {e logical clock}; given the
    same inputs admitted at the same logical clocks, the entire
    multithreaded execution is deterministic.

    The four primitives of the paper's Figure 8 — {!get_turn},
    {!put_turn}, {!wait}, {!signal} — are exposed so CRANE's socket-call
    wrappers (paper Figures 10–11) can be built on top, as are the
    Pthreads wrappers of Figure 9 ({!Mutex}, {!Cond}, ...).

    Two escape hatches reproduce PARROT behaviours the evaluation depends
    on:
    - {!block_external} is PARROT's nondeterministic blocking-socket-call
      path (§3.1): the thread leaves the run queue around an engine-level
      blocking action and rejoins in completion order, preserving network
      timing nondeterminism when CRANE is {e not} layered on top;
    - {!Soft_barrier} is the soft-barrier performance hint (§7.4): it
      lines up compute phases by parking arrivals off the run queue until
      [n] threads gather or a deterministic logical-clock timeout expires. *)

type t

val create :
  ?turn_cost:Crane_sim.Time.t -> ?idle_period:Crane_sim.Time.t ->
  ?lanes:int -> Crane_sim.Engine.t -> t
(** [turn_cost] is virtual time charged per turn handoff (default 150 ns:
    PARROT's optimized spin-then-block handoff); [idle_period] paces the
    internal idle thread when the run queue is otherwise empty (default
    10 us, the paper's usleep in Figure 10).  [lanes] (default 1) is the
    number of independent run queues: the 1-lane scheduler is classic
    PARROT; the dependency-aware delivery layer adds one lane per pool
    worker so footprint-disjoint commands round-robin independently.
    Lane 0 hosts the idle thread and threads spawned from outside the
    scheduler. *)

val lane_count : t -> int

val current_lane : t -> int
(** Lane of the calling thread (0 for unregistered threads).  A thread's
    lane changes when it is signalled with {!signal}[ ?lane]. *)

val engine : t -> Crane_sim.Engine.t

val spawn : t -> name:string -> (unit -> unit) -> unit
(** Register and start a thread under this scheduler.  The thread enters
    the run queue immediately and leaves it when its body returns. *)

val clock : t -> int
(** Current logical clock (total turn handoffs so far). *)

val context_switches : t -> int
(** Times a thread parked waiting for its turn (the PARROT-side number in
    the MediaTomb context-switch comparison of §7.3). *)

val set_label : t -> string -> unit
(** Replica name used to attribute this scheduler's trace events (DMT
    [turn_wait] spans) to a process in the flight recorder. *)

val set_gate : t -> (unit -> unit) -> unit
(** Install CRANE's [check_add_timebubble] hook (Figure 10).  It runs
    with the turn held: in every {!Mutex.lock} and on every idle-thread
    cycle.  It may block (virtual time passes, the logical clock does
    not), which is how "tick only when the PAXOS sequence is non-empty"
    is enforced. *)

val stop : t -> unit
(** Shut the idle thread down (end of an experiment). *)

(** {1 Scheduler primitives (paper Figure 8)} *)

val get_turn : t -> unit
(** Block until the calling thread is the head of the run queue. *)

val put_turn : t -> unit
(** Rotate to the tail, tick the logical clock, wake the next head. *)

val advance_clock : t -> int -> unit
(** Bulk-tick the logical clock (deterministic timeouts included).  Only
    sound while the caller is the sole runnable thread — PARROT's
    rapid-exhaustion mechanism for time bubbles (§3.1, §4). *)

val new_obj : t -> int
(** Allocate a wait-queue object (mutex, condvar, socket descriptor...).
    Ids start at 1: id 0 is reserved for the turn pseudo-lock the
    runtime's shared-cell wrappers report to the sanitizer. *)

val is_thread : t -> bool
(** Whether the calling engine thread is registered with this scheduler.
    Runtime wrappers use it to skip turn brackets on accesses from
    outside the DMT world (bootstrap, checkpointing). *)

val wait : t -> obj:int -> unit
(** Move the calling thread (which must hold the turn) to the wait queue
    of [obj]; returns holding the turn once signalled and at the head. *)

val signal : ?lane:int -> t -> obj:int -> unit
(** Move one waiter of [obj] just behind the current head, so it becomes
    the head after the signaller's {!put_turn}.  No-op without waiters.
    Requires the turn.  [?lane] re-lanes the waiter into that run queue
    instead of the signaller's (the dependency-aware gate routes a worker
    to the lane of its command's conflict footprint); a waiter landing at
    the head of an idle lane is woken directly. *)

val signal_all : ?lane:int -> t -> obj:int -> unit

val relane : t -> lane:int -> unit
(** Migrate the calling thread (which must hold its lane's turn) into
    [lane]'s run queue, just behind its head; returns holding that
    lane's turn.  No-op when already there.  Complements [signal ?lane]:
    a worker whose command bytes were pushed before it ever parked is
    never re-laned by the signal and must move itself at the
    execute-window boundary. *)

val waiters : t -> obj:int -> int

val block_external : t -> (unit -> 'a) -> 'a
(** PARROT's nondeterministic blocking call path: leave the run queue,
    run [f] (which may block on the engine), rejoin at the tail in
    completion order. *)

val run_queue_length : t -> int

val run_queue_names : t -> string list
(** Names of run-queue members, head first (debugging and tests). *)

(** {1 Pthreads wrappers (paper Figure 9)} *)

module Mutex : sig
  type m

  val create : ?name:string -> t -> m
  val lock : m -> unit
  val unlock : m -> unit
  val obj : m -> int
end

module Cond : sig
  type c

  val create : ?name:string -> t -> c
  val wait : c -> Mutex.m -> unit
  val signal : c -> unit
  val broadcast : c -> unit
end

module Rwlock : sig
  type rw

  val create : ?name:string -> t -> rw
  val rdlock : rw -> unit
  val wrlock : rw -> unit
  val unlock : rw -> unit
end

module Sem : sig
  type s

  val create : ?name:string -> t -> int -> s
  val post : s -> unit
  val wait : s -> unit
end

module Barrier : sig
  type b

  val create : ?name:string -> t -> int -> b

  val wait : b -> unit
  (** Block until [n] registered threads arrive; all released together
      (deterministic release order: the wait-queue FIFO). *)
end

(** {1 Soft-barrier performance hints (paper §7.4)} *)

module Soft_barrier : sig
  type sb

  val create : t -> n:int -> timeout_ticks:int -> sb
  (** Line up [n] computations; release early after [timeout_ticks]
      logical clocks so the hint "times out deterministically and
      tolerates different numbers of concurrent requests". *)

  val wait : sb -> unit
end
