(** Choice points for systematic schedule exploration (Crane-MC).

    A scheduler installed on an engine ([Engine.set_sched]) switches the
    network fabric into {e controlled} mode: instead of sampling per-link
    jitter/loss RNG streams, the fabric queues every send behind a fixed
    base latency and, at each delivery instant, asks the scheduler which
    eligible FIFO-head message to deliver next, whether to drop it, and
    (when delay buckets are armed) how long a send is delayed.  Every
    nondeterministic decision the simulation would have drawn from an RNG
    becomes an explicit, labelled choice the enumerator can branch on.

    The default scheduler always answers 0, which yields one canonical
    deterministic schedule.  The model checker installs a [pick] that
    replays a recorded choice prefix and records fresh choice points past
    it; because everything downstream of the choices is deterministic,
    the same prefix always reproduces the same execution — the property
    stateless model checking and counterexample replay both rest on. *)

type t = {
  mutable pick : label:string -> keys:string array -> int;
      (** Answer a choice point: an index into [keys].  [label] names the
          kind of choice (["net.deliver"], ["net.fate"], ["net.delay"]);
          [keys] identifies the alternatives.  Only called when there are
          at least two alternatives — see {!choose}. *)
  mutable on_send : id:int -> src:string -> dst:string -> unit;
      (** A message entered the controlled fabric.  [id] is the fabric's
          per-message sequence number: unique, in send order.  The model
          checker snapshots the sender's vector clock here. *)
  mutable on_deliver : id:int -> src:string -> dst:string -> unit;
      (** A message was handed to its destination handler (not dropped).
          Transitions observed here feed the DPOR dependence analysis. *)
  mutable pre_deliver : unit -> unit;
      (** Fired at each delivery instant before the scheduler picks,
          while the eligible set is frozen.  Hosts crash/restart
          injection and continuous invariant checks. *)
  base : Time.t;  (** fixed one-way latency in controlled mode *)
  delays : int array;
      (** base-latency multipliers for the per-send delay choice; the
          default [[|1|]] disarms the choice point entirely.  A bucket
          larger than a timer period lets the enumerator reorder that
          timer's firing against the delayed message. *)
}

let nop_pick ~label:_ ~keys:_ = 0
let nop_send ~id:_ ~src:_ ~dst:_ = ()

let create ?(base = Time.us 50) ?(delays = [| 1 |]) () =
  if Array.length delays = 0 then invalid_arg "Sched.create: empty delays";
  {
    pick = nop_pick;
    on_send = nop_send;
    on_deliver = nop_send;
    pre_deliver = ignore;
    base;
    delays;
  }

(** [choose t ~label ~keys] resolves one choice point.  Width-1 points
    are answered locally without consulting [pick]: with a single
    alternative there is nothing to branch on, and keeping them out of
    the recorded schedule keeps counterexample traces minimal. *)
let choose t ~label ~keys =
  let width = Array.length keys in
  if width = 0 then invalid_arg "Sched.choose: empty keys";
  if width = 1 then 0
  else begin
    let i = t.pick ~label ~keys in
    if i < 0 || i >= width then
      invalid_arg
        (Printf.sprintf "Sched.choose: pick returned %d for width %d (%s)" i
           width label);
    i
  end
