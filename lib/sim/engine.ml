module Trace = Crane_trace.Trace

type group = int

type thread = { tid : int; name : string; tgroup : group option }

type t = {
  mutable clock : Time.t;
  mutable seq : int;
  events : (unit -> unit) Pheap.t;
  mutable current : thread option;
  mutable next_group : int;
  mutable next_tid : int;
  dead_groups : (group, unit) Hashtbl.t;
  kill_hooks : (group, (unit -> unit) list ref) Hashtbl.t;
  mutable failed : (string * exn) list;
  mutable trace : Trace.t;
  (* Installed by the model checker to drive the fabric's controlled
     mode; [None] (the default) keeps every consumer on its RNG path. *)
  mutable sched : Sched.t option;
}

type 'a waker = 'a -> bool

exception Limit_exceeded

let create () =
  {
    clock = Time.zero;
    seq = 0;
    events = Pheap.create ();
    current = None;
    next_group = 0;
    next_tid = 0;
    dead_groups = Hashtbl.create 16;
    kill_hooks = Hashtbl.create 16;
    failed = [];
    trace = Trace.null;
    sched = None;
  }

let now t = t.clock

let trace t = t.trace
let set_trace t tr = t.trace <- tr

let sched t = t.sched
let set_sched t s = t.sched <- Some s
let clear_sched t = t.sched <- None

let gid = function Some g -> g | None -> -1

let new_group t =
  let g = t.next_group in
  t.next_group <- g + 1;
  g

let group_alive t g = not (Hashtbl.mem t.dead_groups g)

let on_kill t g hook =
  match Hashtbl.find_opt t.kill_hooks g with
  | Some l -> l := hook :: !l
  | None -> Hashtbl.add t.kill_hooks g (ref [ hook ])

let kill_group t g =
  if group_alive t g then begin
    if Trace.enabled t.trace then
      Trace.instant t.trace ~ts:t.clock ~tid:(-1) ~group:g ~cat:"sim"
        ~name:"group_kill" [ ("group", Trace.Int g) ];
    Hashtbl.add t.dead_groups g ();
    match Hashtbl.find_opt t.kill_hooks g with
    | None -> ()
    | Some l ->
      let hooks = List.rev !l in
      l := [];
      List.iter (fun hook -> hook ()) hooks
  end

let alive t = function None -> true | Some g -> group_alive t g

let schedule t ?group time fn =
  let time = if time < t.clock then t.clock else time in
  let seq = t.seq in
  t.seq <- seq + 1;
  let fn = match group with
    | None -> fn
    | Some g -> fun () -> if group_alive t g then fn ()
  in
  Pheap.push t.events ~time ~seq fn

let at t ?group time fn = schedule t ?group time fn
let after t ?group delay fn = schedule t ?group (t.clock + delay) fn

let timer t ?group delay fn =
  let cancelled = ref false in
  schedule t ?group (t.clock + delay) (fun () -> if not !cancelled then fn ());
  fun () -> cancelled := true

type _ Effect.t += Suspend : (('a -> bool) -> unit) -> 'a Effect.t

let handler t th =
  let open Effect.Deep in
  {
    retc = (fun () -> ());
    exnc = (fun e -> t.failed <- t.failed @ [ (th.name, e) ]);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Suspend f ->
          Some
            (fun (k : (a, unit) continuation) ->
              if Trace.enabled t.trace then
                Trace.span_begin t.trace ~ts:t.clock ~tid:th.tid
                  ~group:(gid th.tgroup) ~cat:"sim" ~name:"blocked" [];
              let fired = ref false in
              let waker v =
                if !fired || not (alive t th.tgroup) then false
                else begin
                  fired := true;
                  schedule t t.clock (fun () ->
                      if alive t th.tgroup then begin
                        if Trace.enabled t.trace then
                          Trace.span_end t.trace ~ts:t.clock ~tid:th.tid
                            ~group:(gid th.tgroup) ~cat:"sim" ~name:"blocked" [];
                        let saved = t.current in
                        t.current <- Some th;
                        continue k v;
                        t.current <- saved
                      end);
                  true
                end
              in
              f waker)
        | _ -> None);
  }

let spawn_with_tid t ?group ~name body =
  let group =
    match group with
    | Some _ as g -> g
    | None -> (match t.current with Some th -> th.tgroup | None -> None)
  in
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  let th = { tid; name; tgroup = group } in
  if Trace.enabled t.trace then begin
    let parent = match t.current with Some th -> th.tid | None -> -1 in
    Trace.instant t.trace ~ts:t.clock ~tid ~group:(gid group) ~cat:"sim"
      ~name:"thread_spawn"
      [ ("thread", Trace.Str name); ("parent", Trace.Int parent) ]
  end;
  schedule t t.clock (fun () ->
      if alive t th.tgroup then begin
        let saved = t.current in
        t.current <- Some th;
        Effect.Deep.match_with body () (handler t th);
        t.current <- saved
      end);
  tid

let spawn t ?group ~name body = ignore (spawn_with_tid t ?group ~name body)

let suspend (_ : t) f = Effect.perform (Suspend f)

let sleep t d =
  suspend t (fun wake -> schedule t (t.clock + d) (fun () -> ignore (wake ())))

let yield t = sleep t 0

let self_name t = match t.current with Some th -> th.name | None -> "-"
let self_tid t = match t.current with Some th -> th.tid | None -> -1
let self_group t = match t.current with Some th -> th.tgroup | None -> None

let run ?until ?(limit = 200_000_000) t =
  let steps = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    match Pheap.peek_time t.events with
    | None -> continue_ := false
    | Some time -> (
      match until with
      | Some stop when time > stop ->
        t.clock <- stop;
        continue_ := false
      | _ -> (
        incr steps;
        if !steps > limit then raise Limit_exceeded;
        match Pheap.pop t.events with
        | None -> continue_ := false
        | Some (time, _, fn) ->
          t.clock <- time;
          fn ()))
  done

let failures t = t.failed
let pending_events t = Pheap.length t.events
