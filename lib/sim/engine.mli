(** Deterministic discrete-event engine with green threads.

    The engine owns a single priority queue of events keyed by
    [(virtual time, sequence number)], so execution order is a pure
    function of the event insertion order: a whole distributed run is
    reproducible from its seed.

    Simulated threads are OCaml 5 effect-based fibers.  A thread blocks by
    performing {!suspend}, which hands a one-shot [waker] to the caller;
    whoever holds the waker resumes the thread (a timer, a mutex release, a
    packet arrival...).  Wakers are idempotent and report whether they won,
    which gives race-free blocking-with-timeout.

    Threads belong to a {e group} (one group per replica incarnation).
    Killing a group models a process crash (SIGKILL): its threads never run
    again, no cleanup code executes, and its scheduled callbacks are
    dropped. *)

type t

type group = int
(** A replica incarnation.  Fresh groups come from {!new_group}. *)

type 'a waker = 'a -> bool
(** [waker v] resumes the suspended thread with [v].  Returns [false] if
    the thread was already woken by a rival waker or its group was killed;
    callers that hand out several wakers for one suspension (e.g. signal +
    timeout) use the return value to pick the survivor. *)

exception Limit_exceeded
(** Raised by {!run} when the configured event budget is exhausted —
    a guard against accidental non-termination of a model. *)

val create : unit -> t

val now : t -> Time.t
(** Current virtual time. *)

val trace : t -> Crane_trace.Trace.t
(** The engine's flight recorder.  Defaults to the disabled
    {!Crane_trace.Trace.null} sink; every layer of the stack reaches its
    recorder through the engine, so attaching one sink traces a whole
    simulated cluster. *)

val set_trace : t -> Crane_trace.Trace.t -> unit
(** Attach a flight recorder.  Engine-level events are: [thread_spawn]
    and [group_kill] instants and [blocked] suspend/resume spans, all in
    category "sim". *)

val sched : t -> Sched.t option
(** The installed schedule enumerator, if any.  Consumers with
    nondeterministic choices (the network fabric) route them through the
    scheduler when one is present and fall back to their RNG paths
    otherwise. *)

val set_sched : t -> Sched.t -> unit
(** Install a schedule enumerator: switches the fabric into controlled
    mode for model checking.  See {!Sched}. *)

val clear_sched : t -> unit

val new_group : t -> group

val kill_group : t -> group -> unit
(** Crash a replica incarnation: threads in the group are abandoned and
    its pending callbacks will not fire.  Registered {!on_kill} hooks run
    immediately (they model externally visible effects of the crash, such
    as TCP resets seen by peers). *)

val group_alive : t -> group -> bool

val on_kill : t -> group -> (unit -> unit) -> unit
(** Register a hook to run when [group] is killed. *)

val spawn : t -> ?group:group -> name:string -> (unit -> unit) -> unit
(** Create a thread.  It starts at the current instant, after already
    queued events.  An exception escaping the thread body is recorded (see
    {!failures}) and terminates only that thread. *)

val spawn_with_tid : t -> ?group:group -> name:string -> (unit -> unit) -> int
(** Like {!spawn}, returning the new thread's id (known before it runs). *)

val at : t -> ?group:group -> Time.t -> (unit -> unit) -> unit
(** Schedule a plain callback at an absolute instant (>= now). *)

val after : t -> ?group:group -> Time.t -> (unit -> unit) -> unit
(** Schedule a callback after a relative delay. *)

val timer : t -> ?group:group -> Time.t -> (unit -> unit) -> unit -> unit
(** [timer t d f] schedules [f] after delay [d] and returns a canceller. *)

val suspend : t -> ('a waker -> unit) -> 'a
(** Block the current thread.  [suspend t f] calls [f waker] immediately
    (still on the current thread's stack) and returns when the waker is
    fired.  Must be called from a simulated thread. *)

val sleep : t -> Time.t -> unit
(** Block for a virtual duration. *)

val yield : t -> unit
(** Reschedule behind already-queued same-instant events. *)

val self_name : t -> string
(** Name of the running thread ("-" outside any thread). *)

val self_tid : t -> int
(** Unique id of the running thread (-1 outside any thread). *)

val self_group : t -> group option

val run : ?until:Time.t -> ?limit:int -> t -> unit
(** Drain the event queue.  [until] stops the clock at a given instant
    (remaining events stay queued); [limit] bounds the number of events
    processed (default 200 million).  @raise Limit_exceeded *)

val failures : t -> (string * exn) list
(** Threads that died with an uncaught exception, oldest first. *)

val pending_events : t -> int
