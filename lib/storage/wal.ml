module Time = Crane_sim.Time
module Engine = Crane_sim.Engine
module Trace = Crane_trace.Trace

type entry = { data : string; torn : bool }

type t = {
  eng : Engine.t;
  wname : string;
  write_latency : Time.t;
  mutable stable : entry list; (* newest first *)
  mutable writes : int;
  (* Writes become stable in submission order even when issued
     concurrently: model a single flash channel. *)
  mutable last_stable_at : Time.t;
  (* Submitted but not yet stable, in submission order (oldest first):
     what a crash can tear. *)
  inflight : (int, string) Hashtbl.t;
  mutable next_write_id : int;
  mutable torn_tails : int;
  (* Truncations whose header is durable but whose physical prefix drop
     has not yet hit the device.  A crash in this window leaves header +
     old entries on disk; recovery must tolerate both being present. *)
  pending_truncs : (int, unit) Hashtbl.t;
  mutable next_trunc_id : int;
  mutable truncations : int;
  mutable dropped : int;
}

let create ?(write_latency = Time.us 15) eng ~name =
  {
    eng;
    wname = name;
    write_latency;
    stable = [];
    writes = 0;
    last_stable_at = Time.zero;
    inflight = Hashtbl.create 8;
    next_write_id = 0;
    torn_tails = 0;
    pending_truncs = Hashtbl.create 2;
    next_trunc_id = 0;
    dropped = 0;
    truncations = 0;
  }

let name t = t.wname

let stable_time t =
  let now = Engine.now t.eng in
  let at = max (now + t.write_latency) (t.last_stable_at + t.write_latency) in
  t.last_stable_at <- at;
  at

(* Device-level span events: one instant at submission (with the flash
   channel's queue depth) and one when the write is durable (with its
   total device latency).  The WAL is named after its replica, so the
   events land on that node's timeline. *)
let trace_submit t ~bytes ~group_size =
  let tr = Engine.trace t.eng in
  if Trace.enabled tr then
    Trace.instant tr ~ts:(Engine.now t.eng) ~tid:(Engine.self_tid t.eng)
      ~node:t.wname ~cat:"wal" ~name:"write_submit"
      [ ("bytes", Trace.Int bytes); ("group", Trace.Int group_size);
        ("queued", Trace.Int (Hashtbl.length t.inflight)) ]

let trace_durable t ~submitted_at ~group_size =
  let tr = Engine.trace t.eng in
  if Trace.enabled tr then
    Trace.instant tr ~ts:(Engine.now t.eng) ~tid:(Engine.self_tid t.eng)
      ~node:t.wname ~cat:"wal" ~name:"write_durable"
      [ ("lat_ns", Trace.Int (Engine.now t.eng - submitted_at));
        ("group", Trace.Int group_size) ]

let append_async t record k =
  t.writes <- t.writes + 1;
  let id = t.next_write_id in
  t.next_write_id <- id + 1;
  Hashtbl.replace t.inflight id record;
  trace_submit t ~bytes:(String.length record) ~group_size:1;
  let submitted_at = Engine.now t.eng in
  Engine.at t.eng (stable_time t) (fun () ->
      (* A crash_torn_tail between submission and this instant consumed
         the write: it never reached the device intact. *)
      if Hashtbl.mem t.inflight id then begin
        Hashtbl.remove t.inflight id;
        t.stable <- { data = record; torn = false } :: t.stable;
        trace_durable t ~submitted_at ~group_size:1;
        k ()
      end)

let append t record =
  Engine.suspend t.eng (fun wake ->
      append_async t record (fun () -> ignore (wake ())))

(* Group commit: the whole batch shares one position in the flash-channel
   queue and one write-latency charge.  A crash before the group's fsync
   instant consumes every member (the torn-tail model tears the oldest). *)
let append_batch_async t records k =
  match records with
  | [] -> k ()
  | [ r ] -> append_async t r k
  | _ ->
    t.writes <- t.writes + 1;
    let ids =
      List.map
        (fun record ->
          let id = t.next_write_id in
          t.next_write_id <- id + 1;
          Hashtbl.replace t.inflight id record;
          id)
        records
    in
    let group_size = List.length ids in
    trace_submit t
      ~bytes:(List.fold_left (fun n r -> n + String.length r) 0 records)
      ~group_size;
    let submitted_at = Engine.now t.eng in
    Engine.at t.eng (stable_time t) (fun () ->
        if List.for_all (fun id -> Hashtbl.mem t.inflight id) ids then begin
          List.iter
            (fun id ->
              let record = Hashtbl.find t.inflight id in
              Hashtbl.remove t.inflight id;
              t.stable <- { data = record; torn = false } :: t.stable)
            ids;
          trace_durable t ~submitted_at ~group_size;
          k ()
        end)

let append_batch t records =
  Engine.suspend t.eng (fun wake ->
      append_batch_async t records (fun () -> ignore (wake ())))

(* Two-phase log truncation.  Phase 1 durably appends [header] (which
   must encode everything needed to reinterpret the surviving suffix —
   watermark, checkpoint id).  Phase 2, a separate device operation,
   physically drops every {e older} intact record matching [drop].  A
   crash between the phases leaves the header plus the old records; the
   drop predicate is only consulted for records that predate the header,
   so re-running truncation after recovery converges to the same state. *)
let truncate_to t ~header ~drop k =
  t.truncations <- t.truncations + 1;
  append_async t header (fun () ->
      let tid = t.next_trunc_id in
      t.next_trunc_id <- tid + 1;
      Hashtbl.replace t.pending_truncs tid ();
      Engine.at t.eng (stable_time t) (fun () ->
          if Hashtbl.mem t.pending_truncs tid then begin
            Hashtbl.remove t.pending_truncs tid;
            (* [stable] is newest first; keep everything from the head
               down to and including the header, filter what's older. *)
            let rec split acc = function
              | [] -> (List.rev acc, [])
              | e :: rest when (not e.torn) && e.data == header ->
                (List.rev (e :: acc), rest)
              | e :: rest -> split (e :: acc) rest
            in
            let newer, older = split [] t.stable in
            let kept =
              List.filter (fun e -> (not e.torn) && not (drop e.data)) older
            in
            t.dropped <- t.dropped + (List.length older - List.length kept);
            t.stable <- newer @ kept;
            k ()
          end))

let crash_torn_tail t =
  let pending =
    Hashtbl.fold (fun id data acc -> (id, data) :: acc) t.inflight []
    |> List.sort compare
  in
  Hashtbl.reset t.inflight;
  (* The process died before issuing the physical drop: the header (if
     it made it to the device) plus the old records both survive. *)
  Hashtbl.reset t.pending_truncs;
  match pending with
  | [] -> false
  | (_, data) :: _ ->
    (* The oldest in-flight record was mid-write: a partial prefix lands
       on disk; younger in-flight writes are lost outright. *)
    let partial = String.sub data 0 (String.length data / 2) in
    t.stable <- { data = partial; torn = true } :: t.stable;
    t.torn_tails <- t.torn_tails + 1;
    true

let entries t = List.rev t.stable

let records t =
  List.filter_map (fun e -> if e.torn then None else Some e.data) (entries t)

let length t = List.length t.stable
let writes t = t.writes
let torn_tails t = t.torn_tails
let truncations t = t.truncations
let dropped t = t.dropped

let reset t =
  t.stable <- [];
  t.writes <- 0;
  Hashtbl.reset t.inflight;
  Hashtbl.reset t.pending_truncs
