(** Write-ahead log on simulated SSD — the Berkeley-DB stand-in of §5.1.

    The paper persists every consensus decision (call type, arguments,
    global index) to a Berkeley DB on SSD.  Here a record is an opaque
    string; a synchronous append charges the SSD fsync latency, an
    asynchronous append invokes a continuation when the write is stable.
    Contents survive "process crashes" (the record list lives outside any
    engine group), which is what replica recovery replays. *)

type t

type entry = { data : string; torn : bool }
(** A stable record.  [torn] marks the partial tail left by a crash
    mid-append: readers must discard it (its bytes are truncated). *)

val create : ?write_latency:Crane_sim.Time.t -> Crane_sim.Engine.t -> name:string -> t
(** Default write latency 15 us (datacenter NVMe fsync). *)

val name : t -> string

val append : t -> string -> unit
(** Blocking durable append; call from a simulated thread. *)

val append_async : t -> string -> (unit -> unit) -> unit
(** Durable append from callback context; the continuation runs once the
    record is stable. *)

val append_batch_async : t -> string list -> (unit -> unit) -> unit
(** Group commit (the Berkeley-DB [txn_checkpoint] trick): append all
    records with a {e single} fsync — one write-latency charge for the
    whole group instead of one per record.  Records land in list order;
    the continuation runs once the entire group is stable.  A crash
    mid-group follows the usual torn-tail rule: the oldest in-flight
    record survives as a torn partial prefix, the rest are lost. *)

val append_batch : t -> string list -> unit
(** Blocking variant of {!append_batch_async}; call from a simulated
    thread. *)

val truncate_to : t -> header:string -> drop:(string -> bool) -> (unit -> unit) -> unit
(** Crash-safe two-phase log truncation.  Durably appends [header] (one
    fsync), then — as a second, later device operation — physically
    removes every intact record {e older than the header} for which
    [drop] returns [true] (older torn tails are removed unconditionally).
    The continuation fires once the prefix is gone.  Crash semantics:
    before the header is stable, the log is untouched (the header itself
    may land torn); between header and drop, both the header and the old
    records survive — recovery must treat records superseded by a header
    as idempotent, and a later re-truncation will drop them. *)

val crash_torn_tail : t -> bool
(** Model a process crash mid-append: the oldest in-flight (submitted,
    not yet stable) record lands as a torn partial tail, younger in-flight
    writes are lost, and none of their continuations ever fire.  Returns
    [true] if a torn record was produced (i.e. a write was in flight). *)

val records : t -> string list
(** All intact stable records, oldest first (torn tails excluded). *)

val entries : t -> entry list
(** All stable records including torn tails, oldest first — what a
    recovery scan actually reads off the device. *)

val length : t -> int
val writes : t -> int
(** Number of durable writes performed (cost accounting). *)

val torn_tails : t -> int
(** Number of torn partial records ever produced by crashes. *)

val truncations : t -> int
(** Number of truncations started (header submitted). *)

val dropped : t -> int
(** Total records physically removed by completed truncations. *)

val reset : t -> unit
(** Wipe the log (modelling disk replacement in tests). *)
