(** Nondeterministic thread-synchronization primitives.

    This is the un-replicated baseline of the paper's evaluation: the
    Pthreads runtime.  Wake order under contention is drawn from a seeded
    RNG, so the same program exercises different schedules under different
    seeds — the paper's source S2 of replica divergence.

    A cost model charges virtual time per operation: an uncontended
    operation is cheap; blocking and being woken costs a context switch
    (futex-style).  The counters feed the MediaTomb sync-context-switch
    comparison of §7.3.

    Every operation also streams a "sync" event through the engine's
    flight recorder (object id, primitive kind, human label), which is
    what feeds the happens-before sanitizer in [lib/analysis].  Object
    ids start at 1; id 0 is reserved for the DMT turn pseudo-lock. *)

type t
(** One runtime instance per simulated process. *)

type cost = {
  uncontended : Crane_sim.Time.t;  (** fast-path lock/unlock *)
  context_switch : Crane_sim.Time.t;  (** block + wake under contention *)
  wake_jitter : Crane_sim.Time.t;
      (** OS wake-to-run latency bound: each wake-up adds a uniform random
          delay in [0, wake_jitter) — the scheduler noise that makes
          contended Pthreads runs slow and nondeterministic. *)
}

val default_cost : cost

val create : ?cost:cost -> Crane_sim.Engine.t -> Crane_sim.Rng.t -> t

val engine : t -> Crane_sim.Engine.t

val sync_ops : t -> int
(** Total synchronization operations performed. *)

val context_switches : t -> int
(** Times a thread blocked and was later woken under contention. *)

module Mutex : sig
  type m

  val create : ?name:string -> t -> m
  val lock : m -> unit

  val unlock : m -> unit
  (** @raise Invalid_argument when unlocking a free mutex, or when the
      calling thread is not the owner (pthreads undefined behaviour,
      promoted to a hard error). *)

  val try_lock : m -> bool
end

module Cond : sig
  type c

  val create : ?name:string -> t -> c

  val wait : c -> Mutex.m -> unit
  (** Atomically release the mutex and block; re-acquires before return. *)

  val signal : c -> unit
  (** Wake one random waiter (no-op when none). *)

  val broadcast : c -> unit
end

module Rwlock : sig
  type rw

  val create : ?name:string -> t -> rw
  val rdlock : rw -> unit
  val wrlock : rw -> unit
  val unlock : rw -> unit
end

module Sem : sig
  type s

  val create : ?name:string -> t -> int -> s
  val post : s -> unit
  val wait : s -> unit
end

module Barrier : sig
  type b

  val create : ?name:string -> t -> int -> b

  val wait : b -> unit
  (** Block until [n] threads arrive; all released together. *)
end

type thread
(** A joinable thread handle (pthread_create/pthread_join). *)

val spawn : t -> name:string -> (unit -> unit) -> thread

val join : thread -> unit
(** Block until the thread's body returns.  Contributes the exit -> join
    happens-before edge the sanitizer uses. *)
