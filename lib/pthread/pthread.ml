module Time = Crane_sim.Time
module Engine = Crane_sim.Engine
module Rng = Crane_sim.Rng
module Trace = Crane_trace.Trace

type cost = { uncontended : Time.t; context_switch : Time.t; wake_jitter : Time.t }

let default_cost =
  { uncontended = Time.ns 60; context_switch = Time.ns 1500; wake_jitter = Time.us 150 }

type t = {
  eng : Engine.t;
  rng : Rng.t;
  cost : cost;
  mutable sync_ops : int;
  mutable context_switches : int;
  mutable next_obj : int;
}

(* Object ids start at 1: id 0 is reserved for the DMT scheduler's turn
   pseudo-lock, so sanitizer reports use one id space per process across
   both runtimes. *)
let create ?(cost = default_cost) eng rng =
  { eng; rng; cost; sync_ops = 0; context_switches = 0; next_obj = 1 }

let engine t = t.eng
let sync_ops t = t.sync_ops
let context_switches t = t.context_switches

let new_obj t =
  let o = t.next_obj in
  t.next_obj <- o + 1;
  o

(* Sanitizer hook: every synchronization operation streams a "sync" event
   through the engine's flight recorder.  One branch when tracing is off. *)
let ev rt name args =
  let tr = Engine.trace rt.eng in
  if Trace.enabled tr then
    Trace.instant tr ~ts:(Engine.now rt.eng) ~tid:(Engine.self_tid rt.eng)
      ~group:(match Engine.self_group rt.eng with Some g -> g | None -> -1)
      ~cat:"sync" ~name args

let obj_args ~id ~kind ~label = [ ("obj", Trace.Int id); ("kind", Trace.Str kind); ("label", Trace.Str label) ]

(* A wait set with randomized wake order: the OS scheduler model. *)
module Waitset = struct
  type w = { rt : t; mutable waiters : (unit -> bool) list }

  let create rt = { rt; waiters = [] }

  let park w =
    w.rt.context_switches <- w.rt.context_switches + 1;
    Engine.suspend w.rt.eng (fun wake -> w.waiters <- w.waiters @ [ wake ]);
    (* Charge the wake-up half of the context switch, plus OS scheduling
       latency (wake-to-run delay on a loaded machine). *)
    let jitter =
      if w.rt.cost.wake_jitter > 0 then Rng.int w.rt.rng w.rt.cost.wake_jitter else 0
    in
    Engine.sleep w.rt.eng (w.rt.cost.context_switch + jitter)

  (* Wake one waiter chosen at random; returns false when none was woken. *)
  let rec wake_one w =
    match w.waiters with
    | [] -> false
    | waiters ->
      let i = Rng.int w.rt.rng (List.length waiters) in
      let chosen = List.nth waiters i in
      w.waiters <- List.filteri (fun j _ -> j <> i) waiters;
      if chosen () then true else wake_one w

  let wake_all w =
    let all = w.waiters in
    w.waiters <- [];
    List.iter (fun wake -> ignore (wake ())) (Rng.shuffle w.rt.rng all)
end

let charge_fast rt =
  rt.sync_ops <- rt.sync_ops + 1;
  if rt.cost.uncontended > 0 then Engine.sleep rt.eng rt.cost.uncontended

module Mutex = struct
  type m = { rt : t; id : int; label : string; mutable owner : int option; ws : Waitset.w }

  let create ?name rt =
    let id = new_obj rt in
    let label = match name with Some n -> n | None -> Printf.sprintf "mutex#%d" id in
    { rt; id; label; owner = None; ws = Waitset.create rt }

  let locked m = m.owner <> None
  let args m = obj_args ~id:m.id ~kind:"mutex" ~label:m.label

  let rec lock m =
    charge_fast m.rt;
    if locked m then begin
      Waitset.park m.ws;
      lock m
    end
    else begin
      m.owner <- Some (Engine.self_tid m.rt.eng);
      ev m.rt "acquire" (args m)
    end

  let try_lock m =
    charge_fast m.rt;
    if locked m then false
    else begin
      m.owner <- Some (Engine.self_tid m.rt.eng);
      ev m.rt "acquire" (args m);
      true
    end

  let unlock m =
    (match m.owner with
    | None -> invalid_arg "Pthread.Mutex.unlock: not locked"
    | Some tid when tid <> Engine.self_tid m.rt.eng ->
      invalid_arg
        (Printf.sprintf "Pthread.Mutex.unlock: %s held by thread %d, unlocked by %d"
           m.label tid (Engine.self_tid m.rt.eng))
    | Some _ -> ());
    charge_fast m.rt;
    m.owner <- None;
    ev m.rt "release" (args m);
    ignore (Waitset.wake_one m.ws)
end

module Cond = struct
  type c = { rt : t; id : int; label : string; ws : Waitset.w }

  let create ?name rt =
    let id = new_obj rt in
    let label = match name with Some n -> n | None -> Printf.sprintf "cond#%d" id in
    { rt; id; label; ws = Waitset.create rt }

  let args c = obj_args ~id:c.id ~kind:"cond" ~label:c.label

  let wait c (mu : Mutex.m) =
    charge_fast c.rt;
    ev c.rt "cond_wait"
      (args c @ [ ("mutex", Trace.Int mu.Mutex.id); ("mutex_label", Trace.Str mu.Mutex.label) ]);
    Mutex.unlock mu;
    Waitset.park c.ws;
    ev c.rt "cond_woken" (args c);
    Mutex.lock mu

  let signal c =
    charge_fast c.rt;
    ev c.rt "cond_signal" (args c);
    ignore (Waitset.wake_one c.ws)

  let broadcast c =
    charge_fast c.rt;
    ev c.rt "cond_signal" (args c);
    Waitset.wake_all c.ws
end

module Rwlock = struct
  type rw = {
    rt : t;
    id : int;
    label : string;
    mutable readers : int;
    mutable writer : bool;
    ws : Waitset.w;
  }

  let create ?name rt =
    let id = new_obj rt in
    let label = match name with Some n -> n | None -> Printf.sprintf "rwlock#%d" id in
    { rt; id; label; readers = 0; writer = false; ws = Waitset.create rt }

  let args l = obj_args ~id:l.id ~kind:"rwlock" ~label:l.label

  let rec rdlock l =
    charge_fast l.rt;
    if l.writer then begin
      Waitset.park l.ws;
      rdlock l
    end
    else begin
      l.readers <- l.readers + 1;
      ev l.rt "acquire_rd" (args l)
    end

  let rec wrlock l =
    charge_fast l.rt;
    if l.writer || l.readers > 0 then begin
      Waitset.park l.ws;
      wrlock l
    end
    else begin
      l.writer <- true;
      ev l.rt "acquire" (args l)
    end

  let unlock l =
    charge_fast l.rt;
    if l.writer then l.writer <- false
    else if l.readers > 0 then l.readers <- l.readers - 1
    else invalid_arg "Pthread.Rwlock.unlock: not held";
    ev l.rt "release" (args l);
    Waitset.wake_all l.ws
end

module Sem = struct
  type s = { rt : t; id : int; label : string; mutable count : int; ws : Waitset.w }

  let create ?name rt count =
    let id = new_obj rt in
    let label = match name with Some n -> n | None -> Printf.sprintf "sem#%d" id in
    { rt; id; label; count; ws = Waitset.create rt }

  let args s = obj_args ~id:s.id ~kind:"sem" ~label:s.label

  let post s =
    charge_fast s.rt;
    s.count <- s.count + 1;
    ev s.rt "sem_post" (args s);
    ignore (Waitset.wake_one s.ws)

  let rec wait s =
    charge_fast s.rt;
    if s.count > 0 then begin
      s.count <- s.count - 1;
      ev s.rt "sem_wait" (args s)
    end
    else begin
      Waitset.park s.ws;
      wait s
    end
end

module Barrier = struct
  type b = { rt : t; id : int; label : string; n : int; mutable arrived : int; ws : Waitset.w }

  let create ?name rt n =
    let id = new_obj rt in
    let label = match name with Some nm -> nm | None -> Printf.sprintf "barrier#%d" id in
    { rt; id; label; n; arrived = 0; ws = Waitset.create rt }

  let args b = obj_args ~id:b.id ~kind:"barrier" ~label:b.label

  (* All "barrier_arrive" events of a round precede every "barrier_leave":
     waiters emit arrive before parking, and the releasing thread emits its
     own leave only after the round is complete. *)
  let wait b =
    charge_fast b.rt;
    ev b.rt "barrier_arrive" (args b);
    b.arrived <- b.arrived + 1;
    if b.arrived >= b.n then begin
      b.arrived <- 0;
      Waitset.wake_all b.ws;
      ev b.rt "barrier_leave" (args b)
    end
    else begin
      Waitset.park b.ws;
      ev b.rt "barrier_leave" (args b)
    end
end

(* Joinable threads: pthread_create/pthread_join with exit -> join
   happens-before edges for the sanitizer.  (Thread creation edges come
   from the engine's own "thread_spawn" event, which records the parent.) *)
type thread = { trt : t; mutable ttid : int; mutable finished : bool; tws : Waitset.w }

let spawn rt ~name body =
  let th = { trt = rt; ttid = -1; finished = false; tws = Waitset.create rt } in
  let tid =
    Engine.spawn_with_tid rt.eng ~name (fun () ->
        let finish () =
          ev rt "thread_exit" [];
          th.finished <- true;
          Waitset.wake_all th.tws
        in
        match body () with
        | () -> finish ()
        | exception e ->
          finish ();
          raise e)
  in
  th.ttid <- tid;
  th

let join th =
  while not th.finished do
    Waitset.park th.tws
  done;
  ev th.trt "thread_join" [ ("joined", Trace.Int th.ttid) ]
