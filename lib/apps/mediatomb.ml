(** MediaTomb model (paper §7): a uPnP multimedia server whose web
    interface triggers mencoder transcodes (15 MB AVI to MP4, ~9.7 s per
    request on the paper's machines).

    The transcoder is a two-stage pipeline (decoder thread feeding an
    encoder through a frame queue) with a synchronization per frame — the
    pattern behind the paper's context-switch comparison: the Pthreads run
    makes ~0.9 M synchronization context switches where PARROT's aligned
    round-robin makes ~6.6 K, which is why MediaTomb {e speeds up} under
    CRANE (Figure 14). *)

module Time = Crane_sim.Time
module Api = Crane_core.Api
module Memfs = Crane_fs.Memfs

type config = {
  port : int;
  nworkers : int;
  frames : int;
  frame_cost : Time.t;  (** CPU cost per frame *)
  encoder_threads : int;  (** slice-parallel encoder threads per transcode *)
  mem_bytes : int;
}

let default_config =
  {
    port = 49152;
    nworkers = 4;
    frames = 6000;
    frame_cost = Time.us 3_233 (* 6000 x 3.2 ms over 2 threads: ~9.7 s *);
    encoder_threads = 2;
    mem_bytes = 2_000_000;
  }

let install fs =
  Memfs.write fs ~path:"media/video15.avi" (String.make 600_000 'V');
  Memfs.write fs ~path:"media/clip2.avi" (String.make 200_000 'v');
  Memfs.write fs ~path:"config/config.xml" "<config><transcoding/></config>"

let server ?(cfg = default_config) () : Api.server =
  let boot api =
    let module R = (val api : Api.API) in
    let module B = App_base.Make (R) in
    let transcoded = B.Counter.create ~name:"mediatomb.transcoded" () in
    let stopped = R.cell ~name:"mediatomb.stopped" false in
    let worklist = B.Worklist.create ~name:"mediatomb.worklist" () in
    (* mencoder: slice-parallel encoding — each encoder thread owns a
       static partition of the frames (mencoder's slice threading) and
       synchronizes on its own codec context per frame.  Same-period
       workers fall into lockstep under the round-robin DMT scheduler,
       which is why MediaTomb needs no hints (§7.1); a shared work queue
       here would instead serialize the pool (a mutex is held across a
       whole turn rotation under DMT). *)
    let transcode src =
      let remaining = R.cell ~name:"mencoder.remaining" cfg.encoder_threads in
      let mu = R.mutex ~name:"mencoder.mu" () in
      let all_done = R.cond ~name:"mencoder.all_done" () in
      let per = (cfg.frames + cfg.encoder_threads - 1) / cfg.encoder_threads in
      let encode_slice e =
        (* One progress signal per frame (codec stats): a single
           synchronization, so no lock is ever held across a scheduler
           rotation. *)
        let progress = R.cond ~name:"mencoder.progress" () in
        let lo = ((e - 1) * per) + 1 in
        let hi = min cfg.frames (e * per) in
        for _f = lo to hi do
          R.work cfg.frame_cost;
          R.cond_signal progress
        done;
        R.lock mu;
        R.cell_set remaining (R.cell_get remaining - 1);
        if R.cell_get remaining = 0 then R.cond_broadcast all_done;
        R.unlock mu
      in
      for e = 2 to cfg.encoder_threads do
        R.spawn ~name:(Printf.sprintf "mencoder-enc%d" e) (fun () -> encode_slice e)
      done;
      encode_slice 1;
      R.lock mu;
      while R.cell_get remaining > 0 do
        R.cond_wait all_done mu
      done;
      R.unlock mu;
      ignore (Memfs.read R.fs ~path:src);
      Printf.sprintf "%d frames" cfg.frames
    in
    let handle conn (req : Httpkit.request) =
      match String.split_on_char '/' req.Httpkit.path with
      | [ ""; "transcode"; video ] ->
        let src = "media/" ^ video in
        if Memfs.exists R.fs ~path:src then begin
          let frames = transcode src in
          let dst = "transcoded/" ^ Filename.remove_extension video ^ ".mp4" in
          Memfs.write R.fs ~path:dst (Digest.to_hex (Digest.string frames));
          B.Counter.incr transcoded;
          B.http_respond conn ~status:200 (Printf.sprintf "transcoded %s" video)
        end
        else B.http_respond conn ~status:404 "no such media"
      | _ -> B.http_respond conn ~status:404 "unknown endpoint"
    in
    let worker () =
      let rec loop () =
        match B.Worklist.get worklist with
        | None -> ()
        | Some conn ->
          let rec serve () =
            match B.read_http conn with
            | Some req ->
              handle conn req;
              serve ()
            | None -> R.close conn
          in
          serve ();
          loop ()
      in
      loop ()
    in
    R.spawn ~name:"mediatomb-listener" (fun () ->
        let l = R.listen ~port:cfg.port in
        while not (R.cell_get stopped) do
          R.poll l;
          let conn = R.accept l in
          B.Worklist.add worklist conn
        done);
    for i = 1 to cfg.nworkers do
      R.spawn ~name:(Printf.sprintf "mediatomb-worker%d" i) (fun () -> worker ())
    done;
    {
      Api.server_name = "mediatomb";
      state_of = (fun () -> string_of_int (B.Counter.get transcoded));
      load_state = (fun s -> B.Counter.set transcoded (int_of_string s));
      mem_bytes = (fun () -> cfg.mem_bytes);
      stop =
        (fun () ->
          R.cell_set stopped true;
          B.Worklist.close worklist);
      read = (fun _ -> None);
      footprint = (fun _ -> None);
    }
  in
  { Api.name = "mediatomb"; install; boot }
