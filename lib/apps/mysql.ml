(** MySQL model (paper §7): a SQL server with frequent fine-grained
    per-table mutexes and read-write locks — the reason it shows the
    largest DMT overhead in Figure 14: every one of those small lock
    operations must take the global round-robin turn.

    The SysBench workload issues random point SELECTs; the installation
    directory holds a large database (the SysBench-generated data that
    makes MySQL's filesystem checkpoint take close to a minute in
    Table 2). *)

module Time = Crane_sim.Time
module Api = Crane_core.Api
module Memfs = Crane_fs.Memfs

type config = {
  port : int;
  nworkers : int;
  ntables : int;
  rows_per_table : int;
  parse_cost : Time.t;
  lookup_cost : Time.t;
  bufpool_ops : int;  (** buffer-pool mutex acquisitions per query *)
  bufpool_op_cost : Time.t;
  mem_bytes : int;
  db_file_bytes : int;  (** on-disk size per table file (ballast for Table 2) *)
}

let default_config =
  {
    port = 3306;
    nworkers = 8;
    ntables = 16;
    rows_per_table = 2_000;
    parse_cost = Time.us 80;
    lookup_cost = Time.us 500;
    bufpool_ops = 2;
    bufpool_op_cost = Time.us 10;
    mem_bytes = 10_000_000;
    db_file_bytes = 12_500_000;
  }

let table_name k = Printf.sprintf "sbtest%d" k

let install (cfg : config) fs =
  Memfs.write fs ~path:"etc/my.cnf" "[mysqld]\ninnodb_buffer_pool_size=64M";
  for k = 1 to cfg.ntables do
    (* SysBench's generated data files: what makes C_fs huge. *)
    Memfs.write fs
      ~path:(Printf.sprintf "data/%s.ibd" (table_name k))
      (String.make cfg.db_file_bytes 'D')
  done

let server ?(cfg = default_config) () : Api.server =
  let boot api =
    let module R = (val api : Api.API) in
    let module B = App_base.Make (R) in
    let queries =
      B.Sharded_counter.create ~name:"mysqld.queries" ~shards:cfg.nworkers ()
    in
    let stopped = R.cell ~name:"mysqld.stopped" false in
    let worklist = B.Worklist.create ~name:"mysqld.worklist" () in
    let db = ref (Sqlkit.create_db ()) in
    for k = 1 to cfg.ntables do
      ignore (Sqlkit.create_table !db (table_name k) cfg.rows_per_table)
    done;
    (* Per-table metadata mutex + data rwlock, plus a global buffer-pool
       mutex: the fine-grained locking of §7.3. *)
    let table_mu = Hashtbl.create 16 and table_rw = Hashtbl.create 16 in
    for k = 1 to cfg.ntables do
      Hashtbl.replace table_mu (table_name k) (R.mutex ~name:(table_name k ^ ".meta") ());
      Hashtbl.replace table_rw (table_name k) (R.rwlock ~name:(table_name k ^ ".rows") ())
    done;
    (* Buffer-pool latches partitioned per table (in the spirit of
       innodb_buffer_pool_instances): statements on distinct tables share
       no latch, which is what lets the dependency-aware delivery layer
       run them on separate lanes without lock-order conflicts. *)
    let bufpool = Hashtbl.create 16 in
    for k = 1 to cfg.ntables do
      Hashtbl.replace bufpool (table_name k)
        (R.mutex ~name:("mysqld.bufpool." ^ table_name k) ())
    done;
    let bufpool_walk tbl =
      match Hashtbl.find_opt bufpool tbl with
      | None -> ()
      | Some mu ->
        for _ = 1 to cfg.bufpool_ops do
          R.lock mu;
          R.work cfg.bufpool_op_cost;
          R.unlock mu
        done
    in
    (* B-tree descent: page-sized compute steps with latch operations in
       between (InnoDB pins/unpins a page per level). *)
    let lookup_walk ~arena ~salt =
      let module B2 = App_base.Make (R) in
      B2.staged_compute ~salt ~spread:20 ~arena ~segments:5
        ~segment_cost:(cfg.lookup_cost / 5) ()
    in
    let run_stmt ~arena stmt =
      R.work cfg.parse_cost;
      match stmt with
      | Sqlkit.Select { tbl; id } -> (
        match (Hashtbl.find_opt table_mu tbl, Hashtbl.find_opt table_rw tbl) with
        | Some mu, Some rw -> (
          R.lock mu;
          R.unlock mu;
          R.rdlock rw;
          bufpool_walk tbl;
          lookup_walk ~arena ~salt:id;
          let result =
            match Sqlkit.table !db tbl with
            | Some t -> Sqlkit.select t ~id
            | None -> None
          in
          R.rwunlock rw;
          match result with
          | Some v -> Printf.sprintf "row id=%d c=%d\n" id v
          | None -> "empty set\n")
        | _, _ -> "ERROR unknown table\n")
      | Sqlkit.Update { tbl; id; value } -> (
        match (Hashtbl.find_opt table_mu tbl, Hashtbl.find_opt table_rw tbl) with
        | Some mu, Some rw ->
          R.lock mu;
          R.unlock mu;
          R.wrlock rw;
          bufpool_walk tbl;
          lookup_walk ~arena ~salt:id;
          (match Sqlkit.table !db tbl with
          | Some t -> Sqlkit.update t ~id ~value
          | None -> ());
          R.rwunlock rw;
          "OK 1 row affected\n"
        | _, _ -> "ERROR unknown table\n")
    in
    let worker i =
      (* Bind the shard before [serve]: the inner match on [find_sub]
         shadows [i] with the newline offset, and two workers landing on
         the same shard cell would break its thread confinement. *)
      let shard = i - 1 in
      let arena = R.mutex ~name:(Printf.sprintf "mysqld.arena%d" i) () in
      let rec loop () =
        match B.Worklist.get worklist with
        | None -> ()
        | Some conn ->
          (* Handshake, then line-oriented statements. *)
          R.send conn "mysql-sim 5.6 ready\n";
          let buf = Buffer.create 64 in
          let rec serve () =
            match Str_util.find_sub (Buffer.contents buf) "\n" with
            | Some i ->
              let line = String.sub (Buffer.contents buf) 0 i in
              let rest =
                String.sub (Buffer.contents buf) (i + 1) (Buffer.length buf - i - 1)
              in
              Buffer.clear buf;
              Buffer.add_string buf rest;
              (match Sqlkit.parse_stmt line with
              | Some stmt ->
                B.Sharded_counter.incr queries ~shard;
                R.send conn (run_stmt ~arena stmt)
              | None -> if String.trim line <> "" then R.send conn "ERROR syntax\n");
              serve ()
            | None ->
              let chunk = R.recv conn ~max:4096 in
              if chunk = "" then R.close conn
              else begin
                Buffer.add_string buf chunk;
                serve ()
              end
          in
          serve ();
          loop ()
      in
      loop ()
    in
    R.spawn ~name:"mysqld-listener" (fun () ->
        let l = R.listen ~port:cfg.port in
        while not (R.cell_get stopped) do
          R.poll l;
          let conn = R.accept l in
          B.Worklist.add worklist conn
        done);
    for i = 1 to cfg.nworkers do
      R.spawn ~name:(Printf.sprintf "mysqld-worker%d" i) (fun () -> worker i)
    done;
    {
      Api.server_name = "mysql";
      state_of =
        (fun () ->
          Printf.sprintf "%d|%s" (B.Sharded_counter.get queries)
            (Sqlkit.serialize !db));
      load_state =
        (fun s ->
          match String.index_opt s '|' with
          | Some i ->
            B.Sharded_counter.set queries (int_of_string (String.sub s 0 i));
            db := Sqlkit.deserialize (String.sub s (i + 1) (String.length s - i - 1))
          | None -> ());
      mem_bytes = (fun () -> cfg.mem_bytes);
      stop =
        (fun () ->
          R.cell_set stopped true;
          B.Worklist.close worklist);
      read =
        (fun line ->
          (* Point SELECTs answer from the table directly; anything else
             (UPDATE, unparsable) stays on the consensus path.  Skips the
             lock choreography and cost model: the fast path's latency is
             the proxy's, not the modeled B-tree descent's. *)
          match Sqlkit.parse_stmt (String.trim line) with
          | Some (Sqlkit.Select { tbl; id }) -> (
            match Sqlkit.table !db tbl with
            | Some t -> (
              match Sqlkit.select t ~id with
              | Some v -> Some (Printf.sprintf "row id=%d c=%d\n" id v)
              | None -> Some "empty set\n")
            | None -> Some "ERROR unknown table\n")
          | Some (Sqlkit.Update _) | None -> None);
      footprint =
        (fun line ->
          (* Every statement on a table — SELECT included — acquires its
             metadata mutex and buffer-pool latch, lock-order conflicts
             the certifier would (rightly) flag; so same-table statements
             serialize and the footprint declares the table written either
             way.  Parallelism comes from statements on distinct tables,
             which share no lock or row. *)
          match Sqlkit.parse_stmt (String.trim line) with
          | Some (Sqlkit.Select { tbl; _ }) | Some (Sqlkit.Update { tbl; _ })
            ->
            Some { Api.fp_reads = []; fp_writes = [ tbl ] }
          | None -> None);
    }
  in
  { Api.name = "mysql"; install = install cfg; boot }
