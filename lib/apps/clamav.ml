(** ClamAV model (paper §7): an anti-virus scanning daemon.  Clients
    (clamdscan) send SCAN commands over a clamd-style line protocol; a
    worker pool walks the named directories, scans files in parallel
    (CPU cost proportional to file size against the in-memory signature
    database), reports infected files and quarantines them — mutating the
    filesystem, which the incremental checkpoints must capture. *)

module Time = Crane_sim.Time
module Api = Crane_core.Api
module Memfs = Crane_fs.Memfs

type config = {
  port : int;
  nworkers : int;
  scan_ns_per_byte : int;
  mem_bytes : int;  (** signature DB resident in memory: ~50 MB *)
  subdirs : int;
  files_per_subdir : int;
  file_bytes : int;
  infected : (int * int) list;  (** (subdir, file) carrying the test signature *)
}

let default_config =
  {
    port = 3310;
    nworkers = 8;
    scan_ns_per_byte = 100;
    mem_bytes = 50_000_000;
    subdirs = 8;
    files_per_subdir = 12;
    file_bytes = 12_000;
    infected = [ (1, 3); (4, 7); (6, 2) ];
  }

let signature = "VIRUS-TEST-SIGNATURE"

let file_path i j = Printf.sprintf "src/dir%d/file%d.c" i j

let install_tree (cfg : config) fs =
  (* The signature database: the big file that dominates C_fs. *)
  Memfs.write fs ~path:"db/main.cvd" (String.make 12_000_000 'S');
  Memfs.write fs ~path:"db/daily.cvd" (String.make 800_000 's');
  for i = 0 to cfg.subdirs - 1 do
    for j = 0 to cfg.files_per_subdir - 1 do
      let infected = List.mem (i, j) cfg.infected in
      let body =
        String.concat "\n"
          (List.init (cfg.file_bytes / 40) (fun k ->
               Printf.sprintf "/* clamav source %d-%d-%d payload */" i j k))
      in
      let body = if infected then body ^ "\n" ^ signature else body in
      Memfs.write fs ~path:(file_path i j) body
    done
  done

let server ?(cfg = default_config) () : Api.server =
  let boot api =
    let module R = (val api : Api.API) in
    let module B = App_base.Make (R) in
    let scanned = B.Counter.create ~name:"clamd.scanned" () in
    let stopped = R.cell ~name:"clamd.stopped" false in
    let worklist = B.Worklist.create ~name:"clamd.worklist" () in
    let db_mu = R.mutex ~name:"clamd.db" () in
    (* One SCAN command: walk the directory, scan each file.  Scanning is
       CPU-bound in small slices with thread-local allocator syncs; the
       shared engine lock (db_mu) is taken once per file — under DMT a
       shared mutex is held across a whole turn rotation, so taking it
       per slice would serialize the pool. *)
    let scan_dir ~arena conn dir =
      let files = Memfs.list R.fs ~prefix:dir in
      let found = ref 0 in
      R.lock db_mu;
      R.unlock db_mu;
      List.iter
        (fun path ->
          match Memfs.read R.fs ~path with
          | None -> ()
          | Some content ->
            let total = String.length content * cfg.scan_ns_per_byte in
            let slice = Time.us 300 in
            let module B2 = App_base.Make (R) in
            B2.staged_compute ~salt:(Hashtbl.hash path) ~spread:5 ~arena
              ~segments:(max 1 (total / slice))
              ~segment_cost:slice ();
            if Str_util.find_sub content signature <> None then begin
              incr found;
              (* Quarantine: the fs mutation checkpoints must capture. *)
              Memfs.write R.fs ~path:("quarantine/" ^ Filename.basename path) content;
              Memfs.delete R.fs ~path;
              R.send conn (Printf.sprintf "%s: %s FOUND\n" path signature)
            end)
        files;
      B.Counter.incr scanned;
      R.send conn (Printf.sprintf "%s: OK (%d infected)\n" dir !found)
    in
    let worker i =
      let arena = R.mutex ~name:(Printf.sprintf "clamd.arena%d" i) () in
      let rec loop () =
        match B.Worklist.get worklist with
        | None -> ()
        | Some conn ->
          let buf = Buffer.create 64 in
          let session_open = ref true in
          let rec serve () =
            if !session_open then
              (* Line-oriented protocol: commands end with '\n'. *)
              match Str_util.find_sub (Buffer.contents buf) "\n" with
              | Some i ->
                let line = String.sub (Buffer.contents buf) 0 i in
                let rest =
                  String.sub (Buffer.contents buf) (i + 1)
                    (Buffer.length buf - i - 1)
                in
                Buffer.clear buf;
                Buffer.add_string buf rest;
                (match String.split_on_char ' ' (String.trim line) with
                | [ "SCAN"; dir ] -> scan_dir ~arena conn dir
                | [ "PING" ] -> R.send conn "PONG\n"
                | [ "END" ] ->
                  R.close conn;
                  session_open := false
                | _ -> R.send conn "UNKNOWN COMMAND\n");
                serve ()
              | None ->
                let chunk = R.recv conn ~max:4096 in
                if chunk = "" then begin
                  R.close conn;
                  session_open := false
                end
                else begin
                  Buffer.add_string buf chunk;
                  serve ()
                end
          in
          serve ();
          loop ()
      in
      loop ()
    in
    R.spawn ~name:"clamd-listener" (fun () ->
        let l = R.listen ~port:cfg.port in
        while not (R.cell_get stopped) do
          R.poll l;
          let conn = R.accept l in
          B.Worklist.add worklist conn
        done);
    for i = 1 to cfg.nworkers do
      R.spawn ~name:(Printf.sprintf "clamd-worker%d" i) (fun () -> worker i)
    done;
    {
      Api.server_name = "clamav";
      state_of = (fun () -> string_of_int (B.Counter.get scanned));
      load_state = (fun s -> B.Counter.set scanned (int_of_string s));
      mem_bytes = (fun () -> cfg.mem_bytes);
      stop =
        (fun () ->
          R.cell_set stopped true;
          B.Worklist.close worklist);
      read = (fun _ -> None);
      footprint = (fun _ -> None);
    }
  in
  { Api.name = "clamav"; install = install_tree cfg; boot }
