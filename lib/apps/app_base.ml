(** Building blocks shared by the five server programs: the worklist of
    the paper's Figure 2 example and a cost model for interpreter-style
    request processing (segments of CPU work separated by Pthreads
    synchronizations — a PHP interpreter, a scan loop, a transcoder
    pipeline).  All of it is written against {!Api.API}, so every server
    runs unmodified under native Pthreads, PARROT, or CRANE. *)

module Time = Crane_sim.Time
module Api = Crane_core.Api

module Make (R : Api.API) = struct
  (* The listener/worker worklist of Figure 2: add() wakes one blocked
     worker; get() blocks while empty. *)
  module Worklist = struct
    type 'a t = {
      mu : R.mutex;
      nonempty : R.cond;
      items : 'a Queue.t;
      closed : bool R.cell;
    }

    let create ?(name = "worklist") () =
      {
        mu = R.mutex ~name:(name ^ ".mu") ();
        nonempty = R.cond ~name:(name ^ ".nonempty") ();
        items = Queue.create ();
        closed = R.cell ~name:(name ^ ".closed") false;
      }

    let add t item =
      R.lock t.mu;
      Queue.add item t.items;
      R.cond_signal t.nonempty;
      R.unlock t.mu

    (* None once closed and drained. *)
    let get t =
      R.lock t.mu;
      while Queue.is_empty t.items && not (R.cell_get t.closed) do
        R.cond_wait t.nonempty t.mu
      done;
      let item = Queue.take_opt t.items in
      R.unlock t.mu;
      item

    let close t =
      R.lock t.mu;
      R.cell_set t.closed true;
      R.cond_broadcast t.nonempty;
      R.unlock t.mu
  end

  (* Interpreter-style computation: [segments] bursts of CPU work, each
     followed by a synchronization on the interpreter's arena lock (the
     allocator / refcount locks a real PHP interpreter or scanner hits
     constantly).  Under DMT each boundary needs the global turn, which is
     what the soft-barrier hints exist to keep cheap.

     Segment costs vary deterministically with [salt] (page content,
     request identity): the total work is stable but threads fall out of
     step, and under round-robin every synchronization then waits for the
     slowest thread to reach its own boundary — the residual DMT overhead
     the paper measures even with hints in place. *)
  let staged_compute ?(salt = 0) ?(spread = 40) ~arena ~segments ~segment_cost () =
    for seg = 1 to segments do
      let h = Hashtbl.hash (salt, seg) land 0xFF in
      (* multiplier in [1-spread%, 1+spread%], mean 1.0 *)
      let lo = 100 - spread in
      let cost = segment_cost * (lo + (h * 2 * spread / 255)) / 100 in
      R.work cost;
      R.lock arena;
      R.unlock arena
    done

  (* Drain one full HTTP request from a connection. *)
  let read_http conn = Httpkit.read_request (fun () -> R.recv conn ~max:4096)

  let http_respond conn ~status ?headers body =
    R.send conn
      (Httpkit.response ~now:(Time.to_string (R.now ())) ~status ?headers body)

  (* Counter protected by a mutex: servers use it for request stats, and
     its value is part of the checkpointed process state.  The value
     lives in a monitored cell so the sanitizer can vouch that every
     access is ordered. *)
  module Counter = struct
    type t = { mu : R.mutex; n : int R.cell }

    let create ?(name = "counter") () =
      { mu = R.mutex ~name:(name ^ ".mu") (); n = R.cell ~name 0 }

    let incr t =
      R.lock t.mu;
      R.cell_set t.n (R.cell_get t.n + 1);
      R.unlock t.mu

    let get t = R.cell_get t.n
    let set t v = R.cell_set t.n v
  end

  (* Counter sharded per worker thread: each shard cell is touched by
     exactly one worker, so incrementing it creates no cross-command
     shared location — the conflict-serializability certifier treats
     thread-confined locations as exempt, and the dependency-aware gate
     can run footprint-disjoint requests in parallel without a hidden
     stats-counter conflict.  [get]/[set] (checkpoint state) run at
     quiescence, outside any request window. *)
  module Sharded_counter = struct
    type t = { shards : int R.cell array }

    let create ?(name = "counter") ~shards () =
      {
        shards =
          Array.init (max 1 shards) (fun i ->
              R.cell ~name:(Printf.sprintf "%s.%d" name i) 0);
      }

    let incr t ~shard =
      let c = t.shards.(shard mod Array.length t.shards) in
      R.cell_set c (R.cell_get c + 1)

    let get t = Array.fold_left (fun acc c -> acc + R.cell_get c) 0 t.shards

    let set t v =
      Array.iteri (fun i c -> R.cell_set c (if i = 0 then v else 0)) t.shards
  end
end
