(** Generic worker-pool HTTP server with a PHP-style interpreter — the
    structure of the paper's Figure 2 (a listener accepts connections into
    a worklist; workers dequeue, interpret a page, respond).

    Apache and Mongoose are two parameterizations of this shape.  The
    [hints] switch adds the paper's two lines of PARROT soft-barrier
    hints: one initialization "in main()", one wait "before a PHP
    interpretation's start" (§7.4). *)

module Time = Crane_sim.Time
module Api = Crane_core.Api
module Memfs = Crane_fs.Memfs

type config = {
  port : int;
  nworkers : int;
  php_segments : int;  (** compute segments per page interpretation *)
  segment_cost : Time.t;  (** page cost = segments * segment_cost *)
  hints : bool;  (** PARROT soft-barrier hints on the PHP interpreter *)
  hint_timeout_ticks : int;
  mem_bytes : int;  (** resident size for the CRIU cost model *)
  docroot : string;
}

let make ~name ~(cfg : config) : Api.server =
  let install fs =
    (* A document root with the benchmark page and some site content. *)
    Memfs.write fs ~path:(cfg.docroot ^ "/test.php") "<?php benchmark_page(); ?>";
    Memfs.write fs ~path:(cfg.docroot ^ "/index.html") "<html>welcome</html>";
    for i = 1 to 40 do
      Memfs.write fs
        ~path:(Printf.sprintf "%s/static/page%d.html" cfg.docroot i)
        (String.concat "\n" (List.init 50 (fun j -> Printf.sprintf "%s line %d-%d" name i j)))
    done;
    Memfs.write fs ~path:"conf/httpd.conf" (Printf.sprintf "workers=%d" cfg.nworkers)
  in
  let boot api =
    let module R = (val api : Api.API) in
    let module B = App_base.Make (R) in
    let served =
      B.Sharded_counter.create ~name:(name ^ ".served") ~shards:cfg.nworkers ()
    in
    let stopped = R.cell ~name:(name ^ ".stopped") false in
    let worklist = B.Worklist.create ~name:(name ^ ".worklist") () in
    (* Soft barrier initialized in main() — hint line 1. *)
    let barrier =
      if cfg.hints then
        Some (R.soft_barrier ~n:cfg.nworkers ~timeout_ticks:cfg.hint_timeout_ticks)
      else None
    in
    let handle_request conn (req : Httpkit.request) arena ~shard =
      match req.Httpkit.meth with
      | "GET" ->
        (* Hint line 2: line up the PHP interpretations. *)
        (match barrier with Some sb -> R.soft_barrier_wait sb | None -> ());
        let page = cfg.docroot ^ req.Httpkit.path in
        if Memfs.exists R.fs ~path:page then begin
          if Filename.check_suffix req.Httpkit.path ".php" then
            (* Interpret the page: the expensive parallel computation. *)
            B.staged_compute ~salt:(R.conn_id conn) ~arena
              ~segments:cfg.php_segments ~segment_cost:cfg.segment_cost ();
          B.Sharded_counter.incr served ~shard;
          B.http_respond conn ~status:200 (Memfs.read_exn R.fs ~path:page)
        end
        else begin
          B.Sharded_counter.incr served ~shard;
          B.http_respond conn ~status:404 "404 Not Found"
        end
      | "PUT" ->
        Memfs.write R.fs ~path:(cfg.docroot ^ req.Httpkit.path) req.Httpkit.body;
        B.Sharded_counter.incr served ~shard;
        B.http_respond conn ~status:201 "Created"
      | "DELETE" ->
        Memfs.delete R.fs ~path:(cfg.docroot ^ req.Httpkit.path);
        B.Sharded_counter.incr served ~shard;
        B.http_respond conn ~status:200 "Deleted"
      | _ -> B.http_respond conn ~status:500 "unsupported method"
    in
    let worker i =
      let arena = R.mutex ~name:(Printf.sprintf "%s.arena%d" name i) () in
      (* per-worker interpreter arena *)
      let rec loop () =
        match B.Worklist.get worklist with
        | None -> ()
        | Some conn ->
          let rec serve () =
            match B.read_http conn with
            | Some req ->
              handle_request conn req arena ~shard:(i - 1);
              serve ()
            | None -> R.close conn
          in
          serve ();
          loop ()
      in
      loop ()
    in
    R.spawn ~name:(name ^ "-listener") (fun () ->
        let l = R.listen ~port:cfg.port in
        while not (R.cell_get stopped) do
          R.poll l;
          let conn = R.accept l in
          B.Worklist.add worklist conn
        done);
    for i = 1 to cfg.nworkers do
      R.spawn ~name:(Printf.sprintf "%s-worker%d" name i) (fun () -> worker i)
    done;
    {
      Api.server_name = name;
      state_of = (fun () -> string_of_int (B.Sharded_counter.get served));
      load_state = (fun s -> B.Sharded_counter.set served (int_of_string s));
      mem_bytes = (fun () -> cfg.mem_bytes);
      stop =
        (fun () ->
          R.cell_set stopped true;
          B.Worklist.close worklist);
      read =
        (fun raw ->
          (* Static GETs answer straight from the document root.  PHP
             pages stay on the consensus path: their interpretation is
             the workload being measured (and hint-synchronized). *)
          if not (Httpkit.is_complete raw) then None
          else
            match Httpkit.parse_request raw with
            | Some { Httpkit.meth = "GET"; path; _ }
              when not (Filename.check_suffix path ".php") ->
              let page = cfg.docroot ^ path in
              let now = Time.to_string (R.now ()) in
              if Memfs.exists R.fs ~path:page then
                Some
                  (Httpkit.response ~now ~status:200
                     (Memfs.read_exn R.fs ~path:page))
              else Some (Httpkit.response ~now ~status:404 "404 Not Found")
            | Some _ | None -> None);
      footprint =
        (fun raw ->
          (* One request touches one document-root path; the PHP
             interpreter's arena lock is per-worker and the served
             counter is sharded, so distinct paths really are disjoint.
             Incomplete requests (split across sends) stay undeclared. *)
          if not (Httpkit.is_complete raw) then None
          else
            match Httpkit.parse_request raw with
            | Some { Httpkit.meth = "GET"; path; _ } ->
              Some { Api.fp_reads = [ cfg.docroot ^ path ]; fp_writes = [] }
            | Some { Httpkit.meth = "PUT" | "DELETE"; path; _ } ->
              Some { Api.fp_reads = []; fp_writes = [ cfg.docroot ^ path ] }
            | Some _ | None -> None);
    }
  in
  { Api.name; install; boot }
