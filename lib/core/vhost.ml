(** The server-side virtual socket host: CRANE's synchronization wrappers
    (paper §3.2, Figures 10-11) plus the time-bubbling gate (§4).

    A replica's server program never touches the network: its blocking
    socket calls are admitted from the head of the local PAXOS sequence.
    In {e clocked} mode (the real system) admission happens at
    deterministic logical clocks: the gate — the paper's
    [check_add_timebubble], installed into every DMT lock wrapper and the
    idle thread — blocks while the sequence is empty (so logical clocks
    only tick when it is not), requests a time bubble from the proxy after
    Wtimeout of emptiness, drains bubbles one clock at a time, and signals
    the thread blocked on the socket object matching the head entry.

    In {e immediate} mode ("w/ Paxos only" and the plan-II ablation's
    building block) entries are admitted the moment consensus delivers
    them, so admission clocks differ across replicas — which is the point
    of those baselines. *)

module Time = Crane_sim.Time
module Engine = Crane_sim.Engine
module Dmt = Crane_dmt.Dmt
module Bytestream = Crane_socket.Bytestream
module Trace = Crane_trace.Trace

type config = {
  wtimeout : Time.t;  (** empty-sequence duration before requesting a bubble (default 100 us) *)
  nclock : int;  (** logical clocks granted per bubble (default 1000) *)
  bubbling : bool;  (** plan II of §7.2 sets this false *)
  usleep : Time.t;  (** polling period of Figure 10's usleep (default 10 us) *)
  pool : int;
      (** execute-stage worker pool width.  1 (default) is classic CRANE:
          entries admitted strictly from the sequence head.  Above 1 the
          gate becomes a dependency-aware scan: committed commands with
          disjoint declared footprints are admitted concurrently onto
          separate scheduler lanes (requires a {!Clocked} DMT created
          with [pool + 1] lanes); conflicting or undeclared commands keep
          total log order. *)
}

let default_config =
  {
    wtimeout = Time.us 100;
    nclock = 1000;
    bubbling = true;
    usleep = Time.us 10;
    pool = 1;
  }

type signal_obj =
  | Dobj of int  (* DMT wait-queue object (clocked mode) *)
  | Raw of (unit -> bool) Queue.t  (* engine wakers (immediate mode) *)

type vconn = {
  vid : int;
  buf : Bytestream.t;
  mutable veof : bool;
  mutable vclosed : bool;
  mutable exec_open : bool;
      (* pool mode: an execute window (recv handoff -> next recv/close) is
         open on this connection; brackets the certifier's per-command
         event attribution *)
  cobj : signal_obj;
}

type vlistener = {
  lport : int;
  lobj : signal_obj;
  pending : int Queue.t; (* immediate mode: admitted connection ids *)
}

type clocking = Clocked of Dmt.t | Immediate

(** Callbacks into the proxy, registered atomically (the old per-callback
    setters were order-sensitive: a component could run with a
    half-registered set). *)
type handlers = {
  respond : conn:int -> string -> unit;
  on_server_close : int -> unit;
  request_bubble : unit -> unit;
}

let null_handlers =
  {
    respond = (fun ~conn:_ _ -> ());
    on_server_close = (fun _ -> ());
    request_bubble = (fun () -> ());
  }

(* Pool mode: one admitted-but-unretired command per connection.  Its
   footprint blocks conflicting later entries until the connection's
   worker proves quiescent again (drains its buffer and blocks in recv,
   or closes).  [afp = None] is a barrier: an undeclared command that
   conservatively touches everything. *)
type pool_entry = { aix : int; afp : Api.footprint option; alane : int }

type t = {
  eng : Engine.t;
  cfg : config;
  node : string;  (** replica name for trace attribution *)
  clocking : clocking;
  seq : Paxos_seq.t;
  conns : (int, vconn) Hashtbl.t;
  listeners : (int, vlistener) Hashtbl.t;
  output : Output_log.t;
  pool_active : (int, pool_entry) Hashtbl.t;  (* conn -> active command *)
  mutable pool_fp : string -> Api.footprint option;
  mutable handlers : handlers;
  mutable last_bubble_request : Time.t;
  mutable stopped : bool;
  mutable open_conns : int;
  mutable admitted : int;
  (* Read-watermark bookkeeping: per connection, the index of the last
     admitted Send whose processing may still be in flight.  An entry is
     cleared when the connection proves quiescent — its server thread
     drains the buffer and blocks in recv (everything admitted before
     that instant has been fully executed), or the server closes it.
     Bounded-stale reads subtract these from the claimed watermark so a
     read never claims an index whose state effects are still pending. *)
  inflight : (int, int) Hashtbl.t;
  (* Round-robin cursor for lane placement ties.  Load counts only
     active (unretired) commands, and a connection that blocks in recv
     retires instantly — so at a burst's admission every worker lane
     reads load 0, and a fixed tie-break would pile the whole burst
     onto one lane. *)
  mutable pool_rr : int;
  mutable last_gate_clock : int;
  (* gate statistics *)
  mutable bulk_drains : int;
  mutable delta_drained : int;
  mutable gate_blocks : int;
  mutable gate_block_time : Time.t;
}

let new_signal_obj t =
  match t.clocking with
  | Clocked dmt -> Dobj (Dmt.new_obj dmt)
  | Immediate -> Raw (Queue.create ())

let make_vconn t vid =
  let c =
    { vid; buf = Bytestream.create (); veof = false; vclosed = false;
      exec_open = false; cobj = new_signal_obj t }
  in
  Hashtbl.replace t.conns vid c;
  t.open_conns <- t.open_conns + 1;
  c

let signal_one ?lane t obj =
  match (t.clocking, obj) with
  | Clocked dmt, Dobj o -> Dmt.signal ?lane dmt ~obj:o
  | _, Raw q ->
    let rec go () =
      match Queue.take_opt q with
      | None -> ()
      | Some wake -> if not (wake ()) then go ()
    in
    go ()
  | Immediate, Dobj _ -> assert false

(* Admission bookkeeping: count, and expose the running total as a trace
   gauge so admission rate is visible on the replica's timeline. *)
let note_admit t =
  t.admitted <- t.admitted + 1;
  let tr = Engine.trace t.eng in
  if Trace.enabled tr then
    Trace.counter tr ~ts:(Engine.now t.eng) ~tid:(Engine.self_tid t.eng)
      ~node:t.node ~name:"admitted" t.admitted

(* ------------------------------------------------------------------ *)
(* Dependency-aware pool admission (pool > 1, clocked mode only). *)

let pool_mode t = t.cfg.pool > 1

let fp_conflict a b =
  let inter l1 l2 = List.exists (fun x -> List.mem x l2) l1 in
  inter a.Api.fp_writes b.Api.fp_writes
  || inter a.Api.fp_writes b.Api.fp_reads
  || inter a.Api.fp_reads b.Api.fp_writes

let pool_has_barrier t =
  Hashtbl.fold (fun _ e acc -> acc || e.afp = None) t.pool_active false

(* The connection's worker proved quiescent: everything admitted on it has
   fully executed, so its footprint stops blocking later commands and the
   read watermark may advance past it. *)
let pool_retire t (c : vconn) =
  Hashtbl.remove t.inflight c.vid;
  Hashtbl.remove t.pool_active c.vid

(* Execute-window brackets for the conflict-serializability certifier:
   [begin] when recv hands admitted bytes to server code, [end] when the
   same connection next blocks in recv (or closes).  Everything a worker
   does in between is attributed to the bracketed consensus index. *)
let exec_end t (c : vconn) =
  if c.exec_open then begin
    c.exec_open <- false;
    let tr = Engine.trace t.eng in
    if Trace.enabled tr then
      Trace.instant tr ~ts:(Engine.now t.eng) ~tid:(Engine.self_tid t.eng)
        ~node:t.node ~cat:"exec" ~name:"end" [ ("conn", Trace.Int c.vid) ]
  end

let exec_begin t (c : vconn) ~index ~lane =
  c.exec_open <- true;
  let tr = Engine.trace t.eng in
  if Trace.enabled tr then
    Trace.instant tr ~ts:(Engine.now t.eng) ~tid:(Engine.self_tid t.eng)
      ~node:t.node ~cat:"exec" ~name:"begin"
      [ ("index", Trace.Int index); ("conn", Trace.Int c.vid);
        ("lane", Trace.Int lane) ]

(* Place an admitted command on the least-loaded worker lane (lane 0 is
   the idle/bootstrap lane).  Purely a performance decision — derived
   from deterministic state under the turn, so it is itself
   deterministic — and never a correctness one: admission already
   guarantees concurrent commands are footprint-disjoint. *)
let pool_pick_lane t dmt =
  let lanes = Dmt.lane_count dmt in
  if lanes <= 1 then 0
  else begin
    let load = Array.make lanes 0 in
    Hashtbl.iter
      (fun _ e -> if e.alane < lanes then load.(e.alane) <- load.(e.alane) + 1)
      t.pool_active;
    let nw = lanes - 1 in
    let best = ref (1 + (t.pool_rr mod nw)) in
    for i = 1 to nw - 1 do
      let l = 1 + ((t.pool_rr + i) mod nw) in
      if load.(l) < load.(!best) then best := l
    done;
    t.pool_rr <- t.pool_rr + 1;
    !best
  end

let pool_scan_limit = 128

(* One admission scan over the decided sequence, in index order.  An entry
   is admissible iff every earlier entry of its connection was admitted
   (per-connection FIFO: one skip blocks the connection for the rest of
   the scan) and its footprint conflicts with no unretired earlier
   command — active or skipped — so per-resource order always follows
   index order.  Undeclared commands ([footprint] = None) are barriers:
   admitted only alone, blocking everything behind them. *)
let pool_scan t dmt =
  let blocked = Hashtbl.create 8 in
  let skipped_fps = ref [] in
  let skipped_any = ref false in
  let skipped_barrier = ref false in
  let barrier_live = ref (pool_has_barrier t) in
  let conflicts_existing fp =
    Hashtbl.fold
      (fun _ e acc ->
        acc
        || match e.afp with Some afp -> fp_conflict fp afp | None -> true)
      t.pool_active false
    || List.exists (fun sfp -> fp_conflict fp sfp) !skipped_fps
  in
  let skip_conn conn =
    Hashtbl.replace blocked conn ();
    skipped_any := true;
    `Skip
  in
  Paxos_seq.scan_admit t.seq ~limit:pool_scan_limit (fun ix ev ->
      match ev with
      | Event.Time_bubble _ -> `Stop (* unreachable: the scan stops at bubbles *)
      | Event.Connect { conn; port } ->
        if !barrier_live || !skipped_barrier then skip_conn conn
        else (
          match Hashtbl.find_opt t.listeners port with
          | Some l ->
            let (_ : vconn) = make_vconn t conn in
            note_admit t;
            Queue.add conn l.pending;
            signal_one ~lane:0 t l.lobj;
            `Admit
          | None -> skip_conn conn (* server not listening yet *))
      | Event.Send { conn; payload } -> (
        if Hashtbl.mem blocked conn then begin
          (match t.pool_fp payload with
          | Some fp -> skipped_fps := fp :: !skipped_fps
          | None -> skipped_barrier := true);
          skipped_any := true;
          `Skip
        end
        else
          match Hashtbl.find_opt t.conns conn with
          | Some c when not c.vclosed -> (
            if
              Hashtbl.mem t.pool_active conn
              || !barrier_live || !skipped_barrier
            then begin
              (match t.pool_fp payload with
              | Some fp -> skipped_fps := fp :: !skipped_fps
              | None -> skipped_barrier := true);
              skip_conn conn
            end
            else
              match t.pool_fp payload with
              | None ->
                if Hashtbl.length t.pool_active = 0 && not !skipped_any then begin
                  (* barrier admitted alone, in strict log order *)
                  Bytestream.push c.buf payload;
                  Hashtbl.replace t.inflight conn ix;
                  Hashtbl.replace t.pool_active conn
                    { aix = ix; afp = None; alane = 0 };
                  barrier_live := true;
                  note_admit t;
                  signal_one ~lane:0 t c.cobj;
                  `Admit
                end
                else begin
                  skipped_barrier := true;
                  skip_conn conn
                end
              | Some fp ->
                if conflicts_existing fp then begin
                  skipped_fps := fp :: !skipped_fps;
                  skip_conn conn
                end
                else begin
                  let lane = pool_pick_lane t dmt in
                  Bytestream.push c.buf payload;
                  Hashtbl.replace t.inflight conn ix;
                  Hashtbl.replace t.pool_active conn
                    { aix = ix; afp = Some fp; alane = lane };
                  note_admit t;
                  signal_one ~lane t c.cobj;
                  `Admit
                end)
          | Some _ | None ->
            (* server already closed it (or never had it): admit and
               discard, mirroring the head-dispatch drop *)
            `Admit)
      | Event.Close { conn } -> (
        if Hashtbl.mem blocked conn then begin
          skipped_any := true;
          `Skip
        end
        else
          match Hashtbl.find_opt t.conns conn with
          | Some c when not c.vclosed ->
            (* EOF after any buffered data; the worker observes it once
               its buffer drains.  Deliberately does NOT clear inflight:
               an active command may still be executing. *)
            c.veof <- true;
            signal_one ~lane:0 t c.cobj;
            `Admit
          | Some _ | None -> `Admit))

(* The gate — paper Figure 10, [check_add_timebubble].  Runs with the DMT
   turn held (from lock wrappers and the idle thread). *)
let gate t =
  if t.cfg.bubbling && Paxos_seq.is_empty t.seq then begin
    let t0 = Engine.now t.eng in
    t.gate_blocks <- t.gate_blocks + 1;
    let tr = Engine.trace t.eng in
    let traced = Trace.enabled tr in
    if traced then
      Trace.span_begin tr ~ts:t0 ~tid:(Engine.self_tid t.eng) ~node:t.node
        ~cat:"gate" ~name:"block" [];
    while Paxos_seq.is_empty t.seq && not t.stopped do
      let now = Engine.now t.eng in
      if
        Paxos_seq.empty_for t.seq >= t.cfg.wtimeout
        && now - t.last_bubble_request >= t.cfg.wtimeout
      then begin
        t.last_bubble_request <- now;
        t.handlers.request_bubble ()
      end;
      Engine.sleep t.eng t.cfg.usleep
    done;
    if traced then
      Trace.span_end tr ~ts:(Engine.now t.eng) ~tid:(Engine.self_tid t.eng)
        ~node:t.node ~cat:"gate" ~name:"block" [];
    t.gate_block_time <- t.gate_block_time + (Engine.now t.eng - t0)
  end;
  (* A bubble promises Nclock *synchronizations* (every turn handoff
     ticks the logical clock), but this hook only runs on lock wrappers
     and idle cycles: charge the ticks elapsed since the previous gate
     call so bubbles drain at the scheduler's real synchronization rate. *)
  let tick_delta =
    match t.clocking with
    | Clocked dmt ->
      let now_clock = Dmt.clock dmt in
      let delta = max 1 (now_clock - t.last_gate_clock) in
      t.last_gate_clock <- now_clock;
      delta
    | Immediate -> 1
  in
  match Paxos_seq.head t.seq with
  | None -> ()
  | Some (Event.Time_bubble _) -> (
    match t.clocking with
    | Clocked dmt when Dmt.run_queue_length dmt = 1 ->
      (* Only the idle thread is runnable.  Drain the bubble at a paced
         rate rather than instantly: a bubble must outlive the short
         quiet gaps between request arrivals (that is its whole job —
         §4's bursts), while still being exhausted "rapidly" relative to
         request processing times.  One pacing sleep drains a few clocks,
         so a default bubble spans ~1 ms of true quiescence. *)
      t.bulk_drains <- t.bulk_drains + 1;
      (* Chunked pacing (10x usleep per chunk) keeps the idle event rate
         low without changing the ~1 us/clock drain rate. *)
      let chunk = t.cfg.usleep * 10 in
      Engine.sleep t.eng chunk;
      let per_cycle = max 1 (chunk / Time.us 1) in
      (let tr = Engine.trace t.eng in
       if Trace.enabled tr then
         Trace.instant tr ~ts:(Engine.now t.eng) ~tid:(Engine.self_tid t.eng)
           ~node:t.node ~cat:"gate" ~name:"bubble_drain"
           [ ("clocks", Trace.Int per_cycle); ("bulk", Trace.Int 1) ]);
      Paxos_seq.drain_bubble_upto t.seq per_cycle;
      Dmt.advance_clock dmt (per_cycle - 1)
    | Clocked _ ->
      t.delta_drained <- t.delta_drained + 1;
      (let tr = Engine.trace t.eng in
       if Trace.enabled tr then
         Trace.instant tr ~ts:(Engine.now t.eng) ~tid:(Engine.self_tid t.eng)
           ~node:t.node ~cat:"gate" ~name:"bubble_drain"
           [ ("clocks", Trace.Int tick_delta); ("bulk", Trace.Int 0) ]);
      Paxos_seq.drain_bubble_upto t.seq tick_delta
    | Immediate -> Paxos_seq.decrement_bubble t.seq)
  | Some _ when pool_mode t -> (
    (* Dependency-aware admission: scan past the head, admitting every
       decided command whose footprint conflicts with nothing earlier
       still unretired. *)
    match t.clocking with
    | Clocked dmt -> pool_scan t dmt
    | Immediate -> ())
  | Some (Event.Connect { port; _ }) -> (
    match Hashtbl.find_opt t.listeners port with
    | Some l -> signal_one t l.lobj
    | None -> () (* server not listening yet: leave at head *))
  | Some (Event.Send { conn; _ } | Event.Close { conn }) -> (
    match Hashtbl.find_opt t.conns conn with
    | Some c when not c.vclosed -> signal_one t c.cobj
    | Some _ | None ->
      (* The server already closed this connection (or never had it):
         discard, or the sequence would jam. *)
      Paxos_seq.drop_head t.seq)

let create ?(node = "") eng ~cfg ~clocking =
  let t =
    {
      eng;
      cfg;
      node;
      clocking;
      seq = Paxos_seq.create ~node eng;
      conns = Hashtbl.create 64;
      listeners = Hashtbl.create 4;
      output = Output_log.create ();
      pool_active = Hashtbl.create 8;
      pool_fp = (fun _ -> None);
      handlers = null_handlers;
      last_bubble_request = Time.zero;
      stopped = false;
      open_conns = 0;
      admitted = 0;
      inflight = Hashtbl.create 64;
      pool_rr = 0;
      last_gate_clock = 0;
      bulk_drains = 0;
      delta_drained = 0;
      gate_blocks = 0;
      gate_block_time = Time.zero;
    }
  in
  (match clocking with
  | Clocked dmt -> Dmt.set_gate dmt (fun () -> gate t)
  | Immediate -> ());
  t

(* ------------------------------------------------------------------ *)
(* Delivery from the proxy (consensus decision order). *)

let deliver t ?index ?view ev =
  match t.clocking with
  | Clocked _ -> Paxos_seq.append t.seq ?index ?view ev
  | Immediate -> (
    Paxos_seq.append t.seq ?index ?view ev;
    (* Admit instantly: drain the queue into connection state. *)
    let rec drain () =
      match Paxos_seq.head t.seq with
      | None -> ()
      | Some (Event.Time_bubble _) ->
        (* No clocking to grant: bubbles are inert here. *)
        let rec exhaust () =
          match Paxos_seq.head t.seq with
          | Some (Event.Time_bubble _) ->
            Paxos_seq.decrement_bubble t.seq;
            exhaust ()
          | Some _ | None -> ()
        in
        exhaust ();
        drain ()
      | Some (Event.Connect { conn; port }) ->
        Paxos_seq.drop_head t.seq;
        let (_ : vconn) = make_vconn t conn in
        note_admit t;
        (match Hashtbl.find_opt t.listeners port with
        | Some l ->
          Queue.add conn l.pending;
          signal_one t l.lobj
        | None -> Hashtbl.remove t.conns conn);
        drain ()
      | Some (Event.Send { conn; payload }) ->
        let ix = Paxos_seq.drop_head_ix t.seq in
        (match Hashtbl.find_opt t.conns conn with
        | Some c when not c.vclosed ->
          Bytestream.push c.buf payload;
          Hashtbl.replace t.inflight conn ix;
          note_admit t;
          signal_one t c.cobj
        | Some _ | None -> ());
        drain ()
      | Some (Event.Close { conn }) ->
        Paxos_seq.drop_head t.seq;
        (match Hashtbl.find_opt t.conns conn with
        | Some c ->
          c.veof <- true;
          signal_one t c.cobj
        | None -> ());
        drain ()
    in
    drain ())

(* ------------------------------------------------------------------ *)
(* Socket-call wrappers: clocked mode (Figures 10-11). *)

let dmt_of t =
  match t.clocking with Clocked d -> d | Immediate -> assert false

let listen t ~port =
  if Hashtbl.mem t.listeners port then
    invalid_arg (Printf.sprintf "Vhost.listen: port %d taken" port);
  let l = { lport = port; lobj = new_signal_obj t; pending = Queue.create () } in
  Hashtbl.replace t.listeners port l;
  l

let head_is_connect_for t l =
  match Paxos_seq.head t.seq with
  | Some (Event.Connect { port; _ }) -> port = l.lport
  | Some (Event.Send _ | Event.Close _ | Event.Time_bubble _) | None -> false

let raw_wait t q =
  Engine.suspend t.eng (fun wake -> Queue.add (fun () -> wake ()) q)

let poll t l =
  match t.clocking with
  | Clocked dmt when pool_mode t ->
    (* Pool mode admits Connects into the pending queue from the scan. *)
    Dmt.get_turn dmt;
    (match l.lobj with
    | Dobj o -> while Queue.is_empty l.pending do Dmt.wait dmt ~obj:o done
    | Raw _ -> assert false);
    Dmt.put_turn dmt
  | Clocked dmt ->
    Dmt.get_turn dmt;
    (match l.lobj with
    | Dobj o -> while not (head_is_connect_for t l) do Dmt.wait dmt ~obj:o done
    | Raw _ -> assert false);
    Dmt.put_turn dmt
  | Immediate -> (
    match l.lobj with
    | Raw q -> while Queue.is_empty l.pending do raw_wait t q done
    | Dobj _ -> assert false)

let accept t l =
  match t.clocking with
  | Clocked dmt when pool_mode t ->
    Dmt.get_turn dmt;
    (match l.lobj with
    | Dobj o -> while Queue.is_empty l.pending do Dmt.wait dmt ~obj:o done
    | Raw _ -> assert false);
    let vid = Queue.pop l.pending in
    let c = Hashtbl.find t.conns vid in
    Dmt.put_turn dmt;
    c
  | Clocked dmt ->
    Dmt.get_turn dmt;
    (match l.lobj with
    | Dobj o -> while not (head_is_connect_for t l) do Dmt.wait dmt ~obj:o done
    | Raw _ -> assert false);
    let c =
      match Paxos_seq.head t.seq with
      | Some (Event.Connect { conn; _ }) ->
        Paxos_seq.drop_head t.seq;
        note_admit t;
        make_vconn t conn
      | Some _ | None -> assert false
    in
    Dmt.put_turn dmt;
    c
  | Immediate -> (
    match l.lobj with
    | Raw q ->
      while Queue.is_empty l.pending do
        raw_wait t q
      done;
      let vid = Queue.pop l.pending in
      Hashtbl.find t.conns vid
    | Dobj _ -> assert false)

(* Move entries for [c] sitting at the sequence head into its buffer. *)
let rec consume_admitted t (c : vconn) =
  match Paxos_seq.head t.seq with
  | Some (Event.Send { conn; payload }) when conn = c.vid ->
    let ix = Paxos_seq.drop_head_ix t.seq in
    Hashtbl.replace t.inflight c.vid ix;
    note_admit t;
    Bytestream.push c.buf payload;
    consume_admitted t c
  | Some (Event.Close { conn }) when conn = c.vid ->
    Paxos_seq.drop_head t.seq;
    (* The admitting thread is blocked in recv, so earlier requests on
       this connection have already executed: safe to stop tracking. *)
    Hashtbl.remove t.inflight c.vid;
    c.veof <- true
  | Some (Event.Connect _ | Event.Send _ | Event.Close _ | Event.Time_bubble _)
  | None -> ()

let recv t (c : vconn) ~max =
  (* recv on a connection this server already closed returns EOF
     immediately: its sequence entries are discarded by the gate, so
     waiting would never be signalled. *)
  (match t.clocking with
  | Clocked dmt when pool_mode t ->
    (* Pool mode: payloads were pushed into the buffer by the admission
       scan; recv only retires, brackets the execute window, and takes. *)
    Dmt.get_turn dmt;
    exec_end t c;
    (match c.cobj with
    | Dobj o ->
      while Bytestream.is_empty c.buf && (not c.veof) && not c.vclosed do
        (* About to block with an empty buffer: every admitted command on
           this connection has fully executed — retire it, freeing its
           footprint and the read watermark. *)
        pool_retire t c;
        Dmt.wait dmt ~obj:o
      done
    | Raw _ -> assert false);
    if Bytestream.is_empty c.buf then pool_retire t c
    else begin
      let index =
        Option.value (Hashtbl.find_opt t.inflight c.vid) ~default:0
      in
      (* If admission raced ahead of this worker's first recv, the
         re-laning signal found no parked waiter: move ourselves onto
         the command's assigned lane before opening the window. *)
      (match Hashtbl.find_opt t.pool_active c.vid with
      | Some { alane; _ } when alane > 0 -> Dmt.relane dmt ~lane:alane
      | Some _ | None -> ());
      exec_begin t c ~index ~lane:(Dmt.current_lane dmt)
    end;
    Dmt.put_turn dmt
  | Clocked dmt ->
    Dmt.get_turn dmt;
    consume_admitted t c;
    (match c.cobj with
    | Dobj o ->
      while Bytestream.is_empty c.buf && (not c.veof) && not c.vclosed do
        (* About to block with an empty buffer: every admitted request on
           this connection has been fully executed. *)
        Hashtbl.remove t.inflight c.vid;
        Dmt.wait dmt ~obj:o;
        consume_admitted t c
      done
    | Raw _ -> assert false);
    Dmt.put_turn dmt
  | Immediate -> (
    match c.cobj with
    | Raw q ->
      while Bytestream.is_empty c.buf && (not c.veof) && not c.vclosed do
        Hashtbl.remove t.inflight c.vid;
        raw_wait t q
      done
    | Dobj _ -> assert false));
  if Bytestream.is_empty c.buf then Hashtbl.remove t.inflight c.vid;
  if c.vclosed then "" else Bytestream.take c.buf ~max

let send t (c : vconn) payload =
  let deliver () =
    Output_log.record t.output ~conn:c.vid payload;
    (* The server produced the response for whatever request it last
       admitted on this connection: the execute -> reply boundary. *)
    (let tr = Engine.trace t.eng in
     if Trace.enabled tr then
       Trace.instant tr ~ts:(Engine.now t.eng) ~tid:(Engine.self_tid t.eng)
         ~node:t.node ~cat:"req" ~name:"reply"
         [ ("conn", Trace.Int c.vid);
           ("bytes", Trace.Int (String.length payload)) ]);
    if not c.vclosed then t.handlers.respond ~conn:c.vid payload
  in
  match t.clocking with
  | Clocked dmt ->
    (* Outgoing calls are scheduled by DMT but need no consensus (§2.1). *)
    Dmt.get_turn dmt;
    deliver ();
    Dmt.put_turn dmt
  | Immediate -> deliver ()

let close t (c : vconn) =
  let perform () =
    if not c.vclosed then begin
      c.vclosed <- true;
      t.open_conns <- t.open_conns - 1;
      Hashtbl.remove t.inflight c.vid;
      Hashtbl.remove t.pool_active c.vid;
      t.handlers.on_server_close c.vid
    end
  in
  match t.clocking with
  | Clocked dmt ->
    Dmt.get_turn dmt;
    exec_end t c;
    perform ();
    Dmt.put_turn dmt
  | Immediate -> perform ()

let conn_id (c : vconn) = c.vid

(* ------------------------------------------------------------------ *)

let stop t = t.stopped <- true
let output t = t.output
let seq t = t.seq
let open_conns t = t.open_conns
let admitted t = t.admitted

let gate_stats t = (t.bulk_drains, t.delta_drained, t.gate_blocks, t.gate_block_time)

(* Highest consensus index whose state effects this replica's server is
   guaranteed to reflect: everything applied by consensus, minus entries
   still queued in the sequence, minus admitted-but-possibly-executing
   requests.  An index-0 entry (pre-index replay) claims nothing. *)
let read_watermark t ~applied =
  let wm =
    match Paxos_seq.lowest_index t.seq with
    | Some ix -> min applied (max 0 (ix - 1))
    | None -> applied
  in
  Hashtbl.fold (fun _ ix acc -> min acc (max 0 (ix - 1))) t.inflight wm

let set_handlers t handlers = t.handlers <- handlers

let set_footprint t f = t.pool_fp <- f
(** Install the server's conflict-footprint classifier (pool mode). *)

let nclock t = t.cfg.nclock
let pool t = t.cfg.pool
