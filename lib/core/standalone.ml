(** Un-replicated deployments for the paper's baselines: the same server
    program on a single machine, under plain Pthreads (the nondeterministic
    baseline of Figure 14) or under PARROT alone ("w/ Parrot only"). *)

module Time = Crane_sim.Time
module Engine = Crane_sim.Engine
module Rng = Crane_sim.Rng
module Cores = Crane_sim.Cores
module Fabric = Crane_net.Fabric
module Sock = Crane_socket.Sock
module Memfs = Crane_fs.Memfs

type mode = Native | Parrot

type t = {
  eng : Engine.t;
  fabric : Fabric.t;
  world : Sock.world;
  node : string;
  runtime : Runtime.t;
  handle : Api.handle;
  dmt : Crane_dmt.Dmt.t option;
}

let boot ?(seed = 42) ?(node = "server") ?(cores = 24) ?turn_cost
    ?pthread_cost ?trace ~mode ~(server : Api.server) () =
  let eng = Engine.create () in
  (match trace with Some tr -> Engine.set_trace eng tr | None -> ());
  let rng = Rng.create seed in
  let fabric = Fabric.create eng (Rng.split rng) in
  let world = Sock.world fabric in
  let fs = Memfs.create () in
  server.Api.install fs;
  let pool = Cores.create eng cores in
  let runtime, dmt =
    match mode with
    | Native ->
      ( Runtime.native ?cost:pthread_cost ~eng ~world ~node ~fs ~cores:pool
          ~rng:(Rng.split rng) (),
        None )
    | Parrot ->
      let rt, dmt = Runtime.parrot ?turn_cost ~eng ~world ~node ~fs ~cores:pool () in
      Crane_dmt.Dmt.set_label dmt node;
      (rt, Some dmt)
  in
  let handle = server.Api.boot runtime.Runtime.api in
  { eng; fabric; world; node; runtime; handle; dmt }

let engine t = t.eng
let world t = t.world
let output t = t.runtime.Runtime.output

let stop t =
  t.handle.Api.stop ();
  match t.dmt with Some d -> Crane_dmt.Dmt.stop d | None -> ()

let check_failures t =
  match Engine.failures t.eng with
  | [] -> ()
  | (name, e) :: _ ->
    failwith (Printf.sprintf "simulated thread %s died: %s" name (Printexc.to_string e))
