(** Per-replica log of the server's outgoing socket calls (paper §7.2).

    Records the order and contents of everything the server sent; the
    consistency experiment diffs these logs across replicas.  As in the
    paper, responses are identical "except physical times", so the
    comparison can normalize away timestamp header lines.

    The log is bounded: once a prefix has been acked by every live
    replica (the compaction watermark), {!trim_to} folds it into a
    running chain digest and frees the entries.  Comparisons align the
    two logs on their trimmed prefixes — digests must match, then the
    retained regions are compared entry by entry — so trimming at
    different instants on different replicas cannot produce spurious
    divergence (or hide a real one: every byte ever recorded still
    influences the digest). *)

type entry = { conn : int; payload : string }

type t = {
  mutable entries : entry list; (* newest first *)
  mutable dropped : int; (* entries folded into [digest] and freed *)
  mutable digest : string; (* chain digest of the dropped prefix *)
}

let create () = { entries = []; dropped = 0; digest = "" }
let record t ~conn payload = t.entries <- { conn; payload } :: t.entries
let entries t = List.rev t.entries
let length t = List.length t.entries
let dropped t = t.dropped
let total t = t.dropped + List.length t.entries
let prefix_digest t = t.digest

(* Strip lines that carry physical time (HTTP Date headers and our
   servers' "X-Time:" equivalents). *)
let normalize_payload payload =
  String.split_on_char '\n' payload
  |> List.filter (fun line ->
         not
           (String.starts_with ~prefix:"Date:" line
           || String.starts_with ~prefix:"X-Time:" line))
  |> String.concat "\n"

(* The chain digest always folds the normalized form: a trimmed prefix
   can no longer be compared with timestamps intact. *)
let fold_entry digest { conn; payload } =
  Digest.to_hex
    (Digest.string
       (digest ^ Printf.sprintf "[%d]%s" conn (normalize_payload payload)))

let trim_to t ~keep =
  let keep = max 0 keep in
  let n = List.length t.entries in
  if n > keep then begin
    let excess = n - keep in
    let rec go i digest l =
      if i = 0 then (digest, l)
      else
        match l with
        | [] -> (digest, [])
        | e :: rest -> go (i - 1) (fold_entry digest e) rest
    in
    let digest, kept = go excess t.digest (List.rev t.entries) in
    t.digest <- digest;
    t.dropped <- t.dropped + excess;
    t.entries <- List.rev kept
  end

(* Virtually advance [t] to [n] dropped entries: fold the oldest retained
   entries into a copy of the digest.  [None] when [n] predates this
   log's trim point or exceeds what it ever held. *)
let align t n =
  if n < t.dropped then None
  else
    let rec go i digest l =
      if i = 0 then Some (digest, l)
      else match l with [] -> None | e :: rest -> go (i - 1) (fold_entry digest e) rest
    in
    go (n - t.dropped) t.digest (entries t)

let render ?(strip_times = true) t =
  let body =
    entries t
    |> List.map (fun { conn; payload } ->
           Printf.sprintf "[%d]%s" conn
             (if strip_times then normalize_payload payload else payload))
    |> String.concat "\x00"
  in
  if t.dropped = 0 then body
  else Printf.sprintf "<%d trimmed %s>\x00%s" t.dropped t.digest body

let norm_entry strip_times e =
  (e.conn, if strip_times then normalize_payload e.payload else e.payload)

let equal ?(strip_times = true) a b =
  let n = max a.dropped b.dropped in
  match (align a n, align b n) with
  | Some (da, ra), Some (db, rb) ->
    String.equal da db
    && List.map (norm_entry strip_times) ra = List.map (norm_entry strip_times) rb
  | _ -> false

(* A replica restarted from a checkpoint only re-emits outputs for calls
   decided after the checkpoint's global index, so its log must match the
   tail of a continuously-live replica's log.  When either side has
   trimmed, only the common suffix of the retained regions is comparable
   entry-by-entry (the digests cover disjoint prefixes and cannot be
   aligned across a restart). *)
let is_suffix ?(strip_times = true) ~of_ t =
  let full = List.map (norm_entry strip_times) (entries of_)
  and tail = List.map (norm_entry strip_times) (entries t) in
  let rec skip n l =
    if n <= 0 then l else match l with [] -> [] | _ :: r -> skip (n - 1) r
  in
  if of_.dropped = 0 && t.dropped = 0 then
    let drop = List.length full - List.length tail in
    drop >= 0 && skip drop full = tail
  else
    let lf = List.length full and lt = List.length tail in
    let m = min lf lt in
    skip (lf - m) full = skip (lt - m) tail

(* First index (in whole-history coordinates) where two logs disagree,
   for diagnostics. *)
let first_divergence ?(strip_times = true) a b =
  let n = max a.dropped b.dropped in
  match (align a n, align b n) with
  | Some (da, ra), Some (db, rb) ->
    if not (String.equal da db) then Some (min a.dropped b.dropped)
    else
      let rec go i = function
        | [], [] -> None
        | x :: xs, y :: ys ->
          if norm_entry strip_times x = norm_entry strip_times y then
            go (i + 1) (xs, ys)
          else Some i
        | _ :: _, [] | [], _ :: _ -> Some i
      in
      go n (ra, rb)
  | _ -> Some (min a.dropped b.dropped)
