(** Per-replica log of the server's outgoing socket calls (paper §7.2).

    Records the order and contents of everything the server sent; the
    consistency experiment diffs these logs across replicas.  As in the
    paper, responses are identical "except physical times", so the
    comparison can normalize away timestamp header lines. *)

type entry = { conn : int; payload : string }

type t = { mutable entries : entry list (* newest first *) }

let create () = { entries = [] }
let record t ~conn payload = t.entries <- { conn; payload } :: t.entries
let entries t = List.rev t.entries
let length t = List.length t.entries

(* Strip lines that carry physical time (HTTP Date headers and our
   servers' "X-Time:" equivalents). *)
let normalize_payload payload =
  String.split_on_char '\n' payload
  |> List.filter (fun line ->
         not
           (String.starts_with ~prefix:"Date:" line
           || String.starts_with ~prefix:"X-Time:" line))
  |> String.concat "\n"

let render ?(strip_times = true) t =
  entries t
  |> List.map (fun { conn; payload } ->
         Printf.sprintf "[%d]%s" conn
           (if strip_times then normalize_payload payload else payload))
  |> String.concat "\x00"

let equal ?strip_times a b = String.equal (render ?strip_times a) (render ?strip_times b)

(* A replica restarted from a checkpoint only re-emits outputs for calls
   decided after the checkpoint's global index, so its log must match the
   tail of a continuously-live replica's log. *)
let is_suffix ?(strip_times = true) ~of_ t =
  let norm l =
    List.map
      (fun { conn; payload } ->
        (conn, if strip_times then normalize_payload payload else payload))
      (entries l)
  in
  let full = norm of_ and tail = norm t in
  let drop = List.length full - List.length tail in
  let rec skip n l = if n <= 0 then l else match l with [] -> [] | _ :: r -> skip (n - 1) r in
  drop >= 0 && skip drop full = tail

(* First index where two logs disagree, for diagnostics. *)
let first_divergence ?(strip_times = true) a b =
  let norm e =
    (e.conn, if strip_times then normalize_payload e.payload else e.payload)
  in
  let rec go i = function
    | [], [] -> None
    | x :: xs, y :: ys -> if norm x = norm y then go (i + 1) (xs, ys) else Some i
    | _ :: _, [] | [], _ :: _ -> Some i
  in
  go 0 (entries a, entries b)
