(** Values decided by PAXOS: clients' incoming socket calls and time
    bubbles (paper §2.1, §4).  Encoded to opaque strings for the consensus
    component and its durable log. *)

type t =
  | Connect of { conn : int; port : int }  (** client connect() *)
  | Send of { conn : int; payload : string }  (** client send() *)
  | Close of { conn : int }  (** client close() *)
  | Time_bubble of { nclock : int }

let encode (t : t) = Marshal.to_string t []
let decode s : t = Marshal.from_string s 0

let is_bubble = function Time_bubble _ -> true | Connect _ | Send _ | Close _ -> false
let is_call ev = not (is_bubble ev)

let encode_batch (evs : t list) = List.map encode evs
(** Encode a burst of events for {!Crane_paxos.Paxos.submit_batch}: one
    consensus round, one record per event (each keeps its own global
    index, so batching never changes the decision sequence). *)

let pp fmt = function
  | Connect { conn; port } -> Format.fprintf fmt "connect(conn=%d,port=%d)" conn port
  | Send { conn; payload } -> Format.fprintf fmt "send(conn=%d,%dB)" conn (String.length payload)
  | Close { conn } -> Format.fprintf fmt "close(conn=%d)" conn
  | Time_bubble { nclock } -> Format.fprintf fmt "bubble(%d)" nclock
