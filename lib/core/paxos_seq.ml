(** The PAXOS sequence (paper §3.2): the queue of decided client socket
    calls and time bubbles between a replica's proxy and its server
    process (Boost shared memory in the paper).  The server's wrappers
    admit calls from its head; bubbles at the head are drained one logical
    clock at a time. *)

module Time = Crane_sim.Time
module Engine = Crane_sim.Engine
module Trace = Crane_trace.Trace

type t = {
  eng : Engine.t;
  node : string;  (** replica name for trace attribution *)
  q : (int * Event.t) Queue.t;
      (* Entries carry their global consensus index (0 = unknown, e.g.
         checkpoint replay before indices were threaded through): the
         trace id request spans are joined on. *)
  mutable bubble_left : int;
      (* Remaining logical clocks of a bubble currently at the head
         (0 = the head is whatever [q] starts with). *)
  mutable last_nonempty : Time.t;
      (* Last instant the sequence held (or received) an entry: the
         Wtimeout reference point. *)
  mutable calls : int; (* client socket-call entries appended *)
  mutable bubbles : int; (* time-bubble entries appended *)
  mutable queued_calls : int; (* client calls delivered but not yet consumed *)
  mutable max_depth : int;
      (* High-water mark of the queue: batched consensus delivers commits
         in bursts, and this records how deep the burst backlog got.
         Attributed per view: a view change resets it to the current
         depth, so a report never shows a stale peak from a previous
         primary's burst regime. *)
  mutable depth_view : int; (* view the current high-water mark belongs to *)
}

let create ?(node = "") eng =
  {
    eng;
    node;
    q = Queue.create ();
    bubble_left = 0;
    last_nonempty = Engine.now eng;
    calls = 0;
    bubbles = 0;
    queued_calls = 0;
    max_depth = 0;
    depth_view = 0;
  }

let append t ?(index = 0) ?(view = 0) ev =
  Queue.add (index, ev) t.q;
  if view > t.depth_view then begin
    t.depth_view <- view;
    t.max_depth <- Queue.length t.q
  end;
  if Queue.length t.q > t.max_depth then t.max_depth <- Queue.length t.q;
  t.last_nonempty <- Engine.now t.eng;
  (let tr = Engine.trace t.eng in
   if Trace.enabled tr then
     Trace.instant tr ~ts:(Engine.now t.eng) ~tid:(Engine.self_tid t.eng)
       ~node:t.node ~cat:"seq"
       ~name:(if Event.is_bubble ev then "append_bubble" else "append_call")
       [ ("depth", Trace.Int (Queue.length t.q)); ("index", Trace.Int index) ]);
  if Event.is_bubble ev then t.bubbles <- t.bubbles + 1
  else begin
    t.calls <- t.calls + 1;
    t.queued_calls <- t.queued_calls + 1
  end

(* Promote a bubble reaching the head of the queue into the counter. *)
let normalize t =
  if t.bubble_left = 0 then
    match Queue.peek_opt t.q with
    | Some (_, Event.Time_bubble { nclock }) ->
      ignore (Queue.pop t.q);
      t.bubble_left <- nclock
    | Some _ | None -> ()

let head t =
  normalize t;
  if t.bubble_left > 0 then Some (Event.Time_bubble { nclock = t.bubble_left })
  else Option.map snd (Queue.peek_opt t.q)

(* Shared admission bookkeeping for an entry leaving the queue, whether
   popped from the head or plucked mid-queue by the pool-mode scan. *)
let note_admitted t index ev =
  if not (Event.is_bubble ev) then begin
    t.queued_calls <- t.queued_calls - 1;
    let tr = Engine.trace t.eng in
    if Trace.enabled tr then begin
      let ts = Engine.now t.eng and tid = Engine.self_tid t.eng in
      let conn =
        match ev with
        | Event.Connect { conn; _ } | Event.Send { conn; _ }
        | Event.Close { conn } -> conn
        | Event.Time_bubble _ -> -1
      in
      Trace.instant tr ~ts ~tid ~node:t.node ~cat:"seq" ~name:"admit"
        [ ("index", Trace.Int index); ("conn", Trace.Int conn) ];
      (* Close the proposer-opened request-lifecycle span.  Every
         replica admits the index; the first admission wins the pair,
         later ends find no open span and are ignored. *)
      if index > 0 then
        Trace.async_end tr ~ts ~tid ~id:index ~node:t.node ~cat:"req"
          ~name:"lifecycle" []
    end
  end

(* Admit the call at the head, returning its global index (0 when the
   entry predates index threading, e.g. checkpoint replay). *)
let drop_head_ix t =
  normalize t;
  if t.bubble_left > 0 then invalid_arg "Paxos_seq.drop_head: head is a bubble"
  else begin
    let index, ev = Queue.pop t.q in
    note_admitted t index ev;
    index
  end

let drop_head t = ignore (drop_head_ix t)

(* Pool-mode admission scan: visit queued entries in index order, letting
   [f ix ev] admit (remove, with the same bookkeeping and trace events as
   [drop_head_ix]), skip (leave queued, keep scanning) or stop.  The scan
   never crosses a time bubble — bubbles are barriers drained by the gate
   at the head, exactly as in 1-lane mode — and visits at most [limit]
   entries.  [f] must not touch the sequence.  Relative order of the kept
   entries is preserved, so the queue stays index-sorted and
   [lowest_index] remains the oldest unadmitted index. *)
let scan_admit t ~limit f =
  normalize t;
  if t.bubble_left = 0 then begin
    let n = Queue.length t.q in
    let kept = ref [] in
    let visited = ref 0 in
    let stopped = ref false in
    for _ = 1 to n do
      let ((index, ev) as entry) = Queue.pop t.q in
      if !stopped || !visited >= limit || Event.is_bubble ev then begin
        stopped := true;
        kept := entry :: !kept
      end
      else begin
        incr visited;
        match f index ev with
        | `Admit -> note_admitted t index ev
        | `Skip -> kept := entry :: !kept
        | `Stop ->
          stopped := true;
          kept := entry :: !kept
      end
    done;
    List.iter (fun e -> Queue.add e t.q) (List.rev !kept)
  end

let is_empty t =
  normalize t;
  t.bubble_left = 0 && Queue.is_empty t.q

let empty_for t =
  if is_empty t then Engine.now t.eng - t.last_nonempty else Time.zero

(* Drain the whole bubble at the head, returning its remaining clocks. *)
let drain_bubble t =
  normalize t;
  let n = t.bubble_left in
  t.bubble_left <- 0;
  n

(* Consume one logical clock from the bubble at the head. *)
let decrement_bubble t =
  normalize t;
  if t.bubble_left > 0 then t.bubble_left <- t.bubble_left - 1
  else invalid_arg "Paxos_seq.decrement_bubble: head is not a bubble"

(* Consume up to [n] logical clocks from the bubble at the head. *)
let drain_bubble_upto t n =
  normalize t;
  if t.bubble_left > 0 then t.bubble_left <- max 0 (t.bubble_left - n)
  else invalid_arg "Paxos_seq.drain_bubble_upto: head is not a bubble"

(* Discard everything pending: a snapshot install supersedes any decided
   entries still waiting in the sequence (they are all at or below the
   snapshot's global index, and the restored state already embodies
   them).  Quiescence-gated checkpoints guarantee no connection spans the
   boundary, so nothing mid-conversation is lost. *)
let clear t =
  Queue.clear t.q;
  t.bubble_left <- 0;
  t.queued_calls <- 0;
  t.last_nonempty <- Engine.now t.eng

(* Global index of the oldest entry still queued (bubbles included —
   they carry indices too), or None when nothing is queued.  The read
   fast path uses it as an upper bound on the state watermark: anything
   at or past this index has been decided but not yet admitted. *)
let lowest_index t =
  normalize t;
  Option.map fst (Queue.peek_opt t.q)

let length t = Queue.length t.q + if t.bubble_left > 0 then 1 else 0
let max_depth t = t.max_depth
let max_depth_view t = t.depth_view
let queued_calls t = t.queued_calls
let calls t = t.calls
let bubbles t = t.bubbles
