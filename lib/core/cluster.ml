(** A deployed CRANE system: three (or five) replicas in a LAN, each
    running a CRANE instance with the same server program (paper §2).
    Handles the full lifecycle — boot, primary failure, recovery of a
    replica from a backup's checkpoint plus log replay (§5.2). *)

module Time = Crane_sim.Time
module Engine = Crane_sim.Engine
module Rng = Crane_sim.Rng
module Fabric = Crane_net.Fabric
module Sock = Crane_socket.Sock
module Wal = Crane_storage.Wal
module Paxos = Crane_paxos.Paxos
module Memfs = Crane_fs.Memfs
module Manager = Crane_checkpoint.Manager

type t = {
  eng : Engine.t;
  rng : Rng.t;
  fabric : Fabric.t;
  world : Sock.world;
  members : string list;
  cfg : Instance.config;
  server : Api.server;
  wals : (string, Wal.t) Hashtbl.t;
  mutable instances : (string * Instance.t) list;
  mutable checkpoint_node : string option;
}

let default_members = [ "replica1"; "replica2"; "replica3" ]

let create ?(seed = 42) ?(members = default_members) ?(cfg = Instance.default_config)
    ?trace ~server () =
  let eng = Engine.create () in
  (match trace with Some tr -> Engine.set_trace eng tr | None -> ());
  let rng = Rng.create seed in
  let fabric = Fabric.create eng (Rng.split rng) in
  let world = Sock.world fabric in
  {
    eng;
    rng;
    fabric;
    world;
    members;
    cfg;
    server;
    wals = Hashtbl.create 4;
    instances = [];
    checkpoint_node = None;
  }

let engine t = t.eng
let fabric t = t.fabric
let world t = t.world
let members t = t.members
let instances t = t.instances
let instance t node = List.assoc_opt node t.instances

let wal_for t node =
  match Hashtbl.find_opt t.wals node with
  | Some w -> w
  | None ->
    let w = Wal.create ~write_latency:t.cfg.wal_write_latency t.eng ~name:node in
    Hashtbl.add t.wals node w;
    w

let boot_node t ?skip_upto ?preloaded_fs ?restore_state ?as_primary node =
  let inst =
    Instance.boot ~eng:t.eng ~fabric:t.fabric ~world:t.world ~rng:(Rng.split t.rng)
      ~wal:(wal_for t node) ~members:t.members ~node ~cfg:t.cfg ~server:t.server
      ?skip_upto ?preloaded_fs ?restore_state ?as_primary ()
  in
  t.instances <- t.instances @ [ (node, inst) ];
  inst

(** Boot all replicas.  The checkpoint component runs on the first backup,
    as in the paper ("done every minute on one backup replica"). *)
let start ?(checkpoints = true) t =
  List.iter (fun node -> ignore (boot_node t node)) t.members;
  match t.members with
  | _ :: backup :: _ when checkpoints -> (
    t.checkpoint_node <- Some backup;
    match instance t backup with
    | Some inst -> Instance.start_checkpointing inst
    | None -> ())
  | _ -> ()

let primary t =
  List.find_opt (fun (_, inst) -> Instance.is_primary inst) t.instances

let primary_node t = Option.map fst (primary t)

(** Crash a replica.  [wal_torn] models the crash landing mid-append: the
    oldest in-flight WAL write survives only as a torn partial tail (and
    younger in-flight writes are lost), which recovery must discard. *)
let kill ?(wal_torn = false) t node =
  match instance t node with
  | Some inst ->
    Instance.kill ~eng:t.eng inst;
    t.instances <- List.remove_assoc node t.instances;
    if wal_torn then ignore (Wal.crash_torn_tail (wal_for t node))
  | None -> ()

(** The latest checkpoint available on any live replica. *)
let latest_checkpoint t =
  List.fold_left
    (fun best (_, inst) ->
      match (best, Manager.latest inst.Instance.manager) with
      | None, c -> c
      | Some b, Some c ->
        Some (if c.Manager.global_index > b.Manager.global_index then c else b)
      | Some _, None -> best)
    None t.instances

(** Restart a crashed replica: ship the latest checkpoint from a backup,
    restore filesystem and process state, and replay decided socket calls
    from the checkpoint's global index (paper §5.2).  Without a
    checkpoint, replays the whole log from index 0. *)
let restart t node =
  match instance t node with
  | Some inst -> inst (* already running: restarting a live replica is a no-op *)
  | None ->
    let ckpt = latest_checkpoint t in
    let skip_upto = match ckpt with Some c -> c.Manager.global_index | None -> 0 in
    let preloaded_fs, restore_state =
      match ckpt with
      | None -> (None, None)
      | Some c ->
        (* Ship the checkpoint across the LAN: charge transfer time on the
           image + patch bytes at ~1 Gbps. *)
        let bytes =
          c.Manager.image.Crane_checkpoint.Criu.mem_bytes
          + Crane_fs.Fsdiff.patch_bytes c.Manager.fs_patch
        in
        Engine.at t.eng (Engine.now t.eng + (bytes * 8)) (fun () -> ());
        let snap = Crane_fs.Fsdiff.apply ~base:c.Manager.fs_base c.Manager.fs_patch in
        (Some (Memfs.of_snapshot snap), Some c.Manager.image.Crane_checkpoint.Criu.payload)
    in
    let inst = boot_node t ~skip_upto ?preloaded_fs ?restore_state node in
    Instance.replay_from inst ~from_index:(skip_upto + 1);
    (* The checkpoint component died with the old incarnation: re-arm it
       so recovery does not silently stop future checkpoints. *)
    if t.checkpoint_node = Some node then Instance.start_checkpointing inst;
    inst

let outputs t =
  List.map (fun (node, inst) -> (node, Instance.output inst)) t.instances

(** Run the simulation until [until] (or the event queue drains). *)
let run ?until t = Engine.run ?until t.eng

let check_failures t =
  match Engine.failures t.eng with
  | [] -> ()
  | (name, e) :: _ ->
    failwith (Printf.sprintf "simulated thread %s died: %s" name (Printexc.to_string e))
