(** A deployed CRANE system: three (or five) replicas in a LAN, each
    running a CRANE instance with the same server program (paper §2).
    Handles the full lifecycle — boot, primary failure, recovery of a
    replica from a backup's checkpoint plus log replay (§5.2), and live
    membership reconfiguration: add / remove / replace replicas through
    consensus, plus an optional failure detector that replaces suspected
    dead members automatically. *)

module Time = Crane_sim.Time
module Engine = Crane_sim.Engine
module Rng = Crane_sim.Rng
module Fabric = Crane_net.Fabric
module Sock = Crane_socket.Sock
module Wal = Crane_storage.Wal
module Paxos = Crane_paxos.Paxos
module Memfs = Crane_fs.Memfs
module Manager = Crane_checkpoint.Manager

type t = {
  eng : Engine.t;
  rng : Rng.t;
  seed : int;
  fabric : Fabric.t;
  world : Sock.world;
  (* The configuration currently in force, kept in sync with consensus by
     the instances' on_config callbacks.  Starts as the boot member
     list. *)
  mutable cur_members : string list;
  mutable cur_epoch : int;
  cfg : Instance.config;
  server : Api.server;
  wals : (string, Wal.t) Hashtbl.t;
  mutable instances : (string * Instance.t) list;
  mutable checkpoint_node : string option;
  (* Autoheal state: suspected members with a replacement in flight, the
     earliest instant the next automatic replacement may start (backoff),
     and a counter naming the spawned replicas. *)
  healing : (string, unit) Hashtbl.t;
  mutable autoheal : bool;
  mutable heal_not_before : Time.t;
  mutable auto_spawned : int;
}

let default_members = [ "replica1"; "replica2"; "replica3" ]

let create ?(seed = 42) ?(members = default_members) ?(cfg = Instance.default_config)
    ?trace ~server () =
  let eng = Engine.create () in
  (match trace with Some tr -> Engine.set_trace eng tr | None -> ());
  let rng = Rng.create seed in
  let fabric = Fabric.create eng (Rng.split rng) in
  let world = Sock.world fabric in
  {
    eng;
    rng;
    seed;
    fabric;
    world;
    cur_members = members;
    cur_epoch = 0;
    cfg;
    server;
    wals = Hashtbl.create 4;
    instances = [];
    checkpoint_node = None;
    healing = Hashtbl.create 4;
    autoheal = false;
    heal_not_before = Time.zero;
    auto_spawned = 0;
  }

let engine t = t.eng
let fabric t = t.fabric
let world t = t.world

let members t = t.cur_members
(** The membership of the configuration currently in force (boot members
    until the first reconfiguration activates). *)

let current_epoch t = t.cur_epoch
let instances t = t.instances
let instance t node = List.assoc_opt node t.instances

let wal_for t node =
  match Hashtbl.find_opt t.wals node with
  | Some w -> w
  | None ->
    let w = Wal.create ~write_latency:t.cfg.wal_write_latency t.eng ~name:node in
    Hashtbl.add t.wals node w;
    w

let primary t =
  (* Prefer the highest view: during a failover an isolated old primary
     can still believe in itself for a while. *)
  List.fold_left
    (fun best (node, inst) ->
      if not (Instance.is_primary inst) then best
      else
        match best with
        | Some (_, b) when Paxos.view b.Instance.paxos >= Paxos.view inst.Instance.paxos
          -> best
        | _ -> Some (node, inst))
    None t.instances

let primary_node t = Option.map fst (primary t)

(** Live non-primary replicas: the read fast path's bounded-stale
    capacity.  Empty when only the primary is up. *)
let backup_nodes t =
  let p = primary_node t in
  List.filter_map
    (fun (node, _) -> if Some node = p then None else Some node)
    t.instances

(** Crash a replica.  [wal_torn] models the crash landing mid-append: the
    oldest in-flight WAL write survives only as a torn partial tail (and
    younger in-flight writes are lost), which recovery must discard. *)
let kill ?(wal_torn = false) t node =
  match instance t node with
  | Some inst ->
    Instance.kill ~eng:t.eng inst;
    t.instances <- List.remove_assoc node t.instances;
    if wal_torn then ignore (Wal.crash_torn_tail (wal_for t node))
  | None -> ()

(* A replica that learned it was reconfigured out has shed its clients
   and gone silent; retire the instance so it stops burning (virtual)
   cycles and drops out of output/state comparisons. *)
let decommission t node =
  match instance t node with
  | Some inst when Paxos.fenced inst.Instance.paxos -> kill t node
  | Some _ | None -> ()

let boot_node t ?skip_upto ?preloaded_fs ?restore_state ?as_primary node =
  let inst =
    Instance.boot ~eng:t.eng ~fabric:t.fabric ~world:t.world ~rng:(Rng.split t.rng)
      ~wal:(wal_for t node) ~members:t.cur_members ~node ~cfg:t.cfg ~server:t.server
      ?skip_upto ?preloaded_fs ?restore_state ?as_primary
      ~on_config:(fun ~epoch members ->
        if epoch > t.cur_epoch then begin
          t.cur_epoch <- epoch;
          t.cur_members <- members
        end)
      ~on_fence:(fun ~epoch:_ ->
        Engine.after t.eng (Time.ms 10) (fun () -> decommission t node))
      ()
  in
  t.instances <- t.instances @ [ (node, inst) ];
  inst

(** Boot all replicas.  The checkpoint component runs on the first backup,
    as in the paper ("done every minute on one backup replica"). *)
let start ?(checkpoints = true) t =
  List.iter (fun node -> ignore (boot_node t node)) t.cur_members;
  match t.cur_members with
  | _ :: backup :: _ when checkpoints -> (
    t.checkpoint_node <- Some backup;
    match instance t backup with
    | Some inst -> Instance.start_checkpointing inst
    | None -> ())
  | _ -> ()

(** The latest checkpoint available on any live replica. *)
let latest_checkpoint t =
  List.fold_left
    (fun best (_, inst) ->
      match (best, Manager.latest inst.Instance.manager) with
      | None, c -> c
      | Some b, Some c ->
        Some (if c.Manager.global_index > b.Manager.global_index then c else b)
      | Some _, None -> best)
    None t.instances

(** Restart a crashed replica: ship the latest checkpoint from a backup,
    restore filesystem and process state, and replay decided socket calls
    from the checkpoint's global index (paper §5.2).  Without a
    checkpoint, replays the whole log from index 0. *)
let restart t node =
  match instance t node with
  | Some inst -> inst (* already running: restarting a live replica is a no-op *)
  | None ->
    let ckpt = latest_checkpoint t in
    let skip_upto = match ckpt with Some c -> c.Manager.global_index | None -> 0 in
    let preloaded_fs, restore_state =
      match ckpt with
      | None -> (None, None)
      | Some c ->
        (* Ship the checkpoint across the LAN: charge transfer time on the
           image + patch bytes at ~1 Gbps. *)
        let bytes =
          c.Manager.image.Crane_checkpoint.Criu.mem_bytes
          + Crane_fs.Fsdiff.patch_bytes c.Manager.fs_patch
        in
        Engine.at t.eng (Engine.now t.eng + (bytes * 8)) (fun () -> ());
        let snap = Crane_fs.Fsdiff.apply ~base:c.Manager.fs_base c.Manager.fs_patch in
        (Some (Memfs.of_snapshot snap), Some c.Manager.image.Crane_checkpoint.Criu.payload)
    in
    let inst = boot_node t ~skip_upto ?preloaded_fs ?restore_state node in
    Instance.replay_from inst ~from_index:(skip_upto + 1);
    (* The checkpoint component died with the old incarnation: re-arm it
       so recovery does not silently stop future checkpoints. *)
    if t.checkpoint_node = Some node then Instance.start_checkpointing inst;
    inst

(* ------------------------------------------------------------------ *)
(* Live membership reconfiguration.  Every change routes through
   consensus: a management thread submits a Reconfig to the current
   primary and waits for the new configuration to activate, retrying
   with doubled backoff across primary failovers.  Only once activation
   is observed does any local state change (booting the fresh replica,
   re-arming checkpoints). *)

let same_members a b = List.sort compare a = List.sort compare b

let reconfigure t ~label ~mutate ~on_done =
  Engine.spawn t.eng ~name:label (fun () ->
      let deadline = Engine.now t.eng + Time.sec 30 in
      let rec attempt backoff =
        let desired = mutate t.cur_members in
        if same_members desired t.cur_members then on_done true
        else if Engine.now t.eng >= deadline then on_done false
        else begin
          (match primary t with
          | Some (_, inst) ->
            ignore (Paxos.submit_reconfig inst.Instance.paxos desired)
          | None -> ());
          let wait_until = min deadline (Engine.now t.eng + backoff) in
          let rec wait () =
            if same_members t.cur_members desired then true
            else if Engine.now t.eng >= wait_until then false
            else begin
              Engine.sleep t.eng (Time.ms 25);
              wait ()
            end
          in
          if wait () then on_done true
          else attempt (min (backoff * 2) (Time.sec 2))
        end
      in
      attempt (Time.ms 250))

(** Add a fresh replica: commit the membership change first, then boot
    the node — it is already a member when it first speaks (epoch 0
    messages from a member pass the fence), and catches up via chunked
    log transfer or, when the prefix is compacted, a snapshot push. *)
let add_replica t node =
  reconfigure t ~label:("reconfig-add-" ^ node)
    ~mutate:(fun ms -> if List.mem node ms then ms else ms @ [ node ])
    ~on_done:(fun ok ->
      if ok && instance t node = None && List.mem node t.cur_members then
        ignore (boot_node t node))

(** Remove a replica from the configuration.  If it is still running it
    fences itself on first contact with a member of the new epoch and is
    then decommissioned. *)
let remove_replica t node =
  reconfigure t ~label:("reconfig-remove-" ^ node)
    ~mutate:(fun ms -> List.filter (fun n -> n <> node) ms)
    ~on_done:(fun ok ->
      if ok && t.checkpoint_node = Some node then
        (* Checkpointing lived on the removed node: re-arm on a surviving
           backup so compaction keeps its snapshot supply. *)
        match
          List.filter
            (fun (n, _) -> n <> node && primary_node t <> Some n)
            t.instances
        with
        | (n, inst) :: _ ->
          t.checkpoint_node <- Some n;
          Instance.start_checkpointing inst
        | [] -> ())

(** Replace [dead] (typically crashed or partitioned away) with [fresh]
    in one configuration step: the joint quorum spans both configs, so
    the swap commits as long as a majority of each is alive — including
    the case where [dead] itself is the unreachable one. *)
let replace_replica t ~dead ~fresh =
  Hashtbl.replace t.healing dead ();
  reconfigure t
    ~label:(Printf.sprintf "reconfig-replace-%s-%s" dead fresh)
    ~mutate:(fun ms ->
      List.filter (fun n -> n <> dead) ms
      @ if List.mem fresh ms then [] else [ fresh ])
    ~on_done:(fun ok ->
      Hashtbl.remove t.healing dead;
      if ok && instance t fresh = None && List.mem fresh t.cur_members then begin
        let inst = boot_node t fresh in
        if t.checkpoint_node = Some dead then begin
          t.checkpoint_node <- Some fresh;
          Instance.start_checkpointing inst
        end
      end)

(** Self-healing: poll the primary's failure detector and automatically
    replace suspected-dead members with freshly named replicas.  The poll
    period carries seeded jitter (so co-deployed clusters don't detect in
    lockstep) and replacements are rate-limited by [backoff]. *)
let enable_autoheal ?(detect = Time.ms 600) ?(backoff = Time.ms 500) t =
  if not t.autoheal then begin
    t.autoheal <- true;
    (* A dedicated stream (not [t.rng]) so arming the healer never shifts
       the draws of fabrics and instances created before or after. *)
    let hrng = Rng.create (t.seed lxor 0x4ea1b0f) in
    let rec loop () =
      let jitter = Rng.int hrng (max 1 (detect / 3)) in
      Engine.after t.eng ((detect / 2) + jitter) (fun () ->
          if t.autoheal then begin
            (match primary t with
            | Some (_, inst) -> (
              let sus =
                List.filter
                  (fun n -> not (Hashtbl.mem t.healing n))
                  (Paxos.suspects inst.Instance.paxos)
              in
              match sus with
              | dead :: _ when Engine.now t.eng >= t.heal_not_before ->
                t.heal_not_before <- Engine.now t.eng + backoff;
                t.auto_spawned <- t.auto_spawned + 1;
                let fresh = Printf.sprintf "auto%d" t.auto_spawned in
                replace_replica t ~dead ~fresh
              | _ -> ())
            | None -> ());
            loop ()
          end)
    in
    loop ()
  end

let disable_autoheal t = t.autoheal <- false

let outputs t =
  List.map (fun (node, inst) -> (node, Instance.output inst)) t.instances

(** Run the simulation until [until] (or the event queue drains). *)
let run ?until t = Engine.run ?until t.eng

let check_failures t =
  match Engine.failures t.eng with
  | [] -> ()
  | (name, e) :: _ ->
    failwith (Printf.sprintf "simulated thread %s died: %s" name (Printexc.to_string e))
