(** The server-facing runtime interface.

    A server program in this reproduction is written once against [API]
    and runs unmodified under any of the bindings, exactly as a Linux
    server binary runs unmodified under different [LD_PRELOAD]
    interpositions:

    - {e native}: nondeterministic Pthreads + direct sockets (the paper's
      un-replicated baseline);
    - {e parrot}: the DMT scheduler, sockets via PARROT's nondeterministic
      blocking-call path ("w/ Parrot only" in Figure 14);
    - {e crane}: DMT + socket calls virtualized over the PAXOS sequence
      with time bubbling (the full system);
    - {e paxos-only}: Pthreads + PAXOS-ordered socket delivery with
      immediate admission ("w/ Paxos only" in Figure 14).

    Soft barriers are PARROT's performance hints: a no-op under native. *)

module Time = Crane_sim.Time

module type API = sig
  val node : string
  (** Replica identity (host name). *)

  val fs : Crane_fs.Memfs.t
  (** The server's working/installation filesystem (checkpointed). *)

  val now : unit -> Time.t
  val sleep : Time.t -> unit

  val spawn : name:string -> (unit -> unit) -> unit
  (** pthread_create. *)

  val work : Time.t -> unit
  (** A CPU burst: occupies one core of the replica machine. *)

  type mutex
  type cond
  type rwlock

  val mutex : ?name:string -> unit -> mutex
  val lock : mutex -> unit
  val unlock : mutex -> unit
  val cond : ?name:string -> unit -> cond
  val cond_wait : cond -> mutex -> unit
  val cond_signal : cond -> unit
  val cond_broadcast : cond -> unit
  val rwlock : ?name:string -> unit -> rwlock
  val rdlock : rwlock -> unit
  val wrlock : rwlock -> unit
  val rwunlock : rwlock -> unit

  type 'a cell
  (** A monitored shared-memory location.  Reads and writes stream "mem"
      events to the flight recorder for the happens-before sanitizer;
      under DMT they are additionally serialized through the scheduler
      turn, which is exactly what makes them race-free-by-serialization. *)

  val cell : name:string -> 'a -> 'a cell
  val cell_get : 'a cell -> 'a
  val cell_set : 'a cell -> 'a -> unit

  type listener
  type conn

  val listen : port:int -> listener
  val poll : listener -> unit
  (** Block until a connection can be accepted. *)

  val accept : listener -> conn
  val recv : conn -> max:int -> string
  (** [""] means EOF. *)

  val send : conn -> string -> unit
  val close : conn -> unit
  val conn_id : conn -> int

  type soft_barrier

  val soft_barrier : n:int -> timeout_ticks:int -> soft_barrier
  val soft_barrier_wait : soft_barrier -> unit
end

type api = (module API)

(** The conflict footprint a server declares for one request payload: the
    named resources (shared cells, lock-guarded structures) the handler
    will read and write.  The dependency-aware delivery layer admits two
    committed commands concurrently only when their footprints are
    disjoint (no write/write or read/write overlap); [None] means the
    server cannot bound the command's effects, and the gate conservatively
    treats it as touching everything (it executes alone, in log order). *)
type footprint = { fp_reads : string list; fp_writes : string list }

(** What a booted server hands back to the CRANE instance: the hooks the
    checkpoint component needs (the CRIU-substitution state blob, declared
    resident memory) and a stop switch. *)
type handle = {
  server_name : string;
  state_of : unit -> string;
  load_state : string -> unit;
  mem_bytes : unit -> int;
  stop : unit -> unit;
  read : string -> string option;
      (** Read fast path: answer a GET-style request payload directly
          from current server state, without a consensus round or a
          sequence entry.  [None] means the request is not a pure read
          (or the server has no fast path) — the caller must fall back
          to the consensus path.  Must not block, yield, or mutate
          state: the proxy calls it synchronously from its own thread,
          so the answer reflects one instant of server state. *)
  footprint : string -> footprint option;
      (** Conflict footprint of one request payload, for dependency-aware
          parallel delivery.  Like [read], must be pure and non-blocking
          (it runs under the scheduler gate).  [None] = undeclared: the
          command is treated as touching all state and serializes. *)
}

(** A server program, supplied to a cluster or run directly against any
    runtime.  [install] populates the installation/working directories
    (run before the container's base snapshot is taken, like a package
    install); [boot] starts the server threads. *)
type server = {
  name : string;
  install : Crane_fs.Memfs.t -> unit;
  boot : api -> handle;
}
