(** The proxy component (paper §2.1): a CRANE instance's gateway.

    On the primary it accepts client connections, treats each incoming
    socket call (connect / send / close) as an input request and submits
    it to the PAXOS component; decided calls are forwarded — on every
    replica — to the local server through the PAXOS sequence, in decision
    order.  Server responses are relayed to clients on the primary and
    dropped on backups.  Backup proxies do not serve clients: a client
    reaching one sees its connection closed and retries elsewhere.

    The proxy also owns the primary side of time bubbling (Figure 13
    steps 2-3): bubble requests from the local DMT are turned into
    consensus proposals when this node believes itself primary, and are
    dropped otherwise. *)

module Time = Crane_sim.Time
module Engine = Crane_sim.Engine
module Sock = Crane_socket.Sock
module Paxos = Crane_paxos.Paxos
module Trace = Crane_trace.Trace

type t = {
  eng : Engine.t;
  node : string;
  world : Sock.world;
  port : int;
  paxos : Paxos.t;
  vhost : Vhost.t;
  group : Engine.group;
  client_conns : (int, Sock.conn) Hashtbl.t;
  orphans_closed : (int, unit) Hashtbl.t;
  mutable skip_upto : int; (* decisions already captured by a restored checkpoint *)
  (* Batching (group commit): concurrently-arriving events accumulate
     here and are proposed as one consensus round.  Arrival order is
     preserved, so the decision sequence is exactly the unbatched one. *)
  batch_max : int;
  batch_delay : Time.t;
  buf : (string * Event.t * Time.t) Queue.t;
      (* (encoded, event, enqueue instant) awaiting flush, arrival order:
         the enqueue instant is the batch-wait origin of the request's
         causal span *)
  mutable flush_scheduled : bool;
  mutable bubbles_proposed : int;
  mutable calls_proposed : int;
  mutable batches_flushed : int;
  (* Read fast path: the booted server's pure-read hook ([Api.handle.read]),
     installed by the instance after boot.  None = this replica serves no
     fast-path reads (every request stays on the consensus funnel). *)
  mutable read_handler : (string -> string option) option;
  mutable lease_reads : int;
  mutable backup_reads : int;
  mutable lease_rejects : int;
  mutable stopped : bool;
}

type stats = {
  bubbles_proposed : int;
  calls_proposed : int;
  client_count : int;
  batches_flushed : int;
  lease_reads : int;  (** fast-path reads served under a valid leader lease *)
  backup_reads : int;  (** bounded-stale reads served by this (backup) proxy *)
  lease_rejects : int;  (** fast-path reads refused (no lease / fenced) *)
}

(* ------------------------------------------------------------------ *)
(* Read/write split: the typed client-facing read surface.

   A client request is classified [Read] when the server's fast-path hook
   can answer it from current state, [Write] otherwise — so classification
   is the server's own judgement ([R.cell_get]-style pure reads classify
   automatically), not a protocol annotation the client could get wrong.
   Reads are routed around [Paxos.submit] entirely; writes keep the
   batched consensus path byte-identical. *)

type request_class = Read of string | Write

type read_result = {
  value : string;
  mode : [ `Lease | `Backup of int ];
      (** [`Lease]: linearizable, served by the lease-holding primary.
          [`Backup stale]: bounded-stale, [stale] = committed entries the
          serving replica had not yet reflected at answer time. *)
  epoch : int;  (** configuration epoch the read was served under *)
  watermark : int;
      (** consensus index the answer is guaranteed to reflect: every
          committed entry [<= watermark] is included in [value]'s state *)
}

type read_reply =
  | Served of read_result
  | Write_required  (** the server classified the payload as a write *)
  | Rejected  (** no valid lease / fenced replica: retry on consensus path *)

(* Wire framing for the read port.  Requests: ["READ <len>\n<len bytes>"].
   Replies: ["LEASE <epoch> <wm> <len>\n<bytes>"],
   ["STALE <epoch> <wm> <stale> <len>\n<bytes>"], ["REJECT\n"],
   ["WRITE\n"].  Length-prefixed both ways so payloads may hold newlines
   (e.g. full HTTP requests). *)

let encode_read_request payload =
  Printf.sprintf "READ %d\n%s" (String.length payload) payload

(* Parse one reply from the head of [buf]; [None] = incomplete, recv more.
   Malformed headers parse as [Rejected] so a confused client falls back
   to the consensus path rather than wedging. *)
let parse_read_reply buf =
  match String.index_opt buf '\n' with
  | None -> None
  | Some i -> (
    let header = String.sub buf 0 i in
    let rest = String.sub buf (i + 1) (String.length buf - i - 1) in
    let body len k =
      if String.length rest < len then None
      else
        Some
          ( k (String.sub rest 0 len),
            String.sub rest len (String.length rest - len) )
    in
    match String.split_on_char ' ' header with
    | [ "REJECT" ] -> Some (Rejected, rest)
    | [ "WRITE" ] -> Some (Write_required, rest)
    | [ "LEASE"; e; wm; len ] -> (
      match
        (int_of_string_opt e, int_of_string_opt wm, int_of_string_opt len)
      with
      | Some epoch, Some watermark, Some len ->
        body len (fun value ->
            Served { value; mode = `Lease; epoch; watermark })
      | _ -> Some (Rejected, rest))
    | [ "STALE"; e; wm; st; len ] -> (
      match
        ( int_of_string_opt e, int_of_string_opt wm, int_of_string_opt st,
          int_of_string_opt len )
      with
      | Some epoch, Some watermark, Some stale, Some len ->
        body len (fun value ->
            Served { value; mode = `Backup stale; epoch; watermark })
      | _ -> Some (Rejected, rest))
    | _ -> Some (Rejected, rest))

(* Propose everything buffered as one batch: one Accept broadcast and one
   group-commit fsync for the lot.  If primaryship was lost since the
   events were buffered the batch is shed — the same client-visible
   outcome as an unbatched submit refusing mid-stream (clients are shed by
   on_demote and retry against the new primary). *)
(* The birth certificate of a request span: one instant carrying the
   assigned consensus index (the trace id), the client connection, the
   call kind and how long the event waited in the proxy batch buffer.
   Emitted at proposal time, so same-seed runs order it identically. *)
let req_proposed t ~index ~queued ev =
  let tr = Engine.trace t.eng in
  if Trace.enabled tr then begin
    let ts = Engine.now t.eng and tid = Engine.self_tid t.eng in
    let kind, conn =
      match ev with
      | Event.Time_bubble _ -> ("bubble", -1)
      | Event.Connect { conn; _ } -> ("connect", conn)
      | Event.Send { conn; _ } -> ("send", conn)
      | Event.Close { conn } -> ("close", conn)
    in
    Trace.instant tr ~ts ~tid ~node:t.node ~cat:"req" ~name:"proposed"
      [ ("index", Trace.Int index); ("conn", Trace.Int conn);
        ("kind", Trace.Str kind); ("queued_ns", Trace.Int queued);
        ("view", Trace.Int (Paxos.view t.paxos)) ];
    if conn >= 0 then
      Trace.async_begin tr ~ts ~tid ~id:index ~node:t.node ~cat:"req"
        ~name:"lifecycle" [ ("index", Trace.Int index) ]
  end

let flush t =
  if not (Queue.is_empty t.buf) then begin
    let entries = List.of_seq (Queue.to_seq t.buf) in
    Queue.clear t.buf;
    t.batches_flushed <- t.batches_flushed + 1;
    let tr = Engine.trace t.eng in
    if Trace.enabled tr then
      Trace.instant tr ~ts:(Engine.now t.eng) ~tid:(Engine.self_tid t.eng)
        ~node:t.node ~cat:"proxy" ~name:"batch_flush"
        [ ("events", Trace.Int (List.length entries)) ];
    match
      Paxos.submit_batch_ix t.paxos (List.map (fun (enc, _, _) -> enc) entries)
    with
    | None -> ()
    | Some (lo, _) ->
      let now = Engine.now t.eng in
      List.iteri
        (fun i (_, ev, enq) -> req_proposed t ~index:(lo + i) ~queued:(now - enq) ev)
        entries
  end

let schedule_flush t =
  if not t.flush_scheduled then begin
    t.flush_scheduled <- true;
    Engine.after t.eng ~group:t.group t.batch_delay (fun () ->
        t.flush_scheduled <- false;
        if not t.stopped then flush t)
  end

let submit t ev =
  let accepted =
    if t.batch_max <= 1 then (
      match Paxos.submit_ix t.paxos (Event.encode ev) with
      | Some index ->
        req_proposed t ~index ~queued:0 ev;
        true
      | None -> false)
    else if not (Paxos.is_primary t.paxos) then false
    else begin
      Queue.add (Event.encode ev, ev, Engine.now t.eng) t.buf;
      (* Bubbles flush immediately: they are only requested during
         quiescence (nothing to amortize them with), and holding one back
         batch_delay would just stall the gate it is meant to unblock.
         Flushing the buffer keeps arrival order intact. *)
      if Event.is_bubble ev || Queue.length t.buf >= t.batch_max then flush t
      else schedule_flush t;
      true
    end
  in
  (if accepted then begin
     if Event.is_bubble ev then t.bubbles_proposed <- t.bubbles_proposed + 1
     else t.calls_proposed <- t.calls_proposed + 1;
     let tr = Engine.trace t.eng in
     if Trace.enabled tr then
       let name, args =
         match ev with
         | Event.Time_bubble { nclock } ->
           ("bubble_proposed", [ ("nclock", Trace.Int nclock) ])
         | Event.Connect { conn; port } ->
           ("call_proposed",
            [ ("conn", Trace.Int conn); ("port", Trace.Int port);
              ("kind", Trace.Str "connect") ])
         | Event.Send { conn; payload } ->
           ("call_proposed",
            [ ("conn", Trace.Int conn);
              ("bytes", Trace.Int (String.length payload));
              ("kind", Trace.Str "send") ])
         | Event.Close { conn } ->
           ("call_proposed", [ ("conn", Trace.Int conn); ("kind", Trace.Str "close") ])
       in
       Trace.instant tr ~ts:(Engine.now t.eng) ~tid:(Engine.self_tid t.eng)
         ~node:t.node ~cat:"proxy" ~name args
   end);
  accepted

(* Per-client pump: every chunk of bytes the client sends is one Send
   request; EOF becomes Close. *)
let client_rx_loop t conn =
  let id = Sock.id conn in
  let rec loop () =
    let data = Sock.recv conn ~max:65536 in
    if data = "" then begin
      Hashtbl.remove t.client_conns id;
      ignore (submit t (Event.Close { conn = id }))
    end
    else if submit t (Event.Send { conn = id; payload = data }) then loop ()
    else begin
      (* Lost primaryship mid-stream: shed the client so it can retry. *)
      Hashtbl.remove t.client_conns id;
      Sock.close conn
    end
  in
  loop ()

let acceptor_loop t listener =
  while not t.stopped do
    let conn = Sock.accept listener in
    if Paxos.is_primary t.paxos then begin
      let id = Sock.id conn in
      Hashtbl.replace t.client_conns id conn;
      if submit t (Event.Connect { conn = id; port = t.port }) then
        Engine.spawn t.eng ~group:t.group
          ~name:(Printf.sprintf "proxy-rx-%d" id)
          (fun () -> client_rx_loop t conn)
      else begin
        Hashtbl.remove t.client_conns id;
        Sock.close conn
      end
    end
    else Sock.close conn (* backups do not serve clients *)
  done

(* ------------------------------------------------------------------ *)
(* Read fast path: serving side. *)

let classify t payload =
  match t.read_handler with
  | None -> Write
  | Some f -> ( match f payload with Some v -> Read v | None -> Write)

let read_trace t ~name args =
  let tr = Engine.trace t.eng in
  if Trace.enabled tr then
    Trace.instant tr ~ts:(Engine.now t.eng) ~tid:(Engine.self_tid t.eng)
      ~node:t.node ~cat:"read" ~name args

(* Answer one read-port request.  The hook runs synchronously in this
   thread with no engine yield, so the value it computes and the
   watermark stamped next to it describe the same instant of server
   state. *)
let serve_read t payload =
  let epoch = Paxos.epoch t.paxos in
  let wm () = Vhost.read_watermark t.vhost ~applied:(Paxos.applied t.paxos) in
  if Paxos.fenced t.paxos then begin
    t.lease_rejects <- t.lease_rejects + 1;
    read_trace t ~name:"reject" [ ("why", Trace.Str "fenced") ];
    "REJECT\n"
  end
  else if Paxos.is_primary t.paxos then
    if Paxos.lease_valid t.paxos then (
      match classify t payload with
      | Write -> "WRITE\n"
      | Read value ->
        let wm = wm () in
        t.lease_reads <- t.lease_reads + 1;
        read_trace t ~name:"lease"
          [ ("wm", Trace.Int wm); ("epoch", Trace.Int epoch) ];
        Printf.sprintf "LEASE %d %d %d\n%s" epoch wm (String.length value) value)
    else begin
      (* Primary without a live lease (just elected, reconfig pending,
         quorum of heartbeat acks not yet in): refusing is the safe
         answer — serving locally could miss a concurrent new primary. *)
      t.lease_rejects <- t.lease_rejects + 1;
      read_trace t ~name:"reject" [ ("why", Trace.Str "no_lease") ];
      "REJECT\n"
    end
  else (
    match classify t payload with
    | Write -> "WRITE\n"
    | Read value ->
      let wm = wm () in
      let stale = max 0 (Paxos.committed t.paxos - wm) in
      t.backup_reads <- t.backup_reads + 1;
      read_trace t ~name:"backup"
        [ ("wm", Trace.Int wm); ("stale", Trace.Int stale);
          ("epoch", Trace.Int epoch) ];
      Printf.sprintf "STALE %d %d %d %d\n%s" epoch wm stale
        (String.length value) value)

(* Per-connection pump on the read port: length-framed requests, one
   reply each, nothing ever touches consensus. *)
let read_rx_loop t conn =
  let rec loop buf =
    match String.index_opt buf '\n' with
    | Some i -> (
      let header = String.sub buf 0 i in
      let rest = String.sub buf (i + 1) (String.length buf - i - 1) in
      match String.split_on_char ' ' header with
      | [ "READ"; l ] -> (
        match int_of_string_opt l with
        | Some len when len >= 0 ->
          if String.length rest >= len then begin
            let payload = String.sub rest 0 len in
            let remainder = String.sub rest len (String.length rest - len) in
            Sock.send conn (serve_read t payload);
            loop remainder
          end
          else recv_more buf
        | Some _ | None -> Sock.close conn)
      | _ -> Sock.close conn)
    | None -> recv_more buf
  and recv_more buf =
    let chunk = Sock.recv conn ~max:65536 in
    if chunk = "" then Sock.close conn else loop (buf ^ chunk)
  in
  try loop "" with Sock.Connection_closed -> ()

(* Unlike the consensus acceptor, every replica serves its read port:
   backups answering bounded-stale reads is the point. *)
let read_acceptor_loop t listener =
  while not t.stopped do
    let conn = Sock.accept listener in
    Engine.spawn t.eng ~group:t.group
      ~name:(Printf.sprintf "proxy-read-%d" (Sock.id conn))
      (fun () -> read_rx_loop t conn)
  done

(* After a failover the new primary's server still holds connections whose
   clients were attached to the dead primary.  Close them through
   consensus so all replicas' servers clean up identically. *)
let close_orphans t =
  if Paxos.is_primary t.paxos then
    Hashtbl.iter
      (fun vid (c : Vhost.vconn) ->
        if
          (not c.Vhost.vclosed) && (not c.Vhost.veof)
          && (not (Hashtbl.mem t.client_conns vid))
          && not (Hashtbl.mem t.orphans_closed vid)
        then begin
          Hashtbl.add t.orphans_closed vid ();
          ignore (submit t (Event.Close { conn = vid }))
        end)
      t.vhost.Vhost.conns

let rec orphan_monitor t =
  Engine.after t.eng ~group:t.group (Time.ms 100) (fun () ->
      if not t.stopped then begin
        close_orphans t;
        orphan_monitor t
      end)

let create ~eng ~node ~world ~port ~paxos ~vhost ~group ~skip_upto
    ?(batch_max = 1) ?(batch_delay = Time.us 100) ?read_port
    ?(on_config = fun ~epoch:_ _ -> ()) ?(on_fence = fun ~epoch:_ -> ()) () =
  let t =
    {
      eng;
      node;
      world;
      port;
      paxos;
      vhost;
      group;
      client_conns = Hashtbl.create 64;
      orphans_closed = Hashtbl.create 64;
      skip_upto;
      batch_max;
      batch_delay;
      buf = Queue.create ();
      flush_scheduled = false;
      bubbles_proposed = 0;
      calls_proposed = 0;
      batches_flushed = 0;
      read_handler = None;
      lease_reads = 0;
      backup_reads = 0;
      lease_rejects = 0;
      stopped = false;
    }
  in
  Vhost.set_handlers vhost
    {
      (* Server -> client path. *)
      Vhost.respond =
        (fun ~conn payload ->
          if Paxos.is_primary t.paxos then
            match Hashtbl.find_opt t.client_conns conn with
            | Some c -> ( try Sock.send c payload with Sock.Connection_closed -> ())
            | None -> ());
      on_server_close =
        (fun conn ->
          if Paxos.is_primary t.paxos then
            match Hashtbl.find_opt t.client_conns conn with
            | Some c ->
              Hashtbl.remove t.client_conns conn;
              Sock.close c
            | None -> ());
      (* DMT -> consensus path for time bubbles (Figure 13).  Backpressure:
         the gate re-requests every wtimeout while the sequence stays empty,
         so if commits stall (lossy network, lost quorum contact) an
         unthrottled loop would append ~10k junk bubbles per virtual second
         that every replica must later commit and drain.  Skip the request
         when the pipeline is already deep; bubbling resumes as soon as the
         backlog commits.  Buffered-but-unflushed events count toward the
         depth. *)
      request_bubble =
        (fun () ->
          if
            Paxos.is_primary t.paxos
            && (Paxos.stats t.paxos).Paxos.pending + Queue.length t.buf < 32
          then ignore (submit t (Event.Time_bubble { nclock = Vhost.nclock vhost })));
    };
  Paxos.set_handlers paxos
    {
      (* Consensus -> server path, in decision order (batches arrive
         unpacked, one callback per entry). *)
      Paxos.on_commit =
        (fun ~index value ->
          if index > t.skip_upto then
            Vhost.deliver vhost ~index ~view:(Paxos.view t.paxos)
              (Event.decode value));
      (* Deposed or abdicated: shed every attached client immediately so
         they see EOF and retry against the new primary, instead of
         waiting out a recv timeout on a node that can no longer commit
         their requests.  Buffered events are shed with them — they could
         no longer be proposed anyway. *)
      on_demote =
        (fun () ->
          Queue.clear t.buf;
          let shed = Hashtbl.fold (fun id c acc -> (id, c) :: acc) t.client_conns [] in
          List.iter
            (fun (id, c) ->
              Hashtbl.remove t.client_conns id;
              Sock.close c)
            (List.sort (fun (a, _) (b, _) -> compare a b) shed));
      (* Membership changed under us: the hosting layer re-resolves (the
         cluster records the new config; client targets re-read it per
         retry). *)
      on_config = (fun ~epoch members -> on_config ~epoch members);
      (* Reconfigured out: on_demote already shed the clients (fencing
         demotes first); tell the hosting layer so it retires this
         instance. *)
      on_fence = (fun ~epoch -> on_fence ~epoch);
    };
  (* Client -> consensus path. *)
  let listener = Sock.listen world ~node ~port in
  Engine.on_kill eng group (fun () -> Sock.close_listener listener);
  Engine.spawn eng ~group ~name:(node ^ "-proxy-acceptor") (fun () ->
      acceptor_loop t listener);
  (match read_port with
  | None -> ()
  | Some rport ->
    let rlistener = Sock.listen world ~node ~port:rport in
    Engine.on_kill eng group (fun () -> Sock.close_listener rlistener);
    Engine.spawn eng ~group ~name:(node ^ "-proxy-read-acceptor") (fun () ->
        read_acceptor_loop t rlistener));
  orphan_monitor t;
  t

let set_read_handler t f = t.read_handler <- Some f

let stop t =
  t.stopped <- true;
  Queue.clear t.buf

let skip_upto t = t.skip_upto

(* A snapshot installed mid-life (catch-up fast-forward) extends the
   range of decisions already embodied by the restored server state:
   never deliver them again. *)
let set_skip_upto t index = if index > t.skip_upto then t.skip_upto <- index

let stats (t : t) : stats =
  {
    bubbles_proposed = t.bubbles_proposed;
    calls_proposed = t.calls_proposed;
    client_count = Hashtbl.length t.client_conns;
    batches_flushed = t.batches_flushed;
    lease_reads = t.lease_reads;
    backup_reads = t.backup_reads;
    lease_rejects = t.lease_rejects;
  }
