(** A CRANE instance: one replica's assembly of proxy, PAXOS consensus,
    DMT scheduler, time bubbling, checkpoint component and the server
    program (paper Figure 1). *)

module Time = Crane_sim.Time
module Engine = Crane_sim.Engine
module Rng = Crane_sim.Rng
module Cores = Crane_sim.Cores
module Fabric = Crane_net.Fabric
module Sock = Crane_socket.Sock
module Pthread = Crane_pthread.Pthread
module Dmt = Crane_dmt.Dmt
module Wal = Crane_storage.Wal
module Paxos = Crane_paxos.Paxos
module Memfs = Crane_fs.Memfs
module Fsdiff = Crane_fs.Fsdiff
module Container = Crane_fs.Container
module Manager = Crane_checkpoint.Manager
module Criu = Crane_checkpoint.Criu

type mode =
  | Full  (** DMT + time bubbling: the CRANE system *)
  | No_bubbling  (** plan II of §7.2: DMT + PAXOS, bubbling disabled *)
  | Paxos_only  (** Figure 14's "w/ Paxos only": no DMT *)

type config = {
  mode : mode;
  wtimeout : Time.t;
  nclock : int;
  usleep : Time.t;
  cores : int;
  service_port : int;
  read_fastpath : bool;
      (** serve the read port (leader-lease + bounded-stale backup reads);
          off = every request funnels through consensus, the pre-lease
          behaviour *)
  read_port : int;  (** client-facing read-fast-path port (all replicas) *)
  turn_cost : Time.t;
  idle_period : Time.t;
  pthread_cost : Pthread.cost;
  paxos : Paxos.config;
  batch_max : int;
      (** proxy batching: flush a pending batch at this many events
          (1 = batching off, the pre-batching commit path) *)
  batch_delay : Time.t;
      (** proxy batching: flush a non-full pending batch after this much
          virtual time *)
  pool_workers : int;
      (** dependency-aware parallel delivery: number of execute-stage
          worker lanes (1 = off, the classic head-of-sequence admission).
          Above 1 requires [Full] or [No_bubbling] mode; committed
          commands with disjoint declared footprints run concurrently on
          separate DMT lanes while conflicting or undeclared commands
          keep total log order *)
  wal_write_latency : Time.t;
      (** per-fsync device latency of each replica's WAL — exposed so the
          what-if profiler can re-run a seed with a scaled flash device
          (e.g. "fsync 2x faster") and measure the end-to-end delta *)
  checkpoint_period : Time.t;
  container_stop : Time.t;  (** LXC stop cost (daemon-dependent, §5.2) *)
  container_start : Time.t;  (** LXC start cost *)
  output_keep : int;
      (** output-log entries retained after a compaction round frees the
          prefix already acked by all peers (older entries fold into a
          chain digest so consistency checks still cover them) *)
}

let default_config =
  {
    mode = Full;
    wtimeout = Time.us 100;
    nclock = 1000;
    usleep = Time.us 10;
    cores = 24;
    service_port = 80;
    read_fastpath = true;
    read_port = 10080;
    turn_cost = Time.ns 150;
    idle_period = Time.us 10;
    pthread_cost = Pthread.default_cost;
    paxos = Paxos.default_config;
    batch_max = 64;
    batch_delay = Time.us 100;
    pool_workers = 1;
    wal_write_latency = Time.us 15;
    checkpoint_period = Time.sec 60;
    container_stop = Time.ms 1200;
    container_start = Time.ms 2200;
    output_keep = 65536;
  }

type t = {
  node : string;
  group : Engine.group;
  cfg : config;
  fsys : Memfs.t;
  container : Container.t;
  cores : Cores.t;
  vhost : Vhost.t;
  proxy : Proxy.t;
  paxos : Paxos.t;
  dmt : Dmt.t option;
  runtime : Runtime.t;
  handle : Api.handle;
  manager : Manager.t;
}

let vhost_config (cfg : config) =
  {
    Vhost.wtimeout = cfg.wtimeout;
    nclock = cfg.nclock;
    bubbling = (match cfg.mode with Full -> true | No_bubbling | Paxos_only -> false);
    usleep = cfg.usleep;
    pool = (match cfg.mode with Full | No_bubbling -> cfg.pool_workers | Paxos_only -> 1);
  }

(** Boot a replica.  [skip_upto] > 0 means the server state was restored
    from a checkpoint taken at that global index: decisions up to it are
    not re-delivered.  [preloaded_fs] supplies the restored filesystem. *)
let boot ~eng ~fabric ~world ~rng ~wal ~members ~node ~(cfg : config) ~(server : Api.server)
    ?(skip_upto = 0) ?preloaded_fs ?restore_state ?(as_primary = false)
    ?(on_config = fun ~epoch:_ _ -> ()) ?(on_fence = fun ~epoch:_ -> ()) () =
  let group = Engine.new_group eng in
  Crane_trace.Trace.register_group (Engine.trace eng) ~group ~node;
  Fabric.node_up fabric node;
  (* Late joiners and reboots alike start with a clean transport: stale
     connection state from a previous incarnation of this name is
     discarded before the listener comes up. *)
  Sock.node_booted world node;
  Engine.on_kill eng group (fun () ->
      Fabric.node_down fabric node;
      Sock.node_crashed world node);
  let fsys =
    match preloaded_fs with
    | Some fs -> fs
    | None ->
      let fs = Memfs.create () in
      server.Api.install fs;
      fs
  in
    let container =
    Container.create eng ~name:(node ^ "-lxc") ~stop_cost:cfg.container_stop
      ~start_cost:cfg.container_start fsys
  in
  let cores = Cores.create eng cfg.cores in
  let paxos =
    Paxos.create ~config:cfg.paxos ~fabric ~rng:(Rng.split rng) ~wal ~members ~node
      ~group ()
  in
  let dmt, clocking =
    match cfg.mode with
    | Full | No_bubbling ->
      (* One lane per pool worker, plus lane 0 for the idle thread and
         bootstrap spawns; pool_workers = 1 keeps the classic single
         round-robin queue. *)
      let lanes = if cfg.pool_workers > 1 then cfg.pool_workers + 1 else 1 in
      let dmt =
        Dmt.create ~turn_cost:cfg.turn_cost ~idle_period:cfg.idle_period ~lanes
          eng
      in
      Dmt.set_label dmt node;
      (Some dmt, Vhost.Clocked dmt)
    | Paxos_only -> (None, Vhost.Immediate)
  in
  let vhost = Vhost.create ~node eng ~cfg:(vhost_config cfg) ~clocking in
  let proxy =
    Proxy.create ~eng ~node ~world ~port:cfg.service_port ~paxos ~vhost ~group
      ~skip_upto ~batch_max:cfg.batch_max ~batch_delay:cfg.batch_delay
      ?read_port:(if cfg.read_fastpath then Some cfg.read_port else None)
      ~on_config ~on_fence ()
  in
  let runtime =
    match (cfg.mode, dmt) with
    | (Full | No_bubbling), Some dmt ->
      Runtime.crane ~eng ~node ~fs:fsys ~cores ~dmt ~vhost ()
    | Paxos_only, None ->
      Runtime.paxos_only ~cost:cfg.pthread_cost ~eng ~node ~fs:fsys ~cores
        ~rng:(Rng.split rng) ~vhost ()
    | (Full | No_bubbling), None | Paxos_only, Some _ -> assert false
  in
  (* Boot the server program inside the instance. *)
  let handle = server.Api.boot runtime.Runtime.api in
  (match restore_state with Some state -> handle.Api.load_state state | None -> ());
  if cfg.read_fastpath then Proxy.set_read_handler proxy handle.Api.read;
  if cfg.pool_workers > 1 then Vhost.set_footprint vhost handle.Api.footprint;
  let manager =
    (* Quiescence for a checkpoint means no alive connections AND no
       decided-but-unconsumed client calls in the PAXOS sequence: the
       recorded global index must reflect everything the server's state
       embodies, or replay from it would drop requests. *)
    Manager.create eng ~container
      ~state_of:handle.Api.state_of
      ~mem_bytes:handle.Api.mem_bytes
      ~alive_conns:(fun () ->
        runtime.Runtime.alive_conns () + Paxos_seq.queued_calls (Vhost.seq vhost))
      ~global_index:(fun () -> Paxos.applied paxos)
  in
  Paxos.set_compaction_hooks paxos
    {
      (* A snapshot arrived through consensus catch-up and this replica is
         about to fast-forward past [index].  When an out-of-band restore
         (Cluster.restart shipping a checkpoint before boot) already
         covers the index, the state is current and only the bookkeeping
         moves; otherwise install the (process state, filesystem) pair
         and discard any decided-but-unconsumed sequence entries — all at
         or below the snapshot index, and quiescence-gated checkpoints
         guarantee no connection spans the boundary. *)
      Paxos.install_snapshot =
        (fun ~index blob ->
          if index > Proxy.skip_upto proxy then begin
            (match (Marshal.from_string blob 0 : string * Memfs.snapshot) with
            | state, snap ->
              Memfs.restore fsys snap;
              handle.Api.load_state state
            | exception _ -> ());
            Paxos_seq.clear (Vhost.seq vhost);
            Proxy.set_skip_upto proxy index
          end);
      (* The watermark prefix is applied on every live replica: the
         output entries it produced can be folded into the chain digest
         and freed. *)
      on_compact =
        (fun ~watermark:_ ->
          Output_log.trim_to (Vhost.output vhost) ~keep:cfg.output_keep);
    };
  Paxos.start paxos ~as_primary ();
  { node; group; cfg; fsys; container; cores; vhost; proxy; paxos; dmt; runtime;
    handle; manager }

(** Replay decided-but-post-checkpoint socket calls into the server.
    Reconfig entries are consensus-internal (live delivery activates them
    instead of invoking [on_commit]): skip them here too, or replay would
    feed a config payload to [Event.decode]. *)
let replay_from t ~from_index =
  let values =
    Paxos.get_committed_range t.paxos ~lo:from_index ~hi:(Paxos.committed t.paxos)
  in
  List.iteri
    (fun i v ->
      if not (Paxos.is_config_value v) then
        Vhost.deliver t.vhost ~index:(from_index + i) (Event.decode v))
    values

(* The application snapshot consensus disseminates for compaction and
   snapshot catch-up: the CRIU state blob plus the checkpointed
   filesystem (base patched forward), exactly what a restore needs. *)
let snapshot_blob (c : Manager.checkpoint) =
  let fs = Fsdiff.apply ~base:c.Manager.fs_base c.Manager.fs_patch in
  Marshal.to_string (c.Manager.image.Criu.payload, fs) []

let start_checkpointing t =
  Manager.start_periodic t.manager ~period:t.cfg.checkpoint_period
    ~on_checkpoint:(fun c ->
      Paxos.offer_snapshot t.paxos ~index:c.Manager.global_index
        ~blob:(snapshot_blob c))
    ~group:t.group ()

let kill ~eng t =
  Vhost.stop t.vhost;
  (match t.dmt with Some d -> Dmt.stop d | None -> ());
  Proxy.stop t.proxy;
  Engine.kill_group eng t.group

let is_primary t = Paxos.is_primary t.paxos
let output t = Vhost.output t.vhost
let node t = t.node
let seq_stats t = (Paxos_seq.calls (Vhost.seq t.vhost), Paxos_seq.bubbles (Vhost.seq t.vhost))
