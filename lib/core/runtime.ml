(** Runtime bindings: the same server code runs under any of these, the
    way a binary runs under different LD_PRELOAD interpositions.

    {!native} — Pthreads + direct sockets (un-replicated baseline).
    {!parrot} — DMT; blocking socket calls keep network-arrival
    nondeterminism via PARROT's socket queue ("w/ Parrot only").
    {!crane} — DMT + PAXOS-sequence admission (the full system, or plan
    II when the vhost's bubbling flag is off).
    {!paxos_only} — Pthreads + immediate PAXOS-ordered delivery. *)

module Time = Crane_sim.Time
module Engine = Crane_sim.Engine
module Rng = Crane_sim.Rng
module Cores = Crane_sim.Cores
module Sock = Crane_socket.Sock
module Pthread = Crane_pthread.Pthread
module Dmt = Crane_dmt.Dmt
module Trace = Crane_trace.Trace

type t = {
  api : Api.api;
  output : Output_log.t;  (** outgoing socket calls, for §7.2 comparisons *)
  alive_conns : unit -> int;
  sync_context_switches : unit -> int;
}

(* Shared plumbing for the two direct-socket runtimes. *)
module type DIRECT_SOCKET = sig
  type listener = Sock.listener
  type conn = Sock.conn

  val listen : port:int -> listener
  val poll : listener -> unit
  val accept : listener -> conn
  val recv : conn -> max:int -> string
  val send : conn -> string -> unit
  val close : conn -> unit
  val conn_id : conn -> int
end

(* Monitored shared-memory cells (the sanitizer's [Shared.cell] API).
   Every read/write streams a "mem" event carrying a per-process location
   id and the declaration-site name; the DMT runtimes additionally
   serialize each access through the scheduler turn, reported as the
   acquire/release of pseudo-lock object 0 ("turn") — the happens-before
   edge that makes DMT cell accesses race-free by serialization. *)
module Cellkit = struct
  type 'a c = { id : int; site : string; mutable v : 'a }

  let make ~counter ~site v =
    incr counter;
    { id = !counter; site; v }

  let mem_ev ~eng ~node name (c : _ c) =
    let tr = Engine.trace eng in
    if Trace.enabled tr then
      Trace.instant tr ~ts:(Engine.now eng) ~tid:(Engine.self_tid eng) ~node
        ~cat:"mem" ~name
        [ ("loc", Trace.Int c.id); ("site", Trace.Str c.site) ]

  (* The turn pseudo-lock is per scheduler lane: object 0 for lane 0 (the
     classic global turn) and negative ids for pool-mode worker lanes —
     [new_obj] ids start at 1, so negatives never collide with real
     objects.  Single-lane schedulers always report object 0, keeping
     their traces byte-identical to the pre-lane ones. *)
  let turn_args ~lane =
    [ ("obj", Trace.Int (if lane = 0 then 0 else -lane));
      ("kind", Trace.Str "turn"); ("label", Trace.Str "turn") ]

  let turn_ev ?(lane = 0) ~eng ~node name =
    let tr = Engine.trace eng in
    if Trace.enabled tr then
      Trace.instant tr ~ts:(Engine.now eng) ~tid:(Engine.self_tid eng) ~node
        ~cat:"sync" ~name (turn_args ~lane)
end

(* The server-side pickup of an admitted request: the instant the recv
   wrapper hands bytes to server code marks the scheduler-wait -> execute
   boundary of that request's span on this replica's timeline. *)
let recv_return_ev ~eng ~node ~conn ~bytes =
  if bytes > 0 then begin
    let tr = Engine.trace eng in
    if Trace.enabled tr then
      Trace.instant tr ~ts:(Engine.now eng) ~tid:(Engine.self_tid eng) ~node
        ~cat:"req" ~name:"recv_return"
        [ ("conn", Trace.Int conn); ("bytes", Trace.Int bytes) ]
  end

type blocking_wrapper = { wrap : 'a. (unit -> 'a) -> 'a }

module Direct_socket = struct
  let make ~eng ~world ~node ~output ~open_conns ~(wrap_blocking : blocking_wrapper) =
    let module M = struct
      type listener = Sock.listener
      type conn = Sock.conn

      (* Expose the connection count as a flight-recorder gauge: the
         per-runtime counter of the un-replicated deployments. *)
      let note_conns () =
        let tr = Engine.trace eng in
        if Trace.enabled tr then
          Trace.counter tr ~ts:(Engine.now eng) ~tid:(Engine.self_tid eng)
            ~node ~name:"open_conns" !open_conns

      let listen ~port = Sock.listen world ~node ~port
      let poll l = ignore (wrap_blocking.wrap (fun () -> Sock.wait_acceptable l))

      let accept l =
        let c = wrap_blocking.wrap (fun () -> Sock.accept l) in
        incr open_conns;
        note_conns ();
        c

      let recv c ~max = wrap_blocking.wrap (fun () -> Sock.recv c ~max)

      let send c payload =
        Output_log.record output ~conn:(Sock.id c) payload;
        try Sock.send c payload with Sock.Connection_closed -> ()

      let close c =
        if Sock.is_open c then begin
          decr open_conns;
          note_conns ()
        end;
        Sock.close c

      let conn_id = Sock.id
    end in
    (module M : DIRECT_SOCKET)
end

let native ?(cost = Pthread.default_cost) ~eng ~world ~node ~fs ~cores ~rng () =
  let pt = Pthread.create ~cost eng rng in
  let output = Output_log.create () in
  let open_conns = ref 0 in
  let module S =
    (val Direct_socket.make ~eng ~world ~node ~output ~open_conns
           ~wrap_blocking:{ wrap = (fun f -> f ()) })
  in
  let module M = struct
    let node = node
    let fs = fs
    let now () = Engine.now eng
    let sleep d = Engine.sleep eng d
    let spawn ~name body = Engine.spawn eng ~name body
    let work d = Cores.work cores d

    type mutex = Pthread.Mutex.m
    type cond = Pthread.Cond.c
    type rwlock = Pthread.Rwlock.rw

    let mutex ?name () = Pthread.Mutex.create ?name pt
    let lock = Pthread.Mutex.lock
    let unlock = Pthread.Mutex.unlock
    let cond ?name () = Pthread.Cond.create ?name pt
    let cond_wait = Pthread.Cond.wait
    let cond_signal = Pthread.Cond.signal
    let cond_broadcast = Pthread.Cond.broadcast
    let rwlock ?name () = Pthread.Rwlock.create ?name pt
    let rdlock = Pthread.Rwlock.rdlock
    let wrlock = Pthread.Rwlock.wrlock
    let rwunlock = Pthread.Rwlock.unlock

    type 'a cell = 'a Cellkit.c

    let cell_counter = ref 0
    let cell ~name v = Cellkit.make ~counter:cell_counter ~site:name v

    let cell_get c =
      Cellkit.mem_ev ~eng ~node "read" c;
      c.Cellkit.v

    let cell_set c v =
      Cellkit.mem_ev ~eng ~node "write" c;
      c.Cellkit.v <- v

    include S

    (* Hints are PARROT-specific: a no-op under plain Pthreads. *)
    type soft_barrier = unit

    let soft_barrier ~n:_ ~timeout_ticks:_ = ()
    let soft_barrier_wait () = ()
  end in
  {
    api = (module M : Api.API);
    output;
    alive_conns = (fun () -> !open_conns);
    sync_context_switches = (fun () -> Pthread.context_switches pt);
  }

let parrot ?turn_cost ?idle_period ~eng ~world ~node ~fs ~cores () =
  let dmt = Dmt.create ?turn_cost ?idle_period eng in
  let output = Output_log.create () in
  let open_conns = ref 0 in
  let module S =
    (val Direct_socket.make ~eng ~world ~node ~output ~open_conns
           ~wrap_blocking:{ wrap = (fun f -> Dmt.block_external dmt f) })
  in
  let module M = struct
    let node = node
    let fs = fs
    let now () = Engine.now eng
    let sleep d = Engine.sleep eng d
    let spawn ~name body = Dmt.spawn dmt ~name body
    let work d = Cores.work cores d

    type mutex = Dmt.Mutex.m
    type cond = Dmt.Cond.c
    type rwlock = Dmt.Rwlock.rw

    let mutex ?name () = Dmt.Mutex.create ?name dmt
    let lock = Dmt.Mutex.lock
    let unlock = Dmt.Mutex.unlock
    let cond ?name () = Dmt.Cond.create ?name dmt
    let cond_wait = Dmt.Cond.wait
    let cond_signal = Dmt.Cond.signal
    let cond_broadcast = Dmt.Cond.broadcast
    let rwlock ?name () = Dmt.Rwlock.create ?name dmt
    let rdlock = Dmt.Rwlock.rdlock
    let wrlock = Dmt.Rwlock.wrlock
    let rwunlock = Dmt.Rwlock.unlock

    type 'a cell = 'a Cellkit.c

    let cell_counter = ref 0
    let cell ~name v = Cellkit.make ~counter:cell_counter ~site:name v

    (* Bracket the access in a scheduler turn (from DMT threads): the
       access order is decided by the deterministic round-robin, and the
       sanitizer sees it as acquire/release of the "turn" pseudo-lock.
       Accesses from outside the scheduler (bootstrap, checkpointing) go
       through unbracketed. *)
    let cell_access name c f =
      if Dmt.is_thread dmt then begin
        Dmt.get_turn dmt;
        Cellkit.turn_ev ~eng ~node "acquire";
        Cellkit.mem_ev ~eng ~node name c;
        let v = f () in
        Cellkit.turn_ev ~eng ~node "release";
        Dmt.put_turn dmt;
        v
      end
      else begin
        Cellkit.mem_ev ~eng ~node name c;
        f ()
      end

    let cell_get c = cell_access "read" c (fun () -> c.Cellkit.v)
    let cell_set c v = cell_access "write" c (fun () -> c.Cellkit.v <- v)

    include S

    type soft_barrier = Dmt.Soft_barrier.sb

    let soft_barrier ~n ~timeout_ticks = Dmt.Soft_barrier.create dmt ~n ~timeout_ticks
    let soft_barrier_wait = Dmt.Soft_barrier.wait
  end in
  ( {
      api = (module M : Api.API);
      output;
      alive_conns = (fun () -> !open_conns);
      sync_context_switches = (fun () -> Dmt.context_switches dmt);
    },
    dmt )

let crane ~eng ~node ~fs ~cores ~dmt ~vhost () =
  let module M = struct
    let node = node
    let fs = fs
    let now () = Engine.now eng
    let sleep d = Engine.sleep eng d
    let spawn ~name body = Dmt.spawn dmt ~name body
    let work d = Cores.work cores d

    type mutex = Dmt.Mutex.m
    type cond = Dmt.Cond.c
    type rwlock = Dmt.Rwlock.rw

    let mutex ?name () = Dmt.Mutex.create ?name dmt
    let lock = Dmt.Mutex.lock
    let unlock = Dmt.Mutex.unlock
    let cond ?name () = Dmt.Cond.create ?name dmt
    let cond_wait = Dmt.Cond.wait
    let cond_signal = Dmt.Cond.signal
    let cond_broadcast = Dmt.Cond.broadcast
    let rwlock ?name () = Dmt.Rwlock.create ?name dmt
    let rdlock = Dmt.Rwlock.rdlock
    let wrlock = Dmt.Rwlock.wrlock
    let rwunlock = Dmt.Rwlock.unlock

    type 'a cell = 'a Cellkit.c

    let cell_counter = ref 0
    let cell ~name v = Cellkit.make ~counter:cell_counter ~site:name v

    let cell_access name c f =
      if Dmt.is_thread dmt then begin
        Dmt.get_turn dmt;
        let lane = Dmt.current_lane dmt in
        Cellkit.turn_ev ~lane ~eng ~node "acquire";
        Cellkit.mem_ev ~eng ~node name c;
        let v = f () in
        Cellkit.turn_ev ~lane ~eng ~node "release";
        Dmt.put_turn dmt;
        v
      end
      else begin
        Cellkit.mem_ev ~eng ~node name c;
        f ()
      end

    let cell_get c = cell_access "read" c (fun () -> c.Cellkit.v)
    let cell_set c v = cell_access "write" c (fun () -> c.Cellkit.v <- v)

    type listener = Vhost.vlistener
    type conn = Vhost.vconn

    let listen ~port = Vhost.listen vhost ~port
    let poll l = Vhost.poll vhost l
    let accept l = Vhost.accept vhost l

    let recv c ~max =
      let data = Vhost.recv vhost c ~max in
      recv_return_ev ~eng ~node ~conn:(Vhost.conn_id c)
        ~bytes:(String.length data);
      data

    let send c payload = Vhost.send vhost c payload
    let close c = Vhost.close vhost c
    let conn_id = Vhost.conn_id

    type soft_barrier = Dmt.Soft_barrier.sb

    let soft_barrier ~n ~timeout_ticks = Dmt.Soft_barrier.create dmt ~n ~timeout_ticks
    let soft_barrier_wait = Dmt.Soft_barrier.wait
  end in
  {
    api = (module M : Api.API);
    output = Vhost.output vhost;
    alive_conns = (fun () -> Vhost.open_conns vhost);
    sync_context_switches = (fun () -> Dmt.context_switches dmt);
  }

let paxos_only ?(cost = Pthread.default_cost) ~eng ~node ~fs ~cores ~rng ~vhost () =
  let pt = Pthread.create ~cost eng rng in
  let module M = struct
    let node = node
    let fs = fs
    let now () = Engine.now eng
    let sleep d = Engine.sleep eng d
    let spawn ~name body = Engine.spawn eng ~name body
    let work d = Cores.work cores d

    type mutex = Pthread.Mutex.m
    type cond = Pthread.Cond.c
    type rwlock = Pthread.Rwlock.rw

    let mutex ?name () = Pthread.Mutex.create ?name pt
    let lock = Pthread.Mutex.lock
    let unlock = Pthread.Mutex.unlock
    let cond ?name () = Pthread.Cond.create ?name pt
    let cond_wait = Pthread.Cond.wait
    let cond_signal = Pthread.Cond.signal
    let cond_broadcast = Pthread.Cond.broadcast
    let rwlock ?name () = Pthread.Rwlock.create ?name pt
    let rdlock = Pthread.Rwlock.rdlock
    let wrlock = Pthread.Rwlock.wrlock
    let rwunlock = Pthread.Rwlock.unlock

    type 'a cell = 'a Cellkit.c

    let cell_counter = ref 0
    let cell ~name v = Cellkit.make ~counter:cell_counter ~site:name v

    let cell_get c =
      Cellkit.mem_ev ~eng ~node "read" c;
      c.Cellkit.v

    let cell_set c v =
      Cellkit.mem_ev ~eng ~node "write" c;
      c.Cellkit.v <- v

    type listener = Vhost.vlistener
    type conn = Vhost.vconn

    let listen ~port = Vhost.listen vhost ~port
    let poll l = Vhost.poll vhost l
    let accept l = Vhost.accept vhost l

    let recv c ~max =
      let data = Vhost.recv vhost c ~max in
      recv_return_ev ~eng ~node ~conn:(Vhost.conn_id c)
        ~bytes:(String.length data);
      data

    let send c payload = Vhost.send vhost c payload
    let close c = Vhost.close vhost c
    let conn_id = Vhost.conn_id

    type soft_barrier = unit

    let soft_barrier ~n:_ ~timeout_ticks:_ = ()
    let soft_barrier_wait () = ()
  end in
  {
    api = (module M : Api.API);
    output = Vhost.output vhost;
    alive_conns = (fun () -> Vhost.open_conns vhost);
    sync_context_switches = (fun () -> Pthread.context_switches pt);
  }
