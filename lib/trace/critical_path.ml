(** Critical-path analysis over request spans (the latency-attribution
    layer of the flight recorder).

    Every committed client call leaves a causal chain of events in the
    trace, keyed by its global consensus index (the trace id assigned at
    the proxy):

    {v
    net.rx_*  ->  req.proposed  ->  req.fsync_done  ->  paxos.commit
        (arrival)    (proxy flush)     (WAL durable)      (quorum)
              ->  seq.admit  ->  req.reply  ->  net.rx_data
                 (DMT admits)    (server send)   (client receives)
    v}

    [analyze] walks that chain for each commit and decomposes end-to-end
    latency into named stages:

    - [client_queue] — bytes arrived at the proxy until the proxy turned
      them into a proposal-eligible event (socket buffering, proxy rx loop
      scheduling);
    - [batch_wait] — sat in the proxy batch buffer awaiting flush;
    - [fsync] — proposal until the primary's WAL group fsync covering the
      index was durable (clamped at commit: a remote quorum can commit an
      index before the local write lands);
    - [consensus] — the rest of proposal-to-commit: the Accept round
      trip not hidden behind the local fsync;
    - [sched_wait] — committed until the replica's DMT admitted the call
      from the PAXOS sequence (the serialization tax, §4);
    - [execute] — admission until the server produced its response;
    - [reply] — response sent until the client's transport received it.

    Stage sums telescope: client_queue + batch_wait + fsync + consensus
    + sched_wait + execute + reply = end-to-end (for fully resolved
    spans).  A per-view table attributes election stalls, and a
    blocked-on table overlaps each sched_wait window with the sync events
    of PR 5's sanitizers (cond waits, gate blocks, DMT turn waits) to
    name what admission actually waited under. *)

module Table = Crane_report.Table

type stage_row = { stage : string; summary : Metrics.summary }

type view_row = {
  view : int;
  requests : int;
  e2e_p50 : int;
  e2e_p99 : int;
  max_stall : int;  (** worst sched_wait in the view: faults show up here *)
}

type blocked_row = {
  label : string;  (** "gate.block", "dmt.turn_wait", "cond:<name>" *)
  hits : int;  (** blocking intervals overlapping a sched_wait window *)
  blocked_ns : int;  (** summed overlap *)
}

type report = {
  committed : int;  (** committed client-call indices (bubbles excluded) *)
  complete : int;  (** of those, spans with the full propose->commit->admit chain *)
  coverage : float;
  bubbles : int;  (** committed time-bubble indices (no client latency) *)
  unattributed : int;  (** commits with no [req.proposed] record at all *)
  stages : stage_row list;  (** fixed stage order, zero-count stages included *)
  e2e : Metrics.summary;
  per_view : view_row list;
  blocked_on : blocked_row list;
  errors : string list;  (** malformed span DAGs: empty on a healthy trace *)
}

let stage_order =
  [ "client_queue"; "batch_wait"; "fsync"; "consensus"; "sched_wait";
    "execute"; "reply" ]

(* ------------------------------------------------------------------ *)

type req = {
  index : int;
  mutable kind : string;
  mutable conn : int;
  mutable rview : int;
  mutable proposer : string;
  mutable propose_ts : int;
  mutable queued_ns : int;
  mutable proposals : int;  (* duplicate-detection *)
  mutable fsync_ts : int option;
  mutable commit_local : int option;  (* commit instant on the proposer *)
  mutable commit_any : int option;  (* earliest commit on any replica *)
  mutable admit_local : int option;
  mutable admit_any : int option;
  (* resolved in the matching phase *)
  mutable rx_ts : int option;
  mutable reply_ts : int option;
  mutable client_rx_ts : int option;
}

let new_req index =
  {
    index;
    kind = "";
    conn = -1;
    rview = 0;
    proposer = "";
    propose_ts = 0;
    queued_ns = 0;
    proposals = 0;
    fsync_ts = None;
    commit_local = None;
    commit_any = None;
    admit_local = None;
    admit_any = None;
    rx_ts = None;
    reply_ts = None;
    client_rx_ts = None;
  }

let min_opt cur ts =
  match cur with Some t when t <= ts -> cur | Some _ | None -> Some ts

(* Per-key cursors over chronologically ordered occurrence lists: the
   matching phase consumes arrivals/replies in FIFO order per
   connection, mirroring how the proxy and server actually pair them. *)
module Cursor = struct
  type 'k t = ('k, int list ref) Hashtbl.t

  let create () : _ t = Hashtbl.create 64

  let push (t : _ t) k ts =
    match Hashtbl.find_opt t k with
    | Some r -> r := ts :: !r (* newest first; reversed once when sealed *)
    | None -> Hashtbl.add t k (ref [ ts ])

  let seal (t : _ t) = Hashtbl.iter (fun _ r -> r := List.rev !r) t

  (* Pop the first occurrence at or before [le] (FIFO). *)
  let pop_le (t : _ t) k ~le =
    match Hashtbl.find_opt t k with
    | Some ({ contents = ts :: rest } as r) when ts <= le ->
      r := rest;
      Some ts
    | _ -> None

  (* Pop the first occurrence at or after [ge], discarding stale ones. *)
  let pop_ge (t : _ t) k ~ge =
    match Hashtbl.find_opt t k with
    | Some r ->
      let rec go = function
        | ts :: rest when ts < ge -> go rest
        | ts :: rest ->
          r := rest;
          Some ts
        | [] ->
          r := [];
          None
      in
      go !r
    | None -> None
end

(* Disjoint sorted intervals, for the blocked-on overlap. *)
let merge_intervals ivs =
  let sorted = List.sort compare ivs in
  let rec go acc = function
    | [] -> List.rev acc
    | (s, e) :: rest -> (
      match acc with
      | (ps, pe) :: tail when s <= pe -> go ((ps, max pe e) :: tail) rest
      | _ -> go ((s, e) :: acc) rest)
  in
  go [] sorted

let overlap_with windows (s, e) =
  List.fold_left
    (fun acc (ws, we) ->
      let lo = max s ws and hi = min e we in
      acc + max 0 (hi - lo))
    0 windows

(* ------------------------------------------------------------------ *)

let analyze tr =
  let reqs : (int, req) Hashtbl.t = Hashtbl.create 1024 in
  let req index =
    match Hashtbl.find_opt reqs index with
    | Some r -> r
    | None ->
      let r = new_req index in
      Hashtbl.add reqs index r;
      r
  in
  (* (node, conn, event-name) -> chronological occurrence list *)
  let rx : (string * int * string) Cursor.t = Cursor.create () in
  let replies : (string * int) Cursor.t = Cursor.create () in
  (* blocking intervals per node: (node, label) -> (start, end) list *)
  let blocking : (string * string, (int * int) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let add_blocking node label iv =
    match Hashtbl.find_opt blocking (node, label) with
    | Some r -> r := iv :: !r
    | None -> Hashtbl.add blocking (node, label) (ref [ iv ])
  in
  let open_spans : (string * int * string, int) Hashtbl.t = Hashtbl.create 64 in
  let open_conds : (string * int, int * string) Hashtbl.t = Hashtbl.create 64 in
  let ints ev k = Trace.find_int ev k in
  let int_arg ev k ~default = Option.value (ints ev k) ~default in
  List.iter
    (fun (ev : Trace.ev) ->
      let node = Trace.resolve_node tr ev in
      match (ev.Trace.cat, ev.Trace.name, ev.Trace.ph) with
      | "req", "proposed", Trace.Instant -> (
        match ints ev "index" with
        | None -> ()
        | Some index ->
          let r = req index in
          r.proposals <- r.proposals + 1;
          r.kind <- Option.value (Trace.find_str ev "kind") ~default:"";
          r.conn <- int_arg ev "conn" ~default:(-1);
          r.rview <- int_arg ev "view" ~default:0;
          r.proposer <- node;
          r.propose_ts <- ev.Trace.ts;
          r.queued_ns <- int_arg ev "queued_ns" ~default:0)
      | "req", "fsync_done", Trace.Instant -> (
        match ints ev "index" with
        | None -> ()
        | Some index ->
          let r = req index in
          if r.fsync_ts = None then r.fsync_ts <- Some ev.Trace.ts)
      | "paxos", "commit", Trace.Instant -> (
        match ints ev "index" with
        | None -> ()
        | Some index ->
          let r = req index in
          r.commit_any <- min_opt r.commit_any ev.Trace.ts;
          if r.proposer <> "" && node = r.proposer && r.commit_local = None then
            r.commit_local <- Some ev.Trace.ts)
      | "seq", "admit", Trace.Instant -> (
        match ints ev "index" with
        | None | Some 0 -> ()
        | Some index ->
          let r = req index in
          r.admit_any <- min_opt r.admit_any ev.Trace.ts;
          if r.proposer <> "" && node = r.proposer && r.admit_local = None then
            r.admit_local <- Some ev.Trace.ts)
      | "net", (("rx_data" | "rx_syn" | "rx_fin") as name), Trace.Instant -> (
        match ints ev "conn" with
        | None -> ()
        | Some conn -> Cursor.push rx (node, conn, name) ev.Trace.ts)
      | "req", "reply", Trace.Instant -> (
        match ints ev "conn" with
        | None -> ()
        | Some conn -> Cursor.push replies (node, conn) ev.Trace.ts)
      | "gate", "block", Trace.Begin | "dmt", "turn_wait", Trace.Begin ->
        Hashtbl.replace open_spans (node, ev.Trace.tid, ev.Trace.name) ev.Trace.ts
      | "gate", "block", Trace.End | "dmt", "turn_wait", Trace.End -> (
        let k = (node, ev.Trace.tid, ev.Trace.name) in
        match Hashtbl.find_opt open_spans k with
        | Some t0 ->
          Hashtbl.remove open_spans k;
          let label = if ev.Trace.name = "block" then "gate.block" else "dmt.turn_wait" in
          add_blocking node label (t0, ev.Trace.ts)
        | None -> ())
      | "sync", "cond_wait", Trace.Instant ->
        Hashtbl.replace open_conds (node, ev.Trace.tid)
          (ev.Trace.ts, Option.value (Trace.find_str ev "label") ~default:"?")
      | "sync", "cond_woken", Trace.Instant -> (
        let k = (node, ev.Trace.tid) in
        match Hashtbl.find_opt open_conds k with
        | Some (t0, label) ->
          Hashtbl.remove open_conds k;
          add_blocking node ("cond:" ^ label) (t0, ev.Trace.ts)
        | None -> ())
      | _ -> ())
    (Trace.events tr);
  Cursor.seal rx;
  Cursor.seal replies;
  (* ---------------- per-request resolution ---------------- *)
  let all = Hashtbl.fold (fun _ r acc -> r :: acc) reqs [] in
  let calls =
    List.filter (fun r -> r.proposals > 0 && r.kind <> "bubble") all
    |> List.sort (fun a b ->
           compare (a.propose_ts, a.index) (b.propose_ts, b.index))
  in
  let client_sides : (int, string list ref) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (node, conn, name) _ ->
      if name = "rx_data" then
        match Hashtbl.find_opt client_sides conn with
        | Some r -> if not (List.mem node !r) then r := node :: !r
        | None -> Hashtbl.add client_sides conn (ref [ node ]))
    rx;
  List.iter
    (fun r ->
      let submit_ts = r.propose_ts - r.queued_ns in
      (* which transport event carried this call to the proxy *)
      let rx_name =
        match r.kind with
        | "connect" -> Some "rx_syn"
        | "send" -> Some "rx_data"
        | "close" -> Some "rx_fin"
        | _ -> None
      in
      (match rx_name with
      | Some name ->
        r.rx_ts <- Cursor.pop_le rx (r.proposer, r.conn, name) ~le:submit_ts
      | None -> ());
      let admit = match r.admit_local with Some _ as a -> a | None -> r.admit_any in
      (match (r.kind, admit) with
      | "send", Some admit_ts -> (
        r.reply_ts <- Cursor.pop_ge replies (r.proposer, r.conn) ~ge:admit_ts;
        match (r.reply_ts, Hashtbl.find_opt client_sides r.conn) with
        | Some reply_ts, Some { contents = sides } ->
          (* the reply's arrival on the far (client) side of the conn *)
          let far = List.filter (fun n -> n <> r.proposer) sides in
          r.client_rx_ts <-
            List.fold_left
              (fun acc n ->
                match acc with
                | Some _ -> acc
                | None -> Cursor.pop_ge rx (n, r.conn, "rx_data") ~ge:reply_ts)
              None far
        | _ -> ())
      | _ -> ()))
    calls;
  (* ---------------- decomposition ---------------- *)
  let samples : (string, int list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter (fun s -> Hashtbl.add samples s (ref [])) stage_order;
  let sample stage v =
    match Hashtbl.find_opt samples stage with
    | Some r -> r := v :: !r
    | None -> ()
  in
  let e2e_samples = ref [] in
  let views : (int, (int list ref * int ref)) Hashtbl.t = Hashtbl.create 8 in
  let windows_per_node : (string, (int * int) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let complete = ref 0 in
  List.iter
    (fun r ->
      if r.proposals > 1 then
        err "index %d: %d proposal records (expected 1)" r.index r.proposals;
      if r.queued_ns < 0 then err "index %d: negative batch wait" r.index;
      let commit = match r.commit_local with Some _ as c -> c | None -> r.commit_any in
      let admit = match r.admit_local with Some _ as a -> a | None -> r.admit_any in
      match (commit, admit) with
      | Some commit_ts, Some admit_ts ->
        if commit_ts < r.propose_ts then
          err "index %d: committed before proposed" r.index;
        if admit_ts < commit_ts then
          err "index %d: admitted before committed" r.index;
        (match r.fsync_ts with
        | Some f when f < r.propose_ts ->
          err "index %d: fsync completed before proposal" r.index
        | _ -> ());
        incr complete;
        let submit_ts = r.propose_ts - r.queued_ns in
        (match r.rx_ts with
        | Some rx -> sample "client_queue" (submit_ts - rx)
        | None -> sample "client_queue" 0);
        sample "batch_wait" r.queued_ns;
        let fsync =
          match r.fsync_ts with
          | Some f -> max 0 (min f commit_ts - r.propose_ts)
          | None -> 0
        in
        sample "fsync" fsync;
        sample "consensus" (max 0 (commit_ts - r.propose_ts) - fsync);
        sample "sched_wait" (admit_ts - commit_ts);
        (match r.reply_ts with
        | Some reply_ts ->
          sample "execute" (reply_ts - admit_ts);
          (match r.client_rx_ts with
          | Some crx -> sample "reply" (crx - reply_ts)
          | None -> ())
        | None -> ());
        let t0 = match r.rx_ts with Some rx -> rx | None -> submit_ts in
        let t1 =
          match (r.client_rx_ts, r.reply_ts) with
          | Some crx, _ -> crx
          | None, Some reply_ts -> reply_ts
          | None, None -> admit_ts
        in
        e2e_samples := (t1 - t0) :: !e2e_samples;
        (let samples_r, stall_r =
           match Hashtbl.find_opt views r.rview with
           | Some v -> v
           | None ->
             let v = (ref [], ref 0) in
             Hashtbl.add views r.rview v;
             v
         in
         samples_r := (t1 - t0) :: !samples_r;
         stall_r := max !stall_r (admit_ts - commit_ts));
        (* sched_wait window for the blocked-on overlap, only when the
           commit/admit pair lives on one replica's timeline *)
        (match (r.commit_local, r.admit_local) with
        | Some c, Some a when a > c -> (
          match Hashtbl.find_opt windows_per_node r.proposer with
          | Some w -> w := (c, a) :: !w
          | None -> Hashtbl.add windows_per_node r.proposer (ref [ (c, a) ]))
        | _ -> ())
      | _ -> () (* incomplete: counted via coverage *))
    calls;
  (* ---------------- aggregation ---------------- *)
  let committed_calls =
    List.filter (fun r -> r.commit_any <> None) calls |> List.length
  in
  let bubbles =
    List.length
      (List.filter (fun r -> r.kind = "bubble" && r.commit_any <> None) all)
  in
  let unattributed =
    List.length
      (List.filter (fun r -> r.proposals = 0 && r.commit_any <> None) all)
  in
  let denominator = committed_calls + unattributed in
  let stages =
    List.map
      (fun stage ->
        let s =
          match Hashtbl.find_opt samples stage with
          | Some r -> Metrics.summarize !r
          | None -> Metrics.summarize []
        in
        { stage; summary = s })
      stage_order
  in
  let per_view =
    Hashtbl.fold (fun view (s, stall) acc -> (view, !s, !stall) :: acc) views []
    |> List.sort compare
    |> List.map (fun (view, s, max_stall) ->
           let sm = Metrics.summarize s in
           {
             view;
             requests = sm.Metrics.count;
             e2e_p50 = sm.Metrics.p50;
             e2e_p99 = sm.Metrics.p99;
             max_stall;
           })
  in
  let blocked_on =
    let merged_windows =
      Hashtbl.fold
        (fun node w acc -> (node, merge_intervals !w) :: acc)
        windows_per_node []
    in
    Hashtbl.fold
      (fun (node, label) ivs acc ->
        match List.assoc_opt node merged_windows with
        | None -> acc
        | Some windows ->
          let hits = ref 0 and total = ref 0 in
          List.iter
            (fun iv ->
              let o = overlap_with windows iv in
              if o > 0 then begin
                incr hits;
                total := !total + o
              end)
            !ivs;
          if !hits > 0 then (label, !hits, !total) :: acc else acc)
      blocking []
    (* the same label may block on several nodes: fold *)
    |> List.fold_left
         (fun acc (label, hits, ns) ->
           match List.assoc_opt label acc with
           | Some (h, n) -> (label, (h + hits, n + ns)) :: List.remove_assoc label acc
           | None -> (label, (hits, ns)) :: acc)
         []
    |> List.map (fun (label, (hits, blocked_ns)) -> { label; hits; blocked_ns })
    |> List.sort (fun a b ->
           compare (b.blocked_ns, a.label) (a.blocked_ns, b.label))
  in
  {
    committed = denominator;
    complete = !complete;
    coverage =
      (if denominator = 0 then 1.0
       else float_of_int !complete /. float_of_int denominator);
    bubbles;
    unattributed;
    stages;
    e2e = Metrics.summarize !e2e_samples;
    per_view;
    blocked_on;
    errors = List.rev !errors;
  }

(* ------------------------------------------------------------------ *)

let us ns = Printf.sprintf "%.1f" (float_of_int ns /. 1_000.)

let render r =
  let b = Buffer.create 2048 in
  Printf.bprintf b
    "span coverage: %d/%d committed requests fully decomposed (%.1f%%)\n"
    r.complete r.committed (100. *. r.coverage);
  Printf.bprintf b "committed bubbles: %d   unattributed commits: %d\n\n"
    r.bubbles r.unattributed;
  Buffer.add_string b
    (Table.render ~title:"critical path (us)"
       ~header:[ "stage"; "count"; "p50"; "p90"; "p99"; "max"; "total_ms" ]
       (List.map
          (fun { stage; summary = s } ->
            [ stage; string_of_int s.Metrics.count; us s.Metrics.p50;
              us s.Metrics.p90; us s.Metrics.p99; us s.Metrics.max;
              Printf.sprintf "%.2f" (float_of_int s.Metrics.total /. 1e6) ])
          r.stages
       @ [ [ "end_to_end"; string_of_int r.e2e.Metrics.count;
             us r.e2e.Metrics.p50; us r.e2e.Metrics.p90; us r.e2e.Metrics.p99;
             us r.e2e.Metrics.max;
             Printf.sprintf "%.2f" (float_of_int r.e2e.Metrics.total /. 1e6) ] ]));
  Buffer.add_char b '\n';
  if r.per_view <> [] then begin
    Buffer.add_string b
      (Table.render ~title:"per view"
         ~header:[ "view"; "requests"; "e2e_p50_us"; "e2e_p99_us"; "max_stall_us" ]
         (List.map
            (fun v ->
              [ string_of_int v.view; string_of_int v.requests; us v.e2e_p50;
                us v.e2e_p99; us v.max_stall ])
            r.per_view));
    Buffer.add_char b '\n'
  end;
  if r.blocked_on <> [] then begin
    Buffer.add_string b
      (Table.render ~title:"scheduler wait blocked on"
         ~header:[ "object"; "hits"; "blocked_us" ]
         (List.map
            (fun { label; hits; blocked_ns } ->
              [ label; string_of_int hits; us blocked_ns ])
            r.blocked_on));
    Buffer.add_char b '\n'
  end;
  if r.errors <> [] then begin
    Buffer.add_string b "MALFORMED SPAN DAGS:\n";
    List.iter (fun e -> Printf.bprintf b "  - %s\n" e) r.errors
  end;
  Buffer.contents b
