(** Aggregation over trace events: monotonic counters and virtual-time
    histograms with percentile summaries (the number-crunching side of
    the flight recorder).

    Histograms are fed by span pairs: a [Begin]/[End] pair of the same
    (node, tid, cat, name) or an [Async_begin]/[Async_end] pair of the
    same (cat, name, id) contributes one duration sample under
    ["cat.name"] (per-replica attribution can be kept with [per_node]).
    [Instant] events increment the counter ["cat.name"]; [Counter]
    events record a gauge's latest value.

    Attach to a live recorder with {!attach} (streaming, constant
    memory pressure on the trace) or fold a retained trace afterwards
    with {!of_trace}. *)

module Stats = Crane_report.Stats

type summary = {
  count : int;
  total : int;  (** summed virtual ns *)
  mean : float;
  p50 : int;
  p90 : int;
  p99 : int;
  max : int;
}

type t = {
  per_node : bool;  (** prefix histogram/counter keys with "node/" *)
  counts : (string, int ref) Hashtbl.t;
  gauges : (string, int) Hashtbl.t;
  samples : (string, int list ref) Hashtbl.t;  (** newest first *)
  open_spans : (string * int * string * string, int list ref) Hashtbl.t;
      (** (node, tid, cat, name) -> begin-ts stack *)
  open_async : (string * string * int, int) Hashtbl.t;
      (** (cat, name, id) -> begin ts *)
}

let create ?(per_node = false) () =
  {
    per_node;
    counts = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    samples = Hashtbl.create 64;
    open_spans = Hashtbl.create 64;
    open_async = Hashtbl.create 64;
  }

let incr t ?(by = 1) name =
  match Hashtbl.find_opt t.counts name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add t.counts name (ref by)

let observe t name v =
  match Hashtbl.find_opt t.samples name with
  | Some r -> r := v :: !r
  | None -> Hashtbl.add t.samples name (ref [ v ])

let set_gauge t name v = Hashtbl.replace t.gauges name v

(* ------------------------------------------------------------------ *)

let key t ~node ~cat ~name =
  let base = cat ^ "." ^ name in
  if t.per_node && node <> "" then node ^ "/" ^ base else base

let ingest t tr (ev : Trace.ev) =
  let node = Trace.resolve_node tr ev in
  match ev.Trace.ph with
  | Trace.Instant -> incr t (key t ~node ~cat:ev.Trace.cat ~name:ev.Trace.name)
  | Trace.Counter v -> set_gauge t (key t ~node ~cat:"" ~name:ev.Trace.name) v
  | Trace.Begin ->
    let k = (node, ev.Trace.tid, ev.Trace.cat, ev.Trace.name) in
    (match Hashtbl.find_opt t.open_spans k with
    | Some stack -> stack := ev.Trace.ts :: !stack
    | None -> Hashtbl.add t.open_spans k (ref [ ev.Trace.ts ]))
  | Trace.End -> (
    let k = (node, ev.Trace.tid, ev.Trace.cat, ev.Trace.name) in
    match Hashtbl.find_opt t.open_spans k with
    | Some ({ contents = t0 :: rest } as stack) ->
      stack := rest;
      observe t (key t ~node ~cat:ev.Trace.cat ~name:ev.Trace.name) (ev.Trace.ts - t0)
    | Some _ | None -> () (* unmatched End: dropped Begin or truncated trace *))
  | Trace.Async_begin id ->
    Hashtbl.replace t.open_async (ev.Trace.cat, ev.Trace.name, id) ev.Trace.ts
  | Trace.Async_end id -> (
    let k = (ev.Trace.cat, ev.Trace.name, id) in
    match Hashtbl.find_opt t.open_async k with
    | Some t0 ->
      Hashtbl.remove t.open_async k;
      observe t (key t ~node ~cat:ev.Trace.cat ~name:ev.Trace.name) (ev.Trace.ts - t0)
    | None -> ())

let attach t tr = Trace.add_sink tr (fun ev -> ingest t tr ev)

let of_trace ?per_node tr =
  let t = create ?per_node () in
  List.iter (ingest t tr) (Trace.events tr);
  t

(* ------------------------------------------------------------------ *)

let counter_value t name =
  match Hashtbl.find_opt t.counts name with Some r -> !r | None -> 0

let gauge_value t name = Hashtbl.find_opt t.gauges name

(* Degenerate series are answered directly instead of trusting the
   percentile machinery with them: an empty series is all zeros (callers
   that care use {!summary}, which returns [None]), a singleton is the
   sample at every percentile. *)
let summarize samples =
  match samples with
  | [] -> { count = 0; total = 0; mean = 0.0; p50 = 0; p90 = 0; p99 = 0; max = 0 }
  | [ v ] -> { count = 1; total = v; mean = float_of_int v; p50 = v; p90 = v; p99 = v; max = v }
  | _ -> (
    let count = List.length samples in
    let total = List.fold_left ( + ) 0 samples in
    match Stats.percentiles [ 0.5; 0.9; 0.99; 1.0 ] samples with
    | [ p50; p90; p99; max ] ->
      { count; total; mean = Stats.mean samples; p50; p90; p99; max }
    | _ -> { count; total; mean = 0.0; p50 = 0; p90 = 0; p99 = 0; max = 0 })

let summary t name =
  match Hashtbl.find_opt t.samples name with
  | Some { contents = [] } | None -> None
  | Some r -> Some (summarize !r)

let total t name = match summary t name with Some s -> s.total | None -> 0

let sorted_bindings tbl value =
  Hashtbl.fold (fun k v acc -> (k, value v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters t = sorted_bindings t.counts (fun r -> !r)
let gauges t = sorted_bindings t.gauges (fun v -> v)
let summaries t = sorted_bindings t.samples (fun r -> summarize !r)

(* ------------------------------------------------------------------ *)
(* Cluster-wide aggregation: fold per-replica aggregations into one, so
   percentiles can be computed over the union of each replica's samples
   instead of eyeballing three separate tables. *)

let merge ~into src =
  Hashtbl.iter (fun k r -> incr into ~by:!r k) src.counts;
  Hashtbl.iter
    (fun k v ->
      (* Gauges are last-sampled values: cluster-wide, sum them (an
         "admitted" gauge of 40 per replica means 120 admissions). *)
      set_gauge into k (v + Option.value (Hashtbl.find_opt into.gauges k) ~default:0))
    src.gauges;
  Hashtbl.iter
    (fun k r ->
      match Hashtbl.find_opt into.samples k with
      | Some dst -> dst := !r @ !dst
      | None -> Hashtbl.add into.samples k (ref !r))
    src.samples

let merged ts =
  let t = create () in
  List.iter (fun src -> merge ~into:t src) ts;
  t
