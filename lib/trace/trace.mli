(** Deterministic flight recorder for the simulated cluster (virtual-time
    tracing).

    Events carry virtual-nanosecond timestamps, the engine thread id and
    a replica attribution; the engine's determinism makes the exported
    trace byte-identical across runs with the same seed.  Disabled sinks
    cost one branch per instrumentation site. *)

type arg = Int of int | Str of string

type phase =
  | Instant
  | Begin
  | End
  | Async_begin of int
  | Async_end of int
  | Counter of int

type ev = {
  ts : int;  (** virtual nanoseconds *)
  tid : int;
  group : int;  (** engine thread group, -1 if none *)
  node : string;  (** replica name, "" when only the group is known *)
  cat : string;
  name : string;
  ph : phase;
  args : (string * arg) list;
}

type t

val create : ?retain:bool -> ?limit:int -> unit -> t
(** A fresh, enabled recorder.  [retain] (default true) keeps events in
    memory for export; pass [false] for streaming-only aggregation via
    {!add_sink}.  [limit] caps retained events (overflow is counted in
    {!dropped}, never raised). *)

val null : t
(** The shared permanently-disabled sink: the default recorder of every
    engine.  {!set_enabled} is a no-op on it. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val register_group : t -> group:int -> node:string -> unit
(** Attribute an engine thread group to a replica, so engine-level events
    (which only know their group) export under that replica's process. *)

val add_sink : t -> (ev -> unit) -> unit
(** Attach a streaming consumer called on every emitted event (e.g.
    {!Metrics.attach}). *)

val emit : t -> ev -> unit

val instant :
  t -> ts:int -> tid:int -> ?group:int -> ?node:string -> cat:string ->
  name:string -> (string * arg) list -> unit

val span_begin :
  t -> ts:int -> tid:int -> ?group:int -> ?node:string -> cat:string ->
  name:string -> (string * arg) list -> unit
(** Open a duration span; matched with {!span_end} of the same
    (node, tid, cat, name). *)

val span_end :
  t -> ts:int -> tid:int -> ?group:int -> ?node:string -> cat:string ->
  name:string -> (string * arg) list -> unit

val async_begin :
  t -> ts:int -> tid:int -> id:int -> ?group:int -> ?node:string ->
  cat:string -> name:string -> (string * arg) list -> unit
(** Open a cross-thread span matched by (cat, name, id) — e.g. a PAXOS
    decision from proposal to commit. *)

val async_end :
  t -> ts:int -> tid:int -> id:int -> ?group:int -> ?node:string ->
  cat:string -> name:string -> (string * arg) list -> unit

val counter :
  t -> ts:int -> tid:int -> ?group:int -> ?node:string -> name:string ->
  int -> unit
(** Record a sampled gauge value (chrome "C" phase). *)

val member :
  t -> ts:int -> tid:int -> ?group:int -> ?node:string -> name:string ->
  (string * arg) list -> unit
(** Membership lifecycle instant ([join] / [leave] / [fence] /
    [reconfig_propose]) under the "member" category: one configuration
    history track per replica. *)

val events : t -> ev list
(** Retained events, oldest first. *)

val find_int : ev -> string -> int option
(** [find_int ev key] is the [Int] argument named [key], if any. *)

val find_str : ev -> string -> string option
(** [find_str ev key] is the [Str] argument named [key], if any. *)

val length : t -> int
val dropped : t -> int

val resolve_node : t -> ev -> string
(** The replica name of an event: explicit [node], else the registered
    name of its group, else "". *)

val to_chrome : t -> string
(** Chrome [trace_event] JSON (chrome://tracing, Perfetto), timestamps in
    virtual microseconds.  Deterministic: same events, same bytes. *)

val to_jsonl : t -> string
(** One JSON object per event per line, timestamps in virtual
    nanoseconds.  Deterministic. *)
