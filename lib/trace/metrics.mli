(** Counters and virtual-time histograms aggregated from trace events. *)

type summary = {
  count : int;
  total : int;  (** summed virtual ns across samples *)
  mean : float;
  p50 : int;
  p90 : int;
  p99 : int;
  max : int;
}

type t

val create : ?per_node:bool -> unit -> t
(** [per_node] prefixes every key with "node/" so histograms and
    counters stay attributable to one replica. *)

val attach : t -> Trace.t -> unit
(** Stream events from a live recorder into this aggregation (works with
    a non-retaining trace: constant memory). *)

val of_trace : ?per_node:bool -> Trace.t -> t
(** Fold a retained trace into a fresh aggregation. *)

val incr : t -> ?by:int -> string -> unit
val observe : t -> string -> int -> unit
(** Direct-use API (no trace required). *)

val counter_value : t -> string -> int
(** Occurrences of instants named "cat.name" (0 if never seen). *)

val gauge_value : t -> string -> int option
(** Latest sampled value of a [Counter]-phase gauge. *)

val summary : t -> string -> summary option
(** Percentile summary of the histogram "cat.name" (spans pair
    Begin/End per thread, Async_begin/Async_end per id). *)

val total : t -> string -> int
(** Summed duration of a histogram's samples, 0 if absent. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val gauges : t -> (string * int) list
val summaries : t -> (string * summary) list

val summarize : int list -> summary
(** Percentile summary of a raw sample list.  Total by construction:
    an empty list yields the all-zero summary (it never raises) and a
    singleton yields the sample at every percentile. *)

val merge : into:t -> t -> unit
(** Fold [src] into [into]: counters add, gauges sum (a last-value gauge
    per replica becomes a cluster total), histogram samples concatenate —
    so percentiles of the merged aggregation cover the union of the
    per-replica series. *)

val merged : t list -> t
(** A fresh aggregation holding the merge of all inputs. *)
