(** The flight recorder: a deterministic event sink for the simulated
    cluster.

    Every event carries a virtual timestamp (nanoseconds — the engine's
    [Time.t]), the engine thread id, and a replica attribution (either an
    explicit node name or a thread group resolved through
    {!register_group}).  Because the whole stack runs in virtual time on
    a deterministic engine, the same seed produces a byte-identical
    trace: the exported JSON doubles as a regression oracle.

    The sink is designed to be (near) zero cost when disabled: the
    instrumented hot paths check {!enabled} before building any event
    payload, and the shared {!null} sink is permanently disabled. *)

type arg = Int of int | Str of string

type phase =
  | Instant
  | Begin  (** span open — matched with [End] per (node, tid, cat, name) *)
  | End
  | Async_begin of int  (** cross-thread span, matched by (cat, name, id) *)
  | Async_end of int
  | Counter of int  (** sampled gauge value *)

type ev = {
  ts : int;  (** virtual nanoseconds *)
  tid : int;  (** engine thread id, -1 outside any thread *)
  group : int;  (** engine thread group, -1 if none *)
  node : string;  (** replica name, "" when only the group is known *)
  cat : string;
  name : string;
  ph : phase;
  args : (string * arg) list;
}

type t = {
  mutable enabled : bool;
  retain : bool;  (** keep events for export (off for streaming-only) *)
  limit : int;
  mutable evs : ev list;  (** newest first *)
  mutable n : int;
  mutable dropped : int;
  mutable sinks : (ev -> unit) list;
  groups : (int, string) Hashtbl.t;  (** thread group -> replica name *)
}

let create ?(retain = true) ?(limit = 5_000_000) () =
  {
    enabled = true;
    retain;
    limit;
    evs = [];
    n = 0;
    dropped = 0;
    sinks = [];
    groups = Hashtbl.create 8;
  }

(* The shared disabled sink: the default recorder of every engine. *)
let null =
  let t = create ~retain:false () in
  t.enabled <- false;
  t

let enabled t = t.enabled
let set_enabled t on = if t != null then t.enabled <- on
let length t = t.n
let dropped t = t.dropped
let add_sink t f = t.sinks <- t.sinks @ [ f ]

let register_group t ~group ~node =
  if t.enabled then Hashtbl.replace t.groups group node

let resolve_node t ev =
  if ev.node <> "" then ev.node
  else
    match Hashtbl.find_opt t.groups ev.group with Some n -> n | None -> ""

let emit t ev =
  if t.enabled then begin
    List.iter (fun f -> f ev) t.sinks;
    if t.retain then
      if t.n < t.limit then begin
        t.evs <- ev :: t.evs;
        t.n <- t.n + 1
      end
      else t.dropped <- t.dropped + 1
  end

let events t = List.rev t.evs

let find_int ev key =
  match List.assoc_opt key ev.args with
  | Some (Int i) -> Some i
  | Some (Str _) | None -> None

let find_str ev key =
  match List.assoc_opt key ev.args with
  | Some (Str s) -> Some s
  | Some (Int _) | None -> None

let mk ~ts ~tid ?(group = -1) ?(node = "") ~cat ~name ~ph args =
  { ts; tid; group; node; cat; name; ph; args }

let instant t ~ts ~tid ?group ?node ~cat ~name args =
  emit t (mk ~ts ~tid ?group ?node ~cat ~name ~ph:Instant args)

let span_begin t ~ts ~tid ?group ?node ~cat ~name args =
  emit t (mk ~ts ~tid ?group ?node ~cat ~name ~ph:Begin args)

let span_end t ~ts ~tid ?group ?node ~cat ~name args =
  emit t (mk ~ts ~tid ?group ?node ~cat ~name ~ph:End args)

let async_begin t ~ts ~tid ~id ?group ?node ~cat ~name args =
  emit t (mk ~ts ~tid ?group ?node ~cat ~name ~ph:(Async_begin id) args)

let async_end t ~ts ~tid ~id ?group ?node ~cat ~name args =
  emit t (mk ~ts ~tid ?group ?node ~cat ~name ~ph:(Async_end id) args)

let counter t ~ts ~tid ?group ?node ~name value =
  emit t (mk ~ts ~tid ?group ?node ~cat:"counter" ~name ~ph:(Counter value) [])

(* Membership lifecycle: join / leave / fence / reconfig_propose instants
   under one category, so a timeline shows each replica's configuration
   history as a single track. *)
let member t ~ts ~tid ?group ?node ~name args =
  emit t (mk ~ts ~tid ?group ?node ~cat:"member" ~name ~ph:Instant args)

(* ------------------------------------------------------------------ *)
(* Exporters.  All output is produced with integer arithmetic and
   insertion-ordered iteration so that equal event sequences render to
   byte-identical text. *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Virtual microseconds with nanosecond precision, as chrome://tracing
   expects.  Integer math keeps the rendering deterministic. *)
let us_of_ns ns = Printf.sprintf "%d.%03d" (ns / 1000) (abs ns mod 1000)

let args_json args =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) ->
           Printf.sprintf "\"%s\":%s" (escape k)
             (match v with Int i -> string_of_int i | Str s -> "\"" ^ escape s ^ "\""))
         args)
  ^ "}"

(* Stable pid numbering: pid 0 is the unattributed simulator substrate,
   replicas are numbered in order of first appearance in the event
   stream. *)
let pid_table t evs =
  let order = ref [] and pids = Hashtbl.create 8 and next = ref 1 in
  List.iter
    (fun ev ->
      let node = resolve_node t ev in
      if node <> "" && not (Hashtbl.mem pids node) then begin
        Hashtbl.add pids node !next;
        order := node :: !order;
        incr next
      end)
    evs;
  (List.rev !order, fun ev -> match resolve_node t ev with
    | "" -> 0
    | node -> Hashtbl.find pids node)

let chrome_record ~pid ev =
  let common =
    Printf.sprintf "\"cat\":\"%s\",\"ts\":%s,\"pid\":%d,\"tid\":%d" (escape ev.cat)
      (us_of_ns ev.ts) pid ev.tid
  in
  let name = escape ev.name in
  match ev.ph with
  | Instant ->
    Printf.sprintf "{\"name\":\"%s\",%s,\"ph\":\"i\",\"s\":\"t\",\"args\":%s}" name common
      (args_json ev.args)
  | Begin ->
    Printf.sprintf "{\"name\":\"%s\",%s,\"ph\":\"B\",\"args\":%s}" name common
      (args_json ev.args)
  | End -> Printf.sprintf "{\"name\":\"%s\",%s,\"ph\":\"E\"}" name common
  | Async_begin id ->
    Printf.sprintf "{\"name\":\"%s\",%s,\"ph\":\"b\",\"id\":%d,\"args\":%s}" name common id
      (args_json ev.args)
  | Async_end id ->
    Printf.sprintf "{\"name\":\"%s\",%s,\"ph\":\"e\",\"id\":%d}" name common id
  | Counter v ->
    Printf.sprintf "{\"name\":\"%s\",%s,\"ph\":\"C\",\"args\":{\"%s\":%d}}" name common name v

(** Chrome [trace_event] JSON (load in chrome://tracing or Perfetto). *)
let to_chrome t =
  let evs = events t in
  let nodes, pid_of = pid_table t evs in
  let b = Buffer.create 65536 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  Buffer.add_string b
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"sim\"}}";
  List.iteri
    (fun i node ->
      Buffer.add_string b
        (Printf.sprintf
           ",\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"%s\"}}"
           (i + 1) (escape node)))
    nodes;
  List.iter
    (fun ev ->
      Buffer.add_string b ",\n";
      Buffer.add_string b (chrome_record ~pid:(pid_of ev) ev))
    evs;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let ph_string = function
  | Instant -> "i"
  | Begin -> "B"
  | End -> "E"
  | Async_begin _ -> "b"
  | Async_end _ -> "e"
  | Counter _ -> "C"

(** One JSON object per line: the stream-processing-friendly format. *)
let to_jsonl t =
  let b = Buffer.create 65536 in
  List.iter
    (fun ev ->
      let extra =
        match ev.ph with
        | Async_begin id | Async_end id -> Printf.sprintf ",\"id\":%d" id
        | Counter v -> Printf.sprintf ",\"value\":%d" v
        | Instant | Begin | End -> ""
      in
      Buffer.add_string b
        (Printf.sprintf
           "{\"ts\":%d,\"node\":\"%s\",\"tid\":%d,\"cat\":\"%s\",\"name\":\"%s\",\"ph\":\"%s\"%s,\"args\":%s}\n"
           ev.ts
           (escape (resolve_node t ev))
           ev.tid (escape ev.cat) (escape ev.name) (ph_string ev.ph) extra
           (args_json ev.args)))
    (events t);
  Buffer.contents b
