(** Commit critical-path analysis: decompose every committed request's
    end-to-end latency into named stages by walking its span DAG in a
    retained trace.

    The stage taxonomy (virtual ns, telescoping to end-to-end):

    + [client_queue] — request bytes arrived at the replica until the
      proxy turned them into a proposal-eligible event;
    + [batch_wait] — time in the proxy batch buffer before flush;
    + [fsync] — proposal to WAL-durable on the proposer (clamped at
      commit: a remote quorum can outrun the local flash device);
    + [consensus] — proposal to quorum commit, net of the local fsync;
    + [sched_wait] — commit to DMT admission (the serialization tax);
    + [execute] — admission to the server's reply;
    + [reply] — reply sent to the client transport receiving it. *)

type stage_row = { stage : string; summary : Metrics.summary }

type view_row = {
  view : int;
  requests : int;
  e2e_p50 : int;
  e2e_p99 : int;
  max_stall : int;  (** worst sched_wait in the view, in ns *)
}

type blocked_row = {
  label : string;  (** "gate.block", "dmt.turn_wait", "cond:<name>" *)
  hits : int;
  blocked_ns : int;
}

type report = {
  committed : int;  (** committed client-call indices (bubbles excluded) *)
  complete : int;  (** spans with the full propose->commit->admit chain *)
  coverage : float;  (** [complete /. committed]; 1.0 on an empty trace *)
  bubbles : int;
  unattributed : int;  (** commits carrying no [req.proposed] record *)
  stages : stage_row list;  (** fixed order, zero-count stages included *)
  e2e : Metrics.summary;
  per_view : view_row list;
  blocked_on : blocked_row list;
  errors : string list;  (** malformed span DAGs; empty on a healthy trace *)
}

val stage_order : string list
(** The seven stage names, in pipeline order. *)

val analyze : Trace.t -> report
(** Walk a retained trace's request spans.  Deterministic: the same
    trace yields the same report (including row order). *)

val render : report -> string
(** Human-readable tables: stage percentiles, per-view breakdown,
    blocked-on attribution, and any span-DAG errors. *)
