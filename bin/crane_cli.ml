(* Command-line front end: run any server under any deployment and
   report latency statistics, or exercise the failure scenarios.

     dune exec bin/crane_cli.exe -- run --server apache --mode crane
     dune exec bin/crane_cli.exe -- run --server mysql --mode native -n 200
     dune exec bin/crane_cli.exe -- failover --server mongoose
     dune exec bin/crane_cli.exe -- servers *)

module Time = Crane_sim.Time
module Engine = Crane_sim.Engine
module Rng = Crane_sim.Rng
module Instance = Crane_core.Instance
module Cluster = Crane_core.Cluster
module Standalone = Crane_core.Standalone
module Output_log = Crane_core.Output_log
module Paxos = Crane_paxos.Paxos
module Sock = Crane_socket.Sock
module Target = Crane_workload.Target
module Clients = Crane_workload.Clients
module Loadgen = Crane_workload.Loadgen
module Stats = Crane_report.Stats
module Table = Crane_report.Table
module Trace = Crane_trace.Trace
module Metrics = Crane_trace.Metrics
open Cmdliner

type server_choice = Apache | Mongoose | Clamav | Mediatomb | Mysql

let all_servers =
  [ ("apache", Apache); ("mongoose", Mongoose); ("clamav", Clamav);
    ("mediatomb", Mediatomb); ("mysql", Mysql) ]

let server_of = function
  | Apache -> (Crane_apps.Apache.server ~cfg:{ Crane_apps.Apache.default_config with hints = true } (), 80)
  | Mongoose -> (Crane_apps.Mongoose.server ~cfg:{ Crane_apps.Mongoose.default_config with hints = true } (), 80)
  | Clamav -> (Crane_apps.Clamav.server (), 3310)
  | Mediatomb -> (Crane_apps.Mediatomb.server (), 49152)
  | Mysql -> (Crane_apps.Mysql.server (), 3306)

let request_of choice rng =
  match choice with
  | Apache | Mongoose -> fun t ~from -> Clients.apachebench t ~from
  | Clamav -> fun t ~from -> Clients.clamdscan ~dirs:8 t ~from
  | Mediatomb -> fun t ~from -> Clients.mediabench t ~from
  | Mysql -> fun t ~from -> Clients.sysbench ~rng ~ntables:16 ~rows:2000 t ~from

type mode_choice = Native | Parrot | PaxosOnly | Crane | PlanII

let all_modes =
  [ ("native", Native); ("parrot", Parrot); ("paxos-only", PaxosOnly);
    ("crane", Crane); ("plan2", PlanII) ]

let fast_paxos =
  { Paxos.default_config with
    Paxos.heartbeat_period = Time.ms 200; election_timeout = Time.ms 600;
    election_jitter = Time.ms 100; round_retry = Time.ms 200 }

let imode_of = function
  | PaxosOnly -> Instance.Paxos_only
  | PlanII -> Instance.No_bubbling
  | Native | Parrot | Crane -> Instance.Full

let report name (r : Loadgen.result) =
  Printf.printf "%s: %d ok, %d errors\n" name (List.length r.Loadgen.latencies)
    r.Loadgen.errors;
  if r.Loadgen.latencies <> [] then
    Printf.printf
      "  latency: median %s  mean %.2fms  p90 %s  p99 %s  (virtual wall %s)\n"
      (Time.to_string (Stats.median r.Loadgen.latencies))
      (Stats.mean r.Loadgen.latencies /. 1e6)
      (Time.to_string (Stats.percentile 0.9 r.Loadgen.latencies))
      (Time.to_string (Stats.percentile 0.99 r.Loadgen.latencies))
      (Time.to_string r.Loadgen.wall)

let run_cmd choice mode clients requests seed =
  let server, port = server_of choice in
  let rng = Rng.create (seed + 1) in
  let request = request_of choice rng in
  (match mode with
  | Native | Parrot ->
    let m = if mode = Native then Standalone.Native else Standalone.Parrot in
    let sa = Standalone.boot ~seed ~mode:m ~server () in
    let target = Target.standalone sa ~port in
    let handle = Loadgen.run ~clients ~requests ~request target in
    Loadgen.drive ~timeout:(Time.sec 3600) target handle;
    Standalone.check_failures sa;
    report "un-replicated" (handle.Loadgen.collect ())
  | PaxosOnly | Crane | PlanII ->
    let imode = imode_of mode in
    let cfg =
      { Instance.default_config with mode = imode; service_port = port; paxos = fast_paxos }
    in
    let cluster = Cluster.create ~seed ~cfg ~server () in
    Cluster.start cluster;
    let target = Target.cluster cluster ~port in
    let handle = Loadgen.run ~clients ~requests ~request target in
    Loadgen.drive ~timeout:(Time.sec 3600) target handle;
    Cluster.check_failures cluster;
    report "3-replica cluster" (handle.Loadgen.collect ());
    match Cluster.outputs cluster with
    | (_, o1) :: rest ->
      let same = List.for_all (fun (_, o) -> Output_log.equal o1 o) rest in
      Printf.printf "  replica outputs identical: %b\n" same
    | [] -> ());
  0

let failover_cmd choice seed =
  let server, port = server_of choice in
  let rng = Rng.create (seed + 1) in
  let request = request_of choice rng in
  let cfg =
    { Instance.default_config with service_port = port; checkpoint_period = Time.sec 2 }
  in
  let cluster = Cluster.create ~seed ~cfg ~server () in
  Cluster.start ~checkpoints:true cluster;
  let eng = Cluster.engine cluster in
  let target = Target.cluster cluster ~port in
  let handle = Loadgen.run ~think:(Time.ms 50) ~clients:4 ~requests:400 ~request target in
  Engine.at eng (Time.sec 5) (fun () ->
      Printf.printf "[5s] killing primary\n";
      Cluster.kill cluster "replica1");
  Engine.at eng (Time.sec 12) (fun () ->
      Printf.printf "[12s] restarting replica1 from checkpoint\n";
      ignore (Cluster.restart cluster "replica1"));
  Loadgen.drive ~timeout:(Time.sec 600) target handle;
  Cluster.run ~until:(Engine.now eng + Time.sec 10) cluster;
  Cluster.check_failures cluster;
  report "failover run" (handle.Loadgen.collect ());
  (match Cluster.primary cluster with
  | Some (n, p) ->
    Printf.printf "primary now: %s (view %d)%s\n" n (Paxos.view p.Instance.paxos)
      (match (Paxos.stats p.Instance.paxos).Paxos.last_election_duration with
      | Some d -> Printf.sprintf ", election took %s" (Time.to_string d)
      | None -> "")
  | None -> print_endline "no primary!");
  0

(* Run a workload with the flight recorder attached, export the trace
   (chrome://tracing JSON or JSONL) and print the aggregated metrics.
   Deterministic: the same seed yields a byte-identical trace file. *)
let trace_cmd choice mode clients requests seed format out =
  let server, port = server_of choice in
  let rng = Rng.create (seed + 1) in
  let request = request_of choice rng in
  let tr = Trace.create () in
  let run_workload target =
    let handle = Loadgen.run ~clients ~requests ~request target in
    Loadgen.drive ~timeout:(Time.sec 3600) target handle;
    handle.Loadgen.collect ()
  in
  let result =
    match mode with
    | Native | Parrot ->
      let m = if mode = Native then Standalone.Native else Standalone.Parrot in
      let sa = Standalone.boot ~seed ~mode:m ~trace:tr ~server () in
      let r = run_workload (Target.standalone sa ~port) in
      Standalone.check_failures sa;
      r
    | PaxosOnly | Crane | PlanII ->
      let cfg =
        { Instance.default_config with mode = imode_of mode; service_port = port;
          paxos = fast_paxos }
      in
      let cluster = Cluster.create ~seed ~cfg ~trace:tr ~server () in
      Cluster.start cluster;
      let r = run_workload (Target.cluster cluster ~port) in
      Cluster.check_failures cluster;
      r
  in
  report "traced run" result;
  let payload =
    match format with
    | `Chrome -> Trace.to_chrome tr
    | `Jsonl -> Trace.to_jsonl tr
  in
  (match open_out out with
  | oc ->
    output_string oc payload;
    close_out oc
  | exception Sys_error msg ->
    Printf.eprintf "crane: cannot write trace: %s\n" msg;
    exit 1);
  Printf.printf "trace: %d events (%d dropped beyond limit) -> %s\n"
    (Trace.length tr) (Trace.dropped tr) out;
  let met = Metrics.of_trace tr in
  Table.print ~title:"event counts" ~header:[ "event"; "count" ]
    (List.map (fun (n, v) -> [ n; string_of_int v ]) (Metrics.counters met));
  Table.print ~title:"virtual-time spans"
    ~header:[ "span"; "count"; "total"; "p50"; "p90"; "p99" ]
    (List.map
       (fun (n, s) ->
         [ n; string_of_int s.Metrics.count; Time.to_string s.Metrics.total;
           Time.to_string s.Metrics.p50; Time.to_string s.Metrics.p90;
           Time.to_string s.Metrics.p99 ])
       (Metrics.summaries met));
  0

(* Run the deterministic chaos suite (or one scenario): inject faults
   under load, check SMR invariants, print one report per scenario.
   Exits nonzero on any invariant violation.  The same seed + scenario
   always prints a byte-identical report. *)
let chaos_cmd scenario seed list =
  let module Chaos = Crane_chaos.Chaos in
  if list then begin
    print_endline "built-in chaos scenarios:";
    List.iter
      (fun s -> Printf.printf "  %-18s %s\n" s.Chaos.name s.Chaos.about)
      Chaos.scenarios;
    0
  end
  else
    let to_run =
      match scenario with
      | None -> Chaos.scenarios
      | Some name -> (
        match Chaos.find_scenario name with
        | Some s -> [ s ]
        | None ->
          Printf.eprintf "crane: unknown scenario %s\nvalid scenarios: %s\n" name
            (String.concat ", "
               (List.map (fun s -> s.Chaos.name) Chaos.scenarios));
          exit 2)
    in
    let reports =
      List.map
        (fun s ->
          let r = Chaos.run ~seed s in
          print_string (Chaos.render_report r);
          print_newline ();
          r)
        to_run
    in
    let failed = List.filter (fun r -> not (Chaos.passed r)) reports in
    Table.print ~title:"chaos suite summary" ~header:[ "scenario"; "verdict" ]
      (List.map
         (fun r ->
           [ r.Chaos.r_scenario; (if Chaos.passed r then "PASS" else "FAIL") ])
         reports);
    if failed = [] then begin
      Printf.printf "\nall %d scenarios passed (seed %d)\n" (List.length reports) seed;
      0
    end
    else begin
      Printf.printf "\n%d of %d scenarios FAILED (seed %d)\n" (List.length failed)
        (List.length reports) seed;
      1
    end

(* ---- bench: batched vs. unbatched commit throughput ---- *)

module Wal = Crane_storage.Wal

type bench_run = {
  b_commits : int;  (** consensus decisions on the primary *)
  b_wall : Time.t;
  b_sent : int;  (** socket-call events the clients injected *)
  b_wal_writes : int;  (** durable writes on the primary's WAL *)
  b_batches : int;
  b_mean_batch : float;
  b_hist : (int * int) list;  (** committed batch-size histogram (capped) *)
  b_max_batch : int;  (** true observed max, unclamped *)
}

let commits_per_sec r =
  if r.b_wall <= 0 then 0.0
  else float_of_int r.b_commits /. (Time.to_float_ms r.b_wall /. 1000.)

(* One measured configuration: a 3-replica Paxos_only cluster (the
   consensus pipeline without DMT overhead) under an open-loop streaming
   workload — [clients] connections each inject a small request event
   every 100 us for [duration], without waiting for responses.  That
   arrival rate (16 clients -> ~160k events/s) saturates the unbatched
   commit path, whose ceiling is one 15 us WAL fsync per event (~66k/s);
   commit throughput is the primary's decided index at the cutoff
   instant over the streaming window. *)
let bench_run choice ~batch_max ~clients ~duration ~seed =
  let server, port = server_of choice in
  let cfg =
    { Instance.default_config with mode = Instance.Paxos_only;
      service_port = port; paxos = fast_paxos; batch_max }
  in
  let cluster = Cluster.create ~seed ~cfg ~server () in
  Cluster.start ~checkpoints:false cluster;
  let eng = Cluster.engine cluster in
  let world = Cluster.world cluster in
  let start = Time.ms 10 in
  let spacing = Time.us 100 in
  let sent = ref 0 in
  for i = 1 to clients do
    Engine.spawn eng ~name:(Printf.sprintf "stream%d" i) (fun () ->
        (* Staggered starts de-synchronize the streams. *)
        Engine.sleep eng (start + Time.us (7 * i));
        match Sock.connect world ~from:(Printf.sprintf "c%d" i) ~node:"replica1" ~port with
        | exception _ -> ()
        | conn ->
          incr sent;
          (try
             while Engine.now eng < start + duration do
               Sock.send conn (Printf.sprintf "req-%d" i);
               incr sent;
               Engine.sleep eng spacing
             done
           with _ -> ()))
  done;
  Cluster.run ~until:(start + duration) cluster;
  Cluster.check_failures cluster;
  let commits, batches, mean_batch, hist, max_batch =
    match Cluster.primary cluster with
    | Some (_, inst) ->
      let s = Paxos.stats inst.Instance.paxos in
      let events, n =
        List.fold_left
          (fun (ev, n) (size, count) -> (ev + (size * count), n + count))
          (0, 0) s.Paxos.events_per_batch
      in
      ( Paxos.committed inst.Instance.paxos, s.Paxos.batches_committed,
        (if n = 0 then 0.0 else float_of_int events /. float_of_int n),
        s.Paxos.events_per_batch, s.Paxos.max_batch )
    | None -> (0, 0, 0.0, [], 0)
  in
  {
    b_commits = commits;
    b_wall = duration;
    b_sent = !sent;
    b_wal_writes = Wal.writes (Hashtbl.find cluster.Cluster.wals "replica1");
    b_batches = batches;
    b_mean_batch = mean_batch;
    b_hist = hist;
    b_max_batch = max_batch;
  }

(* Fixed-seed equivalence probe: a sequential client (no response-latency
   races, so event arrival order cannot depend on commit timing) against
   the same seed, batched and unbatched — the replica output logs must
   render byte-identically. *)
let bench_equivalence choice ~seed ~requests =
  let render batch_max =
    let server, port = server_of choice in
    let rng = Rng.create (seed + 1) in
    let request = request_of choice rng in
    let cfg =
      { Instance.default_config with mode = Instance.Paxos_only;
        service_port = port; paxos = fast_paxos; batch_max }
    in
    let cluster = Cluster.create ~seed ~cfg ~server () in
    Cluster.start ~checkpoints:false cluster;
    let target = Target.cluster cluster ~port in
    let handle = Loadgen.run ~clients:1 ~requests ~request target in
    Loadgen.drive ~timeout:(Time.sec 3600) target handle;
    Cluster.check_failures cluster;
    match Cluster.outputs cluster with
    | (_, o) :: _ -> Output_log.render o
    | [] -> ""
  in
  let a = render 1 and b = render 64 in
  a <> "" && String.equal a b

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let bench_run_json (r : bench_run) =
  Printf.sprintf
    "{\"commits\": %d, \"wall_ms\": %.3f, \"commits_per_sec\": %.0f, \
     \"events_sent\": %d, \"wal_writes\": %d, \"batches_committed\": %d, \
     \"mean_events_per_batch\": %.2f}"
    r.b_commits (Time.to_float_ms r.b_wall) (commits_per_sec r) r.b_sent
    r.b_wal_writes r.b_batches r.b_mean_batch

let bench_cmd quick seed out check servers =
  let chosen =
    match servers with
    | [] -> all_servers
    | names ->
      List.map
        (fun n ->
          match List.assoc_opt n all_servers with
          | Some c -> (n, c)
          | None ->
            Printf.eprintf "crane: unknown server %s\n" n;
            exit 2)
        names
  in
  let clients = 16 in
  let duration = if quick then Time.ms 200 else Time.sec 1 in
  let eq_requests = if quick then 12 else 32 in
  let results =
    List.map
      (fun (name, choice) ->
        Printf.printf "bench %s: unbatched..." name;
        flush stdout;
        let u = bench_run choice ~batch_max:1 ~clients ~duration ~seed in
        Printf.printf " batched...";
        flush stdout;
        let b = bench_run choice ~batch_max:64 ~clients ~duration ~seed in
        Printf.printf " equivalence...";
        flush stdout;
        let identical = bench_equivalence choice ~seed ~requests:eq_requests in
        let speedup =
          if commits_per_sec u > 0.0 then commits_per_sec b /. commits_per_sec u
          else 0.0
        in
        Printf.printf " %.2fx%s\n" speedup (if identical then "" else " (OUTPUTS DIVERGE)");
        (name, u, b, speedup, identical))
      chosen
  in
  Table.print ~title:"batching bench (16 clients, paxos-only cluster)"
    ~header:[ "server"; "unbatched c/s"; "batched c/s"; "speedup";
              "mean batch"; "fsyncs saved"; "identical" ]
    (List.map
       (fun (name, u, b, speedup, identical) ->
         [ name;
           Printf.sprintf "%.0f" (commits_per_sec u);
           Printf.sprintf "%.0f" (commits_per_sec b);
           Printf.sprintf "%.2fx" speedup;
           Printf.sprintf "%.1f" b.b_mean_batch;
           Printf.sprintf "%d" (u.b_wal_writes - b.b_wal_writes);
           string_of_bool identical ])
       results);
  (* The histogram clamps at the cap, so its top bucket is a fold over
     every larger size — label it "<cap>+" and report the true max. *)
  (match results with
  | (name, _, b, _, _) :: _ when b.b_hist <> [] ->
    Table.print
      ~title:
        (Printf.sprintf "committed batch sizes (%s, batched run; max observed %d)"
           name b.b_max_batch)
      ~header:[ "events/batch"; "batches" ]
      (Table.histogram_rows ~cap:Paxos.histogram_cap b.b_hist)
  | _ -> ());
  let json =
    Printf.sprintf
      "{\n  \"bench\": \"batching\",\n  \"seed\": %d,\n  \"mode\": \"paxos-only\",\n  \
       \"clients\": %d,\n  \"stream_ms\": %.0f,\n  \"results\": [\n%s\n  ]\n}\n"
      seed clients (Time.to_float_ms duration)
      (String.concat ",\n"
         (List.map
            (fun (name, u, b, speedup, identical) ->
              Printf.sprintf
                "    {\"server\": \"%s\", \"unbatched\": %s, \"batched\": %s, \
                 \"speedup\": %.2f, \"fixed_seed_outputs_identical\": %b}"
                (json_escape name) (bench_run_json u) (bench_run_json b) speedup
                identical)
            results))
  in
  (match open_out out with
  | oc ->
    output_string oc json;
    close_out oc;
    Printf.printf "wrote %s\n" out
  | exception Sys_error msg ->
    Printf.eprintf "crane: cannot write %s: %s\n" out msg;
    exit 1);
  let worst_speedup =
    List.fold_left (fun acc (_, _, _, s, _) -> min acc s) infinity results
  in
  let all_identical = List.for_all (fun (_, _, _, _, i) -> i) results in
  if check > 0.0 && (worst_speedup < check || not all_identical) then begin
    Printf.printf
      "FAIL: worst speedup %.2fx (required %.2fx), outputs identical: %b\n"
      worst_speedup check all_identical;
    1
  end
  else 0

(* ---- bench recovery: bounded logs and two-tier catch-up ---- *)

(* Measures what log compaction buys: a 3-node consensus group streams
   [history] decisions while one backup is down, then restarts it and
   times how long the straggler takes to re-join.  With compaction on,
   the group's resident log stays bounded (entries below the watermark
   are freed once a snapshot covers them) and the straggler recovers via
   snapshot transfer plus a short log suffix; with compaction off, the
   log grows with history and recovery replays everything.  The paxos
   layer is benched directly (no DMT) so the numbers isolate the
   consensus/storage path the fix targets. *)

module Fabric = Crane_net.Fabric

type recovery_run = {
  rr_history : int;
  rr_recovery : Time.t;  (** virtual time for the restarted replica to re-join *)
  rr_peak_log : int;  (** peak resident log entries across replicas *)
  rr_final_log : int;  (** resident log entries on the primary afterwards *)
  rr_wal_records : int;  (** resident WAL records on the primary *)
  rr_wal_dropped : int;  (** WAL records freed by truncation on the primary *)
  rr_compactions : int;
  rr_snapshots : int;  (** snapshot installs on the restarted replica *)
  rr_converged : bool;
}

type rnode = { rn_paxos : Paxos.t; rn_group : Engine.group; rn_state : string ref }

let recovery_members = [ "n1"; "n2"; "n3" ]

let recovery_run ~threshold ~history ~seed =
  let eng = Engine.create () in
  let fabric = Fabric.create eng (Rng.create seed) in
  let wals = Hashtbl.create 4 in
  let config =
    { Paxos.heartbeat_period = Time.ms 50; election_timeout = Time.ms 200;
      election_jitter = Time.ms 30; round_retry = Time.ms 50;
      compaction_threshold = threshold; catchup_chunk = 256 ;
    suspect_timeout = Paxos.default_config.suspect_timeout;
      lease_duration = Time.ms 100 }
  in
  let boot name =
    let wal =
      match Hashtbl.find_opt wals name with
      | Some w -> w
      | None ->
        let w = Wal.create eng ~name in
        Hashtbl.add wals name w;
        w
    in
    let group = Engine.new_group eng in
    let p =
      Paxos.create ~config ~fabric ~rng:(Rng.create (seed + Hashtbl.hash name)) ~wal
        ~members:recovery_members ~node:name ~group ()
    in
    (* The replicated state is a chain digest of the decision stream: tiny,
       but it distinguishes any two histories, so convergence checks are
       as strict as with a real server. *)
    let state = ref "" in
    Paxos.set_handlers p
      { Paxos.on_commit =
          (fun ~index:_ v -> state := Digest.to_hex (Digest.string (!state ^ v)));
        on_demote = (fun () -> ());
      on_config = (fun ~epoch:_ _ -> ());
      on_fence = (fun ~epoch:_ -> ()) };
    Paxos.set_compaction_hooks p
      { Paxos.install_snapshot =
          (fun ~index:_ blob -> state := (Marshal.from_string blob 0 : string));
        on_compact = (fun ~watermark:_ -> ()) };
    Paxos.start p ~as_primary:(name = "n1") ();
    Fabric.node_up fabric name;
    (* WAL recovery does not re-fire on_commit (a real instance replays
       decided calls itself, from its restored checkpoint); do the same
       here — restore the recovered snapshot, then fold the resident
       committed suffix into the state. *)
    let from =
      match Paxos.snapshot p with
      | Some (s_index, blob) when s_index <= Paxos.applied p ->
        state := (Marshal.from_string blob 0 : string);
        s_index + 1
      | _ -> Paxos.base p + 1
    in
    List.iter
      (fun v -> state := Digest.to_hex (Digest.string (!state ^ v)))
      (Paxos.get_committed_range p ~lo:from ~hi:(Paxos.applied p));
    { rn_paxos = p; rn_group = group; rn_state = state }
  in
  let n1 = boot "n1" in
  let n2 = boot "n2" in
  let n3 = boot "n3" in
  (* n2 plays the checkpoint backup: every ~256 applied decisions it hands
     its state to consensus as a snapshot (what Instance does after each
     real checkpoint), which is what licenses compaction. *)
  let snap_every = 256 in
  let last_offered = ref 0 in
  let rec snap_loop () =
    Engine.after eng (Time.ms 20) (fun () ->
        let a = Paxos.applied n2.rn_paxos in
        if a - !last_offered >= snap_every then begin
          last_offered := a;
          Paxos.offer_snapshot n2.rn_paxos ~index:a
            ~blob:(Marshal.to_string !(n2.rn_state) [])
        end;
        snap_loop ())
  in
  snap_loop ();
  Engine.spawn eng ~name:"stream" (fun () ->
      Engine.sleep eng (Time.ms 10);
      for i = 1 to history do
        ignore (Paxos.submit n1.rn_paxos (Printf.sprintf "r%07d" i));
        Engine.sleep eng (Time.us 100)
      done);
  (* Kill n3 early: everything decided after this point is history it must
     recover on restart. *)
  Engine.run ~until:(Time.ms 50) eng;
  Engine.kill_group eng n3.rn_group;
  Fabric.node_down fabric "n3";
  let stream_end = Time.ms 10 + (history * Time.us 100) in
  Engine.run ~until:(stream_end + Time.ms 300) eng;
  let n3' = boot "n3" in
  let t0 = Engine.now eng in
  let deadline = t0 + Time.sec 60 in
  while
    Paxos.applied n3'.rn_paxos < Paxos.committed n1.rn_paxos
    && Engine.now eng < deadline
  do
    Engine.run ~until:(Engine.now eng + Time.ms 5) eng
  done;
  let recovery = Engine.now eng - t0 in
  let converged =
    Paxos.applied n3'.rn_paxos >= Paxos.committed n1.rn_paxos
    && String.equal !(n3'.rn_state) !(n1.rn_state)
  in
  (match Engine.failures eng with
  | [] -> ()
  | (name, e) :: _ ->
    failwith (Printf.sprintf "bench thread %s died: %s" name (Printexc.to_string e)));
  let live = [ n1; n2; n3' ] in
  let peak =
    List.fold_left
      (fun acc n -> max acc (Paxos.stats n.rn_paxos).Paxos.peak_log_resident)
      0 live
  in
  let wal1 = Hashtbl.find wals "n1" in
  {
    rr_history = history;
    rr_recovery = recovery;
    rr_peak_log = peak;
    rr_final_log = (Paxos.stats n1.rn_paxos).Paxos.log_resident;
    rr_wal_records = Wal.length wal1;
    rr_wal_dropped = Wal.dropped wal1;
    rr_compactions =
      List.fold_left
        (fun acc n -> acc + (Paxos.stats n.rn_paxos).Paxos.compactions)
        0 live;
    rr_snapshots = (Paxos.stats n3'.rn_paxos).Paxos.snapshots_installed;
    rr_converged = converged;
  }

let recovery_run_json (r : recovery_run) =
  Printf.sprintf
    "{\"history\": %d, \"recovery_ms\": %.3f, \"peak_log_resident\": %d, \
     \"final_log_resident\": %d, \"wal_records\": %d, \"wal_dropped\": %d, \
     \"compactions\": %d, \"snapshots_installed\": %d, \"converged\": %b}"
    r.rr_history
    (Time.to_float_ms r.rr_recovery)
    r.rr_peak_log r.rr_final_log r.rr_wal_records r.rr_wal_dropped r.rr_compactions
    r.rr_snapshots r.rr_converged

let bench_recovery_cmd quick seed out check =
  let histories = if quick then [ 500; 1000; 2000 ] else [ 1000; 2000; 4000; 8000 ] in
  let threshold = 128 in
  let measure th = List.map (fun history -> recovery_run ~threshold:th ~history ~seed) histories in
  Printf.printf "bench recovery: compaction on (threshold %d)..." threshold;
  flush stdout;
  let on = measure threshold in
  Printf.printf " off...";
  flush stdout;
  let off = measure 0 in
  Printf.printf " done\n";
  Table.print
    ~title:(Printf.sprintf "recovery bench (3 nodes, snapshot every %d decisions)" 256)
    ~header:[ "history"; "peak log (on)"; "peak log (off)"; "recovery (on)";
              "recovery (off)"; "snapshots"; "wal resident (on)" ]
    (List.map2
       (fun a b ->
         [ string_of_int a.rr_history;
           string_of_int a.rr_peak_log;
           string_of_int b.rr_peak_log;
           Time.to_string a.rr_recovery;
           Time.to_string b.rr_recovery;
           string_of_int a.rr_snapshots;
           string_of_int a.rr_wal_records ])
       on off);
  let json =
    Printf.sprintf
      "{\n  \"bench\": \"recovery\",\n  \"seed\": %d,\n  \"threshold\": %d,\n  \
       \"snapshot_every\": %d,\n  \"compaction_on\": [\n%s\n  ],\n  \
       \"compaction_off\": [\n%s\n  ]\n}\n"
      seed threshold 256
      (String.concat ",\n" (List.map (fun r -> "    " ^ recovery_run_json r) on))
      (String.concat ",\n" (List.map (fun r -> "    " ^ recovery_run_json r) off))
  in
  (match open_out out with
  | oc ->
    output_string oc json;
    close_out oc;
    Printf.printf "wrote %s\n" out
  | exception Sys_error msg ->
    Printf.eprintf "crane: cannot write %s: %s\n" out msg;
    exit 1);
  if not check then 0
  else begin
    let largest = List.nth on (List.length on - 1) in
    let smallest = List.hd on in
    let off_largest = List.nth off (List.length off - 1) in
    let all_converged = List.for_all (fun r -> r.rr_converged) (on @ off) in
    (* "bounded" means the peak stops tracking history length: the largest
       run's peak must stay within a constant band of the smallest run's,
       and clearly below the uncompacted peak. *)
    let flat = largest.rr_peak_log <= (2 * smallest.rr_peak_log) + 256 in
    let below_off = largest.rr_peak_log < off_largest.rr_peak_log in
    let snapshot_used = largest.rr_snapshots >= 1 in
    if all_converged && flat && below_off && snapshot_used then begin
      Printf.printf
        "CHECK OK: peak %d entries at history %d (vs %d uncompacted), snapshot \
         path used\n"
        largest.rr_peak_log largest.rr_history off_largest.rr_peak_log;
      0
    end
    else begin
      Printf.printf
        "CHECK FAIL: converged=%b flat=%b (peak %d vs %d) below-uncompacted=%b \
         (%d vs %d) snapshot-used=%b\n"
        all_converged flat largest.rr_peak_log smallest.rr_peak_log below_off
        largest.rr_peak_log off_largest.rr_peak_log snapshot_used;
      1
    end
  end

(* ---- bench: client-visible unavailability during a live replica
   replacement ---- *)

module Ledger = Crane_chaos.Ledger

type reconfig_run = {
  cr_ok : int;
  cr_errors : int;
  cr_retries : int;
  cr_epoch : int;
  cr_steady_gap : Time.t;
      (** widest gap between consecutive successful completions before the
          primary dies: the no-fault baseline *)
  cr_unavail : Time.t;
      (** widest gap across the whole run — the client-visible outage
          spanning the crash, the election and the membership change *)
  cr_wall : Time.t;
  cr_healed : bool;  (** the replacement is live and a member at the end *)
  cr_spans_fault : bool;
      (** the workload was still running when the primary died — without
          this the gap analysis would measure nothing *)
}

let max_gap instants =
  let rec go acc = function
    | a :: (b :: _ as rest) -> go (max acc (b - a)) rest
    | _ -> acc
  in
  go Time.zero instants

(* Kill the primary under load, then commit a membership change swapping
   the dead replica for a fresh one.  The workload never stops: the gap
   analysis over its completion instants is the availability measurement
   (the paper's criterion: failures must be masked from clients). *)
let reconfig_bench_run ~seed ~requests =
  let cfg =
    { Instance.default_config with
      paxos =
        { Paxos.default_config with
          Paxos.heartbeat_period = Time.ms 100; election_timeout = Time.ms 300;
          election_jitter = Time.ms 50; round_retry = Time.ms 100 };
      checkpoint_period = Time.sec 2 }
  in
  let cluster = Cluster.create ~seed ~cfg ~server:Ledger.server () in
  let eng = Cluster.engine cluster in
  Cluster.start cluster;
  Cluster.run ~until:(Time.ms 200) cluster;
  let kill_at = Time.ms 1200 in
  let dead = ref "" in
  Engine.at eng kill_at (fun () ->
      match Cluster.primary_node cluster with
      | Some p ->
        dead := p;
        Cluster.kill cluster p;
        Engine.after eng (Time.ms 200) (fun () ->
            Cluster.replace_replica cluster ~dead:p ~fresh:"replica4")
      | None -> ());
  let target = Target.cluster cluster ~port:80 in
  let ledger = Ledger.client () in
  let handle =
    Loadgen.run ~name:"reconfig" ~seed ~think:(Time.ms 2) ~retries:8
      ~retry_backoff:(Time.ms 50) ~clients:6 ~requests
      ~request:(Ledger.request ledger) target
  in
  Loadgen.drive ~timeout:(Time.sec 120) target handle;
  let load = handle.Loadgen.collect () in
  (* let the replacement finish joining and catching up *)
  Cluster.run ~until:(Engine.now eng + Time.sec 3) cluster;
  Cluster.check_failures cluster;
  let before = List.filter (fun t -> t < kill_at) load.Loadgen.completions in
  let last =
    List.fold_left max Time.zero load.Loadgen.completions
  in
  {
    cr_ok = List.length load.Loadgen.latencies;
    cr_errors = load.Loadgen.errors;
    cr_retries = load.Loadgen.retries;
    cr_epoch = Cluster.current_epoch cluster;
    cr_steady_gap = max_gap before;
    cr_unavail = max_gap load.Loadgen.completions;
    cr_wall = load.Loadgen.wall;
    cr_healed =
      Cluster.instance cluster "replica4" <> None
      && List.mem "replica4" (Cluster.members cluster)
      && (not (List.mem !dead (Cluster.members cluster)))
      && Cluster.primary_node cluster <> None;
    cr_spans_fault = last > kill_at;
  }

let reconfig_run_json r =
  Printf.sprintf
    "{ \"ok\": %d, \"errors\": %d, \"retries\": %d, \"epoch\": %d, \
     \"steady_gap_ns\": %d, \"unavail_ns\": %d, \"wall_ns\": %d, \
     \"healed\": %b, \"spans_fault\": %b }"
    r.cr_ok r.cr_errors r.cr_retries r.cr_epoch r.cr_steady_gap r.cr_unavail
    r.cr_wall r.cr_healed r.cr_spans_fault

let bench_reconfig_cmd quick seed out check =
  let requests = if quick then 4000 else 8000 in
  Printf.printf "bench reconfig: replace the killed primary under load...";
  flush stdout;
  let r = reconfig_bench_run ~seed ~requests in
  (* Same seed, fresh cluster: the availability measurement must be a pure
     function of the seed for the gate (and CI diffs) to mean anything. *)
  let r2 = reconfig_bench_run ~seed ~requests in
  Printf.printf " done\n";
  let identical = reconfig_run_json r = reconfig_run_json r2 in
  Table.print
    ~title:"reconfig bench (kill primary + replace, 6 clients)"
    ~header:
      [ "ok"; "errors"; "retries"; "epoch"; "steady max gap"; "unavailability";
        "healed"; "deterministic" ]
    [ [ string_of_int r.cr_ok; string_of_int r.cr_errors;
        string_of_int r.cr_retries; string_of_int r.cr_epoch;
        Time.to_string r.cr_steady_gap; Time.to_string r.cr_unavail;
        string_of_bool r.cr_healed; string_of_bool identical ] ];
  let json =
    Printf.sprintf
      "{\n  \"bench\": \"reconfig\",\n  \"seed\": %d,\n  \"requests\": %d,\n  \
       \"run\": %s,\n  \"rerun_identical\": %b\n}\n"
      seed requests (reconfig_run_json r) identical
  in
  (match open_out out with
  | oc ->
    output_string oc json;
    close_out oc;
    Printf.printf "wrote %s\n" out
  | exception Sys_error msg ->
    Printf.eprintf "crane: cannot write %s: %s\n" out msg;
    exit 1);
  if not check then 0
  else begin
    let bound = Time.ms 1500 in
    let ok =
      r.cr_errors = 0 && r.cr_epoch >= 1 && r.cr_healed && r.cr_spans_fault
      && r.cr_unavail <= bound && identical
    in
    if ok then begin
      Printf.printf
        "CHECK OK: 0 errors, epoch %d, unavailability %s (bound %s), \
         deterministic\n"
        r.cr_epoch (Time.to_string r.cr_unavail) (Time.to_string bound);
      0
    end
    else begin
      Printf.printf
        "CHECK FAIL: errors=%d epoch=%d healed=%b spans-fault=%b unavail=%s \
         (bound %s) identical=%b\n"
        r.cr_errors r.cr_epoch r.cr_healed r.cr_spans_fault
        (Time.to_string r.cr_unavail) (Time.to_string bound) identical;
      1
    end
  end

(* ---- bench readmix: lease/backup read fast path vs all-consensus
   reads on a read-heavy mix ---- *)

module Proxy = Crane_core.Proxy

type readmix_run = {
  rm_reads : int;  (** successful read completions *)
  rm_writes : int;  (** successful write completions *)
  rm_errors : int;
  rm_committed : int;  (** consensus log entries decided on the primary *)
  rm_offload : float;
      (** completions per consensus entry — the commit-path offload: reads
          served from leases/watermarks don't spend a consensus round *)
  rm_read_mean : float;  (** mean read latency, ns of virtual time *)
  rm_write_mean : float;
  rm_lease_reads : int;
  rm_backup_reads : int;
  rm_lease_rejects : int;
  rm_wall : Time.t;
}

(* One measured configuration: a 3-replica Paxos_only ledger cluster
   under a closed-loop 95/5 read/write mix.  [fastpath] selects the read
   route — the proxy read port (lease reads on the primary, bounded-stale
   on backups, consensus fallback on REJECT) or the all-consensus funnel
   every request used before the split. *)
let readmix_run ~seed ~requests ~read_pct ~fastpath =
  let cfg =
    { Instance.default_config with mode = Instance.Paxos_only;
      paxos = fast_paxos; read_fastpath = fastpath }
  in
  let cluster = Cluster.create ~seed ~cfg ~server:Ledger.server () in
  let eng = Cluster.engine cluster in
  Cluster.start ~checkpoints:false cluster;
  (* Let the election settle and the first lease establish, so the mix
     measures the steady state rather than boot-time REJECT fallbacks. *)
  Cluster.run ~until:(Time.ms 800) cluster;
  let target = Target.cluster cluster ~port:80 in
  (* Two read routes: bounded-stale traffic lands on the backups, and
     every fourth read is a linearizable one served off the primary's
     lease — so the bench exercises both halves of the fast path. *)
  let rtarget_stale = Target.cluster_backups cluster ~port:cfg.Instance.read_port in
  let rtarget_lease = Target.cluster cluster ~port:cfg.Instance.read_port in
  let ledger = Ledger.client () in
  let nread = ref 0 in
  let read_request =
    if fastpath then fun _ ~from ->
      incr nread;
      let rtarget = if !nread mod 4 = 0 then rtarget_lease else rtarget_stale in
      Ledger.read_request ~rtarget ~target ~from
    else fun t ~from -> Ledger.consensus_get t ~from
  in
  let handle =
    Loadgen.run ~name:"readmix" ~seed ~think:(Time.ms 2) ~retries:8
      ~retry_backoff:(Time.ms 50) ~read_pct ~read_request ~clients:8 ~requests
      ~request:(Ledger.request ledger) target
  in
  Loadgen.drive ~timeout:(Time.sec 240) target handle;
  let load = handle.Loadgen.collect () in
  Cluster.run ~until:(Engine.now eng + Time.ms 300) cluster;
  Cluster.check_failures cluster;
  let committed =
    match Cluster.primary cluster with
    | Some (_, inst) -> Paxos.committed inst.Instance.paxos
    | None -> 0
  in
  let sum f =
    List.fold_left
      (fun acc (_, inst) -> acc + f (Proxy.stats inst.Instance.proxy))
      0 (Cluster.instances cluster)
  in
  let ok = List.length load.Loadgen.latencies in
  {
    rm_reads = List.length load.Loadgen.read_latencies;
    rm_writes = List.length load.Loadgen.write_latencies;
    rm_errors = load.Loadgen.errors;
    rm_committed = committed;
    rm_offload =
      (if committed = 0 then 0.0 else float_of_int ok /. float_of_int committed);
    rm_read_mean = Stats.mean load.Loadgen.read_latencies;
    rm_write_mean = Stats.mean load.Loadgen.write_latencies;
    rm_lease_reads = sum (fun s -> s.Proxy.lease_reads);
    rm_backup_reads = sum (fun s -> s.Proxy.backup_reads);
    rm_lease_rejects = sum (fun s -> s.Proxy.lease_rejects);
    rm_wall = load.Loadgen.wall;
  }

let readmix_run_json r =
  Printf.sprintf
    "{ \"reads\": %d, \"writes\": %d, \"errors\": %d, \"committed\": %d, \
     \"offload\": %.3f, \"read_mean_ns\": %.0f, \"write_mean_ns\": %.0f, \
     \"lease_reads\": %d, \"backup_reads\": %d, \"lease_rejects\": %d, \
     \"wall_ns\": %d }"
    r.rm_reads r.rm_writes r.rm_errors r.rm_committed r.rm_offload
    r.rm_read_mean r.rm_write_mean r.rm_lease_reads r.rm_backup_reads
    r.rm_lease_rejects r.rm_wall

let bench_readmix_cmd quick seed read_pct out check =
  let requests = if quick then 1500 else 3000 in
  Printf.printf "bench readmix: %d/%d read/write mix, fast path on..."
    read_pct (100 - read_pct);
  flush stdout;
  let fast = readmix_run ~seed ~requests ~read_pct ~fastpath:true in
  Printf.printf " off...";
  flush stdout;
  let base = readmix_run ~seed ~requests ~read_pct ~fastpath:false in
  (* Same seed, fresh cluster: the measurement must be a pure function of
     the seed for the gate (and CI diffs) to mean anything. *)
  let fast2 = readmix_run ~seed ~requests ~read_pct ~fastpath:true in
  Printf.printf " done\n";
  let identical = readmix_run_json fast = readmix_run_json fast2 in
  let ratio =
    if base.rm_offload = 0.0 then 0.0 else fast.rm_offload /. base.rm_offload
  in
  let row name r =
    [ name; string_of_int r.rm_reads; string_of_int r.rm_writes;
      string_of_int r.rm_errors; string_of_int r.rm_committed;
      Printf.sprintf "%.2f" r.rm_offload;
      Time.to_string (int_of_float r.rm_read_mean);
      Time.to_string (int_of_float r.rm_write_mean);
      Printf.sprintf "%d/%d/%d" r.rm_lease_reads r.rm_backup_reads
        r.rm_lease_rejects ]
  in
  Table.print
    ~title:
      (Printf.sprintf "read-mix bench (%d%% reads, 8 clients, ledger)" read_pct)
    ~header:
      [ "reads"; "ok-r"; "ok-w"; "errors"; "committed"; "ok/entry";
        "read mean"; "write mean"; "lease/backup/rej" ]
    [ row "fast path" fast; row "all consensus" base ];
  Printf.printf "commit-path offload: %.2fx (fast %.2f vs consensus %.2f \
                 completions per entry)\n"
    ratio fast.rm_offload base.rm_offload;
  let json =
    Printf.sprintf
      "{\n  \"bench\": \"readmix\",\n  \"seed\": %d,\n  \"requests\": %d,\n  \
       \"read_pct\": %d,\n  \"fastpath\": %s,\n  \"consensus\": %s,\n  \
       \"offload_ratio\": %.3f,\n  \"rerun_identical\": %b\n}\n"
      seed requests read_pct (readmix_run_json fast) (readmix_run_json base)
      ratio identical
  in
  (match open_out out with
  | oc ->
    output_string oc json;
    close_out oc;
    Printf.printf "wrote %s\n" out
  | exception Sys_error msg ->
    Printf.eprintf "crane: cannot write %s: %s\n" out msg;
    exit 1);
  if not check then 0
  else begin
    let bound = 2.0 in
    let ok =
      fast.rm_errors = 0 && base.rm_errors = 0 && ratio >= bound
      && fast.rm_lease_reads > 0 && fast.rm_backup_reads > 0 && identical
    in
    if ok then begin
      Printf.printf
        "CHECK OK: offload %.2fx (bound %.1fx), %d lease + %d backup reads, \
         0 errors, deterministic\n"
        ratio bound fast.rm_lease_reads fast.rm_backup_reads;
      0
    end
    else begin
      Printf.printf
        "CHECK FAIL: ratio=%.2f (bound %.1f) errors=%d/%d lease=%d backup=%d \
         identical=%b\n"
        ratio bound fast.rm_errors base.rm_errors fast.rm_lease_reads
        fast.rm_backup_reads identical;
      1
    end
  end

let servers_cmd () =
  print_endline "available servers:";
  List.iter (fun (n, _) -> Printf.printf "  %s\n" n) all_servers;
  print_endline "modes: native parrot paxos-only crane plan2";
  0

(* Crane-San: happens-before race detection, lock-order lint and the
   determinism certifier over the bundled servers.  Exit is nonzero on
   any NEW finding (see Driver.problems): a race/inversion/cond-hold in
   a target expected clean, a missed seeded race, or a replay-digest
   mismatch. *)
let analyze_cmd targets seed list =
  let module Driver = Crane_analysis.Driver in
  if list then begin
    print_endline "analyze targets:";
    List.iter (fun n -> Printf.printf "  %s\n" n) Driver.target_names;
    0
  end
  else begin
    let targets = match targets with [] -> Driver.target_names | ts -> ts in
    List.iter
      (fun t ->
        if not (List.mem t Driver.target_names) then begin
          Printf.eprintf "unknown analyze target %s (try --list)\n" t;
          exit 2
        end)
      targets;
    let outcomes = Driver.analyze ~seed ~targets () in
    print_string (Driver.render ~seed outcomes);
    if Driver.problems outcomes = [] then 0 else 1
  end

(* ---- Crane-MC: systematic schedule exploration + linearizability ---- *)

module Mc = Crane_analysis.Mc

let mc_print_violation (v : Mc.violation) =
  Printf.printf "VIOLATION (schedule %d): %s — %s\n" v.v_run v.v_invariant
    v.v_detail;
  Printf.printf "counterexample schedule (%d choices):\n"
    (List.length v.v_choices);
  List.iter
    (fun (c : Mc.choice) ->
      Printf.printf "  %-12s %d/%d  %s\n" c.c_label c.c_taken c.c_width c.c_key)
    v.v_choices

(* Wall time goes to stderr: stdout stays deterministic for diffing. *)
let mc_explore ~name cfg =
  let t0 = Sys.time () in
  let o = Mc.explore_mutated cfg in
  let dt = Sys.time () -. t0 in
  Printf.printf "[%s] %d schedules, %d deliveries, %s\n" name o.Mc.o_runs
    o.Mc.o_transitions
    (if o.Mc.o_complete then "explored to bound" else "run budget hit");
  Printf.eprintf "[%s] wall %.1fs\n%!" name dt;
  o

(* Prove the checker finds a reintroduced bug, and that the recorded
   counterexample replays to the same invariant violation. *)
let mc_kill_mutation ~seed m file =
  let cfg = { (Mc.mutation_preset m) with Mc.seed } in
  let name = "mutate:" ^ Mc.mutation_name m in
  let o = mc_explore ~name cfg in
  match o.Mc.o_violation with
  | None ->
    Printf.printf "[%s] NOT KILLED: no violation within the bounds\n" name;
    false
  | Some v ->
    Printf.printf "[%s] killed by %s — %s\n" name v.Mc.v_invariant v.Mc.v_detail;
    Mc.write_trace cfg v file;
    Printf.printf "[%s] counterexample written to %s\n" name file;
    let _, expect, verdict = Mc.replay file in
    (match verdict with
    | Some (inv, _) when inv = expect ->
      Printf.printf "[%s] replay reproduces the %s violation\n" name inv;
      true
    | Some (inv, d) ->
      Printf.printf "[%s] replay diverged: got %s — %s\n" name inv d;
      false
    | None ->
      Printf.printf "[%s] replay FAILED to reproduce the violation\n" name;
      false)

let mc_smoke seed =
  let ok = ref true in
  let clean name cfg =
    let o = mc_explore ~name cfg in
    match o.Mc.o_violation with
    | Some v ->
      mc_print_violation v;
      Mc.write_trace cfg v ("mc_" ^ name ^ ".trace");
      Printf.printf "[%s] counterexample written to mc_%s.trace\n" name name;
      ok := false
    | None -> Printf.printf "[%s] no violations\n" name
  in
  clean "clean" { Mc.default with Mc.seed };
  clean "clean-crash"
    {
      Mc.default with
      Mc.seed;
      clients = 1;
      crash_budget = 1;
      crash_window = 6;
    };
  if not (mc_kill_mutation ~seed Mc.Hole_backfill "mc_hole_backfill.trace") then
    ok := false;
  if not (mc_kill_mutation ~seed Mc.Dup_accept "mc_dup_accept.trace") then
    ok := false;
  if !ok then begin
    print_endline "mc smoke: PASS";
    0
  end
  else begin
    print_endline "mc smoke: FAIL";
    1
  end

let mc_cmd seed replicas clients writes reads crashes drops delay_mult naive
    no_fastpath pool mutate max_branch max_runs trace_out replay smoke =
  match replay with
  | Some path ->
    let cfg, expect, verdict = Mc.replay path in
    Printf.printf "replaying %s (%s, expected violation: %s)\n" path
      (Mc.mutation_name cfg.Mc.mutation)
      (if expect = "" then "?" else expect);
    (match verdict with
    | Some (inv, detail) ->
      Printf.printf "reproduced: %s — %s\n" inv detail;
      if expect = "" || inv = expect then 0 else 1
    | None ->
      print_endline "no violation on replay";
      1)
  | None ->
    if smoke then mc_smoke seed
    else begin
      let base =
        match mutate with Some m -> Mc.mutation_preset m | None -> Mc.default
      in
      let ov v = function Some x -> x | None -> v in
      let cfg =
        {
          base with
          Mc.seed;
          replicas = ov base.Mc.replicas replicas;
          clients = ov base.Mc.clients clients;
          writes = ov base.Mc.writes writes;
          reads = ov base.Mc.reads reads;
          crash_budget = ov base.Mc.crash_budget crashes;
          drop_budget = ov base.Mc.drop_budget drops;
          delays =
            (match delay_mult with
            | Some m when m > 1 -> [| 1; m |]
            | _ -> base.Mc.delays);
          dpor = not naive;
          read_fastpath = base.Mc.read_fastpath && not no_fastpath;
          pool_workers = ov base.Mc.pool_workers pool;
          max_branch = ov base.Mc.max_branch max_branch;
          max_runs = ov base.Mc.max_runs max_runs;
        }
      in
      let name =
        match mutate with
        | Some m -> "mutate:" ^ Mc.mutation_name m
        | None -> "explore"
      in
      let o = mc_explore ~name cfg in
      match (o.Mc.o_violation, mutate) with
      | Some v, _ ->
        mc_print_violation v;
        (match trace_out with
        | Some file ->
          Mc.write_trace cfg v file;
          Printf.printf "counterexample written to %s\n" file
        | None -> ());
        (* finding the reintroduced bug is the expected outcome *)
        if mutate = None then 1 else 0
      | None, Some _ ->
        print_endline "mutation NOT killed within the bounds";
        1
      | None, None ->
        print_endline "no violations";
        0
    end

(* ---- profile: commit critical path and the what-if latency lab ---- *)

module Critical_path = Crane_trace.Critical_path

type whatif = Fsync2x | Nobatch

let all_whatifs = [ ("fsync2x", Fsync2x); ("nobatch", Nobatch) ]

let whatif_name w = fst (List.find (fun (_, v) -> v = w) all_whatifs)

let whatif_doc = function
  | Fsync2x -> "WAL fsync device 2x faster"
  | Nobatch -> "proxy batch delay removed"

(* Virtual speedup, Coz-style: instead of sampling and inflating
   everything else, the simulator re-runs the same seed with one stage's
   modeled cost scaled, and the delta is measured end to end. *)
let whatif_cfg (cfg : Instance.config) = function
  | Fsync2x -> { cfg with Instance.wal_write_latency = cfg.Instance.wal_write_latency / 2 }
  | Nobatch -> { cfg with Instance.batch_delay = 0 }

type profile_run = {
  p_report : Critical_path.report;
  p_load : Loadgen.result;
  p_trace : Trace.t;
}

let profiled_run choice ~clients ~requests ~seed ~tweak =
  let server, port = server_of choice in
  let rng = Rng.create (seed + 1) in
  let request = request_of choice rng in
  let tr = Trace.create () in
  let cfg =
    { Instance.default_config with mode = Instance.Full; service_port = port;
      paxos = fast_paxos }
  in
  let cfg = match tweak with None -> cfg | Some w -> whatif_cfg cfg w in
  let cluster = Cluster.create ~seed ~cfg ~trace:tr ~server () in
  Cluster.start cluster;
  let target = Target.cluster cluster ~port in
  let handle = Loadgen.run ~clients ~requests ~request target in
  Loadgen.drive ~timeout:(Time.sec 3600) target handle;
  (* let trailing closes commit and backup admissions land so the last
     span DAGs are complete before analysis *)
  let eng = Cluster.engine cluster in
  Cluster.run ~until:(Engine.now eng + Time.ms 500) cluster;
  Cluster.check_failures cluster;
  { p_report = Critical_path.analyze tr; p_load = handle.Loadgen.collect (); p_trace = tr }

let whatif_row ~base ~variant w =
  let b = base.p_report.Critical_path.e2e and v = variant.p_report.Critical_path.e2e in
  let delta = b.Metrics.mean -. v.Metrics.mean in
  [ whatif_name w; whatif_doc w;
    Printf.sprintf "%.1f" (b.Metrics.mean /. 1e3);
    Printf.sprintf "%.1f" (v.Metrics.mean /. 1e3);
    Printf.sprintf "%+.1f" (delta /. 1e3);
    (if b.Metrics.mean > 0.0 then Printf.sprintf "%+.1f%%" (100. *. delta /. b.Metrics.mean)
     else "-") ]

let profile_cmd choice clients requests seed whatifs trace_out =
  let name = fst (List.find (fun (_, c) -> c = choice) all_servers) in
  Printf.printf "profiling %s: %d clients, %d requests, seed %d (crane mode)\n"
    name clients requests seed;
  let base = profiled_run choice ~clients ~requests ~seed ~tweak:None in
  print_string (Critical_path.render base.p_report);
  if whatifs <> [] then begin
    let rows =
      List.map
        (fun w ->
          let variant = profiled_run choice ~clients ~requests ~seed ~tweak:(Some w) in
          whatif_row ~base ~variant w)
        whatifs
    in
    Table.print ~title:"what-if latency lab (same seed, virtual speedup)"
      ~header:[ "what-if"; "change"; "base e2e mean us"; "e2e mean us"; "delta us"; "delta" ]
      rows;
    print_newline ()
  end;
  (match trace_out with
  | Some path -> (
    match open_out path with
    | oc ->
      output_string oc (Trace.to_chrome base.p_trace);
      close_out oc;
      (* stderr: the report on stdout stays byte-comparable across runs
         regardless of export options *)
      Printf.eprintf "base-run trace -> %s\n" path
    | exception Sys_error msg ->
      Printf.eprintf "crane: cannot write trace: %s\n" msg;
      exit 1)
  | None -> ());
  if base.p_report.Critical_path.errors <> [] then begin
    Printf.printf "profile: %d malformed span DAG(s)\n"
      (List.length base.p_report.Critical_path.errors);
    1
  end
  else 0

(* ---- bench latency: stage decomposition + what-if deltas as JSON ---- *)

let summary_json (s : Metrics.summary) =
  Printf.sprintf
    "{\"count\": %d, \"p50_ns\": %d, \"p90_ns\": %d, \"p99_ns\": %d, \
     \"max_ns\": %d, \"mean_ns\": %.0f, \"total_ns\": %d}"
    s.Metrics.count s.Metrics.p50 s.Metrics.p90 s.Metrics.p99 s.Metrics.max
    s.Metrics.mean s.Metrics.total

let bench_latency_cmd quick seed out check servers =
  let chosen =
    match servers with
    | [] -> all_servers
    | names ->
      List.map
        (fun n ->
          match List.assoc_opt n all_servers with
          | Some c -> (n, c)
          | None ->
            Printf.eprintf "crane: unknown server %s\n" n;
            exit 2)
        names
  in
  let clients = if quick then 4 else 8 in
  let requests = if quick then 60 else 200 in
  let results =
    List.map
      (fun (name, choice) ->
        Printf.printf "latency %s: base..." name;
        flush stdout;
        let base = profiled_run choice ~clients ~requests ~seed ~tweak:None in
        let variants =
          List.map
            (fun (_, w) ->
              Printf.printf " %s..." (whatif_name w);
              flush stdout;
              (w, profiled_run choice ~clients ~requests ~seed ~tweak:(Some w)))
            all_whatifs
        in
        let r = base.p_report in
        Printf.printf " coverage %.1f%%\n" (100. *. r.Critical_path.coverage);
        (name, base, variants))
      chosen
  in
  Table.print ~title:"commit critical path (e2e mean us per stage-bearing run)"
    ~header:
      ([ "server"; "coverage"; "e2e p50 us" ]
      @ List.map (fun s -> s ^ " p50") Critical_path.stage_order)
    (List.map
       (fun (name, base, _) ->
         let r = base.p_report in
         let stage_p50 s =
           let row =
             List.find (fun x -> x.Critical_path.stage = s) r.Critical_path.stages
           in
           Printf.sprintf "%.1f" (float_of_int row.Critical_path.summary.Metrics.p50 /. 1e3)
         in
         [ name;
           Printf.sprintf "%.1f%%" (100. *. r.Critical_path.coverage);
           Printf.sprintf "%.1f" (float_of_int r.Critical_path.e2e.Metrics.p50 /. 1e3) ]
         @ List.map stage_p50 Critical_path.stage_order)
       results);
  let result_json (name, base, variants) =
    let r = base.p_report in
    let stages =
      String.concat ", "
        (List.map
           (fun row ->
             Printf.sprintf "\"%s\": %s"
               (json_escape row.Critical_path.stage)
               (summary_json row.Critical_path.summary))
           r.Critical_path.stages)
    in
    let whatifs =
      String.concat ", "
        (List.map
           (fun (w, v) ->
             let b = r.Critical_path.e2e and ve = v.p_report.Critical_path.e2e in
             Printf.sprintf
               "{\"name\": \"%s\", \"e2e_mean_ns\": %.0f, \"delta_ns\": %.0f, \
                \"coverage\": %.4f}"
               (json_escape (whatif_name w)) ve.Metrics.mean
               (b.Metrics.mean -. ve.Metrics.mean)
               v.p_report.Critical_path.coverage)
           variants)
    in
    Printf.sprintf
      "    {\"server\": \"%s\", \"committed\": %d, \"complete\": %d, \
       \"coverage\": %.4f, \"span_errors\": %d, \"e2e\": %s, \
       \"stages\": {%s}, \"what_if\": [%s]}"
      (json_escape name) r.Critical_path.committed r.Critical_path.complete
      r.Critical_path.coverage
      (List.length r.Critical_path.errors)
      (summary_json r.Critical_path.e2e) stages whatifs
  in
  let json =
    Printf.sprintf
      "{\n  \"bench\": \"latency\",\n  \"seed\": %d,\n  \"mode\": \"crane\",\n  \
       \"clients\": %d,\n  \"requests\": %d,\n  \"results\": [\n%s\n  ]\n}\n"
      seed clients requests
      (String.concat ",\n" (List.map result_json results))
  in
  (match open_out out with
  | oc ->
    output_string oc json;
    close_out oc;
    Printf.printf "wrote %s\n" out
  | exception Sys_error msg ->
    Printf.eprintf "crane: cannot write %s: %s\n" out msg;
    exit 1);
  if check then begin
    let failures =
      List.concat_map
        (fun (name, base, variants) ->
          let r = base.p_report in
          let cov =
            if r.Critical_path.coverage < 0.99 then
              [ Printf.sprintf "%s: span coverage %.1f%% < 99%%" name
                  (100. *. r.Critical_path.coverage) ]
            else []
          in
          let errs =
            if r.Critical_path.errors <> [] then
              [ Printf.sprintf "%s: %d malformed span DAGs" name
                  (List.length r.Critical_path.errors) ]
            else []
          in
          let fsync_delta =
            match List.assoc_opt Fsync2x variants with
            | Some v ->
              let d =
                r.Critical_path.e2e.Metrics.mean
                -. v.p_report.Critical_path.e2e.Metrics.mean
              in
              if d = 0.0 then
                [ Printf.sprintf "%s: fsync2x what-if moved e2e latency by 0" name ]
              else []
            | None -> []
          in
          cov @ errs @ fsync_delta)
        results
    in
    if failures <> [] then begin
      List.iter (fun f -> Printf.printf "FAIL: %s\n" f) failures;
      1
    end
    else begin
      Printf.printf "check ok: coverage >= 99%%, no span errors, fsync2x delta nonzero\n";
      0
    end
  end
  else 0

(* ---- bench parallel: dependency-aware parallel delivery ---- *)

module Certifier = Crane_analysis.Certifier
module Api = Crane_core.Api

type papp = PLedger | PMysql | PHttp

let all_papps = [ ("ledger", PLedger); ("mysql", PMysql); ("http", PHttp) ]

(* Compute-heavy variants: execute windows must overlap under the
   1-lane baseline for the bench to measure the rotation stalls the
   pool removes (a thread that becomes lane head mid-compute stalls the
   whole lane until its next turn operation).  The apache profile's
   70 ms pages would dominate the run wall-clock, so the http variant
   uses smaller pages.  The mysql profile is weighted toward the
   buffer-pool latch walk — many short critical sections, each a turn
   operation.  Long uniform compute sleeps pipeline through one lane
   almost losslessly (each thread gets a turn per rotation while the
   others sleep), so it is exactly this op-dominated locking — the
   paper's Figure 14 culprit — that a single lane serializes and a
   per-lane pool recovers. *)
let papp_server = function
  | PLedger -> (Ledger.server, 80)
  | PMysql ->
    let cfg =
      { Crane_apps.Mysql.default_config with
        Crane_apps.Mysql.lookup_cost = Time.us 2000;
        bufpool_ops = 20;
        bufpool_op_cost = Time.us 30 }
    in
    (Crane_apps.Mysql.server ~cfg (), 3306)
  | PHttp ->
    let cfg =
      { Crane_apps.Apache.default_config with
        Crane_apps.Http_server.php_segments = 6;
        segment_cost = Time.us 800 }
    in
    (Crane_apps.Http_server.make ~name:"http" ~cfg, 80)

(* Per-request arrival period.  Clients fire their k-th request at a
   fixed virtual instant (storm + (k-1) * cycle), so all clients'
   commands commit — and want to execute — in the same window: the
   1-lane baseline must interleave them through one rotation while the
   pool spreads them over lanes.  The cycle leaves room for the
   baseline's inflated windows; a slow request just slips its client's
   schedule without affecting the others'. *)
let papp_cycle = function
  | PLedger -> Time.ms 10
  | PMysql -> Time.ms 25
  | PHttp -> Time.ms 35

(* Per-client phase offset within a cycle.  One lane only starves a
   thread when its short turn-taking ops (latch walks) rotate behind
   other threads' long compute sleeps; identical clients fired in
   lockstep move through those phases together and pipeline instead.
   A large mysql stagger makes one client's latch walk overlap the
   others' B-tree segments — the collision the pool dissolves. *)
let papp_stagger = function
  | PLedger | PHttp -> Time.us 13
  | PMysql -> Time.us 700

(* One request of client [c]'s deterministic sequence.  All three
   workloads are read-only on disjoint (or read-shared) footprints, so
   the pooled schedule's responses cannot depend on cross-client
   interleaving — which is what lets the byte-identity probe demand
   pool-on and pool-off transcripts be equal. *)
let papp_issue app ~target ~c ~k ~from =
  match app with
  | PLedger -> Ledger.consensus_get target ~from
  | PMysql -> (
    let table = 1 + ((c - 1) mod 16) in
    let id = 1 + ((37 * c) + (11 * k) mod 2000) in
    match Target.connect target ~from with
    | None -> None
    | Some conn ->
      let result =
        match
          Clients.read_until conn ~stop:(fun r ->
              Crane_apps.Str_util.find_sub r "ready" <> None)
        with
        | None -> None
        | Some _banner ->
          Sock.send conn (Printf.sprintf "SELECT c FROM sbtest%d WHERE id=%d\n" table id);
          Clients.read_until conn ~stop:(fun r ->
              Crane_apps.Str_util.find_sub r "\n" <> None)
      in
      Sock.close conn;
      result)
  | PHttp ->
    let path =
      if k mod 3 = 0 then Printf.sprintf "/static/page%d.html" c
      else "/test.php"
    in
    Clients.http_request target ~from ~meth:"GET" ~path ()

type parallel_run = {
  pr_exec_mean : float;  (** mean execute-stage latency, virtual ns *)
  pr_e2e_mean : float;
  pr_ok : int;
  pr_errors : int;
  pr_outputs : string;  (** canonical per-client transcript, times stripped *)
  pr_state : string;  (** primary's application state at the end *)
  pr_cert : Certifier.report;
  pr_committed : int;
}

let parallel_run app ~pool ~clients ~per_client ~seed =
  let server, port = papp_server app in
  let tr = Trace.create () in
  let cfg =
    { Instance.default_config with mode = Instance.Full; service_port = port;
      paxos = fast_paxos; pool_workers = pool }
  in
  let cluster = Cluster.create ~seed ~cfg ~trace:tr ~server () in
  Cluster.start ~checkpoints:false cluster;
  let eng = Cluster.engine cluster in
  let target = Target.cluster cluster ~port in
  (* Let the election settle so every measured request rides a stable
     primary. *)
  Cluster.run ~until:(Time.ms 800) cluster;
  (* Ledger: seed a fixed prefix sequentially, so the GET storm reads
     stable data (and the PUT/barrier admission path runs under the
     pool too). *)
  (match app with
  | PLedger ->
    let seeded = ref false in
    Engine.spawn eng ~name:"par-seed" (fun () ->
        let lc = Ledger.client () in
        for _ = 1 to 6 do
          ignore (Ledger.request lc target ~from:"par-seed")
        done;
        seeded := true);
    let rec settle () =
      if (not !seeded) && Engine.now eng < Time.sec 60 then begin
        Cluster.run ~until:(Engine.now eng + Time.ms 100) cluster;
        settle ()
      end
    in
    settle ()
  | PMysql | PHttp -> ());
  let storm_at = Engine.now eng + Time.ms 200 in
  let transcripts = Array.make (clients + 1) [] in
  let errors = ref 0 and ok = ref 0 and live = ref clients in
  for c = 1 to clients do
    Engine.spawn eng ~name:(Printf.sprintf "par-client%d" c) (fun () ->
        let from = Printf.sprintf "par-c%d" c in
        let cycle = papp_cycle app in
        let stagger = papp_stagger app in
        for k = 1 to per_client do
          (* Absolute, staggered fire instants: the arrival schedule is
             a pure function of the seed phase, not of response
             latencies. *)
          Engine.sleep eng
            (max 0
               (storm_at + ((k - 1) * cycle) + (c * stagger)
               - Engine.now eng));
          (match papp_issue app ~target ~c ~k ~from with
          | Some r ->
            incr ok;
            transcripts.(c) <- Output_log.normalize_payload r :: transcripts.(c)
          | None ->
            incr errors;
            transcripts.(c) <- "<fail>" :: transcripts.(c))
        done;
        decr live)
  done;
  let deadline = Engine.now eng + Time.sec 600 in
  let rec go () =
    if !live > 0 && Engine.now eng < deadline then begin
      Cluster.run ~until:(Engine.now eng + Time.ms 500) cluster;
      go ()
    end
  in
  go ();
  (* Drain trailing closes so the last execute windows end before
     analysis. *)
  Cluster.run ~until:(Engine.now eng + Time.ms 500) cluster;
  Cluster.check_failures cluster;
  let cp = Critical_path.analyze tr in
  (* The delivery stage under test is commit -> reply: admission wait
     plus execution.  The raw execute window (admit -> reply) is blind
     to the 1-lane baseline's cost by construction — legacy admits a
     command only when its connection's thread consumes it from the
     sequence head, so head-of-line queueing behind a busy connection
     is charged to sched_wait and the late-admitted window still spans
     just the solo compute.  Gating on the sum keeps both modes on the
     same anchors. *)
  let stage_mean name =
    match
      List.find_opt (fun s -> s.Critical_path.stage = name) cp.Critical_path.stages
    with
    | Some s -> s.Critical_path.summary.Metrics.mean
    | None -> 0.0
  in
  let exec_mean = stage_mean "sched_wait" +. stage_mean "execute" in
  let state, committed =
    match Cluster.primary cluster with
    | Some (_, inst) ->
      (inst.Instance.handle.Api.state_of (), Paxos.committed inst.Instance.paxos)
    | None -> ("", 0)
  in
  if Sys.getenv_opt "CRANE_PAR_DEBUG" <> None then begin
    let pname =
      match Cluster.primary cluster with Some (n, _) -> n | None -> ""
    in
    let resolve = Crane_trace.Trace.resolve_node tr in
    let admits = ref [] and replies = ref [] in
    List.iter
      (fun (ev : Crane_trace.Trace.ev) ->
        let node = resolve ev in
        if node = pname then
          match (ev.Crane_trace.Trace.cat, ev.Crane_trace.Trace.name) with
          | "seq", "admit" ->
            let ix =
              Option.value (Crane_trace.Trace.find_int ev "index") ~default:0
            and conn =
              Option.value (Crane_trace.Trace.find_int ev "conn") ~default:(-1)
            in
            admits := (ev.Crane_trace.Trace.ts, ix, conn) :: !admits
          | "req", "reply" ->
            let conn =
              Option.value (Crane_trace.Trace.find_int ev "conn") ~default:(-1)
            in
            replies := (ev.Crane_trace.Trace.ts, conn) :: !replies
          | "exec", "begin" ->
            Printf.eprintf "exec.begin ts=%d ix=%d conn=%d lane=%d\n"
              ev.Crane_trace.Trace.ts
              (Option.value (Crane_trace.Trace.find_int ev "index") ~default:0)
              (Option.value (Crane_trace.Trace.find_int ev "conn") ~default:(-1))
              (Option.value (Crane_trace.Trace.find_int ev "lane") ~default:(-1))
          | _ -> ())
      (Crane_trace.Trace.events tr);
    let admits = List.rev !admits and replies = List.rev !replies in
    Printf.eprintf "-- windows (pool=%d) --\n" pool;
    List.iter
      (fun (ats, ix, conn) ->
        match
          List.find_opt (fun (rts, rc) -> rc = conn && rts >= ats) replies
        with
        | Some (rts, _) ->
          Printf.eprintf "ix=%d conn=%d admit=%d reply=%d win=%dus\n" ix conn
            ats rts ((rts - ats) / 1000)
        | None -> Printf.eprintf "ix=%d conn=%d admit=%d reply=-\n" ix conn ats)
      admits
  end;
  let outputs =
    String.concat "\x00"
      (List.mapi
         (fun c t ->
           Printf.sprintf "c%d:%s" c (String.concat "|" (List.rev t)))
         (Array.to_list transcripts))
  in
  {
    pr_exec_mean = exec_mean;
    pr_e2e_mean = cp.Critical_path.e2e.Metrics.mean;
    pr_ok = !ok;
    pr_errors = !errors;
    pr_outputs = outputs;
    pr_state = state;
    pr_cert = Certifier.check tr;
    pr_committed = committed;
  }

let parallel_side_json (r : parallel_run) =
  Printf.sprintf
    "{\"commit_reply_mean_ns\": %.0f, \"e2e_mean_ns\": %.0f, \"ok\": %d, \
     \"errors\": %d, \"committed\": %d, \"cert_windows\": %d, \
     \"cert_commands\": %d, \"cert_locations\": %d, \"cert_confined\": %d, \
     \"cert_violations\": %d}"
    r.pr_exec_mean r.pr_e2e_mean r.pr_ok r.pr_errors r.pr_committed
    r.pr_cert.Certifier.windows r.pr_cert.Certifier.commands
    r.pr_cert.Certifier.locations r.pr_cert.Certifier.confined
    (List.length r.pr_cert.Certifier.violations)

let bench_parallel_cmd quick seed out check apps =
  let chosen =
    match apps with
    | [] -> all_papps
    | names ->
      List.map
        (fun n ->
          match List.assoc_opt n all_papps with
          | Some a -> (n, a)
          | None ->
            Printf.eprintf "crane: unknown app %s (ledger|mysql|http)\n" n;
            exit 2)
        names
  in
  let clients = 8 and workers = 4 in
  let per_client = if quick then 6 else 16 in
  let results =
    List.map
      (fun (name, app) ->
        Printf.printf "parallel %s: pool off..." name;
        flush stdout;
        let serial = parallel_run app ~pool:1 ~clients ~per_client ~seed in
        Printf.printf " pool x%d..." workers;
        flush stdout;
        let pooled = parallel_run app ~pool:workers ~clients ~per_client ~seed in
        let speedup =
          if pooled.pr_exec_mean > 0.0 then
            serial.pr_exec_mean /. pooled.pr_exec_mean
          else 0.0
        in
        let outputs_identical = String.equal serial.pr_outputs pooled.pr_outputs in
        let state_identical = String.equal serial.pr_state pooled.pr_state in
        let certified = Certifier.certified pooled.pr_cert in
        Printf.printf " %.2fx%s%s\n" speedup
          (if outputs_identical && state_identical then "" else " (OUTPUTS DIVERGE)")
          (if certified then "" else " (CERTIFIER VIOLATIONS)");
        if not certified then print_string (Certifier.render pooled.pr_cert);
        (name, serial, pooled, speedup, outputs_identical && state_identical, certified))
      chosen
  in
  Table.print
    ~title:
      (Printf.sprintf
         "parallel delivery bench (%d clients, %d workers, crane mode)"
         clients workers)
    ~header:
      [ "app"; "commit-reply off us"; "commit-reply on us"; "speedup";
        "e2e off us"; "e2e on us"; "identical"; "certified" ]
    (List.map
       (fun (name, s, p, speedup, identical, certified) ->
         [ name;
           Printf.sprintf "%.1f" (s.pr_exec_mean /. 1e3);
           Printf.sprintf "%.1f" (p.pr_exec_mean /. 1e3);
           Printf.sprintf "%.2fx" speedup;
           Printf.sprintf "%.1f" (s.pr_e2e_mean /. 1e3);
           Printf.sprintf "%.1f" (p.pr_e2e_mean /. 1e3);
           string_of_bool identical;
           Printf.sprintf "%b (%d cmds, %d locs)" certified
             p.pr_cert.Certifier.commands p.pr_cert.Certifier.locations ])
       results);
  let json =
    Printf.sprintf
      "{\n  \"bench\": \"parallel\",\n  \"seed\": %d,\n  \"mode\": \"crane\",\n  \
       \"clients\": %d,\n  \"workers\": %d,\n  \"per_client\": %d,\n  \
       \"results\": [\n%s\n  ]\n}\n"
      seed clients workers per_client
      (String.concat ",\n"
         (List.map
            (fun (name, s, p, speedup, identical, certified) ->
              Printf.sprintf
                "    {\"app\": \"%s\", \"serial\": %s, \"pooled\": %s, \
                 \"speedup\": %.2f, \"fixed_seed_outputs_identical\": %b, \
                 \"certified\": %b}"
                (json_escape name) (parallel_side_json s) (parallel_side_json p)
                speedup identical certified)
            results))
  in
  (match open_out out with
  | oc ->
    output_string oc json;
    close_out oc;
    Printf.printf "wrote %s\n" out
  | exception Sys_error msg ->
    Printf.eprintf "crane: cannot write %s: %s\n" out msg;
    exit 1);
  match check with
  | None -> 0
  | Some bound ->
    let best =
      List.fold_left (fun acc (_, _, _, s, _, _) -> max acc s) 0.0 results
    in
    let all_identical = List.for_all (fun (_, _, _, _, i, _) -> i) results in
    let all_certified = List.for_all (fun (_, _, _, _, _, c) -> c) results in
    let errors =
      List.fold_left
        (fun acc (_, s, p, _, _, _) -> acc + s.pr_errors + p.pr_errors)
        0 results
    in
    if best >= bound && all_identical && all_certified && errors = 0 then begin
      Printf.printf
        "CHECK OK: best execute speedup %.2fx (bound %.1fx), outputs \
         identical, schedules certified, 0 errors\n"
        best bound;
      0
    end
    else begin
      Printf.printf
        "CHECK FAIL: best=%.2fx (bound %.1f) identical=%b certified=%b \
         errors=%d\n"
        best bound all_identical all_certified errors;
      1
    end

(* ---- bench drift: compare a fresh bench JSON against the committed
   baseline ---- *)

(* Scan [key]: <float> occurrences out of a bench JSON.  The bench
   writers emit a fixed flat format (see the Printf.sprintf calls
   above), so plain string scanning is enough — no JSON parser in the
   toolchain, and none needed. *)
let scan_floats ~key text =
  let needle = "\"" ^ key ^ "\":" in
  let nlen = String.length needle and len = String.length text in
  let out = ref [] in
  let i = ref 0 in
  while !i + nlen <= len do
    if String.sub text !i nlen = needle then begin
      let j = ref (!i + nlen) in
      while !j < len && text.[!j] = ' ' do incr j done;
      let k = ref !j in
      while
        !k < len
        && (match text.[!k] with '0' .. '9' | '.' | '-' | 'e' | '+' -> true | _ -> false)
      do
        incr k
      done;
      (match float_of_string_opt (String.sub text !j (!k - !j)) with
      | Some f -> out := f :: !out
      | None -> ());
      i := !k
    end
    else incr i
  done;
  List.rev !out

let drift_metric text =
  (* Headline metric per bench kind: the min per-result speedup for
     batching/parallel, the offload ratio for readmix. *)
  let has kind =
    let needle = Printf.sprintf "\"bench\": \"%s\"" kind in
    let nlen = String.length needle in
    let rec find i =
      if i + nlen > String.length text then false
      else if String.sub text i nlen = needle then true
      else find (i + 1)
    in
    find 0
  in
  if has "readmix" then
    match scan_floats ~key:"offload_ratio" text with
    | r :: _ -> Some ("offload_ratio", r)
    | [] -> None
  else if has "batching" || has "parallel" then
    match scan_floats ~key:"speedup" text with
    | [] -> None
    | l -> Some ("min speedup", List.fold_left min infinity l)
  else None

let read_file path =
  match open_in_bin path with
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Some s
  | exception Sys_error _ -> None

let bench_drift_cmd baseline current tolerance =
  match (read_file baseline, read_file current) with
  | None, _ ->
    Printf.eprintf "crane: cannot read baseline %s\n" baseline;
    2
  | _, None ->
    Printf.eprintf "crane: cannot read current %s\n" current;
    2
  | Some b, Some c -> (
    match (drift_metric b, drift_metric c) with
    | Some (kb, vb), Some (kc, vc) when kb = kc ->
      let floor = vb *. (1.0 -. tolerance) in
      if vc >= floor then begin
        Printf.printf
          "drift ok: %s %.3f vs baseline %.3f (floor %.3f, tolerance %.0f%%)\n"
          kb vc vb floor (100. *. tolerance);
        0
      end
      else begin
        Printf.printf
          "DRIFT: %s regressed to %.3f from baseline %.3f (floor %.3f, \
           tolerance %.0f%%)\n"
          kb vc vb floor (100. *. tolerance);
        1
      end
    | _ ->
      Printf.eprintf
        "crane: cannot extract a comparable headline metric from %s and %s\n"
        baseline current;
      2)

(* ---- cmdliner plumbing ---- *)

let server_arg =
  let choice = Arg.enum all_servers in
  Arg.(value & opt choice Apache & info [ "server"; "s" ] ~doc:"Server program to run.")

let mode_arg =
  let choice = Arg.enum all_modes in
  Arg.(value & opt choice Crane & info [ "mode"; "m" ] ~doc:"Deployment mode.")

let clients_arg = Arg.(value & opt int 8 & info [ "clients"; "c" ] ~doc:"Concurrent clients.")
let requests_arg = Arg.(value & opt int 100 & info [ "requests"; "n" ] ~doc:"Total requests.")
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.")

let format_arg =
  let choice = Arg.enum [ ("chrome", `Chrome); ("jsonl", `Jsonl) ] in
  Arg.(value & opt choice `Chrome
       & info [ "format"; "f" ] ~doc:"Trace output format: chrome (trace_event JSON) or jsonl.")

let out_arg =
  Arg.(value & opt string "trace.json" & info [ "out"; "o" ] ~doc:"Trace output file.")

let scenario_arg =
  Arg.(value & opt (some string) None
       & info [ "scenario" ] ~doc:"Chaos scenario to run (default: the whole suite).")

let list_arg =
  Arg.(value & flag & info [ "list" ] ~doc:"List built-in chaos scenarios and exit.")

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Smaller workload for CI (96 requests per run).")

let bench_out_arg =
  Arg.(value & opt string "BENCH_batching.json"
       & info [ "out"; "o" ] ~doc:"Benchmark JSON output file.")

let check_arg =
  Arg.(value & opt float 0.0
       & info [ "check" ]
           ~doc:"Exit nonzero unless every server's batched/unbatched speedup \
                 reaches this factor and fixed-seed outputs are identical.")

let bench_servers_arg =
  Arg.(value & pos_all string []
       & info [] ~docv:"SERVER" ~doc:"Servers to bench (default: all).")

let run_term = Term.(const run_cmd $ server_arg $ mode_arg $ clients_arg $ requests_arg $ seed_arg)
let failover_term = Term.(const failover_cmd $ server_arg $ seed_arg)
let servers_term = Term.(const servers_cmd $ const ())

let chaos_term = Term.(const chaos_cmd $ scenario_arg $ seed_arg $ list_arg)

let bench_term =
  Term.(const bench_cmd $ quick_arg $ seed_arg $ bench_out_arg $ check_arg
        $ bench_servers_arg)

let recovery_out_arg =
  Arg.(value & opt string "BENCH_recovery.json"
       & info [ "out"; "o" ] ~doc:"Benchmark JSON output file.")

let recovery_check_arg =
  Arg.(value & flag
       & info [ "check" ]
           ~doc:"Exit nonzero unless the compacted peak log size is flat across \
                 history lengths, beats the uncompacted peak, and the restarted \
                 replica recovered through the snapshot path.")

let bench_recovery_term =
  Term.(const bench_recovery_cmd $ quick_arg $ seed_arg $ recovery_out_arg
        $ recovery_check_arg)

let reconfig_out_arg =
  Arg.(value & opt string "BENCH_reconfig.json"
       & info [ "out"; "o" ] ~doc:"Benchmark JSON output file.")

let reconfig_check_arg =
  Arg.(value & flag
       & info [ "check" ]
           ~doc:"Exit nonzero unless the replacement commits (epoch advances, \
                 fresh replica joins), no request hard-fails, the client-visible \
                 unavailability stays bounded, and a same-seed rerun is \
                 byte-identical.")

let bench_reconfig_term =
  Term.(const bench_reconfig_cmd $ quick_arg $ seed_arg $ reconfig_out_arg
        $ reconfig_check_arg)

let readmix_out_arg =
  Arg.(value & opt string "BENCH_readmix.json"
       & info [ "out"; "o" ] ~doc:"Benchmark JSON output file.")

let readmix_pct_arg =
  Arg.(value & opt int 95
       & info [ "read-pct" ] ~doc:"Percentage of requests issued as reads.")

let readmix_check_arg =
  Arg.(value & flag
       & info [ "check" ]
           ~doc:"Exit nonzero unless the fast path's commit-path offload \
                 (completions per consensus entry) is at least 2x the \
                 all-consensus baseline, both lease and backup reads were \
                 served, no request hard-fails, and a same-seed rerun is \
                 byte-identical.")

let bench_readmix_term =
  Term.(const bench_readmix_cmd $ quick_arg $ seed_arg $ readmix_pct_arg
        $ readmix_out_arg $ readmix_check_arg)

let trace_term =
  Term.(const trace_cmd $ server_arg $ mode_arg $ clients_arg $ requests_arg
        $ seed_arg $ format_arg $ out_arg)

let analyze_targets_arg =
  Arg.(value & pos_all string []
       & info [] ~docv:"TARGET" ~doc:"Targets to analyze (default: all; see --list).")

let analyze_list_arg =
  Arg.(value & flag & info [ "list" ] ~doc:"List analyze targets and exit.")

let analyze_term =
  Term.(const analyze_cmd $ analyze_targets_arg $ seed_arg $ analyze_list_arg)

let mc_opt_int names doc =
  Arg.(value & opt (some int) None & info names ~doc)

let mc_seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Simulation seed.")

let mc_mutate_arg =
  let choice =
    Arg.enum
      [ ("hole-backfill", Mc.Hole_backfill); ("dup-accept", Mc.Dup_accept) ]
  in
  Arg.(value & opt (some choice) None
       & info [ "mutate" ]
           ~doc:"Reintroduce a fixed paxos bug (hole-backfill, dup-accept) \
                 and require the checker to find it: exit 0 iff a violation \
                 is found and its counterexample replays.")

let mc_naive_arg =
  Arg.(value & flag
       & info [ "naive" ]
           ~doc:"Disable DPOR: enumerate every delivery interleaving \
                 (baseline for the pruning-factor measurement).")

let mc_no_fastpath_arg =
  Arg.(value & flag
       & info [ "no-fastpath" ] ~doc:"Disable the read fast path (all reads \
                                      go through consensus).")

let mc_trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ]
           ~doc:"Write the counterexample schedule to this file (replayable \
                 with --replay).")

let mc_replay_arg =
  Arg.(value & opt (some string) None
       & info [ "replay" ] ~docv:"FILE"
           ~doc:"Re-execute a recorded counterexample trace and report \
                 whether the violation reproduces.")

let mc_smoke_arg =
  Arg.(value & flag
       & info [ "smoke" ]
           ~doc:"CI matrix: explore a clean config with and without a crash \
                 (expect no violations), then prove both mutations are \
                 killed with replayable counterexamples.")

let mc_term =
  Term.(const mc_cmd $ mc_seed_arg
        $ mc_opt_int [ "replicas" ] "Cluster size (default 3)."
        $ mc_opt_int [ "clients" ] "Concurrent clients (default 2)."
        $ mc_opt_int [ "writes" ] "Writes per client (default 2)."
        $ mc_opt_int [ "reads" ] "Fast-path reads per client (default 1)."
        $ mc_opt_int [ "crashes" ] "Crash budget (default 0)."
        $ mc_opt_int [ "drops" ] "Message-drop budget (default 0)."
        $ mc_opt_int [ "delay-mult" ]
            "Arm a second delivery-latency bucket at this multiple of the \
             base latency."
        $ mc_naive_arg $ mc_no_fastpath_arg
        $ mc_opt_int [ "pool" ] "Parallel-pool workers (default 1)."
        $ mc_mutate_arg
        $ mc_opt_int [ "max-branch" ]
            "Branchable choice points per execution (default 18)."
        $ mc_opt_int [ "max-runs" ] "Schedule budget (default 3000)."
        $ mc_trace_out_arg $ mc_replay_arg $ mc_smoke_arg)

let whatif_arg =
  let choice = Arg.enum all_whatifs in
  Arg.(value & opt_all choice []
       & info [ "what-if"; "w" ]
           ~doc:"Re-run the same seed with a stage's virtual cost scaled and \
                 report the end-to-end delta (fsync2x, nobatch); repeatable.")

let profile_trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ]
           ~doc:"Also export the base run's trace (chrome trace_event JSON).")

let profile_term =
  Term.(const profile_cmd $ server_arg $ clients_arg $ requests_arg $ seed_arg
        $ whatif_arg $ profile_trace_out_arg)

let latency_out_arg =
  Arg.(value & opt string "BENCH_latency.json"
       & info [ "out"; "o" ] ~doc:"Benchmark JSON output file.")

let latency_check_arg =
  Arg.(value & flag
       & info [ "check" ]
           ~doc:"Exit nonzero unless every server decomposes >= 99% of committed \
                 requests with no malformed span DAGs and the fsync2x what-if \
                 moves end-to-end latency.")

let bench_latency_term =
  Term.(const bench_latency_cmd $ quick_arg $ seed_arg $ latency_out_arg
        $ latency_check_arg $ bench_servers_arg)

let parallel_out_arg =
  Arg.(value & opt string "BENCH_parallel.json"
       & info [ "out"; "o" ] ~doc:"Benchmark JSON output file.")

let parallel_check_arg =
  Arg.(value & opt (some float) None
       & info [ "check" ] ~docv:"SPEEDUP"
           ~doc:"Exit nonzero unless some app's execute-stage speedup at 4 \
                 workers reaches this factor, fixed-seed outputs are identical \
                 pool-on vs pool-off, and the certifier finds the pooled \
                 schedule conflict-serializable with zero violations.")

let parallel_apps_arg =
  Arg.(value & pos_all string []
       & info [] ~docv:"APP" ~doc:"Apps to bench: ledger, mysql, http (default: all).")

let bench_parallel_term =
  Term.(const bench_parallel_cmd $ quick_arg $ seed_arg $ parallel_out_arg
        $ parallel_check_arg $ parallel_apps_arg)

let drift_baseline_arg =
  Arg.(required & pos 0 (some string) None
       & info [] ~docv:"BASELINE" ~doc:"Committed baseline bench JSON.")

let drift_current_arg =
  Arg.(required & pos 1 (some string) None
       & info [] ~docv:"CURRENT" ~doc:"Freshly produced bench JSON.")

let drift_tolerance_arg =
  Arg.(value & opt float 0.2
       & info [ "tolerance" ]
           ~doc:"Allowed fractional regression of the headline metric (0.2 = 20%).")

let bench_drift_term =
  Term.(const bench_drift_cmd $ drift_baseline_arg $ drift_current_arg
        $ drift_tolerance_arg)

let cmds =
  [
    Cmd.v (Cmd.info "run" ~doc:"Run a workload against a server in a chosen deployment mode.") run_term;
    Cmd.v (Cmd.info "failover" ~doc:"Kill the primary under load, recover from a checkpoint.") failover_term;
    Cmd.v (Cmd.info "chaos" ~doc:"Run the deterministic fault-injection suite and check SMR invariants.") chaos_term;
    Cmd.v (Cmd.info "trace" ~doc:"Run a workload with the flight recorder on; export the trace and metrics.") trace_term;
    Cmd.group
      (Cmd.info "bench" ~doc:"Benchmarks: commit batching, recovery/compaction.")
      [ Cmd.v
          (Cmd.info "batching"
             ~doc:"Measure batched vs. unbatched commit throughput; write BENCH_batching.json.")
          bench_term;
        Cmd.v
          (Cmd.info "recovery"
             ~doc:"Measure straggler recovery time and peak resident log with \
                   compaction on vs. off; write BENCH_recovery.json.")
          bench_recovery_term;
        Cmd.v
          (Cmd.info "latency"
             ~doc:"Decompose commit latency into critical-path stages per server \
                   and measure what-if deltas; write BENCH_latency.json.")
          bench_latency_term;
        Cmd.v
          (Cmd.info "reconfig"
             ~doc:"Measure client-visible unavailability while the killed \
                   primary is replaced through a live membership change; write \
                   BENCH_reconfig.json.")
          bench_reconfig_term;
        Cmd.v
          (Cmd.info "readmix"
             ~doc:"Measure commit-path offload of lease/bounded-stale reads \
                   vs all-consensus reads on a read-heavy mix; write \
                   BENCH_readmix.json.")
          bench_readmix_term;
        Cmd.v
          (Cmd.info "parallel"
             ~doc:"Measure execute-stage speedup of dependency-aware parallel \
                   delivery (worker pool on vs off) with the byte-identity \
                   probe and the Crane-San schedule certifier; write \
                   BENCH_parallel.json.")
          bench_parallel_term;
        Cmd.v
          (Cmd.info "drift"
             ~doc:"Compare a fresh bench JSON's headline metric against a \
                   committed baseline; exit nonzero on regression beyond the \
                   tolerance.")
          bench_drift_term ];
    Cmd.v
      (Cmd.info "profile"
         ~doc:"Commit critical-path profile: per-stage latency decomposition, \
               per-view stalls, blocked-on attribution, what-if latency lab.")
      profile_term;
    Cmd.v
      (Cmd.info "mc"
         ~doc:"Crane-MC: systematically explore delivery orders, drops, \
               delays and crashes with DPOR; check SMR invariants and \
               linearizability of the client history at every terminal \
               state.")
      mc_term;
    Cmd.v
      (Cmd.info "analyze"
         ~doc:"Crane-San: race detection, lock-order lint and determinism \
               certification across the bundled servers and runtimes.")
      analyze_term;
    Cmd.v (Cmd.info "servers" ~doc:"List available servers and modes.") servers_term;
  ]

let () =
  let info = Cmd.info "crane" ~doc:"CRANE: transparent state machine replication (simulated)." in
  exit (Cmd.eval' (Cmd.group info cmds))
