(* Command-line front end: run any server under any deployment and
   report latency statistics, or exercise the failure scenarios.

     dune exec bin/crane_cli.exe -- run --server apache --mode crane
     dune exec bin/crane_cli.exe -- run --server mysql --mode native -n 200
     dune exec bin/crane_cli.exe -- failover --server mongoose
     dune exec bin/crane_cli.exe -- servers *)

module Time = Crane_sim.Time
module Engine = Crane_sim.Engine
module Rng = Crane_sim.Rng
module Instance = Crane_core.Instance
module Cluster = Crane_core.Cluster
module Standalone = Crane_core.Standalone
module Output_log = Crane_core.Output_log
module Paxos = Crane_paxos.Paxos
module Target = Crane_workload.Target
module Clients = Crane_workload.Clients
module Loadgen = Crane_workload.Loadgen
module Stats = Crane_report.Stats
module Table = Crane_report.Table
module Trace = Crane_trace.Trace
module Metrics = Crane_trace.Metrics
open Cmdliner

type server_choice = Apache | Mongoose | Clamav | Mediatomb | Mysql

let all_servers =
  [ ("apache", Apache); ("mongoose", Mongoose); ("clamav", Clamav);
    ("mediatomb", Mediatomb); ("mysql", Mysql) ]

let server_of = function
  | Apache -> (Crane_apps.Apache.server ~cfg:{ Crane_apps.Apache.default_config with hints = true } (), 80)
  | Mongoose -> (Crane_apps.Mongoose.server ~cfg:{ Crane_apps.Mongoose.default_config with hints = true } (), 80)
  | Clamav -> (Crane_apps.Clamav.server (), 3310)
  | Mediatomb -> (Crane_apps.Mediatomb.server (), 49152)
  | Mysql -> (Crane_apps.Mysql.server (), 3306)

let request_of choice rng =
  match choice with
  | Apache | Mongoose -> fun t ~from -> Clients.apachebench t ~from
  | Clamav -> fun t ~from -> Clients.clamdscan ~dirs:8 t ~from
  | Mediatomb -> fun t ~from -> Clients.mediabench t ~from
  | Mysql -> fun t ~from -> Clients.sysbench ~rng ~ntables:16 ~rows:2000 t ~from

type mode_choice = Native | Parrot | PaxosOnly | Crane | PlanII

let all_modes =
  [ ("native", Native); ("parrot", Parrot); ("paxos-only", PaxosOnly);
    ("crane", Crane); ("plan2", PlanII) ]

let fast_paxos =
  { Paxos.heartbeat_period = Time.ms 200; election_timeout = Time.ms 600;
    election_jitter = Time.ms 100; round_retry = Time.ms 200 }

let imode_of = function
  | PaxosOnly -> Instance.Paxos_only
  | PlanII -> Instance.No_bubbling
  | Native | Parrot | Crane -> Instance.Full

let report name (r : Loadgen.result) =
  Printf.printf "%s: %d ok, %d errors\n" name (List.length r.Loadgen.latencies)
    r.Loadgen.errors;
  if r.Loadgen.latencies <> [] then
    Printf.printf
      "  latency: median %s  mean %.2fms  p90 %s  p99 %s  (virtual wall %s)\n"
      (Time.to_string (Stats.median r.Loadgen.latencies))
      (Stats.mean r.Loadgen.latencies /. 1e6)
      (Time.to_string (Stats.percentile 0.9 r.Loadgen.latencies))
      (Time.to_string (Stats.percentile 0.99 r.Loadgen.latencies))
      (Time.to_string r.Loadgen.wall)

let run_cmd choice mode clients requests seed =
  let server, port = server_of choice in
  let rng = Rng.create (seed + 1) in
  let request = request_of choice rng in
  (match mode with
  | Native | Parrot ->
    let m = if mode = Native then Standalone.Native else Standalone.Parrot in
    let sa = Standalone.boot ~seed ~mode:m ~server () in
    let target = Target.standalone sa ~port in
    let handle = Loadgen.run ~clients ~requests ~request target in
    Loadgen.drive ~timeout:(Time.sec 3600) target handle;
    Standalone.check_failures sa;
    report "un-replicated" (handle.Loadgen.collect ())
  | PaxosOnly | Crane | PlanII ->
    let imode = imode_of mode in
    let cfg =
      { Instance.default_config with mode = imode; service_port = port; paxos = fast_paxos }
    in
    let cluster = Cluster.create ~seed ~cfg ~server () in
    Cluster.start cluster;
    let target = Target.cluster cluster ~port in
    let handle = Loadgen.run ~clients ~requests ~request target in
    Loadgen.drive ~timeout:(Time.sec 3600) target handle;
    Cluster.check_failures cluster;
    report "3-replica cluster" (handle.Loadgen.collect ());
    match Cluster.outputs cluster with
    | (_, o1) :: rest ->
      let same = List.for_all (fun (_, o) -> Output_log.equal o1 o) rest in
      Printf.printf "  replica outputs identical: %b\n" same
    | [] -> ());
  0

let failover_cmd choice seed =
  let server, port = server_of choice in
  let rng = Rng.create (seed + 1) in
  let request = request_of choice rng in
  let cfg =
    { Instance.default_config with service_port = port; checkpoint_period = Time.sec 2 }
  in
  let cluster = Cluster.create ~seed ~cfg ~server () in
  Cluster.start ~checkpoints:true cluster;
  let eng = Cluster.engine cluster in
  let target = Target.cluster cluster ~port in
  let handle = Loadgen.run ~think:(Time.ms 50) ~clients:4 ~requests:400 ~request target in
  Engine.at eng (Time.sec 5) (fun () ->
      Printf.printf "[5s] killing primary\n";
      Cluster.kill cluster "replica1");
  Engine.at eng (Time.sec 12) (fun () ->
      Printf.printf "[12s] restarting replica1 from checkpoint\n";
      ignore (Cluster.restart cluster "replica1"));
  Loadgen.drive ~timeout:(Time.sec 600) target handle;
  Cluster.run ~until:(Engine.now eng + Time.sec 10) cluster;
  Cluster.check_failures cluster;
  report "failover run" (handle.Loadgen.collect ());
  (match Cluster.primary cluster with
  | Some (n, p) ->
    Printf.printf "primary now: %s (view %d)%s\n" n (Paxos.view p.Instance.paxos)
      (match Paxos.last_election_duration p.Instance.paxos with
      | Some d -> Printf.sprintf ", election took %s" (Time.to_string d)
      | None -> "")
  | None -> print_endline "no primary!");
  0

(* Run a workload with the flight recorder attached, export the trace
   (chrome://tracing JSON or JSONL) and print the aggregated metrics.
   Deterministic: the same seed yields a byte-identical trace file. *)
let trace_cmd choice mode clients requests seed format out =
  let server, port = server_of choice in
  let rng = Rng.create (seed + 1) in
  let request = request_of choice rng in
  let tr = Trace.create () in
  let run_workload target =
    let handle = Loadgen.run ~clients ~requests ~request target in
    Loadgen.drive ~timeout:(Time.sec 3600) target handle;
    handle.Loadgen.collect ()
  in
  let result =
    match mode with
    | Native | Parrot ->
      let m = if mode = Native then Standalone.Native else Standalone.Parrot in
      let sa = Standalone.boot ~seed ~mode:m ~trace:tr ~server () in
      let r = run_workload (Target.standalone sa ~port) in
      Standalone.check_failures sa;
      r
    | PaxosOnly | Crane | PlanII ->
      let cfg =
        { Instance.default_config with mode = imode_of mode; service_port = port;
          paxos = fast_paxos }
      in
      let cluster = Cluster.create ~seed ~cfg ~trace:tr ~server () in
      Cluster.start cluster;
      let r = run_workload (Target.cluster cluster ~port) in
      Cluster.check_failures cluster;
      r
  in
  report "traced run" result;
  let payload =
    match format with
    | `Chrome -> Trace.to_chrome tr
    | `Jsonl -> Trace.to_jsonl tr
  in
  (match open_out out with
  | oc ->
    output_string oc payload;
    close_out oc
  | exception Sys_error msg ->
    Printf.eprintf "crane: cannot write trace: %s\n" msg;
    exit 1);
  Printf.printf "trace: %d events (%d dropped beyond limit) -> %s\n"
    (Trace.length tr) (Trace.dropped tr) out;
  let met = Metrics.of_trace tr in
  Table.print ~title:"event counts" ~header:[ "event"; "count" ]
    (List.map (fun (n, v) -> [ n; string_of_int v ]) (Metrics.counters met));
  Table.print ~title:"virtual-time spans"
    ~header:[ "span"; "count"; "total"; "p50"; "p90"; "p99" ]
    (List.map
       (fun (n, s) ->
         [ n; string_of_int s.Metrics.count; Time.to_string s.Metrics.total;
           Time.to_string s.Metrics.p50; Time.to_string s.Metrics.p90;
           Time.to_string s.Metrics.p99 ])
       (Metrics.summaries met));
  0

(* Run the deterministic chaos suite (or one scenario): inject faults
   under load, check SMR invariants, print one report per scenario.
   Exits nonzero on any invariant violation.  The same seed + scenario
   always prints a byte-identical report. *)
let chaos_cmd scenario seed list =
  let module Chaos = Crane_chaos.Chaos in
  if list then begin
    print_endline "built-in chaos scenarios:";
    List.iter
      (fun s -> Printf.printf "  %-18s %s\n" s.Chaos.name s.Chaos.about)
      Chaos.scenarios;
    0
  end
  else
    let to_run =
      match scenario with
      | None -> Chaos.scenarios
      | Some name -> (
        match Chaos.find_scenario name with
        | Some s -> [ s ]
        | None ->
          Printf.eprintf "crane: unknown scenario %s (try --list)\n" name;
          exit 2)
    in
    let reports =
      List.map
        (fun s ->
          let r = Chaos.run ~seed s in
          print_string (Chaos.render_report r);
          print_newline ();
          r)
        to_run
    in
    let failed = List.filter (fun r -> not (Chaos.passed r)) reports in
    Table.print ~title:"chaos suite summary" ~header:[ "scenario"; "verdict" ]
      (List.map
         (fun r ->
           [ r.Chaos.r_scenario; (if Chaos.passed r then "PASS" else "FAIL") ])
         reports);
    if failed = [] then begin
      Printf.printf "\nall %d scenarios passed (seed %d)\n" (List.length reports) seed;
      0
    end
    else begin
      Printf.printf "\n%d of %d scenarios FAILED (seed %d)\n" (List.length failed)
        (List.length reports) seed;
      1
    end

let servers_cmd () =
  print_endline "available servers:";
  List.iter (fun (n, _) -> Printf.printf "  %s\n" n) all_servers;
  print_endline "modes: native parrot paxos-only crane plan2";
  0

(* ---- cmdliner plumbing ---- *)

let server_arg =
  let choice = Arg.enum all_servers in
  Arg.(value & opt choice Apache & info [ "server"; "s" ] ~doc:"Server program to run.")

let mode_arg =
  let choice = Arg.enum all_modes in
  Arg.(value & opt choice Crane & info [ "mode"; "m" ] ~doc:"Deployment mode.")

let clients_arg = Arg.(value & opt int 8 & info [ "clients"; "c" ] ~doc:"Concurrent clients.")
let requests_arg = Arg.(value & opt int 100 & info [ "requests"; "n" ] ~doc:"Total requests.")
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.")

let format_arg =
  let choice = Arg.enum [ ("chrome", `Chrome); ("jsonl", `Jsonl) ] in
  Arg.(value & opt choice `Chrome
       & info [ "format"; "f" ] ~doc:"Trace output format: chrome (trace_event JSON) or jsonl.")

let out_arg =
  Arg.(value & opt string "trace.json" & info [ "out"; "o" ] ~doc:"Trace output file.")

let scenario_arg =
  Arg.(value & opt (some string) None
       & info [ "scenario" ] ~doc:"Chaos scenario to run (default: the whole suite).")

let list_arg =
  Arg.(value & flag & info [ "list" ] ~doc:"List built-in chaos scenarios and exit.")

let run_term = Term.(const run_cmd $ server_arg $ mode_arg $ clients_arg $ requests_arg $ seed_arg)
let failover_term = Term.(const failover_cmd $ server_arg $ seed_arg)
let servers_term = Term.(const servers_cmd $ const ())

let chaos_term = Term.(const chaos_cmd $ scenario_arg $ seed_arg $ list_arg)

let trace_term =
  Term.(const trace_cmd $ server_arg $ mode_arg $ clients_arg $ requests_arg
        $ seed_arg $ format_arg $ out_arg)

let cmds =
  [
    Cmd.v (Cmd.info "run" ~doc:"Run a workload against a server in a chosen deployment mode.") run_term;
    Cmd.v (Cmd.info "failover" ~doc:"Kill the primary under load, recover from a checkpoint.") failover_term;
    Cmd.v (Cmd.info "chaos" ~doc:"Run the deterministic fault-injection suite and check SMR invariants.") chaos_term;
    Cmd.v (Cmd.info "trace" ~doc:"Run a workload with the flight recorder on; export the trace and metrics.") trace_term;
    Cmd.v (Cmd.info "servers" ~doc:"List available servers and modes.") servers_term;
  ]

let () =
  let info = Cmd.info "crane" ~doc:"CRANE: transparent state machine replication (simulated)." in
  exit (Cmd.eval' (Cmd.group info cmds))
