(* Tests for the deterministic chaos harness: every built-in scenario must
   pass its invariants, same-seed runs must produce byte-identical
   reports, and the fault primitives it leans on (torn WAL tails, loadgen
   retries, output-log suffix comparison) behave as specified. *)

module Time = Crane_sim.Time
module Engine = Crane_sim.Engine
module Wal = Crane_storage.Wal
module Paxos = Crane_paxos.Paxos
module Instance = Crane_core.Instance
module Cluster = Crane_core.Cluster
module Output_log = Crane_core.Output_log
module Target = Crane_workload.Target
module Loadgen = Crane_workload.Loadgen
module Chaos = Crane_chaos.Chaos
module Ledger = Crane_chaos.Ledger

let violations r =
  List.filter_map
    (fun (name, v) -> Option.map (fun d -> name ^ ": " ^ d) v)
    r.Chaos.invariants

(* Every built-in scenario passes every invariant.  This is the
   acceptance bar for the harness: each fault kind (crash primary, crash
   backup, torn WAL, symmetric and asymmetric partition, loss window,
   latency spike, probabilistic mix) plus the composed
   partition-heal-crash-restart scenario. *)
let test_scenario name () =
  match Chaos.find_scenario name with
  | None -> Alcotest.failf "unknown scenario %s" name
  | Some s ->
    let r = Chaos.run ~seed:13 s in
    Alcotest.(check (list string))
      (name ^ " invariants hold") [] (violations r)

(* Two runs with the same seed render byte-identical reports; a different
   seed must not (jitter shifts the virtual-time stamps). *)
let test_determinism () =
  let s = Option.get (Chaos.find_scenario "composed") in
  let a = Chaos.render_report (Chaos.run ~seed:5 s) in
  let b = Chaos.render_report (Chaos.run ~seed:5 s) in
  Alcotest.(check string) "same seed, same bytes" a b;
  let c = Chaos.render_report (Chaos.run ~seed:6 s) in
  Alcotest.(check bool) "different seed differs" true (a <> c)

(* The probabilistic schedule is a pure function of the seed too. *)
let test_random_determinism () =
  let s = Option.get (Chaos.find_scenario "random") in
  let a = Chaos.render_report (Chaos.run ~seed:21 s) in
  let b = Chaos.render_report (Chaos.run ~seed:21 s) in
  Alcotest.(check string) "random schedule replays" a b

(* A crash mid-append leaves exactly one torn partial tail; intact
   records survive, in-flight continuations never fire. *)
let test_wal_torn_tail () =
  let eng = Engine.create () in
  let wal = Wal.create eng ~name:"w" in
  let stable = ref [] in
  Wal.append_async wal "alpha" (fun () -> stable := "alpha" :: !stable);
  Engine.run eng;
  Wal.append_async wal "beta" (fun () -> stable := "beta" :: !stable);
  Wal.append_async wal "gamma" (fun () -> stable := "gamma" :: !stable);
  (* crash before the writes complete *)
  Alcotest.(check bool) "torn tail produced" true (Wal.crash_torn_tail wal);
  Engine.run eng;
  Alcotest.(check (list string)) "only alpha stable" [ "alpha" ] (List.rev !stable);
  Alcotest.(check (list string)) "intact records" [ "alpha" ] (Wal.records wal);
  (match Wal.entries wal with
  | [ a; t ] ->
    Alcotest.(check bool) "first intact" false a.Wal.torn;
    Alcotest.(check bool) "tail torn" true t.Wal.torn;
    Alcotest.(check string) "tail is a beta prefix" (String.sub "beta" 0 2) t.Wal.data
  | l -> Alcotest.failf "expected 2 entries, got %d" (List.length l));
  Alcotest.(check bool) "no second tail without inflight writes" false
    (Wal.crash_torn_tail wal)

(* End-to-end torn-tail recovery: crash the primary mid-append, restart
   it, and check recovery discarded the torn record, clamped to the
   stable prefix, and refilled the gap through catch-up. *)
let test_torn_recovery_refill () =
  let cluster =
    Cluster.create ~seed:17 ~cfg:Chaos.chaos_config ~server:Ledger.server ()
  in
  Cluster.start cluster;
  let eng = Cluster.engine cluster in
  Cluster.run ~until:(Time.ms 200) cluster;
  let target = Target.cluster cluster ~port:80 in
  let ledger = Ledger.client () in
  let handle =
    Loadgen.run ~name:"load" ~think:(Time.ms 20) ~retries:6
      ~retry_backoff:(Time.ms 100) ~clients:2 ~requests:40
      ~request:(Ledger.request ledger) target
  in
  Engine.at eng (Time.ms 600) (fun () ->
      (* Make sure an append is mid-flight at the crash instant so the
         crash deterministically leaves a torn tail (the WAL write window
         is only 15us wide otherwise). *)
      Wal.append_async (Hashtbl.find cluster.Cluster.wals "replica1") "mid-write"
        (fun () -> ());
      Cluster.kill ~wal_torn:true cluster "replica1");
  Engine.at eng (Time.ms 1800) (fun () -> ignore (Cluster.restart cluster "replica1"));
  Loadgen.drive ~timeout:(Time.sec 60) target handle;
  Cluster.run ~until:(Engine.now eng + Time.sec 3) cluster;
  Cluster.check_failures cluster;
  let r1 =
    match Cluster.instance cluster "replica1" with
    | Some i -> i
    | None -> Alcotest.fail "replica1 did not restart"
  in
  let p1 = r1.Instance.paxos in
  Alcotest.(check bool) "torn record discarded" true ((Paxos.stats p1).Paxos.wal_torn_discarded >= 1);
  Alcotest.(check bool) "catch-up refilled the gap" true ((Paxos.stats p1).Paxos.catchup_installed > 0);
  let committed = List.map (fun (_, i) -> Paxos.committed i.Instance.paxos)
      (Cluster.instances cluster) in
  (match committed with
  | c :: rest -> List.iter (Alcotest.(check int) "committed converged" c) rest
  | [] -> Alcotest.fail "no instances");
  let r = handle.Loadgen.collect () in
  Alcotest.(check int) "no hard client errors" 0 r.Loadgen.errors

(* Loadgen retry accounting: transient failures are retried with
   deterministic backoff and counted separately from hard errors. *)
let test_loadgen_retries () =
  let eng = Engine.create () in
  let fabric = Crane_net.Fabric.create eng (Crane_sim.Rng.create 3) in
  let target =
    { Target.eng; world = Crane_socket.Sock.world fabric; port = 0;
      pick_node = (fun () -> "x"); fallbacks = (fun () -> [ "x" ]) }
  in
  (* fails twice, then succeeds — per request *)
  let tries = Hashtbl.create 8 in
  let flaky _target ~from =
    let n = try Hashtbl.find tries from with Not_found -> 0 in
    Hashtbl.replace tries from (n + 1);
    if n mod 3 < 2 then None else Some "ok"
  in
  let h = Loadgen.run ~retries:3 ~retry_backoff:(Time.ms 10) ~clients:1 ~requests:4
      ~request:flaky target in
  Engine.run eng;
  let r = h.Loadgen.collect () in
  Alcotest.(check int) "all succeed after retries" 4 (List.length r.Loadgen.latencies);
  Alcotest.(check int) "retries counted" 8 r.Loadgen.retries;
  Alcotest.(check int) "no hard errors" 0 r.Loadgen.errors;
  (* without retries the same flakiness is a hard error *)
  Hashtbl.reset tries;
  let h0 = Loadgen.run ~clients:1 ~requests:3 ~request:flaky target in
  Engine.run eng;
  let r0 = h0.Loadgen.collect () in
  Alcotest.(check int) "hard errors without retries" 2 r0.Loadgen.errors;
  Alcotest.(check int) "no retries by default" 0 r0.Loadgen.retries

(* Output_log.is_suffix: the restarted-replica comparison. *)
let test_output_suffix () =
  let full = Output_log.create () and tail = Output_log.create () in
  Output_log.record full ~conn:1 "a";
  Output_log.record full ~conn:1 "b";
  Output_log.record full ~conn:2 "c";
  Output_log.record tail ~conn:1 "b";
  Output_log.record tail ~conn:2 "c";
  Alcotest.(check bool) "tail is a suffix" true (Output_log.is_suffix ~of_:full tail);
  Alcotest.(check bool) "full is not a suffix of tail" false
    (Output_log.is_suffix ~of_:tail full);
  Alcotest.(check bool) "equal logs are suffixes" true
    (Output_log.is_suffix ~of_:full full);
  let diverged = Output_log.create () in
  Output_log.record diverged ~conn:1 "b";
  Output_log.record diverged ~conn:2 "X";
  Alcotest.(check bool) "diverged tail rejected" false
    (Output_log.is_suffix ~of_:full diverged)

let suite =
  [
    ( "chaos",
      List.map
        (fun s -> Alcotest.test_case s.Chaos.name `Slow (test_scenario s.Chaos.name))
        Chaos.scenarios
      @ [
          Alcotest.test_case "same-seed reports byte-identical" `Slow test_determinism;
          Alcotest.test_case "probabilistic schedule deterministic" `Slow
            test_random_determinism;
          Alcotest.test_case "wal torn tail" `Quick test_wal_torn_tail;
          Alcotest.test_case "torn-tail recovery + catch-up refill" `Slow
            test_torn_recovery_refill;
          Alcotest.test_case "loadgen retry accounting" `Quick test_loadgen_retries;
          Alcotest.test_case "output-log suffix" `Quick test_output_suffix;
        ] );
  ]
