(* Tests for Crane-MC: the Wing–Gong linearizability checker on known
   histories (including bounded-stale backup reads), the certifier's
   vacuous verdict on window-free traces, and the schedule explorer
   itself — clean configs explore to their bound with no violation, DPOR
   prunes against the naive enumeration, and both reintroduced paxos
   bugs are killed with a counterexample that replays. *)

module Mc = Crane_analysis.Mc
module Linearize = Crane_analysis.Linearize
module Certifier = Crane_analysis.Certifier

let contains s ~sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let ev who op mode inv resp res =
  { Linearize.who; op; mode; inv; resp; res }

let appd ?(mode = Linearize.Strict) who id inv resp =
  ev who (Linearize.Append id) mode inv (Some resp) (Some Linearize.Ack)

let get ?(mode = Linearize.Strict) who ids inv resp =
  ev who Linearize.Get mode inv (Some resp) (Some (Linearize.Ids ids))

let check_linear history =
  match Linearize.check history with
  | Linearize.Linear order -> order
  | Linearize.Violation m -> Alcotest.failf "expected linearizable, got: %s" m

let check_violation history =
  match Linearize.check history with
  | Linearize.Violation m -> m
  | Linearize.Linear order ->
    Alcotest.failf "expected a violation, got linear order [%s]"
      (String.concat " " order)

(* ------------------------------------------------------------------ *)
(* Linearizability primitives *)

(* Two overlapping appends can linearize in whichever order matches the
   read that observed them both. *)
let test_linearize_ok () =
  let order =
    check_linear
      [
        appd "c1" "a" 0 10;
        appd "c2" "b" 5 15;
        get "c1" [ "b"; "a" ] 20 30;
      ]
  in
  Alcotest.(check (list string)) "read's order wins" [ "b"; "a" ] order

(* Real-time order: an append acked before the read was invoked must be
   visible to it.  A strict read returning [] is a lost write. *)
let test_linearize_realtime_violation () =
  let m = check_violation [ appd "c1" "a" 0 10; get "c1" [] 20 30 ] in
  Alcotest.(check bool) "diagnostic mentions the op count" true
    (String.length m > 0)

(* An append whose response never arrived is pending: the checker may
   place it (the read saw it) or drop it entirely — both must pass. *)
let test_linearize_pending_append () =
  let pending id inv =
    ev "c1" (Linearize.Append id) Linearize.Strict inv None None
  in
  let seen =
    check_linear [ pending "a" 0; get "c2" [ "a" ] 20 30 ]
  in
  Alcotest.(check (list string)) "placed before the read" [ "a" ] seen;
  let dropped = check_linear [ pending "a" 0; get "c2" [] 20 30 ] in
  Alcotest.(check (list string)) "droppable" [] dropped

(* A backup read declaring staleness <= 1 may miss the single most
   recent acked write... *)
let test_linearize_stale_within_bound () =
  ignore
    (check_linear
       [
         appd "c1" "a" 0 10;
         appd "c1" "b" 20 30;
         get ~mode:(Linearize.Stale 1) "c2" [ "a" ] 40 45;
       ])

(* ...but missing two writes acked before it began exceeds the declared
   bound and must be rejected. *)
let test_linearize_stale_over_bound () =
  let m =
    check_violation
      [
        appd "c1" "a" 0 10;
        appd "c1" "b" 20 30;
        get ~mode:(Linearize.Stale 1) "c2" [] 40 45;
      ]
  in
  Alcotest.(check bool) "names the staleness bound" true
    (contains m ~sub:"staleness <= 1")

(* A stale read must still be a prefix of the write order: observing the
   second write without the first is reordering, not staleness. *)
let test_linearize_stale_non_prefix () =
  let m =
    check_violation
      [
        appd "c1" "a" 0 10;
        appd "c1" "b" 20 30;
        get ~mode:(Linearize.Stale 5) "c2" [ "b" ] 40 45;
      ]
  in
  Alcotest.(check bool) "names the prefix rule" true
    (contains m ~sub:"prefix")

(* ------------------------------------------------------------------ *)
(* Certifier: vacuous verdict *)

(* A trace with no execute windows checked nothing; the verdict must say
   so rather than claim conflict-serializability. *)
let test_certifier_vacuous () =
  let r = Certifier.check_events ~resolve_node:(fun e -> e.Crane_trace.Trace.node) [] in
  Alcotest.(check int) "no windows" 0 r.Certifier.windows;
  Alcotest.(check bool) "no violations either" true (r.Certifier.violations = []);
  Alcotest.(check bool) "verdict is vacuous" true
    (contains (Certifier.render r) ~sub:"vacuously certified")

(* ------------------------------------------------------------------ *)
(* Schedule exploration *)

let tiny max_branch =
  {
    Mc.default with
    Mc.clients = 1;
    writes = 1;
    reads = 0;
    max_branch;
    max_runs = 500;
  }

(* The clean single-client config explores its whole bounded tree with
   no invariant violation. *)
let test_mc_clean_explores_to_bound () =
  let o = Mc.explore (tiny 4) in
  Alcotest.(check bool) "complete" true o.Mc.o_complete;
  (match o.Mc.o_violation with
  | None -> ()
  | Some v -> Alcotest.failf "clean config violated %s" v.Mc.v_invariant);
  Alcotest.(check bool) "explored more than one schedule" true (o.Mc.o_runs > 1)

(* DPOR must visit strictly fewer schedules than the naive enumeration
   of the same tree, and agree with it on the (absence of a) verdict. *)
let test_mc_dpor_prunes () =
  let dpor = Mc.explore (tiny 4) in
  let naive = Mc.explore { (tiny 4) with Mc.dpor = false } in
  Alcotest.(check bool) "both complete" true
    (dpor.Mc.o_complete && naive.Mc.o_complete);
  Alcotest.(check bool) "both clean" true
    (dpor.Mc.o_violation = None && naive.Mc.o_violation = None);
  Alcotest.(check bool)
    (Printf.sprintf "dpor (%d) prunes naive (%d)" dpor.Mc.o_runs naive.Mc.o_runs)
    true
    (dpor.Mc.o_runs < naive.Mc.o_runs)

(* Each reintroduced paxos bug must be found within its preset's bounds,
   and the recorded counterexample must replay to the same invariant
   violation with the fault on — and to none with the fault off (the
   explorer only accepts discriminating counterexamples). *)
let mutation_killed m =
  let cfg = Mc.mutation_preset m in
  let o = Mc.explore_mutated cfg in
  match o.Mc.o_violation with
  | None -> Alcotest.failf "%s not killed" (Mc.mutation_name m)
  | Some v ->
    let path =
      Filename.temp_file ("crane_mc_" ^ Mc.mutation_name m) ".trace"
    in
    Mc.write_trace cfg v path;
    let _, expect, verdict = Mc.replay path in
    Alcotest.(check string) "trace expects the found invariant"
      v.Mc.v_invariant expect;
    (match verdict with
    | Some (inv, _) ->
      Alcotest.(check string) "replay reproduces it" expect inv
    | None -> Alcotest.fail "replay found no violation");
    let _, _, fixed_verdict = Mc.replay_with ~mutation:Mc.No_mutation path in
    Alcotest.(check bool) "fixed code is clean on the same schedule" true
      (fixed_verdict = None);
    Sys.remove path

let test_mc_kills_hole_backfill () = mutation_killed Mc.Hole_backfill
let test_mc_kills_dup_accept () = mutation_killed Mc.Dup_accept

let suite =
  [
    ( "mc",
      [
        Alcotest.test_case "linearize: interleaved appends" `Quick
          test_linearize_ok;
        Alcotest.test_case "linearize: lost write rejected" `Quick
          test_linearize_realtime_violation;
        Alcotest.test_case "linearize: pending append place-or-drop" `Quick
          test_linearize_pending_append;
        Alcotest.test_case "linearize: stale read within bound" `Quick
          test_linearize_stale_within_bound;
        Alcotest.test_case "linearize: stale read over bound rejected" `Quick
          test_linearize_stale_over_bound;
        Alcotest.test_case "linearize: stale read must be a prefix" `Quick
          test_linearize_stale_non_prefix;
        Alcotest.test_case "certifier: vacuous without windows" `Quick
          test_certifier_vacuous;
        Alcotest.test_case "explore: clean config to bound" `Slow
          test_mc_clean_explores_to_bound;
        Alcotest.test_case "explore: dpor prunes naive" `Slow
          test_mc_dpor_prunes;
        Alcotest.test_case "mutation: hole-backfill killed" `Slow
          test_mc_kills_hole_backfill;
        Alcotest.test_case "mutation: dup-accept killed" `Slow
          test_mc_kills_dup_accept;
      ] );
  ]
