(* Tests for the read fast path: heartbeat-anchored leader leases at the
   raw PAXOS level (grant, expiry, revocation on demote and during
   reconfiguration), and the proxy read port end-to-end — lease reads on
   the primary, bounded-stale watermarked reads on backups, and write
   outputs staying byte-identical with the fast path on vs off. *)

module Time = Crane_sim.Time
module Rng = Crane_sim.Rng
module Engine = Crane_sim.Engine
module Fabric = Crane_net.Fabric
module Sock = Crane_socket.Sock
module Wal = Crane_storage.Wal
module Paxos = Crane_paxos.Paxos
module Api = Crane_core.Api
module Proxy = Crane_core.Proxy
module Instance = Crane_core.Instance
module Cluster = Crane_core.Cluster
module Output_log = Crane_core.Output_log
module Target = Crane_workload.Target
module Loadgen = Crane_workload.Loadgen
module Ledger = Crane_chaos.Ledger

(* ------------------------------------------------------------------ *)
(* Raw-paxos harness (test_reconfig's shape). *)

type node_rec = { n_name : string; n_p : Paxos.t; n_group : Engine.group }

type sim = {
  eng : Engine.t;
  fabric : Fabric.t;
  mutable nodes : node_rec list;
  wals : (string, Wal.t) Hashtbl.t;
}

let fast_config =
  {
    Paxos.heartbeat_period = Time.ms 100;
    election_timeout = Time.ms 300;
    election_jitter = Time.ms 50;
    round_retry = Time.ms 100;
    compaction_threshold = Paxos.default_config.compaction_threshold;
    catchup_chunk = Paxos.default_config.catchup_chunk;
    suspect_timeout = Time.ms 450;
    lease_duration = Time.ms 150;
  }

let boot_members = [ "n1"; "n2"; "n3" ]

let make_sim ?(seed = 7) () =
  let eng = Engine.create () in
  let fabric = Fabric.create eng (Rng.create seed) in
  { eng; fabric; nodes = []; wals = Hashtbl.create 4 }

let add_node ?(members = boot_members) sim name =
  let wal =
    match Hashtbl.find_opt sim.wals name with
    | Some w -> w
    | None ->
      let w = Wal.create sim.eng ~name in
      Hashtbl.add sim.wals name w;
      w
  in
  let group = Engine.new_group sim.eng in
  let rng = Rng.create (Hashtbl.hash name) in
  let p =
    Paxos.create ~config:fast_config ~fabric:sim.fabric ~rng ~wal ~members ~node:name
      ~group ()
  in
  Paxos.start p ();
  Fabric.node_up sim.fabric name;
  let nr = { n_name = name; n_p = p; n_group = group } in
  sim.nodes <- sim.nodes @ [ nr ];
  nr

let start_cluster ?seed () =
  let sim = make_sim ?seed () in
  let nodes = List.map (fun n -> add_node sim n) boot_members in
  (sim, nodes)

let find_primary sim = List.find_opt (fun nr -> Paxos.is_primary nr.n_p) sim.nodes

let kill_node sim name =
  match List.find_opt (fun nr -> nr.n_name = name) sim.nodes with
  | Some nr ->
    Engine.kill_group sim.eng nr.n_group;
    Fabric.node_down sim.fabric name;
    sim.nodes <- List.filter (fun nr -> nr.n_name <> name) sim.nodes
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Lease lifecycle at the raw PAXOS level. *)

let test_lease_granted_to_stable_primary () =
  let sim, _ = start_cluster () in
  Engine.run ~until:(Time.sec 1) sim.eng;
  match find_primary sim with
  | None -> Alcotest.fail "no primary after 1 s"
  | Some pr ->
    Alcotest.(check bool) "stable primary holds a valid lease" true
      (Paxos.lease_valid pr.n_p);
    Alcotest.(check bool) "at least one grant recorded" true
      ((Paxos.stats pr.n_p).Paxos.leases_held >= 1);
    List.iter
      (fun nr ->
        if nr.n_name <> pr.n_name then
          Alcotest.(check bool) (nr.n_name ^ " backup holds no lease") false
            (Paxos.lease_valid nr.n_p))
      sim.nodes

let test_lease_expires_without_ack_quorum () =
  let sim, _ = start_cluster () in
  let the_primary = ref None in
  Engine.at sim.eng (Time.sec 1) (fun () ->
      match find_primary sim with
      | None -> ()
      | Some pr ->
        the_primary := Some pr;
        Alcotest.(check bool) "lease valid before the backups die" true
          (Paxos.lease_valid pr.n_p);
        (* Kill both backups: heartbeats go unacknowledged, so the lease
           must lapse within lease_duration of the last granted round. *)
        List.iter
          (fun nr -> if nr.n_name <> pr.n_name then kill_node sim nr.n_name)
          sim.nodes);
  Engine.run ~until:(Time.ms 1600) sim.eng;
  match !the_primary with
  | None -> Alcotest.fail "no primary at 1 s"
  | Some pr ->
    Alcotest.(check bool) "lease lapsed with no ack quorum" false
      (Paxos.lease_valid pr.n_p)

(* Partition the lease holder away: a new primary must be elected and
   take over the lease, the old one must lose it — and at no sampled
   instant may two nodes hold a valid lease at once (the whole safety
   claim of lease reads). *)
let test_lease_exclusive_across_view_change () =
  let sim, _ = start_cluster () in
  let old_primary = ref None in
  let double_lease = ref None in
  let rec sampler () =
    Engine.after sim.eng (Time.ms 10) (fun () ->
        (match
           List.filter (fun nr -> Paxos.lease_valid nr.n_p) sim.nodes
         with
        | _ :: _ :: _ when !double_lease = None ->
          double_lease := Some (Time.to_string (Engine.now sim.eng))
        | _ -> ());
        if Engine.now sim.eng < Time.sec 3 then sampler ())
  in
  sampler ();
  Engine.at sim.eng (Time.sec 1) (fun () ->
      match find_primary sim with
      | None -> ()
      | Some pr ->
        old_primary := Some pr;
        let rest =
          List.filter (fun n -> n <> pr.n_name) (List.map (fun nr -> nr.n_name) sim.nodes)
        in
        Fabric.partition sim.fabric [ pr.n_name ] rest);
  (* Mid-partition: the majority side must have elected a new primary
     that took over the lease, and the isolated ex-primary's lease must
     have lapsed (it cannot renew without an ack quorum). *)
  Engine.at sim.eng (Time.sec 2) (fun () ->
      match !old_primary with
      | None -> ()
      | Some old ->
        Alcotest.(check bool) "isolated ex-primary's lease lapsed" false
          (Paxos.lease_valid old.n_p);
        let fresh =
          List.find_opt
            (fun nr -> nr.n_name <> old.n_name && Paxos.is_primary nr.n_p)
            sim.nodes
        in
        (match fresh with
        | None -> Alcotest.fail "majority side elected no primary"
        | Some pr ->
          Alcotest.(check bool) "new primary took over the lease" true
            (Paxos.lease_valid pr.n_p)));
  Engine.at sim.eng (Time.ms 2200) (fun () -> Fabric.heal sim.fabric);
  Engine.run ~until:(Time.sec 3) sim.eng;
  Alcotest.(check (option string)) "never two valid leases at once" None !double_lease;
  if !old_primary = None then Alcotest.fail "no primary at 1 s";
  (match find_primary sim with
  | None -> Alcotest.fail "no primary after heal"
  | Some pr ->
    Alcotest.(check bool) "settled primary holds the lease" true
      (Paxos.lease_valid pr.n_p);
    List.iter
      (fun nr ->
        if nr.n_name <> pr.n_name then
          Alcotest.(check bool) (nr.n_name ^ " holds no lease after heal") false
            (Paxos.lease_valid nr.n_p))
      sim.nodes)

(* A pending reconfiguration suspends the lease (reads could straddle
   the joint-quorum window); activation revokes it, and the next
   heartbeat round under the new epoch re-grants. *)
let test_reconfig_suspends_then_regrants_lease () =
  let sim, nodes = start_cluster () in
  let p1 = (List.hd nodes).n_p in
  let grown = boot_members @ [ "n4" ] in
  Engine.spawn sim.eng ~name:"admin" (fun () ->
      Engine.sleep sim.eng (Time.sec 1);
      Alcotest.(check bool) "lease valid before the reconfig" true
        (Paxos.lease_valid p1);
      (match Paxos.submit_reconfig p1 grown with
      | Some _ -> ()
      | None -> Alcotest.fail "primary refused a valid reconfig");
      Alcotest.(check bool) "lease suspended while the change is pending" false
        (Paxos.lease_valid p1);
      while Paxos.epoch p1 < 1 do
        Engine.sleep sim.eng (Time.ms 20)
      done;
      ignore (add_node ~members:grown sim "n4"));
  Engine.run ~until:(Time.sec 3) sim.eng;
  Alcotest.(check int) "epoch advanced" 1 (Paxos.epoch p1);
  Alcotest.(check bool) "lease re-granted under the new epoch" true
    (Paxos.lease_valid p1)

(* ------------------------------------------------------------------ *)
(* End-to-end through the proxy read port (cluster level). *)

let cluster_cfg =
  { Instance.default_config with mode = Instance.Paxos_only; paxos = fast_config }

(* A single-node read-port target (no failover: the test wants to know
   exactly which replica answered). *)
let node_target cluster node =
  {
    Target.eng = Cluster.engine cluster;
    world = Cluster.world cluster;
    port = cluster_cfg.Instance.read_port;
    pick_node = (fun () -> node);
    fallbacks = (fun () -> [ node ]);
  }

let served = function
  | Some (Proxy.Served r) -> r
  | Some Proxy.Rejected -> Alcotest.fail "fast read rejected"
  | Some Proxy.Write_required -> Alcotest.fail "GET classified as a write"
  | None -> Alcotest.fail "fast read transport failure"

let test_lease_and_backup_reads_end_to_end () =
  let cluster = Cluster.create ~seed:9 ~cfg:cluster_cfg ~server:Ledger.server () in
  Cluster.start ~checkpoints:false cluster;
  let eng = Cluster.engine cluster in
  let target = Target.cluster cluster ~port:80 in
  let ledger = Ledger.client () in
  Engine.spawn eng ~name:"driver" (fun () ->
      Engine.sleep eng (Time.ms 600);
      let primary () =
        match Cluster.primary_node cluster with
        | Some p -> p
        | None -> Alcotest.fail "no primary"
      in
      let backup () =
        match Cluster.backup_nodes cluster with
        | b :: _ -> b
        | [] -> Alcotest.fail "no backup"
      in
      let wm_seen = Hashtbl.create 4 in
      for i = 1 to 8 do
        (match Ledger.request ledger target ~from:"t" with
        | Some _ -> ()
        | None -> Alcotest.fail (Printf.sprintf "PUT %d failed" i));
        (* Linearizable read on the lease holder: every acked write must
           already be visible. *)
        let r = served (Ledger.fast_get (node_target cluster (primary ())) ~from:"t") in
        Alcotest.(check bool) "primary served in lease mode" true
          (r.Proxy.mode = `Lease);
        let ids = Ledger.ids_of_reply r.Proxy.value in
        List.iter
          (fun id ->
            Alcotest.(check bool) (id ^ " visible to the lease read") true
              (List.mem id ids))
          (Ledger.acked_ids ledger);
        (* Bounded-stale read on a backup: watermark monotone per node,
           content within the acked set (prefix property is checked by
           the chaos invariant; here we pin the mode and the watermark). *)
        let b = backup () in
        let rb = served (Ledger.fast_get (node_target cluster b) ~from:"t") in
        (match rb.Proxy.mode with
        | `Backup stale -> Alcotest.(check bool) "staleness non-negative" true (stale >= 0)
        | `Lease -> Alcotest.fail "backup answered in lease mode");
        (match Hashtbl.find_opt wm_seen b with
        | Some prev ->
          Alcotest.(check bool) "backup watermark monotone" true
            (rb.Proxy.watermark >= prev)
        | None -> ());
        Hashtbl.replace wm_seen b rb.Proxy.watermark;
        Engine.sleep eng (Time.ms 30)
      done);
  Cluster.run ~until:(Time.sec 4) cluster;
  Cluster.check_failures cluster;
  (* The proxies actually counted fast-path traffic. *)
  let sum f =
    List.fold_left
      (fun acc (_, inst) -> acc + f (Proxy.stats inst.Instance.proxy))
      0 (Cluster.instances cluster)
  in
  Alcotest.(check bool) "lease reads served" true
    (sum (fun s -> s.Proxy.lease_reads) >= 8);
  Alcotest.(check bool) "backup reads served" true
    (sum (fun s -> s.Proxy.backup_reads) >= 8)

(* Toggling the fast path must not perturb the consensus write path:
   same seed, same write-only workload, byte-identical per-replica
   output logs with the read port on vs off. *)
let test_write_outputs_identical_fastpath_on_off () =
  let run_once ~fastpath =
    let cfg = { cluster_cfg with Instance.read_fastpath = fastpath } in
    let cluster = Cluster.create ~seed:11 ~cfg ~server:Ledger.server () in
    Cluster.start ~checkpoints:false cluster;
    let target = Target.cluster cluster ~port:80 in
    let ledger = Ledger.client () in
    let handle =
      Loadgen.run ~name:"w" ~seed:11 ~think:(Time.ms 10) ~retries:4
        ~retry_backoff:(Time.ms 100) ~clients:3 ~requests:30
        ~request:(Ledger.request ledger) target
    in
    Loadgen.drive ~timeout:(Time.sec 60) target handle;
    Cluster.run ~until:(Engine.now (Cluster.engine cluster) + Time.ms 500) cluster;
    Cluster.check_failures cluster;
    List.sort compare
      (List.map
         (fun (n, o) -> (n, Output_log.render ~strip_times:false o))
         (Cluster.outputs cluster))
  in
  let on = run_once ~fastpath:true in
  let off = run_once ~fastpath:false in
  Alcotest.(check (list (pair string string)))
    "write outputs byte-identical with the fast path on vs off" off on

(* Regression: an abruptly killed client (thread death, no FIN, no Close
   through consensus) with admissions still in flight must not pin the
   read watermark.  Per-connection in-flight tracking has to drain on
   the worker's own quiescence/close paths, or every later backup read
   stays conservatively stale forever. *)
let test_watermark_advances_past_killed_client () =
  let cfg =
    { cluster_cfg with Instance.mode = Instance.Full; pool_workers = 4 }
  in
  let cluster = Cluster.create ~seed:13 ~cfg ~server:Ledger.server () in
  Cluster.start ~checkpoints:false cluster;
  let eng = Cluster.engine cluster in
  let target = Target.cluster cluster ~port:80 in
  let victim_group = Engine.new_group eng in
  (* Victim: fire-and-forget PUT burst, never reads replies. *)
  Engine.spawn eng ~group:victim_group ~name:"victim" (fun () ->
      Engine.sleep eng (Time.ms 600);
      match Target.connect target ~from:"victim" with
      | None -> ()
      | Some conn ->
        for i = 1 to 200 do
          (try Sock.send conn (Printf.sprintf "PUT v%d\n" i)
           with Sock.Connection_closed -> ());
          Engine.sleep eng (Time.ms 1)
        done);
  let committed_at_kill = ref (-1) in
  Engine.at eng (Time.ms 650) (fun () ->
      (* Mid-burst, with admitted-but-unretired commands on the wire. *)
      Engine.kill_group eng victim_group;
      match Cluster.primary cluster with
      | Some (_, inst) ->
        committed_at_kill := Paxos.committed inst.Instance.paxos
      | None -> ());
  let ledger = Ledger.client () in
  let final_wm = ref (-1) in
  Engine.spawn eng ~name:"survivor" (fun () ->
      Engine.sleep eng (Time.ms 800);
      for i = 1 to 6 do
        (match Ledger.request ledger target ~from:"surv" with
        | Some _ -> ()
        | None -> Alcotest.fail (Printf.sprintf "post-kill PUT %d failed" i));
        Engine.sleep eng (Time.ms 30)
      done;
      Engine.sleep eng (Time.ms 400);
      let b =
        match Cluster.backup_nodes cluster with
        | b :: _ -> b
        | [] -> Alcotest.fail "no backup"
      in
      let r = served (Ledger.fast_get (node_target cluster b) ~from:"surv") in
      final_wm := r.Proxy.watermark);
  Cluster.run ~until:(Time.ms 2800) cluster;
  Cluster.check_failures cluster;
  if !committed_at_kill < 0 then Alcotest.fail "no primary at kill time";
  if !final_wm < 0 then Alcotest.fail "backup read never answered";
  Alcotest.(check bool)
    (Printf.sprintf "watermark %d advanced past kill-time commit %d"
       !final_wm !committed_at_kill)
    true
    (!final_wm > !committed_at_kill)

let suite =
  [
    ( "reads",
      [
        Alcotest.test_case "lease granted to stable primary" `Quick
          test_lease_granted_to_stable_primary;
        Alcotest.test_case "lease expires without ack quorum" `Quick
          test_lease_expires_without_ack_quorum;
        Alcotest.test_case "lease exclusive across view change" `Quick
          test_lease_exclusive_across_view_change;
        Alcotest.test_case "reconfig suspends then regrants lease" `Quick
          test_reconfig_suspends_then_regrants_lease;
        Alcotest.test_case "lease and backup reads end to end" `Quick
          test_lease_and_backup_reads_end_to_end;
        Alcotest.test_case "write outputs identical fastpath on/off" `Quick
          test_write_outputs_identical_fastpath_on_off;
        Alcotest.test_case "watermark advances past killed client" `Quick
          test_watermark_advances_past_killed_client;
      ] );
  ]
