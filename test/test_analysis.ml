(* Tests for Crane-San: the happens-before race engine, the lock-order
   lint, and the determinism certifier.

   The seeded-race target covers the end-to-end path (instrumented
   runtimes -> trace -> monitor).  The primitive-level tests drive
   Pthread/DMT sync objects directly and emit memory events by hand
   around raw shared state, checking that each primitive contributes the
   happens-before edges the monitor relies on. *)

module Time = Crane_sim.Time
module Rng = Crane_sim.Rng
module Engine = Crane_sim.Engine
module Trace = Crane_trace.Trace
module Pthread = Crane_pthread.Pthread
module Dmt = Crane_dmt.Dmt
module Hb = Crane_analysis.Hb
module Driver = Crane_analysis.Driver

let check_no_failures eng =
  match Engine.failures eng with
  | [] -> ()
  | (name, e) :: _ ->
    Alcotest.failf "thread %s failed: %s" name (Printexc.to_string e)

(* A monitored engine: trace recorder (no retained buffer) with the HB
   monitor attached as a streaming sink. *)
let monitored () =
  let eng = Engine.create () in
  let tr = Trace.create ~retain:false () in
  Engine.set_trace eng tr;
  let mon = Hb.create () in
  Hb.attach mon tr;
  (eng, tr, mon)

(* Hand-emitted memory access, standing in for the R.cell wrappers when
   a test drives the runtime primitives directly. *)
let mem tr eng op ~loc ~site =
  Trace.instant tr ~ts:(Engine.now eng) ~tid:(Engine.self_tid eng) ~cat:"mem"
    ~name:op
    [ ("loc", Trace.Int loc); ("site", Trace.Str site) ]

let races_on (r : Hb.report) site =
  List.filter (fun (x : Hb.race) -> x.Hb.r_site = site) r.Hb.races

(* ------------------------------------------------------------------ *)
(* End-to-end: the seeded race *)

let test_race_true_positive () =
  let r = Driver.run_one ~seed:1 ~mode:Driver.Native Driver.racy_spec in
  Alcotest.(check bool) "seeded race detected" true (races_on r "racy.count" <> []);
  let kinds = List.map (fun (x : Hb.race) -> x.Hb.r_kind) (races_on r "racy.count") in
  Alcotest.(check bool) "a write-write race is among them" true
    (List.mem "write-write" kinds)

let test_no_false_positive_on_locked_counter () =
  let r = Driver.run_one ~seed:1 ~mode:Driver.Native Driver.racy_spec in
  Alcotest.(check int) "mutex-protected counter never flagged" 0
    (List.length (races_on r "racy.safe_count"))

let test_dmt_serializes_the_race_away () =
  let r = Driver.run_one ~seed:1 ~mode:Driver.Parrot Driver.racy_spec in
  Alcotest.(check int) "no races under DMT" 0 (List.length r.Hb.races)

let test_certifier () =
  let outcomes = Driver.analyze ~seed:3 ~targets:[ "racy-counter" ] () in
  let get m = List.find (fun o -> o.Driver.o_mode = m) outcomes in
  let native = get "native" and parrot = get "parrot" in
  Alcotest.(check bool) "native replay identical" true native.Driver.o_replay_ok;
  Alcotest.(check bool) "parrot replay identical" true parrot.Driver.o_replay_ok;
  Alcotest.(check bool) "parrot certified deterministic" true parrot.Driver.o_certified;
  Alcotest.(check bool) "native diverges across seeds" false native.Driver.o_certified;
  Alcotest.(check (list string)) "no new findings" [] (Driver.problems outcomes)

let test_report_byte_identical () =
  let render () =
    Driver.render ~seed:4 (Driver.analyze ~seed:4 ~targets:[ "racy-counter" ] ())
  in
  Alcotest.(check string) "same seed, same bytes" (render ()) (render ())

(* ------------------------------------------------------------------ *)
(* Lock-order lint *)

let test_lock_inversion_cycle () =
  let eng, _tr, mon = monitored () in
  let rt = Pthread.create eng (Rng.create 11) in
  let a = Pthread.Mutex.create ~name:"A" rt in
  let b = Pthread.Mutex.create ~name:"B" rt in
  (* Opposite acquisition orders, separated in virtual time so the run
     itself cannot deadlock — the lint is about order, not overlap. *)
  Engine.spawn eng ~name:"fwd" (fun () ->
      Pthread.Mutex.lock a;
      Pthread.Mutex.lock b;
      Pthread.Mutex.unlock b;
      Pthread.Mutex.unlock a);
  Engine.spawn eng ~name:"rev" (fun () ->
      Engine.sleep eng (Time.ms 1);
      Pthread.Mutex.lock b;
      Pthread.Mutex.lock a;
      Pthread.Mutex.unlock a;
      Pthread.Mutex.unlock b);
  Engine.run eng;
  check_no_failures eng;
  let r = Hb.report mon in
  Alcotest.(check int) "one cycle" 1 (List.length r.Hb.inversions);
  let inv = List.hd r.Hb.inversions in
  Alcotest.(check (list string)) "cycle is {A, B}" [ "A"; "B" ] inv.Hb.i_locks

let test_no_inversion_with_consistent_order () =
  let eng, _tr, mon = monitored () in
  let rt = Pthread.create eng (Rng.create 12) in
  let a = Pthread.Mutex.create ~name:"A" rt in
  let b = Pthread.Mutex.create ~name:"B" rt in
  for i = 1 to 2 do
    Engine.spawn eng ~name:(Printf.sprintf "t%d" i) (fun () ->
        for _ = 1 to 3 do
          Pthread.Mutex.lock a;
          Pthread.Mutex.lock b;
          Engine.sleep eng (Time.us 5);
          Pthread.Mutex.unlock b;
          Pthread.Mutex.unlock a
        done)
  done;
  Engine.run eng;
  check_no_failures eng;
  Alcotest.(check int) "no cycle" 0 (List.length (Hb.report mon).Hb.inversions)

(* ------------------------------------------------------------------ *)
(* HB edges per primitive: a producer writes unprotected state, then
   synchronizes; a consumer synchronizes, then reads.  Only the
   primitive's edge orders the accesses — if the monitor missed it,
   these would be (false-positive) races. *)

let test_sem_hb_native () =
  let eng, tr, mon = monitored () in
  let rt = Pthread.create eng (Rng.create 21) in
  let sem = Pthread.Sem.create ~name:"sem" rt 0 in
  let x = ref 0 in
  Engine.spawn eng ~name:"producer" (fun () ->
      Engine.sleep eng (Time.us 10);
      mem tr eng "write" ~loc:900 ~site:"sem.x";
      x := 41;
      Pthread.Sem.post sem);
  Engine.spawn eng ~name:"consumer" (fun () ->
      Pthread.Sem.wait sem;
      mem tr eng "read" ~loc:900 ~site:"sem.x";
      x := !x + 1);
  Engine.run eng;
  check_no_failures eng;
  Alcotest.(check int) "post->wait orders the accesses" 0
    (List.length (Hb.report mon).Hb.races);
  Alcotest.(check int) "both threads really ran" 42 !x

let test_barrier_hb_native () =
  let eng, tr, mon = monitored () in
  let rt = Pthread.create eng (Rng.create 22) in
  let bar = Pthread.Barrier.create ~name:"bar" rt 2 in
  let slot = [| 0; 0 |] in
  for i = 0 to 1 do
    Engine.spawn eng ~name:(Printf.sprintf "w%d" i) (fun () ->
        Engine.sleep eng (Time.us (7 * (i + 1)));
        mem tr eng "write" ~loc:(910 + i) ~site:(Printf.sprintf "bar.slot%d" i);
        slot.(i) <- i + 1;
        Pthread.Barrier.wait bar;
        let j = 1 - i in
        mem tr eng "read" ~loc:(910 + j) ~site:(Printf.sprintf "bar.slot%d" j);
        ignore slot.(j))
  done;
  Engine.run eng;
  check_no_failures eng;
  Alcotest.(check int) "barrier orders writes before cross-reads" 0
    (List.length (Hb.report mon).Hb.races)

let test_sem_hb_dmt () =
  let eng, tr, mon = monitored () in
  let dmt = Dmt.create eng in
  let sem = Dmt.Sem.create ~name:"sem" dmt 0 in
  let x = ref 0 in
  Dmt.spawn dmt ~name:"producer" (fun () ->
      mem tr eng "write" ~loc:920 ~site:"dsem.x";
      x := 41;
      Dmt.Sem.post sem);
  Dmt.spawn dmt ~name:"consumer" (fun () ->
      Dmt.Sem.wait sem;
      mem tr eng "read" ~loc:920 ~site:"dsem.x";
      x := !x + 1);
  Engine.at eng (Time.ms 10) (fun () -> Dmt.stop dmt);
  Engine.run eng;
  check_no_failures eng;
  Alcotest.(check int) "post->wait orders the accesses (DMT)" 0
    (List.length (Hb.report mon).Hb.races);
  Alcotest.(check int) "both threads really ran" 42 !x

let test_barrier_hb_dmt () =
  let eng, tr, mon = monitored () in
  let dmt = Dmt.create eng in
  let bar = Dmt.Barrier.create ~name:"bar" dmt 2 in
  let slot = [| 0; 0 |] in
  let done_ = ref 0 in
  for i = 0 to 1 do
    Dmt.spawn dmt ~name:(Printf.sprintf "w%d" i) (fun () ->
        mem tr eng "write" ~loc:(930 + i) ~site:(Printf.sprintf "dbar.slot%d" i);
        slot.(i) <- i + 1;
        Dmt.Barrier.wait bar;
        let j = 1 - i in
        mem tr eng "read" ~loc:(930 + j) ~site:(Printf.sprintf "dbar.slot%d" j);
        ignore slot.(j);
        incr done_)
  done;
  Engine.at eng (Time.ms 10) (fun () -> Dmt.stop dmt);
  Engine.run eng;
  check_no_failures eng;
  Alcotest.(check int) "both passed the barrier" 2 !done_;
  Alcotest.(check int) "barrier orders writes before cross-reads (DMT)" 0
    (List.length (Hb.report mon).Hb.races)

(* Sanity for the hand-emitted path itself: with NO synchronization the
   same shape must race. *)
let test_unsynced_mem_races () =
  let eng, tr, mon = monitored () in
  for i = 0 to 1 do
    Engine.spawn eng ~name:(Printf.sprintf "u%d" i) (fun () ->
        Engine.sleep eng (Time.us (3 * (i + 1)));
        mem tr eng "write" ~loc:940 ~site:"unsync.x")
  done;
  Engine.run eng;
  check_no_failures eng;
  Alcotest.(check bool) "unsynchronized writes race" true
    ((Hb.report mon).Hb.races <> [])

let suite =
  [
    ( "analysis",
      [
        Alcotest.test_case "race: true positive on seeded race" `Quick
          test_race_true_positive;
        Alcotest.test_case "race: no false positive on locked counter" `Quick
          test_no_false_positive_on_locked_counter;
        Alcotest.test_case "race: DMT serializes the race away" `Quick
          test_dmt_serializes_the_race_away;
        Alcotest.test_case "certifier: replay + cross-seed verdicts" `Quick
          test_certifier;
        Alcotest.test_case "report: byte-identical for identical seeds" `Quick
          test_report_byte_identical;
        Alcotest.test_case "lint: lock-order cycle detected" `Quick
          test_lock_inversion_cycle;
        Alcotest.test_case "lint: consistent order is clean" `Quick
          test_no_inversion_with_consistent_order;
        Alcotest.test_case "hb: sem post->wait edge (native)" `Quick
          test_sem_hb_native;
        Alcotest.test_case "hb: barrier edges (native)" `Quick
          test_barrier_hb_native;
        Alcotest.test_case "hb: sem post->wait edge (DMT)" `Quick test_sem_hb_dmt;
        Alcotest.test_case "hb: barrier edges (DMT)" `Quick test_barrier_hb_dmt;
        Alcotest.test_case "hb: unsynchronized accesses do race" `Quick
          test_unsynced_mem_races;
      ] );
  ]
