(* Tests for the nondeterministic Pthreads model and the PARROT DMT
   scheduler: mutual exclusion, condvars, and above all the determinism
   property that motivates DMT. *)

module Time = Crane_sim.Time
module Rng = Crane_sim.Rng
module Engine = Crane_sim.Engine
module Pthread = Crane_pthread.Pthread
module Dmt = Crane_dmt.Dmt

let check_no_failures eng =
  match Engine.failures eng with
  | [] -> ()
  | (name, e) :: _ ->
    Alcotest.failf "thread %s failed: %s" name (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* Pthread *)

let test_pthread_mutex_exclusion () =
  let eng = Engine.create () in
  let rt = Pthread.create eng (Rng.create 3) in
  let mu = Pthread.Mutex.create rt in
  let inside = ref 0 and max_inside = ref 0 and total = ref 0 in
  for i = 1 to 8 do
    Engine.spawn eng ~name:(Printf.sprintf "t%d" i) (fun () ->
        for _ = 1 to 20 do
          Pthread.Mutex.lock mu;
          incr inside;
          if !inside > !max_inside then max_inside := !inside;
          Engine.sleep eng (Time.us 3);
          decr inside;
          incr total;
          Pthread.Mutex.unlock mu
        done)
  done;
  Engine.run eng;
  check_no_failures eng;
  Alcotest.(check int) "never two inside" 1 !max_inside;
  Alcotest.(check int) "all iterations ran" 160 !total

let test_pthread_cond_producer_consumer () =
  let eng = Engine.create () in
  let rt = Pthread.create eng (Rng.create 4) in
  let mu = Pthread.Mutex.create rt in
  let cv = Pthread.Cond.create rt in
  let queue = Queue.create () in
  let consumed = ref [] in
  Engine.spawn eng ~name:"producer" (fun () ->
      for i = 1 to 50 do
        Engine.sleep eng (Time.us 10);
        Pthread.Mutex.lock mu;
        Queue.add i queue;
        Pthread.Cond.signal cv;
        Pthread.Mutex.unlock mu
      done);
  for c = 1 to 4 do
    Engine.spawn eng ~name:(Printf.sprintf "consumer%d" c) (fun () ->
        let continue_ = ref true in
        while !continue_ do
          Pthread.Mutex.lock mu;
          while Queue.is_empty queue && List.length !consumed < 50 do
            Pthread.Cond.wait cv mu
          done;
          (match Queue.take_opt queue with
          | Some v -> consumed := v :: !consumed
          | None -> continue_ := false);
          if List.length !consumed >= 50 then begin
            continue_ := false;
            Pthread.Cond.broadcast cv
          end;
          Pthread.Mutex.unlock mu
        done)
  done;
  Engine.run eng;
  check_no_failures eng;
  Alcotest.(check int) "all consumed" 50 (List.length !consumed);
  Alcotest.(check (list int)) "every item exactly once"
    (List.init 50 (fun i -> i + 1))
    (List.sort compare !consumed)

let test_pthread_rwlock () =
  let eng = Engine.create () in
  let rt = Pthread.create eng (Rng.create 5) in
  let rw = Pthread.Rwlock.create rt in
  let readers_in = ref 0 and writers_in = ref 0 in
  let violation = ref false in
  for i = 1 to 6 do
    Engine.spawn eng ~name:(Printf.sprintf "r%d" i) (fun () ->
        for _ = 1 to 10 do
          Pthread.Rwlock.rdlock rw;
          incr readers_in;
          if !writers_in > 0 then violation := true;
          Engine.sleep eng (Time.us 2);
          decr readers_in;
          Pthread.Rwlock.unlock rw
        done)
  done;
  for i = 1 to 2 do
    Engine.spawn eng ~name:(Printf.sprintf "w%d" i) (fun () ->
        for _ = 1 to 10 do
          Pthread.Rwlock.wrlock rw;
          incr writers_in;
          if !readers_in > 0 || !writers_in > 1 then violation := true;
          Engine.sleep eng (Time.us 2);
          decr writers_in;
          Pthread.Rwlock.unlock rw
        done)
  done;
  Engine.run eng;
  check_no_failures eng;
  Alcotest.(check bool) "no reader/writer overlap" false !violation

let test_pthread_sem () =
  let eng = Engine.create () in
  let rt = Pthread.create eng (Rng.create 6) in
  let sem = Pthread.Sem.create rt 2 in
  let inside = ref 0 and max_inside = ref 0 in
  for i = 1 to 6 do
    Engine.spawn eng ~name:(Printf.sprintf "t%d" i) (fun () ->
        Pthread.Sem.wait sem;
        incr inside;
        if !inside > !max_inside then max_inside := !inside;
        Engine.sleep eng (Time.us 5);
        decr inside;
        Pthread.Sem.post sem)
  done;
  Engine.run eng;
  check_no_failures eng;
  Alcotest.(check bool) "at most two inside" true (!max_inside <= 2)

let test_pthread_barrier () =
  let eng = Engine.create () in
  let rt = Pthread.create eng (Rng.create 7) in
  let b = Pthread.Barrier.create rt 4 in
  let release_times = ref [] in
  for i = 1 to 4 do
    Engine.spawn eng ~name:(Printf.sprintf "t%d" i) (fun () ->
        Engine.sleep eng (Time.us (i * 10));
        Pthread.Barrier.wait b;
        release_times := Engine.now eng :: !release_times)
  done;
  Engine.run eng;
  check_no_failures eng;
  match !release_times with
  | [] -> Alcotest.fail "nobody released"
  | t0 :: rest ->
    List.iter
      (fun t ->
        Alcotest.(check bool) "released within a context switch" true
          (abs (t - t0) <= Time.us 200))
      rest

(* Unlock is owner-checked: POSIX leaves unlock-by-non-owner undefined;
   the model turns it into a hard error so analysis runs can trust the
   release events. *)
let test_pthread_unlock_by_non_owner () =
  let eng = Engine.create () in
  let rt = Pthread.create eng (Rng.create 9) in
  let mu = Pthread.Mutex.create ~name:"owned" rt in
  let raised = ref false in
  Engine.spawn eng ~name:"owner" (fun () ->
      Pthread.Mutex.lock mu;
      Engine.sleep eng (Time.us 100);
      Pthread.Mutex.unlock mu);
  Engine.spawn eng ~name:"intruder" (fun () ->
      Engine.sleep eng (Time.us 10);
      match Pthread.Mutex.unlock mu with
      | () -> ()
      | exception Invalid_argument _ -> raised := true);
  Engine.run eng;
  check_no_failures eng;
  Alcotest.(check bool) "unlock by non-owner raises" true !raised;
  match Pthread.Mutex.unlock mu with
  | () -> Alcotest.fail "unlock of unlocked mutex must raise"
  | exception Invalid_argument _ -> ()

(* Nondeterminism: the wake order under contention varies with the seed. *)
let pthread_wake_order seed =
  let eng = Engine.create () in
  let rt = Pthread.create eng (Rng.create seed) in
  let mu = Pthread.Mutex.create rt in
  let order = ref [] in
  Engine.spawn eng ~name:"holder" (fun () ->
      Pthread.Mutex.lock mu;
      Engine.sleep eng (Time.ms 1);
      Pthread.Mutex.unlock mu);
  for i = 1 to 6 do
    Engine.spawn eng ~name:(Printf.sprintf "t%d" i) (fun () ->
        Engine.sleep eng (Time.us i);
        Pthread.Mutex.lock mu;
        order := i :: !order;
        Pthread.Mutex.unlock mu)
  done;
  Engine.run eng;
  check_no_failures eng;
  List.rev !order

let test_pthread_nondeterministic_wake () =
  let orders = List.init 10 (fun s -> pthread_wake_order (s + 1)) in
  let distinct = List.sort_uniq compare orders in
  Alcotest.(check bool) "seeds produce different wake orders" true
    (List.length distinct > 1)

(* ------------------------------------------------------------------ *)
(* DMT *)

let test_dmt_round_robin () =
  (* Three threads each doing sync ops take turns in round-robin order. *)
  let eng = Engine.create () in
  let dmt = Dmt.create eng in
  let order = ref [] in
  for i = 1 to 3 do
    Dmt.spawn dmt ~name:(Printf.sprintf "t%d" i) (fun () ->
        for _ = 1 to 4 do
          Dmt.get_turn dmt;
          order := i :: !order;
          Dmt.put_turn dmt
        done)
  done;
  Engine.at eng (Time.ms 1) (fun () -> Dmt.stop dmt);
  Engine.run eng;
  check_no_failures eng;
  Alcotest.(check (list int)) "strict round robin"
    [ 1; 2; 3; 1; 2; 3; 1; 2; 3; 1; 2; 3 ]
    (List.rev !order)

let test_dmt_mutex_exclusion () =
  let eng = Engine.create () in
  let dmt = Dmt.create eng in
  let mu = Dmt.Mutex.create dmt in
  let inside = ref 0 and max_inside = ref 0 and total = ref 0 in
  for i = 1 to 6 do
    Dmt.spawn dmt ~name:(Printf.sprintf "t%d" i) (fun () ->
        for _ = 1 to 10 do
          Dmt.Mutex.lock mu;
          incr inside;
          if !inside > !max_inside then max_inside := !inside;
          Engine.sleep eng (Time.us 2);
          decr inside;
          incr total;
          Dmt.Mutex.unlock mu
        done)
  done;
  Engine.at eng (Time.sec 1) (fun () -> Dmt.stop dmt);
  Engine.run eng;
  check_no_failures eng;
  Alcotest.(check int) "mutual exclusion" 1 !max_inside;
  Alcotest.(check int) "all iterations" 60 !total

let test_dmt_cond () =
  let eng = Engine.create () in
  let dmt = Dmt.create eng in
  let mu = Dmt.Mutex.create dmt in
  let cv = Dmt.Cond.create dmt in
  let queue = Queue.create () in
  let consumed = ref 0 in
  Dmt.spawn dmt ~name:"producer" (fun () ->
      for i = 1 to 30 do
        Dmt.Mutex.lock mu;
        Queue.add i queue;
        Dmt.Cond.signal cv;
        Dmt.Mutex.unlock mu
      done);
  for c = 1 to 3 do
    Dmt.spawn dmt ~name:(Printf.sprintf "consumer%d" c) (fun () ->
        let continue_ = ref true in
        while !continue_ do
          Dmt.Mutex.lock mu;
          while Queue.is_empty queue && !consumed < 30 do
            Dmt.Cond.wait cv mu
          done;
          (match Queue.take_opt queue with
          | Some _ -> incr consumed
          | None -> ());
          if !consumed >= 30 then begin
            continue_ := false;
            Dmt.Cond.broadcast cv
          end;
          Dmt.Mutex.unlock mu
        done)
  done;
  Engine.at eng (Time.sec 1) (fun () -> Dmt.stop dmt);
  Engine.run eng;
  check_no_failures eng;
  Alcotest.(check int) "all consumed" 30 !consumed

(* The headline property: the schedule (order of sync ops) is identical
   across runs even when thread release times jitter with the seed. *)
let dmt_schedule seed =
  let eng = Engine.create () in
  let rng = Rng.create seed in
  let dmt = Dmt.create eng in
  let mu = Dmt.Mutex.create dmt in
  let trace = Buffer.create 64 in
  for i = 1 to 4 do
    let delay = Time.us (Rng.int rng 50) in
    Dmt.spawn dmt ~name:(Printf.sprintf "t%d" i) (fun () ->
        (* Jittered start: in a nondeterministic runtime this would change
           the lock acquisition order. *)
        Engine.sleep eng delay;
        for _ = 1 to 5 do
          Dmt.Mutex.lock mu;
          Buffer.add_string trace (Printf.sprintf "%d;" i);
          Dmt.Mutex.unlock mu
        done)
  done;
  Engine.at eng (Time.sec 1) (fun () -> Dmt.stop dmt);
  Engine.run eng;
  check_no_failures eng;
  Buffer.contents trace

let test_dmt_schedule_deterministic () =
  let reference = dmt_schedule 1 in
  for seed = 2 to 8 do
    Alcotest.(check string) "same schedule under timing jitter" reference
      (dmt_schedule seed)
  done

let prop_dmt_deterministic =
  QCheck.Test.make ~name:"dmt schedule independent of timing seed" ~count:20
    QCheck.(pair small_nat small_nat)
    (fun (s1, s2) -> dmt_schedule s1 = dmt_schedule s2)

(* By contrast the pthread runtime diverges (sanity check of the model). *)
let test_pthread_schedule_varies () =
  let runs = List.init 12 (fun s -> pthread_wake_order (100 + s)) in
  Alcotest.(check bool) "pthread wake orders vary" true
    (List.length (List.sort_uniq compare runs) > 1)

let test_dmt_block_external_arrival_order () =
  (* block_external rejoins in completion order: network nondeterminism
     survives a plain PARROT run. *)
  let eng = Engine.create () in
  let dmt = Dmt.create eng in
  let order = ref [] in
  for i = 1 to 3 do
    Dmt.spawn dmt ~name:(Printf.sprintf "t%d" i) (fun () ->
        Dmt.block_external dmt (fun () ->
            (* Completion times inverted w.r.t. spawn order. *)
            Engine.sleep eng (Time.us (40 - (10 * i))));
        Dmt.get_turn dmt;
        order := i :: !order;
        Dmt.put_turn dmt)
  done;
  Engine.at eng (Time.ms 1) (fun () -> Dmt.stop dmt);
  Engine.run eng;
  check_no_failures eng;
  Alcotest.(check (list int)) "completion order wins" [ 3; 2; 1 ]
    (List.rev !order)

let test_dmt_clock_advances () =
  let eng = Engine.create () in
  let dmt = Dmt.create eng in
  Dmt.spawn dmt ~name:"t" (fun () ->
      for _ = 1 to 10 do
        Dmt.get_turn dmt;
        Dmt.put_turn dmt
      done);
  Engine.at eng (Time.ms 1) (fun () -> Dmt.stop dmt);
  Engine.run eng;
  check_no_failures eng;
  Alcotest.(check bool) "clock ticked at least per put_turn" true
    (Dmt.clock dmt >= 10)

let test_dmt_soft_barrier_lines_up () =
  let eng = Engine.create () in
  let dmt = Dmt.create eng in
  let sb = Dmt.Soft_barrier.create dmt ~n:3 ~timeout_ticks:1_000_000 in
  let release_clock = ref [] in
  for i = 1 to 3 do
    Dmt.spawn dmt ~name:(Printf.sprintf "t%d" i) (fun () ->
        (* Staggered arrival via differing amounts of pre-work. *)
        for _ = 1 to i * 3 do
          Dmt.get_turn dmt;
          Dmt.put_turn dmt
        done;
        Dmt.Soft_barrier.wait sb;
        Dmt.get_turn dmt;
        release_clock := Dmt.clock dmt :: !release_clock;
        Dmt.put_turn dmt)
  done;
  Engine.at eng (Time.ms 10) (fun () -> Dmt.stop dmt);
  Engine.run eng;
  check_no_failures eng;
  match List.sort compare !release_clock with
  | [ a; _; c ] ->
    Alcotest.(check bool) "released together (within one rotation)" true
      (c - a <= 6)
  | _ -> Alcotest.fail "not all released"

let test_dmt_soft_barrier_timeout () =
  (* Fewer arrivals than n: the deterministic timeout releases them. *)
  let eng = Engine.create () in
  let dmt = Dmt.create eng in
  let sb = Dmt.Soft_barrier.create dmt ~n:5 ~timeout_ticks:20 in
  let released = ref false in
  Dmt.spawn dmt ~name:"lonely" (fun () ->
      Dmt.Soft_barrier.wait sb;
      released := true);
  Dmt.spawn dmt ~name:"ticker" (fun () ->
      for _ = 1 to 100 do
        Dmt.get_turn dmt;
        Dmt.put_turn dmt
      done);
  Engine.at eng (Time.ms 10) (fun () -> Dmt.stop dmt);
  Engine.run eng;
  check_no_failures eng;
  Alcotest.(check bool) "timeout released the waiter" true !released

let test_dmt_idle_keeps_clock_alive () =
  (* All threads blocked on external input: the idle thread still ticks,
     so a later event can be admitted at a growing logical clock. *)
  let eng = Engine.create () in
  let dmt = Dmt.create eng in
  let woke = ref false in
  let obj = Dmt.new_obj dmt in
  Dmt.spawn dmt ~name:"waiter" (fun () ->
      Dmt.get_turn dmt;
      Dmt.wait dmt ~obj;
      woke := true;
      Dmt.put_turn dmt);
  (* An external event signals through a helper thread much later. *)
  Engine.at eng (Time.ms 1) (fun () ->
      Dmt.spawn dmt ~name:"signaller" (fun () ->
          Dmt.get_turn dmt;
          Dmt.signal dmt ~obj;
          Dmt.put_turn dmt));
  Engine.at eng (Time.ms 5) (fun () -> Dmt.stop dmt);
  Engine.run eng;
  check_no_failures eng;
  Alcotest.(check bool) "waiter woken" true !woke;
  Alcotest.(check bool) "idle ticked while blocked" true (Dmt.clock dmt > 10)

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  [
    ( "pthread",
      [
        Alcotest.test_case "mutex exclusion" `Quick test_pthread_mutex_exclusion;
        Alcotest.test_case "cond producer/consumer" `Quick
          test_pthread_cond_producer_consumer;
        Alcotest.test_case "rwlock" `Quick test_pthread_rwlock;
        Alcotest.test_case "semaphore" `Quick test_pthread_sem;
        Alcotest.test_case "barrier" `Quick test_pthread_barrier;
        Alcotest.test_case "unlock by non-owner raises" `Quick
          test_pthread_unlock_by_non_owner;
        Alcotest.test_case "nondeterministic wake order" `Quick
          test_pthread_nondeterministic_wake;
      ] );
    ( "dmt",
      [
        Alcotest.test_case "round robin" `Quick test_dmt_round_robin;
        Alcotest.test_case "mutex exclusion" `Quick test_dmt_mutex_exclusion;
        Alcotest.test_case "condvar" `Quick test_dmt_cond;
        Alcotest.test_case "schedule deterministic" `Quick
          test_dmt_schedule_deterministic;
        qcheck prop_dmt_deterministic;
        Alcotest.test_case "pthread varies (contrast)" `Quick
          test_pthread_schedule_varies;
        Alcotest.test_case "block_external arrival order" `Quick
          test_dmt_block_external_arrival_order;
        Alcotest.test_case "clock advances" `Quick test_dmt_clock_advances;
        Alcotest.test_case "soft barrier lines up" `Quick
          test_dmt_soft_barrier_lines_up;
        Alcotest.test_case "soft barrier timeout" `Quick
          test_dmt_soft_barrier_timeout;
        Alcotest.test_case "idle keeps clock alive" `Quick
          test_dmt_idle_keeps_clock_alive;
      ] );
  ]
