(* Tests for the network fabric and the TCP-like socket layer. *)

module Time = Crane_sim.Time
module Rng = Crane_sim.Rng
module Engine = Crane_sim.Engine
module Fabric = Crane_net.Fabric
module Sock = Crane_socket.Sock

type Fabric.message += Ping of int

let setup ?(jitter = Time.us 30) () =
  let eng = Engine.create () in
  let fabric = Fabric.create eng (Rng.create 1) in
  Fabric.set_latency fabric ~base:(Time.us 50) ~jitter;
  (eng, fabric)

let ep node port = { Fabric.node; port }

(* ------------------------------------------------------------------ *)
(* Fabric *)

let test_fabric_delivery () =
  let eng, fabric = setup () in
  let got = ref [] in
  Fabric.bind fabric (ep "b" 7) (fun ~src:_ msg ->
      match msg with Ping n -> got := n :: !got | _ -> ());
  for i = 1 to 5 do
    Fabric.send fabric ~src:(ep "a" 1) ~dst:(ep "b" 7) (Ping i)
  done;
  Engine.run eng;
  Alcotest.(check (list int)) "fifo per link" [ 1; 2; 3; 4; 5 ] (List.rev !got);
  Alcotest.(check int) "delivered count" 5 (Fabric.delivered fabric)

let test_fabric_latency_positive () =
  let eng, fabric = setup () in
  let arrival = ref Time.zero in
  Fabric.bind fabric (ep "b" 7) (fun ~src:_ _ -> arrival := Engine.now eng);
  Fabric.send fabric ~src:(ep "a" 1) ~dst:(ep "b" 7) (Ping 0);
  Engine.run eng;
  Alcotest.(check bool) "at least base latency" true (!arrival >= Time.us 50)

let test_fabric_partition () =
  let eng, fabric = setup () in
  let got = ref 0 in
  Fabric.bind fabric (ep "b" 7) (fun ~src:_ _ -> incr got);
  Fabric.partition fabric [ "a" ] [ "b" ];
  Fabric.send fabric ~src:(ep "a" 1) ~dst:(ep "b" 7) (Ping 0);
  Engine.run eng;
  Alcotest.(check int) "partition blocks" 0 !got;
  Fabric.heal fabric;
  Fabric.send fabric ~src:(ep "a" 1) ~dst:(ep "b" 7) (Ping 0);
  Engine.run eng;
  Alcotest.(check int) "heal restores" 1 !got

(* A one-way partition blocks one direction only — the asymmetric failure
   of paper §7.6 where a primary keeps sending heartbeats that backups
   receive while their replies are dropped. *)
let test_fabric_partition_oneway () =
  let eng, fabric = setup () in
  let at_a = ref 0 and at_b = ref 0 in
  Fabric.bind fabric (ep "a" 7) (fun ~src:_ _ -> incr at_a);
  Fabric.bind fabric (ep "b" 7) (fun ~src:_ _ -> incr at_b);
  Fabric.partition_oneway fabric ~from:[ "a" ] ~to_:[ "b" ];
  Fabric.send fabric ~src:(ep "a" 1) ~dst:(ep "b" 7) (Ping 0);
  Fabric.send fabric ~src:(ep "b" 1) ~dst:(ep "a" 7) (Ping 0);
  Engine.run eng;
  Alcotest.(check int) "a->b blocked" 0 !at_b;
  Alcotest.(check int) "b->a still delivers" 1 !at_a;
  Alcotest.(check int) "one active partition" 1 (Fabric.partitions fabric);
  Fabric.heal fabric;
  Fabric.send fabric ~src:(ep "a" 1) ~dst:(ep "b" 7) (Ping 0);
  Engine.run eng;
  Alcotest.(check int) "heal restores a->b" 1 !at_b

let test_fabric_node_down () =
  let eng, fabric = setup () in
  let got = ref 0 in
  Fabric.bind fabric (ep "b" 7) (fun ~src:_ _ -> incr got);
  Fabric.node_down fabric "b";
  Fabric.send fabric ~src:(ep "a" 1) ~dst:(ep "b" 7) (Ping 0);
  Engine.run eng;
  Alcotest.(check int) "down node drops" 0 !got;
  Fabric.node_up fabric "b";
  Fabric.send fabric ~src:(ep "a" 1) ~dst:(ep "b" 7) (Ping 1);
  Engine.run eng;
  Alcotest.(check int) "up node receives" 1 !got

let test_fabric_loss () =
  let eng, fabric = setup () in
  Fabric.set_loss fabric 1.0;
  let got = ref 0 in
  Fabric.bind fabric (ep "b" 7) (fun ~src:_ _ -> incr got);
  for _ = 1 to 10 do
    Fabric.send fabric ~src:(ep "a" 1) ~dst:(ep "b" 7) (Ping 0)
  done;
  Engine.run eng;
  Alcotest.(check int) "full loss" 0 !got;
  Alcotest.(check int) "drops counted" 10 (Fabric.dropped fabric)

let prop_fabric_fifo_per_link =
  QCheck.Test.make ~name:"fabric preserves per-link order under jitter"
    ~count:30 QCheck.small_nat (fun seed ->
      let eng = Engine.create () in
      let fabric = Fabric.create eng (Rng.create seed) in
      Fabric.set_latency fabric ~base:(Time.us 10) ~jitter:(Time.us 200);
      let got = ref [] in
      Fabric.bind fabric (ep "b" 1) (fun ~src:_ msg ->
          match msg with Ping n -> got := n :: !got | _ -> ());
      let n = 50 in
      for i = 1 to n do
        Fabric.send fabric ~src:(ep "a" 1) ~dst:(ep "b" 1) (Ping i)
      done;
      Engine.run eng;
      List.rev !got = List.init n (fun i -> i + 1))

(* ------------------------------------------------------------------ *)
(* Sockets *)

let check_no_failures eng =
  match Engine.failures eng with
  | [] -> ()
  | (name, e) :: _ ->
    Alcotest.failf "thread %s failed: %s" name (Printexc.to_string e)

let test_sock_echo () =
  let eng, fabric = setup () in
  let w = Sock.world fabric in
  let reply = ref "" in
  Engine.spawn eng ~name:"server" (fun () ->
      let l = Sock.listen w ~node:"srv" ~port:80 in
      let c = Sock.accept l in
      let req = Sock.recv c ~max:4096 in
      Sock.send c ("echo:" ^ req);
      Sock.close c);
  Engine.spawn eng ~name:"client" (fun () ->
      Engine.sleep eng (Time.ms 1);
      let c = Sock.connect w ~from:"cli" ~node:"srv" ~port:80 in
      Sock.send c "hello";
      reply := Sock.recv c ~max:4096;
      Sock.close c);
  Engine.run eng;
  check_no_failures eng;
  Alcotest.(check string) "echo round trip" "echo:hello" !reply

let test_sock_refused () =
  let eng, fabric = setup () in
  let w = Sock.world fabric in
  let refused = ref false in
  Engine.spawn eng ~name:"client" (fun () ->
      match Sock.connect w ~from:"cli" ~node:"nowhere" ~port:80 with
      | (_ : Sock.conn) -> ()
      | exception Sock.Connection_refused _ -> refused := true);
  Engine.run eng;
  check_no_failures eng;
  Alcotest.(check bool) "no listener refuses" true !refused

let test_sock_eof_on_close () =
  let eng, fabric = setup () in
  let w = Sock.world fabric in
  let eof = ref "sentinel" in
  Engine.spawn eng ~name:"server" (fun () ->
      let l = Sock.listen w ~node:"srv" ~port:80 in
      let c = Sock.accept l in
      Sock.close c);
  Engine.spawn eng ~name:"client" (fun () ->
      Engine.sleep eng (Time.ms 1);
      let c = Sock.connect w ~from:"cli" ~node:"srv" ~port:80 in
      eof := Sock.recv c ~max:10);
  Engine.run eng;
  check_no_failures eng;
  Alcotest.(check string) "recv returns empty on EOF" "" !eof

let test_sock_recv_drains_before_eof () =
  let eng, fabric = setup () in
  let w = Sock.world fabric in
  let collected = Buffer.create 16 in
  Engine.spawn eng ~name:"server" (fun () ->
      let l = Sock.listen w ~node:"srv" ~port:80 in
      let c = Sock.accept l in
      Sock.send c "abcdef";
      Sock.close c);
  Engine.spawn eng ~name:"client" (fun () ->
      Engine.sleep eng (Time.ms 1);
      let c = Sock.connect w ~from:"cli" ~node:"srv" ~port:80 in
      Engine.sleep eng (Time.ms 5);
      (* Data then FIN are both in: small reads drain before EOF. *)
      let rec go () =
        let chunk = Sock.recv c ~max:2 in
        if chunk <> "" then begin
          Buffer.add_string collected chunk;
          go ()
        end
      in
      go ());
  Engine.run eng;
  check_no_failures eng;
  Alcotest.(check string) "drained in order" "abcdef" (Buffer.contents collected)

let test_sock_recv_timeout () =
  let eng, fabric = setup () in
  let w = Sock.world fabric in
  let got = ref "x" and t_after = ref Time.zero in
  Engine.spawn eng ~name:"server" (fun () ->
      let l = Sock.listen w ~node:"srv" ~port:80 in
      let (_ : Sock.conn) = Sock.accept l in
      (* Never send. *)
      ());
  Engine.spawn eng ~name:"client" (fun () ->
      let c = Sock.connect w ~from:"cli" ~node:"srv" ~port:80 in
      let t0 = Engine.now eng in
      got := Sock.recv ~timeout:(Time.ms 10) c ~max:10;
      t_after := Engine.now eng - t0);
  Engine.run eng;
  check_no_failures eng;
  Alcotest.(check string) "timeout yields empty" "" !got;
  Alcotest.(check bool) "waited about the timeout" true (!t_after >= Time.ms 10)

let test_sock_crash_gives_peer_eof () =
  let eng, fabric = setup () in
  let w = Sock.world fabric in
  let g = Engine.new_group eng in
  Engine.on_kill eng g (fun () ->
      Fabric.node_down fabric "srv";
      Sock.node_crashed w "srv");
  let eof_seen = ref false in
  Engine.spawn eng ~group:g ~name:"server" (fun () ->
      let l = Sock.listen w ~node:"srv" ~port:80 in
      let (_ : Sock.conn) = Sock.accept l in
      Engine.sleep eng (Time.sec 10));
  Engine.spawn eng ~name:"client" (fun () ->
      Engine.sleep eng (Time.ms 1);
      let c = Sock.connect w ~from:"cli" ~node:"srv" ~port:80 in
      let got = Sock.recv c ~max:10 in
      eof_seen := got = "");
  Engine.at eng (Time.ms 50) (fun () -> Engine.kill_group eng g);
  Engine.run eng;
  check_no_failures eng;
  Alcotest.(check bool) "peer observes crash as EOF" true !eof_seen

let test_sock_many_clients () =
  let eng, fabric = setup () in
  let w = Sock.world fabric in
  let served = ref 0 in
  Engine.spawn eng ~name:"server" (fun () ->
      let l = Sock.listen w ~node:"srv" ~port:80 in
      for _ = 1 to 20 do
        let c = Sock.accept l in
        Engine.spawn eng ~name:"handler" (fun () ->
            let req = Sock.recv c ~max:100 in
            Sock.send c req;
            Sock.close c)
      done);
  for i = 1 to 20 do
    Engine.spawn eng ~name:(Printf.sprintf "cli%d" i) (fun () ->
        Engine.sleep eng (Time.us (100 * i));
        let c = Sock.connect w ~from:(Printf.sprintf "c%d" i) ~node:"srv" ~port:80 in
        let msg = string_of_int i in
        Sock.send c msg;
        let r = Sock.recv c ~max:100 in
        if r = msg then incr served;
        Sock.close c)
  done;
  Engine.run eng;
  check_no_failures eng;
  Alcotest.(check int) "all clients served correctly" 20 !served

let test_sock_listener_port_conflict () =
  let eng, fabric = setup () in
  let w = Sock.world fabric in
  let raised = ref false in
  Engine.spawn eng ~name:"t" (fun () ->
      let (_ : Sock.listener) = Sock.listen w ~node:"srv" ~port:80 in
      match Sock.listen w ~node:"srv" ~port:80 with
      | (_ : Sock.listener) -> ()
      | exception Invalid_argument _ -> raised := true);
  Engine.run eng;
  check_no_failures eng;
  Alcotest.(check bool) "double bind rejected" true !raised

let test_sock_wait_acceptable () =
  let eng, fabric = setup () in
  let w = Sock.world fabric in
  let first = ref true and second = ref false in
  Engine.spawn eng ~name:"server" (fun () ->
      let l = Sock.listen w ~node:"srv" ~port:80 in
      (* No client yet: times out. *)
      first := Sock.wait_acceptable ~timeout:(Time.ms 1) l;
      (* Client arrives afterwards. *)
      second := Sock.wait_acceptable ~timeout:(Time.sec 1) l);
  Engine.spawn eng ~name:"client" (fun () ->
      Engine.sleep eng (Time.ms 10);
      let (_ : Sock.conn) = Sock.connect w ~from:"cli" ~node:"srv" ~port:80 in
      ());
  Engine.run eng;
  check_no_failures eng;
  Alcotest.(check bool) "poll times out when idle" false !first;
  Alcotest.(check bool) "poll sees pending connection" true !second

(* Bytestream *)

let prop_bytestream_roundtrip =
  QCheck.Test.make ~name:"bytestream concatenates pushes" ~count:200
    QCheck.(pair (small_list small_printable_string) (int_range 1 7))
    (fun (chunks, max) ->
      let b = Crane_socket.Bytestream.create () in
      List.iter (Crane_socket.Bytestream.push b) chunks;
      let buf = Buffer.create 16 in
      let rec drain () =
        let s = Crane_socket.Bytestream.take b ~max in
        if s <> "" then begin
          Buffer.add_string buf s;
          drain ()
        end
      in
      drain ();
      Buffer.contents buf = String.concat "" chunks)

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  [
    ( "net.fabric",
      [
        Alcotest.test_case "delivery + fifo" `Quick test_fabric_delivery;
        Alcotest.test_case "latency" `Quick test_fabric_latency_positive;
        Alcotest.test_case "partition" `Quick test_fabric_partition;
        Alcotest.test_case "one-way partition" `Quick test_fabric_partition_oneway;
        Alcotest.test_case "node down" `Quick test_fabric_node_down;
        Alcotest.test_case "loss" `Quick test_fabric_loss;
        qcheck prop_fabric_fifo_per_link;
      ] );
    ( "socket",
      [
        Alcotest.test_case "echo" `Quick test_sock_echo;
        Alcotest.test_case "refused" `Quick test_sock_refused;
        Alcotest.test_case "eof on close" `Quick test_sock_eof_on_close;
        Alcotest.test_case "drain before eof" `Quick test_sock_recv_drains_before_eof;
        Alcotest.test_case "recv timeout" `Quick test_sock_recv_timeout;
        Alcotest.test_case "crash -> peer eof" `Quick test_sock_crash_gives_peer_eof;
        Alcotest.test_case "many clients" `Quick test_sock_many_clients;
        Alcotest.test_case "port conflict" `Quick test_sock_listener_port_conflict;
        Alcotest.test_case "wait_acceptable" `Quick test_sock_wait_acceptable;
        qcheck prop_bytestream_roundtrip;
      ] );
  ]
