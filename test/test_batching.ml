(* Batching and group commit: equivalence with the unbatched pipeline
   (same seed, byte-identical outputs), flush-policy boundary cases
   (flush-by-size, flush-by-timeout), group-commit WAL semantics, and
   demotion mid-batch. *)

module Time = Crane_sim.Time
module Engine = Crane_sim.Engine
module Rng = Crane_sim.Rng
module Fabric = Crane_net.Fabric
module Wal = Crane_storage.Wal
module Paxos = Crane_paxos.Paxos
module Sock = Crane_socket.Sock
module Api = Crane_core.Api
module Instance = Crane_core.Instance
module Cluster = Crane_core.Cluster
module Output_log = Crane_core.Output_log
module Chaos = Crane_chaos.Chaos

(* ------------------------------------------------------------------ *)
(* WAL group commit. *)

let test_wal_group_commit () =
  let eng = Engine.create () in
  let wal = Wal.create eng ~name:"w" in
  let done_ = ref false in
  Wal.append_batch_async wal [ "a"; "b"; "c" ] (fun () -> done_ := true);
  Engine.run eng;
  Alcotest.(check bool) "continuation fired" true !done_;
  Alcotest.(check (list string)) "records in list order" [ "a"; "b"; "c" ]
    (Wal.records wal);
  Alcotest.(check int) "one durable write for the group" 1 (Wal.writes wal)

let test_wal_group_crash_all_or_nothing () =
  let eng = Engine.create () in
  let wal = Wal.create eng ~name:"w" in
  let done_ = ref false in
  Wal.append_batch_async wal [ "alpha"; "beta"; "gamma" ] (fun () -> done_ := true);
  (* Crash before the group's fsync instant: the whole group is lost
     (oldest member survives only as a torn partial tail). *)
  Alcotest.(check bool) "torn tail produced" true (Wal.crash_torn_tail wal);
  Engine.run eng;
  Alcotest.(check bool) "continuation never fired" false !done_;
  Alcotest.(check (list string)) "no intact record survives" [] (Wal.records wal);
  match Wal.entries wal with
  | [ t ] ->
    Alcotest.(check bool) "tail torn" true t.Wal.torn;
    Alcotest.(check string) "tail is an alpha prefix" "al" t.Wal.data
  | l -> Alcotest.failf "expected 1 entry, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Paxos-level equivalence: the same values in the same bursts, batched
   vs. one submit per value, must produce identical applied sequences on
   every replica — while the batched primary performs fewer durable
   writes. *)

let run_bursts ~batched () =
  let sim, nodes = Test_paxos.start_cluster () in
  let p1, _, _ = List.hd nodes in
  Engine.spawn sim.Test_paxos.eng ~name:"client" (fun () ->
      Engine.sleep sim.Test_paxos.eng (Time.ms 10);
      for b = 0 to 9 do
        let vs = List.init 6 (fun i -> Printf.sprintf "v%d" ((b * 6) + i)) in
        (if batched then
           Alcotest.(check bool) "primary accepts batch" true
             (Paxos.submit_batch p1 vs)
         else List.iter (fun v -> ignore (Paxos.submit p1 v)) vs);
        Engine.sleep sim.Test_paxos.eng (Time.ms 2)
      done);
  Engine.run ~until:(Time.sec 2) sim.Test_paxos.eng;
  let logs =
    List.map
      (fun (n, _, _, log) -> (n, Test_paxos.applied_log log))
      sim.Test_paxos.nodes
  in
  let writes = Wal.writes (Hashtbl.find sim.Test_paxos.wals "n1") in
  (logs, writes, Paxos.stats p1)

let test_paxos_equivalence () =
  let logs_u, writes_u, _ = run_bursts ~batched:false () in
  let logs_b, writes_b, stats_b = run_bursts ~batched:true () in
  List.iter2
    (fun (n, lu) (_, lb) ->
      Alcotest.(check int) (n ^ " applied all 60") 60 (List.length lb);
      Alcotest.(check (list string)) (n ^ " batched = unbatched order") lu lb)
    logs_u logs_b;
  Alcotest.(check bool)
    (Printf.sprintf "batched fsyncs %d < unbatched %d" writes_b writes_u)
    true (writes_b < writes_u);
  Alcotest.(check int) "all 10 batches committed" 10 stats_b.Paxos.batches_committed;
  Alcotest.(check (list (pair int int))) "histogram: ten 6-event batches"
    [ (6, 10) ] stats_b.Paxos.events_per_batch

let test_submit_batch_refusals () =
  let sim, nodes = Test_paxos.start_cluster () in
  let p1, _, _ = List.hd nodes in
  let p2 = match List.nth_opt nodes 1 with Some (p, _, _) -> p | None -> assert false in
  let r_backup = ref true and r_empty = ref true in
  Engine.spawn sim.Test_paxos.eng ~name:"client" (fun () ->
      Engine.sleep sim.Test_paxos.eng (Time.ms 10);
      r_backup := Paxos.submit_batch p2 [ "a"; "b" ];
      r_empty := Paxos.submit_batch p1 []);
  Engine.run ~until:(Time.ms 100) sim.Test_paxos.eng;
  Alcotest.(check bool) "backup refuses batches" false !r_backup;
  Alcotest.(check bool) "empty batch refused" false !r_empty

(* Demotion mid-batch: a primary proposes a batch it can no longer
   commit (partitioned from the quorum), abdicates, and must shed the
   batch cleanly — the abandoned values never surface on the majority
   side, the demote callback fires, and open-batch accounting is voided.
   The partition stays up: a healed old leader may legitimately win a
   higher view and resurrect its uncommitted tail through the log merge,
   which is viewstamped behavior, not what this test pins down. *)
let test_demotion_mid_batch () =
  let sim, nodes = Test_paxos.start_cluster () in
  let p1, _, log1 = List.hd nodes in
  let demoted = ref false in
  Paxos.set_handlers p1
    { Paxos.on_commit = (fun ~index:_ v -> log1 := v :: !log1);
      on_demote = (fun () -> demoted := true);
      on_config = (fun ~epoch:_ _ -> ());
      on_fence = (fun ~epoch:_ -> ()) };
  Engine.at sim.Test_paxos.eng (Time.ms 50) (fun () ->
      Fabric.partition sim.Test_paxos.fabric [ "n1" ] [ "n2"; "n3" ]);
  Engine.spawn sim.Test_paxos.eng ~name:"client" (fun () ->
      Engine.sleep sim.Test_paxos.eng (Time.ms 60);
      (* Still believes itself primary: the batch is accepted but can
         never commit. *)
      Alcotest.(check bool) "isolated primary still accepts" true
        (Paxos.submit_batch p1 [ "x1"; "x2" ]));
  Engine.at sim.Test_paxos.eng (Time.sec 2) (fun () ->
      match Test_paxos.find_primary sim with
      | Some (n, p, _, _) ->
        Alcotest.(check bool) "new primary is a backup" true (n <> "n1");
        ignore (Paxos.submit p "y1")
      | None -> Alcotest.fail "no new primary elected");
  Engine.run ~until:(Time.sec 4) sim.Test_paxos.eng;
  Alcotest.(check bool) "old primary demoted" true !demoted;
  List.iter
    (fun (n, _, _, log) ->
      if n <> "n1" then
        Alcotest.(check (list string)) (n ^ " only the post-demotion value")
          [ "y1" ] (Test_paxos.applied_log log))
    sim.Test_paxos.nodes;
  Alcotest.(check (list string)) "isolated old primary applied nothing" []
    (Test_paxos.applied_log log1);
  Alcotest.(check int) "abandoned batch not counted" 0
    (Paxos.stats p1).Paxos.batches_committed

(* ------------------------------------------------------------------ *)
(* Proxy flush policy, exercised end to end through a cluster. *)

let stagger_clients cluster n =
  let eng = Cluster.engine cluster in
  for i = 1 to n do
    Engine.spawn eng ~name:(Printf.sprintf "client%d" i) (fun () ->
        Engine.sleep eng (Time.ms (3 * i));
        ignore
          (Test_crane.one_request cluster ~from:(Printf.sprintf "c%d" i)
             ~node:"replica1" ~msg:(Printf.sprintf "req%d" i)))
  done

let primary_stats cluster =
  match Cluster.primary cluster with
  | Some (_, inst) -> Paxos.stats inst.Instance.paxos
  | None -> Alcotest.fail "cluster has no primary"

(* Flush by size: with batch_max 4 and a flush timer parked far away, a
   connection that feeds 4 events inside the timer window must flush on
   the size trigger alone. *)
let test_flush_by_size () =
  let cfg =
    { (Test_crane.test_cfg Instance.Paxos_only) with
      batch_max = 4; batch_delay = Time.ms 50 }
  in
  let cluster = Cluster.create ~cfg ~server:Test_crane.echo_server () in
  Cluster.start ~checkpoints:false cluster;
  let eng = Cluster.engine cluster in
  let received = Buffer.create 64 in
  Engine.spawn eng ~name:"client" (fun () ->
      Engine.sleep eng (Time.ms 10);
      let world = Cluster.world cluster in
      let conn = Sock.connect world ~from:"c1" ~node:"replica1" ~port:80 in
      (* Connect + three spaced sends = 4 events, all well inside the
         50 ms flush timer: only the size trigger can commit them. *)
      List.iter
        (fun m ->
          Sock.send conn m;
          Engine.sleep eng (Time.us 200))
        [ "a"; "b"; "c" ];
      (* The whole batch commits at once, so the server may see (and
         echo) the three payloads coalesced: read until the last payload
         has been echoed back, however the chunks land. *)
      let rec pump () =
        let data = Sock.recv ~timeout:(Time.sec 2) conn ~max:4096 in
        if data <> "" then begin
          Buffer.add_string received data;
          if not (String.contains (Buffer.contents received) 'c') then pump ()
        end
      in
      pump ();
      Sock.close conn);
  Cluster.run ~until:(Time.sec 3) cluster;
  Cluster.check_failures cluster;
  let got = Buffer.contents received in
  List.iter
    (fun payload ->
      Alcotest.(check bool) (payload ^ " echoed back") true
        (String.contains got payload.[0]))
    [ "a"; "b"; "c" ];
  let stats = primary_stats cluster in
  Alcotest.(check bool) "a full 4-event batch committed" true
    (List.mem_assoc 4 stats.Paxos.events_per_batch)

(* Flush by timeout: with batch_max far above the traffic, nothing ever
   fills a batch — commits must still happen, driven by the timer. *)
let test_flush_by_timeout () =
  let cfg =
    { (Test_crane.test_cfg Instance.Paxos_only) with
      batch_max = 64; batch_delay = Time.us 100 }
  in
  let cluster = Cluster.create ~cfg ~server:Test_crane.echo_server () in
  Cluster.start ~checkpoints:false cluster;
  stagger_clients cluster 4;
  Cluster.run ~until:(Time.sec 2) cluster;
  Cluster.check_failures cluster;
  let stats = primary_stats cluster in
  Alcotest.(check bool) "decisions committed without a full batch" true
    (stats.Paxos.decisions >= 12);
  Alcotest.(check bool) "batches committed" true (stats.Paxos.batches_committed > 0);
  Alcotest.(check bool) "no batch ever filled" true
    (List.for_all (fun (size, _) -> size < 64) stats.Paxos.events_per_batch)

(* ------------------------------------------------------------------ *)
(* End-to-end equivalence: same seed, batching on vs. off, a staggered
   client schedule (so event arrival order does not depend on
   response-latency races) — replica outputs must be byte-identical
   across the two configurations, and server states must match. *)

let run_staggered ~batch_max ~seed =
  let cfg = { (Test_crane.test_cfg Instance.Paxos_only) with batch_max } in
  let cluster = Cluster.create ~seed ~cfg ~server:Test_crane.echo_server () in
  Cluster.start ~checkpoints:false cluster;
  stagger_clients cluster 8;
  Cluster.run ~until:(Time.sec 2) cluster;
  Cluster.check_failures cluster;
  let outs = Cluster.outputs cluster in
  let consistent =
    match outs with
    | (_, o1) :: rest -> List.for_all (fun (_, o) -> Output_log.equal o1 o) rest
    | [] -> false
  in
  let rendered = match outs with (_, o1) :: _ -> Output_log.render o1 | [] -> "" in
  let states =
    List.map
      (fun (_, inst) -> inst.Instance.handle.Api.state_of ())
      (Cluster.instances cluster)
  in
  let stats = primary_stats cluster in
  (rendered, consistent, states, stats)

let test_cluster_equivalence () =
  let r_u, c_u, s_u, _ = run_staggered ~batch_max:1 ~seed:42 in
  let r_b, c_b, s_b, stats_b = run_staggered ~batch_max:64 ~seed:42 in
  Alcotest.(check bool) "unbatched replicas consistent" true c_u;
  Alcotest.(check bool) "batched replicas consistent" true c_b;
  Alcotest.(check bool) "run produced output" true (String.length r_u > 0);
  Alcotest.(check string) "batched output byte-identical to unbatched" r_u r_b;
  Alcotest.(check (list string)) "server states identical" s_u s_b;
  (* The batched run must actually have batched something (a lone
     connect rides the flush timer together with its first send). *)
  Alcotest.(check bool) "multi-event batches formed" true
    (List.exists (fun (size, _) -> size >= 2) stats_b.Paxos.events_per_batch)

(* The chaos suite exercises the whole fault matrix with the default
   instance config; pin down that this default really enables batching,
   so "chaos green" keeps meaning "chaos green with batching". *)
let test_chaos_config_batched () =
  Alcotest.(check bool) "chaos runs with batching enabled" true
    (Chaos.chaos_config.Instance.batch_max > 1);
  Alcotest.(check bool) "default config enables batching" true
    (Instance.default_config.Instance.batch_max > 1)

let suite =
  [
    ( "batching",
      [
        Alcotest.test_case "wal group commit" `Quick test_wal_group_commit;
        Alcotest.test_case "wal group crash all-or-nothing" `Quick
          test_wal_group_crash_all_or_nothing;
        Alcotest.test_case "paxos batched = unbatched" `Quick test_paxos_equivalence;
        Alcotest.test_case "submit_batch refusals" `Quick test_submit_batch_refusals;
        Alcotest.test_case "demotion mid-batch sheds" `Quick test_demotion_mid_batch;
        Alcotest.test_case "flush by size" `Quick test_flush_by_size;
        Alcotest.test_case "flush by timeout" `Quick test_flush_by_timeout;
        Alcotest.test_case "cluster byte-identical equivalence" `Quick
          test_cluster_equivalence;
        Alcotest.test_case "chaos config is batched" `Quick test_chaos_config_batched;
      ] );
  ]
