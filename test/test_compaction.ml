(* Tests for log compaction and snapshot-based catch-up: the crash-safe
   two-phase WAL truncation, the compaction watermark keeping every
   long-lived structure bounded, the snapshot + chunked catch-up recovery
   path, and the fixed-seed guarantee that compaction never changes
   observable outputs. *)

module Time = Crane_sim.Time
module Rng = Crane_sim.Rng
module Engine = Crane_sim.Engine
module Fabric = Crane_net.Fabric
module Wal = Crane_storage.Wal
module Paxos = Crane_paxos.Paxos
module Memfs = Crane_fs.Memfs
module Container = Crane_fs.Container
module Manager = Crane_checkpoint.Manager
module Instance = Crane_core.Instance
module Cluster = Crane_core.Cluster
module Output_log = Crane_core.Output_log
module Target = Crane_workload.Target
module Loadgen = Crane_workload.Loadgen
module Chaos = Crane_chaos.Chaos
module Ledger = Crane_chaos.Ledger

let check_no_failures eng =
  match Engine.failures eng with
  | [] -> ()
  | (name, e) :: _ ->
    Alcotest.failf "simulated thread %s died: %s" name (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* WAL truncation *)

let test_wal_truncate_drops_prefix () =
  let eng = Engine.create () in
  let wal = Wal.create eng ~name:"w" in
  List.iter (fun r -> Wal.append_async wal r (fun () -> ())) [ "a"; "b"; "c" ];
  Engine.run eng;
  let header = "H" in
  let finished = ref false in
  Wal.truncate_to wal ~header ~drop:(fun r -> r = "a" || r = "b") (fun () ->
      finished := true);
  Engine.run eng;
  Alcotest.(check bool) "continuation fired" true !finished;
  Alcotest.(check (list string)) "prefix gone, suffix + header intact"
    [ "c"; "H" ] (Wal.records wal);
  Alcotest.(check int) "two records dropped" 2 (Wal.dropped wal);
  Alcotest.(check int) "one truncation" 1 (Wal.truncations wal)

(* Crash window 1: before the header is durable.  The log must be
   untouched (the header may land as a torn tail), exactly as if the
   truncation never started. *)
let test_wal_truncate_crash_before_header () =
  let eng = Engine.create () in
  let wal = Wal.create eng ~name:"w" in
  List.iter (fun r -> Wal.append_async wal r (fun () -> ())) [ "a"; "b" ];
  Engine.run eng;
  let fired = ref false in
  Wal.truncate_to wal ~header:"HH" ~drop:(fun _ -> true) (fun () -> fired := true);
  (* crash while the header append is still in flight *)
  Alcotest.(check bool) "header was mid-write" true (Wal.crash_torn_tail wal);
  Engine.run eng;
  Alcotest.(check bool) "drop never ran" false !fired;
  Alcotest.(check (list string)) "old records intact" [ "a"; "b" ] (Wal.records wal);
  Alcotest.(check int) "nothing dropped" 0 (Wal.dropped wal)

(* Crash window 2: header durable, physical drop not yet issued.  Both
   the header and the superseded records survive; recovery must treat
   them idempotently, and re-running the truncation converges. *)
let test_wal_truncate_crash_between_phases () =
  let eng = Engine.create () in
  let wal = Wal.create eng ~name:"w" in
  List.iter (fun r -> Wal.append_async wal r (fun () -> ())) [ "a"; "b" ];
  Engine.run eng;
  let fired = ref false in
  let old_header = "H1" in
  Wal.truncate_to wal ~header:old_header ~drop:(fun _ -> true) (fun () ->
      fired := true);
  (* run just past the header's fsync (15 us) but not to the drop *)
  Engine.run ~until:(Engine.now eng + Time.us 20) eng;
  Alcotest.(check bool) "no in-flight write to tear" false (Wal.crash_torn_tail wal);
  Engine.run eng;
  Alcotest.(check bool) "drop canceled by the crash" false !fired;
  Alcotest.(check (list string)) "header AND old records both present"
    [ "a"; "b"; "H1" ] (Wal.records wal);
  (* recovery re-truncates: a fresh header supersedes everything older,
     including the orphaned one *)
  Wal.truncate_to wal ~header:"H2" ~drop:(fun _ -> true) (fun () -> ());
  Engine.run eng;
  Alcotest.(check (list string)) "re-truncation converges" [ "H2" ] (Wal.records wal);
  Alcotest.(check int) "orphans dropped" 3 (Wal.dropped wal)

(* ------------------------------------------------------------------ *)
(* Paxos-level compaction and snapshot catch-up *)

type sim = {
  eng : Engine.t;
  fabric : Fabric.t;
  wals : (string, Wal.t) Hashtbl.t;
  mutable nodes : (string * Paxos.t * Engine.group * string ref) list;
}

let members = [ "n1"; "n2"; "n3" ]

let compact_config ~threshold =
  {
    Paxos.heartbeat_period = Time.ms 50;
    election_timeout = Time.ms 200;
    election_jitter = Time.ms 30;
    round_retry = Time.ms 50;
    compaction_threshold = threshold;
    catchup_chunk = 16;
    suspect_timeout = Paxos.default_config.suspect_timeout;
    lease_duration = Time.ms 100;
  }

let fold_state state v = Digest.to_hex (Digest.string (state ^ v))

let add_node sim ~config name =
  let wal =
    match Hashtbl.find_opt sim.wals name with
    | Some w -> w
    | None ->
      let w = Wal.create sim.eng ~name in
      Hashtbl.add sim.wals name w;
      w
  in
  let group = Engine.new_group sim.eng in
  let p =
    Paxos.create ~config ~fabric:sim.fabric ~rng:(Rng.create (Hashtbl.hash name))
      ~wal ~members ~node:name ~group ()
  in
  let state = ref "" in
  Paxos.set_handlers p
    { Paxos.on_commit = (fun ~index:_ v -> state := fold_state !state v);
      on_demote = (fun () -> ());
      on_config = (fun ~epoch:_ _ -> ());
      on_fence = (fun ~epoch:_ -> ()) };
  Paxos.set_compaction_hooks p
    { Paxos.install_snapshot =
        (fun ~index:_ blob -> state := (Marshal.from_string blob 0 : string));
      on_compact = (fun ~watermark:_ -> ()) };
  Paxos.start p ~as_primary:(name = "n1") ();
  Fabric.node_up sim.fabric name;
  (* WAL recovery does not re-fire on_commit; rebuild the state the way a
     real instance would — restored snapshot plus resident suffix. *)
  let from =
    match Paxos.snapshot p with
    | Some (s_index, blob) when s_index <= Paxos.applied p ->
      state := (Marshal.from_string blob 0 : string);
      s_index + 1
    | _ -> Paxos.base p + 1
  in
  List.iter
    (fun v -> state := fold_state !state v)
    (Paxos.get_committed_range p ~lo:from ~hi:(Paxos.applied p));
  sim.nodes <- sim.nodes @ [ (name, p, group, state) ];
  (p, group, state)

let make_sim ?(seed = 19) ~threshold () =
  let eng = Engine.create () in
  let fabric = Fabric.create eng (Rng.create seed) in
  let sim = { eng; fabric; wals = Hashtbl.create 4; nodes = [] } in
  let config = compact_config ~threshold in
  let nodes = List.map (fun n -> add_node sim ~config n) members in
  (sim, nodes)

let kill_node sim name =
  match List.find_opt (fun (n, _, _, _) -> n = name) sim.nodes with
  | Some (_, _, g, _) ->
    Engine.kill_group sim.eng g;
    Fabric.node_down sim.fabric name;
    sim.nodes <- List.filter (fun (n, _, _, _) -> n <> name) sim.nodes
  | None -> ()

(* n2 plays the checkpoint backup: hand its state to consensus as a
   snapshot every [every] applied entries.  [stop_after] freezes the
   snapshot index, which pins the compaction watermark and guarantees a
   log suffix survives for the chunked catch-up path to page through. *)
let snapshot_offerer sim (p2, state2) ~every ~stop_after =
  let last = ref 0 in
  let rec loop () =
    Engine.after sim.eng (Time.ms 10) (fun () ->
        let a = Paxos.applied p2 in
        if a - !last >= every && a <= stop_after then begin
          last := a;
          Paxos.offer_snapshot p2 ~index:a ~blob:(Marshal.to_string !state2 [])
        end;
        loop ())
  in
  loop ()

let stream sim p1 ~n =
  Engine.spawn sim.eng ~name:"stream" (fun () ->
      Engine.sleep sim.eng (Time.ms 10);
      for i = 1 to n do
        ignore (Paxos.submit p1 (Printf.sprintf "v%d" i));
        Engine.sleep sim.eng (Time.us 200)
      done)

let test_compaction_bounds_log () =
  let sim, nodes = make_sim ~threshold:32 () in
  let p1, _, _ = List.nth nodes 0 in
  let p2, _, s2 = List.nth nodes 1 in
  snapshot_offerer sim (p2, s2) ~every:64 ~stop_after:320;
  stream sim p1 ~n:400;
  Engine.run ~until:(Time.ms 400) sim.eng;
  check_no_failures sim.eng;
  List.iter
    (fun (name, p, _, _) ->
      let s = Paxos.stats p in
      Alcotest.(check bool) (name ^ " committed everything") true
        (Paxos.committed p = 400);
      Alcotest.(check bool) (name ^ " compacted") true (Paxos.base p > 0);
      Alcotest.(check bool)
        (Printf.sprintf "%s log bounded (peak %d)" name s.Paxos.peak_log_resident)
        true
        (s.Paxos.peak_log_resident < 300);
      Alcotest.(check bool) (name ^ " WAL prefix freed") true
        (Wal.dropped (Hashtbl.find sim.wals name) > 0))
    sim.nodes;
  (* resident suffixes agree across replicas *)
  let lo = 1 + List.fold_left (fun m (_, p, _, _) -> max m (Paxos.base p)) 0 sim.nodes in
  let range p = Paxos.get_committed_range p ~lo ~hi:(Paxos.committed p) in
  let r1 = range p1 in
  Alcotest.(check bool) "suffix nonempty" true (r1 <> []);
  List.iter
    (fun (name, p, _, _) ->
      Alcotest.(check (list string)) (name ^ " suffix agrees") r1 (range p))
    sim.nodes

let test_snapshot_catchup_converges () =
  let sim, nodes = make_sim ~threshold:32 () in
  let p1, _, s1 = List.nth nodes 0 in
  let p2, _, s2 = List.nth nodes 1 in
  (* snapshots stop at index ~600 of a 1000-entry history: recovery needs
     the snapshot AND hundreds of suffix entries paged in small chunks *)
  snapshot_offerer sim (p2, s2) ~every:64 ~stop_after:600;
  stream sim p1 ~n:1000;
  (* kill n3 early: by restart time the watermark is far past its applied
     index, so its log prefix no longer exists anywhere *)
  Engine.run ~until:(Time.ms 20) sim.eng;
  kill_node sim "n3";
  (* the dead peer drops out of the watermark once it goes stale
     (election_timeout), after which compaction passes its old position *)
  Engine.run ~until:(Time.ms 300) sim.eng;
  Alcotest.(check bool) "primary compacted past the victim" true
    (Paxos.base p1 > 40);
  let p3, _, s3 = add_node sim ~config:(compact_config ~threshold:32) "n3" in
  Engine.run ~until:(Time.sec 1) sim.eng;
  check_no_failures sim.eng;
  let st3 = Paxos.stats p3 in
  Alcotest.(check bool) "recovered via the snapshot path" true
    (st3.Paxos.snapshots_installed >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "chunked catch-up paged the suffix in (installed %d)"
       st3.Paxos.catchup_installed)
    true
    (st3.Paxos.catchup_installed >= 100);
  Alcotest.(check int) "applied the whole history" (Paxos.committed p1)
    (Paxos.applied p3);
  Alcotest.(check string) "state converged" !s1 !s3

(* Every long-lived per-entry structure stays bounded: the ack table is
   pruned as the commit index advances, and the batch-size histogram is
   clamped to a fixed bucket range. *)
let test_ack_and_histogram_bounded () =
  let sim, nodes = make_sim ~threshold:0 () in
  let p1, _, _ = List.nth nodes 0 in
  Engine.spawn sim.eng ~name:"stream" (fun () ->
      Engine.sleep sim.eng (Time.ms 10);
      (* an oversized batch lands in the top histogram bucket *)
      ignore (Paxos.submit_batch p1 (List.init 100 (fun i -> Printf.sprintf "b%d" i)));
      for i = 1 to 300 do
        ignore (Paxos.submit p1 (Printf.sprintf "v%d" i));
        Engine.sleep sim.eng (Time.us 200)
      done);
  Engine.run ~until:(Time.ms 300) sim.eng;
  check_no_failures sim.eng;
  let s = Paxos.stats p1 in
  (* the 100-event batch is one Accept round but occupies 100 indices *)
  Alcotest.(check int) "all committed" 400 (Paxos.committed p1);
  Alcotest.(check bool)
    (Printf.sprintf "ack table pruned behind the commit index (resident %d)"
       s.Paxos.acks_resident)
    true
    (s.Paxos.acks_resident <= 64);
  List.iter
    (fun (size, _) ->
      Alcotest.(check bool)
        (Printf.sprintf "histogram bucket %d within cap" size)
        true (size <= 64))
    s.Paxos.events_per_batch;
  Alcotest.(check bool) "oversized batch clamped into the cap bucket" true
    (List.mem_assoc 64 s.Paxos.events_per_batch);
  (* the clamp must not hide the truth: the unclamped observed max
     survives in stats, and the report labels the folded bucket "64+" *)
  Alcotest.(check int) "true max batch reported unclamped" 100 s.Paxos.max_batch;
  Alcotest.(check int) "histogram cap exposed" 64 Paxos.histogram_cap;
  Alcotest.(check (list (list string)))
    "top bucket rendered as cap+"
    [ [ "1"; "300" ]; [ "64+"; "1" ] ]
    (Crane_report.Table.histogram_rows ~cap:Paxos.histogram_cap
       s.Paxos.events_per_batch)

(* The quiescence back-off is capped: a connection that never drains
   skips the round instead of wedging the checkpointer forever. *)
let test_quiescence_cap_skips_round () =
  let eng = Engine.create () in
  let fs = Memfs.create () in
  let container = Container.create eng ~name:"lxc" fs in
  let mgr =
    Manager.create eng ~max_backoffs:4 ~container
      ~state_of:(fun () -> "s")
      ~mem_bytes:(fun () -> 1_000_000)
      ~alive_conns:(fun () -> 1) (* never drains *)
      ~global_index:(fun () -> 7)
  in
  let result = ref (Some true) in
  Engine.spawn eng ~name:"ckpt" (fun () ->
      result := Option.map (fun _ -> true) (Manager.checkpoint_now mgr));
  Engine.run eng;
  check_no_failures eng;
  Alcotest.(check bool) "round skipped" true (!result = None);
  Alcotest.(check int) "skip counted" 1 (Manager.checkpoints_skipped mgr);
  Alcotest.(check int) "nothing checkpointed" 0 (Manager.checkpoints_taken mgr)

(* ------------------------------------------------------------------ *)
(* Fixed-seed equivalence: compaction must be invisible in the outputs *)

let run_cluster_outputs ~threshold ~output_keep =
  let cfg =
    { Chaos.chaos_config with
      Instance.paxos =
        { Chaos.chaos_config.Instance.paxos with
          Paxos.compaction_threshold = threshold };
      checkpoint_period = Time.ms 800;
      output_keep;
    }
  in
  let cluster = Cluster.create ~seed:23 ~cfg ~server:Ledger.server () in
  Cluster.start cluster;
  let eng = Cluster.engine cluster in
  Cluster.run ~until:(Time.ms 200) cluster;
  let target = Target.cluster cluster ~port:80 in
  let ledger = Ledger.client () in
  let handle =
    Loadgen.run ~name:"load" ~think:(Time.ms 5) ~retries:4
      ~retry_backoff:(Time.ms 100) ~clients:1 ~requests:120
      ~request:(Ledger.request ledger) target
  in
  Loadgen.drive ~timeout:(Time.sec 60) target handle;
  (* leave time for checkpoints to quiesce and compaction to run *)
  Cluster.run ~until:(Engine.now eng + Time.sec 4) cluster;
  Cluster.check_failures cluster;
  (Cluster.outputs cluster, List.map (fun (n, i) -> (n, i.Instance.paxos)) (Cluster.instances cluster))

let test_outputs_identical_compaction_on_off () =
  let on, on_paxos = run_cluster_outputs ~threshold:24 ~output_keep:32 in
  let off, _ = run_cluster_outputs ~threshold:0 ~output_keep:1_000_000 in
  (* the compacting run actually compacted and trimmed, or this test
     checks nothing *)
  Alcotest.(check bool) "compaction happened" true
    (List.exists (fun (_, p) -> (Paxos.stats p).Paxos.compactions > 0) on_paxos);
  Alcotest.(check bool) "output log trimmed" true
    (List.exists (fun (_, o) -> Output_log.dropped o > 0) on);
  List.iter2
    (fun (na, oa) (nb, ob) ->
      Alcotest.(check string) "same replica" na nb;
      Alcotest.(check int) (na ^ " same total outputs") (Output_log.total oa)
        (Output_log.total ob);
      Alcotest.(check bool) (na ^ " outputs identical across modes") true
        (Output_log.equal oa ob))
    on off

let suite =
  [
    ( "compaction",
      [
        Alcotest.test_case "wal truncate drops prefix" `Quick
          test_wal_truncate_drops_prefix;
        Alcotest.test_case "wal crash before header" `Quick
          test_wal_truncate_crash_before_header;
        Alcotest.test_case "wal crash between phases" `Quick
          test_wal_truncate_crash_between_phases;
        Alcotest.test_case "compaction bounds the log" `Quick
          test_compaction_bounds_log;
        Alcotest.test_case "snapshot catch-up converges" `Quick
          test_snapshot_catchup_converges;
        Alcotest.test_case "acks + histogram bounded" `Quick
          test_ack_and_histogram_bounded;
        Alcotest.test_case "quiescence cap skips round" `Quick
          test_quiescence_cap_skips_round;
        Alcotest.test_case "outputs identical, compaction on/off" `Slow
          test_outputs_identical_compaction_on_off;
      ] );
  ]
