(* Tests for live membership reconfiguration: Reconfig entries through
   consensus (joint quorum, epochs, fencing of removed replicas) at the
   raw PAXOS level, and the Cluster add/remove/replace/autoheal APIs
   end-to-end. *)

module Time = Crane_sim.Time
module Rng = Crane_sim.Rng
module Engine = Crane_sim.Engine
module Fabric = Crane_net.Fabric
module Wal = Crane_storage.Wal
module Paxos = Crane_paxos.Paxos
module Api = Crane_core.Api
module Instance = Crane_core.Instance
module Cluster = Crane_core.Cluster

(* ------------------------------------------------------------------ *)
(* Raw-paxos harness: like test_paxos's, plus per-node config/fence
   event recording and a variable boot member list (joiners boot with
   the configuration that admitted them). *)

type node_rec = {
  n_name : string;
  n_p : Paxos.t;
  n_group : Engine.group;
  n_log : string list ref;
  n_configs : (int * string list) list ref;  (* activations, newest first *)
  n_fenced_at : int option ref;
}

type sim = {
  eng : Engine.t;
  fabric : Fabric.t;
  mutable nodes : node_rec list;
  wals : (string, Wal.t) Hashtbl.t;
}

let fast_config =
  {
    Paxos.heartbeat_period = Time.ms 100;
    election_timeout = Time.ms 300;
    election_jitter = Time.ms 50;
    round_retry = Time.ms 100;
    compaction_threshold = Paxos.default_config.compaction_threshold;
    catchup_chunk = Paxos.default_config.catchup_chunk;
    suspect_timeout = Time.ms 450;
    lease_duration = Time.ms 150;
  }

let boot_members = [ "n1"; "n2"; "n3" ]

let make_sim ?(seed = 7) () =
  let eng = Engine.create () in
  let fabric = Fabric.create eng (Rng.create seed) in
  { eng; fabric; nodes = []; wals = Hashtbl.create 4 }

let add_node ?(members = boot_members) sim name =
  let wal =
    match Hashtbl.find_opt sim.wals name with
    | Some w -> w
    | None ->
      let w = Wal.create sim.eng ~name in
      Hashtbl.add sim.wals name w;
      w
  in
  let group = Engine.new_group sim.eng in
  let rng = Rng.create (Hashtbl.hash name) in
  let p =
    Paxos.create ~config:fast_config ~fabric:sim.fabric ~rng ~wal ~members ~node:name
      ~group ()
  in
  let log = ref [] in
  let configs = ref [] in
  let fenced_at = ref None in
  Paxos.set_handlers p
    { Paxos.on_commit = (fun ~index:_ v -> log := v :: !log);
      on_demote = (fun () -> ());
      on_config = (fun ~epoch members -> configs := (epoch, members) :: !configs);
      on_fence = (fun ~epoch -> fenced_at := Some epoch) };
  Paxos.start p ();
  Fabric.node_up sim.fabric name;
  let nr =
    { n_name = name; n_p = p; n_group = group; n_log = log; n_configs = configs;
      n_fenced_at = fenced_at }
  in
  sim.nodes <- sim.nodes @ [ nr ];
  nr

let start_cluster ?seed () =
  let sim = make_sim ?seed () in
  let nodes = List.map (fun n -> add_node sim n) boot_members in
  (sim, nodes)

let find_primary sim = List.find_opt (fun nr -> Paxos.is_primary nr.n_p) sim.nodes

let kill_node sim name =
  match List.find_opt (fun nr -> nr.n_name = name) sim.nodes with
  | Some nr ->
    Engine.kill_group sim.eng nr.n_group;
    Fabric.node_down sim.fabric name;
    sim.nodes <- List.filter (fun nr -> nr.n_name <> name) sim.nodes
  | None -> ()

let sorted = List.sort compare

(* ------------------------------------------------------------------ *)

let test_add_replica_through_consensus () =
  let sim, nodes = start_cluster () in
  let p1 = (List.hd nodes).n_p in
  let grown = boot_members @ [ "n4" ] in
  Engine.spawn sim.eng ~name:"admin" (fun () ->
      Engine.sleep sim.eng (Time.ms 50);
      (match Paxos.submit_reconfig p1 grown with
      | Some _ -> ()
      | None -> Alcotest.fail "primary refused a valid reconfig");
      (* Boot the joiner only after the new configuration is in force on
         the primary — the Cluster driver's ordering. *)
      while Paxos.epoch p1 < 1 do
        Engine.sleep sim.eng (Time.ms 20)
      done;
      ignore (add_node ~members:grown sim "n4");
      Engine.sleep sim.eng (Time.ms 300);
      for i = 1 to 5 do
        ignore (Paxos.submit p1 (Printf.sprintf "v%d" i))
      done);
  Engine.run ~until:(Time.sec 3) sim.eng;
  List.iter
    (fun nr ->
      Alcotest.(check int) (nr.n_name ^ " reached epoch 1") 1 (Paxos.epoch nr.n_p);
      Alcotest.(check (list string)) (nr.n_name ^ " sees grown membership")
        (sorted grown)
        (sorted (Paxos.members nr.n_p)))
    sim.nodes;
  (match List.find_opt (fun nr -> nr.n_name = "n4") sim.nodes with
  | Some nr ->
    Alcotest.(check (list string)) "joiner applied post-join commits"
      (List.init 5 (fun i -> Printf.sprintf "v%d" (i + 1)))
      (List.rev !(nr.n_log));
    Alcotest.(check (list (pair int (list string)))) "joiner activated exactly epoch 1"
      [ (1, grown) ] !(nr.n_configs)
  | None -> Alcotest.fail "n4 missing");
  Alcotest.(check bool) "no reconfig left pending" false (Paxos.reconfig_pending p1)

let test_reconfig_refusals () =
  let sim, nodes = start_cluster () in
  let p1 = (List.hd nodes).n_p in
  let p2 = (List.nth nodes 1).n_p in
  Engine.spawn sim.eng ~name:"admin" (fun () ->
      Engine.sleep sim.eng (Time.ms 50);
      Alcotest.(check bool) "backup refuses reconfig" true
        (Paxos.submit_reconfig p2 (boot_members @ [ "n4" ]) = None);
      Alcotest.(check bool) "no-op membership refused" true
        (Paxos.submit_reconfig p1 boot_members = None);
      Alcotest.(check bool) "first real change accepted" true
        (Paxos.submit_reconfig p1 (boot_members @ [ "n4" ]) <> None);
      (* The joint-quorum window is still open: a second change must wait. *)
      Alcotest.(check bool) "overlapping reconfig refused" true
        (Paxos.submit_reconfig p1 (boot_members @ [ "n5" ]) = None);
      Alcotest.(check bool) "window visible" true (Paxos.reconfig_pending p1));
  Engine.run ~until:(Time.sec 1) sim.eng;
  Alcotest.(check int) "the accepted change activated" 1 (Paxos.epoch p1)

let test_removed_replica_fenced () =
  let sim, nodes = start_cluster () in
  let p1 = (List.hd nodes).n_p in
  let n3 = List.nth nodes 2 in
  Engine.spawn sim.eng ~name:"admin" (fun () ->
      Engine.sleep sim.eng (Time.ms 50);
      ignore (Paxos.submit_reconfig p1 [ "n1"; "n2" ]);
      Engine.sleep sim.eng (Time.sec 1);
      (* The shrunken cluster keeps committing without n3's vote. *)
      for i = 1 to 3 do
        ignore (Paxos.submit p1 (Printf.sprintf "w%d" i))
      done);
  Engine.run ~until:(Time.sec 3) sim.eng;
  Alcotest.(check int) "survivors at epoch 1" 1 (Paxos.epoch p1);
  Alcotest.(check (list string)) "membership shrank" [ "n1"; "n2" ]
    (sorted (Paxos.members p1));
  Alcotest.(check bool) "removed replica knows it is fenced" true
    (Paxos.fenced n3.n_p);
  Alcotest.(check (option int)) "fence carries the removing epoch" (Some 1)
    !(n3.n_fenced_at);
  Alcotest.(check int) "two-node quorum still commits" 3
    (List.length !((List.hd nodes).n_log))

let test_joint_quorum_blocks_without_old_majority () =
  let sim, nodes = start_cluster () in
  let p1 = (List.hd nodes).n_p in
  Engine.at sim.eng (Time.ms 60) (fun () ->
      kill_node sim "n2";
      kill_node sim "n3");
  Engine.spawn sim.eng ~name:"admin" (fun () ->
      Engine.sleep sim.eng (Time.ms 100);
      (* n1 alone is a majority of neither the old {n1,n2,n3} nor the new
         {n1,n4,n5} configuration: the Reconfig must stay pending. *)
      ignore (Paxos.submit_reconfig p1 [ "n1"; "n4"; "n5" ]));
  Engine.run ~until:(Time.sec 2) sim.eng;
  Alcotest.(check int) "epoch frozen without joint quorum" 0 (Paxos.epoch p1);
  Alcotest.(check bool) "reconfig stuck pending" true (Paxos.reconfig_pending p1)

let test_joint_quorum_spans_dead_member () =
  let sim, nodes = start_cluster () in
  let p1 = (List.hd nodes).n_p in
  Engine.at sim.eng (Time.ms 60) (fun () -> kill_node sim "n3");
  Engine.spawn sim.eng ~name:"admin" (fun () ->
      Engine.sleep sim.eng (Time.ms 100);
      (* Swapping the dead n3 for n4 needs {n1,n2} — a majority of the old
         config AND of the new {n1,n2,n4} even before n4 boots. *)
      ignore (Paxos.submit_reconfig p1 [ "n1"; "n2"; "n4" ]));
  Engine.run ~until:(Time.sec 2) sim.eng;
  Alcotest.(check int) "swap committed with the dead node down" 1 (Paxos.epoch p1);
  Alcotest.(check (list string)) "membership swapped" [ "n1"; "n2"; "n4" ]
    (sorted (Paxos.members p1))

(* ------------------------------------------------------------------ *)
(* Cluster-level: the management APIs drive the same machinery through
   a real instance stack (proxy + DMT + checkpoint harness). *)

let null_server : Api.server =
  {
    Api.name = "null";
    install = (fun _ -> ());
    boot =
      (fun api ->
        let module R = (val api : Api.API) in
        ignore (R.mutex ());
        {
          Api.server_name = "null";
          state_of = (fun () -> "");
          load_state = (fun _ -> ());
          mem_bytes = (fun () -> 1_000);
          stop = (fun () -> ());
          read = (fun _ -> None);
          footprint = (fun _ -> None);
        });
  }

let cluster_cfg =
  { Instance.default_config with mode = Instance.Paxos_only; paxos = fast_config }

let live_epochs cluster =
  List.map
    (fun (n, inst) -> (n, (Paxos.stats inst.Instance.paxos).Paxos.epoch))
    (Cluster.instances cluster)

let test_cluster_replace_replica () =
  let cluster = Cluster.create ~seed:5 ~cfg:cluster_cfg ~server:null_server () in
  Cluster.start ~checkpoints:false cluster;
  let eng = Cluster.engine cluster in
  Engine.at eng (Time.ms 300) (fun () -> Cluster.kill cluster "replica3");
  Engine.at eng (Time.ms 500) (fun () ->
      Cluster.replace_replica cluster ~dead:"replica3" ~fresh:"replica4");
  Cluster.run ~until:(Time.sec 5) cluster;
  Cluster.check_failures cluster;
  Alcotest.(check (list string)) "cluster membership swapped"
    [ "replica1"; "replica2"; "replica4" ]
    (sorted (Cluster.members cluster));
  Alcotest.(check int) "cluster tracked the epoch" 1 (Cluster.current_epoch cluster);
  Alcotest.(check bool) "replacement instance running" true
    (Cluster.instance cluster "replica4" <> None);
  List.iter
    (fun (n, e) -> Alcotest.(check int) (n ^ " at epoch 1") 1 e)
    (live_epochs cluster)

let test_cluster_autoheal_replaces_crashed () =
  let cluster = Cluster.create ~seed:6 ~cfg:cluster_cfg ~server:null_server () in
  Cluster.start ~checkpoints:false cluster;
  let eng = Cluster.engine cluster in
  Cluster.enable_autoheal cluster;
  Engine.at eng (Time.ms 500) (fun () -> Cluster.kill cluster "replica2");
  Cluster.run ~until:(Time.sec 6) cluster;
  Cluster.check_failures cluster;
  Alcotest.(check (list string)) "detector swapped in a fresh replica"
    [ "auto1"; "replica1"; "replica3" ]
    (sorted (Cluster.members cluster));
  Alcotest.(check int) "exactly one automatic reconfiguration" 1
    (Cluster.current_epoch cluster);
  Alcotest.(check bool) "fresh replica running" true
    (Cluster.instance cluster "auto1" <> None)

let suite =
  [
    ( "reconfig",
      [
        Alcotest.test_case "add replica through consensus" `Quick
          test_add_replica_through_consensus;
        Alcotest.test_case "reconfig refusals" `Quick test_reconfig_refusals;
        Alcotest.test_case "removed replica fenced" `Quick test_removed_replica_fenced;
        Alcotest.test_case "joint quorum blocks without old majority" `Quick
          test_joint_quorum_blocks_without_old_majority;
        Alcotest.test_case "joint quorum spans dead member" `Quick
          test_joint_quorum_spans_dead_member;
        Alcotest.test_case "cluster replace replica" `Quick test_cluster_replace_replica;
        Alcotest.test_case "cluster autoheal replaces crashed" `Quick
          test_cluster_autoheal_replaces_crashed;
      ] );
  ]
