(* The flight recorder: determinism of the exported trace, per-replica
   event accounting against ground truth, and the disabled-sink
   zero-event guarantee. *)

module Time = Crane_sim.Time
module Engine = Crane_sim.Engine
module Instance = Crane_core.Instance
module Cluster = Crane_core.Cluster
module Paxos = Crane_paxos.Paxos
module Trace = Crane_trace.Trace
module Metrics = Crane_trace.Metrics

(* One traced run of the echo cluster: [n] clients, one request each,
   against replica1.  Returns the recorder and the cluster (for ground
   truth) after the simulation settles. *)
let traced_run ?(seed = 42) ?(n = 6) () =
  let tr = Trace.create () in
  let cluster =
    Cluster.create ~seed
      ~cfg:(Test_crane.test_cfg Instance.Full)
      ~trace:tr ~server:Test_crane.echo_server ()
  in
  Cluster.start ~checkpoints:false cluster;
  let eng = Cluster.engine cluster in
  let answered = ref 0 in
  for i = 1 to n do
    Engine.spawn eng ~name:(Printf.sprintf "client%d" i) (fun () ->
        Engine.sleep eng (Time.ms (10 * i));
        match
          Test_crane.one_request cluster ~from:(Printf.sprintf "c%d" i)
            ~node:"replica1"
            ~msg:(Printf.sprintf "hello%d" i)
        with
        | Some _ -> incr answered
        | None -> ())
  done;
  Cluster.run ~until:(Time.sec 3) cluster;
  Cluster.check_failures cluster;
  Alcotest.(check int) "all clients answered" n !answered;
  (tr, cluster)

(* Same seed, two separate simulations: the exported traces must match
   byte for byte (the determinism guarantee the whole layer rests on). *)
let test_deterministic_export () =
  let tr1, _ = traced_run () in
  let tr2, _ = traced_run () in
  Alcotest.(check bool) "trace is non-trivial" true (Trace.length tr1 > 100);
  Alcotest.(check int) "no events dropped" 0 (Trace.dropped tr1);
  Alcotest.(check string) "chrome JSON byte-identical" (Trace.to_chrome tr1)
    (Trace.to_chrome tr2);
  Alcotest.(check string) "JSONL byte-identical" (Trace.to_jsonl tr1)
    (Trace.to_jsonl tr2)

(* A different seed must still satisfy internal invariants but is free to
   differ; a cheap guard that the equality above is not vacuous. *)
let test_seed_sensitivity () =
  let tr1, _ = traced_run ~seed:42 () in
  let tr2, _ = traced_run ~seed:43 () in
  Alcotest.(check bool) "different seeds, different traces" true
    (Trace.to_chrome tr1 <> Trace.to_chrome tr2)

(* Per-replica commit accounting: every replica applies every decided
   entry, so each must log exactly [Paxos.decisions] "paxos.commit"
   instants, and the three replicas must agree. *)
let test_commit_counts () =
  let tr, cluster = traced_run () in
  let met = Metrics.of_trace ~per_node:true tr in
  let instances = Cluster.instances cluster in
  Alcotest.(check int) "three replicas" 3 (List.length instances);
  List.iter
    (fun (node, inst) ->
      let decided = (Paxos.stats inst.Instance.paxos).Paxos.decisions in
      Alcotest.(check bool) ("some decisions on " ^ node) true (decided > 0);
      Alcotest.(check int)
        ("commit events match decisions on " ^ node)
        decided
        (Metrics.counter_value met (node ^ "/paxos.commit")))
    instances;
  (* And proposals only happen on the primary. *)
  let proposes =
    List.filter
      (fun (node, _) -> Metrics.counter_value met (node ^ "/paxos.propose") > 0)
      instances
  in
  Alcotest.(check int) "exactly one proposing replica" 1 (List.length proposes)

(* Spans recorded during the run must aggregate into sane histograms:
   paired, positive, and attributed. *)
let test_span_metrics () =
  let tr, _ = traced_run () in
  let met = Metrics.of_trace tr in
  (match Metrics.summary met "paxos.decide" with
  | None -> Alcotest.fail "no paxos.decide spans recorded"
  | Some s ->
    Alcotest.(check bool) "decide spans positive" true (s.Metrics.p50 > 0);
    Alcotest.(check bool) "decide p99 >= p50" true (s.Metrics.p99 >= s.Metrics.p50));
  match Metrics.summary met "dmt.turn_wait" with
  | None -> Alcotest.fail "no dmt.turn_wait spans recorded"
  | Some s -> Alcotest.(check bool) "turn waits observed" true (s.Metrics.count > 0)

(* Without an attached recorder the engine uses Trace.null: permanently
   disabled, zero events, zero cost beyond one branch per site. *)
let test_disabled_sink_records_nothing () =
  let cluster =
    Cluster.create ~cfg:(Test_crane.test_cfg Instance.Full)
      ~server:Test_crane.echo_server ()
  in
  Cluster.start ~checkpoints:false cluster;
  let eng = Cluster.engine cluster in
  Engine.spawn eng ~name:"client" (fun () ->
      Engine.sleep eng (Time.ms 10);
      ignore (Test_crane.one_request cluster ~from:"c1" ~node:"replica1" ~msg:"hi"));
  Cluster.run ~until:(Time.sec 2) cluster;
  Cluster.check_failures cluster;
  let tr = Engine.trace eng in
  Alcotest.(check bool) "default sink is disabled" false (Trace.enabled tr);
  Alcotest.(check int) "no events recorded" 0 (Trace.length tr);
  (* The null sink cannot be switched on by accident. *)
  Trace.set_enabled Trace.null true;
  Alcotest.(check bool) "null stays disabled" false (Trace.enabled Trace.null)

(* An explicitly disabled recorder drops events at the emit sites too. *)
let test_toggling () =
  let tr = Trace.create () in
  Trace.instant tr ~ts:0 ~tid:1 ~cat:"x" ~name:"a" [];
  Trace.set_enabled tr false;
  (* Call sites guard on [enabled]; emitting while disabled is the bug
     this test would catch in instrumentation code. *)
  Alcotest.(check bool) "disabled" false (Trace.enabled tr);
  Trace.set_enabled tr true;
  Trace.instant tr ~ts:5 ~tid:1 ~cat:"x" ~name:"a" [];
  Alcotest.(check int) "both enabled-time events kept" 2 (Trace.length tr)

(* Retention limit: overflow is counted, never raised, and the limit
   keeps memory bounded. *)
let test_limit_and_streaming () =
  let tr = Trace.create ~limit:10 () in
  let streamed = ref 0 in
  Trace.add_sink tr (fun _ -> incr streamed);
  for i = 1 to 25 do
    Trace.instant tr ~ts:i ~tid:0 ~cat:"c" ~name:"n" []
  done;
  Alcotest.(check int) "retained capped" 10 (Trace.length tr);
  Alcotest.(check int) "overflow counted" 15 (Trace.dropped tr);
  Alcotest.(check int) "sink saw everything" 25 !streamed;
  let tr2 = Trace.create ~retain:false () in
  let met = Metrics.create () in
  Metrics.attach met tr2;
  for i = 1 to 7 do
    Trace.instant tr2 ~ts:i ~tid:0 ~cat:"c" ~name:"n" []
  done;
  Alcotest.(check int) "non-retaining keeps nothing" 0 (Trace.length tr2);
  Alcotest.(check int) "metrics counted via sink" 7 (Metrics.counter_value met "c.n")

let suite =
  [
    ( "trace",
      [
        Alcotest.test_case "deterministic export" `Quick test_deterministic_export;
        Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
        Alcotest.test_case "commit counts per replica" `Quick test_commit_counts;
        Alcotest.test_case "span metrics" `Quick test_span_metrics;
        Alcotest.test_case "disabled sink records nothing" `Quick
          test_disabled_sink_records_nothing;
        Alcotest.test_case "toggling" `Quick test_toggling;
        Alcotest.test_case "limit and streaming" `Quick test_limit_and_streaming;
      ] );
  ]
