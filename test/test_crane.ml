(* End-to-end tests of the CRANE core: a small echo server replicated
   across three replicas, driven by real clients over the simulated
   network — consistency, failover, checkpoint/restore. *)

module Time = Crane_sim.Time
module Engine = Crane_sim.Engine
module Sock = Crane_socket.Sock
module Api = Crane_core.Api
module Event = Crane_core.Event
module Paxos_seq = Crane_core.Paxos_seq
module Output_log = Crane_core.Output_log
module Instance = Crane_core.Instance
module Cluster = Crane_core.Cluster
module Standalone = Crane_core.Standalone

(* A minimal multithreaded server: listener + per-connection handlers,
   one shared counter behind a mutex. *)
let echo_server : Api.server =
  {
    Api.name = "echo";
    install = (fun fs -> Crane_fs.Memfs.write fs ~path:"install/echo.conf" "workers=4");
    boot =
      (fun api ->
        let module R = (val api : Api.API) in
        let served = ref 0 in
        let stopped = ref false in
        let mu = R.mutex () in
        R.spawn ~name:"echo-listener" (fun () ->
            let l = R.listen ~port:80 in
            while not !stopped do
              R.poll l;
              let c = R.accept l in
              R.spawn ~name:"echo-handler" (fun () ->
                  let rec serve () =
                    let req = R.recv c ~max:4096 in
                    if req = "" then R.close c
                    else begin
                      R.lock mu;
                      incr served;
                      let n = !served in
                      R.unlock mu;
                      R.send c (Printf.sprintf "echo[%d]:%s" n req);
                      serve ()
                    end
                  in
                  serve ())
            done);
        {
          Api.server_name = "echo";
          state_of = (fun () -> string_of_int !served);
          load_state = (fun s -> served := int_of_string s);
          mem_bytes = (fun () -> 1_000_000);
          stop = (fun () -> stopped := true);
          read = (fun _ -> None);
          footprint = (fun _ -> None);
        });
  }

let fast_paxos =
  {
    Crane_paxos.Paxos.heartbeat_period = Time.ms 100;
    election_timeout = Time.ms 300;
    election_jitter = Time.ms 50;
    round_retry = Time.ms 100;
    compaction_threshold = Crane_paxos.Paxos.default_config.compaction_threshold;
    catchup_chunk = Crane_paxos.Paxos.default_config.catchup_chunk;
    suspect_timeout = Crane_paxos.Paxos.default_config.suspect_timeout;
    lease_duration = Time.ms 150;
  }

let test_cfg mode =
  { Instance.default_config with mode; paxos = fast_paxos; cores = 8 }

(* A client: connect to the given node, send one request, read the full
   response, close.  Returns None if refused / EOF before data. *)
let one_request ?(timeout = Time.sec 2) cluster ~from ~node ~msg =
  let world = Cluster.world cluster in
  match Sock.connect world ~from ~node ~port:80 with
  | exception Sock.Connection_refused _ -> None
  | conn ->
    Sock.send conn msg;
    let resp = Sock.recv ~timeout conn ~max:4096 in
    Sock.close conn;
    if resp = "" then None else Some resp

(* Retry against all members until a response arrives (clients finding
   the new primary after failover). *)
let request_with_retry cluster ~from ~msg =
  let eng = Cluster.engine cluster in
  let rec go attempts =
    if attempts > 50 then None
    else
      let node =
        match Cluster.primary_node cluster with
        | Some n -> n
        | None -> List.nth (Cluster.members cluster) (attempts mod 3)
      in
      match one_request cluster ~from ~node ~msg with
      | Some r -> Some r
      | None ->
        Engine.sleep eng (Time.ms 100);
        go (attempts + 1)
  in
  go 0

let test_cluster_echo () =
  let cluster = Cluster.create ~cfg:(test_cfg Instance.Full) ~server:echo_server () in
  Cluster.start ~checkpoints:false cluster;
  let eng = Cluster.engine cluster in
  let responses = ref [] in
  for i = 1 to 5 do
    Engine.spawn eng ~name:(Printf.sprintf "client%d" i) (fun () ->
        Engine.sleep eng (Time.ms (10 * i));
        match one_request cluster ~from:(Printf.sprintf "c%d" i) ~node:"replica1"
                ~msg:(Printf.sprintf "hello%d" i)
        with
        | Some r -> responses := r :: !responses
        | None -> ())
  done;
  Cluster.run ~until:(Time.sec 3) cluster;
  Cluster.check_failures cluster;
  Alcotest.(check int) "all clients answered" 5 (List.length !responses);
  List.iter
    (fun r ->
      Alcotest.(check bool) ("well-formed response: " ^ r) true
        (String.length r > 5 && String.sub r 0 5 = "echo["))
    !responses

let test_cluster_outputs_consistent () =
  let cluster = Cluster.create ~cfg:(test_cfg Instance.Full) ~server:echo_server () in
  Cluster.start ~checkpoints:false cluster;
  let eng = Cluster.engine cluster in
  for i = 1 to 10 do
    Engine.spawn eng ~name:(Printf.sprintf "client%d" i) (fun () ->
        Engine.sleep eng (Time.ms (3 * i));
        ignore
          (one_request cluster ~from:(Printf.sprintf "c%d" i) ~node:"replica1"
             ~msg:(Printf.sprintf "req%d" i)))
  done;
  Cluster.run ~until:(Time.sec 4) cluster;
  Cluster.check_failures cluster;
  match Cluster.outputs cluster with
  | [ (_, o1); (_, o2); (_, o3) ] ->
    Alcotest.(check bool) "replicas produced output" true (Output_log.length o1 >= 10);
    Alcotest.(check bool) "1=2" true (Output_log.equal o1 o2);
    Alcotest.(check bool) "1=3" true (Output_log.equal o1 o3)
  | _ -> Alcotest.fail "expected three replicas"

let test_cluster_failover () =
  let cluster = Cluster.create ~cfg:(test_cfg Instance.Full) ~server:echo_server () in
  Cluster.start ~checkpoints:false cluster;
  let eng = Cluster.engine cluster in
  let before = ref None and after = ref None in
  Engine.spawn eng ~name:"client-before" (fun () ->
      Engine.sleep eng (Time.ms 10);
      before := request_with_retry cluster ~from:"c1" ~msg:"before");
  Engine.at eng (Time.ms 300) (fun () -> Cluster.kill cluster "replica1");
  Engine.spawn eng ~name:"client-after" (fun () ->
      Engine.sleep eng (Time.ms 400);
      after := request_with_retry cluster ~from:"c2" ~msg:"after");
  Cluster.run ~until:(Time.sec 10) cluster;
  Cluster.check_failures cluster;
  Alcotest.(check bool) "served before failover" true (!before <> None);
  Alcotest.(check bool) "served after failover" true (!after <> None);
  match Cluster.primary_node cluster with
  | Some n -> Alcotest.(check bool) "new primary is a backup" true (n <> "replica1")
  | None -> Alcotest.fail "no primary after failover"

let test_checkpoint_restart () =
  let cfg = { (test_cfg Instance.Full) with checkpoint_period = Time.ms 500 } in
  let cluster = Cluster.create ~cfg ~server:echo_server () in
  Cluster.start ~checkpoints:true cluster;
  let eng = Cluster.engine cluster in
  for i = 1 to 6 do
    Engine.spawn eng ~name:(Printf.sprintf "client%d" i) (fun () ->
        Engine.sleep eng (Time.ms (30 * i));
        ignore
          (one_request cluster ~from:(Printf.sprintf "c%d" i) ~node:"replica1"
             ~msg:(Printf.sprintf "req%d" i)))
  done;
  (* Kill the third replica after some load, restart it later from the
     backup's checkpoint, then add more load. *)
  Engine.at eng (Time.ms 250) (fun () -> Cluster.kill cluster "replica3");
  Engine.at eng (Time.sec 2) (fun () -> ignore (Cluster.restart cluster "replica3"));
  for i = 7 to 9 do
    Engine.spawn eng ~name:(Printf.sprintf "client%d" i) (fun () ->
        Engine.sleep eng (Time.sec 8 + Time.ms (30 * i));
        ignore
          (one_request cluster ~from:(Printf.sprintf "c%d" i) ~node:"replica1"
             ~msg:(Printf.sprintf "req%d" i)))
  done;
  Cluster.run ~until:(Time.sec 15) cluster;
  Cluster.check_failures cluster;
  (* The restarted replica's server state must match the others. *)
  let states =
    List.map
      (fun (n, inst) -> (n, inst.Instance.handle.Api.state_of ()))
      (Cluster.instances cluster)
  in
  match states with
  | [ (_, s1); (_, s2); (_, s3) ] ->
    Alcotest.(check string) "replica2 state matches" s1 s2;
    Alcotest.(check string) "restarted replica3 state matches" s1 s3;
    Alcotest.(check bool) "served requests" true (int_of_string s1 >= 6)
  | _ -> Alcotest.fail "expected three replicas"

let test_standalone_native_and_parrot () =
  List.iter
    (fun mode ->
      let sa = Standalone.boot ~mode ~server:echo_server () in
      let eng = Standalone.engine sa in
      let resp = ref None in
      Engine.spawn eng ~name:"client" (fun () ->
          Engine.sleep eng (Time.ms 1);
          let conn = Sock.connect (Standalone.world sa) ~from:"cli" ~node:"server" ~port:80 in
          Sock.send conn "ping";
          resp := Some (Sock.recv conn ~max:4096);
          Sock.close conn);
      Engine.at eng (Time.ms 500) (fun () -> Standalone.stop sa);
      Engine.run ~until:(Time.sec 1) eng;
      Standalone.check_failures sa;
      match !resp with
      | Some r -> Alcotest.(check bool) "echoed" true (String.length r > 5)
      | None -> Alcotest.fail "no response")
    [ Standalone.Native; Standalone.Parrot ]

let test_bubbles_flow () =
  (* With no client traffic at all, the primary still inserts bubbles so
     replicas' logical clocks advance identically. *)
  let cluster = Cluster.create ~cfg:(test_cfg Instance.Full) ~server:echo_server () in
  Cluster.start ~checkpoints:false cluster;
  Cluster.run ~until:(Time.ms 500) cluster;
  Cluster.check_failures cluster;
  List.iter
    (fun (node, inst) ->
      let _, bubbles = Instance.seq_stats inst in
      Alcotest.(check bool) (node ^ " received bubbles") true (bubbles > 10))
    (Cluster.instances cluster)

let suite =
  [
    ( "crane.e2e",
      [
        Alcotest.test_case "cluster echo" `Quick test_cluster_echo;
        Alcotest.test_case "outputs consistent" `Quick test_cluster_outputs_consistent;
        Alcotest.test_case "failover" `Quick test_cluster_failover;
        Alcotest.test_case "checkpoint restart" `Quick test_checkpoint_restart;
        Alcotest.test_case "standalone native+parrot" `Quick
          test_standalone_native_and_parrot;
        Alcotest.test_case "bubbles flow when idle" `Quick test_bubbles_flow;
      ] );
  ]
