(* Critical-path profiler: span integrity of the request DAGs under the
   interesting regimes (steady state, view change, snapshot catch-up with
   compaction truncation, batched vs. unbatched), determinism of the
   report, and the Metrics aggregation guards it leans on. *)

module Time = Crane_sim.Time
module Engine = Crane_sim.Engine
module Instance = Crane_core.Instance
module Cluster = Crane_core.Cluster
module Paxos = Crane_paxos.Paxos
module Trace = Crane_trace.Trace
module Metrics = Crane_trace.Metrics
module Critical_path = Crane_trace.Critical_path

let check_well_formed ~what (r : Critical_path.report) =
  Alcotest.(check (list string)) (what ^ ": no malformed span DAGs") [] r.errors;
  Alcotest.(check bool)
    (Printf.sprintf "%s: committed some requests (%d)" what r.committed)
    true (r.committed > 0);
  Alcotest.(check bool)
    (Printf.sprintf "%s: coverage %.3f >= 0.99" what r.coverage)
    true (r.coverage >= 0.99)

let stage_summary (r : Critical_path.report) name =
  (List.find (fun s -> s.Critical_path.stage = name) r.stages)
    .Critical_path.summary

(* Traced echo cluster under [n] one-request clients. *)
let traced_run ?(cfg = Test_crane.test_cfg Instance.Full) ?(seed = 7) ?(n = 6)
    ?(until = Time.sec 3) () =
  let tr = Trace.create () in
  let cluster =
    Cluster.create ~seed ~cfg ~trace:tr ~server:Test_crane.echo_server ()
  in
  Cluster.start ~checkpoints:false cluster;
  let eng = Cluster.engine cluster in
  for i = 1 to n do
    Engine.spawn eng ~name:(Printf.sprintf "client%d" i) (fun () ->
        Engine.sleep eng (Time.ms (15 * i));
        ignore
          (Test_crane.one_request cluster ~from:(Printf.sprintf "c%d" i)
             ~node:"replica1"
             ~msg:(Printf.sprintf "hello%d" i)))
  done;
  Cluster.run ~until cluster;
  Cluster.check_failures cluster;
  tr

let test_steady_state_complete () =
  let tr = traced_run () in
  let r = Critical_path.analyze tr in
  check_well_formed ~what:"steady state" r;
  Alcotest.(check bool) "full coverage in steady state" true
    (r.Critical_path.complete = r.Critical_path.committed);
  (* every committed call carries the core stages; replies exist only for
     the send-kind calls (connect/close produce no response) *)
  List.iter
    (fun stage ->
      Alcotest.(check int)
        (stage ^ " decomposed for every request")
        r.Critical_path.committed (stage_summary r stage).Metrics.count)
    [ "client_queue"; "batch_wait"; "fsync"; "consensus"; "sched_wait" ];
  Alcotest.(check bool) "execute stage covers the sends" true
    ((stage_summary r "execute").Metrics.count > 0);
  Alcotest.(check int) "end-to-end sample per request"
    r.Critical_path.committed r.Critical_path.e2e.Metrics.count

(* Kill the boot primary under load: spans proposed in the old view and
   re-proposed/committed by the new primary must still decompose, and the
   report must attribute requests to both views. *)
let test_view_change_spans () =
  let tr = Trace.create () in
  let cluster =
    Cluster.create ~seed:11
      ~cfg:(Test_crane.test_cfg Instance.Full)
      ~trace:tr ~server:Test_crane.echo_server ()
  in
  Cluster.start ~checkpoints:false cluster;
  let eng = Cluster.engine cluster in
  Engine.spawn eng ~name:"client-before" (fun () ->
      Engine.sleep eng (Time.ms 10);
      ignore (Test_crane.request_with_retry cluster ~from:"c1" ~msg:"before"));
  Engine.at eng (Time.ms 300) (fun () -> Cluster.kill cluster "replica1");
  Engine.spawn eng ~name:"client-after" (fun () ->
      Engine.sleep eng (Time.ms 400);
      ignore (Test_crane.request_with_retry cluster ~from:"c2" ~msg:"after"));
  Cluster.run ~until:(Time.sec 10) cluster;
  Cluster.check_failures cluster;
  let r = Critical_path.analyze tr in
  check_well_formed ~what:"view change" r;
  Alcotest.(check bool) "requests span multiple views" true
    (List.length r.Critical_path.per_view >= 2)

(* Aggressive compaction + a replica that misses enough history to need
   snapshot catch-up: replayed deliveries re-admit old indices on the
   restarted node, which must not corrupt the original spans. *)
let test_catchup_compaction_spans () =
  let cfg =
    { (Test_crane.test_cfg Instance.Full) with
      checkpoint_period = Time.ms 500;
      paxos =
        { (Test_crane.test_cfg Instance.Full).Instance.paxos with
          Paxos.compaction_threshold = 24; catchup_chunk = 16 } }
  in
  let tr = Trace.create () in
  let cluster = Cluster.create ~seed:19 ~cfg ~trace:tr ~server:Test_crane.echo_server () in
  Cluster.start ~checkpoints:true cluster;
  let eng = Cluster.engine cluster in
  for i = 1 to 8 do
    Engine.spawn eng ~name:(Printf.sprintf "client%d" i) (fun () ->
        Engine.sleep eng (Time.ms (40 * i));
        ignore
          (Test_crane.one_request cluster ~from:(Printf.sprintf "c%d" i)
             ~node:"replica1"
             ~msg:(Printf.sprintf "req%d" i)))
  done;
  Engine.at eng (Time.ms 250) (fun () -> Cluster.kill cluster "replica3");
  Engine.at eng (Time.sec 3) (fun () -> ignore (Cluster.restart cluster "replica3"));
  Cluster.run ~until:(Time.sec 12) cluster;
  Cluster.check_failures cluster;
  let compactions =
    List.fold_left
      (fun acc (_, inst) -> acc + (Paxos.stats inst.Instance.paxos).Paxos.compactions)
      0 (Cluster.instances cluster)
  in
  Alcotest.(check bool) "compaction actually truncated the log" true
    (compactions > 0);
  check_well_formed ~what:"catch-up + compaction" (Critical_path.analyze tr)

let test_batched_vs_unbatched () =
  let run batch_max =
    let cfg = { (Test_crane.test_cfg Instance.Full) with Instance.batch_max } in
    Critical_path.analyze (traced_run ~cfg ())
  in
  let batched = run 64 and unbatched = run 1 in
  check_well_formed ~what:"batched" batched;
  check_well_formed ~what:"unbatched" unbatched;
  Alcotest.(check int) "unbatched requests never wait on a batch" 0
    (stage_summary unbatched "batch_wait").Metrics.total;
  Alcotest.(check bool) "batched requests do" true
    ((stage_summary batched "batch_wait").Metrics.total > 0)

(* Determinism: same seed, two simulations — the span export and the
   rendered critical-path report must match byte for byte. *)
let test_same_seed_identical () =
  let tr1 = traced_run ~seed:23 () and tr2 = traced_run ~seed:23 () in
  Alcotest.(check string) "span export byte-identical" (Trace.to_jsonl tr1)
    (Trace.to_jsonl tr2);
  Alcotest.(check string) "profile report byte-identical"
    (Critical_path.render (Critical_path.analyze tr1))
    (Critical_path.render (Critical_path.analyze tr2))

(* ---- Metrics guards and cluster-wide merge (satellite) ---- *)

let test_summarize_degenerate () =
  let z = Metrics.summarize [] in
  Alcotest.(check int) "empty count" 0 z.Metrics.count;
  Alcotest.(check int) "empty p99" 0 z.Metrics.p99;
  Alcotest.(check int) "empty max" 0 z.Metrics.max;
  let s = Metrics.summarize [ 7 ] in
  Alcotest.(check int) "singleton count" 1 s.Metrics.count;
  Alcotest.(check int) "singleton p50" 7 s.Metrics.p50;
  Alcotest.(check int) "singleton p99" 7 s.Metrics.p99;
  Alcotest.(check int) "singleton total" 7 s.Metrics.total

let test_merge () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.incr a "req";
  Metrics.incr b ~by:2 "req";
  Metrics.incr b "only_b";
  Metrics.observe a "lat" 10;
  Metrics.observe a "lat" 30;
  Metrics.observe b "lat" 20;
  Metrics.observe b "solo" 5;
  let m = Metrics.merged [ a; b ] in
  Alcotest.(check int) "counters add" 3 (Metrics.counter_value m "req");
  Alcotest.(check int) "disjoint counter kept" 1 (Metrics.counter_value m "only_b");
  (match Metrics.summary m "lat" with
  | Some s ->
    Alcotest.(check int) "merged sample count" 3 s.Metrics.count;
    Alcotest.(check int) "merged total" 60 s.Metrics.total;
    Alcotest.(check int) "merged max" 30 s.Metrics.max
  | None -> Alcotest.fail "merged histogram missing");
  (match Metrics.summary m "solo" with
  | Some s -> Alcotest.(check int) "singleton series survives merge" 5 s.Metrics.p50
  | None -> Alcotest.fail "solo histogram missing");
  (* the originals are untouched *)
  Alcotest.(check int) "source unchanged" 1 (Metrics.counter_value a "req")

let suite =
  [
    ( "profile",
      [
        Alcotest.test_case "steady-state decomposition complete" `Quick
          test_steady_state_complete;
        Alcotest.test_case "spans survive view change" `Quick test_view_change_spans;
        Alcotest.test_case "spans survive catch-up and compaction" `Quick
          test_catchup_compaction_spans;
        Alcotest.test_case "batched vs unbatched" `Quick test_batched_vs_unbatched;
        Alcotest.test_case "same seed, byte-identical report" `Quick
          test_same_seed_identical;
        Alcotest.test_case "summarize: empty and singleton series" `Quick
          test_summarize_degenerate;
        Alcotest.test_case "metrics merge" `Quick test_merge;
      ] );
  ]
