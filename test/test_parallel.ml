(* Tests for dependency-aware parallel delivery: DMT lane routing
   (signal ?lane re-laning and relane self-migration), pool-mode cluster
   convergence with the conflict-serializability certifier run on the
   realized trace, state equivalence across pool widths, and the
   certifier's verdicts on synthetic schedules (true positive and true
   negative). *)

module Time = Crane_sim.Time
module Engine = Crane_sim.Engine
module Dmt = Crane_dmt.Dmt
module Paxos = Crane_paxos.Paxos
module Instance = Crane_core.Instance
module Cluster = Crane_core.Cluster
module Target = Crane_workload.Target
module Loadgen = Crane_workload.Loadgen
module Trace = Crane_trace.Trace
module Certifier = Crane_analysis.Certifier
module Ledger = Crane_chaos.Ledger

let check_no_failures eng =
  match Engine.failures eng with
  | [] -> ()
  | (name, e) :: _ ->
    Alcotest.failf "thread %s failed: %s" name (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* DMT lanes *)

(* The two lane-placement paths the pool gate uses: [signal ?lane] moves
   a parked waiter into the command's lane, and [relane] lets a worker
   that never parked (bytes pushed before its first recv) migrate
   itself.  Both must leave the thread holding the target lane's turn. *)
let test_dmt_lane_routing () =
  let eng = Engine.create () in
  let dmt = Dmt.create ~lanes:3 eng in
  let obj = Dmt.new_obj dmt in
  let lanes_seen = ref [] in
  Dmt.spawn dmt ~name:"worker" (fun () ->
      Dmt.get_turn dmt;
      lanes_seen := Dmt.current_lane dmt :: !lanes_seen;
      Dmt.wait dmt ~obj;
      (* resumed by the gate's signal ~lane:2 — re-laned while parked *)
      lanes_seen := Dmt.current_lane dmt :: !lanes_seen;
      Dmt.relane dmt ~lane:1;
      lanes_seen := Dmt.current_lane dmt :: !lanes_seen;
      (* relane to the lane we're already in is a no-op *)
      Dmt.relane dmt ~lane:1;
      lanes_seen := Dmt.current_lane dmt :: !lanes_seen;
      Dmt.put_turn dmt);
  Dmt.spawn dmt ~name:"gate" (fun () ->
      Dmt.get_turn dmt;
      Dmt.signal ~lane:2 dmt ~obj;
      Dmt.put_turn dmt);
  Engine.at eng (Time.ms 1) (fun () -> Dmt.stop dmt);
  Engine.run eng;
  check_no_failures eng;
  Alcotest.(check (list int))
    "spawned on 0, signalled into 2, self-migrated to 1" [ 0; 2; 1; 1 ]
    (List.rev !lanes_seen)

(* Lanes rotate independently: threads signalled into different lanes no
   longer pay each other's turn costs, so their op interleaving is free
   per lane while each lane stays round-robin within itself. *)
let test_dmt_lanes_independent () =
  let eng = Engine.create () in
  let dmt = Dmt.create ~lanes:3 eng in
  let per_lane_order = Hashtbl.create 4 in
  let record lane tag =
    let l = Option.value (Hashtbl.find_opt per_lane_order lane) ~default:[] in
    Hashtbl.replace per_lane_order lane (tag :: l)
  in
  for i = 1 to 4 do
    let lane = 1 + ((i - 1) mod 2) in
    Dmt.spawn dmt ~name:(Printf.sprintf "w%d" i) (fun () ->
        Dmt.get_turn dmt;
        Dmt.relane dmt ~lane;
        for _ = 1 to 3 do
          record (Dmt.current_lane dmt) i;
          Dmt.put_turn dmt;
          Dmt.get_turn dmt
        done;
        Dmt.put_turn dmt)
  done;
  Engine.at eng (Time.ms 1) (fun () -> Dmt.stop dmt);
  Engine.run eng;
  check_no_failures eng;
  (* within each lane the two residents strictly alternate *)
  List.iter
    (fun (lane, a, b) ->
      Alcotest.(check (list int))
        (Printf.sprintf "lane %d round-robin" lane)
        [ a; b; a; b; a; b ]
        (List.rev
           (Option.value (Hashtbl.find_opt per_lane_order lane) ~default:[])))
    [ (1, 1, 3); (2, 2, 4) ]

(* ------------------------------------------------------------------ *)
(* Pool-mode cluster *)

let fast_config =
  {
    Paxos.heartbeat_period = Time.ms 100;
    election_timeout = Time.ms 300;
    election_jitter = Time.ms 50;
    round_retry = Time.ms 100;
    compaction_threshold = Paxos.default_config.compaction_threshold;
    catchup_chunk = Paxos.default_config.catchup_chunk;
    suspect_timeout = Time.ms 450;
    lease_duration = Time.ms 150;
  }

let pool_cfg workers =
  {
    Instance.default_config with
    mode = Instance.Full;
    pool_workers = workers;
    paxos = fast_config;
  }

(* Drive a seeded closed-loop ledger workload and give the backups time
   to replay; returns the cluster plus the client's acked-write record. *)
let run_pool_workload ?trace ~seed ~workers () =
  let cluster =
    Cluster.create ~seed ~cfg:(pool_cfg workers) ?trace ~server:Ledger.server ()
  in
  Cluster.start ~checkpoints:false cluster;
  let eng = Cluster.engine cluster in
  let target = Target.cluster cluster ~port:80 in
  let ledger = Ledger.client () in
  let handle =
    Loadgen.run ~name:"w" ~seed ~think:(Time.ms 5) ~retries:4
      ~retry_backoff:(Time.ms 100) ~clients:4 ~requests:48
      ~request:(Ledger.request ledger) target
  in
  Loadgen.drive ~timeout:(Time.sec 60) target handle;
  let load = handle.Loadgen.collect () in
  (* replicas replay through the DMT at simulated compute speed: poll at
     bounded virtual-time steps until every live ledger agrees *)
  let converged () =
    match Cluster.instances cluster with
    | [] -> false
    | (_, i0) :: rest ->
      let s0 = i0.Instance.handle.Crane_core.Api.state_of () in
      List.for_all
        (fun (_, i) -> i.Instance.handle.Crane_core.Api.state_of () = s0)
        rest
  in
  let deadline = Engine.now eng + Time.sec 20 in
  while (not (converged ())) && Engine.now eng < deadline do
    Cluster.run ~until:(Engine.now eng + Time.ms 100) cluster
  done;
  Cluster.check_failures cluster;
  (cluster, ledger, load)

let states cluster =
  List.map
    (fun (n, i) -> (n, i.Instance.handle.Crane_core.Api.state_of ()))
    (Cluster.instances cluster)

(* A 4-worker pool must converge every replica to one state holding every
   acked write, with zero hard errors — and the realized schedule must
   pass the conflict-serializability certifier (execute windows actually
   opened, so the check is not vacuous). *)
let test_pool_convergence_certified () =
  let trace = Trace.create () in
  let cluster, ledger, load = run_pool_workload ~trace ~seed:23 ~workers:4 () in
  Alcotest.(check int) "no hard errors" 0 load.Loadgen.errors;
  (match states cluster with
  | [] -> Alcotest.fail "no live replicas"
  | (_, s0) :: rest ->
    List.iter
      (fun (n, s) -> Alcotest.(check string) (n ^ " converged") s0 s)
      rest;
    let ids = Ledger.ids_of_state s0 in
    List.iter
      (fun id ->
        Alcotest.(check bool) (id ^ " durable") true (List.mem id ids))
      (Ledger.acked_ids ledger));
  let r = Certifier.check trace in
  Alcotest.(check bool) "execute windows recorded" true (r.Certifier.windows > 0);
  Alcotest.(check bool) "commands indexed" true (r.Certifier.commands > 0);
  Alcotest.(check (list string)) "conflict-serializable" []
    (List.map
       (fun v -> v.Certifier.v_loc ^ ":" ^ v.Certifier.v_kind)
       r.Certifier.violations)

(* Pool width must not change what the state machine computes: the same
   seeded workload against 1 worker and 4 workers ends in the same
   committed ledger content on every replica. *)
let test_pool_state_equivalent_across_widths () =
  let content ~workers =
    let cluster, _, load = run_pool_workload ~seed:29 ~workers () in
    Alcotest.(check int) "no hard errors" 0 load.Loadgen.errors;
    match states cluster with
    | [] -> Alcotest.fail "no live replicas"
    | (_, s0) :: _ -> List.sort compare (Ledger.ids_of_state s0)
  in
  let serial = content ~workers:1 in
  let pooled = content ~workers:4 in
  Alcotest.(check (list string)) "same committed content, pool on vs off"
    serial pooled

(* ------------------------------------------------------------------ *)
(* Certifier verdicts on synthetic schedules *)

let ev ?(ts = 0) ?(tid = 1) ~cat ~name args =
  {
    Trace.ts;
    tid;
    group = -1;
    node = "n1";
    cat;
    name;
    ph = Trace.Instant;
    args;
  }

let exec_begin ~ts ~tid index =
  ev ~ts ~tid ~cat:"exec" ~name:"begin" [ ("index", Trace.Int index) ]

let exec_end ~ts ~tid = ev ~ts ~tid ~cat:"exec" ~name:"end" []

let mem ~ts ~tid ~op loc =
  ev ~ts ~tid ~cat:"mem" ~name:op
    [ ("loc", Trace.Int loc); ("site", Trace.Str "cell") ]

let resolve (e : Trace.ev) = e.Trace.node

(* In-order conflicting writes certify; the location is shared (two
   threads), so the verdict is not confinement by accident. *)
let test_certifier_true_negative () =
  let r =
    Certifier.check_events ~resolve_node:resolve
      [
        exec_begin ~ts:10 ~tid:1 1;
        mem ~ts:11 ~tid:1 ~op:"write" 5;
        exec_end ~ts:12 ~tid:1;
        exec_begin ~ts:20 ~tid:2 2;
        mem ~ts:21 ~tid:2 ~op:"write" 5;
        exec_end ~ts:22 ~tid:2;
      ]
  in
  Alcotest.(check int) "two windows" 2 r.Certifier.windows;
  Alcotest.(check int) "shared location checked" 1 r.Certifier.locations;
  Alcotest.(check int) "nothing confined" 0 r.Certifier.confined;
  Alcotest.(check bool) "certified" true (Certifier.certified r)

(* A higher-index command whose write lands before a conflicting
   lower-index one is exactly the admission bug the certifier exists to
   catch. *)
let test_certifier_true_positive () =
  let r =
    Certifier.check_events ~resolve_node:resolve
      [
        exec_begin ~ts:10 ~tid:2 2;
        mem ~ts:11 ~tid:2 ~op:"write" 5;
        exec_end ~ts:12 ~tid:2;
        exec_begin ~ts:20 ~tid:1 1;
        mem ~ts:21 ~tid:1 ~op:"write" 5;
        exec_end ~ts:22 ~tid:1;
      ]
  in
  Alcotest.(check bool) "not certified" false (Certifier.certified r);
  (match r.Certifier.violations with
  | [ v ] ->
    Alcotest.(check string) "kind" "write-write" v.Certifier.v_kind;
    Alcotest.(check int) "late command" 1 v.Certifier.v_early_index;
    Alcotest.(check int) "early command" 2 v.Certifier.v_late_index
  | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs));
  (* the same out-of-order pair on a single thread is thread-confined:
     one worker's own program order carries no admission claim *)
  let confined =
    Certifier.check_events ~resolve_node:resolve
      [
        exec_begin ~ts:10 ~tid:1 2;
        mem ~ts:11 ~tid:1 ~op:"write" 5;
        exec_end ~ts:12 ~tid:1;
        exec_begin ~ts:20 ~tid:1 1;
        mem ~ts:21 ~tid:1 ~op:"write" 5;
        exec_end ~ts:22 ~tid:1;
      ]
  in
  Alcotest.(check int) "confined location exempt" 1 confined.Certifier.confined;
  Alcotest.(check bool) "confined certifies" true (Certifier.certified confined)

(* Reads only conflict with writes: concurrent out-of-order reads of a
   shared location are fine; a read overtaken by a lower-index write is
   not. *)
let test_certifier_read_write () =
  let clean =
    Certifier.check_events ~resolve_node:resolve
      [
        exec_begin ~ts:10 ~tid:2 2;
        mem ~ts:11 ~tid:2 ~op:"read" 5;
        exec_end ~ts:12 ~tid:2;
        exec_begin ~ts:20 ~tid:1 1;
        mem ~ts:21 ~tid:1 ~op:"read" 5;
        exec_end ~ts:22 ~tid:1;
      ]
  in
  Alcotest.(check bool) "read-read reorder certifies" true
    (Certifier.certified clean);
  let dirty =
    Certifier.check_events ~resolve_node:resolve
      [
        exec_begin ~ts:10 ~tid:2 2;
        mem ~ts:11 ~tid:2 ~op:"read" 5;
        exec_end ~ts:12 ~tid:2;
        exec_begin ~ts:20 ~tid:1 1;
        mem ~ts:21 ~tid:1 ~op:"write" 5;
        exec_end ~ts:22 ~tid:1;
      ]
  in
  (match dirty.Certifier.violations with
  | [ v ] -> Alcotest.(check string) "kind" "read-write" v.Certifier.v_kind
  | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs))

let suite =
  [
    ( "parallel",
      [
        Alcotest.test_case "dmt lane routing" `Quick test_dmt_lane_routing;
        Alcotest.test_case "dmt lanes independent" `Quick
          test_dmt_lanes_independent;
        Alcotest.test_case "pool convergence + certifier" `Slow
          test_pool_convergence_certified;
        Alcotest.test_case "state equivalent across pool widths" `Slow
          test_pool_state_equivalent_across_widths;
        Alcotest.test_case "certifier true negative" `Quick
          test_certifier_true_negative;
        Alcotest.test_case "certifier true positive + confinement" `Quick
          test_certifier_true_positive;
        Alcotest.test_case "certifier read/write conflicts" `Quick
          test_certifier_read_write;
      ] );
  ]
