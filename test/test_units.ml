(* Unit tests for the small pure modules: consensus-event codec, the
   PAXOS sequence, output logs, the HTTP codec, the SQL kit, and the
   statistics helpers. *)

module Time = Crane_sim.Time
module Engine = Crane_sim.Engine
module Event = Crane_core.Event
module Paxos_seq = Crane_core.Paxos_seq
module Output_log = Crane_core.Output_log
module Httpkit = Crane_apps.Httpkit
module Sqlkit = Crane_apps.Sqlkit
module Stats = Crane_report.Stats

(* ------------------------------------------------------------------ *)
(* Event codec *)

let arbitrary_event =
  QCheck.(
    map
      (fun (tag, conn, port, payload) ->
        match tag mod 4 with
        | 0 -> Event.Connect { conn; port }
        | 1 -> Event.Send { conn; payload }
        | 2 -> Event.Close { conn }
        | _ -> Event.Time_bubble { nclock = 1 + (conn mod 5000) })
      (quad small_nat small_nat small_nat small_printable_string))

let prop_event_roundtrip =
  QCheck.Test.make ~name:"event encode/decode roundtrip" ~count:300
    arbitrary_event
    (fun ev -> Event.decode (Event.encode ev) = ev)

let test_event_is_bubble () =
  Alcotest.(check bool) "bubble" true (Event.is_bubble (Event.Time_bubble { nclock = 3 }));
  Alcotest.(check bool) "call" false (Event.is_bubble (Event.Close { conn = 1 }))

(* ------------------------------------------------------------------ *)
(* Paxos_seq *)

let test_seq_fifo () =
  let eng = Engine.create () in
  let seq = Paxos_seq.create eng in
  Paxos_seq.append seq (Event.Connect { conn = 1; port = 80 });
  Paxos_seq.append seq (Event.Send { conn = 1; payload = "x" });
  Alcotest.(check bool) "nonempty" false (Paxos_seq.is_empty seq);
  Alcotest.(check int) "queued calls" 2 (Paxos_seq.queued_calls seq);
  (match Paxos_seq.head seq with
  | Some (Event.Connect { conn = 1; _ }) -> ()
  | _ -> Alcotest.fail "head should be the connect");
  Paxos_seq.drop_head seq;
  (match Paxos_seq.head seq with
  | Some (Event.Send { conn = 1; _ }) -> ()
  | _ -> Alcotest.fail "then the send");
  Paxos_seq.drop_head seq;
  Alcotest.(check bool) "drained" true (Paxos_seq.is_empty seq);
  Alcotest.(check int) "no queued calls left" 0 (Paxos_seq.queued_calls seq)

let test_seq_bubble_drain () =
  let eng = Engine.create () in
  let seq = Paxos_seq.create eng in
  Paxos_seq.append seq (Event.Time_bubble { nclock = 5 });
  Paxos_seq.append seq (Event.Close { conn = 9 });
  for _ = 1 to 4 do
    Paxos_seq.decrement_bubble seq
  done;
  (match Paxos_seq.head seq with
  | Some (Event.Time_bubble { nclock = 1 }) -> ()
  | _ -> Alcotest.fail "one clock left");
  Paxos_seq.decrement_bubble seq;
  (match Paxos_seq.head seq with
  | Some (Event.Close { conn = 9 }) -> ()
  | _ -> Alcotest.fail "bubble exhausted, close surfaces");
  Alcotest.(check int) "bubble stat" 1 (Paxos_seq.bubbles seq);
  Alcotest.(check int) "call stat" 1 (Paxos_seq.calls seq)

let test_seq_drain_upto () =
  let eng = Engine.create () in
  let seq = Paxos_seq.create eng in
  Paxos_seq.append seq (Event.Time_bubble { nclock = 10 });
  Paxos_seq.drain_bubble_upto seq 3;
  (match Paxos_seq.head seq with
  | Some (Event.Time_bubble { nclock = 7 }) -> ()
  | _ -> Alcotest.fail "7 left");
  Paxos_seq.drain_bubble_upto seq 100;
  Alcotest.(check bool) "over-drain clamps to empty" true (Paxos_seq.is_empty seq)

(* max_depth is attributed per view: a view change resets the high-water
   mark to the current depth, so a report never shows a stale peak from a
   previous primary's burst regime — but the mark must survive drains
   within a view and re-grow after the reset. *)
let test_seq_max_depth_per_view () =
  let eng = Engine.create () in
  let seq = Paxos_seq.create eng in
  for i = 1 to 5 do
    Paxos_seq.append seq ~index:i ~view:0 (Event.Send { conn = 1; payload = "x" })
  done;
  Alcotest.(check int) "peak under view 0" 5 (Paxos_seq.max_depth seq);
  Alcotest.(check int) "attributed to view 0" 0 (Paxos_seq.max_depth_view seq);
  for _ = 1 to 4 do
    Paxos_seq.drop_head seq
  done;
  Alcotest.(check int) "drain keeps the in-view peak" 5 (Paxos_seq.max_depth seq);
  (* view change: the first append under view 2 resets the mark to the
     depth at that instant (1 leftover + the new entry = 2), not 5 *)
  Paxos_seq.append seq ~index:6 ~view:2 (Event.Send { conn = 1; payload = "y" });
  Alcotest.(check int) "view change resets the peak" 2 (Paxos_seq.max_depth seq);
  Alcotest.(check int) "attributed to view 2" 2 (Paxos_seq.max_depth_view seq);
  Paxos_seq.append seq ~index:7 ~view:2 (Event.Send { conn = 1; payload = "z" });
  Alcotest.(check int) "re-grows within the new view" 3 (Paxos_seq.max_depth seq);
  (* a stale append tagged with an older view must not resurrect it *)
  Paxos_seq.drop_head seq;
  Paxos_seq.append seq ~index:8 ~view:1 (Event.Send { conn = 1; payload = "w" });
  Alcotest.(check int) "older-view append does not reset" 3 (Paxos_seq.max_depth seq);
  Alcotest.(check int) "attribution unchanged" 2 (Paxos_seq.max_depth_view seq)

let test_seq_empty_for () =
  let eng = Engine.create () in
  let seq = Paxos_seq.create eng in
  Engine.at eng (Time.ms 5) (fun () ->
      Alcotest.(check int) "empty since creation" (Time.ms 5)
        (Paxos_seq.empty_for seq);
      Paxos_seq.append seq (Event.Close { conn = 1 }));
  Engine.at eng (Time.ms 8) (fun () ->
      Alcotest.(check int) "not empty now" 0 (Paxos_seq.empty_for seq));
  Engine.run eng

(* ------------------------------------------------------------------ *)
(* Output_log *)

let test_output_log_equal_and_normalize () =
  let a = Output_log.create () and b = Output_log.create () in
  Output_log.record a ~conn:1 "HTTP/1.0 200 OK\nDate: 12:00:01\nbody";
  Output_log.record b ~conn:1 "HTTP/1.0 200 OK\nDate: 99:99:99\nbody";
  Alcotest.(check bool) "timestamps stripped" true (Output_log.equal a b);
  Alcotest.(check bool) "kept with strip_times off" false
    (Output_log.equal ~strip_times:false a b);
  Output_log.record a ~conn:2 "x";
  Alcotest.(check bool) "extra entry differs" false (Output_log.equal a b);
  Alcotest.(check (option int)) "divergence index" (Some 1)
    (Output_log.first_divergence a b)

let test_output_log_order_matters () =
  let a = Output_log.create () and b = Output_log.create () in
  Output_log.record a ~conn:1 "one";
  Output_log.record a ~conn:2 "two";
  Output_log.record b ~conn:2 "two";
  Output_log.record b ~conn:1 "one";
  Alcotest.(check bool) "send order is part of the log" false (Output_log.equal a b)

(* ------------------------------------------------------------------ *)
(* Httpkit *)

let test_http_roundtrip () =
  let raw = Httpkit.request ~body:"hello" "PUT" "/a.php" in
  match Httpkit.parse_request raw with
  | Some req ->
    Alcotest.(check string) "method" "PUT" req.Httpkit.meth;
    Alcotest.(check string) "path" "/a.php" req.Httpkit.path;
    Alcotest.(check string) "body" "hello" req.Httpkit.body
  | None -> Alcotest.fail "request did not parse"

let test_http_fragmented_completeness () =
  let raw = Httpkit.request ~body:"0123456789" "PUT" "/x" in
  (* No prefix shorter than the whole request may parse as complete. *)
  for cut = 1 to String.length raw - 1 do
    if Httpkit.is_complete (String.sub raw 0 cut) then
      Alcotest.failf "prefix of %d bytes wrongly complete" cut
  done;
  Alcotest.(check bool) "full request complete" true (Httpkit.is_complete raw)

let test_http_response_status () =
  let resp = Httpkit.response ~now:"t" ~status:404 "nope" in
  Alcotest.(check (option int)) "status extracted" (Some 404)
    (Httpkit.status_of_response resp)

let prop_http_roundtrip =
  QCheck.Test.make ~name:"http request roundtrip" ~count:200
    QCheck.(pair small_printable_string small_printable_string)
    (fun (path, body) ->
      QCheck.assume (path <> "" && not (String.contains path ' '));
      QCheck.assume (not (String.contains path '\r'));
      QCheck.assume (not (String.contains path '\n'));
      let raw = Httpkit.request ~body "GET" ("/" ^ path) in
      match Httpkit.parse_request raw with
      | Some req -> req.Httpkit.path = "/" ^ path && req.Httpkit.body = body
      | None -> false)

(* ------------------------------------------------------------------ *)
(* Sqlkit *)

let test_sql_parse () =
  (match Sqlkit.parse_stmt "SELECT c FROM sbtest3 WHERE id=17" with
  | Some (Sqlkit.Select { tbl = "sbtest3"; id = 17 }) -> ()
  | _ -> Alcotest.fail "select did not parse");
  (match Sqlkit.parse_stmt "UPDATE t SET c=5 WHERE id=2" with
  | Some (Sqlkit.Update { tbl = "t"; id = 2; value = 5 }) -> ()
  | _ -> Alcotest.fail "update did not parse");
  Alcotest.(check bool) "garbage rejected" true
    (Sqlkit.parse_stmt "DROP TABLE students" = None)

let test_sql_roundtrip () =
  let db = Sqlkit.create_db () in
  let t = Sqlkit.create_table db "a" 10 in
  Sqlkit.update t ~id:3 ~value:999;
  let db' = Sqlkit.deserialize (Sqlkit.serialize db) in
  match Sqlkit.table db' "a" with
  | Some t' ->
    Alcotest.(check int) "rows survive" 10 (Sqlkit.row_count t');
    Alcotest.(check (option int)) "update survives" (Some 999) (Sqlkit.select t' ~id:3)
  | None -> Alcotest.fail "table lost"

let prop_sql_serialize_roundtrip =
  QCheck.Test.make ~name:"sqlkit serialize/deserialize roundtrip" ~count:100
    QCheck.(small_list (pair (int_range 1 50) (int_range 0 1000)))
    (fun updates ->
      let db = Sqlkit.create_db () in
      let t = Sqlkit.create_table db "t1" 50 in
      List.iter (fun (id, v) -> Sqlkit.update t ~id ~value:v) updates;
      Sqlkit.serialize (Sqlkit.deserialize (Sqlkit.serialize db))
      = Sqlkit.serialize db)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_median () =
  Alcotest.(check int) "odd" 3 (Stats.median [ 5; 1; 3; 2; 4 ]);
  Alcotest.(check int) "empty" 0 (Stats.median []);
  Alcotest.(check int) "p0 is min" 1 (Stats.percentile 0.0 [ 3; 1; 2 ]);
  Alcotest.(check int) "p100 is max" 3 (Stats.percentile 1.0 [ 3; 1; 2 ])

let prop_stats_median_bounds =
  QCheck.Test.make ~name:"median lies within sample bounds" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) small_nat)
    (fun samples ->
      let m = Stats.median samples in
      let lo, hi = Stats.min_max samples in
      lo <= m && m <= hi)

let test_stats_normalized () =
  Alcotest.(check (float 0.01)) "equal is 100%" 100.0
    (Stats.normalized_pct ~baseline:50 ~system:50);
  Alcotest.(check (float 0.01)) "2x slower is 50%" 50.0
    (Stats.normalized_pct ~baseline:50 ~system:100);
  Alcotest.(check (float 0.01)) "overhead pct" 100.0
    (Stats.overhead_pct ~baseline:50 ~system:100)

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  [
    ( "units.event",
      [
        qcheck prop_event_roundtrip;
        Alcotest.test_case "is_bubble" `Quick test_event_is_bubble;
      ] );
    ( "units.paxos_seq",
      [
        Alcotest.test_case "fifo" `Quick test_seq_fifo;
        Alcotest.test_case "bubble drain" `Quick test_seq_bubble_drain;
        Alcotest.test_case "drain upto clamps" `Quick test_seq_drain_upto;
        Alcotest.test_case "max_depth per view" `Quick test_seq_max_depth_per_view;
        Alcotest.test_case "empty_for" `Quick test_seq_empty_for;
      ] );
    ( "units.output_log",
      [
        Alcotest.test_case "normalize + equal" `Quick test_output_log_equal_and_normalize;
        Alcotest.test_case "order matters" `Quick test_output_log_order_matters;
      ] );
    ( "units.httpkit",
      [
        Alcotest.test_case "roundtrip" `Quick test_http_roundtrip;
        Alcotest.test_case "fragmented completeness" `Quick
          test_http_fragmented_completeness;
        Alcotest.test_case "response status" `Quick test_http_response_status;
        qcheck prop_http_roundtrip;
      ] );
    ( "units.sqlkit",
      [
        Alcotest.test_case "parse" `Quick test_sql_parse;
        Alcotest.test_case "roundtrip" `Quick test_sql_roundtrip;
        qcheck prop_sql_serialize_roundtrip;
      ] );
    ( "units.stats",
      [
        Alcotest.test_case "median/percentile" `Quick test_stats_median;
        qcheck prop_stats_median_bounds;
        Alcotest.test_case "normalization" `Quick test_stats_normalized;
      ] );
  ]
