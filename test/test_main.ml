let () = Alcotest.run "crane" (Test_sim.suite @ Test_net.suite @ Test_threads.suite @ Test_paxos.suite @ Test_fs.suite @ Test_crane.suite @ Test_apps.suite @ Test_units.suite @ Test_trace.suite)
