(* Tests for the PAXOS consensus component: normal-case agreement, leader
   election, catch-up, WAL recovery, and property-based safety under a
   message-loss nemesis. *)

module Time = Crane_sim.Time
module Rng = Crane_sim.Rng
module Engine = Crane_sim.Engine
module Fabric = Crane_net.Fabric
module Wal = Crane_storage.Wal
module Paxos = Crane_paxos.Paxos

type sim = {
  eng : Engine.t;
  fabric : Fabric.t;
  mutable nodes : (string * Paxos.t * Engine.group * string list ref) list;
  wals : (string, Wal.t) Hashtbl.t;
}

let fast_config =
  {
    Paxos.heartbeat_period = Time.ms 100;
    election_timeout = Time.ms 300;
    election_jitter = Time.ms 50;
    round_retry = Time.ms 100;
    compaction_threshold = Crane_paxos.Paxos.default_config.compaction_threshold;
    catchup_chunk = Crane_paxos.Paxos.default_config.catchup_chunk;
    suspect_timeout = Paxos.default_config.suspect_timeout;
    lease_duration = Time.ms 150;
  }

let members = [ "n1"; "n2"; "n3" ]

let make_sim ?(seed = 11) () =
  let eng = Engine.create () in
  let fabric = Fabric.create eng (Rng.create seed) in
  { eng; fabric; nodes = []; wals = Hashtbl.create 4 }

let add_node ?(config = fast_config) sim name =
  let wal =
    match Hashtbl.find_opt sim.wals name with
    | Some w -> w
    | None ->
      let w = Wal.create sim.eng ~name in
      Hashtbl.add sim.wals name w;
      w
  in
  let group = Engine.new_group sim.eng in
  let rng = Rng.create (Hashtbl.hash name) in
  let p =
    Paxos.create ~config ~fabric:sim.fabric ~rng ~wal ~members ~node:name ~group ()
  in
  let log = ref [] in
  Paxos.set_handlers p
    { Paxos.on_commit = (fun ~index:_ v -> log := v :: !log);
      on_demote = (fun () -> ());
      on_config = (fun ~epoch:_ _ -> ());
      on_fence = (fun ~epoch:_ -> ()) };
  Paxos.start p ();
  Fabric.node_up sim.fabric name;
  sim.nodes <- sim.nodes @ [ (name, p, group, log) ];
  (p, group, log)

let start_cluster ?seed ?config () =
  let sim = make_sim ?seed () in
  let nodes = List.map (fun n -> add_node ?config:(Option.map Fun.id config) sim n) members in
  (sim, nodes)

let applied_log log = List.rev !log

let find_primary sim =
  List.find_opt (fun (_, p, _, _) -> Paxos.is_primary p) sim.nodes

let kill_node sim name =
  match List.find_opt (fun (n, _, _, _) -> n = name) sim.nodes with
  | Some (_, _, g, _) ->
    Engine.kill_group sim.eng g;
    Fabric.node_down sim.fabric name;
    sim.nodes <- List.filter (fun (n, _, _, _) -> n <> name) sim.nodes
  | None -> ()

(* ------------------------------------------------------------------ *)

let test_normal_case_agreement () =
  let sim, nodes = start_cluster () in
  let p1, _, _ = List.hd nodes in
  Engine.spawn sim.eng ~name:"client" (fun () ->
      Engine.sleep sim.eng (Time.ms 10);
      for i = 1 to 20 do
        Alcotest.(check bool) "primary accepts" true
          (Paxos.submit p1 (Printf.sprintf "v%d" i));
        Engine.sleep sim.eng (Time.ms 1)
      done);
  Engine.run ~until:(Time.sec 2) sim.eng;
  let expected = List.init 20 (fun i -> Printf.sprintf "v%d" (i + 1)) in
  List.iter
    (fun (name, p, _, log) ->
      Alcotest.(check (list string)) (name ^ " applied all in order") expected
        (applied_log log);
      Alcotest.(check int) (name ^ " committed") 20 (Paxos.committed p))
    sim.nodes

let test_submit_on_backup_rejected () =
  let sim, nodes = start_cluster () in
  let _, _, _ = List.hd nodes in
  let p2 = match List.nth_opt nodes 1 with Some (p, _, _) -> p | None -> assert false in
  let result = ref true in
  Engine.spawn sim.eng ~name:"client" (fun () ->
      Engine.sleep sim.eng (Time.ms 10);
      result := Paxos.submit p2 "nope");
  Engine.run ~until:(Time.ms 100) sim.eng;
  Alcotest.(check bool) "backup refuses submissions" false !result

let test_pipelined_submissions () =
  let sim, nodes = start_cluster () in
  let p1, _, _ = List.hd nodes in
  Engine.spawn sim.eng ~name:"client" (fun () ->
      Engine.sleep sim.eng (Time.ms 5);
      (* Burst without waiting: decisions must still be totally ordered. *)
      for i = 1 to 50 do
        ignore (Paxos.submit p1 (string_of_int i))
      done);
  Engine.run ~until:(Time.sec 2) sim.eng;
  let expected = List.init 50 (fun i -> string_of_int (i + 1)) in
  List.iter
    (fun (name, _, _, log) ->
      Alcotest.(check (list string)) (name ^ " ordered burst") expected
        (applied_log log))
    sim.nodes

let test_leader_election_on_primary_failure () =
  let sim, nodes = start_cluster () in
  let p1, _, _ = List.hd nodes in
  Engine.spawn sim.eng ~name:"client" (fun () ->
      Engine.sleep sim.eng (Time.ms 10);
      for i = 1 to 5 do
        ignore (Paxos.submit p1 (Printf.sprintf "a%d" i));
        Engine.sleep sim.eng (Time.ms 2)
      done);
  Engine.at sim.eng (Time.ms 100) (fun () -> kill_node sim "n1");
  (* After the election, the new primary accepts more values. *)
  Engine.at sim.eng (Time.sec 1) (fun () ->
      match find_primary sim with
      | Some (_, p, _, _) ->
        for i = 1 to 5 do
          ignore (Paxos.submit p (Printf.sprintf "b%d" i))
        done
      | None -> Alcotest.fail "no new primary elected");
  Engine.run ~until:(Time.sec 3) sim.eng;
  let expected =
    List.init 5 (fun i -> Printf.sprintf "a%d" (i + 1))
    @ List.init 5 (fun i -> Printf.sprintf "b%d" (i + 1))
  in
  List.iter
    (fun (name, _, _, log) ->
      Alcotest.(check (list string)) (name ^ " survives failover") expected
        (applied_log log))
    sim.nodes;
  match find_primary sim with
  | Some (_, p, _, _) -> (
    Alcotest.(check bool) "view advanced" true (Paxos.view p > 0);
    match (Paxos.stats p).Paxos.last_election_duration with
    | Some d ->
      (* LAN-scale election: well under a second (paper: 1.97 ms). *)
      Alcotest.(check bool) "election fast" true (d < Time.sec 1)
    | None -> Alcotest.fail "winner did not record election duration")
  | None -> Alcotest.fail "cluster has no primary"

let test_rejoin_catches_up () =
  let sim, nodes = start_cluster () in
  let p1, _, _ = List.hd nodes in
  Engine.spawn sim.eng ~name:"client" (fun () ->
      Engine.sleep sim.eng (Time.ms 10);
      for i = 1 to 10 do
        ignore (Paxos.submit p1 (Printf.sprintf "v%d" i));
        Engine.sleep sim.eng (Time.ms 1)
      done);
  (* n3 crashes early and rejoins (fresh incarnation, same WAL). *)
  Engine.at sim.eng (Time.ms 5) (fun () -> kill_node sim "n3");
  Engine.at sim.eng (Time.ms 500) (fun () -> ignore (add_node sim "n3"));
  Engine.run ~until:(Time.sec 3) sim.eng;
  match List.find_opt (fun (n, _, _, _) -> n = "n3") sim.nodes with
  | Some (_, p3, _, _) ->
    Alcotest.(check int) "rejoined node caught up" 10 (Paxos.committed p3);
    let range = Paxos.get_committed_range p3 ~lo:1 ~hi:10 in
    Alcotest.(check int) "full range recovered" 10 (List.length range)
  | None -> Alcotest.fail "n3 not present"

let test_wal_recovery () =
  let sim, nodes = start_cluster () in
  let p1, _, _ = List.hd nodes in
  Engine.spawn sim.eng ~name:"client" (fun () ->
      Engine.sleep sim.eng (Time.ms 10);
      for i = 1 to 8 do
        ignore (Paxos.submit p1 (Printf.sprintf "v%d" i));
        Engine.sleep sim.eng (Time.ms 2)
      done);
  Engine.run ~until:(Time.ms 200) sim.eng;
  (* Crash n2 after everything committed, restart from its WAL. *)
  kill_node sim "n2";
  let p2', _, _ = add_node sim "n2" in
  Alcotest.(check int) "committed recovered from WAL" 8 (Paxos.committed p2');
  Alcotest.(check (list string)) "values recovered"
    (List.init 8 (fun i -> Printf.sprintf "v%d" (i + 1)))
    (Paxos.get_committed_range p2' ~lo:1 ~hi:8)

(* The asymmetric-partition escape hatch: block traffic *into* the
   primary only.  Backups still hear its heartbeats, so they never start
   an election — the primary must notice it hears nobody for
   election_timeout and abdicate, which stops the heartbeats and lets the
   backups elect among themselves.  After the partition heals, the old
   primary adopts the new view and catches up as a backup. *)
let test_primary_abdicates_when_isolated () =
  let sim, nodes = start_cluster () in
  let p1, _, _ = List.hd nodes in
  Engine.spawn sim.eng ~name:"client" (fun () ->
      Engine.sleep sim.eng (Time.ms 10);
      for i = 1 to 5 do
        ignore (Paxos.submit p1 (Printf.sprintf "a%d" i));
        Engine.sleep sim.eng (Time.ms 2)
      done);
  Engine.at sim.eng (Time.ms 200) (fun () ->
      Fabric.partition_oneway sim.fabric ~from:[ "n2"; "n3" ] ~to_:[ "n1" ]);
  (* Mid-partition: n1 must have stepped down and a backup must lead.
     (After the heal n1 may legitimately win leadership back, so this is
     the only instant where "who leads" is pinned down.) *)
  Engine.at sim.eng (Time.ms 1500) (fun () ->
      Alcotest.(check bool) "isolated primary stepped down" false (Paxos.is_primary p1);
      Alcotest.(check int) "stepped down via abdication" 1
        (Paxos.stats p1).Paxos.abdications;
      match find_primary sim with
      | Some (name, p, _, _) ->
        Alcotest.(check bool) "a backup took over" true (name <> "n1");
        Alcotest.(check bool) "view advanced past the abdication" true
          (Paxos.view p > 0)
      | None -> Alcotest.fail "no backup elected during the partition");
  Engine.at sim.eng (Time.sec 2) (fun () -> Fabric.heal sim.fabric);
  Engine.at sim.eng (Time.ms 2800) (fun () ->
      match find_primary sim with
      | Some (_, p, _, _) ->
        for i = 1 to 5 do
          ignore (Paxos.submit p (Printf.sprintf "b%d" i))
        done
      | None -> Alcotest.fail "no primary after heal");
  Engine.run ~until:(Time.sec 5) sim.eng;
  Alcotest.(check int) "abdicated exactly once overall" 1
    (Paxos.stats p1).Paxos.abdications;
  (match find_primary sim with
  | Some (name, p, _, _) ->
    (* Everyone, n1 included, agrees on the healed cluster's leader. *)
    List.iter
      (fun (n, q, _, _) ->
        Alcotest.(check (option string)) (n ^ " follows the leader") (Some name)
          (if n = name then Some name else Paxos.primary q))
      sim.nodes;
    Alcotest.(check bool) "final view nonzero" true (Paxos.view p > 0)
  | None -> Alcotest.fail "cluster has no primary");
  let expected =
    List.init 5 (fun i -> Printf.sprintf "a%d" (i + 1))
    @ List.init 5 (fun i -> Printf.sprintf "b%d" (i + 1))
  in
  List.iter
    (fun (name, _, _, log) ->
      Alcotest.(check (list string)) (name ^ " converged after heal") expected
        (applied_log log))
    sim.nodes

let test_no_progress_without_quorum () =
  let sim, nodes = start_cluster () in
  let p1, _, _ = List.hd nodes in
  Engine.at sim.eng (Time.ms 5) (fun () ->
      kill_node sim "n2";
      kill_node sim "n3");
  Engine.spawn sim.eng ~name:"client" (fun () ->
      Engine.sleep sim.eng (Time.ms 20);
      ignore (Paxos.submit p1 "lost"));
  Engine.run ~until:(Time.sec 2) sim.eng;
  Alcotest.(check int) "nothing commits without quorum" 0 (Paxos.committed p1)

(* Safety under nemesis: random loss and a primary kill; the applied
   sequences on all surviving nodes must be consistent prefixes. *)
let prefix_consistent a b =
  let rec go = function
    | x :: xs, y :: ys -> x = y && go (xs, ys)
    | _, [] | [], _ -> true
  in
  go (a, b)

let run_nemesis seed =
  let sim, nodes = start_cluster ~seed () in
  let submitted = ref 0 in
  Fabric.set_loss sim.fabric 0.02;
  Engine.spawn sim.eng ~name:"client" (fun () ->
      let rng = Rng.create (seed + 1000) in
      for i = 1 to 40 do
        Engine.sleep sim.eng (Time.ms (1 + Rng.int rng 10));
        match find_primary sim with
        | Some (_, p, _, _) ->
          if Paxos.submit p (Printf.sprintf "s%d-%d" seed i) then incr submitted
        | None -> ()
      done);
  let p1, _, _ = List.hd nodes in
  ignore p1;
  Engine.at sim.eng (Time.ms (50 + (seed mod 100))) (fun () -> kill_node sim "n1");
  Engine.run ~until:(Time.sec 5) sim.eng;
  Fabric.set_loss sim.fabric 0.0;
  let logs = List.map (fun (_, _, _, log) -> applied_log log) sim.nodes in
  (* Pairwise prefix consistency. *)
  let ok = ref true in
  List.iteri
    (fun i a ->
      List.iteri (fun j b -> if i < j && not (prefix_consistent a b) then ok := false) logs)
    logs;
  !ok

let prop_safety_under_nemesis =
  QCheck.Test.make ~name:"applied logs are prefix-consistent under loss+crash"
    ~count:15
    QCheck.(int_range 1 10_000)
    run_nemesis

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  [
    ( "paxos",
      [
        Alcotest.test_case "normal-case agreement" `Quick test_normal_case_agreement;
        Alcotest.test_case "backup rejects submit" `Quick test_submit_on_backup_rejected;
        Alcotest.test_case "pipelined burst" `Quick test_pipelined_submissions;
        Alcotest.test_case "leader election" `Quick test_leader_election_on_primary_failure;
        Alcotest.test_case "rejoin catches up" `Quick test_rejoin_catches_up;
        Alcotest.test_case "isolated primary abdicates" `Quick
          test_primary_abdicates_when_isolated;
        Alcotest.test_case "wal recovery" `Quick test_wal_recovery;
        Alcotest.test_case "no quorum, no progress" `Quick test_no_progress_without_quorum;
        qcheck prop_safety_under_nemesis;
      ] );
  ]
