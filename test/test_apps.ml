(* Integration tests: the five server programs under the un-replicated
   runtime and under a full CRANE cluster, driven by their benchmark
   clients over the simulated network. *)

module Time = Crane_sim.Time
module Engine = Crane_sim.Engine
module Api = Crane_core.Api
module Instance = Crane_core.Instance
module Cluster = Crane_core.Cluster
module Standalone = Crane_core.Standalone
module Output_log = Crane_core.Output_log
module Target = Crane_workload.Target
module Clients = Crane_workload.Clients
module Loadgen = Crane_workload.Loadgen
module Stats = Crane_report.Stats

let fast_paxos =
  {
    Crane_paxos.Paxos.heartbeat_period = Time.ms 100;
    election_timeout = Time.ms 300;
    election_jitter = Time.ms 50;
    round_retry = Time.ms 100;
    compaction_threshold = Crane_paxos.Paxos.default_config.compaction_threshold;
    catchup_chunk = Crane_paxos.Paxos.default_config.catchup_chunk;
    suspect_timeout = Crane_paxos.Paxos.default_config.suspect_timeout;
    lease_duration = Time.ms 150;
  }

let cluster_cfg ?(port = 80) mode =
  { Instance.default_config with mode; paxos = fast_paxos; cores = 8; service_port = port }

(* Small Apache for tests: 4 workers, 7 ms pages of coarse compute
   segments (the grain that makes the default DMT schedule serialize). *)
let small_apache ?(hints = false) () =
  Crane_apps.Apache.server
    ~cfg:
      {
        Crane_apps.Apache.default_config with
        nworkers = 4;
        php_segments = 4;
        segment_cost = Time.us 1750;
        hints;
        hint_timeout_ticks = 100;
      }
    ()

let run_standalone_load ~mode ~server ~port ~clients ~requests ~request =
  let sa = Standalone.boot ~mode ~server () in
  let target = Target.standalone sa ~port in
  let handle = Loadgen.run ~clients ~requests ~request target in
  Loadgen.drive ~timeout:(Time.sec 120) target handle;
  Standalone.check_failures sa;
  handle.Loadgen.collect ()

let run_cluster_load ?(mode = Instance.Full) ~server ~port ~clients ~requests ~request ()
    =
  let cluster = Cluster.create ~cfg:(cluster_cfg ~port mode) ~server () in
  Cluster.start ~checkpoints:false cluster;
  let target = Target.cluster cluster ~port in
  let handle = Loadgen.run ~clients ~requests ~request target in
  Loadgen.drive ~timeout:(Time.sec 200) target handle;
  Cluster.check_failures cluster;
  (handle.Loadgen.collect (), cluster)

let check_http_200 resp =
  Alcotest.(check (option int)) "HTTP 200" (Some 200)
    (Crane_apps.Httpkit.status_of_response resp)

(* ------------------------------------------------------------------ *)

let test_apache_native_latency () =
  let r =
    run_standalone_load ~mode:Standalone.Native ~server:(small_apache ()) ~port:80
      ~clients:4 ~requests:16 ~request:Clients.apachebench
  in
  Alcotest.(check int) "no errors" 0 r.Loadgen.errors;
  Alcotest.(check int) "all served" 16 (List.length r.Loadgen.latencies);
  let med = Stats.median r.Loadgen.latencies in
  (* Page cost is 7 ms; response time should be in that ballpark. *)
  Alcotest.(check bool)
    (Printf.sprintf "median %s ~ page cost" (Time.to_string med))
    true
    (med >= Time.ms 7 && med < Time.ms 40)

let test_apache_crane_cluster () =
  let r, cluster =
    run_cluster_load ~server:(small_apache ()) ~port:80 ~clients:4 ~requests:12
      ~request:Clients.apachebench ()
  in
  Alcotest.(check int) "no errors" 0 r.Loadgen.errors;
  Alcotest.(check int) "all served" 12 (List.length r.Loadgen.latencies);
  (* Replica output logs identical (plan I of §7.2). *)
  (match Cluster.outputs cluster with
  | (_, o1) :: rest ->
    Alcotest.(check bool) "outputs recorded" true (Output_log.length o1 >= 12);
    List.iter
      (fun (n, o) ->
        Alcotest.(check bool) (n ^ " output log matches") true (Output_log.equal o1 o))
      rest
  | [] -> Alcotest.fail "no outputs");
  (* Bubbles were used but are a minority during the burst (Table 1). *)
  List.iter
    (fun (_, inst) ->
      let calls, bubbles = Instance.seq_stats inst in
      Alcotest.(check bool) "client calls flowed" true (calls >= 36);
      Alcotest.(check bool) "bubbles present" true (bubbles > 0))
    (Cluster.instances cluster)

let test_apache_hints_speed_up_crane () =
  let median_with hints =
    let r, _ =
      run_cluster_load ~server:(small_apache ~hints ()) ~port:80 ~clients:4
        ~requests:12 ~request:Clients.apachebench ()
    in
    Alcotest.(check int) "no errors" 0 r.Loadgen.errors;
    Stats.median r.Loadgen.latencies
  in
  let without = median_with false and with_ = median_with true in
  Alcotest.(check bool)
    (Printf.sprintf "hints help: %s (with) < %s (without)" (Time.to_string with_)
       (Time.to_string without))
    true (with_ < without)

let test_clamav_native () =
  let server = Crane_apps.Clamav.server () in
  let r =
    run_standalone_load ~mode:Standalone.Native ~server ~port:3310 ~clients:2
      ~requests:4 ~request:(Clients.clamdscan ~dirs:8)
  in
  Alcotest.(check int) "no errors" 0 r.Loadgen.errors;
  Alcotest.(check int) "all scans done" 4 (List.length r.Loadgen.latencies)

let test_clamav_crane_finds_and_quarantines () =
  let server = Crane_apps.Clamav.server () in
  let r, cluster =
    run_cluster_load ~server ~port:3310 ~clients:2 ~requests:4
      ~request:(Clients.clamdscan ~dirs:8) ()
  in
  Alcotest.(check int) "no errors" 0 r.Loadgen.errors;
  (* The three infected files were quarantined on every replica. *)
  List.iter
    (fun (node, inst) ->
      let q = Crane_fs.Memfs.list inst.Instance.fsys ~prefix:"quarantine/" in
      Alcotest.(check int) (node ^ " quarantined all three") 3 (List.length q))
    (Cluster.instances cluster)

let test_mysql_crane () =
  let server = Crane_apps.Mysql.server () in
  let rng = Crane_sim.Rng.create 7 in
  let request target ~from = Clients.sysbench ~rng ~ntables:16 ~rows:2000 target ~from in
  let r, cluster =
    run_cluster_load ~server ~port:3306 ~clients:4 ~requests:20 ~request ()
  in
  Alcotest.(check int) "no errors" 0 r.Loadgen.errors;
  Alcotest.(check int) "all queries" 20 (List.length r.Loadgen.latencies);
  match Cluster.outputs cluster with
  | (_, o1) :: rest ->
    List.iter
      (fun (n, o) ->
        Alcotest.(check bool) (n ^ " outputs match") true (Output_log.equal o1 o))
      rest
  | [] -> Alcotest.fail "no outputs"

let test_mediatomb_native_transcode () =
  let server =
    Crane_apps.Mediatomb.server
      ~cfg:
        {
          Crane_apps.Mediatomb.default_config with
          frames = 20;
          frame_cost = Time.ms 20;
        }
      ()
  in
  let r =
    run_standalone_load ~mode:Standalone.Native ~server ~port:49152 ~clients:2
      ~requests:4 ~request:Clients.mediabench
  in
  Alcotest.(check int) "no errors" 0 r.Loadgen.errors;
  let med = Stats.median r.Loadgen.latencies in
  (* 20 frames x 20 ms over 2 encoder threads: >= 200 ms. *)
  Alcotest.(check bool)
    (Printf.sprintf "transcode takes encode time (%s)" (Time.to_string med))
    true
    (med >= Time.ms 200)

let test_mongoose_parrot () =
  let server =
    Crane_apps.Mongoose.server
      ~cfg:
        {
          Crane_apps.Mongoose.default_config with
          nworkers = 3;
          php_segments = 5;
          segment_cost = Time.us 1000;
        }
      ()
  in
  let r =
    run_standalone_load ~mode:Standalone.Parrot ~server ~port:80 ~clients:3
      ~requests:9 ~request:Clients.apachebench
  in
  Alcotest.(check int) "no errors" 0 r.Loadgen.errors;
  Alcotest.(check int) "all served" 9 (List.length r.Loadgen.latencies)

(* The §2.2 / §7.2 micro-benchmark: concurrent PUT and GET on the same
   URL.  Un-replicated, the outcome differs across seeds; a CRANE cluster
   must report the same outcome on all three replicas in every run. *)
let put_get_unreplicated seed =
  let sa = Standalone.boot ~seed ~mode:Standalone.Native ~server:(small_apache ()) () in
  let eng = Standalone.engine sa in
  let target = Target.standalone sa ~port:80 in
  let get_status = ref None in
  Engine.spawn eng ~name:"curl-put" (fun () ->
      ignore (Clients.curl_put target ~from:"curl1" ~path:"/a.php" ~body:"<?php page ?>"));
  Engine.spawn eng ~name:"curl-get" (fun () ->
      match Clients.curl_get target ~from:"curl2" ~path:"/a.php" with
      | Some resp -> get_status := Crane_apps.Httpkit.status_of_response resp
      | None -> ());
  Engine.run ~until:(Time.sec 5) eng;
  Standalone.check_failures sa;
  !get_status

let test_put_get_race_unreplicated_varies () =
  let outcomes = List.init 12 (fun s -> put_get_unreplicated (s * 131)) in
  let distinct = List.sort_uniq compare outcomes in
  Alcotest.(check bool) "unreplicated outcome depends on timing" true
    (List.length distinct > 1)

let put_get_crane seed =
  let cluster =
    Cluster.create ~seed ~cfg:(cluster_cfg Instance.Full) ~server:(small_apache ()) ()
  in
  Cluster.start ~checkpoints:false cluster;
  let eng = Cluster.engine cluster in
  let target = Target.cluster cluster ~port:80 in
  let get_status = ref None in
  Engine.spawn eng ~name:"curl-put" (fun () ->
      Engine.sleep eng (Time.ms 10);
      ignore (Clients.curl_put target ~from:"curl1" ~path:"/a.php" ~body:"<?php page ?>"));
  Engine.spawn eng ~name:"curl-get" (fun () ->
      Engine.sleep eng (Time.ms 10);
      match Clients.curl_get target ~from:"curl2" ~path:"/a.php" with
      | Some resp -> get_status := Crane_apps.Httpkit.status_of_response resp
      | None -> ());
  Cluster.run ~until:(Time.sec 5) cluster;
  Cluster.check_failures cluster;
  (* All replicas logged the same outputs. *)
  let consistent =
    match Cluster.outputs cluster with
    | (_, o1) :: rest -> List.for_all (fun (_, o) -> Output_log.equal o1 o) rest
    | [] -> false
  in
  (!get_status, consistent)

let test_put_get_race_crane_consistent () =
  List.iter
    (fun seed ->
      let status, consistent = put_get_crane seed in
      Alcotest.(check bool) "replicas agree" true consistent;
      Alcotest.(check bool) "GET got an answer" true
        (status = Some 200 || status = Some 404))
    [ 1; 2; 3; 4 ]

let suite =
  [
    ( "apps",
      [
        Alcotest.test_case "apache native latency" `Quick test_apache_native_latency;
        Alcotest.test_case "apache crane cluster" `Quick test_apache_crane_cluster;
        Alcotest.test_case "apache hints speed up" `Quick test_apache_hints_speed_up_crane;
        Alcotest.test_case "clamav native" `Quick test_clamav_native;
        Alcotest.test_case "clamav crane quarantine" `Quick
          test_clamav_crane_finds_and_quarantines;
        Alcotest.test_case "mysql crane" `Quick test_mysql_crane;
        Alcotest.test_case "mediatomb native" `Quick test_mediatomb_native_transcode;
        Alcotest.test_case "mongoose parrot" `Quick test_mongoose_parrot;
        Alcotest.test_case "put/get unreplicated varies" `Quick
          test_put_get_race_unreplicated_varies;
        Alcotest.test_case "put/get crane consistent" `Quick
          test_put_get_race_crane_consistent;
      ] );
  ]
