(* Tests for the in-memory filesystem, snapshot diff/patch, LXC-like
   containers, the WAL, and the checkpoint manager. *)

module Time = Crane_sim.Time
module Engine = Crane_sim.Engine
module Memfs = Crane_fs.Memfs
module Fsdiff = Crane_fs.Fsdiff
module Container = Crane_fs.Container
module Wal = Crane_storage.Wal
module Criu = Crane_checkpoint.Criu
module Manager = Crane_checkpoint.Manager

let check_no_failures eng =
  match Engine.failures eng with
  | [] -> ()
  | (name, e) :: _ ->
    Alcotest.failf "thread %s failed: %s" name (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* Memfs *)

let test_memfs_basics () =
  let fs = Memfs.create () in
  Memfs.write fs ~path:"www/a.php" "<?php 1 ?>";
  Memfs.append fs ~path:"log" "x";
  Memfs.append fs ~path:"log" "y";
  Alcotest.(check (option string)) "read" (Some "<?php 1 ?>")
    (Memfs.read fs ~path:"www/a.php");
  Alcotest.(check (option string)) "append" (Some "xy") (Memfs.read fs ~path:"log");
  Alcotest.(check (list string)) "list by prefix" [ "www/a.php" ]
    (Memfs.list fs ~prefix:"www/");
  Memfs.delete fs ~path:"log";
  Alcotest.(check bool) "deleted" false (Memfs.exists fs ~path:"log");
  Alcotest.(check int) "count" 1 (Memfs.file_count fs)

let test_memfs_snapshot_isolation () =
  let fs = Memfs.create () in
  Memfs.write fs ~path:"f" "v1";
  let snap = Memfs.snapshot fs in
  Memfs.write fs ~path:"f" "v2";
  Memfs.write fs ~path:"g" "new";
  Memfs.restore fs snap;
  Alcotest.(check (option string)) "rolled back" (Some "v1") (Memfs.read fs ~path:"f");
  Alcotest.(check bool) "new file gone" false (Memfs.exists fs ~path:"g")

(* Diff/patch roundtrip on arbitrary file-system mutations. *)
let fs_ops =
  QCheck.(
    small_list
      (triple (int_range 0 5) (int_range 0 3) small_printable_string))

let apply_ops fs ops =
  List.iter
    (fun (file, op, content) ->
      let path = Printf.sprintf "dir/f%d" file in
      match op with
      | 0 | 1 -> Memfs.write fs ~path content
      | 2 -> Memfs.append fs ~path (content ^ "\n")
      | _ -> Memfs.delete fs ~path)
    ops

let prop_diff_patch_roundtrip =
  QCheck.Test.make ~name:"diff/patch roundtrip reconstructs target" ~count:300
    QCheck.(pair fs_ops fs_ops)
    (fun (ops1, ops2) ->
      let fs = Memfs.create () in
      apply_ops fs ops1;
      let base = Memfs.snapshot fs in
      apply_ops fs ops2;
      let target = Memfs.snapshot fs in
      let patch = Fsdiff.diff ~base ~target in
      Memfs.snapshot_equal (Fsdiff.apply ~base patch) target)

let test_diff_incremental_is_small () =
  (* A tiny append to a large file must produce a small patch. *)
  let fs = Memfs.create () in
  let big = String.concat "\n" (List.init 10_000 (fun i -> Printf.sprintf "line%d" i)) in
  Memfs.write fs ~path:"db/huge" big;
  let base = Memfs.snapshot fs in
  Memfs.append fs ~path:"db/huge" "\nfinal line";
  let patch = Fsdiff.diff ~base ~target:(Memfs.snapshot fs) in
  Alcotest.(check bool) "patch much smaller than file" true
    (Fsdiff.patch_bytes patch < 200);
  Alcotest.(check int) "one file touched" 1 (Fsdiff.files_touched patch)

let test_diff_empty () =
  let fs = Memfs.create () in
  Memfs.write fs ~path:"a" "x";
  let snap = Memfs.snapshot fs in
  Alcotest.(check bool) "no change, empty patch" true
    (Fsdiff.is_empty (Fsdiff.diff ~base:snap ~target:snap))

(* ------------------------------------------------------------------ *)
(* Container + WAL *)

let test_container_stop_start_cost () =
  let eng = Engine.create () in
  let fs = Memfs.create () in
  let c = Container.create eng ~name:"lxc" fs in
  let elapsed = ref Time.zero in
  Engine.spawn eng ~name:"op" (fun () ->
      let t0 = Engine.now eng in
      Container.stop c;
      Container.start c;
      elapsed := Engine.now eng - t0);
  Engine.run eng;
  check_no_failures eng;
  Alcotest.(check bool) "stop+start in the paper's 2-5s" true
    (!elapsed >= Time.sec 2 && !elapsed <= Time.sec 5)

let test_container_confined_blocks_criu () =
  let eng = Engine.create () in
  let fs = Memfs.create () in
  let c = Container.create eng ~name:"lxc" ~unconfined:false fs in
  let raised = ref false in
  Engine.spawn eng ~name:"op" (fun () ->
      match Criu.dump eng c ~state:"s" ~mem_bytes:100 with
      | (_ : Criu.image) -> ()
      | exception Container.Confined -> raised := true);
  Engine.run eng;
  check_no_failures eng;
  Alcotest.(check bool) "confined container rejects CRIU" true !raised

let test_wal_order_and_recovery () =
  let eng = Engine.create () in
  let wal = Wal.create eng ~name:"w" in
  Engine.spawn eng ~name:"writer" (fun () ->
      for i = 1 to 5 do
        Wal.append wal (string_of_int i)
      done);
  Engine.run eng;
  check_no_failures eng;
  Alcotest.(check (list string)) "stable in order" [ "1"; "2"; "3"; "4"; "5" ]
    (Wal.records wal);
  Alcotest.(check int) "writes counted" 5 (Wal.writes wal)

let test_wal_async_ordering () =
  let eng = Engine.create () in
  let wal = Wal.create eng ~name:"w" in
  let done_order = ref [] in
  for i = 1 to 3 do
    Wal.append_async wal (string_of_int i) (fun () -> done_order := i :: !done_order)
  done;
  Engine.run eng;
  Alcotest.(check (list int)) "continuations fire in submit order" [ 1; 2; 3 ]
    (List.rev !done_order);
  Alcotest.(check (list string)) "records in submit order" [ "1"; "2"; "3" ]
    (Wal.records wal)

(* ------------------------------------------------------------------ *)
(* Checkpoint manager *)

let make_manager eng =
  let fs = Memfs.create () in
  Memfs.write fs ~path:"install/conf" "v=1";
  let container = Container.create eng ~name:"lxc" fs in
  let state = ref "state0" in
  let conns = ref 0 in
  let index = ref 0 in
  let mgr =
    Manager.create eng ~container
      ~state_of:(fun () -> !state)
      ~mem_bytes:(fun () -> 4_000_000)
      ~alive_conns:(fun () -> !conns)
      ~global_index:(fun () -> !index)
  in
  (mgr, container, state, conns, index)

let test_checkpoint_roundtrip () =
  let eng = Engine.create () in
  let mgr, container, state, _, index = make_manager eng in
  Engine.spawn eng ~name:"ckpt" (fun () ->
      state := "state-at-42";
      index := 42;
      Memfs.append (Container.fs container) ~path:"install/conf" "\nv=2";
      let ckpt =
        match Manager.checkpoint_now mgr with
        | Some c -> c
        | None -> Alcotest.fail "checkpoint skipped unexpectedly"
      in
      Alcotest.(check int) "index captured" 42 ckpt.Manager.global_index;
      (* Mutate, then restore. *)
      state := "later";
      Memfs.write (Container.fs container) ~path:"install/conf" "clobbered";
      let recovered, (_ : Manager.restore_timings) = Manager.restore mgr ckpt in
      Alcotest.(check string) "process state back" "state-at-42" recovered;
      Alcotest.(check (option string)) "fs patched back" (Some "v=1\nv=2")
        (Memfs.read (Container.fs container) ~path:"install/conf"));
  Engine.run eng;
  check_no_failures eng

let test_checkpoint_backoff_on_alive_conns () =
  let eng = Engine.create () in
  let mgr, _, _, conns, _ = make_manager eng in
  conns := 3;
  Engine.spawn eng ~name:"ckpt" (fun () -> ignore (Manager.checkpoint_now mgr));
  (* Connections drain after 5 s; the checkpoint must wait for that. *)
  Engine.at eng (Time.sec 5) (fun () -> conns := 0);
  Engine.run eng;
  check_no_failures eng;
  Alcotest.(check bool) "backed off at least twice" true (Manager.backoffs mgr >= 2);
  Alcotest.(check int) "eventually checkpointed" 1 (Manager.checkpoints_taken mgr)

let test_checkpoint_timings_magnitude () =
  let eng = Engine.create () in
  let mgr, _, _, _, _ = make_manager eng in
  Engine.spawn eng ~name:"ckpt" (fun () ->
      let ckpt =
        match Manager.checkpoint_now mgr with
        | Some c -> c
        | None -> Alcotest.fail "checkpoint skipped unexpectedly"
      in
      let { Manager.c_process; c_fs } = ckpt.Manager.timings in
      (* 4 MB image: tens of ms; container bounce dominates C fs. *)
      Alcotest.(check bool) "C_p tens of ms" true
        (c_process >= Time.ms 10 && c_process <= Time.ms 100);
      Alcotest.(check bool) "C_fs seconds-scale" true
        (c_fs >= Time.sec 1 && c_fs <= Time.sec 10));
  Engine.run eng;
  check_no_failures eng

let test_periodic_checkpoints () =
  let eng = Engine.create () in
  let mgr, _, _, _, _ = make_manager eng in
  let group = Engine.new_group eng in
  Manager.start_periodic mgr ~period:(Time.sec 10) ~group ();
  Engine.run ~until:(Time.sec 65) eng;
  check_no_failures eng;
  Alcotest.(check bool) "several periodic checkpoints" true
    (Manager.checkpoints_taken mgr >= 4)

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  [
    ( "fs",
      [
        Alcotest.test_case "memfs basics" `Quick test_memfs_basics;
        Alcotest.test_case "snapshot isolation" `Quick test_memfs_snapshot_isolation;
        qcheck prop_diff_patch_roundtrip;
        Alcotest.test_case "incremental diff small" `Quick test_diff_incremental_is_small;
        Alcotest.test_case "empty diff" `Quick test_diff_empty;
        Alcotest.test_case "container bounce cost" `Quick test_container_stop_start_cost;
        Alcotest.test_case "confined blocks CRIU" `Quick test_container_confined_blocks_criu;
      ] );
    ( "storage",
      [
        Alcotest.test_case "wal order" `Quick test_wal_order_and_recovery;
        Alcotest.test_case "wal async order" `Quick test_wal_async_ordering;
      ] );
    ( "checkpoint",
      [
        Alcotest.test_case "roundtrip" `Quick test_checkpoint_roundtrip;
        Alcotest.test_case "alive-connection backoff" `Quick
          test_checkpoint_backoff_on_alive_conns;
        Alcotest.test_case "timing magnitudes" `Quick test_checkpoint_timings_magnitude;
        Alcotest.test_case "periodic" `Quick test_periodic_checkpoints;
      ] );
  ]
