(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (§7).

     dune exec bench/main.exe            full run
     dune exec bench/main.exe -- --quick reduced workloads
     dune exec bench/main.exe -- --skip-bechamel

   Absolute numbers come from the simulator's calibrated cost models; the
   claims under reproduction are the *shapes*: who wins, by what rough
   factor, and where the trade-offs fall.  EXPERIMENTS.md records
   paper-vs-measured for every cell. *)

module Time = Crane_sim.Time
module Engine = Crane_sim.Engine
module Instance = Crane_core.Instance
module Cluster = Crane_core.Cluster
module Standalone = Crane_core.Standalone
module Paxos = Crane_paxos.Paxos
module Manager = Crane_checkpoint.Manager
module Stats = Crane_report.Stats
module Table = Crane_report.Table
module Loadgen = Crane_workload.Loadgen
module Target = Crane_workload.Target
module Clients = Crane_workload.Clients
module Trace = Crane_trace.Trace
module Metrics = Crane_trace.Metrics
open Bench_support

type fig14_row = {
  spec : spec;
  native : run_result;
  parrot : run_result;
  paxos_only : run_result;
  crane : run_result;
  crane_nohints : run_result option;
  attribution : Metrics.t;  (** flight-recorder aggregation of the CRANE run *)
  prim_node : string;  (** primary replica at end of the CRANE run *)
}

let norm ~baseline r = Stats.normalized_pct ~baseline:baseline.median ~system:r.median

(* ------------------------------------------------------------------ *)
(* Figure 14 (+ inputs for Figure 15, Table 1, §7.2 plan I). *)

let run_fig14 specs =
  List.map
    (fun spec ->
      Printf.eprintf "  [fig14] %s: native...%!" spec.sname;
      let native = run_standalone ~mode:Standalone.Native spec in
      Printf.eprintf " parrot...%!";
      let parrot = run_standalone ~mode:Standalone.Parrot spec in
      Printf.eprintf " paxos-only...%!";
      let paxos_only, _ = run_cluster ~mode:Instance.Paxos_only spec in
      Printf.eprintf " crane...%!";
      (* The CRANE run carries the flight recorder: a non-retaining trace
         streamed straight into a per-replica aggregation, so even the full
         workloads cost O(1) memory in events. *)
      let tr = Trace.create ~retain:false () in
      let attribution = Metrics.create ~per_node:true () in
      Metrics.attach attribution tr;
      let crane, cl = run_cluster ~trace:tr ~mode:Instance.Full spec in
      let prim_node =
        match Cluster.primary_node cl with Some n -> n | None -> "replica1"
      in
      let crane_nohints =
        if spec.hints_available then begin
          Printf.eprintf " crane(no hints)...%!";
          Some (fst (run_cluster ~hints:false ~mode:Instance.Full spec))
        end
        else None
      in
      Printf.eprintf " done\n%!";
      { spec; native; parrot; paxos_only; crane; crane_nohints; attribution; prim_node })
    specs

let print_fig14 rows =
  Table.print ~title:"Figure 14: performance normalized to un-replicated execution (%)"
    ~header:
      [ "server"; "native ms"; "w/ Parrot only"; "w/ Paxos only"; "CRANE"; "CRANE ms" ]
    (List.map
       (fun r ->
         [
           r.spec.sname;
           ms r.native.median;
           pct (norm ~baseline:r.native r.parrot);
           pct (norm ~baseline:r.native r.paxos_only);
           pct (norm ~baseline:r.native r.crane);
           ms r.crane.median;
         ])
       rows);
  let overheads =
    List.map
      (fun r -> Stats.overhead_pct ~baseline:r.native.median ~system:r.crane.median)
      rows
  in
  let mean_ov = List.fold_left ( +. ) 0.0 overheads /. float_of_int (List.length overheads) in
  Printf.printf "mean CRANE overhead: %.2f%%   (paper: 34.19%%)\n" mean_ov

let print_fig15 rows =
  let rows15 = List.filter (fun r -> r.crane_nohints <> None) rows in
  Table.print
    ~title:"Figure 15: effect of PARROT's soft-barrier hints (normalized to native, %)"
    ~header:[ "server"; "CRANE w/o hint"; "CRANE w/ hint"; "overhead w/o"; "overhead w/" ]
    (List.map
       (fun r ->
         let nh = Option.get r.crane_nohints in
         [
           r.spec.sname;
           pct (norm ~baseline:r.native nh);
           pct (norm ~baseline:r.native r.crane);
           pct (Stats.overhead_pct ~baseline:r.native.median ~system:nh.median);
           pct (Stats.overhead_pct ~baseline:r.native.median ~system:r.crane.median);
         ])
       rows15)

(* Where does a CRANE request's latency go?  Attribute the primary
   replica's recorded virtual time to the paper's three cost centers —
   PAXOS consensus waits (the decide span, propose to apply), the vhost
   admission gate, and DMT turn waits — averaged per served request.
   "compute" is the residual of the median once consensus and gate waits
   are taken out (clamped at zero: turn waits also cover idle workers
   parked between requests, so they can exceed the request path). *)
let print_attribution rows =
  Table.print
    ~title:
      "Overhead attribution under CRANE (primary replica, virtual ms per served request)"
    ~header:
      [ "server"; "median ms"; "paxos wait"; "gate wait"; "dmt turn wait"; "compute (residual)" ]
    (List.map
       (fun r ->
         let met = r.attribution in
         let per_req key =
           float_of_int (Metrics.total met (r.prim_node ^ "/" ^ key))
           /. float_of_int (max 1 r.crane.served)
         in
         let paxos_w = per_req "paxos.decide" in
         let gate_w = per_req "gate.block" in
         let dmt_w = per_req "dmt.turn_wait" in
         let median = Time.to_float_ms r.crane.median in
         let compute = Float.max 0.0 (median -. ((paxos_w +. gate_w) /. 1e6)) in
         [
           r.spec.sname;
           Printf.sprintf "%.2f" median;
           Printf.sprintf "%.3f" (paxos_w /. 1e6);
           Printf.sprintf "%.3f" (gate_w /. 1e6);
           Printf.sprintf "%.3f" (dmt_w /. 1e6);
           Printf.sprintf "%.2f" compute;
         ])
       rows)

let print_table1 rows =
  Table.print ~title:"Table 1: ratio of time bubbles in all PAXOS consensus requests"
    ~header:[ "server"; "# client socket calls"; "# time bubbles"; "%" ]
    (List.map
       (fun r ->
         let calls = r.crane.seq_calls and bubbles = r.crane.seq_bubbles in
         [
           r.spec.sname;
           string_of_int calls;
           string_of_int bubbles;
           pct (100.0 *. float_of_int bubbles /. float_of_int (max 1 (calls + bubbles)));
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* §7.2: consistency of network outputs: plan I (CRANE) vs plan II
   (time bubbling disabled). *)

let run_consistency specs rows =
  Table.print
    ~title:
      "Sec 7.2: network outputs identical across replicas? (plan I = CRANE, plan II = bubbling disabled)"
    ~header:[ "server"; "plan I consistent"; "plan II consistent" ]
    (List.map2
       (fun spec r ->
         Printf.eprintf "  [7.2] %s plan II...\n%!" spec.sname;
         let plan2, _ = run_cluster ~mode:Instance.No_bubbling spec in
         [
           spec.sname;
           (match r.crane.outputs_consistent with
           | Some true -> "yes"
           | Some false -> "NO"
           | None -> "?");
           (match plan2.outputs_consistent with
           | Some true -> "yes (divergence is probabilistic)"
           | Some false -> "no (diverged)"
           | None -> "?");
         ])
       specs rows)

(* ------------------------------------------------------------------ *)
(* Figures 16 and 17: sensitivity of the time-bubbling parameters. *)

let run_sweep specs rows ~title ~values ~default ~label ~run =
  let header = "server" :: List.map label values in
  let table_rows =
    List.map2
      (fun spec r ->
        spec.sname
        :: List.map
             (fun v ->
               if v = default then pct 100.0 (* the normalization point *)
               else begin
                 Printf.eprintf "  [%s] %s %s...\n%!" title spec.sname (label v);
                 let res, _ = run spec v in
                 pct (Stats.normalized_pct ~baseline:r.crane.median ~system:res.median)
               end)
             values)
      specs rows
  in
  Table.print ~title ~header table_rows

let run_fig16 specs rows =
  run_sweep specs rows
    ~title:"Figure 16: CRANE performance vs Wtimeout (normalized to default 100us)"
    ~values:[ Time.us 1; Time.us 10; Time.us 100; Time.us 1000; Time.us 10000 ]
    ~default:(Time.us 100)
    ~label:(fun v -> Printf.sprintf "%dus" (v / 1000))
    ~run:(fun spec v -> run_cluster ~wtimeout:v ~mode:Instance.Full spec)

let run_fig17 specs rows =
  run_sweep specs rows
    ~title:"Figure 17: CRANE performance vs Nclock (normalized to default 1000)"
    ~values:[ 100; 1000; 10000 ] ~default:1000 ~label:string_of_int
    ~run:(fun spec v -> run_cluster ~nclock:v ~mode:Instance.Full spec)

(* ------------------------------------------------------------------ *)
(* Table 2: checkpoint and restore cost per server. *)

let run_table2 specs =
  let row (spec : spec) =
    Printf.eprintf "  [table2] %s...\n%!" spec.sname;
    let cfg = cluster_cfg ~mode:Instance.Full spec in
    let cluster = Cluster.create ~cfg ~server:(spec.server ~hints:spec.hints_available) () in
    Cluster.start ~checkpoints:false cluster;
    let target = Target.cluster cluster ~port:spec.port in
    let rng = Crane_sim.Rng.create 99 in
    let handle =
      Loadgen.run ~clients:spec.clients
        ~requests:(max 4 (spec.requests / 4))
        ~request:(fun t ~from -> spec.request rng t ~from)
        target
    in
    Loadgen.drive ~timeout:spec.timeout target handle;
    (* Checkpoint + restore on the first backup. *)
    let result = ref None in
    (match Cluster.instances cluster with
    | _ :: (_, backup) :: _ ->
      let eng = Cluster.engine cluster in
      Engine.spawn eng ~name:"bench-ckpt" (fun () ->
          match Manager.checkpoint_now backup.Instance.manager with
          | Some ckpt ->
            let _, rt = Manager.restore backup.Instance.manager ckpt in
            result := Some (ckpt.Manager.timings, rt)
          | None -> ());
      (* Step the clock until the checkpoint+restore completes. *)
      let deadline = Engine.now eng + Time.sec 300 in
      while !result = None && Engine.now eng < deadline do
        Cluster.run ~until:(min deadline (Engine.now eng + Time.sec 2)) cluster
      done
    | _ -> ());
    Cluster.check_failures cluster;
    match !result with
    | Some ({ Manager.c_process; c_fs }, { Manager.r_process; r_fs }) ->
      [ spec.sname; ms c_process; ms r_process; ms c_fs; ms r_fs ]
    | None -> [ spec.sname; "-"; "-"; "-"; "-" ]
  in
  Table.print ~title:"Table 2: checkpoint/restore cost (ms)"
    ~header:[ "server"; "C_p (ms)"; "R_p (ms)"; "C_fs (ms)"; "R_fs (ms)" ]
    (List.map row specs)

(* ------------------------------------------------------------------ *)
(* §7.6: leader election and old-primary re-join. *)

let run_recovery specs =
  match List.find_opt (fun s -> s.sname = "mongoose") specs with
  | None -> ()
  | Some spec ->
    Printf.eprintf "  [recovery] mongoose failover...\n%!";
    let cfg =
      {
        (cluster_cfg ~mode:Instance.Full spec) with
        paxos = Paxos.default_config (* the paper's 1 s heartbeat / 3 s timeout *);
        checkpoint_period = Time.sec 2;
      }
    in
    let cluster = Cluster.create ~cfg ~server:(spec.server ~hints:true) () in
    Cluster.start ~checkpoints:true cluster;
    let eng = Cluster.engine cluster in
    let target = Target.cluster cluster ~port:spec.port in
    let handle =
      Loadgen.run ~think:(Time.ms 40) ~clients:4 ~requests:600
        ~request:(fun t ~from -> Clients.apachebench t ~from)
        target
    in
    let kill_at = Time.sec 5 in
    let restart_at = Time.sec 12 in
    let rejoin_done = ref None in
    Engine.at eng kill_at (fun () -> Cluster.kill cluster "replica1");
    Engine.at eng restart_at (fun () ->
        ignore (Cluster.restart cluster "replica1");
        (* Poll until the restarted node adopts the current view. *)
        let rec watch () =
          Engine.after eng (Time.ms 10) (fun () ->
              match (Cluster.instance cluster "replica1", Cluster.primary cluster) with
              | Some inst, Some (_, prim) ->
                if
                  Paxos.view inst.Instance.paxos = Paxos.view prim.Instance.paxos
                  && !rejoin_done = None
                then rejoin_done := Some (Engine.now eng - restart_at)
                else if !rejoin_done = None then watch ()
              | _ -> watch ())
        in
        watch ());
    Loadgen.drive ~timeout:(Time.sec 300) target handle;
    Cluster.run ~until:(Engine.now eng + Time.sec 10) cluster;
    Cluster.check_failures cluster;
    let r = handle.Loadgen.collect () in
    let election =
      match Cluster.primary cluster with
      | Some (_, p) -> (Paxos.stats p.Instance.paxos).Paxos.last_election_duration
      | None -> None
    in
    Table.print ~title:"Sec 7.6: replica failure and recovery (Mongoose)"
      ~header:[ "metric"; "measured"; "paper" ]
      [
        [ "leader election (3 steps)";
          (match election with Some d -> Time.to_string d | None -> "-");
          "1.97 ms" ];
        [ "old primary re-join after restart";
          (match !rejoin_done with Some d -> Time.to_string d | None -> "-");
          "0.36 s" ];
        [ "requests served across failover";
          Printf.sprintf "%d/%d (%d errors)" (List.length r.Loadgen.latencies)
            (List.length r.Loadgen.latencies + r.Loadgen.errors)
            r.Loadgen.errors;
          "robust" ];
      ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table/figure, timing a
   miniature version of each experiment's driver. *)

let bechamel_tests () =
  let open Bechamel in
  let tiny_spec =
    {
      (List.hd (specs ~scale:1)) with
      requests = 6;
      clients = 2;
      server =
        (fun ~hints ->
          Crane_apps.Apache.server
            ~cfg:
              {
                Crane_apps.Apache.default_config with
                nworkers = 2;
                php_segments = 2;
                segment_cost = Crane_sim.Time.us 500;
                hints;
              }
            ());
    }
  in
  let mysql_tiny = { (List.nth (specs ~scale:1) 4) with requests = 8; clients = 2 } in
  let t name f = Test.make ~name (Staged.stage f) in
  [
    t "fig14:crane-vs-native" (fun () ->
        ignore (run_cluster ~mode:Instance.Full tiny_spec));
    t "fig15:hints-off" (fun () ->
        ignore (run_cluster ~hints:false ~mode:Instance.Full tiny_spec));
    t "fig16:wtimeout-10us" (fun () ->
        ignore (run_cluster ~wtimeout:(Crane_sim.Time.us 10) ~mode:Instance.Full tiny_spec));
    t "fig17:nclock-100" (fun () ->
        ignore (run_cluster ~nclock:100 ~mode:Instance.Full tiny_spec));
    t "table1:bubble-accounting" (fun () ->
        ignore (run_cluster ~mode:Instance.Full mysql_tiny));
    t "table2:checkpoint-restore" (fun () ->
        let eng = Engine.create () in
        let fs = Crane_fs.Memfs.create () in
        Crane_fs.Memfs.write fs ~path:"data/file" (String.make 100_000 'x');
        let container = Crane_fs.Container.create eng ~name:"c" fs in
        let mgr =
          Manager.create eng ~container
            ~state_of:(fun () -> "s")
            ~mem_bytes:(fun () -> 1_000_000)
            ~alive_conns:(fun () -> 0)
            ~global_index:(fun () -> 0)
        in
        Engine.spawn eng ~name:"ck" (fun () ->
            match Manager.checkpoint_now mgr with
            | Some c -> ignore (Manager.restore mgr c)
            | None -> ());
        Engine.run eng);
    t "sec7.2:output-consistency" (fun () ->
        ignore (run_cluster ~mode:Instance.No_bubbling tiny_spec));
    t "sec7.6:leader-election" (fun () ->
        let eng = Engine.create () in
        let fabric = Crane_net.Fabric.create eng (Crane_sim.Rng.create 1) in
        let members = [ "a"; "b"; "c" ] in
        let nodes =
          List.map
            (fun n ->
              let wal = Crane_storage.Wal.create eng ~name:n in
              let g = Engine.new_group eng in
              let p =
                Paxos.create ~config:fast_paxos ~fabric
                  ~rng:(Crane_sim.Rng.create (Hashtbl.hash n))
                  ~wal ~members ~node:n ~group:g ()
              in
              Paxos.start p ();
              Crane_net.Fabric.node_up fabric n;
              (n, p, g))
            members
        in
        (match nodes with
        | (_, _, g) :: _ -> Engine.at eng (Crane_sim.Time.sec 1) (fun () -> Engine.kill_group eng g)
        | [] -> ());
        Engine.run ~until:(Crane_sim.Time.sec 4) eng);
  ]

let run_bechamel () =
  let open Bechamel in
  print_endline "\n== Bechamel micro-timings of the experiment drivers ==";
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) ~kde:None ~stabilize:false ()
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  List.iter
    (fun test ->
      Test.elements test
      |> List.iter (fun elt ->
             let result = Benchmark.run cfg instances elt in
             let ols =
               Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
             in
             let est = Analyze.one ols Toolkit.Instance.monotonic_clock result in
             match Analyze.OLS.estimates est with
             | Some [ ns ] ->
               Printf.printf "  %-28s %12.0f ns/run  (%d samples)\n%!"
                 (Test.Elt.name elt) ns result.Benchmark.stats.Benchmark.samples
             | Some _ | None ->
               Printf.printf "  %-28s (no estimate)\n%!" (Test.Elt.name elt)))
    (List.map (fun t -> Test.make_grouped ~name:"crane" [ t ]) (bechamel_tests ()))

(* ------------------------------------------------------------------ *)

let () =
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  let skip_bechamel = Array.exists (( = ) "--skip-bechamel") Sys.argv in
  let scale = if quick then 4 else 1 in
  let specs = specs ~scale in
  print_endline "CRANE benchmark harness: reproducing the evaluation of";
  print_endline "\"Paxos Made Transparent\" (SOSP 2015) on the simulated substrate.";
  Printf.printf "workload scale: %s\n%!" (if quick then "quick (1/4)" else "full");
  let rows = run_fig14 specs in
  print_fig14 rows;
  print_fig15 rows;
  print_attribution rows;
  print_table1 rows;
  run_consistency specs rows;
  run_fig16 specs rows;
  run_fig17 specs rows;
  run_table2 specs;
  run_recovery specs;
  if not skip_bechamel then run_bechamel ()
