(** Shared machinery for the benchmark harness: per-server benchmark
    specifications (server factory, workload, Table-2 cost profile) and
    the runners that execute one configuration and collect results. *)

module Time = Crane_sim.Time
module Engine = Crane_sim.Engine
module Rng = Crane_sim.Rng
module Instance = Crane_core.Instance
module Cluster = Crane_core.Cluster
module Standalone = Crane_core.Standalone
module Output_log = Crane_core.Output_log
module Api = Crane_core.Api
module Paxos = Crane_paxos.Paxos
module Manager = Crane_checkpoint.Manager
module Target = Crane_workload.Target
module Clients = Crane_workload.Clients
module Loadgen = Crane_workload.Loadgen
module Stats = Crane_report.Stats
module Table = Crane_report.Table

type spec = {
  sname : string;
  server : hints:bool -> Api.server;
  hints_available : bool;  (** Apache and Mongoose take the 2-line hints *)
  port : int;
  clients : int;
  requests : int;
  request : Rng.t -> Target.t -> from:string -> string option;
  container_stop : Time.t;
  container_start : Time.t;
  timeout : Time.t;  (** per-run virtual deadline *)
}

(* Workload scale: the paper runs 1K requests and reports medians over 20
   runs on real hardware; one deterministic virtual-time run with a few
   hundred requests gives equally stable medians here.  [scale] shrinks
   runs further for --quick. *)
let specs ~scale =
  let sc n = max 4 (n / scale) in
  [
    {
      sname = "apache";
      server = (fun ~hints -> Crane_apps.Apache.server
                    ~cfg:{ Crane_apps.Apache.default_config with hints } ());
      hints_available = true;
      port = 80;
      clients = 8;
      requests = sc 160;
      request = (fun _rng t ~from -> Clients.apachebench t ~from);
      container_stop = Time.ms 1200;
      container_start = Time.ms 1800;
      timeout = Time.sec 600;
    };
    {
      sname = "mongoose";
      server = (fun ~hints -> Crane_apps.Mongoose.server
                    ~cfg:{ Crane_apps.Mongoose.default_config with hints } ());
      hints_available = true;
      port = 80;
      clients = 6;
      requests = sc 120;
      request = (fun _rng t ~from -> Clients.apachebench t ~from);
      container_stop = Time.ms 550;
      container_start = Time.ms 700;
      timeout = Time.sec 600;
    };
    {
      sname = "clamav";
      server = (fun ~hints:_ -> Crane_apps.Clamav.server ());
      hints_available = false;
      port = 3310;
      clients = 8;
      requests = sc 96;
      request = (fun _rng t ~from -> Clients.clamdscan ~dirs:8 t ~from);
      container_stop = Time.ms 1500;
      container_start = Time.ms 1900;
      timeout = Time.sec 600;
    };
    {
      sname = "mediatomb";
      server = (fun ~hints:_ -> Crane_apps.Mediatomb.server ());
      hints_available = false;
      port = 49152;
      clients = 4;
      requests = sc 12;
      request = (fun _rng t ~from -> Clients.mediabench t ~from);
      container_stop = Time.ms 1000;
      container_start = Time.ms 1600;
      timeout = Time.sec 1200;
    };
    {
      sname = "mysql";
      server = (fun ~hints:_ -> Crane_apps.Mysql.server ());
      hints_available = false;
      port = 3306;
      clients = 8;
      requests = sc 240;
      request = (fun rng t ~from -> Clients.sysbench ~rng ~ntables:16 ~rows:2000 t ~from);
      container_stop = Time.ms 1300;
      container_start = Time.ms 2000;
      timeout = Time.sec 600;
    };
  ]

let fast_paxos =
  {
    Paxos.default_config with
    Paxos.heartbeat_period = Time.ms 200;
    election_timeout = Time.ms 600;
    election_jitter = Time.ms 100;
    round_retry = Time.ms 200;
  }

let cluster_cfg ?(wtimeout = Time.us 100) ?(nclock = 1000) ~mode (spec : spec) =
  {
    Instance.default_config with
    mode;
    wtimeout;
    nclock;
    service_port = spec.port;
    paxos = fast_paxos;
    container_stop = spec.container_stop;
    container_start = spec.container_start;
  }

type run_result = {
  median : Time.t;
  mean : float;
  p90 : Time.t;
  errors : int;
  served : int;
  wall : Time.t;
  outputs_consistent : bool option;  (** None for standalone runs *)
  seq_calls : int;  (** client socket calls decided (cluster runs) *)
  seq_bubbles : int;  (** time bubbles decided *)
}

let summarize ?(outputs_consistent = None) ?(seq = (0, 0)) (r : Loadgen.result) =
  {
    median = Stats.median r.Loadgen.latencies;
    mean = Stats.mean r.Loadgen.latencies;
    p90 = Stats.percentile 0.9 r.Loadgen.latencies;
    errors = r.Loadgen.errors;
    served = List.length r.Loadgen.latencies;
    wall = r.Loadgen.wall;
    outputs_consistent;
    seq_calls = fst seq;
    seq_bubbles = snd seq;
  }

let run_standalone ?(seed = 42) ~mode (spec : spec) =
  let sa = Standalone.boot ~seed ~mode ~server:(spec.server ~hints:(mode = Standalone.Parrot && spec.hints_available)) () in
  let target = Target.standalone sa ~port:spec.port in
  let rng = Rng.create (seed + 5) in
  let handle =
    Loadgen.run ~clients:spec.clients ~requests:spec.requests
      ~request:(fun t ~from -> spec.request rng t ~from)
      target
  in
  Loadgen.drive ~timeout:spec.timeout target handle;
  Standalone.check_failures sa;
  summarize (handle.Loadgen.collect ())

let run_cluster ?(seed = 42) ?(hints = true) ?wtimeout ?nclock ?trace ~mode (spec : spec) =
  let cfg = cluster_cfg ?wtimeout ?nclock ~mode spec in
  let server = spec.server ~hints:(hints && spec.hints_available) in
  let cluster = Cluster.create ~seed ~cfg ?trace ~server () in
  Cluster.start ~checkpoints:false cluster;
  let target = Target.cluster cluster ~port:spec.port in
  let rng = Rng.create (seed + 5) in
  let handle =
    Loadgen.run ~clients:spec.clients ~requests:spec.requests
      ~request:(fun t ~from -> spec.request rng t ~from)
      target
  in
  Loadgen.drive ~timeout:spec.timeout target handle;
  Cluster.check_failures cluster;
  let outputs_consistent =
    match Cluster.outputs cluster with
    | (_, o1) :: rest -> Some (List.for_all (fun (_, o) -> Output_log.equal o1 o) rest)
    | [] -> Some false
  in
  let seq =
    match Cluster.instances cluster with
    | (_, inst) :: _ -> Instance.seq_stats inst
    | [] -> (0, 0)
  in
  (summarize ~outputs_consistent ~seq (handle.Loadgen.collect ()), cluster)

let pct v = Printf.sprintf "%.1f%%" v
let ms t = Printf.sprintf "%.2f" (Time.to_float_ms t)
